// Unit tests: virtual memory — mapping policies, massaging, sharing.
#include <gtest/gtest.h>

#include <set>

#include "dram/address_mapping.hpp"
#include "sys/vmem.hpp"

namespace impact::sys {
namespace {

class VmemTest : public ::testing::Test {
 protected:
  VmemTest()
      : config_(),
        mapping_(config_, dram::MappingScheme::kBankInterleaved),
        vmem_(mapping_, /*seed=*/5) {}

  dram::DramConfig config_;
  dram::AddressMapping mapping_;
  VirtualMemory vmem_;
};

TEST_F(VmemTest, MapPagesTranslates) {
  const auto span = vmem_.map_pages(1, 4);
  EXPECT_EQ(span.bytes, 4 * 4096u);
  for (VAddr v = span.vaddr; v < span.end(); v += 4096) {
    EXPECT_TRUE(vmem_.is_mapped(1, v));
    EXPECT_LT(vmem_.translate(1, v), mapping_.capacity());
  }
  EXPECT_FALSE(vmem_.is_mapped(1, span.end()));
}

TEST_F(VmemTest, TranslatePreservesPageOffset) {
  const auto span = vmem_.map_pages(1, 1);
  const auto base = vmem_.translate(1, span.vaddr);
  EXPECT_EQ(vmem_.translate(1, span.vaddr + 123), base + 123);
}

TEST_F(VmemTest, DistinctProcessesGetDistinctFrames) {
  const auto a = vmem_.map_pages(1, 8);
  const auto b = vmem_.map_pages(2, 8);
  std::set<dram::PhysAddr> frames;
  for (VAddr v = a.vaddr; v < a.end(); v += 4096) {
    frames.insert(vmem_.translate(1, v) >> 12);
  }
  for (VAddr v = b.vaddr; v < b.end(); v += 4096) {
    EXPECT_FALSE(frames.contains(vmem_.translate(2, v) >> 12));
  }
}

TEST_F(VmemTest, UnknownTranslationThrows) {
  EXPECT_THROW((void)vmem_.translate(1, 0xdeadbeef), std::invalid_argument);
  const auto span = vmem_.map_pages(1, 1);
  EXPECT_THROW((void)vmem_.translate(2, span.vaddr), std::invalid_argument);
}

TEST_F(VmemTest, MapInBankLandsInBank) {
  for (dram::BankId bank : {0u, 7u, 63u}) {
    const auto span = vmem_.map_in_bank(3, bank);
    const auto lo = mapping_.decode(vmem_.translate(3, span.vaddr));
    const auto hi =
        mapping_.decode(vmem_.translate(3, span.vaddr + 4095));
    EXPECT_EQ(lo.bank, bank);
    EXPECT_EQ(hi.bank, bank);
  }
}

TEST_F(VmemTest, MapRowCoversExactRow) {
  const auto span = vmem_.map_row(1, 9, 33);
  EXPECT_EQ(span.bytes, config_.row_bytes);
  const auto lo = mapping_.decode(vmem_.translate(1, span.vaddr));
  const auto hi =
      mapping_.decode(vmem_.translate(1, span.end() - 1));
  EXPECT_EQ(lo.bank, 9u);
  EXPECT_EQ(lo.row, 33u);
  EXPECT_EQ(lo.col, 0u);
  EXPECT_EQ(hi.bank, 9u);
  EXPECT_EQ(hi.row, 33u);
  EXPECT_EQ(hi.col, config_.row_bytes - 1);
}

TEST_F(VmemTest, MapRowTwiceConflicts) {
  (void)vmem_.map_row(1, 9, 33);
  EXPECT_THROW((void)vmem_.map_row(2, 9, 33), std::invalid_argument);
}

TEST_F(VmemTest, MapRowSpanHitsEveryBankAtRow) {
  const auto span = vmem_.map_row_span(1, 5);
  EXPECT_EQ(span.bytes,
            static_cast<std::uint64_t>(config_.total_banks()) *
                config_.row_bytes);
  for (std::uint32_t b = 0; b < config_.total_banks(); ++b) {
    const auto loc = mapping_.decode(
        vmem_.translate(1, span.vaddr + b * config_.row_bytes));
    EXPECT_EQ(loc.bank, b);
    EXPECT_EQ(loc.row, 5u);
    EXPECT_EQ(loc.col, 0u);
  }
}

TEST_F(VmemTest, HugePagesAreFlagged) {
  const auto normal = vmem_.map_row_span(1, 6);
  const auto huge = vmem_.map_row_span(1, 7, /*huge=*/true);
  EXPECT_FALSE(vmem_.is_huge(1, normal.vaddr));
  EXPECT_TRUE(vmem_.is_huge(1, huge.vaddr));
  EXPECT_TRUE(vmem_.is_huge(1, huge.end() - 1));
  EXPECT_FALSE(vmem_.is_huge(1, huge.end()));
  EXPECT_FALSE(vmem_.is_huge(2, huge.vaddr));  // Per-process property.
}

TEST_F(VmemTest, ShareAliasesFrames) {
  const auto span = vmem_.map_pages(1, 2);
  vmem_.share(1, 2, span);
  for (VAddr v = span.vaddr; v < span.end(); v += 4096) {
    EXPECT_EQ(vmem_.translate(1, v), vmem_.translate(2, v));
  }
}

TEST_F(VmemTest, ShareRequiresMappedSpan) {
  const auto span = vmem_.map_pages(1, 1);
  const VSpan bogus{span.vaddr + 4096, 4096};
  EXPECT_THROW(vmem_.share(1, 2, bogus), std::invalid_argument);
  EXPECT_THROW(vmem_.share(1, 1, span), std::invalid_argument);
}

TEST_F(VmemTest, RandomAllocationsAvoidLowRows) {
  // Random handout draws from the upper half of the device, so attack rows
  // (low row numbers) stay claimable.
  const auto span = vmem_.map_pages(1, 64);
  for (VAddr v = span.vaddr; v < span.end(); v += 4096) {
    const auto loc = mapping_.decode(vmem_.translate(1, v));
    EXPECT_GE(loc.row, config_.rows_per_bank / 2 / config_.total_banks());
  }
  EXPECT_NO_THROW((void)vmem_.map_row(2, 0, 0));
}

TEST_F(VmemTest, FrameAccounting) {
  const auto used_before = vmem_.frames_used();
  (void)vmem_.map_pages(1, 10);
  EXPECT_EQ(vmem_.frames_used(), used_before + 10);
  EXPECT_EQ(vmem_.frames_total(), mapping_.capacity() / 4096);
}

TEST(VmemSmallDevice, ExhaustionThrows) {
  dram::DramConfig config;
  config.ranks = 1;
  config.banks_per_rank = 1;
  config.rows_per_bank = 2;  // 2 rows x 8 KiB = 4 frames.
  config.subarray_rows = 2;
  dram::AddressMapping mapping(config,
                               dram::MappingScheme::kBankInterleaved);
  VirtualMemory vmem(mapping, 1);
  (void)vmem.map_pages(1, 4);
  EXPECT_THROW((void)vmem.map_pages(1, 1), std::invalid_argument);
}

}  // namespace
}  // namespace impact::sys
