// Unit tests: the obs:: telemetry spine — registry handle semantics,
// snapshot algebra, the trace ring, exporter well-formedness, and the
// reconciliation/determinism pins that tie the spine to the layers it
// instruments. Scope-mediated tests skip themselves when the spine is
// compiled out (-DIMPACT_OBS=OFF): the build must still pass, the
// instrumentation just folds to nothing.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "attacks/impact_pum.hpp"
#include "channel/report.hpp"
#include "dram/controller.hpp"
#include "exec/sweep.hpp"
#include "obs/registry.hpp"
#include "obs/scope.hpp"
#include "obs/snapshot.hpp"
#include "obs/trace.hpp"
#include "sys/system.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"

namespace impact {
namespace {

// --- Registry / handle semantics -------------------------------------

TEST(ObsRegistry, HandlesAreStableAndShared) {
  obs::Registry reg;
  obs::Counter a = reg.counter("x");
  obs::Counter b = reg.counter("x");
  EXPECT_TRUE(a);
  a.add(3);
  b.add(4);
  EXPECT_EQ(a.value(), 7u);  // Same cell behind both handles.
  EXPECT_EQ(reg.counter_value("x"), 7u);

  // Growth must not invalidate earlier handles (deque-backed cells).
  for (int i = 0; i < 1000; ++i) {
    (void)reg.counter("grow." + std::to_string(i));
  }
  a.add(1);
  EXPECT_EQ(reg.counter_value("x"), 8u);
  a.reset();
  EXPECT_EQ(reg.counter_value("x"), 0u);
}

TEST(ObsRegistry, NullHandlesGuard) {
  obs::Counter c;
  obs::Gauge g;
  obs::Distribution d;
  EXPECT_FALSE(c);
  EXPECT_FALSE(g);
  EXPECT_FALSE(d);
  // The free helpers resolve null handles outside any scope.
  EXPECT_FALSE(obs::counter("nope"));
  EXPECT_FALSE(obs::gauge("nope"));
  EXPECT_FALSE(obs::distribution("nope", 0.0, 1.0, 4));
}

TEST(ObsRegistry, GaugesAndDistributions) {
  obs::Registry reg;
  obs::Gauge g = reg.gauge("rate");
  g.set(0.5);
  g.add(0.25);
  EXPECT_DOUBLE_EQ(reg.gauge_value("rate"), 0.75);

  obs::Distribution d = reg.distribution("lat", 0.0, 10.0, 10);
  d.add(1.0);
  d.add(9.5);
  EXPECT_EQ(d.histogram().total(), 2u);
  // Re-resolving ignores the shape arguments.
  obs::Distribution d2 = reg.distribution("lat", 0.0, 99.0, 3);
  d2.add(5.0);
  EXPECT_EQ(d.histogram().total(), 3u);
}

TEST(ObsRegistry, ProvidersSampleAtSnapshotAndFlush) {
  obs::Registry reg;
  std::uint64_t source = 10;
  const obs::ProviderId id =
      reg.add_provider("sampled", [&source] { return source; });
  EXPECT_EQ(reg.provider_count(), 1u);
  EXPECT_EQ(reg.snapshot().counter("sampled"), 10u);
  source = 25;
  EXPECT_EQ(reg.snapshot().counter("sampled"), 25u);
  EXPECT_EQ(reg.counter_value("sampled"), 25u);  // Cell + live provider.

  // Flushing persists the final value as a plain counter.
  reg.flush_provider(id);
  EXPECT_EQ(reg.provider_count(), 0u);
  source = 999;
  EXPECT_EQ(reg.snapshot().counter("sampled"), 25u);
}

// --- Snapshot algebra --------------------------------------------------

TEST(ObsSnapshot, MergeAddsAndCopiesUniqueNames) {
  obs::Registry a;
  a.counter("shared").add(3);
  a.gauge("g").set(1.5);
  a.distribution("d", 0.0, 4.0, 4).add(1.0);
  obs::Registry b;
  b.counter("shared").add(4);
  b.counter("only_b").add(7);
  b.distribution("d", 0.0, 4.0, 4).add(3.0);

  obs::Snapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(merged.counter("shared"), 7u);
  EXPECT_EQ(merged.counter("only_b"), 7u);
  EXPECT_DOUBLE_EQ(merged.gauge("g"), 1.5);
  ASSERT_NE(merged.dist("d"), nullptr);
  EXPECT_EQ(merged.dist("d")->total(), 2u);
  EXPECT_EQ(merged.counter("absent"), 0u);
}

TEST(ObsSnapshot, DiffIsolatesAnInterval) {
  obs::Registry reg;
  obs::Counter c = reg.counter("ops");
  c.add(5);
  const obs::Snapshot before = reg.snapshot();
  c.add(10);
  const obs::Snapshot after = reg.snapshot();
  EXPECT_EQ(after.diff(before).counter("ops"), 10u);
  // Reversed diff saturates instead of wrapping.
  EXPECT_EQ(before.diff(after).counter("ops"), 0u);
}

// --- Histogram merge + guarded percentile ------------------------------

TEST(ObsHistogram, PercentileGuardsEdgeCases) {
  util::Histogram empty(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(empty.percentile(50.0), 0.0);

  util::Histogram single(0.0, 10.0, 1);
  single.add(3.0);
  // One bucket: every percentile lands on its midpoint.
  EXPECT_DOUBLE_EQ(single.percentile(0.0), 5.0);
  EXPECT_DOUBLE_EQ(single.percentile(100.0), 5.0);
  EXPECT_DOUBLE_EQ(single.percentile(-5.0), 5.0);   // Clamped.
  EXPECT_DOUBLE_EQ(single.percentile(200.0), 5.0);  // Clamped.
}

TEST(ObsHistogram, MergeAccumulatesAndChecksShape) {
  util::Histogram a(0.0, 10.0, 10);
  util::Histogram b(0.0, 10.0, 10);
  a.add(1.0);
  b.add(9.0);
  b.add(-1.0);  // Underflow.
  a.merge(b);
  EXPECT_EQ(a.total(), 3u);
  EXPECT_LT(a.percentile(10.0), a.percentile(90.0));

  util::Histogram shaped(0.0, 10.0, 5);
  EXPECT_THROW(a.merge(shaped), std::invalid_argument);
  util::Histogram range(0.0, 20.0, 10);
  EXPECT_THROW(a.merge(range), std::invalid_argument);
}

// --- Trace ring --------------------------------------------------------

TEST(ObsTrace, RingOverwritesOldest) {
  obs::TraceSession trace(4);
  for (int i = 0; i < 6; ++i) {
    trace.span("t", "e" + std::to_string(i), i * 10, i * 10 + 5);
  }
  EXPECT_EQ(trace.capacity(), 4u);
  EXPECT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace.dropped(), 2u);
  // Oldest-first iteration starts at the first surviving event.
  EXPECT_EQ(trace.event(0).name, "e2");
  EXPECT_EQ(trace.event(3).name, "e5");
  trace.clear();
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_EQ(trace.dropped(), 0u);
}

TEST(ObsTrace, ChromeJsonIsWellFormed) {
  obs::TraceSession trace(16);
  trace.span("dram", "ACT \"row\"\\", 10, 20, 3);
  trace.instant("fault", "drop\nline", 15, 1);
  std::ostringstream out;
  trace.write_chrome_json(out);
  const std::string json = out.str();

  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // Quotes, backslashes and control characters must be escaped: outside
  // the JSON syntax itself no raw quote/newline may survive in a value.
  EXPECT_NE(json.find("ACT \\\"row\\\"\\\\"), std::string::npos);
  EXPECT_NE(json.find("drop\\nline"), std::string::npos);
  EXPECT_EQ(json.find("drop\nline"), std::string::npos);  // Raw \n escaped.
  EXPECT_EQ(json.back(), '\n');
  // Spans carry ph:X with dur, instants ph:i with scope t.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":10"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
}

// --- Scope stacking ----------------------------------------------------

TEST(ObsScope, NestingRestoresOuterScope) {
  if (!obs::kCompiled) GTEST_SKIP() << "obs compiled out";
  EXPECT_EQ(obs::current_registry(), nullptr);
  obs::Scope outer;
  EXPECT_EQ(obs::current_registry(), &outer.registry());
  obs::counter("depth").add(1);
  {
    obs::Scope inner;
    EXPECT_EQ(obs::current_registry(), &inner.registry());
    obs::counter("depth").add(10);
    EXPECT_EQ(inner.snapshot().counter("depth"), 10u);
  }
  EXPECT_EQ(obs::current_registry(), &outer.registry());
  EXPECT_EQ(outer.snapshot().counter("depth"), 1u);
}

// --- DRAM: multi-observer fan-out + BankStats reconciliation -----------

struct CountingObserver final : dram::CommandObserver {
  std::uint64_t commands = 0;
  std::uint64_t resets = 0;
  void on_command(const dram::CommandRecord&) override { ++commands; }
  void on_stats_reset(dram::BankId) override { ++resets; }
};

TEST(ObsDram, MultipleObserversCoexist) {
  dram::MemoryController mc(dram::DramConfig{},
                            dram::MappingScheme::kBankInterleaved,
                            /*with_data=*/false);
  CountingObserver first;
  CountingObserver second;
  mc.add_observer(&first);
  mc.add_observer(&second);
  mc.add_observer(&second);  // Duplicate attach is a no-op.
  mc.add_observer(nullptr);  // Null attach is a no-op.
  (void)mc.access_row(0, 1, 1000);
  (void)mc.access_row(1, 2, 2000);
  EXPECT_EQ(first.commands, 2u);
  EXPECT_EQ(second.commands, 2u);

  mc.remove_observer(&first);
  (void)mc.access_row(2, 3, 3000);
  EXPECT_EQ(first.commands, 2u);
  EXPECT_EQ(second.commands, 3u);
}

TEST(ObsDram, RegistryReconcilesWithBankStats) {
  if (!obs::kCompiled) GTEST_SKIP() << "obs compiled out";
  obs::Scope scope;
  dram::MemoryController mc(dram::DramConfig{},
                            dram::MappingScheme::kBankInterleaved,
                            /*with_data=*/false);
  ASSERT_NE(mc.obs_tap(), nullptr);

  // Random command stream across banks/rows, with the occasional masked
  // RowClone and a mid-stream stats reset; the registry must agree with
  // the banks' own BankStats at every synchronization point.
  util::Xoshiro256 rng(42);
  util::Cycle now = 1000;
  for (int i = 0; i < 500; ++i) {
    const auto bank = static_cast<dram::BankId>(rng.below(mc.banks()));
    const auto row = static_cast<dram::RowId>(rng.below(32));
    if (rng.below(10) == 0) {
      const auto r = mc.rowclone(
          std::vector{dram::RowCloneLeg{bank, row, (row + 1) % 32}}, now,
          /*atomic=*/false);
      now = r.completion + 10;
    } else {
      const auto r = mc.access_row(bank, row, now);
      now = r.completion + rng.below(50);
    }
    if (i == 250) {
      mc.reset_stats();
    }
  }

  const dram::BankStats total = mc.total_stats();
  const obs::Snapshot snap = scope.snapshot();
  EXPECT_EQ(snap.counter("dram.hits"), total.hits);
  EXPECT_EQ(snap.counter("dram.empties"), total.empties);
  EXPECT_EQ(snap.counter("dram.conflicts"), total.conflicts);
  EXPECT_EQ(snap.counter("dram.activations"), total.activations);
  EXPECT_EQ(snap.counter("dram.rowclones"), total.rowclones);
  EXPECT_EQ(snap.counter("dram.commands"),
            total.accesses() + total.rowclones);
}

// --- Channel: snapshot-derived reports + tracing determinism -----------

TEST(ObsChannel, SnapshotReportMatchesTransmitAggregate) {
  if (!obs::kCompiled) GTEST_SKIP() << "obs compiled out";
  obs::Scope scope;
  sys::MemorySystem system{sys::SystemConfig{}};
  attacks::ImpactPum attack(system);
  channel::ChannelReport total;
  for (int i = 0; i < 3; ++i) {
    const auto r = attack.transmit(util::BitVec::alternating(16));
    total.bits_total += r.report.bits_total;
    total.bits_correct += r.report.bits_correct;
    total.elapsed_cycles += r.report.elapsed_cycles;
    total.sender_cycles += r.report.sender_cycles;
    total.receiver_cycles += r.report.receiver_cycles;
  }
  // Calibration traffic goes through do_transmit and must NOT be counted.
  const auto derived = channel::report_from_snapshot(scope.snapshot());
  EXPECT_EQ(scope.snapshot().counter("channel.transmits"), 3u);
  EXPECT_EQ(derived.bits_total, total.bits_total);
  EXPECT_EQ(derived.bits_correct, total.bits_correct);
  EXPECT_EQ(derived.elapsed_cycles, total.elapsed_cycles);
  EXPECT_EQ(derived.sender_cycles, total.sender_cycles);
  EXPECT_EQ(derived.receiver_cycles, total.receiver_cycles);
}

TEST(ObsChannel, TracingDoesNotPerturbTiming) {
  const auto message = util::BitVec::from_string("1011001110001011");

  channel::TransmissionResult plain;
  {
    sys::MemorySystem system{sys::SystemConfig{}};
    attacks::ImpactPum attack(system);
    plain = attack.transmit(message);
  }

  channel::TransmissionResult traced;
  obs::TraceSession trace;
  {
    obs::Scope scope(&trace);
    sys::MemorySystem system{sys::SystemConfig{}};
    attacks::ImpactPum attack(system);
    traced = attack.transmit(message);
  }

  // Observation is read-only: the instrumented run is bit-identical.
  EXPECT_EQ(plain.decoded.to_string(), traced.decoded.to_string());
  EXPECT_EQ(plain.report.elapsed_cycles, traced.report.elapsed_cycles);
  EXPECT_EQ(plain.report.sender_cycles, traced.report.sender_cycles);
  EXPECT_EQ(plain.report.receiver_cycles, traced.report.receiver_cycles);
  if (obs::kCompiled) {
    EXPECT_GT(trace.size(), 0u);
  }
}

// --- Sweep capture -----------------------------------------------------

TEST(ObsSweep, CapturePerCellAndScheduleIndependent) {
  if (!obs::kCompiled) GTEST_SKIP() << "obs compiled out";
  const auto build = [](exec::Sweep& sweep) {
    for (std::uint64_t i = 0; i < 6; ++i) {
      sweep.add("cell" + std::to_string(i),
                [i] { obs::counter("work").add(i + 1); });
    }
  };

  exec::Sweep serial(nullptr);
  serial.set_capture(true);
  build(serial);
  const exec::RunReport serial_report = serial.run_resilient();
  ASSERT_TRUE(serial_report.ok());
  ASSERT_EQ(serial_report.snapshots.size(), 6u);
  obs::Snapshot merged;
  for (std::uint64_t i = 0; i < 6; ++i) {
    EXPECT_EQ(serial_report.snapshots[i].counter("work"), i + 1);
    merged.merge(serial_report.snapshots[i]);
  }
  EXPECT_EQ(merged.counter("work"), 21u);

  exec::ThreadPool pool(4);
  exec::Sweep parallel(&pool);
  parallel.set_capture(true);
  build(parallel);
  const exec::RunReport parallel_report = parallel.run_resilient();
  ASSERT_TRUE(parallel_report.ok());
  ASSERT_EQ(parallel_report.snapshots.size(), 6u);
  for (std::uint64_t i = 0; i < 6; ++i) {
    EXPECT_EQ(parallel_report.snapshots[i].counters,
              serial_report.snapshots[i].counters);
  }
}

TEST(ObsSweep, CaptureOffLeavesReportEmpty) {
  exec::Sweep sweep(nullptr);
  sweep.add("noop", [] {});
  const exec::RunReport report = sweep.run_resilient();
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.snapshots.empty());
}

}  // namespace
}  // namespace impact
