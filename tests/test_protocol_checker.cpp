// Unit tests: the online DRAM protocol checker (src/check/).
//
// Legal streams come from driving real Bank/MemoryController objects with
// the checker attached as an observer; illegal streams are synthesized as
// raw CommandRecords fed straight into on_command(), since the real state
// machines (by design) cannot produce them.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "check/protocol_checker.hpp"
#include "dram/bank.hpp"
#include "dram/config.hpp"
#include "dram/controller.hpp"
#include "dram/observer.hpp"

namespace impact::check {
namespace {

using dram::Bank;
using dram::BankStats;
using dram::CommandKind;
using dram::CommandRecord;
using dram::DramConfig;
using dram::MemoryController;
using dram::RowBufferOutcome;
using dram::RowPolicy;
using dram::Timing;

class ProtocolCheckerTest : public ::testing::Test {
 protected:
  ProtocolCheckerTest()
      : timing_(DramConfig{}.derived_timing()),
        checker_(timing_, FailMode::kCollect) {}

  /// A legal empty-activation record establishing an open row.
  [[nodiscard]] CommandRecord legal_activate(dram::RowId row,
                                             util::Cycle issue) const {
    CommandRecord r;
    r.kind = CommandKind::kAccess;
    r.bank = 3;
    r.row = row;
    r.issue = issue;
    r.start = issue;
    r.completion = r.start + timing_.empty_latency();
    r.ack = r.completion;
    r.outcome = RowBufferOutcome::kEmpty;
    r.policy = RowPolicy::kOpenRow;
    r.open_after = true;
    r.open_row_after = row;
    return r;
  }

  Timing timing_;
  ProtocolChecker checker_;
};

// --- Legal streams ----------------------------------------------------

TEST_F(ProtocolCheckerTest, LegalBankStreamHasNoViolations) {
  Bank bank(timing_, RowPolicy::kOpenRow);
  bank.set_observer(&checker_, 0);
  util::Cycle now = 1000;
  // Empty -> hit -> conflict -> rowclone (PEI-style row traffic followed by
  // an in-subarray copy), then an explicit precharge.
  now = bank.access(10, now).completion + 5;
  now = bank.access(10, now).completion + 5;
  now = bank.access(20, now).completion + 200;
  now = bank.rowclone(20, 21, now).completion + 10;
  bank.precharge(now);
  checker_.reconcile_stats(0, bank.stats());
  EXPECT_EQ(checker_.violations().size(), 0u)
      << checker_.violations().front().report();
  EXPECT_EQ(checker_.commands_checked(), 5u);
}

TEST_F(ProtocolCheckerTest, LegalStreamsAcrossAllPoliciesPass) {
  for (const RowPolicy policy :
       {RowPolicy::kOpenRow, RowPolicy::kClosedRow, RowPolicy::kConstantTime,
        RowPolicy::kAdaptive}) {
    ProtocolChecker checker(timing_, FailMode::kCollect);
    Bank bank(timing_, policy);
    bank.set_observer(&checker, 7);
    util::Cycle now = 500;
    for (int i = 0; i < 32; ++i) {
      const dram::RowId row = static_cast<dram::RowId>(i % 3);
      now = bank.access(row, now).completion + (i % 5);
    }
    now = bank.rowclone(1, 2, now + 300).completion + 10;
    checker.reconcile_stats(7, bank.stats());
    EXPECT_EQ(checker.violations().size(), 0u)
        << "policy " << to_string(policy) << ": "
        << checker.violations().front().report();
  }
}

TEST_F(ProtocolCheckerTest, ControllerStreamWithRefreshAndTimeoutPasses) {
  DramConfig cfg;
  cfg.timing.trefi_ns = 7800.0;  // Enable refresh noise.
  cfg.timing.timeout_mode = dram::RowTimeoutMode::kIdlePrecharge;
  MemoryController mc(cfg);
  ProtocolChecker checker(timing_, FailMode::kCollect);
  mc.set_observer(&checker);
  util::Cycle now = 100;
  for (int i = 0; i < 200; ++i) {
    const auto r = mc.access(static_cast<dram::PhysAddr>(i) * 4096, now);
    now = r.completion + ((i % 7) * 300);  // Some gaps cross the timeout.
  }
  for (dram::BankId b = 0; b < mc.banks(); ++b) {
    checker.reconcile_stats(b, mc.bank_stats(b));
  }
  EXPECT_EQ(checker.violations().size(), 0u)
      << checker.violations().front().report();
}

// --- Illegal streams (synthetic) --------------------------------------

TEST_F(ProtocolCheckerTest, TimeTravelStartIsCaught) {
  checker_.on_command(legal_activate(10, 1000));
  // Second command starts before the first one did.
  CommandRecord bad = legal_activate(11, 400);
  bad.outcome = RowBufferOutcome::kConflict;  // Row 10 is open.
  checker_.on_command(bad);
  ASSERT_FALSE(checker_.violations().empty());
  const Violation& v = checker_.violations().front();
  EXPECT_EQ(v.rule, "monotonic-start");
  EXPECT_EQ(v.bank, 3u);
  EXPECT_NE(v.report().find("bank 3"), std::string::npos);
  EXPECT_NE(v.trace.find("row=10"), std::string::npos)
      << "trace must show the preceding command on the bank";
}

TEST_F(ProtocolCheckerTest, CompletionBeforeStartIsCaught) {
  CommandRecord bad = legal_activate(10, 1000);
  bad.completion = bad.start - 1;
  bad.ack = bad.completion;
  checker_.on_command(bad);
  ASSERT_FALSE(checker_.violations().empty());
  EXPECT_EQ(checker_.violations().front().rule, "time-travel");
  EXPECT_EQ(checker_.violations().front().bank, 3u);
}

TEST_F(ProtocolCheckerTest, HitWithoutActivateIsCaught) {
  // Empty -> Hit with no prior ACT: the row buffer starts closed.
  CommandRecord bad = legal_activate(10, 1000);
  bad.outcome = RowBufferOutcome::kHit;
  bad.completion = bad.start + timing_.hit_latency();
  bad.ack = bad.completion;
  checker_.on_command(bad);
  ASSERT_FALSE(checker_.violations().empty());
  EXPECT_EQ(checker_.violations().front().rule, "row-state");
  EXPECT_NE(checker_.violations().front().message.find("prior activation"),
            std::string::npos);
}

TEST_F(ProtocolCheckerTest, HitOnWrongRowIsCaught) {
  checker_.on_command(legal_activate(10, 1000));
  CommandRecord bad = legal_activate(11, 2000);
  bad.outcome = RowBufferOutcome::kHit;
  bad.completion = bad.start + timing_.hit_latency();
  bad.ack = bad.completion;
  checker_.on_command(bad);
  ASSERT_FALSE(checker_.violations().empty());
  EXPECT_EQ(checker_.violations().front().rule, "row-state");
}

TEST_F(ProtocolCheckerTest, RowCloneAckAfterCompletionIsCaught) {
  checker_.on_command(legal_activate(10, 1000));
  CommandRecord bad;
  bad.kind = CommandKind::kRowClone;
  bad.bank = 3;
  bad.src_row = 10;
  bad.row = 11;
  bad.issue = 2000;
  bad.start = 2000;
  bad.outcome = RowBufferOutcome::kHit;
  bad.completion = bad.start + timing_.tras;
  bad.ack = bad.completion + 50;  // Acknowledged after the copy finished.
  bad.policy = RowPolicy::kOpenRow;
  bad.open_after = true;
  bad.open_row_after = 11;
  checker_.on_command(bad);
  ASSERT_FALSE(checker_.violations().empty());
  EXPECT_EQ(checker_.violations().front().rule, "ack-after-completion");
  EXPECT_EQ(checker_.violations().front().bank, 3u);
}

TEST_F(ProtocolCheckerTest, TooFastConflictViolatesMinLatency) {
  checker_.on_command(legal_activate(10, 1000));
  CommandRecord bad = legal_activate(11, 5000);
  bad.outcome = RowBufferOutcome::kConflict;
  // A conflict needs PRE + ACT + column + burst; hit latency is too fast.
  bad.completion = bad.start + timing_.hit_latency();
  bad.ack = bad.completion;
  checker_.on_command(bad);
  ASSERT_FALSE(checker_.violations().empty());
  EXPECT_EQ(checker_.violations().front().rule, "min-latency");
}

TEST_F(ProtocolCheckerTest, StatsMismatchIsCaught) {
  checker_.on_command(legal_activate(10, 1000));
  BankStats claimed;  // Claims nothing happened.
  checker_.reconcile_stats(3, claimed);
  ASSERT_FALSE(checker_.violations().empty());
  EXPECT_EQ(checker_.violations().front().rule, "stats-mismatch");
  EXPECT_EQ(checker_.violations().front().bank, 3u);
}

// --- Trace / ring buffer ----------------------------------------------

TEST_F(ProtocolCheckerTest, TraceKeepsOnlyRecentCommandsOldestFirst) {
  ProtocolChecker checker(timing_, FailMode::kCollect, /*trace_depth=*/4);
  util::Cycle now = 1000;
  for (dram::RowId row = 0; row < 10; ++row) {
    CommandRecord r = legal_activate(row, now);
    r.outcome =
        row == 0 ? RowBufferOutcome::kEmpty : RowBufferOutcome::kConflict;
    r.completion = r.start + 10000;  // Generously slow: always legal.
    r.ack = r.completion;
    checker.on_command(r);
    now = r.completion + 100;
  }
  const std::string trace = checker.trace(3);
  EXPECT_EQ(trace.find("row=5"), std::string::npos);
  const auto pos6 = trace.find("row=6");
  const auto pos9 = trace.find("row=9");
  ASSERT_NE(pos6, std::string::npos);
  ASSERT_NE(pos9, std::string::npos);
  EXPECT_LT(pos6, pos9);
  EXPECT_EQ(checker.violations().size(), 0u);
}

// --- Runtime toggling --------------------------------------------------

TEST_F(ProtocolCheckerTest, EnvTogglesAutoAttachedChecker) {
  ASSERT_EQ(setenv("IMPACT_CHECK", "1", /*overwrite=*/1), 0);
  {
    MemoryController mc(DramConfig{});
    EXPECT_NE(mc.checker(), nullptr);
    // Exercise the abort-mode checker on a legal stream; destruction
    // reconciles stats and must not abort.
    util::Cycle now = 100;
    for (int i = 0; i < 50; ++i) {
      now = mc.access(static_cast<dram::PhysAddr>(i) * 64, now).completion + 1;
    }
  }
  ASSERT_EQ(setenv("IMPACT_CHECK", "0", /*overwrite=*/1), 0);
  {
    MemoryController mc(DramConfig{});
    EXPECT_EQ(mc.checker(), nullptr);
  }
  ASSERT_EQ(setenv("IMPACT_CHECK", "1", /*overwrite=*/1), 0);
}

TEST_F(ProtocolCheckerTest, SetObserverReplacesAutoChecker) {
  ASSERT_EQ(setenv("IMPACT_CHECK", "1", /*overwrite=*/1), 0);
  MemoryController mc(DramConfig{});
  ASSERT_NE(mc.checker(), nullptr);
  ProtocolChecker mine(timing_, FailMode::kCollect);
  mc.set_observer(&mine);
  EXPECT_EQ(mc.checker(), nullptr);
  util::Cycle now = 100;
  now = mc.access(0, now).completion + 1;
  (void)mc.access(0, now);
  EXPECT_EQ(mine.commands_checked(), 2u);
  EXPECT_EQ(mine.violations().size(), 0u);
  mc.set_observer(nullptr);  // Detach before `mine` goes out of scope.
}

}  // namespace
}  // namespace impact::check
