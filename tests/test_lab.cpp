// The lab layer: registry catalogue and duplicate rejection, the shared
// argv vocabulary (parse_args), parameter override resolution through
// Context, renderer golden byte-identity against synthetic grids (the
// rendering half of the old drivers, pinned without simulating), and the
// cell-count pins `impact describe` reports.
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lab/args.hpp"
#include "lab/context.hpp"
#include "lab/experiments.hpp"
#include "lab/registry.hpp"

namespace {

using impact::lab::Args;
using impact::lab::Context;
using impact::lab::ExperimentSpec;
using impact::lab::Kind;
using impact::lab::Registry;
using impact::lab::parse_args;

/// One shared built-in catalogue: registration is pure, the registry is
/// immutable after construction.
const Registry& builtin() {
  static const Registry* const kRegistry = [] {
    auto* r = new Registry;
    impact::lab::register_builtin(*r);
    return r;
  }();
  return *kRegistry;
}

/// A minimal spec for argv tests: one declared parameter, positional.
ExperimentSpec toy_spec() {
  ExperimentSpec spec;
  spec.name = "toy";
  spec.binary = "bench_toy";
  spec.description = "argv fixture";
  spec.params = {{"banks", "bank count", "1024"}};
  spec.positional = {"banks"};
  spec.run = [](Context&) { return 0; };
  return spec;
}

TEST(LabRegistry, BuiltinCatalogueIsCompleteAndSorted) {
  // 20 bench_* + 6 examples/* former binaries.
  EXPECT_EQ(builtin().size(), 26u);
  const auto all = builtin().all();
  ASSERT_EQ(all.size(), 26u);
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(all[i - 1]->name, all[i]->name);
  }
  for (const auto* spec : all) {
    EXPECT_FALSE(spec->binary.empty()) << spec->name;
    EXPECT_FALSE(spec->description.empty()) << spec->name;
    EXPECT_TRUE(spec->run) << spec->name;
  }
}

TEST(LabRegistry, FindResolvesNamesAndBinariesMapBack) {
  const ExperimentSpec* fig11 = builtin().find("fig11");
  ASSERT_NE(fig11, nullptr);
  EXPECT_EQ(fig11->binary, "bench_fig11");
  EXPECT_EQ(fig11->kind, Kind::kFigure);
  const ExperimentSpec* quickstart = builtin().find("quickstart");
  ASSERT_NE(quickstart, nullptr);
  EXPECT_EQ(quickstart->kind, Kind::kExample);
  EXPECT_EQ(builtin().find("no_such_experiment"), nullptr);
}

TEST(LabRegistry, RejectsDuplicateEmptyAndBodylessSpecs) {
  Registry r;
  r.add(toy_spec());
  EXPECT_THROW(r.add(toy_spec()), std::invalid_argument);

  ExperimentSpec unnamed = toy_spec();
  unnamed.name.clear();
  EXPECT_THROW(r.add(std::move(unnamed)), std::invalid_argument);

  ExperimentSpec bodyless = toy_spec();
  bodyless.name = "bodyless";
  bodyless.run = nullptr;
  EXPECT_THROW(r.add(std::move(bodyless)), std::invalid_argument);
  EXPECT_EQ(r.size(), 1u);
}

TEST(LabArgs, CommonFlagsParse) {
  const ExperimentSpec spec = toy_spec();
  const char* argv[] = {"toy", "--smoke", "--threads", "4",
                        "--filter", "fig"};
  Args args;
  std::string error;
  ASSERT_TRUE(parse_args(spec, 6, argv, args, error)) << error;
  EXPECT_TRUE(args.smoke);
  EXPECT_EQ(args.threads, 4u);
  EXPECT_EQ(args.filter, "fig");
  EXPECT_TRUE(args.extra.empty());
}

TEST(LabArgs, UnknownFlagAndSurplusPositionalRejected) {
  const ExperimentSpec spec = toy_spec();
  Args args;
  std::string error;
  const char* unknown[] = {"toy", "--no-such-flag"};
  EXPECT_FALSE(parse_args(spec, 2, unknown, args, error));
  EXPECT_FALSE(error.empty());

  const char* surplus[] = {"toy", "64", "128"};
  error.clear();
  EXPECT_FALSE(parse_args(spec, 3, surplus, args, error));
  EXPECT_FALSE(error.empty());

  const char* undeclared[] = {"toy", "--param", "rows=3"};
  error.clear();
  EXPECT_FALSE(parse_args(spec, 3, undeclared, args, error));
  EXPECT_FALSE(error.empty());
}

TEST(LabContext, ParamOverrideRoundTrip) {
  const ExperimentSpec spec = toy_spec();

  {  // No override: the spec default resolves.
    Context ctx(spec, Args{});
    EXPECT_EQ(ctx.u32("banks"), 1024u);
    EXPECT_EQ(ctx.str("banks"), "1024");
  }
  for (const auto& argv : std::vector<std::vector<const char*>>{
           {"toy", "--param", "banks=64"},  // --param k=v
           {"toy", "--banks", "64"},        // declared-name flag
           {"toy", "--banks=64"},           // inline form
           {"toy", "64"},                   // positional binding
       }) {
    Args args;
    std::string error;
    ASSERT_TRUE(parse_args(spec, static_cast<int>(argv.size()),
                           argv.data(), args, error))
        << error;
    Context ctx(spec, std::move(args));
    EXPECT_EQ(ctx.u32("banks"), 64u);
  }
}

TEST(LabContext, UndeclaredAndUnparsableParamsThrow) {
  const ExperimentSpec spec = toy_spec();
  Context ctx(spec, Args{});
  EXPECT_THROW((void)ctx.str("rows"), std::invalid_argument);

  Args args;
  args.params["banks"] = "not-a-number";
  Context bad(spec, std::move(args));
  EXPECT_THROW((void)bad.u32("banks"), std::invalid_argument);
}

// ---------------------------------------------------------------------
// Renderer golden tests: the rendering half of a former driver, pinned
// byte-for-byte against a synthetic grid. A formatting regression (table
// widths, precision, the closing paragraphs) fails here without running
// a single simulation.

TEST(LabRender, Fig11GoldenBytes) {
  impact::store::CellRunner::MatrixResult grid;
  grid.cells.resize(5);
  for (std::size_t w = 0; w < 5; ++w) {
    grid.cells[w].resize(4);
    for (std::size_t p = 0; p < 4; ++p) {
      auto& cell = grid.cells[w][p];
      // Overheads come out at exactly 10*p percent for every workload.
      cell.stats.cycles = 1000 * (w + 1) + 100 * p * (w + 1);
      cell.stats.instructions = 1000000;
      cell.stats.accesses = 10000;
      cell.stats.llc_misses = 2500 * (w + 1);
      cell.stats.row_hit_rate = 0.5 + 0.05 * static_cast<double>(w);
    }
  }
  // Snapshots stay empty, so the rendering is identical with and without
  // the obs spine (-DIMPACT_OBS=OFF) and the grid-totals section is
  // skipped.
  const std::string golden =
      R"(| workload | MPKI  | row-hit rate | open-row (cyc) | CRP overhead | CTD overhead | adaptive overhead (ext.) |
|----------|-------|--------------|----------------|--------------|--------------|--------------------------|
| BC       |  2.50 |         0.50 |           1000 |        10.0% |        20.0% |                    30.0% |
| BFS      |  5.00 |         0.55 |           2000 |        10.0% |        20.0% |                    30.0% |
| CC       |  7.50 |         0.60 |           3000 |        10.0% |        20.0% |                    30.0% |
| TC       | 10.00 |         0.65 |           4000 |        10.0% |        20.0% |                    30.0% |
| PR       | 12.50 |         0.70 |           5000 |        10.0% |        20.0% |                    30.0% |

average: CRP 10.0% (paper 15%), CTD 20.0% (paper 26%), adaptive 30.0% (extension)
The adaptive open-page policy costs about as much as CRP on these
conflict-heavy workloads and pushes the naive covert channel to
near-chance error (test_defense AdaptivePolicy tests) — but unlike
CRP it keeps benign streaming hits, and unlike CRP its guarantee is
heuristic: an attacker who re-trains the predictor with hit bursts
can partially reopen the channel.
)";
  EXPECT_EQ(impact::lab::render_fig11(grid), golden);
}

TEST(LabRender, AblationFaultsGoldenBytes) {
  const std::vector<std::vector<std::string>> rows = {
      {"0.0", "1.00%", "0", "3.00 Mb/s", "2", "4.00 Mb/s", "1", "0.000%"},
      {"4.0", "12.50%", "7", "1.50 Mb/s", "9", "2.25 Mb/s", "5", "0.391%"},
  };
  const std::string golden =
      R"(| fault scale | raw error | H(7,4) residual | framed goodput | framed retx | framed+H74 goodput | framed+H74 retx | residual BER |
|-------------|-----------|-----------------|----------------|-------------|--------------------|-----------------|--------------|
|         0.0 |     1.00% |               0 | 3.00 Mb/s      |           2 | 4.00 Mb/s          |               1 |       0.000% |
|         4.0 |    12.50% |               7 | 1.50 Mb/s      |           9 | 2.25 Mb/s          |               5 |       0.391% |

Coding alone leaves residual errors once faults cluster; framing
alone recovers everything but pays a retransmission per corrupted
frame; the inner code under the framed layer absorbs isolated flips
and keeps the retry budget for the bursts.
)";
  EXPECT_EQ(impact::lab::render_ablation_faults(rows), golden);
}

// ---------------------------------------------------------------------
// Cell-count pins: the numbers `impact describe` prints and the store /
// resume stages budget around. A grid-shape change must show up here.

TEST(LabSpecs, CellCountPins) {
  const struct {
    const char* name;
    std::size_t cells;
  } kPins[] = {
      {"fig11", 20},           // 5 workloads x 4 row policies
      {"fig10", 4},            // bank-count sweep
      {"table1", 5},           // attack primitives
      {"ablation_faults", 5},  // fault scales
      {"ablation_sweep", 26},  // five sub-sweeps: 5+5+3+7+6
      {"sweep_scaling", 15},   // 5 workloads x 3 thread counts
      {"store", 20},           // 5 workloads x 4 policies
      {"defense_tradeoffs", 15},  // 5 workloads x 3 policies
  };
  for (const auto& pin : kPins) {
    const ExperimentSpec* spec = builtin().find(pin.name);
    ASSERT_NE(spec, nullptr) << pin.name;
    ASSERT_TRUE(spec->cell_count) << pin.name;
    Context ctx(*spec, Args{});
    EXPECT_EQ(spec->cell_count(ctx), pin.cells) << pin.name;
  }
}

}  // namespace
