// Unit tests: PMU locality monitor, PEI dispatcher, RowClone unit,
// off-chip predictor.
#include <gtest/gtest.h>

#include "pim/locality_monitor.hpp"
#include "pim/offchip_predictor.hpp"
#include "pim/pei.hpp"
#include "pim/rowclone.hpp"
#include "sys/system.hpp"

namespace impact::pim {
namespace {

TEST(LocalityMonitor, ColdBlockGoesToMemory) {
  LocalityMonitor pmu;
  EXPECT_EQ(pmu.decide(100), PeiPlacement::kMemory);
  EXPECT_EQ(pmu.stats().allocations, 1u);
}

TEST(LocalityMonitor, IgnoreFlagSkipsFirstHit) {
  LocalityMonitor pmu;
  (void)pmu.decide(100);  // Allocate with ignore flag.
  EXPECT_EQ(pmu.decide(100), PeiPlacement::kMemory);  // Ignored first hit.
  EXPECT_EQ(pmu.stats().ignored_first_hits, 1u);
}

TEST(LocalityMonitor, HotBlockMovesToHost) {
  LocalityMonitorConfig config;
  config.hot_threshold = 2;
  LocalityMonitor pmu(config);
  (void)pmu.decide(100);                              // Allocate.
  (void)pmu.decide(100);                              // Ignored.
  EXPECT_EQ(pmu.decide(100), PeiPlacement::kMemory);  // hits=1 < 2.
  EXPECT_EQ(pmu.decide(100), PeiPlacement::kHost);    // hits=2.
  EXPECT_GT(pmu.stats().host_decisions, 0u);
}

TEST(LocalityMonitor, AttackPatternStaysMemorySide) {
  // The §4.1 bypass: touch every block at most twice.
  LocalityMonitor pmu;
  for (std::uint64_t block = 0; block < 256; ++block) {
    EXPECT_EQ(pmu.decide(block), PeiPlacement::kMemory);
    EXPECT_EQ(pmu.decide(block), PeiPlacement::kMemory);
  }
  EXPECT_EQ(pmu.stats().host_decisions, 0u);
}

TEST(LocalityMonitor, LruEvictionRecyclesEntries) {
  LocalityMonitorConfig config;
  config.entries = 4;
  config.ways = 4;  // One set.
  LocalityMonitor pmu(config);
  for (std::uint64_t b = 0; b < 5; ++b) (void)pmu.decide(b);
  // Block 0 was evicted; re-deciding allocates fresh (memory-side).
  EXPECT_EQ(pmu.decide(0), PeiPlacement::kMemory);
  EXPECT_EQ(pmu.stats().allocations, 6u);
}

class PeiTest : public ::testing::Test {
 protected:
  PeiTest() : system_(sys::SystemConfig{}), pei_(PeiConfig{}, system_, 1) {
    span_ = system_.vmem().map_row(1, 4, 30);
    system_.warm_span(1, span_);
  }

  sys::MemorySystem system_;
  PeiDispatcher pei_;
  sys::VSpan span_;
};

TEST_F(PeiTest, MemorySidePeiActivatesRow) {
  util::Cycle clock = 0;
  const auto r = pei_.execute(span_.vaddr, clock);
  EXPECT_EQ(r.placement, PeiPlacement::kMemory);
  EXPECT_EQ(r.bank, 4u);
  EXPECT_EQ(system_.controller().open_row(4, clock), 30u);
  EXPECT_EQ(clock, r.latency);
}

TEST_F(PeiTest, HitVsConflictVisibleThroughPei) {
  util::Cycle clock = 0;
  const auto other = system_.vmem().map_row(1, 4, 31);
  system_.warm_span(1, other);
  auto col = [&] { return pei_.next_bypass_column(8192, 64); };
  (void)pei_.execute(span_.vaddr + col(), clock);
  const auto hit = pei_.execute(span_.vaddr + col(), clock);
  EXPECT_EQ(hit.outcome, dram::RowBufferOutcome::kHit);
  (void)pei_.execute(other.vaddr + col(), clock);
  const auto conflict = pei_.execute(span_.vaddr + col(), clock);
  EXPECT_EQ(conflict.outcome, dram::RowBufferOutcome::kConflict);
  EXPECT_GT(conflict.latency, hit.latency);
}

TEST_F(PeiTest, RepeatedBlockEventuallyHostPlaced) {
  util::Cycle clock = 0;
  PeiResult r;
  for (int i = 0; i < 5; ++i) r = pei_.execute(span_.vaddr, clock);
  EXPECT_EQ(r.placement, PeiPlacement::kHost);
}

TEST_F(PeiTest, BypassColumnsRotateThroughRow) {
  std::set<std::uint32_t> cols;
  for (int i = 0; i < 128; ++i) cols.insert(pei_.next_bypass_column(8192, 64));
  EXPECT_EQ(cols.size(), 128u);  // 8192/64 distinct blocks.
  // Wraps around afterwards.
  EXPECT_EQ(pei_.next_bypass_column(8192, 64), *cols.begin());
}

class RowCloneUnitTest : public ::testing::Test {
 protected:
  RowCloneUnitTest()
      : system_(sys::SystemConfig{}),
        unit_(RowCloneConfig{}, system_, 1) {
    src_ = system_.vmem().map_row_span(1, 8);
    dst_ = system_.vmem().map_row_span(1, 9);
    system_.warm_span(1, src_);
    system_.warm_span(1, dst_);
  }

  sys::MemorySystem system_;
  RowCloneUnit unit_;
  sys::VSpan src_;
  sys::VSpan dst_;
};

TEST_F(RowCloneUnitTest, MaskSelectsBanks) {
  util::Cycle clock = 0;
  const auto r = unit_.execute(
      RowCloneRequest{src_.vaddr, dst_.vaddr, 0b1010}, clock);
  ASSERT_EQ(r.legs.size(), 2u);
  EXPECT_EQ(r.legs[0].bank, 1u);
  EXPECT_EQ(r.legs[1].bank, 3u);
  EXPECT_EQ(system_.controller().open_row(1, clock), 9u);
  EXPECT_FALSE(system_.controller().open_row(0, clock).has_value());
}

TEST_F(RowCloneUnitTest, CopiesData) {
  auto* data = system_.controller().data();
  ASSERT_NE(data, nullptr);
  const std::array<std::uint8_t, 4> payload{1, 2, 3, 4};
  data->write(dram::DramAddress{2, 8, 0}, payload);
  util::Cycle clock = 0;
  (void)unit_.execute(RowCloneRequest{src_.vaddr, dst_.vaddr, 0b100}, clock);
  std::array<std::uint8_t, 4> out{};
  data->read(dram::DramAddress{2, 9, 0}, out);
  EXPECT_EQ(out, payload);
}

TEST_F(RowCloneUnitTest, EmptyMaskRejected) {
  util::Cycle clock = 0;
  EXPECT_THROW(
      (void)unit_.execute(RowCloneRequest{src_.vaddr, dst_.vaddr, 0}, clock),
      std::invalid_argument);
}

TEST_F(RowCloneUnitTest, NonBlockingRetiresAtAck) {
  RowCloneConfig blocking_cfg;
  blocking_cfg.blocking = true;
  RowCloneUnit blocking_unit(blocking_cfg, system_, 1);
  util::Cycle nb_clock = 0;
  util::Cycle b_clock = 0;
  (void)unit_.execute(RowCloneRequest{src_.vaddr, dst_.vaddr, 1}, nb_clock);
  (void)blocking_unit.execute(RowCloneRequest{src_.vaddr, dst_.vaddr, 2},
                              b_clock);
  EXPECT_LT(nb_clock, b_clock);
}

TEST(OffChipPredictorTest, InitialBiasIsOffChip) {
  OffChipPredictor predictor;
  EXPECT_TRUE(predictor.predict_offchip(1234));
}

TEST(OffChipPredictorTest, LearnsOnChipBlocks) {
  OffChipPredictor predictor;
  for (int i = 0; i < 16; ++i) predictor.train(42, /*was_offchip=*/false);
  EXPECT_FALSE(predictor.predict_offchip(42));
  // An unrelated block keeps the off-chip default.
  EXPECT_TRUE(predictor.predict_offchip(0xABCDEF));
}

TEST(OffChipPredictorTest, PimAttackPatternStaysOffChipStable) {
  // PiM operations never fill the cache, so the truth is always
  // "off-chip" and the predictor reinforces memory-side execution: the
  // positive feedback loop PnM-OffChip's attacker relies on.
  OffChipPredictor predictor;
  for (std::uint64_t block = 0; block < 512; ++block) {
    EXPECT_TRUE(predictor.predict_and_train(block % 64, true));
  }
  EXPECT_GT(predictor.stats().accuracy(), 0.95);
}

TEST(OffChipPredictorTest, WeightsSaturate) {
  OffChipPredictor predictor;
  for (int i = 0; i < 1000; ++i) predictor.train(7, false);
  for (int i = 0; i < 8; ++i) predictor.train(7, true);
  // A long history cannot lock the prediction forever (clamped weights).
  for (int i = 0; i < 40; ++i) predictor.train(7, true);
  EXPECT_TRUE(predictor.predict_offchip(7));
}

}  // namespace
}  // namespace impact::pim
