// Tests: MPR cost model, side channel under defenses, channel framework
// edge cases.
#include <gtest/gtest.h>

#include "attacks/impact_pnm.hpp"
#include "attacks/side_channel.hpp"
#include "defense/defense.hpp"
#include "defense/mpr_model.hpp"

namespace impact {
namespace {

using defense::AppDemand;

dram::DramConfig small_device() {
  dram::DramConfig d;
  d.ranks = 1;
  d.banks_per_rank = 8;
  d.rows_per_bank = 1024;  // 8 MiB banks.
  return d;
}

TEST(MprModel, AdmitsUntilBanksRunOut) {
  const auto device = small_device();
  // Each app needs 2 banks (12 MiB / 8 MiB-per-bank), 8 banks total.
  std::vector<AppDemand> apps(6, AppDemand{12ull << 20, 0});
  const auto r = defense::evaluate_mpr(device, apps);
  EXPECT_EQ(r.apps_admitted, 4u);
  EXPECT_EQ(r.apps_rejected, 2u);
  EXPECT_EQ(r.banks_allocated, 8u);
}

TEST(MprModel, BankGranularityStrandsCapacity) {
  const auto device = small_device();
  // 1 MiB app occupies a whole 8 MiB bank.
  const auto r = defense::evaluate_mpr(device, {AppDemand{1ull << 20, 0}});
  EXPECT_EQ(r.banks_allocated, 1u);
  EXPECT_NEAR(r.utilization(), 1.0 / 8.0, 1e-9);
}

TEST(MprModel, SharedDataIsDuplicatedPerApp) {
  const auto device = small_device();
  std::vector<AppDemand> apps(3, AppDemand{0, 4ull << 20});
  const auto mpr = defense::evaluate_mpr(device, apps);
  EXPECT_EQ(mpr.duplication_bytes, 2ull * (4ull << 20));
  const auto shared = defense::evaluate_unpartitioned(device, apps);
  EXPECT_EQ(shared.bytes_requested, 4ull << 20);  // Stored once.
  EXPECT_GT(mpr.bytes_requested, shared.bytes_requested);
}

TEST(MprModel, UnpartitionedAdmitsEveryone) {
  const auto device = small_device();
  std::vector<AppDemand> apps(50, AppDemand{1ull << 20, 0});
  const auto r = defense::evaluate_unpartitioned(device, apps);
  EXPECT_EQ(r.apps_admitted, 50u);
  EXPECT_EQ(r.apps_rejected, 0u);
  EXPECT_DOUBLE_EQ(r.utilization(), 1.0);
}

TEST(SideChannelDefense, OpenRowBaselineLeaks) {
  attacks::SideChannelConfig config;
  config.banks = 1024;
  config.genome_length = 1ull << 16;
  config.reads = 4;
  attacks::ReadMappingSpy baseline(config);
  const auto open = baseline.run();
  EXPECT_GT(open.probes.correct, open.probes.observations / 2);
  EXPECT_LT(open.probes.error_rate(), 0.2);
}

TEST(SideChannelDefense, CtdRemovesThePeiTimingMargin) {
  sys::SystemConfig config;
  config.dram.policy = dram::RowPolicy::kConstantTime;
  sys::MemorySystem system(config);
  pim::PeiDispatcher pei(pim::PeiConfig{}, system, 1);
  const auto a = system.vmem().map_row(1, 2, 10);
  const auto b = system.vmem().map_row(1, 2, 11);
  system.warm_span(1, a);
  system.warm_span(1, b);
  util::Cycle clock = 0;
  auto col = [&] { return pei.next_bypass_column(8192, 64); };
  (void)pei.execute(a.vaddr + col(), clock);
  const auto hit_case = pei.execute(a.vaddr + col(), clock);
  (void)pei.execute(b.vaddr + col(), clock);
  const auto conflict_case = pei.execute(a.vaddr + col(), clock);
  EXPECT_EQ(hit_case.latency, conflict_case.latency);
}

TEST(ChannelEdges, SingleBitMessage) {
  sys::MemorySystem system{sys::SystemConfig{}};
  attacks::ImpactPnm attack(system);
  const auto r = attack.transmit(util::BitVec::from_string("1"));
  EXPECT_EQ(r.report.bits_total, 1u);
  EXPECT_EQ(r.report.bit_errors(), 0u);
}

TEST(ChannelEdges, EmptyMessageRejected) {
  sys::MemorySystem system{sys::SystemConfig{}};
  attacks::ImpactPnm attack(system);
  EXPECT_THROW((void)attack.transmit(util::BitVec{}),
               std::invalid_argument);
}

TEST(ChannelEdges, BatchLargerThanMessage) {
  sys::MemorySystem system{sys::SystemConfig{}};
  attacks::ImpactPnmConfig config;
  config.channel.batch_bits = 64;
  attacks::ImpactPnm attack(system, config);
  const auto r = attack.transmit(util::BitVec::from_string("101"));
  EXPECT_EQ(r.report.bit_errors(), 0u);
}

TEST(ChannelEdges, RepeatedTransmissionsStayClean) {
  // State self-heals: 20 consecutive messages, no drift.
  sys::MemorySystem system{sys::SystemConfig{}};
  attacks::ImpactPnm attack(system);
  util::Xoshiro256 rng(81);
  for (int i = 0; i < 20; ++i) {
    const auto r = attack.transmit(util::BitVec::random(32, rng));
    EXPECT_EQ(r.report.bit_errors(), 0u) << "message " << i;
  }
}

TEST(ChannelEdges, ConfigValidation) {
  sys::MemorySystem system{sys::SystemConfig{}};
  attacks::ImpactPnmConfig config;
  config.channel.banks = 0;
  EXPECT_THROW(attacks::ImpactPnm(system, config), std::invalid_argument);
  config = attacks::ImpactPnmConfig{};
  config.channel.banks = 100000;
  EXPECT_THROW(attacks::ImpactPnm(system, config), std::invalid_argument);
  config = attacks::ImpactPnmConfig{};
  config.channel.sender_row = config.channel.receiver_row;
  EXPECT_THROW(attacks::ImpactPnm(system, config), std::invalid_argument);
}

}  // namespace
}  // namespace impact
