// Unit + property tests: cache hierarchy, prefetchers, latency model.
#include <gtest/gtest.h>

#include "cache/hierarchy.hpp"
#include "cache/latency_model.hpp"
#include "cache/prefetcher.hpp"
#include "dram/controller.hpp"

namespace impact::cache {
namespace {

class HierarchyTest : public ::testing::Test {
 protected:
  HierarchyTest()
      : mc_(dram::DramConfig{}),
        config_([] {
          auto c = HierarchyConfig::table2();
          c.enable_prefetchers = false;  // Deterministic by default.
          return c;
        }()),
        hierarchy_(config_, mc_) {}

  dram::MemoryController mc_;
  HierarchyConfig config_;
  Hierarchy hierarchy_;
};

TEST_F(HierarchyTest, ColdMissGoesToMemoryAndFillsAllLevels) {
  const auto r = hierarchy_.access(0x10000, 0);
  EXPECT_EQ(r.level, HitLevel::kMemory);
  EXPECT_GT(r.latency, hierarchy_.full_lookup_latency());
  EXPECT_TRUE(hierarchy_.cached(0x10000));
  const auto again = hierarchy_.access(0x10000, 1000);
  EXPECT_EQ(again.level, HitLevel::kL1);
  EXPECT_EQ(again.latency, config_.l1.latency);
}

TEST_F(HierarchyTest, SameLineDifferentBytesHitTogether) {
  (void)hierarchy_.access(0x10000, 0);
  const auto r = hierarchy_.access(0x10000 + 63, 100);
  EXPECT_EQ(r.level, HitLevel::kL1);
}

TEST_F(HierarchyTest, L2HitAfterL1Displacement) {
  (void)hierarchy_.access(0x10000, 0);
  // Displace from the 8-way L1 set with 8 conflicting lines (L1 has 64
  // sets of 64 B lines -> stride 4096).
  for (int k = 1; k <= 8; ++k) {
    (void)hierarchy_.access(0x10000 + k * 4096ull, 1000 + k * 100);
  }
  const auto r = hierarchy_.access(0x10000, 10000);
  EXPECT_EQ(r.level, HitLevel::kL2);
  EXPECT_EQ(r.latency, config_.l1.latency + config_.l2.latency);
}

TEST_F(HierarchyTest, ClflushInvalidatesEverywhere) {
  (void)hierarchy_.access(0x20000, 0);
  EXPECT_TRUE(hierarchy_.cached(0x20000));
  const auto lat = hierarchy_.clflush(0x20000, 100);
  EXPECT_GE(lat, config_.l3.latency);
  EXPECT_FALSE(hierarchy_.cached(0x20000));
  const auto r = hierarchy_.access(0x20000, 1000);
  EXPECT_EQ(r.level, HitLevel::kMemory);
}

TEST_F(HierarchyTest, CleanClflushCostsOnlyLlcProbe) {
  (void)hierarchy_.access(0x20000, 0);
  EXPECT_EQ(hierarchy_.clflush(0x20000, 100), config_.l3.latency);
}

TEST_F(HierarchyTest, DirtyClflushPaysWriteback) {
  (void)hierarchy_.access(0x20000, 0, /*is_write=*/true);
  const auto lat = hierarchy_.clflush(0x20000, 100);
  EXPECT_GT(lat, config_.l3.latency);  // §3.2: WB on the critical path.
}

TEST_F(HierarchyTest, EvictViaSetDisplacesTarget) {
  (void)hierarchy_.access(0x30000, 0);
  EXPECT_TRUE(hierarchy_.cached(0x30000));
  const auto lat = hierarchy_.evict_via_set(0x30000, 1000);
  EXPECT_FALSE(hierarchy_.cached(0x30000));
  // At least `ways` serialized traversals.
  EXPECT_GE(lat, config_.l3.ways * hierarchy_.full_lookup_latency());
}

TEST_F(HierarchyTest, EvictViaSetAvoidsRequestedBank) {
  dram::MemoryController mc(dram::DramConfig{},
                            dram::MappingScheme::kXorBankHash);
  Hierarchy h(config_, mc);
  const dram::PhysAddr target = 0x40000;
  const auto bank = mc.mapping().decode(target).bank;
  mc.reset_stats();
  (void)h.evict_via_set(target, 0, bank);
  // The avoided bank saw no eviction traffic.
  EXPECT_EQ(mc.bank_stats(bank).accesses(), 0u);
}

TEST_F(HierarchyTest, EvictViaSetIsRepeatablyEffective) {
  // Repeated evict/reload rounds must displace the target every time (the
  // per-round cost varies with SRRIP churn and bank serialization, which
  // is exactly why the §3.3 baseline attack is slow).
  for (int round = 0; round < 4; ++round) {
    (void)hierarchy_.access(0x30000, round * 10000);
    ASSERT_TRUE(hierarchy_.cached(0x30000));
    (void)hierarchy_.evict_via_set(0x30000, round * 10000 + 5000);
    ASSERT_FALSE(hierarchy_.cached(0x30000));
  }
}

TEST_F(HierarchyTest, InclusiveBackInvalidation) {
  // Fill a line, then displace it from the LLC via eviction; it must also
  // leave L1/L2 (inclusive hierarchy).
  (void)hierarchy_.access(0x50000, 0);
  (void)hierarchy_.evict_via_set(0x50000, 100);
  EXPECT_FALSE(hierarchy_.l1().contains(0x50000 / 64));
  EXPECT_FALSE(hierarchy_.l2().contains(0x50000 / 64));
  EXPECT_FALSE(hierarchy_.l3().contains(0x50000 / 64));
}

TEST_F(HierarchyTest, NonTemporalStoreBypassesFills) {
  const auto lat = hierarchy_.store_nontemporal(0x60000, 0);
  EXPECT_GT(lat, hierarchy_.full_lookup_latency());
  EXPECT_FALSE(hierarchy_.cached(0x60000));
}

TEST_F(HierarchyTest, DropAllForgetsEverything) {
  (void)hierarchy_.access(0x10000, 0);
  hierarchy_.drop_all();
  EXPECT_FALSE(hierarchy_.cached(0x10000));
}

TEST(HierarchyPrefetch, StreamerPullsNeighborLines) {
  dram::MemoryController mc(dram::DramConfig{});
  auto config = HierarchyConfig::table2();
  config.enable_prefetchers = true;
  Hierarchy h(config, mc);
  // A sequential stream within one 4 KiB region trains the streamer.
  for (int k = 0; k < 8; ++k) {
    (void)h.access(0x100000 + k * 64ull, k * 500, false, /*pc=*/7);
  }
  EXPECT_GT(h.prefetch_fills(), 0u);
}

TEST(Prefetcher, IpStrideDetectsConstantStride) {
  IpStridePrefetcher pf(64, 2);
  std::vector<LineAddr> out;
  for (int k = 0; k < 5; ++k) out = pf.observe(0x400, 100 + k * 3);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 100 + 4 * 3 + 3u);
  EXPECT_EQ(out[1], 100 + 4 * 3 + 6u);
}

TEST(Prefetcher, IpStrideIgnoresRandomPattern) {
  IpStridePrefetcher pf(64, 2);
  std::vector<LineAddr> out;
  for (LineAddr l : {17u, 90u, 3u, 55u, 12u}) out = pf.observe(0x400, l);
  EXPECT_TRUE(out.empty());
}

TEST(Prefetcher, StreamerStaysInRegion) {
  StreamerPrefetcher pf(16, 4);
  std::vector<LineAddr> out;
  // Near the region end: candidates crossing the 64-line region boundary
  // must be suppressed.
  for (LineAddr l : {60u, 61u, 62u}) out = pf.observe(0, l);
  for (LineAddr c : out) EXPECT_LT(c, 64u);
}

TEST(LlcLatencyModelTest, AnchoredAndMonotone) {
  const LlcLatencyModel model;
  EXPECT_EQ(model.latency(8ull << 20, 16), 32u);  // Table 2 anchor.
  util::Cycle prev = 0;
  for (std::uint64_t mb : {2, 4, 8, 16, 32, 64}) {
    const auto lat = model.latency(mb << 20, 16);
    EXPECT_GT(lat, prev);
    prev = lat;
  }
  // Mild growth with associativity.
  EXPECT_GT(model.latency(16ull << 20, 128), model.latency(16ull << 20, 2));
}

class HierarchyLevelParam
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HierarchyLevelParam, LlcSizeNeverChangesMissPathCorrectness) {
  // Property: for any LLC size, a cold access misses to memory and a hot
  // access hits L1 with exactly the configured latencies.
  dram::MemoryController mc(dram::DramConfig{});
  auto config = HierarchyConfig::table2(GetParam() << 20, 16);
  config.enable_prefetchers = false;
  Hierarchy h(config, mc);
  const auto cold = h.access(0x12345 * 64, 0);
  EXPECT_EQ(cold.level, HitLevel::kMemory);
  const auto hot = h.access(0x12345 * 64, 1000);
  EXPECT_EQ(hot.level, HitLevel::kL1);
  EXPECT_EQ(hot.latency, config.l1.latency);
}

INSTANTIATE_TEST_SUITE_P(Sizes, HierarchyLevelParam,
                         ::testing::Values(2, 4, 8, 16, 32, 64));

}  // namespace
}  // namespace impact::cache
