// Unit tests: set-associative cache, replacement policies.
#include <gtest/gtest.h>

#include <array>

#include "cache/cache.hpp"
#include "cache/replacement.hpp"

namespace impact::cache {
namespace {

CacheConfig small_cache(ReplacementKind repl = ReplacementKind::kLru) {
  // 4 sets x 2 ways x 64 B lines.
  return CacheConfig{"test", 512, 2, 64, 1, repl};
}

TEST(CacheConfigTest, Validation) {
  CacheConfig c = small_cache();
  EXPECT_NO_THROW(c.validate());
  EXPECT_EQ(c.sets(), 4u);
  c.size_bytes = 500;  // Not divisible.
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = small_cache();
  c.ways = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(ReplacementLru, EvictsLeastRecentlyUsed) {
  std::array<std::uint8_t, 4> meta{};
  repl::reset(ReplacementKind::kLru, meta);
  for (std::uint32_t w = 0; w < 4; ++w) {
    repl::insert(ReplacementKind::kLru, meta, w);
  }
  repl::touch(ReplacementKind::kLru, meta, 0);  // Order (MRU->LRU): 0,3,2,1.
  EXPECT_EQ(repl::victim(ReplacementKind::kLru, meta), 1u);
  repl::touch(ReplacementKind::kLru, meta, 1);
  EXPECT_EQ(repl::victim(ReplacementKind::kLru, meta), 2u);
}

TEST(ReplacementSrrip, InsertsAtDistantAndPromotesOnHit) {
  std::array<std::uint8_t, 2> meta{};
  repl::reset(ReplacementKind::kSrrip, meta);
  repl::insert(ReplacementKind::kSrrip, meta, 0);
  repl::insert(ReplacementKind::kSrrip, meta, 1);
  repl::touch(ReplacementKind::kSrrip, meta, 0);  // RRPV(0)=0, RRPV(1)=2.
  // Victim search ages until an RRPV==3 exists: way 1 reaches it first.
  EXPECT_EQ(repl::victim(ReplacementKind::kSrrip, meta), 1u);
}

TEST(Cache, MissThenHit) {
  Cache cache(small_cache());
  EXPECT_FALSE(cache.access(100, false));
  EXPECT_FALSE(cache.contains(100));
  EXPECT_EQ(cache.fill(100), std::nullopt);
  EXPECT_TRUE(cache.contains(100));
  EXPECT_TRUE(cache.access(100, false));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(Cache, SetIndexing) {
  Cache cache(small_cache());
  EXPECT_EQ(cache.set_index(0), 0u);
  EXPECT_EQ(cache.set_index(5), 1u);
  EXPECT_EQ(cache.set_index(7), 3u);
  // Mask-based indexing must agree with modulo over high line addresses.
  EXPECT_EQ(cache.set_index(0xDEADBEEFCAFEull),
            static_cast<std::uint32_t>(0xDEADBEEFCAFEull % 4));
}

TEST(Cache, NonPowerOfTwoSetsUseModuloFallback) {
  // 3 sets x 2 ways: the mask fast path does not apply; the validated
  // modulo fallback must behave exactly like the pow2 path.
  CacheConfig config{"np2", 3 * 2 * 64, 2, 64, 1, ReplacementKind::kLru};
  Cache cache(config);
  EXPECT_EQ(config.sets(), 3u);
  for (LineAddr l : {0ull, 1ull, 2ull, 3ull, 7ull, 0x123456789ull}) {
    EXPECT_EQ(cache.set_index(l), static_cast<std::uint32_t>(l % 3));
  }
  // Lines 0 and 3 conflict (set 0), line 1 does not.
  cache.fill(0);
  cache.fill(3);
  cache.fill(1);
  const auto ev = cache.fill(6);  // Set 0 again: evicts LRU line 0.
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->line, 0u);
  EXPECT_TRUE(cache.contains(1));
}

TEST(Cache, ProbeExposesWayWithoutPerturbing) {
  Cache cache(small_cache());
  EXPECT_EQ(cache.probe(4), Cache::kNoWay);
  cache.fill(0);
  cache.fill(4);
  cache.access(0, false);  // 4 is LRU.
  const auto way = cache.probe(4);
  ASSERT_NE(way, Cache::kNoWay);
  // probe() must not promote: 4 still evicts first.
  const auto ev = cache.fill(8);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->line, 4u);
}

TEST(Cache, TouchHitMatchesHittingAccess) {
  Cache a(small_cache());
  Cache b(small_cache());
  for (Cache* c : {&a, &b}) {
    c->fill(0);
    c->fill(4);
  }
  EXPECT_TRUE(a.access(0, true));
  const auto way = b.probe(0);
  ASSERT_NE(way, Cache::kNoWay);
  b.touch_hit(0, way, true);
  EXPECT_EQ(a.stats().hits, b.stats().hits);
  // Same replacement outcome and same dirty bit on both paths.
  const auto ev_a = a.fill(8);
  const auto ev_b = b.fill(8);
  ASSERT_TRUE(ev_a.has_value() && ev_b.has_value());
  EXPECT_EQ(ev_a->line, ev_b->line);
  const auto inv_a = a.invalidate(0);
  const auto inv_b = b.invalidate(0);
  ASSERT_TRUE(inv_a.has_value() && inv_b.has_value());
  EXPECT_TRUE(inv_a->dirty);
  EXPECT_TRUE(inv_b->dirty);
}

TEST(Cache, FillKnownMissMatchesGeneralFill) {
  Cache a(small_cache());
  Cache b(small_cache());
  for (Cache* c : {&a, &b}) {
    c->fill(0);
    c->fill(4);
    c->access(4, false);  // 0 is LRU.
  }
  ASSERT_FALSE(b.contains(8));
  const auto ev_a = a.fill(8, true);
  const auto ev_b = b.fill_known_miss(8, true);
  ASSERT_TRUE(ev_a.has_value() && ev_b.has_value());
  EXPECT_EQ(ev_a->line, ev_b->line);
  EXPECT_EQ(ev_a->dirty, ev_b->dirty);
  EXPECT_EQ(a.stats().evictions, b.stats().evictions);
  EXPECT_TRUE(b.contains(8));
}

TEST(Cache, EvictionOnSetOverflow) {
  Cache cache(small_cache());
  // Lines 0, 4, 8 all map to set 0 in a 4-set cache; 2 ways.
  cache.fill(0);
  cache.fill(4);
  cache.access(4, false);  // Make 0 the LRU.
  const auto ev = cache.fill(8);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->line, 0u);
  EXPECT_FALSE(ev->dirty);
  EXPECT_FALSE(cache.contains(0));
  EXPECT_TRUE(cache.contains(4));
  EXPECT_TRUE(cache.contains(8));
}

TEST(Cache, DirtyEvictionReportsWriteback) {
  Cache cache(small_cache());
  cache.fill(0, /*dirty=*/true);
  cache.fill(4);
  cache.access(4, false);
  const auto ev = cache.fill(8);
  ASSERT_TRUE(ev.has_value());
  EXPECT_TRUE(ev->dirty);
  EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(Cache, WriteMarksDirty) {
  Cache cache(small_cache());
  cache.fill(0);
  EXPECT_TRUE(cache.access(0, /*is_write=*/true));
  const auto ev = cache.invalidate(0);
  ASSERT_TRUE(ev.has_value());
  EXPECT_TRUE(ev->dirty);
}

TEST(Cache, InvalidateMissingLineIsNoop) {
  Cache cache(small_cache());
  EXPECT_EQ(cache.invalidate(42), std::nullopt);
}

TEST(Cache, RefillOfPresentLineUpdatesInsteadOfEvicting) {
  Cache cache(small_cache());
  cache.fill(0);
  EXPECT_EQ(cache.fill(0, /*dirty=*/true), std::nullopt);
  const auto ev = cache.invalidate(0);
  ASSERT_TRUE(ev.has_value());
  EXPECT_TRUE(ev->dirty);
}

TEST(Cache, ContainsDoesNotPerturbReplacement) {
  Cache cache(small_cache());
  cache.fill(0);
  cache.fill(4);
  cache.access(0, false);  // 4 is LRU.
  // Probing 4 via contains() must not promote it.
  EXPECT_TRUE(cache.contains(4));
  const auto ev = cache.fill(8);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->line, 4u);
}

TEST(Cache, ClearDropsEverything) {
  Cache cache(small_cache());
  cache.fill(0);
  cache.fill(1);
  cache.clear();
  EXPECT_FALSE(cache.contains(0));
  EXPECT_FALSE(cache.contains(1));
}

TEST(Cache, ClearResetsReplacementState) {
  // A cleared cache must behave exactly like a freshly constructed one:
  // same insertion ways, same victim ordering — no inherited metadata.
  for (ReplacementKind kind :
       {ReplacementKind::kLru, ReplacementKind::kSrrip}) {
    Cache used(small_cache(kind));
    // Churn set 0 (lines 0,4,8,... in a 4-set cache) into a non-trivial
    // replacement order, including hit promotions.
    for (LineAddr l : {0ull, 4ull, 8ull, 4ull, 12ull, 0ull, 16ull}) {
      if (!used.access(l, false)) used.fill(l);
    }
    used.clear();
    used.reset_stats();

    Cache fresh(small_cache(kind));
    // Replay an identical post-clear workload on both; every eviction
    // decision must match.
    const LineAddr script[] = {0, 4, 0, 8, 12, 8, 16, 20};
    for (LineAddr l : script) {
      const bool hit_used = used.access(l, false);
      const bool hit_fresh = fresh.access(l, false);
      EXPECT_EQ(hit_used, hit_fresh);
      if (!hit_used) {
        const auto ev_used = used.fill(l);
        const auto ev_fresh = fresh.fill(l);
        EXPECT_EQ(ev_used.has_value(), ev_fresh.has_value());
        if (ev_used && ev_fresh) {
          EXPECT_EQ(ev_used->line, ev_fresh->line);
        }
      }
    }
    EXPECT_EQ(used.stats().hits, fresh.stats().hits);
    EXPECT_EQ(used.stats().evictions, fresh.stats().evictions);
  }
}

TEST(Cache, ExactLruSequence) {
  // Classic reference-string check on one set (lines 0,4,8,12 -> set 0).
  CacheConfig config{"lru4", 1024, 4, 64, 1, ReplacementKind::kLru};
  Cache cache(config);
  auto touch = [&](LineAddr l) {
    if (!cache.access(l * 4, false)) cache.fill(l * 4);
  };
  touch(0);
  touch(1);
  touch(2);
  touch(3);
  touch(0);            // Order: 0,3,2,1.
  const auto ev = cache.fill(4 * 4);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->line, 1u * 4);
}

TEST(Cache, MissRateAccounting) {
  Cache cache(small_cache());
  cache.access(0, false);
  cache.fill(0);
  cache.access(0, false);
  cache.access(0, false);
  EXPECT_NEAR(cache.stats().miss_rate(), 1.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace impact::cache
