// Unit tests: set-associative cache, replacement policies.
#include <gtest/gtest.h>

#include "cache/cache.hpp"
#include "cache/replacement.hpp"

namespace impact::cache {
namespace {

CacheConfig small_cache(ReplacementKind repl = ReplacementKind::kLru) {
  // 4 sets x 2 ways x 64 B lines.
  return CacheConfig{"test", 512, 2, 64, 1, repl};
}

TEST(CacheConfigTest, Validation) {
  CacheConfig c = small_cache();
  EXPECT_NO_THROW(c.validate());
  EXPECT_EQ(c.sets(), 4u);
  c.size_bytes = 500;  // Not divisible.
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = small_cache();
  c.ways = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(ReplacementLru, EvictsLeastRecentlyUsed) {
  ReplacementState r(ReplacementKind::kLru, 4);
  for (std::uint32_t w = 0; w < 4; ++w) r.insert(w);
  r.touch(0);  // Order (MRU->LRU): 0,3,2,1.
  EXPECT_EQ(r.victim(), 1u);
  r.touch(1);
  EXPECT_EQ(r.victim(), 2u);
}

TEST(ReplacementSrrip, InsertsAtDistantAndPromotesOnHit) {
  ReplacementState r(ReplacementKind::kSrrip, 2);
  r.insert(0);
  r.insert(1);
  r.touch(0);  // RRPV(0)=0, RRPV(1)=2.
  // Victim search ages until an RRPV==3 exists: way 1 reaches it first.
  EXPECT_EQ(r.victim(), 1u);
}

TEST(Cache, MissThenHit) {
  Cache cache(small_cache());
  EXPECT_FALSE(cache.access(100, false));
  EXPECT_FALSE(cache.contains(100));
  EXPECT_EQ(cache.fill(100), std::nullopt);
  EXPECT_TRUE(cache.contains(100));
  EXPECT_TRUE(cache.access(100, false));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(Cache, SetIndexing) {
  Cache cache(small_cache());
  EXPECT_EQ(cache.set_index(0), 0u);
  EXPECT_EQ(cache.set_index(5), 1u);
  EXPECT_EQ(cache.set_index(7), 3u);
}

TEST(Cache, EvictionOnSetOverflow) {
  Cache cache(small_cache());
  // Lines 0, 4, 8 all map to set 0 in a 4-set cache; 2 ways.
  cache.fill(0);
  cache.fill(4);
  cache.access(4, false);  // Make 0 the LRU.
  const auto ev = cache.fill(8);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->line, 0u);
  EXPECT_FALSE(ev->dirty);
  EXPECT_FALSE(cache.contains(0));
  EXPECT_TRUE(cache.contains(4));
  EXPECT_TRUE(cache.contains(8));
}

TEST(Cache, DirtyEvictionReportsWriteback) {
  Cache cache(small_cache());
  cache.fill(0, /*dirty=*/true);
  cache.fill(4);
  cache.access(4, false);
  const auto ev = cache.fill(8);
  ASSERT_TRUE(ev.has_value());
  EXPECT_TRUE(ev->dirty);
  EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(Cache, WriteMarksDirty) {
  Cache cache(small_cache());
  cache.fill(0);
  EXPECT_TRUE(cache.access(0, /*is_write=*/true));
  const auto ev = cache.invalidate(0);
  ASSERT_TRUE(ev.has_value());
  EXPECT_TRUE(ev->dirty);
}

TEST(Cache, InvalidateMissingLineIsNoop) {
  Cache cache(small_cache());
  EXPECT_EQ(cache.invalidate(42), std::nullopt);
}

TEST(Cache, RefillOfPresentLineUpdatesInsteadOfEvicting) {
  Cache cache(small_cache());
  cache.fill(0);
  EXPECT_EQ(cache.fill(0, /*dirty=*/true), std::nullopt);
  const auto ev = cache.invalidate(0);
  ASSERT_TRUE(ev.has_value());
  EXPECT_TRUE(ev->dirty);
}

TEST(Cache, ContainsDoesNotPerturbReplacement) {
  Cache cache(small_cache());
  cache.fill(0);
  cache.fill(4);
  cache.access(0, false);  // 4 is LRU.
  // Probing 4 via contains() must not promote it.
  EXPECT_TRUE(cache.contains(4));
  const auto ev = cache.fill(8);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->line, 4u);
}

TEST(Cache, ClearDropsEverything) {
  Cache cache(small_cache());
  cache.fill(0);
  cache.fill(1);
  cache.clear();
  EXPECT_FALSE(cache.contains(0));
  EXPECT_FALSE(cache.contains(1));
}

TEST(Cache, ExactLruSequence) {
  // Classic reference-string check on one set (lines 0,4,8,12 -> set 0).
  CacheConfig config{"lru4", 1024, 4, 64, 1, ReplacementKind::kLru};
  Cache cache(config);
  auto touch = [&](LineAddr l) {
    if (!cache.access(l * 4, false)) cache.fill(l * 4);
  };
  touch(0);
  touch(1);
  touch(2);
  touch(3);
  touch(0);            // Order: 0,3,2,1.
  const auto ev = cache.fill(4 * 4);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->line, 1u * 4);
}

TEST(Cache, MissRateAccounting) {
  Cache cache(small_cache());
  cache.access(0, false);
  cache.fill(0);
  cache.access(0, false);
  cache.access(0, false);
  EXPECT_NEAR(cache.stats().miss_rate(), 1.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace impact::cache
