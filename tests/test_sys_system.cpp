// Unit tests: TLB, timers, synchronization primitives, MemorySystem paths.
#include <gtest/gtest.h>

#include "sys/sync.hpp"
#include "sys/system.hpp"
#include "sys/timer.hpp"
#include "sys/tlb.hpp"

namespace impact::sys {
namespace {

TEST(TlbTest, MissWalkThenHits) {
  Tlb tlb;
  const auto miss = tlb.translate(0x1000);
  EXPECT_TRUE(miss.walked);
  const auto hit = tlb.translate(0x1000);
  EXPECT_TRUE(hit.l1_hit);
  EXPECT_LT(hit.latency, miss.latency);
  // Same page, different offset: still a hit.
  EXPECT_TRUE(tlb.translate(0x1FFF).l1_hit);
  // Different page: miss again.
  EXPECT_FALSE(tlb.translate(0x2000).l1_hit);
}

TEST(TlbTest, L2CatchesL1Overflow) {
  TlbConfig config;
  config.l1 = {4, 4, 1};  // Tiny L1: one set.
  Tlb tlb(config);
  for (std::uint64_t p = 0; p < 8; ++p) (void)tlb.translate(p << 12);
  // Page 0 fell out of L1 but is in L2.
  const auto r = tlb.translate(0);
  EXPECT_FALSE(r.l1_hit);
  EXPECT_TRUE(r.l2_hit);
}

TEST(TlbTest, WarmPreloadsEntries) {
  Tlb tlb;
  tlb.warm(0x5000);
  EXPECT_TRUE(tlb.translate(0x5000).l1_hit);
  EXPECT_EQ(tlb.stats().walks, 0u);
}

TEST(TlbTest, HugePagesUseSeparateArray) {
  Tlb tlb;
  tlb.warm(0x200000, /*huge=*/true);
  EXPECT_TRUE(tlb.translate(0x200000, true).l1_hit);
  // The whole 2 MiB page hits one entry.
  EXPECT_TRUE(tlb.translate(0x3FFFFF, true).l1_hit);
  // The same address as a 4 KiB translation is unrelated.
  EXPECT_FALSE(tlb.translate(0x200000, false).l1_hit);
}

TEST(TlbTest, StatsAccumulate) {
  Tlb tlb;
  (void)tlb.translate(0x1000);
  (void)tlb.translate(0x1000);
  EXPECT_EQ(tlb.stats().accesses, 2u);
  EXPECT_EQ(tlb.stats().walks, 1u);
  EXPECT_EQ(tlb.stats().l1_hits, 1u);
  tlb.reset_stats();
  EXPECT_EQ(tlb.stats().accesses, 0u);
}

TEST(TimerTest, MeasurementOverheadMatchesReadPair) {
  Timestamp ts;
  util::Cycle clock = 0;
  const auto t0 = ts.read(clock);
  const auto t1 = ts.read_fast(clock);
  EXPECT_EQ(t1 - t0, 24u);  // Second read's cost only.
  EXPECT_EQ(clock, ts.measurement_overhead());
}

TEST(SemaphoreTest, WaitBlocksUntilPost) {
  SimSemaphore sem(0, /*op_cost=*/30);
  const auto post_done = sem.post(1000);
  EXPECT_EQ(post_done, 1030u);
  // Early waiter is pulled forward to the post's release time.
  EXPECT_EQ(sem.wait(500), 1060u);
}

TEST(SemaphoreTest, LateWaiterKeepsItsClock) {
  SimSemaphore sem(0, 30);
  (void)sem.post(1000);
  EXPECT_EQ(sem.wait(5000), 5030u);
}

TEST(SemaphoreTest, CountsPendingPosts) {
  SimSemaphore sem(2, 10);
  EXPECT_EQ(sem.value(), 2u);
  (void)sem.wait(0);
  (void)sem.wait(0);
  EXPECT_EQ(sem.value(), 0u);
  EXPECT_THROW((void)sem.wait(0), std::invalid_argument);
}

TEST(SemaphoreTest, FifoOrdering) {
  SimSemaphore sem(0, 0);
  (void)sem.post(100);
  (void)sem.post(900);
  EXPECT_EQ(sem.wait(0), 100u);
  EXPECT_EQ(sem.wait(0), 900u);
}

TEST(BarrierTest, SyncsToLaterArrival) {
  SimBarrier barrier(60);
  util::Cycle a = 100;
  util::Cycle b = 500;
  barrier.sync(a, b);
  EXPECT_EQ(a, 560u);
  EXPECT_EQ(b, 560u);
}

class SystemPathTest : public ::testing::Test {
 protected:
  SystemPathTest() : system_(SystemConfig{}) {
    span_ = system_.vmem().map_row(1, 3, 40);
    system_.warm_span(1, span_);
  }

  MemorySystem system_;
  VSpan span_;
};

TEST_F(SystemPathTest, LoadGoesThroughCaches) {
  util::Cycle clock = 0;
  const auto cold = system_.load(1, span_.vaddr, clock);
  EXPECT_EQ(cold.level, cache::HitLevel::kMemory);
  const auto hot = system_.load(1, span_.vaddr, clock);
  EXPECT_EQ(hot.level, cache::HitLevel::kL1);
  EXPECT_LT(hot.latency, cold.latency);
}

TEST_F(SystemPathTest, DirectAccessSkipsCaches) {
  util::Cycle clock = 0;
  (void)system_.load(1, span_.vaddr, clock);  // Cache the line.
  const auto direct = system_.direct_access(1, span_.vaddr, clock);
  // Despite being cached, the direct path reaches DRAM (a row hit).
  EXPECT_EQ(direct.level, cache::HitLevel::kMemory);
  EXPECT_EQ(direct.outcome, dram::RowBufferOutcome::kHit);
}

TEST_F(SystemPathTest, DirectHitVsConflictMarginSurvivesInstrumentation) {
  util::Cycle clock = 0;
  const auto other = system_.vmem().map_row(1, 3, 41);
  system_.warm_span(1, other);
  (void)system_.direct_access(1, span_.vaddr, clock);
  const auto hit = system_.direct_access(1, span_.vaddr, clock);
  (void)system_.direct_access(1, other.vaddr, clock);
  const auto conflict = system_.direct_access(1, span_.vaddr, clock);
  EXPECT_EQ(conflict.latency - hit.latency,
            system_.controller().timing().trp +
                system_.controller().timing().trcd);
}

TEST_F(SystemPathTest, DmaAddsDriverOverhead) {
  util::Cycle clock = 0;
  const auto direct = system_.direct_access(1, span_.vaddr, clock);
  const auto dma = system_.dma_access(1, span_.vaddr, clock);
  EXPECT_GT(dma.latency, direct.latency);
  EXPECT_GE(dma.latency, system_.config().dma.per_transfer_overhead);
}

TEST_F(SystemPathTest, ClflushForcesNextLoadToMemory) {
  util::Cycle clock = 0;
  (void)system_.load(1, span_.vaddr, clock);
  (void)system_.clflush(1, span_.vaddr, clock);
  const auto r = system_.load(1, span_.vaddr, clock);
  EXPECT_EQ(r.level, cache::HitLevel::kMemory);
}

TEST_F(SystemPathTest, StoreThenClflushWritesBack) {
  util::Cycle clock = 0;
  (void)system_.store(1, span_.vaddr, clock);
  const auto clean_clock = clock;
  const auto wb_latency = system_.clflush(1, span_.vaddr, clock);
  (void)clean_clock;
  // Dirty flush costs more than an LLC probe alone.
  EXPECT_GT(wb_latency,
            static_cast<util::Cycle>(
                system_.hierarchy(1).config().l3.latency));
}

TEST_F(SystemPathTest, PerActorHierarchiesAreIsolated) {
  util::Cycle clock = 0;
  (void)system_.load(1, span_.vaddr, clock);
  // Actor 2 shares no cache with actor 1; it must miss to memory on the
  // same physical line (mapped via sharing).
  system_.vmem().share(1, 2, span_);
  util::Cycle clock2 = 0;
  const auto r = system_.load(2, span_.vaddr, clock2);
  EXPECT_EQ(r.level, cache::HitLevel::kMemory);
}

TEST_F(SystemPathTest, WalkTrafficTouchesDram) {
  auto& mc = system_.controller();
  mc.reset_stats();
  system_.charge_walk_traffic(1, 0x123456789, true, 0);
  EXPECT_EQ(mc.total_stats().accesses(), 1u);
  system_.charge_walk_traffic(1, 0x123456789, false, 0);
  EXPECT_EQ(mc.total_stats().accesses(), 1u);
}

TEST(SystemConfigTest, DescribeMentionsKeyParameters) {
  SystemConfig config;
  const auto s = config.describe();
  EXPECT_NE(s.find("2.6 GHz"), std::string::npos);
  EXPECT_NE(s.find("64 banks total"), std::string::npos);
  EXPECT_NE(s.find("open-row"), std::string::npos);
}

TEST(SystemConfigTest, CacheScaleShrinksHierarchy) {
  SystemConfig config;
  config.cache_scale = 64;
  MemorySystem system(config);
  EXPECT_EQ(system.hierarchy(1).config().l3.size_bytes,
            (8ull << 20) / 64);
}

}  // namespace
}  // namespace impact::sys
