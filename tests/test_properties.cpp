// Cross-cutting property tests (TEST_P sweeps over configurations).
#include <gtest/gtest.h>

#include <tuple>

#include "attacks/impact_pnm.hpp"
#include "dram/bank.hpp"
#include "dram/controller.hpp"
#include "model/cache_attack_model.hpp"
#include "util/rng.hpp"

namespace impact {
namespace {

// --- Bank FSM invariants under every policy x timeout mode -------------

using BankParam = std::tuple<dram::RowPolicy, dram::RowTimeoutMode>;

class BankInvariants : public ::testing::TestWithParam<BankParam> {
 protected:
  BankInvariants() {
    dram::TimingParams params;
    params.timeout_mode = std::get<1>(GetParam());
    timing_ = dram::Timing::from(params, util::kDefaultFrequency);
  }

  dram::Timing timing_;
};

TEST_P(BankInvariants, LatenciesComeFromTheClosedSet) {
  dram::Bank bank(timing_, std::get<0>(GetParam()));
  util::Xoshiro256 rng(7);
  util::Cycle now = 100;
  for (int i = 0; i < 2000; ++i) {
    const auto row = static_cast<dram::RowId>(rng.below(4));
    const auto r = bank.access(row, now);
    const util::Cycle service = r.completion - r.start;
    // Any access's service time is one of the three canonical latencies,
    // possibly stretched by the tRAS precharge constraint.
    EXPECT_GE(service, timing_.hit_latency());
    EXPECT_LE(service, timing_.tras + timing_.conflict_latency());
    EXPECT_GE(r.start, now);          // No time travel.
    EXPECT_GE(r.completion, r.start); // Monotone completion.
    EXPECT_EQ(r.ack, r.completion);
    now = r.completion + rng.below(400);
  }
}

TEST_P(BankInvariants, ReadyAtNeverRegresses) {
  dram::Bank bank(timing_, std::get<0>(GetParam()));
  util::Xoshiro256 rng(8);
  util::Cycle now = 0;
  util::Cycle last_ready = 0;
  for (int i = 0; i < 1000; ++i) {
    now += rng.below(300);
    (void)bank.access(static_cast<dram::RowId>(rng.below(8)), now);
    EXPECT_GE(bank.ready_at(), last_ready);
    last_ready = bank.ready_at();
  }
}

TEST_P(BankInvariants, ConstantTimePolicyLeaksNothing) {
  if (std::get<0>(GetParam()) != dram::RowPolicy::kConstantTime) {
    GTEST_SKIP();
  }
  dram::Bank bank(timing_, dram::RowPolicy::kConstantTime);
  util::Xoshiro256 rng(9);
  util::Cycle now = 0;
  std::set<util::Cycle> latencies;
  for (int i = 0; i < 500; ++i) {
    now += 500 + rng.below(500);
    const auto r = bank.access(static_cast<dram::RowId>(rng.below(16)), now);
    latencies.insert(r.completion - r.start);
    EXPECT_EQ(r.outcome, dram::RowBufferOutcome::kConflict);
  }
  EXPECT_EQ(latencies.size(), 1u);  // One indistinguishable latency.
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndTimeouts, BankInvariants,
    ::testing::Combine(
        ::testing::Values(dram::RowPolicy::kOpenRow,
                          dram::RowPolicy::kClosedRow,
                          dram::RowPolicy::kConstantTime),
        ::testing::Values(dram::RowTimeoutMode::kContention,
                          dram::RowTimeoutMode::kIdlePrecharge)),
    [](const auto& info) {
      std::string name = to_string(std::get<0>(info.param));
      name += std::get<1>(info.param) ==
                      dram::RowTimeoutMode::kContention
                  ? "_contention"
                  : "_idlepre";
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// --- Information-theoretic sanity of reported goodput ------------------

TEST(CapacityCheck, GoodputNeverExceedsBscCapacity) {
  // Under injected refresh noise, the reported goodput of the channel must
  // stay below the binary-symmetric-channel capacity at its raw rate and
  // measured error probability (we only *discard* information, never
  // conjure it).
  sys::SystemConfig config;
  config.dram.timing.trefi_ns = 2500.0;
  sys::MemorySystem system(config);
  attacks::ImpactPnm attack(system);
  const auto report = attack.measure(256, 6, 101);
  const double raw = report.raw_mbps(util::kDefaultFrequency);
  const double goodput = report.throughput_mbps(util::kDefaultFrequency);
  EXPECT_GT(report.error_rate(), 0.0);
  EXPECT_LE(goodput, raw);
  // Goodput counts correct bits; capacity bounds *reliably decodable*
  // bits, which is lower — the classic distinction. What must hold:
  // goodput <= raw, and capacity > 0 for error < 0.5.
  EXPECT_GT(model::bsc_capacity_mbps(raw, report.error_rate()), 0.0);
}

// --- Controller determinism across identical runs ----------------------

TEST(Determinism, IdenticalSeedsIdenticalChannels) {
  auto run = [] {
    sys::MemorySystem system{sys::SystemConfig{}};
    attacks::ImpactPnm attack(system);
    util::Xoshiro256 rng(202);
    std::vector<double> latencies;
    (void)attack.transmit(util::BitVec::random(64, rng));
    return attack.last_latencies();
  };
  EXPECT_EQ(run(), run());
}

// --- Attack invariance to absolute clock origin ------------------------

TEST(ClockOrigin, ChannelBehaviorIsShiftInvariant) {
  // Two channels whose setups differ only by prior (idle) simulated time
  // decode identically: no hidden dependence on absolute cycle values.
  auto run = [](int warm_messages) {
    sys::MemorySystem system{sys::SystemConfig{}};
    attacks::ImpactPnm attack(system);
    util::Xoshiro256 rng(303);
    for (int i = 0; i < warm_messages; ++i) {
      (void)attack.transmit(util::BitVec::random(16, rng));
    }
    const auto msg = util::BitVec::from_string("1010011001010110");
    return attack.transmit(msg).report.bit_errors();
  };
  EXPECT_EQ(run(0), 0u);
  EXPECT_EQ(run(7), 0u);
}

}  // namespace
}  // namespace impact
