// Tests: timing-based DRAM mapping reverse engineering.
#include <gtest/gtest.h>

#include "attacks/mapping_recon.hpp"

namespace impact::attacks {
namespace {

class ReconSchemes
    : public ::testing::TestWithParam<dram::MappingScheme> {};

TEST_P(ReconSchemes, RecoversBankEquivalenceClasses) {
  sys::SystemConfig config;
  config.mapping = GetParam();
  sys::MemorySystem system(config);
  MappingRecon recon(system, /*actor=*/1);
  const auto r = recon.run();
  EXPECT_GT(r.pair_tests, 100u);
  EXPECT_EQ(r.classes_found, r.classes_expected);
  EXPECT_GT(r.pairwise_accuracy(), 0.99);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, ReconSchemes,
    ::testing::Values(dram::MappingScheme::kBankInterleaved,
                      dram::MappingScheme::kRowBankCol,
                      dram::MappingScheme::kXorBankHash),
    [](const auto& info) {
      std::string name = to_string(info.param);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(MappingReconTest, SameBankPrimitive) {
  sys::SystemConfig config;
  sys::MemorySystem system(config);
  MappingRecon recon(system, 1);
  auto& vmem = system.vmem();
  const auto a = vmem.map_row(1, 5, 50);
  const auto b = vmem.map_row(1, 5, 51);
  const auto c = vmem.map_row(1, 6, 50);
  system.warm_span(1, a);
  system.warm_span(1, b);
  system.warm_span(1, c);
  EXPECT_TRUE(recon.same_bank(a.vaddr, b.vaddr));
  EXPECT_FALSE(recon.same_bank(a.vaddr, c.vaddr));
}

TEST(MappingReconTest, ConfigValidation) {
  sys::SystemConfig config;
  sys::MemorySystem system(config);
  ReconConfig bad;
  bad.sample_addresses = 1;
  EXPECT_THROW(MappingRecon(system, 1, bad), std::invalid_argument);
  bad = ReconConfig{};
  bad.rounds_per_pair = 1;
  EXPECT_THROW(MappingRecon(system, 1, bad), std::invalid_argument);
}

TEST(MappingReconTest, DeterministicAcrossRuns) {
  sys::SystemConfig config;
  sys::MemorySystem s1(config);
  sys::MemorySystem s2(config);
  MappingRecon r1(s1, 1);
  MappingRecon r2(s2, 1);
  const auto a = r1.run();
  const auto b = r2.run();
  EXPECT_EQ(a.classes_found, b.classes_found);
  EXPECT_EQ(a.pair_errors, b.pair_errors);
}

}  // namespace
}  // namespace impact::attacks
