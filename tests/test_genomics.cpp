// Unit + property tests: the genomics substrate (genome, k-mers,
// minimizers, seed table, chaining, alignment, mapper).
#include <gtest/gtest.h>

#include <cstdlib>

#include "genomics/align.hpp"
#include "genomics/chain.hpp"
#include "genomics/genome.hpp"
#include "genomics/kmer.hpp"
#include "genomics/leak.hpp"
#include "genomics/mapper.hpp"
#include "genomics/seed_table.hpp"

namespace impact::genomics {
namespace {

TEST(GenomeTest, StringRoundTrip) {
  const auto g = Genome::from_string("ACGTAC");
  EXPECT_EQ(g.size(), 6u);
  EXPECT_EQ(g.to_string(), "ACGTAC");
  EXPECT_EQ(g.at(1), 1u);
  EXPECT_THROW(Genome::from_string("ACGN"), std::invalid_argument);
}

TEST(GenomeTest, SynthesizeIsDeterministicAndSized) {
  util::Xoshiro256 rng1(5);
  util::Xoshiro256 rng2(5);
  const auto a = Genome::synthesize(10000, rng1);
  const auto b = Genome::synthesize(10000, rng2);
  EXPECT_EQ(a.size(), 10000u);
  EXPECT_EQ(a.bases(), b.bases());
}

TEST(GenomeTest, SynthesizeContainsRepeats) {
  util::Xoshiro256 rng(5);
  const auto g = Genome::synthesize(200000, rng, 0.4);
  // Repeat content makes some 15-mers frequent: the most frequent 15-mer
  // should occur far more often than expected under uniform randomness.
  std::unordered_map<std::uint64_t, int> counts;
  for (std::size_t i = 0; i + 15 <= g.size(); i += 7) {
    ++counts[pack_kmer(g.bases(), i, 15)];
  }
  int max_count = 0;
  for (const auto& [k, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 5);
}

TEST(GenomeTest, SliceAndBounds) {
  const auto g = Genome::from_string("ACGTACGT");
  const auto s = g.slice(2, 3);
  EXPECT_EQ(Genome(s).to_string(), "GTA");
  EXPECT_THROW((void)g.slice(6, 3), std::invalid_argument);
}

TEST(ReadsTest, SampledReadsMatchOrigin) {
  util::Xoshiro256 rng(6);
  const auto g = Genome::synthesize(50000, rng);
  ReadSimConfig config;
  config.substitution_rate = 0.0;
  const auto reads = sample_reads(g, 20, config, rng);
  EXPECT_EQ(reads.size(), 20u);
  for (const auto& r : reads) {
    EXPECT_EQ(r.bases, g.slice(r.true_position, config.read_length));
  }
}

TEST(ReadsTest, ErrorsPerturbBases) {
  util::Xoshiro256 rng(6);
  const auto g = Genome::synthesize(50000, rng);
  ReadSimConfig config;
  config.substitution_rate = 0.2;
  const auto reads = sample_reads(g, 10, config, rng);
  std::size_t mismatches = 0;
  std::size_t total = 0;
  for (const auto& r : reads) {
    const auto truth = g.slice(r.true_position, config.read_length);
    for (std::size_t i = 0; i < truth.size(); ++i) {
      mismatches += (truth[i] != r.bases[i]);
      ++total;
    }
  }
  const double rate = static_cast<double>(mismatches) / total;
  EXPECT_GT(rate, 0.10);
  EXPECT_LT(rate, 0.25);  // 0.2 * 3/4 expected observable rate.
}

class KmerProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(KmerProperty, RevCompIsInvolution) {
  const std::uint32_t k = GetParam();
  util::Xoshiro256 rng(31);
  for (int i = 0; i < 200; ++i) {
    const Kmer kmer = rng.below(1ull << (2 * k));
    EXPECT_EQ(revcomp_kmer(revcomp_kmer(kmer, k), k), kmer);
  }
}

TEST_P(KmerProperty, CanonicalIsStrandInvariant) {
  const std::uint32_t k = GetParam();
  util::Xoshiro256 rng(32);
  for (int i = 0; i < 200; ++i) {
    const Kmer kmer = rng.below(1ull << (2 * k));
    EXPECT_EQ(canonical_kmer(kmer, k),
              canonical_kmer(revcomp_kmer(kmer, k), k));
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, KmerProperty,
                         ::testing::Values(5u, 11u, 15u, 21u));

TEST(KmerTest, PackKnownValues) {
  const auto seq = Genome::from_string("ACGT").bases();
  EXPECT_EQ(pack_kmer(seq, 0, 4), 0b00'01'10'11u);
  EXPECT_EQ(pack_kmer(seq, 1, 2), 0b01'10u);
  EXPECT_THROW((void)pack_kmer(seq, 2, 4), std::invalid_argument);
}

TEST(KmerTest, RevCompKnownValue) {
  // revcomp(ACGT) = ACGT (palindrome).
  const auto seq = Genome::from_string("ACGT").bases();
  const Kmer kmer = pack_kmer(seq, 0, 4);
  EXPECT_EQ(revcomp_kmer(kmer, 4), kmer);
}

TEST(MinimizerTest, CoversEveryWindow) {
  util::Xoshiro256 rng(33);
  const auto g = Genome::synthesize(5000, rng);
  MinimizerConfig config{15, 10};
  const auto minimizers = extract_minimizers(g.bases(), config);
  ASSERT_FALSE(minimizers.empty());
  // Property: consecutive selected positions are at most w apart, so every
  // window of w k-mers contains a selected minimizer.
  for (std::size_t i = 1; i < minimizers.size(); ++i) {
    EXPECT_LE(minimizers[i].position - minimizers[i - 1].position,
              config.w);
    EXPECT_GT(minimizers[i].position, minimizers[i - 1].position);
  }
}

TEST(MinimizerTest, DensityNearTwoOverW) {
  util::Xoshiro256 rng(34);
  const auto g = Genome::synthesize(100000, rng, 0.0);
  MinimizerConfig config{15, 10};
  const auto minimizers = extract_minimizers(g.bases(), config);
  const double density =
      static_cast<double>(minimizers.size()) / g.size();
  EXPECT_NEAR(density, 2.0 / (config.w + 1), 0.05);
}

TEST(MinimizerTest, ShortSequenceYieldsNothing) {
  const auto g = Genome::from_string("ACGT");
  EXPECT_TRUE(extract_minimizers(g.bases(), MinimizerConfig{15, 10}).empty());
}

TEST(SeedTableTest, GeometryMatchesPaper) {
  // §5.4: 16 entries/row at 1024 banks, 8 at 2048.
  SeedTableConfig config;
  SeedTable t1024(config, 1024);
  EXPECT_EQ(t1024.entries_per_bank(), 16u);
  SeedTable t2048(config, 2048);
  EXPECT_EQ(t2048.entries_per_bank(), 8u);
  EXPECT_THROW(SeedTable(config, 1000), std::invalid_argument);  // Divides?
}

TEST(SeedTableTest, LocateLaysEntriesInOneRowPerBank) {
  SeedTableConfig config;
  SeedTable table(config, 1024);
  const auto a = table.locate(0);
  const auto b = table.locate(1024);  // Same bank, next entry.
  EXPECT_EQ(a.bank, 0u);
  EXPECT_EQ(b.bank, 0u);
  EXPECT_EQ(a.row, b.row);
  EXPECT_EQ(b.col - a.col, config.entry_bytes);
  EXPECT_LT(b.col + config.entry_bytes, config.row_bytes + 1);
  EXPECT_EQ(table.locate(5).bank, 5u);
}

TEST(SeedTableTest, QueryReturnsIndexedPositions) {
  util::Xoshiro256 rng(35);
  const auto g = Genome::synthesize(100000, rng);
  SeedTableConfig config;
  SeedTable table(config, 1024);
  table.build(g);
  EXPECT_GT(table.total_positions(), 1000u);
  EXPECT_GT(table.occupancy(), 0.3);
  // Every reference minimizer must be findable through its own hash.
  const auto minimizers = extract_minimizers(g.bases(), config.minimizer);
  std::size_t found = 0;
  for (std::size_t i = 0; i < 50 && i < minimizers.size(); ++i) {
    const auto positions = table.query(minimizers[i].hash);
    for (auto p : positions) found += (p == minimizers[i].position);
  }
  EXPECT_GT(found, 40u);  // A few may be capped out of full buckets.
}

TEST(ChainTest, PerfectColinearAnchorsChainFully) {
  std::vector<Anchor> anchors;
  for (std::uint32_t i = 0; i < 10; ++i) {
    anchors.push_back(Anchor{i * 20, 1000 + i * 20, 15});
  }
  const auto chain = chain_anchors(anchors);
  EXPECT_EQ(chain.anchors.size(), 10u);
  EXPECT_EQ(chain.predicted_start(), 1000);
  EXPECT_NEAR(chain.score, 150.0, 1e-9);
}

TEST(ChainTest, OutlierAnchorsAreExcluded) {
  std::vector<Anchor> anchors;
  for (std::uint32_t i = 0; i < 6; ++i) {
    anchors.push_back(Anchor{i * 20, 1000 + i * 20, 15});
  }
  anchors.push_back(Anchor{50, 90000, 15});  // Far-away decoy.
  const auto chain = chain_anchors(anchors);
  EXPECT_EQ(chain.anchors.size(), 6u);
  EXPECT_EQ(chain.predicted_start(), 1000);
}

TEST(ChainTest, EmptyInput) {
  const auto chain = chain_anchors({});
  EXPECT_TRUE(chain.anchors.empty());
  EXPECT_EQ(chain.predicted_start(), -1);
}

TEST(ChainTest, GapPenaltyPrefersTighterChain) {
  // Two competing chains: tight (3 anchors) vs gappy (3 anchors with large
  // indel offsets).
  std::vector<Anchor> anchors = {
      {0, 1000, 15},  {20, 1020, 15},  {40, 1040, 15},
      {0, 5000, 15},  {20, 5400, 15},  {40, 5800, 15},
  };
  ChainConfig config;
  config.gap_penalty = 0.05;
  const auto chain = chain_anchors(anchors, config);
  EXPECT_EQ(chain.predicted_start(), 1000);
}

TEST(AlignTest, IdenticalSequencesHaveZeroDistance) {
  const auto s = Genome::from_string("ACGTACGTGG").bases();
  const auto r = banded_edit_distance(s, s);
  EXPECT_EQ(r.edit_distance, 0u);
  EXPECT_TRUE(r.within_band);
}

TEST(AlignTest, KnownEditDistances) {
  const auto a = Genome::from_string("ACGT").bases();
  const auto sub = Genome::from_string("AGGT").bases();
  EXPECT_EQ(banded_edit_distance(a, sub).edit_distance, 1u);
  const auto ins = Genome::from_string("ACGGT").bases();
  EXPECT_EQ(banded_edit_distance(a, ins).edit_distance, 1u);
  const auto del = Genome::from_string("ACT").bases();
  EXPECT_EQ(banded_edit_distance(a, del).edit_distance, 1u);
  const auto far = Genome::from_string("TTTT").bases();
  EXPECT_EQ(banded_edit_distance(a, far).edit_distance, 3u);
}

TEST(AlignTest, BandEscapeIsReported) {
  const auto a = Genome::from_string("AAAAAAAAAA").bases();
  const auto b = Genome::from_string("AA").bases();
  const auto r = banded_edit_distance(a, b, AlignConfig{2});
  EXPECT_FALSE(r.within_band);
}

TEST(AlignTest, AgreesWithFullDpOnRandomPairs) {
  util::Xoshiro256 rng(36);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<Base> a(24);
    std::vector<Base> b(24);
    for (auto& x : a) x = static_cast<Base>(rng.below(4));
    b = a;
    // Few random substitutions keep the optimum inside the band.
    for (int e = 0; e < 3; ++e) {
      b[rng.below(b.size())] = static_cast<Base>(rng.below(4));
    }
    // Reference full DP.
    const std::size_t n = a.size();
    const std::size_t m = b.size();
    std::vector<std::vector<std::uint32_t>> dp(
        n + 1, std::vector<std::uint32_t>(m + 1, 0));
    for (std::size_t i = 0; i <= n; ++i) dp[i][0] = i;
    for (std::size_t j = 0; j <= m; ++j) dp[0][j] = j;
    for (std::size_t i = 1; i <= n; ++i) {
      for (std::size_t j = 1; j <= m; ++j) {
        dp[i][j] = std::min({dp[i - 1][j] + 1, dp[i][j - 1] + 1,
                             dp[i - 1][j - 1] +
                                 (a[i - 1] == b[j - 1] ? 0u : 1u)});
      }
    }
    EXPECT_EQ(banded_edit_distance(a, b, AlignConfig{16}).edit_distance,
              dp[n][m]);
  }
}

TEST(TracebackTest, CigarForKnownCases) {
  const auto a = Genome::from_string("ACGT").bases();
  auto r = banded_align(a, a);
  EXPECT_EQ(r.edit_distance, 0u);
  EXPECT_EQ(r.cigar, "4M");
  r = banded_align(a, Genome::from_string("AGGT").bases());
  EXPECT_EQ(r.edit_distance, 1u);
  EXPECT_EQ(r.cigar, "4M");  // Substitution stays an M column.
  r = banded_align(a, Genome::from_string("ACGGT").bases());
  EXPECT_EQ(r.edit_distance, 1u);
  EXPECT_TRUE(cigar_consistent(r.cigar, 4, 5));
  r = banded_align(a, Genome::from_string("ACT").bases());
  EXPECT_EQ(r.edit_distance, 1u);
  EXPECT_TRUE(cigar_consistent(r.cigar, 4, 3));
}

TEST(TracebackTest, MatchesBandedDistanceOnRandomPairs) {
  util::Xoshiro256 rng(47);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<Base> a(30);
    for (auto& x : a) x = static_cast<Base>(rng.below(4));
    std::vector<Base> b = a;
    for (int e = 0; e < 4; ++e) {
      const auto kind = rng.below(3);
      const auto pos = rng.below(b.size());
      if (kind == 0) {
        b[pos] = static_cast<Base>(rng.below(4));
      } else if (kind == 1 && b.size() > 20) {
        b.erase(b.begin() + static_cast<std::ptrdiff_t>(pos));
      } else {
        b.insert(b.begin() + static_cast<std::ptrdiff_t>(pos),
                 static_cast<Base>(rng.below(4)));
      }
    }
    const auto fast = banded_edit_distance(a, b, AlignConfig{16});
    const auto full = banded_align(a, b, AlignConfig{16});
    EXPECT_EQ(full.edit_distance, fast.edit_distance);
    EXPECT_TRUE(cigar_consistent(full.cigar, a.size(), b.size()))
        << full.cigar;
  }
}

TEST(TracebackTest, CigarConsistencyChecker) {
  EXPECT_TRUE(cigar_consistent("4M", 4, 4));
  EXPECT_TRUE(cigar_consistent("2M1I2M", 4, 5));
  EXPECT_TRUE(cigar_consistent("2M1D1M", 4, 3));
  EXPECT_FALSE(cigar_consistent("4M", 4, 5));
  EXPECT_FALSE(cigar_consistent("M", 1, 1));    // Missing run length.
  EXPECT_FALSE(cigar_consistent("4X", 4, 4));   // Unknown op.
  EXPECT_FALSE(cigar_consistent("4", 4, 4));    // Dangling run.
}

TEST(TracebackTest, BandEscapeReported) {
  const auto a = Genome::from_string("AAAAAAAAAAAA").bases();
  const auto b = Genome::from_string("AA").bases();
  const auto r = banded_align(a, b, AlignConfig{2});
  EXPECT_FALSE(r.within_band);
}

TEST(MapperTest, MapsCleanReadsAccurately) {
  util::Xoshiro256 rng(37);
  const auto g = Genome::synthesize(1 << 18, rng);
  SeedTableConfig table_config;
  SeedTable table(table_config, 1024);
  table.build(g);
  ReferenceLayout layout{1024, 32, 8192, 8192 * 4};
  ReadMapper mapper(g, table, layout);
  ReadSimConfig read_config;
  read_config.substitution_rate = 0.0;
  auto reads = sample_reads(g, 50, read_config, rng);
  EXPECT_GT(mapping_accuracy(mapper, reads, 5), 0.85);
}

TEST(MapperTest, ToleratesSequencingErrors) {
  util::Xoshiro256 rng(38);
  const auto g = Genome::synthesize(1 << 18, rng);
  SeedTableConfig table_config;
  SeedTable table(table_config, 1024);
  table.build(g);
  ReferenceLayout layout{1024, 32, 8192, 8192 * 4};
  ReadMapper mapper(g, table, layout);
  ReadSimConfig read_config;
  read_config.substitution_rate = 0.01;
  auto reads = sample_reads(g, 50, read_config, rng);
  EXPECT_GT(mapping_accuracy(mapper, reads, 5), 0.7);
}

TEST(MapperTest, TouchSinkSeesSeedProbesInTableRow) {
  util::Xoshiro256 rng(39);
  const auto g = Genome::synthesize(1 << 16, rng);
  SeedTableConfig table_config;
  SeedTable table(table_config, 1024);
  table.build(g);
  ReferenceLayout layout{1024, 32, 8192, 8192 * 4};
  std::vector<MemoryTouch> touches;
  ReadMapper mapper(g, table, layout, MapperConfig{},
                    [&](const MemoryTouch& t) { touches.push_back(t); });
  ReadSimConfig read_config;
  const auto reads = sample_reads(g, 3, read_config, rng);
  for (const auto& r : reads) (void)mapper.map(r);
  ASSERT_FALSE(touches.empty());
  bool saw_seed = false;
  bool saw_ref = false;
  for (const auto& t : touches) {
    if (t.kind == MemoryTouch::Kind::kSeedProbe) {
      saw_seed = true;
      EXPECT_EQ(t.location.row, table_config.table_row);
      EXPECT_EQ(t.location, table.locate(t.bucket));
    } else {
      saw_ref = true;
      EXPECT_GE(t.location.row, layout.base_row);
    }
  }
  EXPECT_TRUE(saw_seed);
  EXPECT_TRUE(saw_ref);
}

TEST(LeakPrecisionTest, BitsGrowWithBankCount) {
  SeedTableConfig config;
  const auto p1 = LeakPrecision::of(SeedTable(config, 1024));
  const auto p8 = LeakPrecision::of(SeedTable(config, 8192));
  EXPECT_EQ(p1.entries_per_bank, 16u);
  EXPECT_EQ(p8.entries_per_bank, 2u);
  EXPECT_NEAR(p1.bits_per_observation, 10.0, 1e-9);
  EXPECT_NEAR(p8.bits_per_observation, 13.0, 1e-9);
}

}  // namespace
}  // namespace impact::genomics
