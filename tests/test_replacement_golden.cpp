// Golden-sequence tests for the replacement policies and cross-layout
// determinism pins.
//
// The flat tag/valid/dirty + inline-metadata layout (PR 3) must be
// behavior-identical to the seed's array-of-structs layout: same hit/miss
// verdicts, same victim choices, same figure outputs to the bit. The golden
// scripts below drive LRU and SRRIP through fixed access/fill/victim
// sequences whose expected outcomes were derived from the seed
// implementation; the determinism tests pin whole-simulation statistics
// (a Fig. 2-style covert-channel run and a multiprogrammed Fig. 11 defense
// cell) to constants captured from the seed build on the reference
// container. Any layout or fast-path change that shifts one victim choice
// anywhere shows up here as a changed cycle count.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "attacks/registry.hpp"
#include "cache/cache.hpp"
#include "cache/replacement.hpp"
#include "graph/multiprog.hpp"
#include "sys/system.hpp"

namespace impact {
namespace {

using cache::Cache;
using cache::CacheConfig;
using cache::LineAddr;
using cache::ReplacementKind;

// --- LRU golden sequences -----------------------------------------------

TEST(ReplacementGoldenLru, HitPromotionScript) {
  // 4 ways. After reset, LRU order (MRU->LRU) is the arbitrary 0,1,2,3.
  std::array<std::uint8_t, 4> meta{};
  cache::repl::reset(ReplacementKind::kLru, meta);
  const std::array<std::uint8_t, 4> after_reset{0, 1, 2, 3};
  EXPECT_EQ(meta, after_reset);

  // Fill all four ways in order: order becomes 3,2,1,0 (3 is MRU).
  for (std::uint32_t w = 0; w < 4; ++w) {
    cache::repl::insert(ReplacementKind::kLru, meta, w);
  }
  const std::array<std::uint8_t, 4> after_fill{3, 2, 1, 0};
  EXPECT_EQ(meta, after_fill);
  EXPECT_EQ(cache::repl::victim(ReplacementKind::kLru, meta), 0u);

  // Promote way 1, then way 0: LRU is now way 2.
  cache::repl::touch(ReplacementKind::kLru, meta, 1);
  cache::repl::touch(ReplacementKind::kLru, meta, 0);
  const std::array<std::uint8_t, 4> after_touch{0, 1, 3, 2};
  EXPECT_EQ(meta, after_touch);
  EXPECT_EQ(cache::repl::victim(ReplacementKind::kLru, meta), 2u);

  // Double touch is idempotent (the hierarchy's touch_hit collapse
  // depends on this).
  cache::repl::touch(ReplacementKind::kLru, meta, 0);
  EXPECT_EQ(meta, after_touch);
}

TEST(ReplacementGoldenLru, VictimIsPureAndMetadataIsAPermutation) {
  std::array<std::uint8_t, 8> meta{};
  cache::repl::reset(ReplacementKind::kLru, meta);
  const std::uint32_t script[] = {3, 1, 4, 1, 5, 2, 6, 5, 3, 7, 0};
  for (std::uint32_t w : script) {
    cache::repl::touch(ReplacementKind::kLru, meta, w);
    // Permutation invariant: each of 0..7 appears exactly once.
    std::array<bool, 8> seen{};
    for (std::uint8_t m : meta) {
      ASSERT_LT(m, 8);
      EXPECT_FALSE(seen[m]);
      seen[m] = true;
    }
    // victim() must not mutate LRU state.
    const auto before = meta;
    (void)cache::repl::victim(ReplacementKind::kLru, meta);
    EXPECT_EQ(meta, before);
  }
  // MRU->LRU after the script: the reverse of last-touch order.
  EXPECT_EQ(cache::repl::victim(ReplacementKind::kLru, meta), 4u);
}

// --- SRRIP golden sequences ---------------------------------------------

TEST(ReplacementGoldenSrrip, InsertAtLongReReference) {
  std::array<std::uint8_t, 4> meta{};
  cache::repl::reset(ReplacementKind::kSrrip, meta);
  const std::array<std::uint8_t, 4> all_distant{3, 3, 3, 3};
  EXPECT_EQ(meta, all_distant);  // Empty set: all distant.

  cache::repl::insert(ReplacementKind::kSrrip, meta, 0);
  const std::array<std::uint8_t, 4> after_insert{2, 3, 3, 3};
  EXPECT_EQ(meta, after_insert);  // Insert at RRPV=2, not 0 (SRRIP's point).

  cache::repl::touch(ReplacementKind::kSrrip, meta, 0);
  const std::array<std::uint8_t, 4> after_hit{0, 3, 3, 3};
  EXPECT_EQ(meta, after_hit);  // Hit promotion to near-immediate.
}

TEST(ReplacementGoldenSrrip, AgeAndRescanScript) {
  // 4 ways, all resident: RRPVs 2,1,0,2 — no way is at RRPV=3, so the
  // victim search must age every entry by 1 and take the leftmost at 3.
  std::array<std::uint8_t, 4> meta{2, 1, 0, 2};
  EXPECT_EQ(cache::repl::victim(ReplacementKind::kSrrip, meta), 0u);
  const std::array<std::uint8_t, 4> aged{3, 2, 1, 3};
  EXPECT_EQ(meta, aged);  // Aged exactly once; the victim slot stays 3.

  // A second search finds way 0 again without ageing (already at max).
  EXPECT_EQ(cache::repl::victim(ReplacementKind::kSrrip, meta), 0u);
  EXPECT_EQ(meta, aged);

  // Deep ageing: all near-immediate -> two increments until one hits max.
  std::array<std::uint8_t, 3> hot{0, 1, 0};
  EXPECT_EQ(cache::repl::victim(ReplacementKind::kSrrip, hot), 1u);
  const std::array<std::uint8_t, 3> hot_aged{2, 3, 2};
  EXPECT_EQ(hot, hot_aged);
}

TEST(ReplacementGoldenSrrip, CacheLevelVictimScript) {
  // 1-set, 4-way SRRIP cache; lines are multiples of 1 (one set). The
  // expected victim sequence was traced against the seed implementation.
  CacheConfig config{"srrip1", 4 * 64, 4, 64, 1, ReplacementKind::kSrrip};
  Cache c(config);
  EXPECT_EQ(config.sets(), 1u);

  // Fill ways 0..3 with lines 10,20,30,40 (all inserted at RRPV=2).
  for (LineAddr l : {10ull, 20ull, 30ull, 40ull}) {
    EXPECT_EQ(c.fill(l), std::nullopt);
  }
  // Promote 20 and 40 (RRPV=0); 10 and 30 stay at 2.
  EXPECT_TRUE(c.access(20, false));
  EXPECT_TRUE(c.access(40, false));

  // Fill 50: ageing makes 10 (leftmost RRPV->3) the victim.
  auto ev = c.fill(50);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->line, 10u);

  // State now: 50@2(way0), 20@1, 30@3, 40@1. Fill 60 evicts 30.
  ev = c.fill(60);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->line, 30u);

  // 50@2 60@2 20@1 40@1: fill 70 ages once, evicts 50 (leftmost).
  ev = c.fill(70);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->line, 50u);
}

// --- Cross-layout determinism pins --------------------------------------
//
// Constants captured from the seed (pre-flat-layout) implementation,
// IMPACT_CHECK on and off agree. If these move, the change is NOT
// behavior-preserving for the reproduced figures.

TEST(CrossLayoutDeterminism, Fig2StyleDramaEvictionRun) {
  sys::SystemConfig cfg;
  cfg.llc_bytes = 2ull << 20;
  cfg.mapping =
      attacks::recommended_mapping(attacks::AttackKind::kDramaEviction);
  sys::MemorySystem system(cfg);
  auto attack =
      attacks::make_attack(attacks::AttackKind::kDramaEviction, system);
  const auto r = attack->measure(64, 4, 11);
  EXPECT_EQ(r.bits_total, 256u);
  EXPECT_EQ(r.bits_correct, 256u);
  EXPECT_EQ(r.elapsed_cycles, 686246u);
  EXPECT_EQ(r.sender_cycles, 677738u);
  EXPECT_EQ(r.receiver_cycles, 686246u);
}

TEST(CrossLayoutDeterminism, Fig2StyleDirectAccessRun) {
  sys::SystemConfig cfg;
  cfg.llc_bytes = 2ull << 20;
  sys::MemorySystem system(cfg);
  auto attack =
      attacks::make_attack(attacks::AttackKind::kDirectAccess, system);
  const auto r = attack->measure(64, 4, 11);
  EXPECT_EQ(r.bits_total, 256u);
  EXPECT_EQ(r.bits_correct, 256u);
  EXPECT_EQ(r.elapsed_cycles, 44553u);
  EXPECT_EQ(r.sender_cycles, 33516u);
  EXPECT_EQ(r.receiver_cycles, 44553u);
}

TEST(CrossLayoutDeterminism, MultiprogrammedDefenseCell) {
  graph::MultiprogConfig mc;
  mc.rmat_scale = 11;
  mc.edge_count = 16384;
  mc.graph_seed = 7;
  const auto s = graph::run_multiprogrammed(mc, graph::WorkloadKind::kBFS,
                                            dram::RowPolicy::kOpenRow);
  EXPECT_EQ(s.cycles, 622657u);
  EXPECT_EQ(s.instructions, 213424u);
  EXPECT_EQ(s.accesses, 72012u);
  EXPECT_EQ(s.llc_misses, 1224u);
  // Bitwise-pinned: 0x1.f62e359a56dfap-1.
  EXPECT_EQ(s.row_hit_rate, 0x1.f62e359a56dfap-1);
}

}  // namespace
}  // namespace impact
