// Unit tests: memory controller — decoding, partitioning, policies,
// masked RowClone with atomicity, and the functional data array.
#include <gtest/gtest.h>

#include <array>

#include "dram/controller.hpp"

namespace impact::dram {
namespace {

class ControllerTest : public ::testing::Test {
 protected:
  ControllerTest()
      : mc_(DramConfig{}, MappingScheme::kBankInterleaved,
            /*with_data=*/true),
        timing_(DramConfig{}.derived_timing()) {}

  MemoryController mc_;
  Timing timing_;
};

TEST_F(ControllerTest, AccessRoutesToDecodedBank) {
  const PhysAddr addr = mc_.mapping().row_base(5, 7) + 128;
  const auto r = mc_.access(addr, 1000);
  EXPECT_EQ(r.bank, 5u);
  EXPECT_EQ(mc_.open_row(5, r.completion), 7u);
}

TEST_F(ControllerTest, IssueOverheadAddsToLatency) {
  const auto r = mc_.access_row(0, 1, 1000);
  EXPECT_EQ(r.latency, timing_.empty_latency() + mc_.issue_overhead());
}

TEST_F(ControllerTest, HitAndConflictThroughController) {
  auto r = mc_.access_row(3, 10, 1000);
  r = mc_.access_row(3, 10, r.completion + 10);
  EXPECT_EQ(r.outcome, RowBufferOutcome::kHit);
  r = mc_.access_row(3, 11, r.completion + 200);
  EXPECT_EQ(r.outcome, RowBufferOutcome::kConflict);
}

TEST_F(ControllerTest, PolicySwitchAppliesToAllBanks) {
  mc_.set_policy(RowPolicy::kClosedRow);
  auto r = mc_.access_row(2, 10, 1000);
  r = mc_.access_row(2, 10, r.completion + 300);
  EXPECT_EQ(r.outcome, RowBufferOutcome::kEmpty);
  mc_.set_policy(RowPolicy::kOpenRow);
  r = mc_.access_row(2, 10, r.completion + 300);
  r = mc_.access_row(2, 10, r.completion + 10);
  EXPECT_EQ(r.outcome, RowBufferOutcome::kHit);
}

TEST_F(ControllerTest, PartitioningBlocksForeignActors) {
  mc_.set_partition_owner(4, /*owner=*/7);
  EXPECT_TRUE(mc_.can_access(4, 7));
  EXPECT_FALSE(mc_.can_access(4, 8));
  EXPECT_TRUE(mc_.can_access(5, 8));  // Unowned banks stay open.
  EXPECT_NO_THROW(mc_.access_row(4, 1, 1000, 7));
  EXPECT_THROW(mc_.access_row(4, 1, 2000, 8), std::invalid_argument);
  EXPECT_EQ(mc_.partition_faults(), 1u);
  // Releasing the claim re-opens the bank.
  mc_.set_partition_owner(4, kAnyActor);
  EXPECT_NO_THROW(mc_.access_row(4, 1, 3000, 8));
}

TEST_F(ControllerTest, RowCloneSingleLeg) {
  const auto r = mc_.rowclone(
      std::array{RowCloneLeg{2, 4, 5}}, 1000, /*atomic=*/false);
  ASSERT_EQ(r.legs.size(), 1u);
  EXPECT_EQ(r.legs[0].bank, 2u);
  EXPECT_EQ(mc_.open_row(2, r.completion), 5u);
  EXPECT_LE(r.ack_latency, r.latency);
}

TEST_F(ControllerTest, RowCloneLegsRunInParallel) {
  std::vector<RowCloneLeg> legs;
  for (BankId b = 0; b < 16; ++b) legs.push_back(RowCloneLeg{b, 4, 5});
  const auto multi = mc_.rowclone(legs, 1000, /*atomic=*/false);
  const auto single = mc_.rowclone(
      std::array{RowCloneLeg{20, 4, 5}}, multi.completion + 100,
      /*atomic=*/false);
  // 16 parallel legs take (about) as long as one: that is the PuM
  // sender's advantage.
  EXPECT_EQ(multi.latency, single.latency);
}

TEST_F(ControllerTest, AtomicRowCloneGatesAllBanks) {
  const auto r = mc_.rowclone(std::array{RowCloneLeg{0, 4, 5}}, 1000,
                              /*atomic=*/true);
  // A bank not involved in the clone still cannot start earlier.
  const auto other = mc_.access_row(9, 1, 1001);
  EXPECT_GE(other.completion, r.completion);
}

TEST_F(ControllerTest, NonAtomicRowCloneLeavesOtherBanksFree) {
  const auto r = mc_.rowclone(std::array{RowCloneLeg{0, 4, 5}}, 1000,
                              /*atomic=*/false);
  const auto other = mc_.access_row(9, 1, 1001);
  EXPECT_LT(other.completion, r.completion);
}

TEST_F(ControllerTest, RowCloneRejectsCrossSubarray) {
  const auto rows = DramConfig{}.subarray_rows;
  EXPECT_THROW(mc_.rowclone(std::array{RowCloneLeg{0, 4, rows + 4}}, 1000),
               std::invalid_argument);
}

TEST_F(ControllerTest, RowCloneRespectsPartitioning) {
  mc_.set_partition_owner(0, 7);
  EXPECT_THROW(
      mc_.rowclone(std::array{RowCloneLeg{0, 4, 5}}, 1000, true, 8),
      std::invalid_argument);
}

TEST_F(ControllerTest, StatsAggregateOverBanks) {
  mc_.reset_stats();
  (void)mc_.access_row(0, 1, 1000);
  (void)mc_.access_row(1, 1, 1000);
  const auto total = mc_.total_stats();
  EXPECT_EQ(total.accesses(), 2u);
  EXPECT_EQ(mc_.bank_stats(0).accesses(), 1u);
}

// --- Functional data array ------------------------------------------

TEST(DataArray, UnwrittenReadsZero) {
  DataArray data((DramConfig()));
  std::array<std::uint8_t, 8> buf{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF,
                                  0xFF};
  data.read(DramAddress{0, 0, 0}, buf);
  for (auto b : buf) EXPECT_EQ(b, 0u);
  EXPECT_EQ(data.materialized_rows(), 0u);
}

TEST(DataArray, WriteReadRoundTrip) {
  DataArray data((DramConfig()));
  const std::array<std::uint8_t, 4> in{1, 2, 3, 4};
  data.write(DramAddress{3, 17, 100}, in);
  std::array<std::uint8_t, 4> out{};
  data.read(DramAddress{3, 17, 100}, out);
  EXPECT_EQ(in, out);
  EXPECT_EQ(data.materialized_rows(), 1u);
}

TEST(DataArray, RejectsRowCrossing) {
  DataArray data((DramConfig()));
  std::array<std::uint8_t, 8> buf{};
  EXPECT_THROW(data.read(DramAddress{0, 0, 8190}, buf),
               std::invalid_argument);
  EXPECT_THROW(data.write(DramAddress{0, 0, 8190}, buf),
               std::invalid_argument);
}

TEST(DataArray, CloneRowCopiesWholeRow) {
  DataArray data((DramConfig()));
  const std::array<std::uint8_t, 3> in{9, 8, 7};
  data.write(DramAddress{1, 4, 0}, in);
  data.clone_row(1, 4, 5);
  std::array<std::uint8_t, 3> out{};
  data.read(DramAddress{1, 5, 0}, out);
  EXPECT_EQ(in, out);
  // Cloning a zero row zero-fills the destination.
  data.clone_row(1, 100, 5);
  data.read(DramAddress{1, 5, 0}, out);
  for (auto b : out) EXPECT_EQ(b, 0u);
}

TEST(DataArray, SelfCloneIsHarmless) {
  DataArray data((DramConfig()));
  const std::array<std::uint8_t, 2> in{5, 6};
  data.write(DramAddress{0, 9, 0}, in);
  data.clone_row(0, 9, 9);
  std::array<std::uint8_t, 2> out{};
  data.read(DramAddress{0, 9, 0}, out);
  EXPECT_EQ(in, out);
}

TEST(DataArray, FillRow) {
  DataArray data((DramConfig()));
  data.fill_row(2, 3, 0xAB);
  std::array<std::uint8_t, 2> out{};
  data.read(DramAddress{2, 3, 8190}, out);
  EXPECT_EQ(out[0], 0xAB);
  EXPECT_EQ(out[1], 0xAB);
}

TEST(DataArray, ControllerRowCloneMovesData) {
  MemoryController mc(DramConfig{}, MappingScheme::kBankInterleaved, true);
  const std::array<std::uint8_t, 4> in{0xDE, 0xAD, 0xBE, 0xEF};
  mc.data()->write(DramAddress{6, 8, 64}, in);
  (void)mc.rowclone(std::array{RowCloneLeg{6, 8, 9}}, 1000);
  std::array<std::uint8_t, 4> out{};
  mc.data()->read(DramAddress{6, 9, 64}, out);
  EXPECT_EQ(in, out);
}

}  // namespace
}  // namespace impact::dram
