// Framed-protocol tests: CRC-8 properties, frame construction/validation,
// lossless and lossy transfers over a scriptable mock channel, bounded
// retransmission, drift-triggered recalibration, hardened decoder inputs,
// and end-to-end recovery over the real IMPACT channels under injected
// faults (the PR's acceptance scenario: >=1% flipped channel bits plus
// dropped semaphore posts, zero residual BER, no aborts).
#include <gtest/gtest.h>

#include <functional>
#include <optional>
#include <stdexcept>
#include <string>

#include "attacks/impact_pnm.hpp"
#include "attacks/impact_pum.hpp"
#include "channel/attack.hpp"
#include "channel/coding.hpp"
#include "channel/protocol.hpp"
#include "fault/injector.hpp"
#include "sys/system.hpp"
#include "util/bitvec.hpp"
#include "util/rng.hpp"

namespace impact::channel {
namespace {

// --- CRC-8 ----------------------------------------------------------------

TEST(Crc8, DeterministicAndSensitiveToEveryBit) {
  util::Xoshiro256 rng(3);
  const auto bits = util::BitVec::random(64, rng);
  const auto base = crc8(bits, 0, bits.size());
  EXPECT_EQ(base, crc8(bits, 0, bits.size()));
  for (std::size_t i = 0; i < bits.size(); ++i) {
    auto flipped = bits;
    flipped.set(i, !flipped.get(i));
    EXPECT_NE(crc8(flipped, 0, flipped.size()), base) << "bit " << i;
  }
}

TEST(Crc8, EmptyRangeIsZeroAndBadRangeThrows) {
  const auto bits = util::BitVec(16, true);
  EXPECT_EQ(crc8(bits, 4, 4), 0u);
  EXPECT_THROW((void)crc8(bits, 0, 17), std::invalid_argument);
  EXPECT_THROW((void)crc8(bits, 9, 8), std::invalid_argument);
}

// --- Scriptable mock channel ----------------------------------------------

/// A channel whose per-transmission corruption is scripted by the test:
/// `corrupt(wire, attempt)` returns what the receiver decodes.
class ScriptedChannel final : public CovertAttack {
 public:
  using Corruptor = std::function<util::BitVec(const util::BitVec&,
                                               std::size_t attempt)>;

  explicit ScriptedChannel(Corruptor corrupt)
      : corrupt_(std::move(corrupt)) {}

  [[nodiscard]] std::string name() const override { return "scripted"; }

  TransmissionResult do_transmit(const util::BitVec& message) override {
    TransmissionResult r;
    r.sent = message;
    r.decoded = corrupt_(message, transmissions_);
    ++transmissions_;
    r.report.elapsed_cycles = 100 * message.size();
    score(r);
    return r;
  }

  util::Cycle recalibrate() override {
    ++recalibrations;
    return 5000;
  }

  std::size_t transmissions() const { return transmissions_; }
  std::size_t recalibrations = 0;

 private:
  Corruptor corrupt_;
  std::size_t transmissions_ = 0;
};

util::BitVec flip_bits(util::BitVec wire,
                       std::initializer_list<std::size_t> positions) {
  for (const auto p : positions) wire.set(p, !wire.get(p));
  return wire;
}

// --- Clean-channel behaviour ----------------------------------------------

TEST(FramedProtocol, CleanChannelDeliversEveryFrameOnce) {
  ScriptedChannel channel([](const util::BitVec& w, std::size_t) {
    return w;
  });
  FramedProtocol protocol(channel);
  util::Xoshiro256 rng(5);
  const auto msg = util::BitVec::random(100, rng);  // 4 frames, last short.
  const auto r = protocol.send(msg);

  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.decoded, msg);
  EXPECT_EQ(r.residual_errors, 0u);
  EXPECT_EQ(r.frames, 4u);
  EXPECT_EQ(r.transmissions, 4u);
  EXPECT_EQ(r.retransmissions, 0u);
  EXPECT_EQ(r.failed_frames, 0u);
  EXPECT_EQ(r.recalibrations, 0u);
  EXPECT_EQ(r.raw_error_rate(), 0.0);
  EXPECT_GT(r.goodput_mbps(util::kDefaultFrequency), 0.0);
  // Overhead accounting: every frame carries preamble + seq + CRC.
  EXPECT_EQ(r.channel_bits,
            msg.size() + r.frames * protocol.frame_overhead_bits());
}

TEST(FramedProtocol, ValidatesConfigAndMessage) {
  ScriptedChannel channel([](const util::BitVec& w, std::size_t) {
    return w;
  });
  ProtocolConfig bad;
  bad.payload_bits = 0;
  EXPECT_THROW(FramedProtocol(channel, bad), std::invalid_argument);
  bad = ProtocolConfig{};
  bad.preamble_tolerance = bad.preamble_bits;
  EXPECT_THROW(FramedProtocol(channel, bad), std::invalid_argument);

  FramedProtocol protocol(channel);
  EXPECT_THROW((void)protocol.send(util::BitVec{}), std::invalid_argument);
}

// --- Corruption and recovery ----------------------------------------------

TEST(FramedProtocol, PayloadCorruptionIsDetectedAndRetransmitted) {
  // First attempt of every frame loses a payload bit; retries are clean.
  ScriptedChannel channel([](const util::BitVec& w, std::size_t attempt) {
    return attempt % 2 == 0 ? flip_bits(w, {20}) : w;
  });
  FramedProtocol protocol(channel);
  util::Xoshiro256 rng(7);
  const auto msg = util::BitVec::random(64, rng);
  const auto r = protocol.send(msg);

  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.residual_errors, 0u);
  EXPECT_EQ(r.frames, 2u);
  EXPECT_EQ(r.transmissions, 4u);  // Each frame: 1 corrupted + 1 clean.
  EXPECT_EQ(r.retransmissions, 2u);
  EXPECT_GT(r.raw_error_rate(), 0.0);
}

TEST(FramedProtocol, PreambleToleratesOneFlipButNotMore) {
  // A single preamble flip still parses (CRC covers only seq+payload).
  ScriptedChannel tolerant([](const util::BitVec& w, std::size_t attempt) {
    return attempt == 0 ? flip_bits(w, {0}) : w;
  });
  FramedProtocol protocol(tolerant);
  const auto msg = util::BitVec::alternating(32);
  const auto r = protocol.send(msg);
  EXPECT_EQ(r.retransmissions, 0u);
  EXPECT_EQ(r.residual_errors, 0u);

  // Two preamble flips break frame sync: the frame must be retransmitted
  // even though the CRC region is intact.
  ScriptedChannel broken([](const util::BitVec& w, std::size_t attempt) {
    return attempt == 0 ? flip_bits(w, {0, 2}) : w;
  });
  FramedProtocol protocol2(broken);
  const auto r2 = protocol2.send(msg);
  EXPECT_EQ(r2.retransmissions, 1u);
  EXPECT_EQ(r2.residual_errors, 0u);
}

TEST(FramedProtocol, ConsecutiveFailuresTriggerRecalibration) {
  // Frame 0 fails twice before succeeding: with recalibrate_after = 2 the
  // drift detector trips exactly once.
  ScriptedChannel channel([](const util::BitVec& w, std::size_t attempt) {
    return attempt < 2 ? flip_bits(w, {15}) : w;
  });
  ProtocolConfig config;
  config.recalibrate_after = 2;
  FramedProtocol protocol(channel, config);
  const auto r = protocol.send(util::BitVec::alternating(32));
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.recalibrations, 1u);
  EXPECT_EQ(channel.recalibrations, 1u);
}

TEST(FramedProtocol, ExhaustedRetriesReportFailedFrameWithoutThrowing) {
  // The second frame is always corrupted; the first is clean. The transfer
  // still finishes, reporting exactly one failed frame.
  ProtocolConfig config;
  config.payload_bits = 16;
  config.max_retries = 3;
  ScriptedChannel channel([&config](const util::BitVec& w,
                                    std::size_t) {
    // Frames are distinguishable by their seq bits: corrupt only seq 1.
    const bool second = w.get(config.preamble_bits);
    return second ? flip_bits(w, {config.preamble_bits + config.seq_bits})
                  : w;
  });
  FramedProtocol protocol(channel, config);
  const auto msg = util::BitVec(32, true);
  const auto r = protocol.send(msg);

  EXPECT_FALSE(r.complete);
  EXPECT_EQ(r.failed_frames, 1u);
  EXPECT_EQ(r.retransmissions, config.max_retries);
  EXPECT_EQ(r.transmissions, 1u + 1u + config.max_retries);
  // Best-effort decode: the corrupted payload bit is the only residual.
  EXPECT_EQ(r.residual_errors, 1u);
}

TEST(FramedProtocol, InnerCodeAbsorbsIsolatedFlipsWithoutRetransmission) {
  // One flip per transmission, inside the payload region: Hamming(7,4)
  // corrects it, so the framed layer never needs a retry.
  ScriptedChannel channel([](const util::BitVec& w, std::size_t) {
    return flip_bits(w, {21});
  });
  ProtocolConfig config;
  config.code = CodeKind::kHamming74;
  FramedProtocol protocol(channel, config);
  util::Xoshiro256 rng(11);
  const auto msg = util::BitVec::random(64, rng);
  const auto r = protocol.send(msg);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.residual_errors, 0u);
  EXPECT_EQ(r.retransmissions, 0u);
  EXPECT_GT(r.raw_error_rate(), 0.0);  // The channel really was lossy.
}

// --- Hardened decoders -----------------------------------------------------

TEST(CodingHardening, TryDecodeRepetitionRejectsMalformedInput) {
  const auto coded = encode_repetition(util::BitVec::alternating(8), 3);
  EXPECT_TRUE(try_decode_repetition(coded, 3).has_value());
  EXPECT_FALSE(try_decode_repetition(coded, 0).has_value());
  EXPECT_FALSE(try_decode_repetition(coded, 2).has_value());  // Even r.
  EXPECT_FALSE(try_decode_repetition(util::BitVec(7, true), 3).has_value());
  EXPECT_THROW((void)decode_repetition(coded, 2), std::invalid_argument);
  EXPECT_THROW((void)decode_repetition(util::BitVec(7, true), 3),
               std::invalid_argument);
}

TEST(CodingHardening, TryDecodeHamming74RejectsMalformedInput) {
  const auto coded = encode_hamming74(util::BitVec::alternating(8));
  EXPECT_TRUE(try_decode_hamming74(coded, 8).has_value());
  EXPECT_FALSE(try_decode_hamming74(util::BitVec(8, true), 4).has_value());
  EXPECT_FALSE(try_decode_hamming74(coded, 100).has_value());
  EXPECT_THROW((void)decode_hamming74(util::BitVec(8, true), 4),
               std::invalid_argument);
  EXPECT_THROW((void)decode_hamming74(coded, 100), std::invalid_argument);
}

// --- End-to-end recovery over the real channels ----------------------------

/// The PR's acceptance profile: flips >= 1% of channel bits (jitter around
/// the decision threshold + refresh storms) and drops more than one
/// semaphore post per message.
std::vector<fault::FaultConfig> acceptance_profile() {
  return {
      {fault::FaultKind::kDramJitter, 0.03, 400, 0, ~0ull},
      {fault::FaultKind::kRefreshStorm, 0.01, 0, 0, ~0ull},
      {fault::FaultKind::kSemaphoreDrop, 0.25, 0, 0, ~0ull},
  };
}

TEST(FramedProtocolEndToEnd, PnmRecoversToZeroResidualBerUnderFaults) {
  sys::MemorySystem system{sys::SystemConfig{}};
  attacks::ImpactPnm attack(system);
  (void)attack.transmit(util::BitVec::alternating(16));  // Calibrate clean.

  fault::Injector injector(4321, acceptance_profile());
  system.set_fault_injector(&injector);

  ProtocolConfig config;
  config.payload_bits = 8;  // Short frames localize the damage.
  config.max_retries = 16;
  FramedProtocol protocol(attack, config);
  util::Xoshiro256 rng(13);
  const auto msg = util::BitVec::random(96, rng);
  const auto r = protocol.send(msg);
  system.set_fault_injector(nullptr);

  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.residual_errors, 0u);
  EXPECT_EQ(r.decoded, msg);
  // The faults really hit: >= 1% of channel bits flipped, posts dropped.
  EXPECT_GT(r.raw_error_rate(), 0.01);
  EXPECT_GT(injector.counters().fired_of(fault::FaultKind::kSemaphoreDrop),
            1u);
  EXPECT_GT(r.retransmissions, 0u);
}

TEST(FramedProtocolEndToEnd, PumRecoversFromRowCloneBitFlips) {
  sys::MemorySystem system{sys::SystemConfig{}};
  attacks::ImpactPum attack(system);
  (void)attack.transmit(util::BitVec::alternating(16));  // Calibrate clean.

  fault::Injector injector(
      777, {{fault::FaultKind::kRowCloneDrop, 0.03, 0, 0, ~0ull}});
  system.set_fault_injector(&injector);

  ProtocolConfig config;
  config.payload_bits = 16;
  config.max_retries = 16;
  FramedProtocol protocol(attack, config);
  util::Xoshiro256 rng(17);
  const auto msg = util::BitVec::random(64, rng);
  const auto r = protocol.send(msg);
  system.set_fault_injector(nullptr);

  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.residual_errors, 0u);
  EXPECT_GT(injector.counters().fired_of(fault::FaultKind::kRowCloneDrop),
            0u);
}

TEST(FramedProtocolEndToEnd, FaultFreeRunMatchesRawChannelBits) {
  // Without faults the framed layer is pure overhead: one transmission per
  // frame and a decode identical to the raw channel's.
  sys::MemorySystem system{sys::SystemConfig{}};
  attacks::ImpactPnm attack(system);
  FramedProtocol protocol(attack);
  util::Xoshiro256 rng(19);
  const auto msg = util::BitVec::random(64, rng);
  const auto r = protocol.send(msg);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.residual_errors, 0u);
  EXPECT_EQ(r.transmissions, r.frames);
  EXPECT_EQ(attack.last_sync_timeouts(), 0u);
}

}  // namespace
}  // namespace impact::channel
