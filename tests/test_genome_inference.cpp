// Tests: the completion-attack inference stage.
#include <gtest/gtest.h>

#include "attacks/genome_inference.hpp"
#include "attacks/side_channel.hpp"
#include "genomics/genome.hpp"

namespace impact::attacks {
namespace {

/// Builds a small table + reference and returns synthetic observations
/// for a read at a known locus.
class InferenceFixture : public ::testing::Test {
 protected:
  InferenceFixture() : rng_(55) {
    genome_ = genomics::Genome::synthesize(1 << 18, rng_);
    genomics::SeedTableConfig config;
    table_ = std::make_unique<genomics::SeedTable>(config, kBanks);
    table_->build(genome_);
  }

  /// Observations a read at `locus` would produce: the banks of the
  /// buckets its minimizers hash into, at consecutive times.
  std::vector<BankObservation> observations_for_read(
      std::size_t locus, util::Cycle at) const {
    const auto bases = genome_.slice(locus, 150);
    const auto minimizers = genomics::extract_minimizers(
        bases, table_->config().minimizer);
    std::vector<BankObservation> out;
    for (const auto& m : minimizers) {
      const auto bucket = table_->bucket_of(m.hash);
      out.push_back(BankObservation{table_->locate(bucket).bank, at});
      at += 300;
    }
    return out;
  }

  static constexpr std::uint32_t kBanks = 1024;
  util::Xoshiro256 rng_;
  genomics::Genome genome_;
  std::unique_ptr<genomics::SeedTable> table_;
};

TEST_F(InferenceFixture, CleanEpisodeRanksTrueLocusFirst) {
  GenomeInference inference(*table_, genome_.size());
  const std::size_t locus = 100000;
  const auto episodes =
      inference.infer(observations_for_read(locus, 1000));
  ASSERT_EQ(episodes.size(), 1u);
  ASSERT_FALSE(episodes[0].regions.empty());
  // The top region must cover the read (within a bin).
  const auto& best = episodes[0].regions.front();
  EXPECT_NEAR(static_cast<double>(best.position),
              static_cast<double>(locus), 512.0);
  EXPECT_GE(best.support, 3u);
}

TEST_F(InferenceFixture, GapSplitsEpisodes) {
  GenomeInference inference(*table_, genome_.size());
  auto obs = observations_for_read(50000, 1000);
  const auto second = observations_for_read(180000, 200000);
  obs.insert(obs.end(), second.begin(), second.end());
  const auto episodes = inference.infer(obs);
  ASSERT_EQ(episodes.size(), 2u);
}

TEST_F(InferenceFixture, SparseEpisodesAreNotScored) {
  InferenceConfig config;
  config.min_banks = 5;
  GenomeInference inference(*table_, genome_.size(), config);
  const std::vector<BankObservation> obs = {{3, 100}, {9, 400}};
  const auto episodes = inference.infer(obs);
  ASSERT_EQ(episodes.size(), 1u);
  EXPECT_TRUE(episodes[0].regions.empty());
}

TEST_F(InferenceFixture, EvaluateMatchesTruthByTimeOverlap) {
  GenomeInference inference(*table_, genome_.size());
  const std::size_t locus = 100000;
  const auto obs = observations_for_read(locus, 5000);
  const std::vector<EpisodeTruth> truths = {
      {locus, 5000, obs.back().time},
      {12345, 900000, 950000},  // No overlapping episode: not evaluated.
  };
  const auto report = inference.evaluate(obs, truths);
  EXPECT_EQ(report.evaluated_truths, 1u);
  EXPECT_EQ(report.matched_truths, 1u);
  EXPECT_GT(report.mean_candidate_positions, 0.0);
}

TEST(InferenceEndToEnd, SpyObservationsSupportInference) {
  SideChannelConfig config;
  config.banks = 1024;
  config.reads = 16;
  config.genome_length = 1ull << 17;
  config.victim_alignment_compute = 1024 * 600ull;
  ReadMappingSpy spy(config);
  const auto run = spy.run();
  ASSERT_FALSE(run.positives.empty());
  ASSERT_FALSE(run.episode_truths.empty());

  GenomeInference inference(
      spy.table(), spy.reference_bases(),
      InferenceConfig{1024 * 280ull, 256, 5, 3, 24});
  const auto report = inference.evaluate(run.positives, run.episode_truths);
  EXPECT_GT(report.scored, 3u);
  EXPECT_GT(report.evaluated_truths, 3u);
  EXPECT_GT(report.topk_hit_rate(), 0.3);
}

TEST(InferenceConfigTest, Validation) {
  genomics::SeedTableConfig tconfig;
  genomics::SeedTable table(tconfig, 1024);
  EXPECT_THROW(GenomeInference(table, 0), std::invalid_argument);
  InferenceConfig bad;
  bad.bin_bases = 0;
  EXPECT_THROW(GenomeInference(table, 100, bad), std::invalid_argument);
}

}  // namespace
}  // namespace impact::attacks
