// Unit + integration tests: channel coding, background noise, refresh.
#include <gtest/gtest.h>

#include "attacks/impact_pnm.hpp"
#include "channel/coding.hpp"
#include "dram/bank.hpp"
#include "sys/noise.hpp"
#include "util/rng.hpp"

namespace impact {
namespace {

TEST(RepetitionCode, RoundTripNoErrors) {
  util::Xoshiro256 rng(61);
  const auto msg = util::BitVec::random(40, rng);
  const auto coded = channel::encode_repetition(msg, 3);
  EXPECT_EQ(coded.size(), 120u);
  EXPECT_EQ(channel::decode_repetition(coded, 3), msg);
}

TEST(RepetitionCode, CorrectsSingleFlipsPerGroup) {
  util::Xoshiro256 rng(62);
  const auto msg = util::BitVec::random(40, rng);
  auto coded = channel::encode_repetition(msg, 3);
  // Flip one bit in every 3-bit group.
  for (std::size_t g = 0; g < msg.size(); ++g) {
    const std::size_t pos = g * 3 + rng.below(3);
    coded.set(pos, !coded.get(pos));
  }
  EXPECT_EQ(channel::decode_repetition(coded, 3), msg);
}

TEST(RepetitionCode, RejectsEvenFactorAndBadLength) {
  EXPECT_THROW((void)channel::encode_repetition(util::BitVec(4), 2),
               std::invalid_argument);
  EXPECT_THROW((void)channel::decode_repetition(util::BitVec(10), 3),
               std::invalid_argument);
}

TEST(Hamming74, RoundTripNoErrors) {
  util::Xoshiro256 rng(63);
  for (std::size_t bits : {4u, 8u, 15u, 64u}) {  // Incl. padded lengths.
    const auto msg = util::BitVec::random(bits, rng);
    const auto coded = channel::encode_hamming74(msg);
    EXPECT_EQ(coded.size() % 7, 0u);
    EXPECT_EQ(channel::decode_hamming74(coded, bits), msg);
  }
}

TEST(Hamming74, CorrectsAnySingleBitErrorPerBlock) {
  // Exhaustive property: every data nibble x every single-bit flip.
  for (unsigned nibble = 0; nibble < 16; ++nibble) {
    util::BitVec msg(4);
    for (unsigned k = 0; k < 4; ++k) msg.set(k, (nibble >> k) & 1);
    const auto coded = channel::encode_hamming74(msg);
    for (std::size_t flip = 0; flip < 7; ++flip) {
      auto corrupted = coded;
      corrupted.set(flip, !corrupted.get(flip));
      EXPECT_EQ(channel::decode_hamming74(corrupted, 4), msg)
          << "nibble " << nibble << " flip " << flip;
    }
  }
}

TEST(Hamming74, DoubleErrorsAreBeyondTheCode) {
  util::BitVec msg = util::BitVec::from_string("1011");
  auto coded = channel::encode_hamming74(msg);
  coded.set(0, !coded.get(0));
  coded.set(1, !coded.get(1));
  EXPECT_NE(channel::decode_hamming74(coded, 4), msg);
}

TEST(CodeKindTest, Rates) {
  EXPECT_DOUBLE_EQ(channel::code_rate(channel::CodeKind::kNone), 1.0);
  EXPECT_NEAR(channel::code_rate(channel::CodeKind::kRepetition3), 0.333,
              0.001);
  EXPECT_NEAR(channel::code_rate(channel::CodeKind::kHamming74), 0.571,
              0.001);
}

TEST(CodedTransmission, QuietChannelAllCodesLossless) {
  sys::MemorySystem system{sys::SystemConfig{}};
  attacks::ImpactPnm attack(system);
  util::Xoshiro256 rng(64);
  const auto msg = util::BitVec::random(64, rng);
  for (const auto code :
       {channel::CodeKind::kNone, channel::CodeKind::kRepetition3,
        channel::CodeKind::kHamming74}) {
    const auto r = channel::transmit_coded(attack, msg, code,
                                           util::kDefaultFrequency);
    EXPECT_EQ(r.residual_errors, 0u) << to_string(code);
    EXPECT_EQ(r.decoded, msg) << to_string(code);
    EXPECT_GT(r.goodput_mbps, 1.0);
  }
  // Rate ordering: uncoded > Hamming > repetition on a clean channel.
  const auto none = channel::transmit_coded(
      attack, msg, channel::CodeKind::kNone, util::kDefaultFrequency);
  const auto ham = channel::transmit_coded(
      attack, msg, channel::CodeKind::kHamming74, util::kDefaultFrequency);
  const auto rep = channel::transmit_coded(
      attack, msg, channel::CodeKind::kRepetition3,
      util::kDefaultFrequency);
  EXPECT_GT(none.goodput_mbps, ham.goodput_mbps);
  EXPECT_GT(ham.goodput_mbps, rep.goodput_mbps);
}

TEST(BackgroundNoiseTest, RespectsRateAndFrontier) {
  sys::MemorySystem system{sys::SystemConfig{}};
  sys::NoiseConfig config;
  config.accesses_per_kilocycle = 2.0;
  sys::BackgroundNoise noise(config, system, 42);
  noise.advance(100'000);
  const auto issued = noise.accesses_issued();
  EXPECT_NEAR(static_cast<double>(issued), 200.0, 80.0);
  // Advancing to the same frontier adds nothing.
  noise.advance(100'000);
  EXPECT_EQ(noise.accesses_issued(), issued);
}

TEST(BackgroundNoiseTest, ZeroRateIsFree) {
  sys::MemorySystem system{sys::SystemConfig{}};
  sys::BackgroundNoise noise(sys::NoiseConfig{}, system, 42);
  noise.advance(1'000'000);
  EXPECT_EQ(noise.accesses_issued(), 0u);
}

TEST(BackgroundNoiseTest, RaisesChannelErrorRate) {
  sys::SystemConfig config;
  sys::MemorySystem system(config);
  sys::NoiseConfig noise_config;
  noise_config.accesses_per_kilocycle = 8.0;
  sys::BackgroundNoise noise(noise_config, system, 42);
  attacks::ImpactPnm attack(system);
  attack.set_noise(&noise);
  const auto report = attack.measure(128, 6, 65);
  EXPECT_GT(report.error_rate(), 0.01);
  EXPECT_LT(report.error_rate(), 0.35);  // Degraded, not destroyed.
}

TEST(RefreshTest, RefreshClosesRowsAndStallsBank) {
  dram::TimingParams params;
  params.trefi_ns = 1000.0;  // Aggressive for the test.
  const auto timing = dram::Timing::from(params, util::kDefaultFrequency);
  dram::Bank bank(timing, dram::RowPolicy::kOpenRow);
  const auto r = bank.access(10, 100);
  ASSERT_EQ(bank.open_row(r.completion), 10u);
  // Cross the first tREFI boundary: the row buffer is precharged.
  EXPECT_FALSE(bank.open_row(timing.trefi + 1).has_value());
  // A command landing inside the refresh window waits for tRFC.
  dram::Bank bank2(timing, dram::RowPolicy::kOpenRow);
  const auto during = bank2.access(10, timing.trefi + 1);
  EXPECT_GE(during.start, timing.trefi + timing.trfc);
}

TEST(RefreshTest, InjectsChannelErrors) {
  sys::SystemConfig config;
  config.dram.timing.trefi_ns = 2000.0;  // Far denser than real tREFI, to
                                         // make the effect visible fast.
  sys::MemorySystem system(config);
  attacks::ImpactPnm attack(system);
  const auto report = attack.measure(128, 6, 66);
  EXPECT_GT(report.error_rate(), 0.005);
  // And with refresh off, the same setup is error-free.
  sys::SystemConfig clean = config;
  clean.dram.timing.trefi_ns = 0.0;
  sys::MemorySystem clean_system(clean);
  attacks::ImpactPnm clean_attack(clean_system);
  EXPECT_DOUBLE_EQ(clean_attack.measure(128, 6, 66).error_rate(), 0.0);
}

}  // namespace
}  // namespace impact
