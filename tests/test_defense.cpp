// Integration tests: do the §6 defenses actually neutralize IMPACT?
#include <gtest/gtest.h>

#include "attacks/impact_pnm.hpp"
#include "attacks/impact_pum.hpp"
#include "defense/defense.hpp"

namespace impact::defense {
namespace {

TEST(DefenseTest, BaselineChannelCarriesInformation) {
  sys::MemorySystem system{sys::SystemConfig{}};
  attacks::ImpactPnm attack(system);
  const auto report = check_neutralized(attack);
  EXPECT_FALSE(report.neutralized());
  EXPECT_LT(report.error_rate, 0.02);
}

TEST(DefenseTest, ConstantTimeNeutralizesPnm) {
  sys::MemorySystem system{sys::SystemConfig{}};
  apply_policy(system, DefenseKind::kConstantTime);
  attacks::ImpactPnm attack(system);
  const auto report = check_neutralized(attack);
  EXPECT_TRUE(report.neutralized());
}

TEST(DefenseTest, ClosedRowNeutralizesPnm) {
  sys::MemorySystem system{sys::SystemConfig{}};
  apply_policy(system, DefenseKind::kClosedRow);
  attacks::ImpactPnm attack(system);
  const auto report = check_neutralized(attack);
  EXPECT_TRUE(report.neutralized());
}

TEST(DefenseTest, ConstantTimeNeutralizesPum) {
  sys::MemorySystem system{sys::SystemConfig{}};
  apply_policy(system, DefenseKind::kConstantTime);
  attacks::ImpactPum attack(system);
  const auto report = check_neutralized(attack);
  EXPECT_TRUE(report.neutralized());
}

TEST(DefenseTest, ClosedRowNeutralizesPum) {
  sys::MemorySystem system{sys::SystemConfig{}};
  apply_policy(system, DefenseKind::kClosedRow);
  attacks::ImpactPum attack(system);
  const auto report = check_neutralized(attack);
  EXPECT_TRUE(report.neutralized());
}

TEST(DefenseTest, PartitioningDeniesCoLocation) {
  sys::MemorySystem system{sys::SystemConfig{}};
  partition_banks(system, attacks::kSender, attacks::kReceiver);
  // Banks are split sender/receiver: the two can no longer both touch the
  // same bank, so channel setup itself faults.
  attacks::ImpactPnm attack(system);
  EXPECT_THROW((void)attack.transmit(util::BitVec(16, true)),
               std::invalid_argument);
  EXPECT_GT(system.controller().partition_faults(), 0u);
}

TEST(DefenseTest, PolicyCanBeLifted) {
  sys::MemorySystem system{sys::SystemConfig{}};
  apply_policy(system, DefenseKind::kConstantTime);
  apply_policy(system, DefenseKind::kNone);
  attacks::ImpactPnm attack(system);
  EXPECT_FALSE(check_neutralized(attack).neutralized());
}

TEST(DefenseTest, MprRequiresAssignment) {
  sys::MemorySystem system{sys::SystemConfig{}};
  EXPECT_THROW(apply_policy(system, DefenseKind::kMemoryPartitioning),
               std::invalid_argument);
}

TEST(DefenseTest, Names) {
  EXPECT_STREQ(to_string(DefenseKind::kClosedRow), "CRP");
  EXPECT_STREQ(to_string(DefenseKind::kConstantTime), "CTD");
  EXPECT_STREQ(to_string(DefenseKind::kMemoryPartitioning), "MPR");
  EXPECT_STREQ(to_string(DefenseKind::kAdaptiveRow), "adaptive");
}

TEST(AdaptivePolicy, KeepsStreamingHitsOpen) {
  // Benign high-locality traffic: after a few hits the predictor keeps
  // the row open and hit latencies return.
  dram::MemoryController mc((dram::DramConfig()));
  mc.set_policy(dram::RowPolicy::kAdaptive);
  util::Cycle now = 0;
  std::size_t hits = 0;
  for (int i = 0; i < 16; ++i) {
    const auto r = mc.access_row(0, 5, now);
    hits += (r.outcome == dram::RowBufferOutcome::kHit);
    now = r.completion + 50;
  }
  EXPECT_GE(hits, 13u);
}

TEST(AdaptivePolicy, DegradesTheCovertChannel) {
  // The attack's conflict-heavy pattern burns the keep-open confidence,
  // so the sender's interference is frequently auto-precharged away —
  // the channel degrades well above its quiet-system error but is not
  // fully eliminated (adaptive is a mitigation, not CRP).
  sys::MemorySystem system{sys::SystemConfig{}};
  apply_policy(system, DefenseKind::kAdaptiveRow);
  attacks::ImpactPnm attack(system);
  const auto report = check_neutralized(attack, 512);
  EXPECT_GT(report.error_rate, 0.10);
}

}  // namespace
}  // namespace impact::defense
