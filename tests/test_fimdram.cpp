// Tests: the FIMDRAM-style PnM interface and the generalized attack.
#include <gtest/gtest.h>

#include "attacks/impact_fim.hpp"
#include "attacks/impact_pnm.hpp"
#include "attacks/registry.hpp"
#include "pim/fimdram.hpp"

namespace impact {
namespace {

TEST(FimDispatcher, SingleBankOpActivatesRow) {
  dram::MemoryController mc((dram::DramConfig()));
  pim::FimDispatcher fim(pim::FimConfig{}, mc, 1);
  util::Cycle clock = 0;
  const auto r = fim.execute_bank(5, 40, clock);
  EXPECT_EQ(r.outcome, dram::RowBufferOutcome::kEmpty);
  EXPECT_EQ(mc.open_row(5, clock), 40u);
  EXPECT_EQ(clock, r.latency);
}

TEST(FimDispatcher, HitConflictMarginSurvivesMmioPath) {
  dram::MemoryController mc((dram::DramConfig()));
  pim::FimDispatcher fim(pim::FimConfig{}, mc, 1);
  util::Cycle clock = 0;
  (void)fim.execute_bank(2, 10, clock);
  const auto hit = fim.execute_bank(2, 10, clock);
  (void)fim.execute_bank(2, 11, clock);
  const auto conflict = fim.execute_bank(2, 10, clock);
  EXPECT_EQ(conflict.latency - hit.latency,
            mc.timing().trp + mc.timing().trcd);
}

TEST(FimDispatcher, AllBankOpTouchesEveryBankInLockstep) {
  dram::MemoryController mc((dram::DramConfig()));
  pim::FimDispatcher fim(pim::FimConfig{}, mc, 1);
  util::Cycle clock = 0;
  const auto r = fim.execute_all_bank(7, clock);
  EXPECT_EQ(r.bank_outcomes.size(), mc.banks());
  for (dram::BankId b = 0; b < mc.banks(); ++b) {
    EXPECT_EQ(mc.open_row(b, clock), 7u);
  }
  // Lockstep: the whole device op costs about one bank op, not banks x.
  util::Cycle single_clock = clock;
  const auto single = fim.execute_bank(0, 8, single_clock);
  EXPECT_LT(r.latency, 3 * single.latency);
}

TEST(FimDispatcher, RespectsPartitioning) {
  dram::MemoryController mc((dram::DramConfig()));
  mc.set_partition_owner(3, 9);
  pim::FimDispatcher fim(pim::FimConfig{}, mc, 1);
  util::Cycle clock = 0;
  EXPECT_THROW((void)fim.execute_bank(3, 10, clock),
               std::invalid_argument);
  EXPECT_THROW((void)fim.execute_all_bank(10, clock),
               std::invalid_argument);
}

TEST(ImpactFimAttack, DecodesMessagesReliably) {
  sys::MemorySystem system{sys::SystemConfig{}};
  attacks::ImpactFim attack(system);
  util::Xoshiro256 rng(111);
  const auto r = attack.transmit(util::BitVec::random(64, rng));
  EXPECT_EQ(r.report.bit_errors(), 0u);
}

TEST(ImpactFimAttack, ThroughputComparableToPeiVariant) {
  sys::SystemConfig config;
  double fim_mbps = 0.0;
  double pei_mbps = 0.0;
  {
    sys::MemorySystem system(config);
    attacks::ImpactFim attack(system);
    fim_mbps =
        attack.measure(64, 8, 112).throughput_mbps(config.frequency());
  }
  {
    sys::MemorySystem system(config);
    attacks::ImpactPnm attack(system);
    pei_mbps =
        attack.measure(64, 8, 112).throughput_mbps(config.frequency());
  }
  EXPECT_GT(fim_mbps, 0.7 * pei_mbps);
  EXPECT_LT(fim_mbps, 1.5 * pei_mbps);
}

TEST(ImpactFimAttack, AvailableThroughRegistry) {
  sys::SystemConfig config;
  config.mapping =
      attacks::recommended_mapping(attacks::AttackKind::kImpactFim);
  sys::MemorySystem system(config);
  auto attack =
      attacks::make_attack(attacks::AttackKind::kImpactFim, system);
  EXPECT_EQ(attack->name(), "IMPACT-FIM");
  const auto report = attack->measure(32, 4, 113);
  EXPECT_EQ(report.bits_correct, report.bits_total);
}

}  // namespace
}  // namespace impact
