// Tests: the synchronization-free slotted channel variant.
#include <gtest/gtest.h>

#include "attacks/impact_async.hpp"
#include "attacks/impact_pnm.hpp"

namespace impact::attacks {
namespace {

TEST(ImpactAsyncTest, DecodesCleanlyAtSafeSlotLengths) {
  sys::MemorySystem system{sys::SystemConfig{}};
  ImpactAsyncConfig config;
  config.slot_cycles = 260;
  ImpactAsync attack(system, config);
  util::Xoshiro256 rng(121);
  const auto r = attack.transmit(util::BitVec::random(128, rng));
  EXPECT_EQ(r.report.bit_errors(), 0u);
  EXPECT_DOUBLE_EQ(attack.overrun_rate(), 0.0);
}

TEST(ImpactAsyncTest, ThroughputTracksSlotLength) {
  auto mbps = [](util::Cycle slot) {
    sys::MemorySystem system{sys::SystemConfig{}};
    ImpactAsyncConfig config;
    config.slot_cycles = slot;
    ImpactAsync attack(system, config);
    return attack.measure(128, 4, 122)
        .throughput_mbps(util::kDefaultFrequency);
  };
  // At safe slot lengths the bit rate is exactly one bit per slot.
  EXPECT_NEAR(mbps(260), 2600.0 / 260.0, 0.5);
  EXPECT_NEAR(mbps(400), 2600.0 / 400.0, 0.4);
}

TEST(ImpactAsyncTest, AggressiveSlotsOverrunAndDegrade) {
  sys::MemorySystem system{sys::SystemConfig{}};
  ImpactAsyncConfig config;
  config.slot_cycles = 140;
  ImpactAsync attack(system, config);
  const auto report = attack.measure(256, 4, 123);
  EXPECT_GT(attack.overrun_rate(), 0.5);
  EXPECT_GT(report.error_rate(), 0.05);  // Slot aliasing bites.
}

TEST(ImpactAsyncTest, NoHandshakeBeatsSemaphoreVariantAtItsSweetSpot) {
  double async_mbps = 0.0;
  double sync_mbps = 0.0;
  {
    sys::MemorySystem system{sys::SystemConfig{}};
    ImpactAsyncConfig config;
    config.slot_cycles = 180;
    ImpactAsync attack(system, config);
    const auto r = attack.measure(128, 6, 124);
    // Only meaningful if the channel still decodes.
    EXPECT_LT(r.error_rate(), 0.02);
    async_mbps = r.throughput_mbps(util::kDefaultFrequency);
  }
  {
    sys::MemorySystem system{sys::SystemConfig{}};
    ImpactPnm attack(system);
    sync_mbps = attack.measure(128, 6, 124)
                    .throughput_mbps(util::kDefaultFrequency);
  }
  EXPECT_GT(async_mbps, sync_mbps);
}

TEST(ImpactAsyncTest, RejectsInfeasibleSlots) {
  sys::MemorySystem system{sys::SystemConfig{}};
  ImpactAsyncConfig config;
  config.slot_cycles = 80;
  EXPECT_THROW(ImpactAsync(system, config), std::invalid_argument);
}

}  // namespace
}  // namespace impact::attacks
