// Property tests: address-mapping bijectivity across schemes x geometries.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "dram/address_mapping.hpp"
#include "util/rng.hpp"

namespace impact::dram {
namespace {

DramConfig make_config(std::uint32_t ranks, std::uint32_t banks_per_rank,
                       std::uint32_t rows, std::uint32_t row_bytes) {
  DramConfig c;
  c.ranks = ranks;
  c.banks_per_rank = banks_per_rank;
  c.rows_per_bank = rows;
  c.row_bytes = row_bytes;
  c.subarray_rows = rows >= 512 ? 512 : rows;
  return c;
}

using MappingParam = std::tuple<MappingScheme, std::uint32_t, std::uint32_t>;

class MappingProperty : public ::testing::TestWithParam<MappingParam> {};

TEST_P(MappingProperty, DecodeEncodeRoundTripsRandomAddresses) {
  const auto [scheme, ranks, banks] = GetParam();
  const auto config = make_config(ranks, banks, 1024, 8192);
  AddressMapping mapping(config, scheme);
  util::Xoshiro256 rng(99);
  for (int i = 0; i < 5000; ++i) {
    const PhysAddr addr = rng.below(mapping.capacity());
    const auto loc = mapping.decode(addr);
    EXPECT_LT(loc.bank, mapping.banks());
    EXPECT_LT(loc.row, mapping.rows());
    EXPECT_LT(loc.col, mapping.row_bytes());
    EXPECT_EQ(mapping.encode(loc), addr);
  }
}

TEST_P(MappingProperty, EncodeDecodeRoundTripsRandomCoordinates) {
  const auto [scheme, ranks, banks] = GetParam();
  const auto config = make_config(ranks, banks, 1024, 8192);
  AddressMapping mapping(config, scheme);
  util::Xoshiro256 rng(100);
  for (int i = 0; i < 5000; ++i) {
    DramAddress loc;
    loc.bank = static_cast<BankId>(rng.below(mapping.banks()));
    loc.row = static_cast<RowId>(rng.below(mapping.rows()));
    loc.col = static_cast<ColOffset>(rng.below(mapping.row_bytes()));
    const PhysAddr addr = mapping.encode(loc);
    EXPECT_LT(addr, mapping.capacity());
    EXPECT_EQ(mapping.decode(addr), loc);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndGeometries, MappingProperty,
    ::testing::Combine(
        ::testing::Values(MappingScheme::kBankInterleaved,
                          MappingScheme::kRowBankCol,
                          MappingScheme::kXorBankHash),
        ::testing::Values(1u, 4u),
        ::testing::Values(8u, 16u)),
    [](const ::testing::TestParamInfo<MappingParam>& info) {
      std::string name = to_string(std::get<0>(info.param));
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_r" + std::to_string(std::get<1>(info.param)) + "_b" +
             std::to_string(std::get<2>(info.param));
    });

TEST(Mapping, BankInterleavedStripesRowChunksAcrossBanks) {
  const auto config = make_config(1, 16, 1024, 8192);
  AddressMapping mapping(config, MappingScheme::kBankInterleaved);
  for (std::uint32_t k = 0; k < 32; ++k) {
    const auto loc = mapping.decode(static_cast<PhysAddr>(k) * 8192);
    EXPECT_EQ(loc.bank, k % 16);
    EXPECT_EQ(loc.row, k / 16);
    EXPECT_EQ(loc.col, 0u);
  }
}

TEST(Mapping, RowBankColKeepsBankContiguous) {
  const auto config = make_config(1, 16, 1024, 8192);
  AddressMapping mapping(config, MappingScheme::kRowBankCol);
  // The first bank_bytes addresses all land in bank 0.
  const auto lo = mapping.decode(0);
  const auto hi = mapping.decode(config.bank_bytes() - 1);
  EXPECT_EQ(lo.bank, 0u);
  EXPECT_EQ(hi.bank, 0u);
  EXPECT_EQ(mapping.decode(config.bank_bytes()).bank, 1u);
}

TEST(Mapping, XorHashSpreadsCongruentLinesOverBanks) {
  // The property DRAMA-eviction relies on: lines congruent modulo a large
  // power of two do NOT alias into one bank.
  const auto config = make_config(4, 16, 65536, 8192);
  AddressMapping mapping(config, MappingScheme::kXorBankHash);
  const PhysAddr base = 12345 * 64;
  std::set<BankId> coarse;
  std::set<BankId> fine;
  for (std::uint64_t k = 0; k < 16; ++k) {
    coarse.insert(mapping.decode(base + k * (8ull << 20)).bank);
    fine.insert(mapping.decode(base + k * (512ull << 10)).bank);
  }
  EXPECT_GE(coarse.size(), 4u);   // Row += 16 per 8 MiB stride.
  EXPECT_EQ(fine.size(), 16u);    // Row += 1 per 512 KiB stride.
  // Under pure bank interleaving both strides alias into one bank.
  AddressMapping plain(config, MappingScheme::kBankInterleaved);
  std::set<BankId> aliased;
  for (std::uint64_t k = 0; k < 16; ++k) {
    aliased.insert(plain.decode(base + k * (512ull << 10)).bank);
  }
  EXPECT_EQ(aliased.size(), 1u);
}

TEST(Mapping, RowBaseIsColumnZero) {
  const auto config = make_config(4, 16, 1024, 8192);
  AddressMapping mapping(config, MappingScheme::kBankInterleaved);
  const auto loc = mapping.decode(mapping.row_base(7, 13));
  EXPECT_EQ(loc.bank, 7u);
  EXPECT_EQ(loc.row, 13u);
  EXPECT_EQ(loc.col, 0u);
}

TEST(Mapping, RejectsOutOfRange) {
  const auto config = make_config(1, 8, 64, 8192);
  AddressMapping mapping(config, MappingScheme::kBankInterleaved);
  EXPECT_THROW((void)mapping.decode(mapping.capacity()),
               std::invalid_argument);
  EXPECT_THROW((void)mapping.encode(DramAddress{8, 0, 0}),
               std::invalid_argument);
  EXPECT_THROW((void)mapping.encode(DramAddress{0, 64, 0}),
               std::invalid_argument);
  EXPECT_THROW((void)mapping.encode(DramAddress{0, 0, 8192}),
               std::invalid_argument);
}

TEST(DramConfigTest, ValidationRejectsBadGeometry) {
  DramConfig c;
  c.subarray_rows = 500;  // Does not divide rows_per_bank.
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = DramConfig{};
  c.row_bytes = 1000;  // Not a power of two.
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = DramConfig{};
  EXPECT_NO_THROW(c.validate());
  EXPECT_EQ(c.total_banks(), 64u);
  EXPECT_EQ(c.capacity_bytes(),
            64ull * c.rows_per_bank * c.row_bytes);
}

}  // namespace
}  // namespace impact::dram
