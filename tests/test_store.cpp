// Tests of the content-addressed experiment cache (src/store/): fingerprint
// canonicalization (order-insensitivity, type tags, schema salt, the golden
// pin), byte-stable record serialization, ResultCache backends (memory,
// disk, corruption handling), WorkloadStore interning, and the CellRunner
// warm-path contract — warm grids bit-identical to cold, serial and
// parallel, with the verify mode aborting on a lying cache.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <span>
#include <string>
#include <vector>

#include "obs/scope.hpp"
#include "store/cell_runner.hpp"
#include "util/histogram.hpp"

namespace impact {
namespace {

graph::MultiprogConfig tiny_config() {
  graph::MultiprogConfig config;
  config.rmat_scale = 10;
  config.edge_count = 8192;
  config.system.cache_scale = 2048;
  return config;
}

/// A fully-populated record: payload plus every snapshot section.
store::Record sample_record() {
  store::Record rec;
  rec.fp = {0x0123456789abcdefull, 0xfedcba9876543210ull};
  rec.label = "cell with spaces\nand a newline";
  graph::RunStats stats;
  stats.cycles = 123456789;
  stats.instructions = 42;
  stats.accesses = 7;
  stats.llc_misses = 3;
  stats.row_hit_rate = 0.61803398874989484820;
  rec.payload = store::encode(stats);
  rec.snapshot.counters["graph.replay.accesses"] = 1234;
  rec.snapshot.counters["graph.replay.instructions"] = 5678;
  rec.snapshot.gauges["graph.row_hit_rate"] = -0.25;
  util::Histogram h(0.0, 64.0, 4);
  h.add(1.0);
  h.add(65.0);  // Overflow bucket.
  h.add(-1.0);  // Underflow bucket.
  rec.snapshot.dists.emplace("dram.latency", h);
  return rec;
}

// --- Fingerprints -------------------------------------------------------

TEST(Fingerprint, HexRoundTrip) {
  const store::Fingerprint fp{0x0123456789abcdefull, 0xfedcba9876543210ull};
  const std::string hex = fp.hex();
  EXPECT_EQ(hex.size(), 32u);
  EXPECT_EQ(hex, "0123456789abcdeffedcba9876543210");
  store::Fingerprint back;
  ASSERT_TRUE(store::Fingerprint::from_hex(hex, &back));
  EXPECT_EQ(back, fp);
}

TEST(Fingerprint, FromHexRejectsMalformedInput) {
  store::Fingerprint out{1, 2};
  EXPECT_FALSE(store::Fingerprint::from_hex("", &out));
  EXPECT_FALSE(store::Fingerprint::from_hex("0123", &out));
  EXPECT_FALSE(
      store::Fingerprint::from_hex("0123456789abcdeffedcba987654321G", &out));
  EXPECT_FALSE(store::Fingerprint::from_hex(
      "0123456789abcdeffedcba9876543210ff", &out));
  // Untouched on failure.
  EXPECT_EQ(out.hi, 1u);
  EXPECT_EQ(out.lo, 2u);
}

TEST(Canon, FieldOrderDoesNotChangeFingerprint) {
  store::Canon a;
  a.field("seed", std::uint64_t{99});
  a.field("scale", std::uint32_t{15});
  a.field("policy", "open_row");
  store::Canon b;
  b.field("policy", "open_row");
  b.field("scale", std::uint32_t{15});
  b.field("seed", std::uint64_t{99});
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(Canon, TypeTagsKeepEqualTextDistinct) {
  store::Canon as_uint;
  as_uint.field("x", std::uint64_t{1});
  store::Canon as_string;
  as_string.field("x", "1");
  store::Canon as_double;
  as_double.field("x", 1.0);
  store::Canon as_bool;
  as_bool.field("x", true);
  EXPECT_NE(as_uint.fingerprint(), as_string.fingerprint());
  EXPECT_NE(as_uint.fingerprint(), as_double.fingerprint());
  EXPECT_NE(as_uint.fingerprint(), as_bool.fingerprint());
  EXPECT_NE(as_string.fingerprint(), as_double.fingerprint());
}

TEST(Canon, DuplicateFieldNameThrows) {
  store::Canon c;
  c.field("seed", std::uint64_t{1});
  c.field("seed", std::uint64_t{2});  // Detected at fingerprint time.
  EXPECT_THROW((void)c.fingerprint(), std::invalid_argument);
}

TEST(Canon, SchemaSaltBumpInvalidatesEveryFingerprint) {
  store::Canon current(store::kSchemaVersion);
  current.field("seed", std::uint64_t{99});
  store::Canon bumped(store::kSchemaVersion + 1);
  bumped.field("seed", std::uint64_t{99});
  EXPECT_NE(current.fingerprint(), bumped.fingerprint());
}

// Golden pin: this exact fingerprint must only ever change together with a
// kSchemaVersion bump. If this test fails and you did not bump the schema,
// you changed canonicalization (or a config default) in a way that silently
// re-addresses every cached record — bump store::kSchemaVersion.
TEST(Canon, GoldenFingerprintPinsCanonicalization) {
  ASSERT_EQ(store::kSchemaVersion, 1u);
  const auto fp = store::matrix_cell_fingerprint(
      graph::MultiprogConfig{}, graph::WorkloadKind::kBFS,
      dram::RowPolicy::kOpenRow);
  if (obs::kCompiled) {
    EXPECT_EQ(fp.hex(), "b1e2ac3b4c39e9041b49caa9e2d493c1");
  } else {
    EXPECT_EQ(fp.hex(), "a7101959bef692fca84e969c6c33143d");
  }
}

TEST(CanonOf, EveryInputChangeChangesTheFingerprint) {
  const graph::MultiprogConfig base = tiny_config();
  const auto fp = [](const graph::MultiprogConfig& c) {
    return store::matrix_cell_fingerprint(c, graph::WorkloadKind::kBFS,
                                          dram::RowPolicy::kOpenRow);
  };
  const store::Fingerprint reference = fp(base);

  graph::MultiprogConfig seed = base;
  seed.graph_seed = 100;
  EXPECT_NE(fp(seed), reference);

  graph::MultiprogConfig scale = base;
  scale.rmat_scale = 11;
  EXPECT_NE(fp(scale), reference);

  graph::MultiprogConfig edges = base;
  edges.edge_count = 8193;
  EXPECT_NE(fp(edges), reference);

  graph::MultiprogConfig system = base;
  system.system.cache_scale = 4096;
  EXPECT_NE(fp(system), reference);

  graph::MultiprogConfig timing = base;
  timing.system.dram.timing.trp_ns += 1.0;
  EXPECT_NE(fp(timing), reference);

  // Workload and policy.
  EXPECT_NE(store::matrix_cell_fingerprint(base, graph::WorkloadKind::kPR,
                                           dram::RowPolicy::kOpenRow),
            reference);
  EXPECT_NE(store::matrix_cell_fingerprint(base, graph::WorkloadKind::kBFS,
                                           dram::RowPolicy::kClosedRow),
            reference);
}

TEST(CanonOf, FaultProfilesAreOrderSensitiveAndValueSensitive) {
  const std::vector<fault::FaultConfig> faults = {
      {fault::FaultKind::kDramJitter, 0.01, 400, 0, ~0ull},
      {fault::FaultKind::kSemaphoreDrop, 0.05, 0, 0, ~0ull},
  };
  const auto fp_of = [](const std::vector<fault::FaultConfig>& f) {
    store::Canon c;
    c.object("faults",
             store::canon_of(std::span<const fault::FaultConfig>(f)));
    return c.fingerprint();
  };
  const auto reference = fp_of(faults);

  auto tweaked = faults;
  tweaked[0].probability = 0.02;
  EXPECT_NE(fp_of(tweaked), reference);

  tweaked = faults;
  tweaked[1].window_end = 1000;
  EXPECT_NE(fp_of(tweaked), reference);

  // The injector consults configs in list order, so order is semantic.
  const std::vector<fault::FaultConfig> swapped = {faults[1], faults[0]};
  EXPECT_NE(fp_of(swapped), reference);

  const std::vector<fault::FaultConfig> shorter = {faults[0]};
  EXPECT_NE(fp_of(shorter), reference);
}

// --- Records ------------------------------------------------------------

TEST(Record, SerializeParseSerializeIsByteStable) {
  const store::Record rec = sample_record();
  const std::string bytes = store::serialize(rec);
  const auto parsed = store::parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->fp, rec.fp);
  EXPECT_EQ(parsed->label, rec.label);
  EXPECT_EQ(parsed->payload, rec.payload);
  EXPECT_EQ(parsed->snapshot.counters, rec.snapshot.counters);
  EXPECT_EQ(parsed->snapshot.gauges, rec.snapshot.gauges);
  // Byte stability: re-serializing the parsed record reproduces the exact
  // bytes — the property the verify mode's one-line comparison rests on.
  EXPECT_EQ(store::serialize(*parsed), bytes);
}

TEST(Record, ParseRejectsCorruption) {
  const std::string bytes = store::serialize(sample_record());
  EXPECT_FALSE(store::parse("").has_value());
  EXPECT_FALSE(store::parse("not a record").has_value());
  // Truncations at every section boundary-ish prefix.
  for (const std::size_t keep :
       {bytes.size() - 1, bytes.size() / 2, std::size_t{10}}) {
    EXPECT_FALSE(store::parse(bytes.substr(0, keep)).has_value())
        << "prefix of " << keep << " bytes";
  }
  // Trailing garbage is rejected too: records are exact, not prefixed.
  EXPECT_FALSE(store::parse(bytes + "x").has_value());
  // A flipped fingerprint digit parses (it is still well-formed); the
  // cache layer catches the fp mismatch instead — see
  // ResultCache.CorruptDiskRecordDegradesToMiss.
}

TEST(Record, RunStatsCodecRoundTripsBitwise) {
  graph::RunStats stats;
  stats.cycles = ~0ull;
  stats.instructions = 1;
  stats.accesses = 0;
  stats.llc_misses = 987654321;
  stats.row_hit_rate = 0.1 + 0.2;  // A value with an inexact decimal form.
  const auto back = store::decode_run_stats(store::encode(stats));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, stats);  // operator== is bitwise on row_hit_rate.
  EXPECT_FALSE(store::decode_run_stats("garbage").has_value());
}

TEST(Record, RowCodecRoundTripsArbitraryCells) {
  const std::vector<std::string> row = {
      "", "plain", "with spaces", "12:34", std::string("nul\0byte", 8),
      "newline\nand\ttab"};
  const auto back = store::decode_row(store::encode_row(row));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, row);
  EXPECT_FALSE(store::decode_row("5:short").has_value());
}

// --- ResultCache --------------------------------------------------------

TEST(ResultCache, MemoryHitMissAndStats) {
  store::ResultCache cache;
  const store::Record rec = sample_record();
  EXPECT_FALSE(cache.lookup(rec.fp).has_value());
  EXPECT_FALSE(cache.contains(rec.fp));
  cache.store(rec);
  EXPECT_TRUE(cache.contains(rec.fp));
  std::string raw;
  const auto hit = cache.lookup(rec.fp, &raw);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->payload, rec.payload);
  EXPECT_EQ(raw, store::serialize(rec));
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.stored, 1u);
  EXPECT_EQ(stats.disk_hits, 0u);
}

TEST(ResultCache, DisabledCacheNeverHitsNorStores) {
  store::ResultCache::Options options;
  options.enabled = false;
  store::ResultCache cache(options);
  const store::Record rec = sample_record();
  cache.store(rec);
  EXPECT_FALSE(cache.lookup(rec.fp).has_value());
  EXPECT_FALSE(cache.contains(rec.fp));
  EXPECT_EQ(cache.stats().stored, 0u);
}

class ScratchDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("impact_store_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(ScratchDir, DiskBackendSurvivesAcrossCacheInstances) {
  const store::Record rec = sample_record();
  store::ResultCache::Options options;
  options.disk_dir = dir_.string();
  {
    store::ResultCache writer(options);
    writer.store(rec);
  }
  store::ResultCache reader(options);
  EXPECT_TRUE(reader.contains(rec.fp));
  const auto hit = reader.lookup(rec.fp);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(store::serialize(*hit), store::serialize(rec));
  const auto stats = reader.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.disk_hits, 1u);
  // The on-disk file is the canonical bytes, named by the fingerprint.
  std::ifstream in(dir_ / (rec.fp.hex() + ".rec"), std::ios::binary);
  const std::string on_disk((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
  EXPECT_EQ(on_disk, store::serialize(rec));
}

TEST_F(ScratchDir, CorruptDiskRecordDegradesToMiss) {
  const store::Record rec = sample_record();
  store::ResultCache::Options options;
  options.disk_dir = dir_.string();
  store::ResultCache cache(options);

  // Garbage under the right name: parse fails -> rejected, not a crash.
  {
    std::ofstream out(dir_ / (rec.fp.hex() + ".rec"), std::ios::binary);
    out << "garbage bytes";
  }
  EXPECT_FALSE(cache.lookup(rec.fp).has_value());

  // A well-formed record filed under the WRONG fingerprint: the embedded
  // fp disagrees with the name, so the cache must reject it too.
  const store::Fingerprint other{1, 2};
  {
    std::ofstream out(dir_ / (other.hex() + ".rec"), std::ios::binary);
    out << store::serialize(rec);
  }
  EXPECT_FALSE(cache.lookup(other).has_value());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.rejected, 2u);
  EXPECT_EQ(stats.hits, 0u);
}

// --- WorkloadStore ------------------------------------------------------

TEST(WorkloadStore, InternsByInputFingerprint) {
  const graph::MultiprogConfig config = tiny_config();
  store::WorkloadStore workloads;
  const auto* a = workloads.get(config, graph::WorkloadKind::kBFS);
  const auto* b = workloads.get(config, graph::WorkloadKind::kBFS);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a, b) << "same input fingerprint must share one build";
  EXPECT_EQ(workloads.size(), 1u);

  // A system-config change does NOT reach graph::build_input, so it must
  // not re-build the interned input either.
  graph::MultiprogConfig system_only = config;
  system_only.system.cache_scale = 4096;
  EXPECT_EQ(workloads.get(system_only, graph::WorkloadKind::kBFS), a);
  EXPECT_EQ(workloads.size(), 1u);

  // Seed and kind changes do.
  graph::MultiprogConfig reseeded = config;
  reseeded.graph_seed = 1234;
  EXPECT_NE(workloads.get(reseeded, graph::WorkloadKind::kBFS), a);
  EXPECT_NE(workloads.get(config, graph::WorkloadKind::kPR), a);
  EXPECT_EQ(workloads.size(), 3u);
}

// --- CellRunner ---------------------------------------------------------

constexpr dram::RowPolicy kTwoPolicies[] = {dram::RowPolicy::kOpenRow,
                                            dram::RowPolicy::kClosedRow};
constexpr graph::WorkloadKind kTwoKinds[] = {graph::WorkloadKind::kBFS,
                                             graph::WorkloadKind::kPR};

TEST(CellRunner, WarmDefenseMatrixIsBitIdenticalSerialAndParallel) {
  const graph::MultiprogConfig config = tiny_config();
  store::ResultCache cache;
  store::WorkloadStore workloads;

  store::CellRunner cold_runner(cache, workloads, nullptr);
  const auto cold = cold_runner.defense_matrix(config, kTwoKinds, kTwoPolicies);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold.report.cache_hits, 0u);
  EXPECT_EQ(cold.report.cache_stored, 4u);

  const auto expect_identical = [&](const store::CellRunner::MatrixResult& r,
                                    const char* what) {
    ASSERT_TRUE(r.ok()) << what;
    // 4 policy cells + 2 build tasks, all probe-satisfied when fully warm.
    EXPECT_EQ(r.report.cache_hits, r.report.tasks) << what;
    EXPECT_EQ(r.report.cache_stored, 0u) << what;
    for (std::size_t w = 0; w < std::size(kTwoKinds); ++w) {
      for (std::size_t p = 0; p < std::size(kTwoPolicies); ++p) {
        EXPECT_TRUE(r.cells[w][p].cached) << what;
        EXPECT_EQ(r.cells[w][p].stats, cold.cells[w][p].stats) << what;
        EXPECT_EQ(r.cells[w][p].snapshot.counters,
                  cold.cells[w][p].snapshot.counters)
            << what;
      }
    }
  };

  store::CellRunner warm_serial(cache, workloads, nullptr);
  expect_identical(warm_serial.defense_matrix(config, kTwoKinds, kTwoPolicies),
                   "warm serial");
  exec::ThreadPool pool(4);
  store::CellRunner warm_pool(cache, workloads, &pool);
  expect_identical(warm_pool.defense_matrix(config, kTwoKinds, kTwoPolicies),
                   "warm pool(4)");
  // A fully warm grid builds no inputs beyond the cold run's two.
  EXPECT_EQ(workloads.size(), 2u);
}

TEST(CellRunner, RowsReplayFromCacheWithoutRunningCells) {
  store::ResultCache cache;
  store::WorkloadStore workloads;
  std::atomic<int> runs{0};
  const auto fingerprint_of = [](std::size_t i) {
    store::Canon c;
    c.field("cell", "test.rows");
    c.field("i", static_cast<std::uint64_t>(i));
    return c.fingerprint();
  };
  const auto run = [&runs](std::size_t i) {
    ++runs;
    return std::vector<std::string>{"row", std::to_string(i * i)};
  };

  store::CellRunner cold_runner(cache, workloads, nullptr);
  const auto cold = cold_runner.rows("test.rows", 3, fingerprint_of, run);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(runs.load(), 3);
  ASSERT_EQ(cold.rows.size(), 3u);
  EXPECT_EQ(cold.rows[2], (std::vector<std::string>{"row", "4"}));

  store::CellRunner warm_runner(cache, workloads, nullptr);
  const auto warm = warm_runner.rows("test.rows", 3, fingerprint_of, run);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(runs.load(), 3) << "warm cells must not run";
  EXPECT_EQ(warm.rows, cold.rows);
  EXPECT_EQ(warm.report.cache_hits, 3u);
}

TEST(CellRunnerDeathTest, VerifyModeAbortsOnCacheDivergence) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  store::ResultCache::Options options;
  options.verify = true;
  store::ResultCache cache(options);
  store::WorkloadStore workloads;

  // Poison the cache: a well-formed record under cell 0's fingerprint
  // whose payload re-simulation cannot reproduce.
  const auto fingerprint_of = [](std::size_t) {
    store::Canon c;
    c.field("cell", "test.verify");
    return c.fingerprint();
  };
  store::Record lie;
  lie.fp = fingerprint_of(0);
  lie.label = "test.verify[0]";
  lie.payload = store::encode_row({"not", "what", "run", "returns"});
  cache.store(lie);

  store::CellRunner runner(cache, workloads, nullptr);
  EXPECT_DEATH(
      {
        (void)runner.rows("test.verify", 1, fingerprint_of, [](std::size_t) {
          return std::vector<std::string>{"fresh"};
        });
      },
      "cache divergence");
}

TEST(CellRunner, VerifyModePassesWhenCacheIsHonest) {
  store::ResultCache::Options options;
  options.verify = true;
  store::ResultCache cache(options);
  store::WorkloadStore workloads;
  const auto fingerprint_of = [](std::size_t i) {
    store::Canon c;
    c.field("cell", "test.verify_ok");
    c.field("i", static_cast<std::uint64_t>(i));
    return c.fingerprint();
  };
  const auto run = [](std::size_t i) {
    return std::vector<std::string>{std::to_string(i)};
  };
  store::CellRunner runner(cache, workloads, nullptr);
  const auto cold = runner.rows("v", 2, fingerprint_of, run);
  ASSERT_TRUE(cold.ok());
  // Second pass re-simulates (verify reports misses) and audits the bytes;
  // an honest cache survives.
  const auto audit = runner.rows("v", 2, fingerprint_of, run);
  ASSERT_TRUE(audit.ok());
  EXPECT_EQ(audit.report.cache_hits, 0u);
  EXPECT_EQ(audit.rows, cold.rows);
}

}  // namespace
}  // namespace impact
