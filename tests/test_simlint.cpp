// simlint over the fixture tree (tests/lint_fixtures/): one seeded
// violation per rule family, each pinned to an exact rule ID and line,
// plus clean counterparts, suppression honoring, rule filtering, and the
// baseline round-trip. LINT_FIXTURES_DIR comes from tests/CMakeLists.txt.
#include "simlint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

namespace {

using simlint::Finding;

std::filesystem::path fixtures_root() {
  return std::filesystem::path(LINT_FIXTURES_DIR) / "src";
}

/// One shared scan: the fixture tree is immutable during the run.
const std::vector<Finding>& findings() {
  static const std::vector<Finding> kFindings = [] {
    simlint::Options options;
    options.roots = {fixtures_root()};
    return simlint::analyze(options);
  }();
  return kFindings;
}

bool has(const std::string& rule, const std::string& file, int line) {
  return std::any_of(findings().begin(), findings().end(),
                     [&](const Finding& f) {
                       return f.rule == rule && f.file == file &&
                              f.line == line;
                     });
}

std::vector<Finding> in_file(const std::string& file) {
  std::vector<Finding> out;
  for (const auto& f : findings()) {
    if (f.file == file) out.push_back(f);
  }
  return out;
}

TEST(SimlintLayering, RejectsSyntheticBackEdge) {
  // The acceptance criterion: a dram -> channel include (rank 2 -> 5) is
  // provably rejected, at the include line.
  EXPECT_TRUE(has(simlint::kRuleLayering, "dram/backedge.hpp", 5));
}

TEST(SimlintLayering, FlagsUnknownLayer) {
  EXPECT_TRUE(has(simlint::kRuleLayering, "mystery/rogue.hpp", 5));
}

TEST(SimlintLayering, DownwardEdgeIsClean) {
  // channel -> util is a downward edge; the header must be finding-free.
  EXPECT_TRUE(in_file("channel/wire.hpp").empty());
}

TEST(SimlintLayering, DetectsIncludeCycle) {
  // The DFS reports the cycle once, at the back-edge include site.
  EXPECT_TRUE(has(simlint::kRuleIncludeCycle, "util/cycle_b.hpp", 4));
  EXPECT_FALSE(has(simlint::kRuleIncludeCycle, "util/cycle_a.hpp", 4));
}

TEST(SimlintDeterminism, EachNondetRuleFiresAtItsSeededLine) {
  const std::string f = "dram/nondet.cpp";
  EXPECT_TRUE(has(simlint::kRuleNondetRandomDevice, f, 13));
  EXPECT_TRUE(has(simlint::kRuleNondetRand, f, 18));
  EXPECT_TRUE(has(simlint::kRuleNondetWallclock, f, 22));
  EXPECT_TRUE(has(simlint::kRuleNondetChronoClock, f, 26));
  EXPECT_TRUE(has(simlint::kRuleNondetSeed, f, 32));
  EXPECT_EQ(in_file(f).size(), 5u);  // Exactly one finding per family.
}

TEST(SimlintDeterminism, DerivedAndParameterSeedsAreClean) {
  // derive_seed(...), a seed parameter, and a member-declaration type use
  // are all acceptable provenance.
  EXPECT_TRUE(in_file("dram/det_ok.cpp").empty());
}

TEST(SimlintConcurrency, FlagsMutableGlobalAndStaticMember) {
  EXPECT_TRUE(has(simlint::kRuleGlobalState, "pim/globals.cpp", 8));
  EXPECT_TRUE(has(simlint::kRuleGlobalState, "pim/globals.cpp", 11));
  // per_instance (instance member) and kLanes (constexpr) stay clean.
  std::size_t global_state = 0;
  for (const auto& f : in_file("pim/globals.cpp")) {
    if (f.rule == simlint::kRuleGlobalState) ++global_state;
  }
  EXPECT_EQ(global_state, 2u);
}

TEST(SimlintConcurrency, ThreadLocalAllowedOnlyInObs) {
  EXPECT_TRUE(has(simlint::kRuleThreadLocal, "pim/globals.cpp", 16));
  EXPECT_TRUE(in_file("obs/tls_ok.cpp").empty());
}

TEST(SimlintConcurrency, UnboundedWaitFlaggedAtBareWaitAndJoin) {
  const std::string f = "exec/waits.cpp";
  EXPECT_TRUE(has(simlint::kRuleUnboundedWait, f, 13));
  EXPECT_TRUE(has(simlint::kRuleUnboundedWait, f, 14));
  // wait_for is a different identifier and the SIMLINT-ALLOW'd join is
  // suppressed: exactly the two seeded findings remain.
  EXPECT_EQ(in_file(f).size(), 2u);
}

TEST(SimlintConcurrency, ThreadPoolWorkerLoopIsAllowlisted) {
  // The pool's own worker loop is the one sanctioned indefinite block.
  EXPECT_TRUE(in_file("exec/thread_pool.cpp").empty());
}

TEST(SimlintSeams, UnguardedObserverDerefFlagged) {
  EXPECT_TRUE(has(simlint::kRuleSeamUnguarded, "dram/seam.cpp", 15));
  // The two guarded forms (explicit nullptr compare, early-return on
  // !observer_) produce nothing else in the file.
  EXPECT_EQ(in_file("dram/seam.cpp").size(), 1u);
}

TEST(SimlintHotPath, RulesFireOnlyInsideMarkedRegion) {
  const std::string f = "dram/hot.cpp";
  EXPECT_TRUE(has(simlint::kRuleHotString, f, 14));
  EXPECT_TRUE(has(simlint::kRuleHotEndl, f, 15));
  EXPECT_TRUE(has(simlint::kRuleHotResolve, f, 16));
  // cold_access repeats the same constructs after SIMLINT-HOT-END.
  EXPECT_EQ(in_file(f).size(), 3u);
}

TEST(SimlintSuppression, AllowOnLineOrLineAboveAndWildcard) {
  // Same-line, line-above, and '*' forms all silence their findings.
  EXPECT_TRUE(in_file("dram/suppressed.cpp").empty());
  EXPECT_TRUE(in_file("dram/allowed_backedge.hpp").empty());
}

TEST(SimlintSuppression, WrongRuleNameDoesNotSuppress) {
  EXPECT_TRUE(has(simlint::kRuleLayering, "dram/wrong_allow.hpp", 6));
}

std::filesystem::path drivers_root() {
  return std::filesystem::path(LINT_FIXTURES_DIR) / "drivers";
}

/// Separate scan of the layerless driver-fixture tree (mirrors bench/,
/// examples/, apps/: files directly under the root).
const std::vector<Finding>& driver_findings() {
  static const std::vector<Finding> kFindings = [] {
    simlint::Options options;
    options.roots = {drivers_root()};
    return simlint::analyze(options);
  }();
  return kFindings;
}

TEST(SimlintDriverInclude, NonLabIncludesFlaggedInLayerlessTUs) {
  bool attacks_line = false;
  bool util_line = false;
  for (const auto& f : driver_findings()) {
    if (f.rule != simlint::kRuleDriverInclude) continue;
    EXPECT_EQ(f.file, "fat_driver.cpp");
    if (f.line == 3) attacks_line = true;
    if (f.line == 4) util_line = true;
  }
  EXPECT_TRUE(attacks_line);
  EXPECT_TRUE(util_line);
}

TEST(SimlintDriverInclude, LabOnlyShimIsCleanAndAllowSuppresses) {
  std::size_t fat = 0;
  for (const auto& f : driver_findings()) {
    EXPECT_NE(f.file, "shim_ok.cpp") << f.rule;
    if (f.file == "fat_driver.cpp" &&
        f.rule == simlint::kRuleDriverInclude) {
      ++fat;
      EXPECT_NE(f.line, 6);  // SIMLINT-ALLOW on the line above.
    }
  }
  EXPECT_EQ(fat, 2u);  // Exactly the two seeded violations.
}

TEST(SimlintDriverInclude, LayeredFilesAreExempt) {
  // The rule keys on layerless files; the layered src fixture tree must
  // produce no driver-include findings at all.
  for (const auto& f : findings()) {
    EXPECT_NE(f.rule, simlint::kRuleDriverInclude) << f.file;
  }
}

TEST(SimlintOptions, RulePrefixFilterSelectsFamilies) {
  simlint::Options options;
  options.roots = {fixtures_root()};
  options.rules = {"nondet-*"};
  const auto filtered = simlint::analyze(options);
  ASSERT_FALSE(filtered.empty());
  for (const auto& f : filtered) {
    EXPECT_EQ(f.rule.rfind("nondet-", 0), 0u) << f.rule;
  }
  // All five determinism findings survive the filter.
  EXPECT_EQ(filtered.size(), 5u);
}

TEST(SimlintBaseline, RoundTripSwallowsEveryFinding) {
  const auto path = std::filesystem::path(::testing::TempDir()) /
                    "simlint_fixture_baseline.txt";
  simlint::write_baseline(path, findings());
  const auto baseline = simlint::load_baseline(path);
  EXPECT_EQ(baseline.size(), findings().size());  // IDs are distinct.
  const auto residual = simlint::filter_baseline(findings(), baseline);
  EXPECT_TRUE(residual.empty());
  std::remove(path.string().c_str());
}

TEST(SimlintBaseline, MissingFileIsEmptyAndFiltersNothing) {
  const auto baseline = simlint::load_baseline(
      std::filesystem::path(LINT_FIXTURES_DIR) / "does_not_exist.txt");
  EXPECT_TRUE(baseline.empty());
  EXPECT_EQ(simlint::filter_baseline(findings(), baseline).size(),
            findings().size());
}

TEST(SimlintFindings, IdsAreStableAcrossRescans) {
  // A second scan of the identical tree reproduces the identical IDs —
  // the property the committed baseline relies on.
  simlint::Options options;
  options.roots = {fixtures_root()};
  const auto again = simlint::analyze(options);
  ASSERT_EQ(again.size(), findings().size());
  for (std::size_t i = 0; i < again.size(); ++i) {
    EXPECT_EQ(again[i].id, findings()[i].id);
    EXPECT_NE(again[i].id, 0u);
  }
}

TEST(SimlintFindings, JsonListsEveryFindingWithStableKeys) {
  const std::string json = simlint::to_json(findings());
  for (const auto& f : findings()) {
    EXPECT_NE(json.find("\"" + f.rule + "\""), std::string::npos);
    EXPECT_NE(json.find(f.file), std::string::npos);
  }
  EXPECT_NE(json.find("\"id\""), std::string::npos);
  EXPECT_NE(json.find("\"line\""), std::string::npos);
  EXPECT_NE(json.find("\"message\""), std::string::npos);
}

}  // namespace
