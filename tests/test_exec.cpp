// Tests of the parallel experiment engine (src/exec/): thread-pool
// behaviour (exception propagation, degenerate batches), seed derivation,
// sweep dependency ordering, and — most importantly — the determinism
// contract: parallel sweeps must be byte-identical to serial ones for any
// pool size. Run under IMPACT_SANITIZE=thread by tools/check.sh.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <iterator>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "exec/sweep.hpp"
#include "exec/thread_pool.hpp"
#include "graph/multiprog.hpp"
#include "obs/scope.hpp"

namespace impact {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  exec::ThreadPool pool(2);
  EXPECT_EQ(pool.size(), 2u);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 32);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  exec::ThreadPool pool(2);
  auto f = pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ForEachIndexCoversEveryIndexOnce) {
  exec::ThreadPool pool(4);
  constexpr std::size_t kN = 100;
  std::vector<std::atomic<int>> hits(kN);
  pool.for_each_index(kN, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ForEachIndexPropagatesFirstException) {
  exec::ThreadPool pool(2);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.for_each_index(16,
                          [&](std::size_t i) {
                            if (i == 5) throw std::invalid_argument("boom");
                            ++completed;
                          }),
      std::invalid_argument);
  // Batch members are independent: the other 15 indices still ran.
  EXPECT_EQ(completed.load(), 15);
}

TEST(ThreadPool, EmptyBatchIsANoOp) {
  exec::ThreadPool pool(2);
  pool.for_each_index(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, OversizedBatchDoesNotDeadlock) {
  // Far more tasks than workers: everything must drain.
  exec::ThreadPool pool(2);
  constexpr std::size_t kN = 2000;
  std::atomic<std::size_t> done{0};
  pool.for_each_index(kN, [&](std::size_t) { ++done; });
  EXPECT_EQ(done.load(), kN);
}

TEST(ThreadPool, SingleWorkerPoolStillCompletes) {
  exec::ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.for_each_index(10, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 10);
}

TEST(DeriveSeed, DeterministicAndDistinct) {
  EXPECT_EQ(exec::derive_seed(42, 0), exec::derive_seed(42, 0));
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    seeds.insert(exec::derive_seed(42, i));
  }
  EXPECT_EQ(seeds.size(), 1000u);  // No collisions across task indices.
  // Different base seeds give different streams.
  EXPECT_NE(exec::derive_seed(42, 7), exec::derive_seed(43, 7));
}

TEST(Sweep, SerialRunsInInsertionOrder) {
  exec::Sweep sweep(nullptr);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sweep.add("t" + std::to_string(i), [&order, i] { order.push_back(i); });
  }
  sweep.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Sweep, DependenciesRunBeforeDependents) {
  exec::ThreadPool pool(4);
  exec::Sweep sweep(&pool);
  std::atomic<bool> built{false};
  std::atomic<int> violations{0};
  const auto build = sweep.add("build", [&built] { built = true; });
  for (int i = 0; i < 8; ++i) {
    sweep.add("use" + std::to_string(i),
              [&built, &violations] {
                if (!built) ++violations;
              },
              {build});
  }
  sweep.run();
  EXPECT_EQ(violations.load(), 0);
}

TEST(Sweep, RejectsForwardDependencies) {
  exec::Sweep sweep(nullptr);
  const auto t0 = sweep.add("a", [] {});
  EXPECT_THROW(sweep.add("b", [] {}, {t0 + 1}), std::invalid_argument);
}

TEST(Sweep, ErrorSkipsDependentsAndRethrows) {
  exec::ThreadPool pool(2);
  exec::Sweep sweep(&pool);
  std::atomic<bool> dependent_ran{false};
  const auto bad =
      sweep.add("bad", [] { throw std::runtime_error("build failed"); });
  sweep.add("child", [&dependent_ran] { dependent_ran = true; }, {bad});
  EXPECT_THROW(sweep.run(), std::runtime_error);
  EXPECT_FALSE(dependent_ran.load());
}

TEST(SweepCache, ProbeHitSkipsFunctionAndCounts) {
  exec::Sweep sweep;
  bool ran = false;
  bool published = false;
  sweep.add_cached(
      "hit", [&] { ran = true; },
      {[] { return true; }, [&](const obs::Snapshot&) { published = true; }});
  sweep.add_cached(
      "miss", [] {}, {[] { return false; }, {}});
  const auto report = sweep.run_resilient();
  EXPECT_TRUE(report.ok());
  EXPECT_FALSE(ran) << "a probe hit must skip the cell function";
  EXPECT_FALSE(published) << "publish only runs after the function";
  EXPECT_EQ(report.completed, 2u) << "a hit still counts as completed";
  EXPECT_EQ(report.cache_hits, 1u);
  EXPECT_EQ(report.cache_misses, 1u);
  EXPECT_EQ(report.retries, 0u);
}

TEST(SweepCache, HookExceptionsNeverBreakTheSweep) {
  exec::Sweep sweep;
  int ran = 0;
  // A throwing probe degrades to a miss; a throwing publish is swallowed.
  sweep.add_cached(
      "bad-probe", [&] { ++ran; },
      {[]() -> bool { throw std::runtime_error("probe"); },
       [](const obs::Snapshot&) {}});
  sweep.add_cached(
      "bad-publish", [&] { ++ran; },
      {[] { return false; },
       [](const obs::Snapshot&) { throw std::runtime_error("publish"); }});
  const auto report = sweep.run_resilient();
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(report.cache_hits, 0u);
  EXPECT_EQ(report.cache_misses, 2u);
  EXPECT_EQ(report.cache_stored, 1u) << "only the surviving publish counts";
}

TEST(SweepCache, HitLeavesSnapshotSlotEmptyButValid) {
  for (unsigned threads : {0u, 2u}) {
    exec::ThreadPool pool(threads == 0 ? 1 : threads);
    exec::Sweep sweep(threads == 0 ? nullptr : &pool);
    sweep.set_capture(true);
    const auto hit = sweep.add_cached(
        "hit", [] { FAIL() << "must not run"; }, {[] { return true; }, {}});
    const auto miss = sweep.add_cached(
        "miss",
        [] {
          // Touch the obs spine so the miss cell's snapshot is non-empty
          // when telemetry is compiled in.
          if (auto c = obs::counter("exec_test.cache_cells")) c.add(1);
        },
        {[] { return false; }, {}});
    const auto report = sweep.run_resilient();
    ASSERT_TRUE(report.ok()) << threads << " thread(s)";
    // Preallocated per-cell slots: a hit's slot exists (mergeable) but
    // holds nothing — the cell never executed, so any content would be
    // double-counted telemetry.
    ASSERT_EQ(report.snapshots.size(), 2u);
    EXPECT_TRUE(report.snapshots[hit].empty());
    if (obs::kCompiled) {
      EXPECT_EQ(report.snapshots[miss].counter("exec_test.cache_cells"), 1u);
    }
    // Merging across hit and miss slots must work without special-casing.
    obs::Snapshot total = report.snapshots[hit];
    total.merge(report.snapshots[miss]);
    EXPECT_EQ(total.counters, report.snapshots[miss].counters);
  }
}

TEST(SweepCache, PlainRunHonoursProbeAndPublish) {
  exec::Sweep sweep;
  bool ran = false;
  bool published = false;
  sweep.add_cached(
      "hit", [&] { ran = true; }, {[] { return true; }, {}});
  sweep.add_cached(
      "miss", [] {},
      {[] { return false; }, [&](const obs::Snapshot&) { published = true; }});
  sweep.run();  // run(), not run_resilient(): same cache semantics.
  EXPECT_FALSE(ran);
  EXPECT_TRUE(published);
}

TEST(SweepCache, HitSatisfiesDependents) {
  exec::Sweep sweep;
  bool dependent_ran = false;
  const auto producer = sweep.add_cached(
      "producer", [] { FAIL() << "cached producer must not run"; },
      {[] { return true; }, {}});
  sweep.add("consumer", [&] { dependent_ran = true; }, {producer});
  const auto report = sweep.run_resilient();
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(dependent_ran)
      << "a cache hit completes the task; dependents must proceed";
}

/// Reduced-scale Fig. 11 config: small enough that the whole grid runs in
/// about a second per evaluation, big enough to exercise real runs.
graph::MultiprogConfig tiny_config() {
  graph::MultiprogConfig config;
  config.rmat_scale = 10;
  config.edge_count = 8192;
  config.system.cache_scale = 2048;
  return config;
}

TEST(Determinism, EvaluateDefensesMatchesAcrossPoolSizes) {
  const auto config = tiny_config();
  const auto kind = graph::WorkloadKind::kBFS;
  const auto serial = graph::evaluate_defenses(config, kind, nullptr);
  for (unsigned threads : {1u, 2u, 8u}) {
    exec::ThreadPool pool(threads);
    const auto parallel = graph::evaluate_defenses(config, kind, &pool);
    EXPECT_EQ(serial, parallel) << threads << " thread(s)";
  }
}

TEST(Determinism, DefenseMatrixMatchesAcrossPoolSizes) {
  const auto config = tiny_config();
  const auto serial =
      graph::evaluate_defense_matrix(config, graph::kAllWorkloads, nullptr);
  ASSERT_EQ(serial.size(), std::size(graph::kAllWorkloads));
  for (unsigned threads : {1u, 2u, 8u}) {
    exec::ThreadPool pool(threads);
    const auto parallel =
        graph::evaluate_defense_matrix(config, graph::kAllWorkloads, &pool);
    EXPECT_EQ(serial, parallel) << threads << " thread(s)";
  }
}

}  // namespace
}  // namespace impact
