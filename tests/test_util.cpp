// Unit tests: util (rng, stats, bitvec, histogram, table, units).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/bitvec.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace impact::util {
namespace {

TEST(Frequency, CyclesForNsRoundsUp) {
  constexpr Frequency f{2.6};
  EXPECT_EQ(f.cycles_for_ns(13.5), 36u);  // 35.1 -> 36.
  EXPECT_EQ(f.cycles_for_ns(0.0), 0u);
  EXPECT_EQ(f.cycles_for_ns(10.0), 26u);  // Exact.
}

TEST(Frequency, ThroughputMath) {
  constexpr Frequency f{2.6};
  EXPECT_DOUBLE_EQ(f.seconds(2'600'000'000ull), 1.0);
  EXPECT_NEAR(f.mbps(1e6, 2'600'000'000ull), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(f.mbps(100, 0), 0.0);
}

TEST(Units, ByteLiterals) {
  EXPECT_EQ(4_KiB, 4096u);
  EXPECT_EQ(2_MiB, 2u * 1024 * 1024);
  EXPECT_EQ(1_GiB, 1024ull * 1024 * 1024);
}

TEST(Xoshiro, Deterministic) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, DifferentSeedsDiffer) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Xoshiro, BelowInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Xoshiro, BelowCoversAllValues) {
  Xoshiro256 rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Xoshiro, BelowRejectsZeroBound) {
  Xoshiro256 rng(7);
  EXPECT_THROW(rng.below(0), std::invalid_argument);
}

TEST(Xoshiro, RangeInclusive) {
  Xoshiro256 rng(9);
  bool lo_seen = false;
  bool hi_seen = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    lo_seen = lo_seen || v == -3;
    hi_seen = hi_seen || v == 3;
  }
  EXPECT_TRUE(lo_seen);
  EXPECT_TRUE(hi_seen);
}

TEST(Xoshiro, UniformInUnitInterval) {
  Xoshiro256 rng(11);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(Xoshiro, NormalMoments) {
  Xoshiro256 rng(13);
  OnlineStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.03);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.03);
}

TEST(Xoshiro, NormalScaled) {
  Xoshiro256 rng(13);
  OnlineStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(Xoshiro, ChanceExtremes) {
  Xoshiro256 rng(15);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(OnlineStats, Basics) {
  OnlineStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // Sample stddev.
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Stats, Percentile) {
  std::vector<double> v = {5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_THROW((void)percentile({}, 50), std::invalid_argument);
  EXPECT_THROW((void)percentile(v, 101), std::invalid_argument);
}

TEST(Stats, Geomean) {
  EXPECT_DOUBLE_EQ(geomean({4.0, 1.0}), 2.0);
  EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_THROW((void)geomean({1.0, -1.0}), std::invalid_argument);
  EXPECT_THROW((void)geomean({}), std::invalid_argument);
}

TEST(Stats, Mean) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stats, MidpointThreshold) {
  EXPECT_DOUBLE_EQ(midpoint_threshold({1, 2, 3}, {7, 8, 9}), 5.0);
  EXPECT_THROW((void)midpoint_threshold({1, 8}, {7, 9}), std::invalid_argument);
  EXPECT_THROW((void)midpoint_threshold({}, {1.0}), std::invalid_argument);
}

TEST(BitVec, RoundTripString) {
  const auto v = BitVec::from_string("10110");
  EXPECT_EQ(v.size(), 5u);
  EXPECT_TRUE(v.get(0));
  EXPECT_FALSE(v.get(1));
  EXPECT_EQ(v.to_string(), "10110");
  EXPECT_THROW(BitVec::from_string("10x"), std::invalid_argument);
}

TEST(BitVec, HammingDistance) {
  const auto a = BitVec::from_string("1010");
  const auto b = BitVec::from_string("1001");
  EXPECT_EQ(a.hamming_distance(b), 2u);
  EXPECT_EQ(a.hamming_distance(a), 0u);
  EXPECT_THROW((void)a.hamming_distance(BitVec::from_string("10")),
               std::invalid_argument);
}

TEST(BitVec, MaskRoundTrip) {
  const auto v = BitVec::from_string("1011000101");
  const auto mask = v.to_mask();
  EXPECT_EQ(BitVec::from_mask(mask, 10), v);
  EXPECT_EQ(mask & 1ull, 1ull);        // Bit 0 -> LSB.
  EXPECT_EQ((mask >> 9) & 1ull, 1ull); // Bit 9 set.
}

TEST(BitVec, RandomIsBalanced) {
  Xoshiro256 rng(21);
  const auto v = BitVec::random(10000, rng);
  EXPECT_NEAR(static_cast<double>(v.popcount()) / 10000, 0.5, 0.03);
}

TEST(BitVec, Alternating) {
  const auto v = BitVec::alternating(6);
  EXPECT_EQ(v.to_string(), "010101");
  EXPECT_EQ(v.popcount(), 3u);
}

TEST(Histogram, BinsAndBounds) {
  Histogram h(0, 100, 10);
  h.add(5);
  h.add(15);
  h.add(15);
  h.add(-1);
  h.add(100);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(1), 2u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 20.0);
  EXPECT_THROW(Histogram(10, 10, 5), std::invalid_argument);
}

TEST(Histogram, RenderMentionsCounts) {
  Histogram h(0, 10, 2);
  h.add(1);
  h.add(6);
  const auto s = h.render();
  EXPECT_NE(s.find('#'), std::string::npos);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1.00"});
  t.add_row({"b", "23.50"});
  const auto s = t.render();
  EXPECT_NE(s.find("| alpha |"), std::string::npos);
  EXPECT_NE(s.find("23.50"), std::string::npos);
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(5, 0), "5");
}

}  // namespace
}  // namespace impact::util
