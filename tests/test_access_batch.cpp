// Scalar-vs-batch bit-identity pins for the SoA access-stream kernel
// (docs/performance.md, "Batched access streams").
//
// MemoryController::access_batch() promises that every request resolves
// bit-identically to the scalar access() issued in index order — across
// mapping schemes, refresh-window crossings, partitioned mode, attached
// fault injectors (whose per-kind RNG streams must draw in the scalar
// sequence), protocol checking, and the obs:: counter totals. These tests
// drive both paths over identical random streams and compare everything.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cache/hierarchy.hpp"
#include "check/protocol_checker.hpp"
#include "dram/access_batch.hpp"
#include "dram/controller.hpp"
#include "fault/injector.hpp"
#include "obs/scope.hpp"
#include "util/rng.hpp"

namespace impact::dram {
namespace {

constexpr std::uint64_t kSeed = 0xba7c4;

/// One random request stream: addresses uniform over the module, issue
/// cycles strictly increasing with gaps up to `max_gap` so long streams
/// cross many refresh windows (tREFI is ~10k cycles at default timing).
struct Stream {
  std::vector<PhysAddr> addr;
  std::vector<util::Cycle> issue;
};

Stream random_stream(const DramConfig& config, std::size_t n,
                     std::uint64_t seed, util::Cycle max_gap = 10000) {
  util::Xoshiro256 rng(seed);
  Stream s;
  s.addr.reserve(n);
  s.issue.reserve(n);
  util::Cycle clock = 1000;
  for (std::size_t i = 0; i < n; ++i) {
    s.addr.push_back(rng.below(config.capacity_bytes()));
    s.issue.push_back(clock);
    clock += 1 + rng.below(max_gap);
  }
  return s;
}

/// Replays `s` through mc.access() in index order.
std::vector<AccessResult> run_scalar(MemoryController& mc, const Stream& s,
                                     ActorId actor = kAnyActor) {
  std::vector<AccessResult> out;
  out.reserve(s.addr.size());
  for (std::size_t i = 0; i < s.addr.size(); ++i) {
    out.push_back(mc.access(s.addr[i], s.issue[i], actor));
  }
  return out;
}

/// Replays `s` through mc.access_batch() and expects per-index equality
/// with `scalar` on every result field (and the decoded bank).
void expect_batch_matches(MemoryController& mc, const Stream& s,
                          const std::vector<AccessResult>& scalar,
                          ActorId actor = kAnyActor) {
  AccessBatch batch;
  for (std::size_t i = 0; i < s.addr.size(); ++i) {
    batch.push(s.addr[i], s.issue[i]);
  }
  mc.access_batch(batch, actor);
  ASSERT_EQ(batch.size(), scalar.size());
  for (std::size_t i = 0; i < scalar.size(); ++i) {
    ASSERT_EQ(batch.latency[i], scalar[i].latency) << "request " << i;
    ASSERT_EQ(batch.completion[i], scalar[i].completion) << "request " << i;
    ASSERT_EQ(batch.ack[i], scalar[i].ack) << "request " << i;
    ASSERT_EQ(batch.outcome[i], scalar[i].outcome) << "request " << i;
    ASSERT_EQ(batch.bank[i], scalar[i].bank) << "request " << i;
  }
}

void expect_stats_equal(const MemoryController& a,
                        const MemoryController& b) {
  const BankStats sa = a.total_stats();
  const BankStats sb = b.total_stats();
  EXPECT_EQ(sa.hits, sb.hits);
  EXPECT_EQ(sa.empties, sb.empties);
  EXPECT_EQ(sa.conflicts, sb.conflicts);
  EXPECT_EQ(sa.activations, sb.activations);
}

class MappingSchemes : public ::testing::TestWithParam<MappingScheme> {};

TEST_P(MappingSchemes, BatchMatchesScalarOverRandomStreams) {
  const DramConfig config;
  MemoryController scalar_mc(config, GetParam());
  MemoryController batch_mc(config, GetParam());
  const Stream s = random_stream(config, 4096, kSeed);
  const auto scalar = run_scalar(scalar_mc, s);
  expect_batch_matches(batch_mc, s, scalar);
  expect_stats_equal(scalar_mc, batch_mc);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, MappingSchemes,
                         ::testing::Values(MappingScheme::kBankInterleaved,
                                           MappingScheme::kRowBankCol,
                                           MappingScheme::kXorBankHash));

TEST(AccessBatch, CrossesRefreshWindows) {
  // Long gaps force many refresh-boundary crossings inside one batch: the
  // cached next-refresh boundary in Bank must re-derive identically on
  // both paths.
  const DramConfig config;
  MemoryController scalar_mc(config);
  MemoryController batch_mc(config);
  const Stream s = random_stream(config, 2048, kSeed + 1,
                                 /*max_gap=*/200000);
  const auto scalar = run_scalar(scalar_mc, s);
  expect_batch_matches(batch_mc, s, scalar);
}

TEST(AccessBatch, RowPoliciesMatchScalar) {
  for (const RowPolicy policy :
       {RowPolicy::kOpenRow, RowPolicy::kClosedRow,
        RowPolicy::kConstantTime}) {
    DramConfig config;
    config.policy = policy;
    MemoryController scalar_mc(config);
    MemoryController batch_mc(config);
    const Stream s = random_stream(config, 1024, kSeed + 2);
    const auto scalar = run_scalar(scalar_mc, s);
    expect_batch_matches(batch_mc, s, scalar);
  }
}

TEST(AccessBatch, PartitionedModeMatchesScalar) {
  // Claim every bank for actor 1, address only owned banks: the batch's
  // hoisted partition guard must admit exactly what scalar admits.
  const DramConfig config;
  MemoryController scalar_mc(config);
  MemoryController batch_mc(config);
  for (BankId b = 0; b < scalar_mc.banks(); ++b) {
    scalar_mc.set_partition_owner(b, 1);
    batch_mc.set_partition_owner(b, 1);
  }
  const Stream s = random_stream(config, 2048, kSeed + 3);
  const auto scalar = run_scalar(scalar_mc, s, /*actor=*/1);
  expect_batch_matches(batch_mc, s, scalar, /*actor=*/1);
  EXPECT_EQ(scalar_mc.partition_faults(), 0u);
  EXPECT_EQ(batch_mc.partition_faults(), 0u);
}

TEST(AccessBatch, PartitionViolationThrows) {
  // Documented divergence: the batch validates the whole stream up front
  // and throws before processing any request, where scalar would process
  // the prefix first. Both reject the foreign access itself.
  const DramConfig config;
  MemoryController mc(config);
  mc.set_partition_owner(0, /*owner=*/1);
  AccessBatch batch;
  batch.push(mc.mapping().row_base(0, 5), 1000);
  EXPECT_THROW(mc.access_batch(batch, /*actor=*/2), std::invalid_argument);
}

TEST(AccessBatch, ProtocolCheckerCleanOnBatchedStream) {
  // IMPACT_CHECK=1 (set by CTest) auto-attaches an aborting checker, so
  // merely reaching the end already proves legality; the external collect
  // checker additionally pins that every command was delivered and none
  // violated.
  const DramConfig config;
  MemoryController mc(config);
  check::ProtocolChecker collector(config.derived_timing(),
                                   check::FailMode::kCollect);
  mc.add_observer(&collector);
  const Stream s = random_stream(config, 4096, kSeed + 4);
  AccessBatch batch;
  for (std::size_t i = 0; i < s.addr.size(); ++i) {
    batch.push(s.addr[i], s.issue[i]);
  }
  mc.access_batch(batch);
  EXPECT_TRUE(collector.violations().empty());
  EXPECT_GT(collector.commands_checked(), 0u);
  mc.remove_observer(&collector);
}

TEST(AccessBatch, FaultInjectorFiresIdentically) {
  // With an injector attached the kernel falls back to index order so the
  // per-kind RNG streams draw in the scalar sequence: same (seed, kind)
  // configuration on both paths must fire the same faults at the same
  // requests and leave identical counters.
  const DramConfig config;
  const std::vector<fault::FaultConfig> faults = {
      {fault::FaultKind::kDramJitter, 0.05, 40, 0, ~0ull},
      {fault::FaultKind::kRefreshStorm, 0.02, 0, 0, ~0ull},
  };
  MemoryController scalar_mc(config);
  MemoryController batch_mc(config);
  fault::Injector scalar_inj(kSeed + 5, faults);
  fault::Injector batch_inj(kSeed + 5, faults);
  scalar_mc.set_fault_injector(&scalar_inj);
  batch_mc.set_fault_injector(&batch_inj);

  const Stream s = random_stream(config, 4096, kSeed + 6);
  const auto scalar = run_scalar(scalar_mc, s);
  expect_batch_matches(batch_mc, s, scalar);

  EXPECT_GT(scalar_inj.counters().total_fired(), 0u);  // Faults did fire.
  EXPECT_EQ(scalar_inj.counters().fired, batch_inj.counters().fired);
  EXPECT_EQ(scalar_inj.counters().opportunities,
            batch_inj.counters().opportunities);
}

TEST(AccessBatch, ObsCounterTotalsEqualBetweenPaths) {
  if (!obs::kCompiled) GTEST_SKIP() << "obs compiled out";
  const DramConfig config;
  const Stream s = random_stream(config, 2048, kSeed + 7);
  obs::Snapshot scalar_snap;
  {
    obs::Scope scope;
    MemoryController mc(config);
    (void)run_scalar(mc, s);
    scalar_snap = scope.snapshot();
  }
  obs::Snapshot batch_snap;
  {
    obs::Scope scope;
    MemoryController mc(config);
    AccessBatch batch;
    for (std::size_t i = 0; i < s.addr.size(); ++i) {
      batch.push(s.addr[i], s.issue[i]);
    }
    mc.access_batch(batch);
    batch_snap = scope.snapshot();
  }
  EXPECT_FALSE(scalar_snap.counters.empty());
  EXPECT_EQ(scalar_snap.counters, batch_snap.counters);
}

TEST(AccessBatch, ReuseAfterClearIsDeterministic) {
  // clear() keeps capacity; a reused batch must produce the same answers
  // as a fresh one fed the same stream into the same controller state.
  const DramConfig config;
  MemoryController mc_a(config);
  MemoryController mc_b(config);
  const Stream warm = random_stream(config, 512, kSeed + 8);
  const Stream s = random_stream(config, 512, kSeed + 9);

  AccessBatch reused;
  for (std::size_t i = 0; i < warm.addr.size(); ++i) {
    reused.push(warm.addr[i], warm.issue[i]);
  }
  mc_a.access_batch(reused);
  reused.clear();
  for (std::size_t i = 0; i < s.addr.size(); ++i) {
    reused.push(s.addr[i], s.issue[i]);
  }
  mc_a.access_batch(reused);

  (void)run_scalar(mc_b, warm);
  const auto scalar = run_scalar(mc_b, s);
  ASSERT_EQ(reused.size(), scalar.size());
  for (std::size_t i = 0; i < scalar.size(); ++i) {
    ASSERT_EQ(reused.latency[i], scalar[i].latency) << "request " << i;
    ASSERT_EQ(reused.outcome[i], scalar[i].outcome) << "request " << i;
  }
}

TEST(AccessBatch, HierarchyBatchMatchesScalar) {
  // The cache front end is stateful (replacement, prefetchers), so its
  // batch form is pinned as a stream: same hits, same misses, same DRAM
  // traffic underneath.
  const DramConfig config;
  MemoryController scalar_mc(config);
  MemoryController batch_mc(config);
  cache::Hierarchy scalar_h(cache::HierarchyConfig::table2(), scalar_mc);
  cache::Hierarchy batch_h(cache::HierarchyConfig::table2(), batch_mc);

  const std::size_t n = 4096;
  util::Xoshiro256 rng(kSeed + 10);
  std::vector<PhysAddr> addrs;
  std::vector<util::Cycle> issue;
  util::Cycle clock = 1000;
  for (std::size_t i = 0; i < n; ++i) {
    addrs.push_back(rng.below(64ull << 20));  // 64 MiB working set.
    issue.push_back(clock);
    clock += 20;
  }

  std::vector<cache::MemAccessResult> scalar(n);
  for (std::size_t i = 0; i < n; ++i) {
    scalar[i] = scalar_h.access(addrs[i], issue[i]);
  }
  std::vector<cache::MemAccessResult> batch(n);
  batch_h.access_batch(addrs.data(), issue.data(), n, batch.data());

  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(batch[i].latency, scalar[i].latency) << "request " << i;
    ASSERT_EQ(batch[i].level, scalar[i].level) << "request " << i;
    ASSERT_EQ(batch[i].dram_outcome, scalar[i].dram_outcome)
        << "request " << i;
  }
  expect_stats_equal(scalar_mc, batch_mc);
}

}  // namespace
}  // namespace impact::dram
