// Coverage round-out: smaller behaviors not exercised elsewhere.
#include <gtest/gtest.h>

#include "attacks/impact_async.hpp"
#include "attacks/impact_pnm.hpp"
#include "channel/coding.hpp"
#include "dram/controller.hpp"
#include "genomics/genome.hpp"
#include "sys/system.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"

namespace impact {
namespace {

TEST(ControllerMisc, ExplicitPrechargeThroughController) {
  dram::MemoryController mc((dram::DramConfig()));
  auto r = mc.access_row(4, 10, 1000);
  ASSERT_TRUE(mc.open_row(4, r.completion).has_value());
  mc.precharge(4, r.completion + 100);
  EXPECT_FALSE(mc.open_row(4, r.completion + 1000).has_value());
}

TEST(ControllerMisc, ResetStatsClearsEverything) {
  dram::MemoryController mc((dram::DramConfig()));
  (void)mc.access_row(0, 1, 100);
  mc.set_partition_owner(1, 7);
  EXPECT_THROW((void)mc.access_row(1, 1, 200, 8), std::invalid_argument);
  EXPECT_GT(mc.total_stats().accesses(), 0u);
  EXPECT_EQ(mc.partition_faults(), 1u);
  mc.reset_stats();
  EXPECT_EQ(mc.total_stats().accesses(), 0u);
  EXPECT_EQ(mc.partition_faults(), 0u);
}

TEST(ControllerMisc, IssueOverheadIsConfigurable) {
  dram::MemoryController mc((dram::DramConfig()));
  const auto base = mc.access_row(0, 1, 1000).latency;
  mc.set_issue_overhead(40);
  mc.precharge(0, 5000);
  const auto slower = mc.access_row(0, 1, 10000).latency;
  EXPECT_EQ(slower, base - 4 + 40);
}

TEST(HierarchyMisc, DirtyLlcEvictionWritesBackToDram) {
  dram::MemoryController mc((dram::DramConfig()));
  auto config = cache::HierarchyConfig::table2(1ull << 21, 16);  // 2 MB.
  config.enable_prefetchers = false;
  cache::Hierarchy h(config, mc);
  // Dirty one line, then stream enough lines through its LLC set to force
  // its eviction; the write-back must reach DRAM.
  (void)h.access(0x40000, 0, /*is_write=*/true);
  mc.reset_stats();
  const std::uint64_t set_stride = 64ull * config.l3.sets();
  for (int k = 1; k <= 20; ++k) {
    (void)h.access(0x40000 + k * set_stride, 1000 * k);
  }
  EXPECT_FALSE(h.cached(0x40000));
  // Fills + at least one write-back hit the controller.
  EXPECT_GT(mc.total_stats().accesses(), 20u);
}

TEST(GenomeMisc, StringRoundTripProperty) {
  util::Xoshiro256 rng(131);
  for (int trial = 0; trial < 20; ++trial) {
    std::string s;
    const char* alphabet = "ACGT";
    for (int i = 0; i < 100; ++i) {
      s.push_back(alphabet[rng.below(4)]);
    }
    EXPECT_EQ(genomics::Genome::from_string(s).to_string(), s);
  }
}

TEST(HistogramMisc, BinBoundsThrowOutOfRange) {
  util::Histogram h(0, 10, 5);
  EXPECT_THROW((void)h.bin_lo(5), std::invalid_argument);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(CodingMisc, CodedTransmissionWorksOverAnyAttackInterface) {
  // transmit_coded is attack-agnostic: run it over the async variant.
  sys::MemorySystem system{sys::SystemConfig{}};
  attacks::ImpactAsyncConfig config;
  config.slot_cycles = 260;
  attacks::ImpactAsync attack(system, config);
  util::Xoshiro256 rng(132);
  const auto msg = util::BitVec::random(32, rng);
  const auto r = channel::transmit_coded(
      attack, msg, channel::CodeKind::kHamming74, util::kDefaultFrequency);
  EXPECT_EQ(r.decoded, msg);
  EXPECT_EQ(r.residual_errors, 0u);
}

TEST(ThreadsMisc, SenderAndReceiverThreadsCompose) {
  sys::MemorySystem system{sys::SystemConfig{}};
  attacks::ImpactPnmConfig config;
  config.channel.batch_bits = 16;
  config.channel.sender_threads = 4;
  config.channel.receiver_threads = 4;
  attacks::ImpactPnm attack(system, config);
  const auto r = attack.measure(128, 4, 133);
  EXPECT_LT(r.error_rate(), 0.02);
  EXPECT_GT(r.throughput_mbps(util::kDefaultFrequency), 20.0);
}

TEST(VmemMisc, MapRowSpanHugeTlbBenefit) {
  sys::SystemConfig config;
  sys::MemorySystem system(config);
  const auto huge = system.vmem().map_row_span(1, 3, /*huge=*/true);
  system.warm_span(1, huge);
  // The whole 512 KiB span is one 2 MiB TLB entry: every page hits L1.
  auto& tlb = system.tlb(1);
  tlb.reset_stats();
  for (std::uint64_t off = 0; off < huge.bytes; off += 4096) {
    (void)system.translate(1, huge.vaddr + off);
  }
  EXPECT_EQ(tlb.stats().walks, 0u);
  EXPECT_EQ(tlb.stats().l1_hits, tlb.stats().accesses);
}

}  // namespace
}  // namespace impact
