// Depth tests: failure injection, cross-feature interactions, and
// behaviors not covered by the per-module suites.
#include <gtest/gtest.h>

#include "attacks/drama.hpp"
#include "attacks/impact_pnm.hpp"
#include "attacks/impact_pum.hpp"
#include "attacks/pnm_offchip.hpp"
#include "attacks/registry.hpp"
#include "channel/coding.hpp"
#include "sys/noise.hpp"

namespace impact::attacks {
namespace {

TEST(MeasureAggregation, SumsOverMessages) {
  sys::MemorySystem system{sys::SystemConfig{}};
  ImpactPnm attack(system);
  const auto one = attack.measure(32, 1, 5);
  const auto four = attack.measure(32, 4, 5);
  EXPECT_EQ(four.bits_total, 4 * one.bits_total);
  EXPECT_GT(four.elapsed_cycles, 3 * one.elapsed_cycles);
}

TEST(RegistryTest, NamesAndMappings) {
  EXPECT_STREQ(to_string(AttackKind::kImpactPnm), "IMPACT-PnM");
  EXPECT_STREQ(to_string(AttackKind::kDramaEviction), "DRAMA-eviction");
  EXPECT_EQ(recommended_mapping(AttackKind::kDramaEviction),
            dram::MappingScheme::kXorBankHash);
  EXPECT_EQ(recommended_mapping(AttackKind::kImpactPum),
            dram::MappingScheme::kBankInterleaved);
  sys::SystemConfig config;
  sys::MemorySystem system(config);
  for (const auto kind : kFig8Attacks) {
    if (recommended_mapping(kind) != config.mapping) continue;
    auto attack = make_attack(kind, system);
    EXPECT_EQ(attack->name(), to_string(kind));
  }
}

TEST(DramaEviction, ForcesSingleBankSerialChannel) {
  sys::SystemConfig config;
  config.mapping = dram::MappingScheme::kXorBankHash;
  sys::MemorySystem system(config);
  DramaConfig drama_config;
  drama_config.primitive = DramaPrimitive::kEviction;
  drama_config.channel.banks = 16;      // Overridden by the adjust rule.
  drama_config.channel.batch_bits = 4;
  Drama attack(system, drama_config);
  const auto r = attack.transmit(util::BitVec::from_string("1100101"));
  EXPECT_LE(r.report.bit_errors(), 1u);
}

TEST(ImpactPumUnderRefresh, SmallErrorRateNotCollapse) {
  sys::SystemConfig config;
  config.dram.timing.trefi_ns = 3000.0;  // Dense refresh for the test.
  sys::MemorySystem system(config);
  ImpactPum attack(system);
  const auto report = attack.measure(128, 6, 91);
  EXPECT_LT(report.error_rate(), 0.25);
}

TEST(ImpactPumRequiresInterleavedMapping, Throws) {
  sys::SystemConfig config;
  config.mapping = dram::MappingScheme::kRowBankCol;
  sys::MemorySystem system(config);
  ImpactPum attack(system);
  EXPECT_THROW((void)attack.transmit(util::BitVec(16, true)),
               std::invalid_argument);
}

TEST(PnmOffChipErrors, GrowWithLlcSize) {
  auto run = [&](std::uint64_t llc_mb) {
    sys::SystemConfig config;
    config.llc_bytes = llc_mb << 20;
    sys::MemorySystem system(config);
    PnmOffChip attack(system);
    return attack.measure(128, 8, 92).error_rate();
  };
  EXPECT_LE(run(2), run(64));
  EXPECT_GT(run(64), 0.0);  // The predictor does lose some bits.
}

TEST(MultiThreadSender, ScalesSenderTimeWithoutErrors) {
  const auto msg = util::BitVec(32, true);
  util::Cycle one_thread = 0;
  util::Cycle four_threads = 0;
  {
    sys::MemorySystem system{sys::SystemConfig{}};
    ImpactPnmConfig config;
    config.channel.batch_bits = 16;
    ImpactPnm attack(system, config);
    (void)attack.transmit(msg);
    one_thread = attack.transmit(msg).report.sender_cycles;
  }
  {
    sys::MemorySystem system{sys::SystemConfig{}};
    ImpactPnmConfig config;
    config.channel.batch_bits = 16;
    config.channel.sender_threads = 4;
    ImpactPnm attack(system, config);
    (void)attack.transmit(msg);
    const auto r = attack.transmit(msg);
    four_threads = r.report.sender_cycles;
    EXPECT_EQ(r.report.bit_errors(), 0u);
  }
  EXPECT_LT(4 * four_threads, 5 * one_thread);  // Near-linear scaling.
}

TEST(MultiThreadReceiver, ParallelProbingMultipliesThroughput) {
  auto mbps = [](std::uint32_t rthreads) {
    sys::MemorySystem system{sys::SystemConfig{}};
    ImpactPnmConfig config;
    config.channel.batch_bits = 16;
    config.channel.receiver_threads = rthreads;
    ImpactPnm attack(system, config);
    const auto r = attack.measure(128, 6, 95);
    EXPECT_LT(r.error_rate(), 0.02);
    return r.throughput_mbps(util::kDefaultFrequency);
  };
  const double one = mbps(1);
  const double four = mbps(4);
  EXPECT_GT(four, 2.0 * one);
}

TEST(NoisePlusCoding, RepetitionBeatsUncodedResidualUnderLoad) {
  sys::SystemConfig config;
  sys::MemorySystem system(config);
  sys::NoiseConfig noise_config;
  noise_config.accesses_per_kilocycle = 6.0;
  sys::BackgroundNoise noise(noise_config, system, 42);
  ImpactPnm attack(system);
  attack.set_noise(&noise);
  util::Xoshiro256 rng(93);
  const auto msg = util::BitVec::random(256, rng);
  const auto uncoded = channel::transmit_coded(
      attack, msg, channel::CodeKind::kNone, util::kDefaultFrequency);
  const auto coded = channel::transmit_coded(
      attack, msg, channel::CodeKind::kRepetition3,
      util::kDefaultFrequency);
  EXPECT_GT(uncoded.residual_errors, 0u);
  EXPECT_LT(coded.residual_errors, uncoded.residual_errors);
}

TEST(ThresholdStability, RecalibrationNotNeededAcrossLongSessions) {
  // The calibrated threshold from message 1 still decodes message 50
  // (bank state self-heals; no drift source exists in a quiet system).
  sys::MemorySystem system{sys::SystemConfig{}};
  ImpactPnm attack(system);
  util::Xoshiro256 rng(94);
  (void)attack.transmit(util::BitVec::random(16, rng));
  const double threshold_before = attack.threshold();
  for (int i = 0; i < 49; ++i) {
    (void)attack.transmit(util::BitVec::random(16, rng));
  }
  EXPECT_EQ(attack.threshold(), threshold_before);
  const auto r = attack.transmit(util::BitVec::random(64, rng));
  EXPECT_EQ(r.report.bit_errors(), 0u);
}

TEST(SenderOnlyActsOnOnes, ZeroMessagesAreNearFree) {
  sys::MemorySystem system{sys::SystemConfig{}};
  ImpactPnm attack(system);
  (void)attack.transmit(util::BitVec(64, false));
  const auto zeros = attack.transmit(util::BitVec(64, false)).report;
  const auto ones = attack.transmit(util::BitVec(64, true)).report;
  EXPECT_LT(zeros.sender_cycles * 3, ones.sender_cycles);
}

}  // namespace
}  // namespace impact::attacks
