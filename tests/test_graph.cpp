// Unit + property tests: graph substrate and multiprogrammed replay.
#include <gtest/gtest.h>

#include <deque>

#include "graph/graph.hpp"
#include "graph/multiprog.hpp"
#include "graph/workload.hpp"

namespace impact::graph {
namespace {

TEST(CsrGraphTest, UniformGeneratorShape) {
  util::Xoshiro256 rng(1);
  const auto g = CsrGraph::uniform(100, 500, rng);
  EXPECT_EQ(g.nodes(), 100u);
  EXPECT_EQ(g.edges(), 500u);
  std::size_t degree_sum = 0;
  for (NodeId u = 0; u < g.nodes(); ++u) degree_sum += g.degree(u);
  EXPECT_EQ(degree_sum, 500u);
  for (std::size_t i = 0; i < g.edges(); ++i) EXPECT_LT(g.edge(i), 100u);
}

TEST(CsrGraphTest, RmatIsSkewed) {
  util::Xoshiro256 rng(2);
  const auto g = CsrGraph::rmat(12, 40000, rng);
  std::uint32_t max_degree = 0;
  for (NodeId u = 0; u < g.nodes(); ++u) {
    max_degree = std::max(max_degree, g.degree(u));
  }
  const double avg = 40000.0 / g.nodes();
  EXPECT_GT(max_degree, 10 * avg);  // Heavy-tailed degrees.
}

TEST(CsrGraphTest, GeneratorsAreDeterministic) {
  util::Xoshiro256 a(3);
  util::Xoshiro256 b(3);
  const auto g1 = CsrGraph::rmat(10, 5000, a);
  const auto g2 = CsrGraph::rmat(10, 5000, b);
  EXPECT_EQ(g1.offsets(), g2.offsets());
  EXPECT_EQ(g1.edge_list(), g2.edge_list());
}

TEST(CsrGraphTest, ValidationRejectsBadShape) {
  EXPECT_THROW(CsrGraph(2, {0, 1}, {0}), std::invalid_argument);
  EXPECT_THROW(CsrGraph(2, {0, 1, 3}, {0}), std::invalid_argument);
}

TEST(WorkloadTrace, BfsChecksumMatchesReferenceBfs) {
  util::Xoshiro256 rng(4);
  const auto g = CsrGraph::uniform(500, 4000, rng);
  const auto trace = build_trace(WorkloadKind::kBFS, g);
  // Independent BFS reachability count from node 0.
  std::vector<bool> seen(g.nodes(), false);
  std::deque<NodeId> q{0};
  seen[0] = true;
  std::uint64_t visited = 1;
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop_front();
    for (std::uint32_t i = g.offset(u); i < g.offset(u + 1); ++i) {
      const NodeId v = g.edge(i);
      if (!seen[v]) {
        seen[v] = true;
        ++visited;
        q.push_back(v);
      }
    }
  }
  EXPECT_EQ(trace.checksum, visited);
}

TEST(WorkloadTrace, CcChecksumIsComponentUpperBound) {
  util::Xoshiro256 rng(5);
  const auto g = CsrGraph::uniform(300, 2500, rng);
  const auto trace = build_trace(WorkloadKind::kCC, g);
  // Two label-propagation rounds over-approximate the final count but can
  // never report zero components or more than nodes.
  EXPECT_GE(trace.checksum, 1u);
  EXPECT_LE(trace.checksum, g.nodes());
}

TEST(WorkloadTrace, SsspChecksumMatchesDijkstra) {
  util::Xoshiro256 rng(44);
  const auto g = CsrGraph::uniform(200, 3000, rng);
  const auto trace = build_trace(WorkloadKind::kSSSP, g);
  // Reference: Bellman-Ford to convergence bounded by the same 3 rounds
  // (the trace kernel caps rounds, so compare against the same cap).
  constexpr std::uint64_t kInf = ~0ull;
  std::vector<std::uint64_t> dist(g.nodes(), kInf);
  dist[0] = 0;
  for (int round = 0; round < 3; ++round) {
    for (NodeId u = 0; u < g.nodes(); ++u) {
      if (dist[u] == kInf) continue;
      for (std::uint32_t i = g.offset(u); i < g.offset(u + 1); ++i) {
        const NodeId v = g.edge(i);
        dist[v] = std::min(dist[v], dist[u] + 1 + (v & 7));
      }
    }
  }
  std::uint64_t sum = 0;
  for (auto d : dist) {
    if (d != kInf) sum += d;
  }
  EXPECT_EQ(trace.checksum, sum);
}

TEST(WorkloadTrace, AllWorkloadsProduceWork) {
  util::Xoshiro256 rng(6);
  const auto g = CsrGraph::rmat(10, 8000, rng);
  for (const auto kind : kExtendedWorkloads) {
    const auto trace = build_trace(kind, g);
    EXPECT_GT(trace.ops.size(), g.nodes()) << to_string(kind);
    // Indices stay within the declared array sizes.
    for (const auto& op : trace.ops) {
      switch (op.array) {
        case ArrayRef::kOffsets:
          EXPECT_LE(op.index, g.nodes());
          break;
        case ArrayRef::kEdges:
          EXPECT_LT(op.index, g.edges());
          break;
        default: {
          const auto p =
              static_cast<std::size_t>(op.array) -
              static_cast<std::size_t>(ArrayRef::kPrivate0);
          ASSERT_LT(p, 3u);
          ASSERT_GT(trace.private_elems[p], 0u) << to_string(kind);
          EXPECT_LT(op.index, trace.private_elems[p]);
        }
      }
    }
  }
}

TEST(WorkloadTrace, TracesAreDeterministic) {
  util::Xoshiro256 rng(7);
  const auto g = CsrGraph::rmat(9, 4000, rng);
  const auto a = build_trace(WorkloadKind::kPR, g);
  const auto b = build_trace(WorkloadKind::kPR, g);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.ops.size(), b.ops.size());
}

class DefensePolicyOverhead
    : public ::testing::TestWithParam<WorkloadKind> {};

TEST_P(DefensePolicyOverhead, DefensesNeverSpeedUpAndCtdCostsMost) {
  MultiprogConfig config;
  config.rmat_scale = 11;  // Small but memory-visible at scaled caches.
  config.edge_count = 1u << 14;
  const auto r = evaluate_defenses(config, GetParam());
  EXPECT_GT(r.open_row.cycles, 0u);
  EXPECT_GE(r.closed_row.cycles, r.open_row.cycles);
  EXPECT_GE(r.constant_time.cycles, r.closed_row.cycles);
  EXPECT_GE(r.ctd_overhead(), r.crp_overhead());
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, DefensePolicyOverhead,
                         ::testing::ValuesIn(kAllWorkloads),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(Multiprog, RunProducesStats) {
  MultiprogConfig config;
  config.rmat_scale = 10;
  config.edge_count = 1u << 13;
  const auto stats = run_multiprogrammed(config, WorkloadKind::kBFS,
                                         dram::RowPolicy::kOpenRow);
  EXPECT_GT(stats.cycles, 0u);
  EXPECT_GT(stats.instructions, 0u);
  EXPECT_GT(stats.llc_misses, 0u);
  EXPECT_GT(stats.mpki(), 0.0);
  EXPECT_GT(stats.row_hit_rate, 0.0);
  EXPECT_LE(stats.row_hit_rate, 1.0);
  EXPECT_EQ(stats.accesses % 2, 0u);  // Two instances.
}

TEST(Multiprog, ConstantTimeHidesRowState) {
  MultiprogConfig config;
  config.rmat_scale = 10;
  config.edge_count = 1u << 13;
  const auto stats = run_multiprogrammed(config, WorkloadKind::kCC,
                                         dram::RowPolicy::kConstantTime);
  // Every DRAM access is padded: observable outcomes carry no hit signal.
  EXPECT_GT(stats.cycles, 0u);
}

}  // namespace
}  // namespace impact::graph
