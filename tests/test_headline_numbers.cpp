// Golden regression tests: pin the headline reproduction numbers so that
// future substrate changes that silently break the calibration fail
// loudly. Tolerances are deliberately tight around the values recorded in
// EXPERIMENTS.md (everything is seeded and deterministic, so drift means
// a semantic change, not noise).
#include <gtest/gtest.h>

#include "attacks/registry.hpp"
#include "dram/config.hpp"

namespace impact {
namespace {

double attack_mbps(attacks::AttackKind kind, std::uint64_t llc_mb = 8) {
  sys::SystemConfig config;
  config.llc_bytes = llc_mb << 20;
  config.mapping = attacks::recommended_mapping(kind);
  sys::MemorySystem system(config);
  auto attack = attacks::make_attack(kind, system);
  return attack->measure(64, 12, 21).throughput_mbps(config.frequency());
}

TEST(Headline, RowBufferTimingGap) {
  const auto timing = dram::DramConfig{}.derived_timing();
  EXPECT_EQ(timing.conflict_latency() - timing.hit_latency(), 72u);
}

TEST(Headline, ImpactPnmThroughput) {
  // Paper: 12.87 Mb/s; recorded: 13.57.
  EXPECT_NEAR(attack_mbps(attacks::AttackKind::kImpactPnm), 13.57, 0.5);
}

TEST(Headline, ImpactPumThroughput) {
  // Paper: 14.16 Mb/s; recorded: 14.45.
  EXPECT_NEAR(attack_mbps(attacks::AttackKind::kImpactPum), 14.45, 0.5);
}

TEST(Headline, DmaEngineThroughput) {
  // Paper: 5.27 Mb/s; recorded: 5.02.
  EXPECT_NEAR(attack_mbps(attacks::AttackKind::kDmaEngine), 5.02, 0.4);
}

TEST(Headline, DramaClflushDeclineAndRatio) {
  // Recorded: 5.81 (2 MB) -> 3.43 (64 MB); IMPACT-PnM / worst >= ~3.9x.
  const double small = attack_mbps(attacks::AttackKind::kDramaClflush, 2);
  const double large = attack_mbps(attacks::AttackKind::kDramaClflush, 64);
  EXPECT_NEAR(small, 5.81, 0.5);
  EXPECT_NEAR(large, 3.43, 0.5);
  const double pnm = attack_mbps(attacks::AttackKind::kImpactPnm, 64);
  EXPECT_GT(pnm / large, 3.5);
}

TEST(Headline, ImpactIsLlcSizeInvariant) {
  const double at2 = attack_mbps(attacks::AttackKind::kImpactPum, 2);
  const double at64 = attack_mbps(attacks::AttackKind::kImpactPum, 64);
  EXPECT_DOUBLE_EQ(at2, at64);  // Exactly flat: no cache on the path.
}

}  // namespace
}  // namespace impact
