// Golden regression tests: pin the headline reproduction numbers so that
// future substrate changes that silently break the calibration fail
// loudly. Tolerances are deliberately tight around the values recorded in
// EXPERIMENTS.md (everything is seeded and deterministic, so drift means
// a semantic change, not noise).
#include <gtest/gtest.h>

#include "attacks/registry.hpp"
#include "dram/config.hpp"
#include "exec/sweep.hpp"
#include "graph/multiprog.hpp"

namespace impact {
namespace {

double attack_mbps(attacks::AttackKind kind, std::uint64_t llc_mb = 8) {
  sys::SystemConfig config;
  config.llc_bytes = llc_mb << 20;
  config.mapping = attacks::recommended_mapping(kind);
  sys::MemorySystem system(config);
  auto attack = attacks::make_attack(kind, system);
  return attack->measure(64, 12, 21).throughput_mbps(config.frequency());
}

TEST(Headline, RowBufferTimingGap) {
  const auto timing = dram::DramConfig{}.derived_timing();
  EXPECT_EQ(timing.conflict_latency() - timing.hit_latency(), 72u);
}

TEST(Headline, ImpactPnmThroughput) {
  // Paper: 12.87 Mb/s; recorded: 13.57.
  EXPECT_NEAR(attack_mbps(attacks::AttackKind::kImpactPnm), 13.57, 0.5);
}

TEST(Headline, ImpactPumThroughput) {
  // Paper: 14.16 Mb/s; recorded: 14.45.
  EXPECT_NEAR(attack_mbps(attacks::AttackKind::kImpactPum), 14.45, 0.5);
}

TEST(Headline, DmaEngineThroughput) {
  // Paper: 5.27 Mb/s; recorded: 5.02.
  EXPECT_NEAR(attack_mbps(attacks::AttackKind::kDmaEngine), 5.02, 0.4);
}

TEST(Headline, DramaClflushDeclineAndRatio) {
  // Recorded: 5.81 (2 MB) -> 3.43 (64 MB); IMPACT-PnM / worst >= ~3.9x.
  const double small = attack_mbps(attacks::AttackKind::kDramaClflush, 2);
  const double large = attack_mbps(attacks::AttackKind::kDramaClflush, 64);
  EXPECT_NEAR(small, 5.81, 0.5);
  EXPECT_NEAR(large, 3.43, 0.5);
  const double pnm = attack_mbps(attacks::AttackKind::kImpactPnm, 64);
  EXPECT_GT(pnm / large, 3.5);
}

TEST(Headline, DefenseOverheadsViaSweepEngine) {
  // Fig. 11 trend at reduced scale (8x smaller input keeps this test in
  // CI-friendly time): CTD costs more than CRP on every workload, with
  // both averages pinned at the recorded values for this configuration
  // (full scale records CRP 13.6% / CTD 26.1%; see bench_fig11).
  // Run through the sweep engine — the same path the benches use.
  graph::MultiprogConfig config;
  config.rmat_scale = 12;
  config.edge_count = 32768;
  // Shrink the hierarchy with the input to stay conflict-bound (the
  // regime where the defenses cost anything).
  config.system.cache_scale = 512;
  exec::ThreadPool pool;
  const auto matrix =
      graph::evaluate_defense_matrix(config, graph::kAllWorkloads, &pool);
  ASSERT_EQ(matrix.size(), std::size(graph::kAllWorkloads));
  double crp_avg = 0.0;
  double ctd_avg = 0.0;
  for (const auto& r : matrix) {
    EXPECT_GT(r.open_row.cycles, 0u) << to_string(r.kind);
    EXPECT_GE(r.ctd_overhead(), r.crp_overhead()) << to_string(r.kind);
    crp_avg += r.crp_overhead() / matrix.size();
    ctd_avg += r.ctd_overhead() / matrix.size();
  }
  EXPECT_NEAR(crp_avg, 0.0725, 0.02);
  EXPECT_NEAR(ctd_avg, 0.1253, 0.02);

  // The engine's matrix must agree bit-for-bit with the single-workload
  // entry point (same seeds, fresh system per cell).
  const auto direct = graph::evaluate_defenses(config, matrix[1].kind);
  EXPECT_EQ(direct, matrix[1]);
}

TEST(Headline, ImpactIsLlcSizeInvariant) {
  const double at2 = attack_mbps(attacks::AttackKind::kImpactPum, 2);
  const double at64 = attack_mbps(attacks::AttackKind::kImpactPum, 64);
  EXPECT_DOUBLE_EQ(at2, at64);  // Exactly flat: no cache on the path.
}

}  // namespace
}  // namespace impact
