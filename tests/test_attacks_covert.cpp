// Integration tests: all covert-channel attacks end to end.
#include <gtest/gtest.h>

#include "attacks/impact_pnm.hpp"
#include "attacks/impact_pum.hpp"
#include "attacks/pnm_offchip.hpp"
#include "attacks/registry.hpp"
#include "util/rng.hpp"

namespace impact::attacks {
namespace {

sys::MemorySystem make_system(AttackKind kind,
                              std::uint64_t llc_mb = 8) {
  sys::SystemConfig config;
  config.llc_bytes = llc_mb << 20;
  config.mapping = recommended_mapping(kind);
  return sys::MemorySystem(config);
}

class AttackRoundTrip : public ::testing::TestWithParam<AttackKind> {};

TEST_P(AttackRoundTrip, RandomMessagesDecodeReliably) {
  auto system = make_system(GetParam());
  auto attack = make_attack(GetParam(), system);
  util::Xoshiro256 rng(77);
  std::size_t errors = 0;
  std::size_t bits = 0;
  for (int m = 0; m < 6; ++m) {
    const auto msg = util::BitVec::random(48, rng);
    const auto result = attack->transmit(msg);
    errors += result.report.bit_errors();
    bits += result.report.bits_total;
    EXPECT_EQ(result.sent, msg);
    EXPECT_EQ(result.decoded.size(), msg.size());
  }
  // Even the noisiest primitive stays under a few percent in the quiet
  // simulated system; IMPACT variants are error-free.
  EXPECT_LT(static_cast<double>(errors) / static_cast<double>(bits), 0.06);
}

TEST_P(AttackRoundTrip, ThroughputIsPositiveAndBounded) {
  auto system = make_system(GetParam());
  auto attack = make_attack(GetParam(), system);
  const auto report = attack->measure(64, 4, 5);
  const double mbps =
      report.throughput_mbps(util::kDefaultFrequency);
  EXPECT_GT(mbps, 0.05);
  EXPECT_LT(mbps, 40.0);  // Physically bounded by the probe cost.
}

INSTANTIATE_TEST_SUITE_P(
    AllAttacks, AttackRoundTrip,
    ::testing::Values(AttackKind::kDramaClflush, AttackKind::kDramaEviction,
                      AttackKind::kDmaEngine, AttackKind::kPnmOffChip,
                      AttackKind::kImpactPnm, AttackKind::kImpactPum,
                      AttackKind::kDirectAccess),
    [](const auto& info) {
      std::string name = to_string(info.param);
      std::string out;
      for (char c : name) {
        if (c != '-') out.push_back(c);
      }
      return out;
    });

TEST(AttackOrdering, ImpactBeatsProcessorCentricAttacks) {
  // The paper's headline: both IMPACT variants out-run every
  // processor-centric channel, and PuM edges out PnM.
  auto mbps = [&](AttackKind kind) {
    auto system = make_system(kind);
    auto attack = make_attack(kind, system);
    return attack->measure(64, 8, 9).throughput_mbps(
        util::kDefaultFrequency);
  };
  const double pnm = mbps(AttackKind::kImpactPnm);
  const double pum = mbps(AttackKind::kImpactPum);
  const double clflush = mbps(AttackKind::kDramaClflush);
  const double eviction = mbps(AttackKind::kDramaEviction);
  const double dma = mbps(AttackKind::kDmaEngine);
  EXPECT_GT(pum, pnm * 0.99);
  EXPECT_GT(pnm, dma * 1.5);
  EXPECT_GT(pnm, clflush * 2.0);
  EXPECT_GT(clflush, eviction);
  EXPECT_GT(dma, eviction);
}

TEST(AttackOrdering, ImpactThroughputIndependentOfLlcSize) {
  auto mbps = [&](std::uint64_t llc_mb) {
    auto system = make_system(AttackKind::kImpactPnm, llc_mb);
    auto attack = make_attack(AttackKind::kImpactPnm, system);
    return attack->measure(64, 6, 9).throughput_mbps(
        util::kDefaultFrequency);
  };
  const double small = mbps(2);
  const double large = mbps(64);
  EXPECT_NEAR(small, large, 0.05 * small);
}

TEST(AttackOrdering, DramaClflushDegradesWithLlcSize) {
  auto mbps = [&](std::uint64_t llc_mb) {
    auto system = make_system(AttackKind::kDramaClflush, llc_mb);
    auto attack = make_attack(AttackKind::kDramaClflush, system);
    return attack->measure(64, 6, 9).throughput_mbps(
        util::kDefaultFrequency);
  };
  EXPECT_GT(mbps(2), mbps(64) * 1.3);
}

TEST(ImpactPnmTest, CalibratedThresholdSeparatesClusters) {
  sys::SystemConfig config;
  sys::MemorySystem system(config);
  ImpactPnm attack(system);
  (void)attack.transmit(util::BitVec::alternating(16));
  const double t = attack.threshold();
  for (std::size_t i = 0; i < 16; ++i) {
    const double latency = attack.last_latencies()[i];
    if (i % 2 == 1) {
      EXPECT_GT(latency, t);
    } else {
      EXPECT_LT(latency, t);
    }
  }
}

TEST(ImpactPnmTest, AllZerosAndAllOnes) {
  sys::SystemConfig config;
  sys::MemorySystem system(config);
  ImpactPnm attack(system);
  auto r = attack.transmit(util::BitVec(32, false));
  EXPECT_EQ(r.report.bit_errors(), 0u);
  r = attack.transmit(util::BitVec(32, true));
  EXPECT_EQ(r.report.bit_errors(), 0u);
}

TEST(ImpactPnmTest, SenderStaysMemorySide) {
  sys::SystemConfig config;
  sys::MemorySystem system(config);
  ImpactPnm attack(system);
  (void)attack.measure(64, 4, 3);
  // The PMU bypass worked: no sender PEI was routed host-side.
  EXPECT_EQ(attack.sender_pei().pmu().stats().host_decisions, 0u);
  EXPECT_EQ(attack.receiver_pei().pmu().stats().host_decisions, 0u);
}

TEST(ImpactPnmTest, MessageSizesBeyondBankCount) {
  sys::SystemConfig config;
  sys::MemorySystem system(config);
  ImpactPnm attack(system);
  util::Xoshiro256 rng(8);
  const auto msg = util::BitVec::random(200, rng);  // > 16 banks, wraps.
  const auto r = attack.transmit(msg);
  EXPECT_EQ(r.report.bit_errors(), 0u);
}

TEST(ImpactPumTest, SingleRowCloneCarriesSixteenBits) {
  sys::SystemConfig config;
  sys::MemorySystem system(config);
  ImpactPum attack(system);
  util::Xoshiro256 rng(10);
  const auto msg = util::BitVec::random(16, rng);
  const auto r = attack.transmit(msg);
  EXPECT_EQ(r.decoded, msg);
  // Sender cost is a single clone + sync: far below 16 PEI executions.
  EXPECT_LT(r.report.sender_cycles, 1200u);
}

TEST(ImpactPumTest, SenderFasterThanPnmSenderByOrderOfMagnitude) {
  sys::SystemConfig config;
  const auto msg = util::BitVec(16, true);
  util::Cycle pnm_sender = 0;
  util::Cycle pum_sender = 0;
  {
    sys::MemorySystem system(config);
    ImpactPnm attack(system);
    (void)attack.transmit(msg);
    pnm_sender = attack.transmit(msg).report.sender_cycles;
  }
  {
    sys::MemorySystem system(config);
    ImpactPum attack(system);
    (void)attack.transmit(msg);
    pum_sender = attack.transmit(msg).report.sender_cycles;
  }
  EXPECT_GT(pnm_sender, 5 * pum_sender);  // Paper: 14x.
}

TEST(ImpactPumTest, WorksWithFewerBanksThanDefault) {
  sys::SystemConfig config;
  sys::MemorySystem system(config);
  ImpactPumConfig pum_config;
  pum_config.banks = 8;
  ImpactPum attack(system, pum_config);
  util::Xoshiro256 rng(12);
  const auto r = attack.transmit(util::BitVec::random(24, rng));
  EXPECT_EQ(r.report.bit_errors(), 0u);
}

TEST(PnmOffChipTest, HostRateGrowsWithLlc) {
  sys::SystemConfig small_cfg;
  small_cfg.llc_bytes = 2ull << 20;
  sys::MemorySystem small_sys(small_cfg);
  PnmOffChip small_attack(small_sys);

  sys::SystemConfig large_cfg;
  large_cfg.llc_bytes = 64ull << 20;
  sys::MemorySystem large_sys(large_cfg);
  PnmOffChip large_attack(large_sys);

  EXPECT_LT(small_attack.host_rate(), large_attack.host_rate());
}

}  // namespace
}  // namespace impact::attacks
