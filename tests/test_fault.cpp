// Fault-injection framework tests: injector determinism and validation,
// every fault kind observably firing at its seam, bounded semaphore waits,
// the BackgroundNoise frontier contract, fault-free bit-identity, sweep
// determinism under faults across pool sizes, and fault-tolerant sweep
// execution (retry, isolation, structured error reports).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "attacks/impact_pnm.hpp"
#include "attacks/impact_pum.hpp"
#include "channel/protocol.hpp"
#include "exec/sweep.hpp"
#include "exec/thread_pool.hpp"
#include "fault/injector.hpp"
#include "sys/noise.hpp"
#include "sys/sync.hpp"
#include "sys/system.hpp"
#include "util/bitvec.hpp"
#include "util/rng.hpp"

namespace impact {
namespace {

using fault::FaultConfig;
using fault::FaultKind;
using fault::Injector;

std::vector<FaultConfig> one_fault(FaultKind kind, double p,
                                   util::Cycle magnitude = 0) {
  return {FaultConfig{kind, p, magnitude, 0, ~0ull}};
}

// --- Injector basics -----------------------------------------------------

TEST(FaultInjector, ValidatesConfigs) {
  EXPECT_THROW(Injector(1, one_fault(FaultKind::kDramJitter, -0.1)),
               std::invalid_argument);
  EXPECT_THROW(Injector(1, one_fault(FaultKind::kDramJitter, 1.5)),
               std::invalid_argument);
  FaultConfig bad_window{FaultKind::kDramJitter, 0.5, 100, 200, 100};
  EXPECT_THROW(Injector(1, {bad_window}), std::invalid_argument);
}

TEST(FaultInjector, SameSeedSameDecisionSequence) {
  Injector a(99, Injector::profile("heavy"));
  Injector b(99, Injector::profile("heavy"));
  for (util::Cycle t = 0; t < 2000; t += 10) {
    ASSERT_EQ(a.access_jitter(t), b.access_jitter(t));
    ASSERT_EQ(a.drop_post(t), b.drop_post(t));
    ASSERT_EQ(a.drop_rowclone_leg(t), b.drop_rowclone_leg(t));
  }
  EXPECT_EQ(a.counters().total_fired(), b.counters().total_fired());
  EXPECT_GT(a.counters().total_fired(), 0u);
}

TEST(FaultInjector, StreamsAreIndependentAcrossSeams) {
  // Consulting one seam must not perturb another seam's decision sequence.
  Injector lone(7, Injector::profile("heavy"));
  Injector noisy(7, Injector::profile("heavy"));
  std::vector<util::Cycle> lone_jitter;
  std::vector<util::Cycle> noisy_jitter;
  for (util::Cycle t = 0; t < 1000; t += 10) {
    lone_jitter.push_back(lone.access_jitter(t));
    (void)noisy.drop_post(t);  // Extra traffic on an unrelated seam.
    (void)noisy.clock_drift(t);
    noisy_jitter.push_back(noisy.access_jitter(t));
  }
  EXPECT_EQ(lone_jitter, noisy_jitter);
}

TEST(FaultInjector, ActivationWindowGatesFiring) {
  std::vector<FaultConfig> faults = {
      FaultConfig{FaultKind::kSemaphoreDrop, 1.0, 0, 1000, 2000}};
  Injector inj(5, faults);
  EXPECT_FALSE(inj.drop_post(999));
  EXPECT_TRUE(inj.drop_post(1000));
  EXPECT_TRUE(inj.drop_post(2000));
  EXPECT_FALSE(inj.drop_post(2001));
  EXPECT_EQ(inj.counters().fired_of(FaultKind::kSemaphoreDrop), 2u);
  EXPECT_EQ(inj.counters()
                .opportunities[static_cast<std::size_t>(
                    FaultKind::kSemaphoreDrop)],
            4u);
}

TEST(FaultInjector, ProfilesAndEnv) {
  EXPECT_TRUE(Injector::profile("off").empty());
  EXPECT_FALSE(Injector::profile("light").empty());
  EXPECT_EQ(Injector::profile("heavy").size(), fault::kFaultKinds);
  EXPECT_THROW(Injector::profile("bogus"), std::invalid_argument);

  ::setenv("IMPACT_FAULTS", "light", 1);
  auto env = Injector::profile_from_env();
  ASSERT_TRUE(env.has_value());
  EXPECT_EQ(env->size(), Injector::profile("light").size());
  ::setenv("IMPACT_FAULTS", "off", 1);
  EXPECT_FALSE(Injector::profile_from_env().has_value());
  ::unsetenv("IMPACT_FAULTS");
  EXPECT_FALSE(Injector::profile_from_env().has_value());
}

// --- Bounded semaphore waits (satellite: no more hard-abort) -------------

TEST(SimSemaphoreWaitUntil, AcquiresPendingPostLikeWait) {
  sys::SimSemaphore sem_a(0, 30);
  sys::SimSemaphore sem_b(0, 30);
  (void)sem_a.post(100);
  (void)sem_b.post(100);
  const util::Cycle via_wait = sem_a.wait(50);
  const auto via_until = sem_b.wait_until(50, 50 + 20000);
  EXPECT_TRUE(via_until.acquired());
  EXPECT_EQ(via_until.now, via_wait);  // Identical cost on the happy path.
}

TEST(SimSemaphoreWaitUntil, TimesOutInsteadOfAborting) {
  sys::SimSemaphore sem(0, 30);
  const auto r = sem.wait_until(500, 1500);
  EXPECT_FALSE(r.acquired());
  EXPECT_EQ(r.now, 1500u + 30u);  // Spun to the deadline, then gave up.
}

TEST(SimSemaphoreWaitUntil, LatePostStaysPendingForNextWait) {
  sys::SimSemaphore sem(0, 30);
  (void)sem.post(2000);  // Arrives after the deadline below.
  const auto timed_out = sem.wait_until(0, 1000);
  EXPECT_FALSE(timed_out.acquired());
  EXPECT_EQ(sem.value(), 1u);  // Not consumed by the failed wait.
  const auto acquired = sem.wait_until(timed_out.now, 5000);
  EXPECT_TRUE(acquired.acquired());
}

TEST(SimSemaphoreWaitUntil, RejectsDeadlineBeforeNow) {
  sys::SimSemaphore sem;
  EXPECT_THROW((void)sem.wait_until(100, 99), std::invalid_argument);
}

TEST(SimSemaphoreWait, StillThrowsOnMissedPost) {
  sys::SimSemaphore sem;
  EXPECT_THROW((void)sem.wait(0), std::invalid_argument);
}

// --- BackgroundNoise frontier contract -----------------------------------

TEST(BackgroundNoise, RejectsRewoundFrontierRecoverably) {
  sys::MemorySystem system{sys::SystemConfig{}};
  sys::NoiseConfig config;
  config.accesses_per_kilocycle = 50.0;
  sys::BackgroundNoise noise(config, system, attacks::kVictim);
  noise.advance(10000);
  const auto issued = noise.accesses_issued();
  EXPECT_GT(issued, 0u);
  EXPECT_EQ(noise.frontier(), 10000u);
  EXPECT_THROW(noise.advance(9999), std::invalid_argument);
  // The failed call changed nothing; the process continues.
  EXPECT_EQ(noise.accesses_issued(), issued);
  EXPECT_EQ(noise.frontier(), 10000u);
  noise.advance(20000);
  EXPECT_GT(noise.accesses_issued(), issued);
}

// --- Every fault kind fires observably ------------------------------------

TEST(FaultKinds, DramJitterInflatesObservedLatency) {
  sys::SystemConfig config;
  sys::MemorySystem clean_sys(config);
  attacks::ImpactPnm clean(clean_sys);
  const auto msg = util::BitVec::alternating(32);
  const auto clean_result = clean.transmit(msg);

  sys::MemorySystem faulty_sys(config);
  Injector inj(11, one_fault(FaultKind::kDramJitter, 1.0, 500));
  faulty_sys.set_fault_injector(&inj);
  attacks::ImpactPnm faulty(faulty_sys);
  const auto faulty_result = faulty.transmit(msg);

  EXPECT_GT(inj.counters().fired_of(FaultKind::kDramJitter), 0u);
  EXPECT_GT(faulty_result.report.elapsed_cycles,
            clean_result.report.elapsed_cycles);
}

TEST(FaultKinds, RowCloneDropFlipsPumBits) {
  sys::SystemConfig config;
  sys::MemorySystem system(config);
  attacks::ImpactPum attack(system);
  // Calibrate fault-free, then fail sender clones: transmitted 1s vanish.
  (void)attack.transmit(util::BitVec::alternating(16));
  Injector inj(13, one_fault(FaultKind::kRowCloneDrop, 1.0));
  system.set_fault_injector(&inj);
  const auto r = attack.transmit(util::BitVec(16, true));
  system.set_fault_injector(nullptr);
  EXPECT_GT(inj.counters().fired_of(FaultKind::kRowCloneDrop), 0u);
  EXPECT_GT(r.report.bit_errors(), 0u);
}

TEST(FaultKinds, RefreshStormDisturbsTheChannel) {
  sys::SystemConfig config;
  sys::MemorySystem system(config);
  attacks::ImpactPnm attack(system);
  (void)attack.transmit(util::BitVec::alternating(16));  // Calibrate clean.
  Injector inj(17, one_fault(FaultKind::kRefreshStorm, 1.0));
  system.set_fault_injector(&inj);
  const auto r = attack.transmit(util::BitVec::alternating(64));
  system.set_fault_injector(nullptr);
  EXPECT_GT(inj.counters().fired_of(FaultKind::kRefreshStorm), 0u);
  // Every probe sees a precharged bank: 0s read as slow activations.
  EXPECT_GT(r.report.bit_errors(), 0u);
}

TEST(FaultKinds, SemaphoreDropForcesTimeoutsNotAborts) {
  sys::SystemConfig config;
  sys::MemorySystem system(config);
  Injector inj(19, one_fault(FaultKind::kSemaphoreDrop, 1.0));
  system.set_fault_injector(&inj);
  attacks::ImpactPnm attack(system);
  const auto r = attack.transmit(util::BitVec::alternating(32));
  EXPECT_GT(inj.counters().fired_of(FaultKind::kSemaphoreDrop), 0u);
  EXPECT_GT(attack.last_sync_timeouts(), 0u);
  EXPECT_EQ(r.sent.size(), 32u);  // Completed despite every post lost.
}

TEST(FaultKinds, SemaphoreDelaySlowsTheReceiver) {
  sys::SystemConfig config;
  sys::MemorySystem clean_sys(config);
  attacks::ImpactPnm clean(clean_sys);
  const auto msg = util::BitVec::alternating(64);
  const auto clean_r = clean.transmit(msg);

  sys::MemorySystem faulty_sys(config);
  Injector inj(23, one_fault(FaultKind::kSemaphoreDelay, 1.0, 5000));
  faulty_sys.set_fault_injector(&inj);
  attacks::ImpactPnm faulty(faulty_sys);
  const auto faulty_r = faulty.transmit(msg);
  EXPECT_GT(inj.counters().fired_of(FaultKind::kSemaphoreDelay), 0u);
  EXPECT_GT(faulty_r.report.receiver_cycles, clean_r.report.receiver_cycles);
}

TEST(FaultKinds, ClockDriftAdvancesTheReceiverClock) {
  sys::SystemConfig config;
  sys::MemorySystem clean_sys(config);
  attacks::ImpactPnm clean(clean_sys);
  const auto msg = util::BitVec::alternating(64);
  const auto clean_r = clean.transmit(msg);

  sys::MemorySystem faulty_sys(config);
  Injector inj(29, one_fault(FaultKind::kClockDrift, 1.0, 2000));
  faulty_sys.set_fault_injector(&inj);
  attacks::ImpactPnm faulty(faulty_sys);
  const auto faulty_r = faulty.transmit(msg);
  EXPECT_GT(inj.counters().fired_of(FaultKind::kClockDrift), 0u);
  EXPECT_GT(faulty_r.report.receiver_cycles, clean_r.report.receiver_cycles);
}

// --- Fault-free bit-identity ----------------------------------------------

TEST(FaultFree, EmptyInjectorIsBitIdenticalToNoInjector) {
  const auto msg = util::BitVec::alternating(64);
  sys::SystemConfig config;

  sys::MemorySystem bare_sys(config);
  attacks::ImpactPnm bare(bare_sys);
  const auto bare_r = bare.transmit(msg);

  sys::MemorySystem inj_sys(config);
  Injector inj(31, {});  // Attached but configured with zero faults.
  inj_sys.set_fault_injector(&inj);
  attacks::ImpactPnm with_inj(inj_sys);
  const auto inj_r = with_inj.transmit(msg);

  EXPECT_EQ(bare_r.decoded, inj_r.decoded);
  EXPECT_EQ(bare_r.report.elapsed_cycles, inj_r.report.elapsed_cycles);
  EXPECT_EQ(bare_r.report.sender_cycles, inj_r.report.sender_cycles);
  EXPECT_EQ(bare_r.report.receiver_cycles, inj_r.report.receiver_cycles);
  EXPECT_EQ(inj.counters().total_fired(), 0u);
}

// --- Sweep determinism under faults ---------------------------------------

struct CellResult {
  util::BitVec decoded;
  std::uint64_t fired = 0;
  util::Cycle elapsed = 0;

  bool operator==(const CellResult& o) const {
    return decoded == o.decoded && fired == o.fired && elapsed == o.elapsed;
  }
};

std::vector<CellResult> run_fault_sweep(exec::ThreadPool* pool) {
  constexpr std::size_t kCells = 12;
  constexpr std::uint64_t kBase = 2024;
  std::vector<CellResult> cells(kCells);
  exec::Sweep sweep(pool);
  for (std::size_t i = 0; i < kCells; ++i) {
    sweep.add("cell" + std::to_string(i), [&cells, i] {
      const std::uint64_t seed = exec::derive_seed(kBase, i);
      sys::MemorySystem system{sys::SystemConfig{}};
      Injector inj(seed, Injector::profile("heavy"));
      system.set_fault_injector(&inj);
      attacks::ImpactPnm attack(system);
      util::Xoshiro256 rng(seed);
      const auto r = attack.transmit(util::BitVec::random(48, rng));
      cells[i] = CellResult{r.decoded, inj.counters().total_fired(),
                            r.report.elapsed_cycles};
    });
  }
  sweep.run();
  return cells;
}

TEST(FaultSweep, BitIdenticalAcrossPoolSizes) {
  const auto serial = run_fault_sweep(nullptr);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    exec::ThreadPool pool(threads);
    const auto parallel = run_fault_sweep(&pool);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_TRUE(serial[i] == parallel[i]) << "cell " << i << " diverged "
                                            << "under " << threads
                                            << " threads";
    }
  }
}

// --- IMPACT_FAULTS env layering -------------------------------------------

TEST(FaultProfileEnv, TransferRecoversWithAmbientProfileLayeredIn) {
  // Base scenario: a 20% post-drop rate. When tools/check.sh runs the
  // suite with IMPACT_FAULTS=heavy, the heavy profile is layered on top —
  // the framed protocol must recover either way.
  auto faults = one_fault(FaultKind::kSemaphoreDrop, 0.2);
  if (const auto env = Injector::profile_from_env()) {
    faults.insert(faults.end(), env->begin(), env->end());
  }
  sys::MemorySystem system{sys::SystemConfig{}};
  attacks::ImpactPnm attack(system);
  (void)attack.transmit(util::BitVec::alternating(16));  // Calibrate clean.
  Injector inj(2718, faults);
  system.set_fault_injector(&inj);

  channel::ProtocolConfig config;
  config.payload_bits = 8;
  config.max_retries = 16;
  channel::FramedProtocol protocol(attack, config);
  util::Xoshiro256 rng(37);
  const auto msg = util::BitVec::random(48, rng);
  const auto r = protocol.send(msg);
  system.set_fault_injector(nullptr);

  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.residual_errors, 0u);
  EXPECT_GT(inj.counters().total_fired(), 0u);
}

// --- Fault-tolerant sweep execution ---------------------------------------

TEST(ResilientSweep, TransientFailuresAreRetriedToSuccess) {
  exec::Sweep sweep(nullptr);
  int attempts = 0;
  sweep.add("flaky", [&attempts] {
    if (++attempts < 3) throw exec::TransientError("injected hiccup");
  });
  exec::RetryPolicy policy;
  policy.max_attempts = 4;
  policy.backoff_base = std::chrono::microseconds{1};
  const auto report = sweep.run_resilient(policy);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.completed, 1u);
  EXPECT_EQ(report.retries, 2u);
  EXPECT_EQ(attempts, 3);
}

TEST(ResilientSweep, PermanentFailureIsIsolated) {
  exec::Sweep sweep(nullptr);
  std::vector<int> done;
  sweep.add("ok0", [&done] { done.push_back(0); });
  const auto broken = sweep.add("broken", [] {
    throw exec::TransientError("cell permanently down");
  });
  sweep.add("dependent", [&done] { done.push_back(2); }, {broken});
  sweep.add("ok3", [&done] { done.push_back(3); });
  exec::RetryPolicy policy;
  policy.max_attempts = 2;
  policy.backoff_base = std::chrono::microseconds{1};
  const auto report = sweep.run_resilient(policy);

  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.tasks, 4u);
  EXPECT_EQ(report.completed, 2u);  // ok0 and ok3 still produced.
  EXPECT_EQ(report.failed, 1u);
  EXPECT_EQ(report.skipped, 1u);
  EXPECT_EQ(done, (std::vector<int>{0, 3}));

  ASSERT_EQ(report.errors.size(), 2u);
  EXPECT_EQ(report.errors[0].task, broken);
  EXPECT_EQ(report.errors[0].label, "broken");
  EXPECT_EQ(report.errors[0].attempts, 2u);
  EXPECT_FALSE(report.errors[0].skipped);
  EXPECT_EQ(report.errors[0].message, "cell permanently down");
  EXPECT_TRUE(report.errors[1].skipped);
  EXPECT_EQ(report.errors[1].label, "dependent");
  EXPECT_EQ(report.errors[1].attempts, 0u);
  EXPECT_NE(report.summary().find("2/4"), std::string::npos);
}

TEST(ResilientSweep, NonTransientErrorsFailFastByDefault) {
  exec::Sweep sweep(nullptr);
  int attempts = 0;
  sweep.add("hard", [&attempts] {
    ++attempts;
    throw std::logic_error("programming error");
  });
  exec::RetryPolicy policy;
  policy.max_attempts = 5;
  policy.backoff_base = std::chrono::microseconds{1};
  const auto report = sweep.run_resilient(policy);
  EXPECT_EQ(report.failed, 1u);
  EXPECT_EQ(attempts, 1);  // No retry budget burned on a permanent bug.

  exec::Sweep retry_all_sweep(nullptr);
  int all_attempts = 0;
  retry_all_sweep.add("hard", [&all_attempts] {
    ++all_attempts;
    throw std::logic_error("still broken");
  });
  policy.retry_all = true;
  (void)retry_all_sweep.run_resilient(policy);
  EXPECT_EQ(all_attempts, 5);
}

TEST(ResilientSweep, ParallelIsolationMatchesSerial) {
  auto build = [](exec::Sweep& sweep, std::vector<std::atomic<int>>& runs) {
    const auto broken = sweep.add(
        "broken", [] { throw exec::TransientError("down"); });
    for (int i = 0; i < 6; ++i) {
      sweep.add("ok" + std::to_string(i),
                [&runs, i] { ++runs[static_cast<std::size_t>(i)]; });
    }
    sweep.add("child-of-broken", [] {}, {broken});
  };
  exec::RetryPolicy policy;
  policy.max_attempts = 2;
  policy.backoff_base = std::chrono::microseconds{1};

  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    exec::ThreadPool pool(threads);
    exec::Sweep sweep(&pool);
    std::vector<std::atomic<int>> runs(6);
    build(sweep, runs);
    const auto report = sweep.run_resilient(policy);
    EXPECT_EQ(report.completed, 6u) << threads << " threads";
    EXPECT_EQ(report.failed, 1u);
    EXPECT_EQ(report.skipped, 1u);
    EXPECT_EQ(report.retries, 1u);
    ASSERT_EQ(report.errors.size(), 2u);
    EXPECT_EQ(report.errors[0].label, "broken");
    EXPECT_EQ(report.errors[1].label, "child-of-broken");
    for (auto& r : runs) EXPECT_EQ(r.load(), 1);
  }
}

TEST(ResilientSweep, EmptySweepReportsCleanRun) {
  exec::Sweep sweep(nullptr);
  const auto report = sweep.run_resilient();
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.tasks, 0u);
}

}  // namespace
}  // namespace impact
