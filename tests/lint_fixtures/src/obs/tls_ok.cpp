// thread_local is allowed in the obs layer (per-thread telemetry
// scratch, mirroring src/obs/scope.cpp), so this file must be clean.
#include "util/base.hpp"

namespace fix::obs {

int* depth_slot() {
  thread_local int depth = 0;
  return &depth;
}

}  // namespace fix::obs
