// Seeded concurrency violations: mutable namespace-scope state, a
// mutable static data member, and a thread_local outside the obs
// allowlist — next to the instance-owned / constexpr clean forms.
#include "util/base.hpp"

namespace fix::pim {

int g_inflight = 0;  // global-state (line 8)

struct Stats {
  static int s_total;   // global-state (line 11)
  int per_instance = 0; // clean: instance member
};

int scratch_slot() {
  thread_local int scratch = 0;  // thread-local (line 16)
  return scratch;
}

constexpr int kLanes = 8;  // clean: constexpr namespace-scope state

}  // namespace fix::pim
