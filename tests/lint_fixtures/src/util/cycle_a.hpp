// Half of the seeded include cycle (with cycle_b.hpp).
#pragma once

#include "util/cycle_b.hpp"

namespace fix::util {
inline int a() { return 1; }
}  // namespace fix::util
