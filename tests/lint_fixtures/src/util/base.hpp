// Clean leaf header: the fixture tree's "util" layer. Everything here is
// rule-clean so it can double as the control in the counterpart tests.
#pragma once

namespace fix::util {

constexpr int kAnswer = 42;

inline int twice(int x) { return 2 * x; }

}  // namespace fix::util
