// Other half of the seeded include cycle (with cycle_a.hpp).
#pragma once

#include "util/cycle_a.hpp"

namespace fix::util {
inline int b() { return 2; }
}  // namespace fix::util
