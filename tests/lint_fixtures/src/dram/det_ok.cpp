// Clean counterparts for the determinism family: every stream's seed
// traces to derive_seed or a caller-supplied value, so nondet-* must
// stay quiet over this whole file.
#include <cstdint>
#include <random>

#include "util/base.hpp"

namespace fix::dram {

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index);

int derived_stream() {
  std::mt19937 rng(static_cast<unsigned>(derive_seed(7, 0)));
  return static_cast<int>(rng());
}

int parameter_stream(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  return static_cast<int>(rng());
}

class Holder {
 public:
  explicit Holder(std::uint64_t seed) : rng_(seed) {}

 private:
  std::mt19937_64 rng_;  // Member declaration: a type use, not a stream.
};

}  // namespace fix::dram
