// Suppression fixture: the same back-edge as backedge.hpp, but carrying
// an inline justification; the test asserts it is NOT reported.
#pragma once

// SIMLINT-ALLOW(layering): fixture-declared exception.
#include "channel/wire.hpp"

namespace fix::dram {
inline int allowed_width() { return fix::channel::lanes(); }
}  // namespace fix::dram
