// Seeded determinism violations: exactly one per nondet-* rule family,
// each on a line the test pins by number.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

#include "util/base.hpp"

namespace fix::dram {

unsigned ambient_entropy() {
  std::random_device dev;  // nondet-random-device (line 13)
  return dev();
}

int hidden_global_stream() {
  return std::rand();  // nondet-rand (line 18)
}

long host_wallclock() {
  return static_cast<long>(std::time(nullptr));  // nondet-wallclock (line 22)
}

long host_chrono() {
  return std::chrono::steady_clock::now()  // nondet-chrono-clock (line 26)
      .time_since_epoch()
      .count();
}

int frozen_seed() {
  std::mt19937 rng{42};  // nondet-seed (line 32)
  return static_cast<int>(rng());
}

}  // namespace fix::dram
