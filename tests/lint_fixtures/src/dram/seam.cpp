// Seeded seam violation: an observer deref with no null check in its
// function, next to the two guarded clean forms.
#include "util/base.hpp"

namespace fix::dram {

struct Observer {
  virtual void on_command(int row) = 0;
  virtual ~Observer() = default;
};

class Bank {
 public:
  void unguarded(int row) {
    observer_->on_command(row);  // seam-unguarded (line 15)
  }

  void guarded(int row) {
    if (observer_ != nullptr) observer_->on_command(row);  // clean
  }

  void boolean_guarded(int row) {
    if (!observer_) return;
    observer_->on_command(row);  // clean: guarded earlier in the function
  }

 private:
  Observer* observer_ = nullptr;
};

}  // namespace fix::dram
