// Seeded hot-path violations inside a marked region; the identical
// constructs after SIMLINT-HOT-END must be clean.
#include <iostream>
#include <string>

#include "util/base.hpp"

namespace fix::dram {

int counter(const char* name);

// SIMLINT-HOT-BEGIN: fixture fast path.
inline int hot_access(int row) {
  std::string label = "row";               // hot-string (line 14)
  std::cout << label << std::endl;         // hot-endl (line 15)
  return counter("dram.row_hits") + row;   // hot-resolve (line 16)
}
// SIMLINT-HOT-END

inline int cold_access(int row) {
  std::string label = "row";
  std::cout << label << std::endl;
  return counter("dram.row_hits") + row;
}

}  // namespace fix::dram
