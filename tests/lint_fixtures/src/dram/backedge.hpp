// Seeded layering violation: dram (rank 2) must not include channel
// (rank 5). This is the synthetic back-edge the acceptance test pins.
#pragma once

#include "channel/wire.hpp"

namespace fix::dram {
inline int width() { return fix::channel::lanes(); }
}  // namespace fix::dram
