// Inline suppressions: the same-line form, the line-above form, and the
// '*' wildcard. None of these may be reported.
#include <cstdlib>
#include <random>

#include "util/base.hpp"

namespace fix::dram {

int justified_entropy() {
  std::random_device dev;  // SIMLINT-ALLOW(nondet-random-device): fixture.
  return static_cast<int>(dev());
}

int justified_seed() {
  // SIMLINT-ALLOW(nondet-seed): recorded fixture stream.
  std::mt19937 rng{7};
  return static_cast<int>(rng());
}

int wildcard() {
  return std::rand();  // SIMLINT-ALLOW(*): anything goes here.
}

}  // namespace fix::dram
