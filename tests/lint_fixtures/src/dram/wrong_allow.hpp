// A suppression naming the WRONG rule must not mask the finding: the
// back-edge below still has to be reported as a layering violation.
#pragma once

// SIMLINT-ALLOW(nondet-rand): wrong rule on purpose.
#include "channel/wire.hpp"

namespace fix::dram {
inline int wrong_allow_width() { return fix::channel::lanes(); }
}  // namespace fix::dram
