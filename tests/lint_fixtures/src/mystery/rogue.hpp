// A layer nobody registered: any cross-layer edge it takes must be
// reported until the DAG (and docs) learn about it.
#pragma once

#include "util/base.hpp"

namespace fix::mystery {
inline int rogue() { return fix::util::kAnswer; }
}  // namespace fix::mystery
