// Seeded unbounded-wait violations: a bare cv.wait and a thread join;
// the bounded (wait_for) and suppressed forms below must stay clean.
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace fixture {

void blocks_forever(std::condition_variable& cv, std::mutex& mu,
                    bool& done, std::thread& worker) {
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done; });
  worker.join();
}

void bounded_wait(std::condition_variable& cv, std::mutex& mu, bool& done) {
  std::unique_lock<std::mutex> lock(mu);
  cv.wait_for(lock, std::chrono::milliseconds(5), [&] { return done; });
}

void justified(std::thread& worker) {
  // SIMLINT-ALLOW(unbounded-wait): the worker exits with the test body.
  worker.join();
}

}  // namespace fixture
