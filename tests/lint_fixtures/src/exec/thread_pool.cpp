// Allowlisted file: the pool's worker loop is the one sanctioned
// indefinite block (shutdown sets the stop flag under the same mutex), so
// its bare wait/join calls must produce no findings.
#include <condition_variable>
#include <mutex>
#include <thread>

namespace fixture {

void worker_loop(std::condition_variable& cv, std::mutex& mu, bool& stop,
                 std::thread& worker) {
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return stop; });
  worker.join();
}

}  // namespace fixture
