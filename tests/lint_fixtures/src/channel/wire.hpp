// Clean mid-layer header. Its util include is a downward edge (rank 0
// from rank 5), so the layering rule must stay quiet here.
#pragma once

#include "util/base.hpp"

namespace fix::channel {
inline int lanes() { return fix::util::twice(4); }
}  // namespace fix::channel
