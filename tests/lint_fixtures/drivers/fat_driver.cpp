// Seeded violations: a driver TU reaching past the lab facade.
#include "lab/driver.hpp"
#include "attacks/impact_pnm.hpp"
#include "util/rng.hpp"
// SIMLINT-ALLOW(driver-include): sanctioned exception, for the test.
#include "sys/system.hpp"

int main() { return 0; }
