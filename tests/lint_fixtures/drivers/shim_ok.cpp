// Clean driver shim: a layerless TU whose only project include is a lab/
// header — exactly what the driver-include rule demands.
#include "lab/driver.hpp"

int main(int argc, char** argv) {
  return impact::lab::run_named("fig2", argc, argv);
}
