// Unit tests: CSV export.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/csv.hpp"

namespace impact::util {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(CsvWriter, WritesHeaderAndRows) {
  const std::string dir = ::testing::TempDir();
  CsvWriter csv(dir, "impact_csv_test", {"a", "b"});
  csv.add_row({"1", "2"});
  csv.add_row({"x,y", "he said \"hi\""});
  const auto content = slurp(csv.path());
  EXPECT_EQ(content,
            "a,b\n1,2\n\"x,y\",\"he said \"\"hi\"\"\"\n");
  std::remove(csv.path().c_str());
}

TEST(CsvWriter, RejectsWidthMismatch) {
  const std::string dir = ::testing::TempDir();
  CsvWriter csv(dir, "impact_csv_test2", {"a", "b"});
  EXPECT_THROW(csv.add_row({"only-one"}), std::invalid_argument);
  std::remove(csv.path().c_str());
}

TEST(CsvWriter, RejectsUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz", "f", {"a"}),
               std::invalid_argument);
}

TEST(CsvWriter, EnvLookup) {
  unsetenv("IMPACT_RESULTS_DIR");
  EXPECT_FALSE(CsvWriter::results_dir_from_env().has_value());
  setenv("IMPACT_RESULTS_DIR", "/tmp", 1);
  ASSERT_TRUE(CsvWriter::results_dir_from_env().has_value());
  EXPECT_EQ(*CsvWriter::results_dir_from_env(), "/tmp");
  unsetenv("IMPACT_RESULTS_DIR");
}

}  // namespace
}  // namespace impact::util
