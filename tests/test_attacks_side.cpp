// Integration tests: the read-mapping side channel.
#include <gtest/gtest.h>

#include "attacks/side_channel.hpp"

namespace impact::attacks {
namespace {

SideChannelConfig small_config(std::uint32_t banks) {
  SideChannelConfig config;
  config.banks = banks;
  config.genome_length = 1ull << 17;
  config.reads = 8;
  config.table.buckets = 16384;
  return config;
}

TEST(SideChannelTest, LeaksVictimAccessesAtLowError) {
  ReadMappingSpy spy(small_config(1024));
  const auto r = spy.run();
  EXPECT_GT(r.probes.observations, 1000u);
  EXPECT_LT(r.probes.error_rate(), 0.06);  // Paper: <5% at 1024 banks.
  EXPECT_GT(r.probes.throughput_mbps(2.6), 3.0);
  EXPECT_GT(r.victim_seed_events, 100u);
  EXPECT_GT(r.capture_rate(), 0.15);
  EXPECT_GT(r.victim_accuracy, 0.5);
  EXPECT_GT(r.threshold, 0.0);
}

TEST(SideChannelTest, ErrorGrowsAndCaptureShrinksWithBanks) {
  ReadMappingSpy spy_small(small_config(1024));
  const auto small = spy_small.run();
  ReadMappingSpy spy_large(small_config(4096));
  const auto large = spy_large.run();
  EXPECT_GT(large.probes.error_rate(), small.probes.error_rate());
  EXPECT_LT(large.capture_rate(), small.capture_rate());
  EXPECT_LT(large.capture_throughput_mbps(2.6),
            small.capture_throughput_mbps(2.6));
}

TEST(SideChannelTest, PrecisionImprovesWithBanks) {
  ReadMappingSpy spy_small(small_config(1024));
  ReadMappingSpy spy_large(small_config(4096));
  const auto small = spy_small.run();
  const auto large = spy_large.run();
  EXPECT_EQ(small.precision.entries_per_bank, 16u);
  EXPECT_EQ(large.precision.entries_per_bank, 4u);
  EXPECT_GT(large.precision.bits_per_observation,
            small.precision.bits_per_observation);
}

TEST(SideChannelTest, DeterministicAcrossRuns) {
  ReadMappingSpy a(small_config(1024));
  ReadMappingSpy b(small_config(1024));
  const auto ra = a.run();
  const auto rb = b.run();
  EXPECT_EQ(ra.probes.observations, rb.probes.observations);
  EXPECT_EQ(ra.probes.correct, rb.probes.correct);
  EXPECT_EQ(ra.victim_seed_events, rb.victim_seed_events);
}

TEST(SideChannelTest, CamouflageDegradesAttackerAtProportionalCost) {
  auto cfg = small_config(1024);
  attacks::ReadMappingSpy undefended(cfg);
  const auto open = undefended.run();

  cfg.dummy_probes_per_touch = 4;
  attacks::ReadMappingSpy defended(cfg);
  const auto priv = defended.run();

  EXPECT_GT(priv.probes.error_rate(), 4 * open.probes.error_rate());
  EXPECT_GT(priv.probes.error_rate(), 0.25);
  EXPECT_GT(priv.victim_slowdown, 1.5);
  EXPECT_LT(priv.victim_slowdown, 6.0);
  EXPECT_DOUBLE_EQ(open.victim_slowdown, 1.0);
}

TEST(SideChannelTest, RejectsTinyDevices) {
  SideChannelConfig config;
  config.banks = 8;
  EXPECT_THROW(ReadMappingSpy{config}, std::invalid_argument);
}

}  // namespace
}  // namespace impact::attacks
