// Crash tolerance (src/resil/ + the guarded sweep engine): journal
// recovery (round-trip, torn tail, corrupt entries, identity mismatch),
// resume semantics (journal = proof, cache = bytes), kill-torture
// (SIGKILL a child mid-sweep, resume, pin bit-identity against an
// uninterrupted reference — serial and pools {2,8}), deadlines + the
// watchdog, admission-gate shedding, and the recoverable-env fixes.
#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "exec/sweep.hpp"
#include "fault/injector.hpp"
#include "resil/journal.hpp"
#include "store/cell_runner.hpp"

namespace impact {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& tag) {
  const fs::path dir =
      fs::path(::testing::TempDir()) /
      ("resil_" + tag + "_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ---------------------------------------------------------------------------
// Kill-torture: the acceptance criterion of the whole extension. A child
// process runs a journaled, disk-cached CellRunner grid and SIGKILLs
// itself mid-sweep (deterministically: the victim cell first waits until
// the journal holds at least one commit record, so a resume always has
// history to replay). A second child with the same store + journal resumes
// and must retire the same cells with the same bytes as an uninterrupted
// reference run. Defined first in this file so no earlier in-process test
// has started (and joined) threads before the forks.
// ---------------------------------------------------------------------------

constexpr std::size_t kTortureCells = 8;

store::Fingerprint torture_fingerprint(std::size_t i) {
  store::Canon c;
  c.field("cell", "resil.torture");
  c.field("i", static_cast<std::uint64_t>(i));
  return c.fingerprint();
}

/// Runs the torture grid in the calling (child) process and writes a diag
/// file: "tasks completed failed skipped resumed\n" followed by the
/// rendered rows. `kill_at >= 0` makes that cell SIGKILL the process on
/// the first run only (a marker file distinguishes runs).
void child_run_grid(const fs::path& base, unsigned pool_threads, int kill_at,
                    const fs::path& diag) {
  store::ResultCache::Options cache_options;
  cache_options.disk_dir = (base / "store").string();
  store::ResultCache cache(cache_options);
  store::WorkloadStore workloads;
  std::unique_ptr<exec::ThreadPool> pool;
  if (pool_threads > 1) {
    pool = std::make_unique<exec::ThreadPool>(pool_threads);
  }
  resil::Journal::Options journal_options;
  journal_options.path = (base / "journal").string();
  resil::Journal journal(journal_options);

  store::CellRunner runner(cache, workloads, pool.get());
  runner.set_journal(&journal);

  const fs::path marker = base / "killed";
  const auto result = runner.rows(
      "resil.torture", kTortureCells, torture_fingerprint,
      [&](std::size_t i) {
        if (kill_at >= 0 && i == static_cast<std::size_t>(kill_at) &&
            !fs::exists(marker)) {
          { std::ofstream out(marker); out << "1\n"; }
          // Guarantee the resume has history: wait for one durable commit
          // record before dying. Serial runs already committed every
          // earlier cell; parallel runs wait out their siblings.
          const auto give_up =
              std::chrono::steady_clock::now() + std::chrono::seconds(30);
          while (read_file(base / "journal").find("\ncommit ") ==
                     std::string::npos &&
                 std::chrono::steady_clock::now() < give_up) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
          (void)::raise(SIGKILL);
        }
        return std::vector<std::string>{std::to_string(i),
                                        std::to_string(i * i + 7)};
      });

  std::ofstream out(diag, std::ios::binary);
  out << result.report.tasks << ' ' << result.report.completed << ' '
      << result.report.failed << ' ' << result.report.skipped << ' '
      << result.report.resumed << '\n';
  for (const auto& row : result.rows) {
    for (const auto& cell : row) out << cell << '\x1f';
    out << '\n';
  }
}

/// Forks, runs the grid in the child, and returns the child's wait status.
int spawn_grid(const fs::path& base, unsigned pool_threads, int kill_at,
               const fs::path& diag) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    child_run_grid(base, pool_threads, kill_at, diag);
    ::_exit(0);
  }
  EXPECT_GT(pid, 0) << "fork failed";
  int status = 0;
  (void)::waitpid(pid, &status, 0);
  return status;
}

struct DiagOutcome {
  std::size_t tasks = 0;
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::size_t skipped = 0;
  std::size_t resumed = 0;
  std::string rows;
};

DiagOutcome parse_diag(const fs::path& diag) {
  DiagOutcome out;
  const std::string bytes = read_file(diag);
  std::istringstream in(bytes);
  in >> out.tasks >> out.completed >> out.failed >> out.skipped >>
      out.resumed;
  const auto newline = bytes.find('\n');
  if (newline != std::string::npos) out.rows = bytes.substr(newline + 1);
  return out;
}

TEST(ResilKillTorture, ResumedRunReproducesUninterruptedRun) {
  for (const unsigned threads : {1u, 2u, 8u}) {
    SCOPED_TRACE("pool threads = " + std::to_string(threads));
    const fs::path ref_base = fresh_dir("ref" + std::to_string(threads));
    const fs::path base = fresh_dir("tort" + std::to_string(threads));

    // Uninterrupted reference (own store + journal).
    const int ref_status =
        spawn_grid(ref_base, threads, -1, ref_base / "diag");
    ASSERT_TRUE(WIFEXITED(ref_status) && WEXITSTATUS(ref_status) == 0);
    const DiagOutcome ref = parse_diag(ref_base / "diag");
    ASSERT_EQ(ref.tasks, kTortureCells);
    ASSERT_EQ(ref.completed, kTortureCells);
    ASSERT_EQ(ref.resumed, 0u);

    // Victim: dies by SIGKILL mid-sweep, after >= 1 durable commit.
    const int killed_status = spawn_grid(base, threads, 3, base / "unused");
    ASSERT_TRUE(WIFSIGNALED(killed_status));
    ASSERT_EQ(WTERMSIG(killed_status), SIGKILL);
    ASSERT_FALSE(fs::exists(base / "unused")) << "victim wrote its diag";
    ASSERT_TRUE(fs::exists(base / "journal"));

    // Resume with the same store + journal: the grid must finish and be
    // bit-identical to the reference (resumed/cache_hits legitimately
    // differ — they describe *how* cells were satisfied, not the result).
    const int resumed_status = spawn_grid(base, threads, 3, base / "diag");
    ASSERT_TRUE(WIFEXITED(resumed_status) &&
                WEXITSTATUS(resumed_status) == 0);
    const DiagOutcome resumed = parse_diag(base / "diag");
    EXPECT_EQ(resumed.tasks, ref.tasks);
    EXPECT_EQ(resumed.completed, ref.completed);
    EXPECT_EQ(resumed.failed, ref.failed);
    EXPECT_EQ(resumed.skipped, ref.skipped);
    EXPECT_EQ(resumed.rows, ref.rows);
    EXPECT_GE(resumed.resumed, 1u)
        << "the resumed run replayed nothing from the journal";

    fs::remove_all(ref_base);
    fs::remove_all(base);
  }
}

// ---------------------------------------------------------------------------
// Journal recovery.
// ---------------------------------------------------------------------------

resil::Journal::Options journal_at(const fs::path& path) {
  resil::Journal::Options options;
  options.path = path.string();
  return options;
}

TEST(ResilJournal, RoundTripRecoversCommittedSet) {
  const fs::path dir = fresh_dir("roundtrip");
  const fs::path path = dir / "j";
  {
    resil::Journal j(journal_at(path));
    j.bind(0x1111, 0x2222, 4);
    j.cell_begin(0, "a");
    j.cell_commit(0);
    j.cell_commit(2);
    j.cell_fail(1, "boom");
    exec::RunReport report;
    report.completed = 2;
    j.end_run(report);
    EXPECT_FALSE(j.stats().resumed);
  }
  resil::Journal j2(journal_at(path));
  j2.bind(0x1111, 0x2222, 4);
  EXPECT_TRUE(j2.committed(0));
  EXPECT_FALSE(j2.committed(1));  // fail is not commit.
  EXPECT_TRUE(j2.committed(2));
  EXPECT_FALSE(j2.committed(3));
  const resil::Journal::Stats stats = j2.stats();
  EXPECT_TRUE(stats.resumed);
  EXPECT_EQ(stats.committed_recovered, 2u);
  EXPECT_EQ(stats.truncated_bytes, 0u);
  fs::remove_all(dir);
}

TEST(ResilJournal, TornTailIsTruncatedAndAppendsStillWork) {
  const fs::path dir = fresh_dir("torn");
  const fs::path path = dir / "j";
  {
    resil::Journal j(journal_at(path));
    j.bind(7, 9, 4);
    j.cell_commit(0);
    j.cell_commit(1);
  }
  const std::size_t intact_size = fs::file_size(path);
  {
    // The torn tail of a crash mid-append: a record with no CRC suffix.
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "commit 3";
  }
  {
    resil::Journal j(journal_at(path));
    j.bind(7, 9, 4);
    EXPECT_TRUE(j.committed(0));
    EXPECT_TRUE(j.committed(1));
    EXPECT_FALSE(j.committed(3)) << "a torn record must not count";
    EXPECT_GT(j.stats().truncated_bytes, 0u);
    // Recovery physically truncated before the bind's new run record.
    j.cell_commit(3);
  }
  EXPECT_GT(fs::file_size(path), intact_size);
  resil::Journal j3(journal_at(path));
  j3.bind(7, 9, 4);
  EXPECT_TRUE(j3.committed(3)) << "appends after recovery must persist";
  fs::remove_all(dir);
}

TEST(ResilJournal, CorruptEntryDropsItselfAndEverythingAfter) {
  const fs::path dir = fresh_dir("corrupt");
  const fs::path path = dir / "j";
  {
    resil::Journal j(journal_at(path));
    j.bind(5, 6, 4);
    j.cell_commit(0);
    j.cell_commit(1);
    j.cell_commit(2);
  }
  std::string bytes = read_file(path);
  const std::size_t pos = bytes.find("commit 1 #");
  ASSERT_NE(pos, std::string::npos);
  // Flip the first CRC digit: the entry no longer verifies, and a suffix
  // of an unverifiable entry cannot be trusted either.
  const std::size_t crc_pos = pos + std::string("commit 1 #").size();
  bytes[crc_pos] = bytes[crc_pos] == 'f' ? '0' : 'f';
  { std::ofstream out(path, std::ios::binary); out << bytes; }

  resil::Journal j(journal_at(path));
  j.bind(5, 6, 4);
  EXPECT_TRUE(j.committed(0));
  EXPECT_FALSE(j.committed(1));
  EXPECT_FALSE(j.committed(2)) << "records after a corrupt entry survive";
  EXPECT_GT(j.stats().truncated_bytes, 0u);
  fs::remove_all(dir);
}

TEST(ResilJournal, ForeignIdentityResetsTheFile) {
  const fs::path dir = fresh_dir("foreign");
  const fs::path path = dir / "j";
  {
    resil::Journal j(journal_at(path));
    j.bind(1, 2, 4);
    j.cell_commit(0);
    j.cell_commit(1);
  }
  resil::Journal j(journal_at(path));
  j.bind(9, 9, 4);  // Different sweep: resuming would be corruption.
  EXPECT_FALSE(j.stats().resumed);
  EXPECT_FALSE(j.committed(0));
  EXPECT_FALSE(j.committed(1));
  fs::remove_all(dir);
}

TEST(ResilJournal, DisabledJournalIsInertAndFileless) {
  const fs::path dir = fresh_dir("disabled");
  resil::Journal::Options options;
  options.path = (dir / "never-created").string();
  options.enabled = false;
  resil::Journal j(std::move(options));
  j.bind(1, 2, 3);
  j.begin_run(3);
  j.cell_begin(0, "x");
  j.cell_commit(0);
  EXPECT_FALSE(j.committed(0));
  j.end_run({});
  EXPECT_EQ(j.stats().appends, 0u);
  EXPECT_FALSE(fs::exists(dir / "never-created"));
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Engine resume semantics (fake in-memory journal: no disk in the loop).
// ---------------------------------------------------------------------------

/// Minimal SweepJournal: records calls, replays a preloaded committed set.
/// Serial-use only (the tests below run without a pool).
class MemJournal final : public exec::SweepJournal {
 public:
  std::set<std::size_t> preloaded;
  std::vector<std::size_t> begins;
  std::vector<std::size_t> commits;
  std::vector<std::size_t> fails;
  int begin_runs = 0;
  int end_runs = 0;
  bool throw_on_begin_run = false;

  void begin_run(std::size_t) override {
    if (throw_on_begin_run) throw std::runtime_error("journal io error");
    ++begin_runs;
  }
  [[nodiscard]] bool committed(std::size_t id) const override {
    return preloaded.count(id) > 0;
  }
  void cell_begin(std::size_t id, const std::string&) override {
    begins.push_back(id);
  }
  void cell_commit(std::size_t id) override { commits.push_back(id); }
  void cell_fail(std::size_t id, const std::string&) override {
    fails.push_back(id);
  }
  void end_run(const exec::RunReport&) override { ++end_runs; }
};

TEST(ResilResume, JournalIsProofAndCacheIsBytes) {
  // Cells 0 and 1 are committed by "a previous run"; only cell 0 still has
  // its bytes in the cache. 0 resumes, 1 honestly re-runs (a lost cache is
  // a performance event, never a correctness event), 2 and 3 run fresh.
  std::map<std::size_t, int> cache_bytes = {{0, 100}};
  std::vector<int> slots(4, -1);
  std::vector<int> runs(4, 0);

  MemJournal journal;
  journal.preloaded = {0, 1};

  exec::Sweep sweep;
  for (std::size_t i = 0; i < 4; ++i) {
    exec::CacheHooks hooks;
    hooks.probe = [&cache_bytes, &slots, i] {
      const auto it = cache_bytes.find(i);
      if (it == cache_bytes.end()) return false;
      slots[i] = it->second;
      return true;
    };
    hooks.publish = [&cache_bytes, &slots, i](const obs::Snapshot&) {
      cache_bytes[i] = slots[i];
    };
    sweep.add_cached(
        "cell" + std::to_string(i),
        [&slots, &runs, i] {
          ++runs[i];
          slots[i] = static_cast<int>(100 + i);
        },
        std::move(hooks));
  }

  const exec::RunReport report = sweep.run_resumable(journal);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.completed, 4u);
  EXPECT_EQ(report.cache_hits, 1u);
  EXPECT_EQ(report.resumed, 1u) << "only the replay-validated hit counts";
  EXPECT_EQ(runs, (std::vector<int>{0, 1, 1, 1}));
  EXPECT_EQ(slots, (std::vector<int>{100, 101, 102, 103}));
  // The replayed cell is already in the journal: no new begin or commit.
  EXPECT_EQ(journal.begins, (std::vector<std::size_t>{1, 2, 3}));
  EXPECT_EQ(journal.commits, (std::vector<std::size_t>{1, 2, 3}));
  EXPECT_EQ(journal.begin_runs, 1);
  EXPECT_EQ(journal.end_runs, 1);
}

TEST(ResilResume, ThrowingJournalDegradesToPlainExecution) {
  MemJournal journal;
  journal.throw_on_begin_run = true;
  std::vector<int> runs(3, 0);
  exec::Sweep sweep;
  for (std::size_t i = 0; i < 3; ++i) {
    sweep.add("cell" + std::to_string(i), [&runs, i] { ++runs[i]; });
  }
  const exec::RunReport report = sweep.run_resumable(journal);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.completed, 3u);
  EXPECT_EQ(report.resumed, 0u);
  EXPECT_EQ(runs, (std::vector<int>{1, 1, 1}));
  EXPECT_TRUE(journal.commits.empty()) << "first throw silences the journal";
}

// ---------------------------------------------------------------------------
// CellRunner + real Journal integration (in-process resume).
// ---------------------------------------------------------------------------

TEST(ResilResume, CellRunnerRowsResumeThroughRealJournal) {
  const fs::path dir = fresh_dir("rows");
  store::ResultCache::Options cache_options;
  cache_options.disk_dir = (dir / "store").string();
  const auto fingerprint_of = [](std::size_t i) {
    store::Canon c;
    c.field("cell", "resil.rows");
    c.field("i", static_cast<std::uint64_t>(i));
    return c.fingerprint();
  };
  std::atomic<int> runs{0};
  const auto run = [&runs](std::size_t i) {
    ++runs;
    return std::vector<std::string>{std::to_string(i * 3)};
  };

  store::WorkloadStore workloads;
  store::CellRunner::RowsResult cold;
  {
    store::ResultCache cache(cache_options);
    resil::Journal journal(journal_at(dir / "journal"));
    store::CellRunner runner(cache, workloads, nullptr);
    runner.set_journal(&journal);
    cold = runner.rows("resil.rows", 4, fingerprint_of, run);
    ASSERT_TRUE(cold.ok());
    EXPECT_EQ(runs.load(), 4);
    EXPECT_EQ(cold.report.resumed, 0u);
  }
  // Fresh process-state equivalents: new cache (same disk dir), new
  // journal object (same file). Every cell replays.
  store::ResultCache cache(cache_options);
  resil::Journal journal(journal_at(dir / "journal"));
  store::CellRunner runner(cache, workloads, nullptr);
  runner.set_journal(&journal);
  const auto warm = runner.rows("resil.rows", 4, fingerprint_of, run);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(runs.load(), 4) << "resumed cells must not re-run";
  EXPECT_EQ(warm.report.resumed, 4u);
  EXPECT_EQ(warm.report.cache_hits, 4u);
  EXPECT_EQ(warm.rows, cold.rows);
  EXPECT_TRUE(journal.stats().resumed);
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Deadlines and the watchdog.
// ---------------------------------------------------------------------------

TEST(ResilDeadline, WatchdogCancelsOverdueCellAndIsolatesDependents) {
  exec::Sweep sweep;
  const auto slow = sweep.add("slow", [] {
    // Cooperative cell: poll the token, bail once over budget. Bounded
    // fallback so a watchdog bug cannot hang the test.
    const auto give_up =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    for (;;) {
      exec::CancelToken* token = exec::current_cancel();
      if (token != nullptr && token->cancelled()) {
        throw std::runtime_error("cell over budget");
      }
      if (std::chrono::steady_clock::now() > give_up) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  bool dependent_ran = false;
  sweep.add("dependent", [&dependent_ran] { dependent_ran = true; },
            {slow});
  bool independent_ran = false;
  sweep.add("independent", [&independent_ran] { independent_ran = true; });

  exec::RetryPolicy policy;
  policy.max_attempts = 1;
  policy.cell_deadline = std::chrono::milliseconds(50);
  const exec::RunReport report = sweep.run_resilient(policy);

  EXPECT_EQ(report.completed, 1u);
  EXPECT_EQ(report.failed, 1u);
  EXPECT_EQ(report.deadline_failed, 1u);
  EXPECT_EQ(report.skipped, 1u);
  EXPECT_FALSE(dependent_ran);
  EXPECT_TRUE(independent_ran) << "unrelated cells must be untouched";
  ASSERT_EQ(report.errors.size(), 2u);
  EXPECT_EQ(report.errors[0].task, slow);
  EXPECT_EQ(report.errors[0].kind, exec::CellError::kDeadline);
  EXPECT_EQ(report.errors[1].kind, exec::CellError::kSkipped);
  const std::string summary = report.summary();
  EXPECT_NE(summary.find("over deadline"), std::string::npos) << summary;
}

TEST(ResilDeadline, ExpiredRunRefusesCellsNotYetStarted) {
  exec::Sweep sweep;
  std::atomic<int> late_runs{0};
  sweep.add("hog", [] {
    // Ignores cancellation entirely: success still wins, but the run
    // budget expires while it sleeps.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
  });
  for (int i = 0; i < 3; ++i) {
    sweep.add("late" + std::to_string(i), [&late_runs] { ++late_runs; });
  }
  exec::RetryPolicy policy;
  policy.max_attempts = 1;
  policy.run_deadline = std::chrono::milliseconds(50);
  const exec::RunReport report = sweep.run_resilient(policy);

  EXPECT_EQ(report.completed, 1u) << "a finished cell keeps its result";
  EXPECT_EQ(report.failed, 3u);
  EXPECT_EQ(report.deadline_failed, 3u);
  EXPECT_EQ(late_runs.load(), 0);
  ASSERT_EQ(report.errors.size(), 3u);
  for (const exec::CellError& e : report.errors) {
    EXPECT_EQ(e.kind, exec::CellError::kDeadline);
    EXPECT_EQ(e.attempts, 0u);
    EXPECT_NE(e.message.find("run budget"), std::string::npos) << e.message;
  }
}

TEST(ResilDeadline, RetryBackoffIsCutByTheCellDeadline) {
  exec::Sweep sweep;
  std::atomic<int> attempts_seen{0};
  sweep.add("flaky", [&attempts_seen] {
    ++attempts_seen;
    throw exec::TransientError("flaky");
  });
  exec::RetryPolicy policy;
  policy.max_attempts = 1000;  // Attempt budget alone would retry forever.
  policy.backoff_base = std::chrono::microseconds(20000);
  policy.backoff_cap = std::chrono::microseconds(20000);
  policy.cell_deadline = std::chrono::milliseconds(80);

  const auto start = std::chrono::steady_clock::now();
  const exec::RunReport report = sweep.run_resilient(policy);
  const auto elapsed = std::chrono::steady_clock::now() - start;

  EXPECT_EQ(report.failed, 1u);
  ASSERT_EQ(report.errors.size(), 1u);
  // ~80ms budget over ~20ms backoffs: a handful of attempts, not 1000.
  EXPECT_LE(report.errors[0].attempts, 50u);
  EXPECT_LT(attempts_seen.load(), 50);
  EXPECT_LT(elapsed, std::chrono::seconds(5))
      << "the retry schedule must be wall-clock bounded";
  EXPECT_NE(report.errors[0].message.find("flaky"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Admission gate (load shedding).
// ---------------------------------------------------------------------------

TEST(ResilAdmission, ShedsLowestPriorityFirstAndSkipsDependents) {
  exec::Sweep sweep;
  std::vector<int> runs(6, 0);
  for (std::size_t i = 0; i < 6; ++i) {
    const auto id =
        sweep.add("cell" + std::to_string(i), [&runs, i] { ++runs[i]; });
    sweep.set_priority(id, static_cast<std::int32_t>(i));
  }
  bool dependent_ran = false;
  sweep.add("dependent", [&dependent_ran] { dependent_ran = true; }, {0});

  exec::AdmissionPolicy admission;
  admission.max_pending = 2;
  sweep.set_admission(admission);
  const exec::RunReport report = sweep.run_resilient();

  EXPECT_EQ(report.completed, 2u);
  EXPECT_EQ(report.shed, 4u);
  EXPECT_EQ(report.failed, 4u) << "shed cells are failures, not skips";
  EXPECT_EQ(report.skipped, 1u);
  EXPECT_FALSE(dependent_ran);
  // Highest priorities survive the gate.
  EXPECT_EQ(runs, (std::vector<int>{0, 0, 0, 0, 1, 1}));
  std::size_t shed_errors = 0;
  for (const exec::CellError& e : report.errors) {
    if (e.kind == exec::CellError::kShedded) {
      ++shed_errors;
      EXPECT_NE(e.message.find("admission budget"), std::string::npos);
      EXPECT_EQ(e.attempts, 0u);
    }
  }
  EXPECT_EQ(shed_errors, 4u);
  EXPECT_NE(report.summary().find("shed"), std::string::npos);
}

TEST(ResilAdmission, MemoryBudgetShedsCellsNotYetStarted) {
  exec::Sweep sweep;
  std::atomic<int> ran{0};
  for (std::size_t i = 0; i < 4; ++i) {
    sweep.add("alloc" + std::to_string(i), [&sweep, &ran] {
      ++ran;
      (void)sweep.local_arena().allocate(256 * 1024, 8);
    });
  }
  exec::AdmissionPolicy admission;
  admission.memory_budget_bytes = 64 * 1024;
  sweep.set_admission(admission);
  const exec::RunReport report = sweep.run_resilient();

  // Serial: the first cell blows the budget; everything not yet started
  // sheds instead of allocating further.
  EXPECT_EQ(report.completed, 1u);
  EXPECT_EQ(report.shed, 3u);
  EXPECT_EQ(ran.load(), 1);
}

TEST(ResilAdmission, InertByDefault) {
  exec::Sweep sweep;
  std::vector<int> runs(4, 0);
  for (std::size_t i = 0; i < 4; ++i) {
    sweep.add("cell" + std::to_string(i), [&runs, i] { ++runs[i]; });
  }
  const exec::RunReport report = sweep.run_resilient();
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.completed, 4u);
  EXPECT_EQ(report.shed, 0u);
  EXPECT_EQ(report.resumed, 0u);
  EXPECT_EQ(report.deadline_failed, 0u);
  // Plain runs keep the pre-resil summary text exactly.
  EXPECT_EQ(report.summary().find("resumed"), std::string::npos);
  EXPECT_EQ(report.summary().find("shed"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Recoverable operator input.
// ---------------------------------------------------------------------------

/// RAII guard: sets/unsets an env var, restores the previous value.
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) saved_ = old;
    if (value == nullptr) {
      ::unsetenv(name);
    } else {
      ::setenv(name, value, 1);
    }
  }
  ~EnvGuard() {
    if (saved_.has_value()) {
      ::setenv(name_, saved_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

TEST(ResilEnv, UnknownFaultProfileWarnsAndFallsBackToOff) {
  // A typo in IMPACT_FAULTS must not abort a long sweep: warn on stderr
  // (not asserted here) and run fault-free.
  EnvGuard guard("IMPACT_FAULTS", "bogus-profile");
  EXPECT_FALSE(fault::Injector::profile_from_env().has_value());
}

TEST(ResilEnv, KnownFaultProfilesStillResolve) {
  {
    EnvGuard guard("IMPACT_FAULTS", "heavy");
    const auto profile = fault::Injector::profile_from_env();
    ASSERT_TRUE(profile.has_value());
    EXPECT_EQ(profile->size(), 6u);
  }
  EnvGuard guard("IMPACT_FAULTS", "off");
  EXPECT_FALSE(fault::Injector::profile_from_env().has_value());
}

TEST(ResilEnv, JournalFromEnvHonoursPathAndAbsence) {
  {
    EnvGuard guard("IMPACT_JOURNAL", nullptr);
    EXPECT_EQ(resil::journal_from_env(), nullptr);
  }
  const fs::path dir = fresh_dir("env");
  const std::string path = (dir / "j").string();
  EnvGuard guard("IMPACT_JOURNAL", path.c_str());
  const std::unique_ptr<resil::Journal> journal = resil::journal_from_env();
  ASSERT_NE(journal, nullptr);
  EXPECT_EQ(journal->path(), path);
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Store durability satellite.
// ---------------------------------------------------------------------------

TEST(ResilStore, DiskWritesAreFsyncedBeforeRename) {
  const fs::path dir = fresh_dir("fsync");
  store::ResultCache::Options options;
  options.disk_dir = dir.string();
  store::ResultCache cache(options);

  store::Canon c;
  c.field("cell", "resil.fsync");
  store::Record record;
  record.fp = c.fingerprint();
  record.label = "fsync";
  record.payload = store::encode_row({"x"});
  cache.store(record);

  // Data fsync + directory fsync per disk write; the temp file is gone.
  EXPECT_GE(cache.stats().fsyncs, 2u);
  bool tmp_left = false;
  for (const auto& entry : fs::directory_iterator(dir)) {
    tmp_left = tmp_left || entry.path().extension() == ".tmp";
  }
  EXPECT_FALSE(tmp_left);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace impact
