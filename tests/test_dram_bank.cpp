// Unit tests: the per-bank row-buffer state machine.
#include <gtest/gtest.h>

#include "dram/bank.hpp"
#include "dram/config.hpp"

namespace impact::dram {
namespace {

class BankTest : public ::testing::Test {
 protected:
  BankTest() : timing_(DramConfig{}.derived_timing()) {}

  Timing timing_;
};

TEST_F(BankTest, FirstAccessIsEmptyActivation) {
  Bank bank(timing_, RowPolicy::kOpenRow);
  const auto r = bank.access(10, 1000);
  EXPECT_EQ(r.outcome, RowBufferOutcome::kEmpty);
  EXPECT_EQ(r.completion - r.start, timing_.empty_latency());
  EXPECT_EQ(bank.open_row(r.completion), 10u);
}

TEST_F(BankTest, SameRowHits) {
  Bank bank(timing_, RowPolicy::kOpenRow);
  const auto first = bank.access(10, 1000);
  const auto r = bank.access(10, first.completion + 10);
  EXPECT_EQ(r.outcome, RowBufferOutcome::kHit);
  EXPECT_EQ(r.completion - r.start, timing_.hit_latency());
}

TEST_F(BankTest, DifferentRowConflicts) {
  Bank bank(timing_, RowPolicy::kOpenRow);
  const auto first = bank.access(10, 1000);
  // Far enough after tRAS that the precharge is not delayed.
  const auto r = bank.access(20, first.completion + 200);
  EXPECT_EQ(r.outcome, RowBufferOutcome::kConflict);
  EXPECT_EQ(r.completion - r.start, timing_.conflict_latency());
  EXPECT_EQ(bank.open_row(r.completion), 20u);
}

TEST_F(BankTest, ConflictMinusHitIsTrpPlusTrcd) {
  // The §3.1 timing channel: ~74 cycles at Table 2 parameters.
  EXPECT_EQ(timing_.conflict_latency() - timing_.hit_latency(),
            timing_.trp + timing_.trcd);
  EXPECT_NEAR(static_cast<double>(timing_.conflict_latency() -
                                  timing_.hit_latency()),
              74.0, 4.0);
}

TEST_F(BankTest, TrasDelaysEarlyPrecharge) {
  Bank bank(timing_, RowPolicy::kOpenRow);
  const auto act = bank.access(10, 1000);
  // Conflict immediately after the activation: PRE must wait for tRAS
  // measured from the ACT start.
  const auto r = bank.access(20, act.completion + 1);
  EXPECT_EQ(r.outcome, RowBufferOutcome::kConflict);
  EXPECT_GE(r.completion,
            act.start + timing_.tras + timing_.conflict_latency());
}

TEST_F(BankTest, QueuingDelayWhenBusy) {
  Bank bank(timing_, RowPolicy::kOpenRow);
  const auto first = bank.access(10, 1000);
  // Second command issued mid-flight starts only when the bank is ready.
  const auto r = bank.access(10, first.start + 1);
  EXPECT_EQ(r.start, first.completion);
  EXPECT_GT(r.latency(first.start + 1), timing_.hit_latency());
}

TEST_F(BankTest, ClosedRowPolicyNeverHits) {
  Bank bank(timing_, RowPolicy::kClosedRow);
  auto r = bank.access(10, 1000);
  EXPECT_EQ(r.outcome, RowBufferOutcome::kEmpty);
  r = bank.access(10, r.completion + 500);
  // CRP precharged after the access: the same row activates again.
  EXPECT_EQ(r.outcome, RowBufferOutcome::kEmpty);
  EXPECT_FALSE(bank.open_row(r.completion + 500).has_value());
}

TEST_F(BankTest, ConstantTimeAlwaysWorstCase) {
  Bank bank(timing_, RowPolicy::kConstantTime);
  const auto a = bank.access(10, 1000);
  const auto b = bank.access(10, a.completion + 300);
  const auto c = bank.access(99, b.completion + 300);
  EXPECT_EQ(a.completion - a.start, timing_.conflict_latency());
  EXPECT_EQ(b.completion - b.start, timing_.conflict_latency());
  EXPECT_EQ(c.completion - c.start, timing_.conflict_latency());
  // And the observable outcome leaks nothing.
  EXPECT_EQ(a.outcome, c.outcome);
}

TEST_F(BankTest, ContentionTimeoutModeKeepsIdleRowsOpen) {
  Bank bank(timing_, RowPolicy::kOpenRow);  // Default: kContention.
  const auto r = bank.access(10, 1000);
  EXPECT_EQ(bank.open_row(r.completion + 1'000'000), 10u);
}

TEST_F(BankTest, IdlePrechargeTimeoutClosesRow) {
  TimingParams params;
  params.timeout_mode = RowTimeoutMode::kIdlePrecharge;
  const Timing timing = Timing::from(params, util::kDefaultFrequency);
  Bank bank(timing, RowPolicy::kOpenRow);
  const auto r = bank.access(10, 1000);
  EXPECT_EQ(bank.open_row(r.completion + timing.row_timeout - 1), 10u);
  EXPECT_FALSE(
      bank.open_row(r.completion + timing.row_timeout + 1).has_value());
  // The next access is an empty activation, not a hit or conflict.
  const auto next = bank.access(10, r.completion + timing.row_timeout + 500);
  EXPECT_EQ(next.outcome, RowBufferOutcome::kEmpty);
}

TEST_F(BankTest, ExplicitPrecharge) {
  Bank bank(timing_, RowPolicy::kOpenRow);
  const auto r = bank.access(10, 1000);
  bank.precharge(r.completion + 100);
  EXPECT_FALSE(bank.open_row(r.completion + 1000).has_value());
}

TEST_F(BankTest, StallUntilDelaysCommands) {
  Bank bank(timing_, RowPolicy::kOpenRow);
  bank.stall_until(5000);
  const auto r = bank.access(10, 1000);
  EXPECT_EQ(r.start, 5000u);
}

TEST_F(BankTest, StatsCountOutcomes) {
  Bank bank(timing_, RowPolicy::kOpenRow);
  auto r = bank.access(10, 1000);
  r = bank.access(10, r.completion + 10);
  r = bank.access(20, r.completion + 200);
  const auto& s = bank.stats();
  EXPECT_EQ(s.empties, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.conflicts, 1u);
  EXPECT_EQ(s.accesses(), 3u);
  EXPECT_EQ(s.activations, 2u);
  EXPECT_NEAR(s.hit_rate(), 1.0 / 3.0, 1e-12);
}

TEST_F(BankTest, AckEqualsCompletionForPlainAccess) {
  Bank bank(timing_, RowPolicy::kOpenRow);
  const auto r = bank.access(10, 1000);
  EXPECT_EQ(r.ack, r.completion);
}

// --- RowClone at bank level -------------------------------------------

TEST_F(BankTest, RowCloneOnEmptyBankTakesFpmLatency) {
  Bank bank(timing_, RowPolicy::kOpenRow);
  const auto r = bank.rowclone(4, 5, 1000);
  EXPECT_EQ(r.outcome, RowBufferOutcome::kEmpty);
  EXPECT_EQ(r.completion - r.start, timing_.rowclone_fpm);
  EXPECT_EQ(r.ack - r.start, timing_.trcd);
  EXPECT_EQ(bank.open_row(r.completion), 5u);  // dst stays connected.
}

TEST_F(BankTest, RowCloneConflictPaysPrecharge) {
  Bank bank(timing_, RowPolicy::kOpenRow);
  const auto open = bank.access(99, 1000);
  const auto r = bank.rowclone(4, 5, open.completion + 200);
  EXPECT_EQ(r.outcome, RowBufferOutcome::kConflict);
  EXPECT_EQ(r.completion - r.start, timing_.trp + timing_.rowclone_fpm);
  EXPECT_EQ(r.ack - r.start, timing_.trp + timing_.trcd);
}

TEST_F(BankTest, SelfCloneHitIsFastPath) {
  Bank bank(timing_, RowPolicy::kOpenRow);
  auto r = bank.rowclone(4, 4, 1000);  // Opens row 4.
  r = bank.rowclone(4, 4, r.completion + 100);
  EXPECT_EQ(r.outcome, RowBufferOutcome::kHit);
  EXPECT_EQ(r.completion - r.start, timing_.tras);
  EXPECT_EQ(r.ack - r.start, timing_.trcd);
  // Self-healing: row 4 is still the open row.
  EXPECT_EQ(bank.open_row(r.completion), 4u);
}

TEST_F(BankTest, RowCloneHitVsConflictAckMarginIsTrp) {
  // The PuM receiver's decision margin.
  Bank bank(timing_, RowPolicy::kOpenRow);
  auto r = bank.rowclone(4, 4, 1000);
  const auto hit = bank.rowclone(4, 4, r.completion + 100);
  bank.access(99, hit.completion + 200);
  const auto conflict = bank.rowclone(4, 4, hit.completion + 800);
  EXPECT_EQ((conflict.ack - conflict.start) - (hit.ack - hit.start),
            timing_.trp);
}

TEST_F(BankTest, RowCloneUnderConstantTimeIsPadded) {
  Bank bank(timing_, RowPolicy::kConstantTime);
  const auto a = bank.rowclone(4, 5, 1000);
  const auto b = bank.rowclone(4, 5, a.completion + 400);
  EXPECT_EQ(a.completion - a.start, b.completion - b.start);
  EXPECT_EQ(a.ack - a.start, b.ack - b.start);
}

}  // namespace
}  // namespace impact::dram
