// Unit tests: channel reports, threshold calibration, analytical models.
#include <gtest/gtest.h>

#include "channel/report.hpp"
#include "channel/threshold.hpp"
#include "model/cache_attack_model.hpp"

namespace impact {
namespace {

TEST(ChannelReport, ErrorRateAndThroughput) {
  channel::ChannelReport r;
  r.bits_total = 100;
  r.bits_correct = 90;
  r.elapsed_cycles = 26000;  // 10 us at 2.6 GHz.
  EXPECT_DOUBLE_EQ(r.error_rate(), 0.10);
  EXPECT_EQ(r.bit_errors(), 10u);
  EXPECT_NEAR(r.throughput_mbps(util::kDefaultFrequency), 9.0, 1e-9);
  EXPECT_NEAR(r.raw_mbps(util::kDefaultFrequency), 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.cycles_per_bit(), 260.0);
}

TEST(ChannelReport, EmptyReportIsZero) {
  channel::ChannelReport r;
  EXPECT_DOUBLE_EQ(r.error_rate(), 0.0);
  EXPECT_DOUBLE_EQ(r.throughput_mbps(util::kDefaultFrequency), 0.0);
  EXPECT_DOUBLE_EQ(r.cycles_per_bit(), 0.0);
}

TEST(ChannelReport, ScoreCountsMatchingBits) {
  channel::TransmissionResult result;
  result.sent = util::BitVec::from_string("1100");
  result.decoded = util::BitVec::from_string("1000");
  channel::score(result);
  EXPECT_EQ(result.report.bits_total, 4u);
  EXPECT_EQ(result.report.bits_correct, 3u);
}

TEST(Threshold, SeparatedClustersUseMidpoint) {
  channel::ThresholdCalibrator cal;
  for (double v : {100.0, 110.0, 105.0}) cal.add_low(v);
  for (double v : {200.0, 190.0, 210.0}) cal.add_high(v);
  EXPECT_TRUE(cal.ready());
  EXPECT_DOUBLE_EQ(cal.threshold(), 150.0);
  EXPECT_DOUBLE_EQ(cal.margin(), 80.0);
}

TEST(Threshold, OverlappingClustersFallBackToQuartiles) {
  channel::ThresholdCalibrator cal;
  for (double v : {100, 101, 102, 103, 250}) cal.add_low(v);  // One outlier.
  for (double v : {200, 201, 202, 203, 204}) cal.add_high(v);
  const double t = cal.threshold();
  EXPECT_GT(t, 103.0);
  EXPECT_LT(t, 204.0);
}

TEST(Threshold, DecodeBit) {
  EXPECT_TRUE(channel::decode_bit(200, 150));
  EXPECT_FALSE(channel::decode_bit(100, 150));
  EXPECT_FALSE(channel::decode_bit(150, 150));  // Boundary: not above.
}

TEST(EvictionModel, GrowsWithWaysAndLatency) {
  model::ExtractedParams base;
  const double e16 = model::eviction_latency(base);
  model::ExtractedParams wide = base;
  wide.llc_ways = 64;
  EXPECT_GT(model::eviction_latency(wide), 3.0 * e16);
  model::ExtractedParams slow = base;
  slow.llc_latency = 91;
  EXPECT_GT(model::eviction_latency(slow), e16);
}

TEST(StreamlineModel, ValidationPointAndTrend) {
  // §5.1: the model gives ~2.7 Mb/s-class upper bounds at small LLCs
  // (measured real-system rate: 1.8 Mb/s). Our constants put the smallest
  // LLC in the right band and decline monotonically.
  model::ExtractedParams small;
  small.llc_latency = 16;  // 2 MB.
  const double at_small = model::streamline_mbps(small,
                                                 util::kDefaultFrequency);
  EXPECT_GT(at_small, 2.0);
  EXPECT_LT(at_small, 7.0);
  model::ExtractedParams large = small;
  large.llc_latency = 91;  // 64 MB.
  EXPECT_LT(model::streamline_mbps(large, util::kDefaultFrequency),
            at_small);
}

TEST(BscCapacity, Properties) {
  EXPECT_DOUBLE_EQ(model::bsc_capacity_mbps(10.0, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(model::bsc_capacity_mbps(10.0, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(model::bsc_capacity_mbps(10.0, 0.7), 0.0);
  const double c1 = model::bsc_capacity_mbps(10.0, 0.05);
  const double c2 = model::bsc_capacity_mbps(10.0, 0.15);
  EXPECT_GT(c1, c2);
  EXPECT_GT(c1, 6.0);
  EXPECT_LT(c1, 10.0);
}

}  // namespace
}  // namespace impact
