// Quickstart: establish both IMPACT covert channels on the Table 2 system
// and transmit a message across each.
//
//   $ ./quickstart
//
// Demonstrates the core public API: configure a simulated PiM-enabled
// system, construct an attack, transmit, and inspect the report.
#include <cstdio>
#include <string>

#include "attacks/impact_pnm.hpp"
#include "attacks/impact_pum.hpp"
#include "sys/system.hpp"
#include "util/bitvec.hpp"

int main() {
  using namespace impact;

  sys::SystemConfig config;  // Table 2 defaults.
  std::printf("=== Simulated system ===\n%s\n",
              config.describe().c_str());

  const std::string secret = "1011001110001011";
  const auto message = util::BitVec::from_string(secret);

  {
    sys::MemorySystem system(config);
    attacks::ImpactPnm attack(system);
    auto result = attack.transmit(message);
    std::printf("[%s] sent    %s\n", attack.name().c_str(),
                result.sent.to_string().c_str());
    std::printf("[%s] decoded %s\n", attack.name().c_str(),
                result.decoded.to_string().c_str());
    std::printf("[%s] threshold=%.0f cyc  errors=%zu/%zu  "
                "throughput=%.2f Mb/s\n\n",
                attack.name().c_str(), attack.threshold(),
                result.report.bit_errors(), result.report.bits_total,
                result.report.throughput_mbps(config.frequency()));
  }

  {
    sys::MemorySystem system(config);
    attacks::ImpactPum attack(system);
    auto result = attack.transmit(message);
    std::printf("[%s] sent    %s\n", attack.name().c_str(),
                result.sent.to_string().c_str());
    std::printf("[%s] decoded %s\n", attack.name().c_str(),
                result.decoded.to_string().c_str());
    std::printf("[%s] threshold=%.0f cyc  errors=%zu/%zu  "
                "throughput=%.2f Mb/s\n",
                attack.name().c_str(), attack.threshold(),
                result.report.bit_errors(), result.report.bits_total,
                result.report.throughput_mbps(config.frequency()));
  }
  return 0;
}
