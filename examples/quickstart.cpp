// Thin shim: the quickstart experiment lives in src/lab/experiments/quickstart.cpp
// and is registered in the lab::Registry; this binary is kept for
// compatibility (same name, same argv, same output as before the registry
// refactor). Equivalent: `impact run quickstart`.
#include "lab/driver.hpp"

int main(int argc, char** argv) {
  return impact::lab::run_named("quickstart", argc, argv);
}
