// Thin shim: the covert_channel_comparison experiment lives in src/lab/experiments/covert_channel_comparison.cpp
// and is registered in the lab::Registry; this binary is kept for
// compatibility (same name, same argv, same output as before the registry
// refactor). Equivalent: `impact run covert_channel_comparison`.
#include "lab/driver.hpp"

int main(int argc, char** argv) {
  return impact::lab::run_named("covert_channel_comparison", argc, argv);
}
