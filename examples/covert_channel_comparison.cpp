#include <cstdio>
#include "attacks/registry.hpp"
#include "model/cache_attack_model.hpp"
int main() {
  using namespace impact;
  for (auto kind : attacks::kFig8Attacks) {
    sys::SystemConfig cfg;
    cfg.mapping = attacks::recommended_mapping(kind);
    sys::MemorySystem system(cfg);
    auto attack = attacks::make_attack(kind, system);
    auto report = attack->measure(64, 8, 5);
    std::printf("%-16s %7.2f Mb/s  err %.2f%%  cyc/bit %.0f\n",
                attack->name().c_str(), report.throughput_mbps(cfg.frequency()),
                100.0*report.error_rate(), report.cycles_per_bit());
  }
  model::ExtractedParams p;
  std::printf("%-16s %7.2f Mb/s (analytical)\n", "Streamline", model::streamline_mbps(p, util::kDefaultFrequency));
  return 0;
}
