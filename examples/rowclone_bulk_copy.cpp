// Thin shim: the rowclone_bulk_copy experiment lives in src/lab/experiments/rowclone_bulk_copy.cpp
// and is registered in the lab::Registry; this binary is kept for
// compatibility (same name, same argv, same output as before the registry
// refactor). Equivalent: `impact run rowclone_bulk_copy`.
#include "lab/driver.hpp"

int main(int argc, char** argv) {
  return impact::lab::run_named("rowclone_bulk_copy", argc, argv);
}
