// Thin shim: the keystroke_spy experiment lives in src/lab/experiments/keystroke_spy.cpp
// and is registered in the lab::Registry; this binary is kept for
// compatibility (same name, same argv, same output as before the registry
// refactor). Equivalent: `impact run keystroke_spy`.
#include "lab/driver.hpp"

int main(int argc, char** argv) {
  return impact::lab::run_named("keystroke_spy", argc, argv);
}
