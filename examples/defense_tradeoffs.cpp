// Thin shim: the defense_tradeoffs experiment lives in src/lab/experiments/defense_tradeoffs.cpp
// and is registered in the lab::Registry; this binary is kept for
// compatibility (same name, same argv, same output as before the registry
// refactor). Equivalent: `impact run defense_tradeoffs`.
#include "lab/driver.hpp"

int main(int argc, char** argv) {
  return impact::lab::run_named("defense_tradeoffs", argc, argv);
}
