// Defense evaluation demo (§6, Fig. 11): overhead of the closed-row and
// constant-time policies versus the baseline open-row policy on
// multiprogrammed graph workloads.
//
// The (workload, policy) grid is embarrassingly parallel; the sweep engine
// fans it out over IMPACT_THREADS workers (default: hardware concurrency)
// with bit-identical results to a serial run.
//
//   $ ./defense_tradeoffs
//   $ IMPACT_THREADS=4 ./defense_tradeoffs
#include <cstdio>
#include <vector>

#include "exec/sweep.hpp"
#include "graph/multiprog.hpp"
#include "util/table.hpp"

int main() {
  using namespace impact;

  graph::MultiprogConfig config;  // Scaled Fig. 11 configuration.
  exec::ThreadPool pool;

  util::Table table({"workload", "MPKI", "row-hit-rate", "CRP overhead",
                     "CTD overhead"});
  std::vector<double> crp;
  std::vector<double> ctd;
  for (const auto& r :
       graph::evaluate_defense_matrix(config, graph::kAllWorkloads, &pool)) {
    crp.push_back(r.crp_overhead());
    ctd.push_back(r.ctd_overhead());
    table.add_row({to_string(r.kind), util::Table::num(r.open_row.mpki()),
                   util::Table::num(r.open_row.row_hit_rate),
                   util::Table::num(100.0 * r.crp_overhead(), 1) + "%",
                   util::Table::num(100.0 * r.ctd_overhead(), 1) + "%"});
  }
  std::printf("%s", table.render().c_str());
  double crp_avg = 0.0;
  double ctd_avg = 0.0;
  for (double v : crp) crp_avg += v / crp.size();
  for (double v : ctd) ctd_avg += v / ctd.size();
  std::printf("\naverage overhead: CRP %.1f%%  CTD %.1f%%  "
              "(paper: 15%% and 26%%)\n",
              100.0 * crp_avg, 100.0 * ctd_avg);
  return 0;
}
