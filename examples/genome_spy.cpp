// Thin shim: the genome_spy experiment lives in src/lab/experiments/genome_spy.cpp
// and is registered in the lab::Registry; this binary is kept for
// compatibility (same name, same argv, same output as before the registry
// refactor). Equivalent: `impact run genome_spy`.
#include "lab/driver.hpp"

int main(int argc, char** argv) {
  return impact::lab::run_named("genome_spy", argc, argv);
}
