// Side-channel demo: leak a victim's read-mapping access pattern through
// PiM probes (§4.3).
//
//   $ ./genome_spy [banks]
//
// Runs a read-mapping victim on a PiM device with the given bank count
// (default 1024) while an attacker sweeps the banks, and reports the
// probe-decision accuracy, leakage throughput, and per-observation
// precision of the leaked bucket information.
#include <cstdio>
#include <cstdlib>

#include "attacks/side_channel.hpp"

int main(int argc, char** argv) {
  using namespace impact;

  attacks::SideChannelConfig config;
  if (argc > 1) config.banks = static_cast<std::uint32_t>(std::atoi(argv[1]));
  config.reads = 32;

  std::printf("PiM device: %u banks, shared seed table: %u buckets "
              "(%u entries per bank)\n",
              config.banks, config.table.buckets,
              config.table.buckets / config.banks);

  attacks::ReadMappingSpy spy(config);
  const auto result = spy.run();

  std::printf("victim mapping accuracy : %.1f%%\n",
              100.0 * result.victim_accuracy);
  std::printf("attacker threshold      : %.0f cycles\n", result.threshold);
  std::printf("probe observations      : %zu (error %.2f%%)\n",
              result.probes.observations,
              100.0 * result.probes.error_rate());
  std::printf("leak throughput         : %.2f Mb/s\n",
              result.probes.throughput_mbps(2.6));
  std::printf("victim seed events      : %zu (captured %.1f%%, "
              "%.2f Mb/s event capture)\n",
              result.victim_seed_events, 100.0 * result.capture_rate(),
              result.capture_throughput_mbps(2.6));
  std::printf("precision               : %u candidate buckets/hit "
              "(%.1f bits/observation)\n",
              result.precision.entries_per_bank,
              result.precision.bits_per_observation);
  return 0;
}
