#include "resil/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string_view>

namespace impact::resil {

namespace {

// --- Codec primitives ---------------------------------------------------
// Same byte-stable text idiom as the store::Record codec (whose primitives
// are deliberately file-local there): decimal u64, length-prefixed
// strings, strict readers where any deviation fails the parse.

void put_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  const int n = std::snprintf(buf, sizeof(buf), "%llu",
                              static_cast<unsigned long long>(v));
  out.append(buf, static_cast<std::size_t>(n));
}

void put_hex64(std::string& out, std::uint64_t v) {
  char buf[20];
  const int n = std::snprintf(buf, sizeof(buf), "%016llx",
                              static_cast<unsigned long long>(v));
  out.append(buf, static_cast<std::size_t>(n));
}

void put_str(std::string& out, std::string_view s) {
  put_u64(out, s.size());
  out.push_back(':');
  out.append(s);
}

struct Reader {
  std::string_view in;
  bool ok = true;

  bool literal(std::string_view expect) {
    if (!ok || in.substr(0, expect.size()) != expect) return fail();
    in.remove_prefix(expect.size());
    return true;
  }

  std::uint64_t u64() {
    if (!ok) return 0;
    std::uint64_t v = 0;
    std::size_t i = 0;
    while (i < in.size() && in[i] >= '0' && in[i] <= '9') {
      v = v * 10 + static_cast<std::uint64_t>(in[i] - '0');
      ++i;
    }
    if (i == 0) {
      fail();
      return 0;
    }
    in.remove_prefix(i);
    return v;
  }

  std::uint64_t hex64() {
    if (!ok) return 0;
    if (in.size() < 16) {
      fail();
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < 16; ++i) {
      const char c = in[static_cast<std::size_t>(i)];
      std::uint64_t digit = 0;
      if (c >= '0' && c <= '9') {
        digit = static_cast<std::uint64_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<std::uint64_t>(c - 'a') + 10;
      } else {
        fail();
        return 0;
      }
      v = (v << 4) | digit;
    }
    in.remove_prefix(16);
    return v;
  }

  std::string str() {
    const std::uint64_t n = u64();
    if (!literal(":") || in.size() < n) {
      fail();
      return {};
    }
    std::string s(in.substr(0, n));
    in.remove_prefix(n);
    return s;
  }

  bool fail() {
    ok = false;
    return false;
  }
};

// --- CRC-32 (IEEE, reflected) -------------------------------------------
// Bitwise, table-free: journal entries are tens of bytes, throughput is
// irrelevant next to the fsync that follows.

std::uint32_t crc32(std::string_view bytes) {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char ch : bytes) {
    crc ^= static_cast<unsigned char>(ch);
    for (int i = 0; i < 8; ++i) {
      crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
    }
  }
  return ~crc;
}

void put_crc_suffix(std::string& out, std::string_view body) {
  char buf[12];
  const int n = std::snprintf(buf, sizeof(buf), " #%08x\n",
                              static_cast<unsigned>(crc32(body)));
  out.append(buf, static_cast<std::size_t>(n));
}

constexpr std::string_view kMagic = "impact-journal 1\n";

/// One-entry slack against absurd ids from a corrupt-but-CRC-colliding
/// record: a commit id must fit the bound run's task count (checked by
/// the caller), and labels/messages are size-limited on the write side.
constexpr std::size_t kMaxStringBytes = 1 << 16;

[[noreturn]] void raise_errno(const char* what, const std::string& path) {
  throw std::runtime_error(std::string("resil::Journal: ") + what + " " +
                           path + ": " + std::strerror(errno));
}

}  // namespace

Journal::~Journal() {
  if (fd_ >= 0) ::close(fd_);
}

Journal::Options Journal::options_from_env() {
  Options options;
  const char* path = std::getenv("IMPACT_JOURNAL");
  if (path == nullptr || path[0] == '\0') {
    options.enabled = false;
    return options;
  }
  options.path = path;
  return options;
}

std::unique_ptr<Journal> journal_from_env() {
  Journal::Options options = Journal::options_from_env();
  if (!options.enabled) return nullptr;
  return std::make_unique<Journal>(std::move(options));
}

void Journal::open_and_recover_locked() {
  if (recovered_ || !options_.enabled) return;
  recovered_ = true;

  fd_ = ::open(options_.path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) raise_errno("open", options_.path);
  // Make the file's *existence* durable too: sync the parent directory
  // once, so a commit record cannot outlive its own directory entry.
  if (options_.fsync) {
    std::string dir = options_.path;
    const std::size_t slash = dir.find_last_of('/');
    dir = slash == std::string::npos ? std::string(".") : dir.substr(0, slash);
    const int dirfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (dirfd >= 0) {
      ::fsync(dirfd);
      ::close(dirfd);
      ++stats_.fsyncs;
    }
  }

  // Slurp the file (journals are small: tens of bytes per cell).
  std::string bytes;
  char buf[1 << 16];
  for (;;) {
    const ssize_t got = ::read(fd_, buf, sizeof(buf));
    if (got < 0) raise_errno("read", options_.path);
    if (got == 0) break;
    bytes.append(buf, static_cast<std::size_t>(got));
  }

  if (bytes.empty()) {
    reset_file_locked();
    return;
  }
  if (bytes.size() < kMagic.size() ||
      std::string_view(bytes).substr(0, kMagic.size()) != kMagic) {
    // Not a journal (or a torn header): the file has no salvageable
    // history. Start over.
    stats_.truncated_bytes += bytes.size();
    reset_file_locked();
    return;
  }

  // Walk entries; `valid_end` trails the last fully-verified one. The
  // first entry that fails to parse, fails its CRC, or is semantically
  // impossible ends recovery — everything at and after it is dropped
  // (a suffix of an unverifiable entry cannot be trusted either).
  std::size_t valid_end = kMagic.size();
  std::string_view rest = std::string_view(bytes).substr(kMagic.size());
  while (!rest.empty()) {
    Reader r{rest};
    const std::size_t entry_bytes_before = r.in.size();
    bool semantic_ok = true;
    std::uint64_t run_fp_hi = 0;
    std::uint64_t run_fp_lo = 0;
    std::uint64_t run_tasks = 0;
    std::uint64_t cell_id = 0;
    enum { kRun, kBegin, kCommit, kFail, kEnd } type = kRun;
    if (r.literal("run ")) {
      type = kRun;
      run_fp_hi = r.hex64();
      r.literal(" ");
      run_fp_lo = r.hex64();
      r.literal(" ");
      run_tasks = r.u64();
    } else {
      r = Reader{rest};
      if (r.literal("commit ")) {
        type = kCommit;
        cell_id = r.u64();
      } else {
        r = Reader{rest};
        if (r.literal("begin ")) {
          type = kBegin;
          cell_id = r.u64();
          r.literal(" ");
          (void)r.str();
        } else {
          r = Reader{rest};
          if (r.literal("fail ")) {
            type = kFail;
            cell_id = r.u64();
            r.literal(" ");
            (void)r.str();
          } else {
            r = Reader{rest};
            if (r.literal("end ")) {
              type = kEnd;
              (void)r.u64();
              r.literal(" ");
              (void)r.u64();
              r.literal(" ");
              (void)r.u64();
              r.literal(" ");
              (void)r.u64();
            } else {
              break;  // Unknown keyword: torn or foreign tail.
            }
          }
        }
      }
    }
    if (!r.ok) break;
    const std::size_t body_len = entry_bytes_before - r.in.size();
    const std::string_view body = rest.substr(0, body_len);
    // CRC suffix: " #xxxxxxxx\n".
    if (!r.literal(" #")) break;
    if (r.in.size() < 9) break;
    std::uint32_t stored_crc = 0;
    {
      bool hex_ok = true;
      for (int i = 0; i < 8; ++i) {
        const char c = r.in[static_cast<std::size_t>(i)];
        std::uint32_t digit = 0;
        if (c >= '0' && c <= '9') {
          digit = static_cast<std::uint32_t>(c - '0');
        } else if (c >= 'a' && c <= 'f') {
          digit = static_cast<std::uint32_t>(c - 'a') + 10;
        } else {
          hex_ok = false;
          break;
        }
        stored_crc = (stored_crc << 4) | digit;
      }
      if (!hex_ok) break;
    }
    r.in.remove_prefix(8);
    if (!r.literal("\n")) break;
    if (stored_crc != crc32(body)) break;

    // Entry verified — apply it.
    switch (type) {
      case kRun:
        if (run_tasks > (1ull << 32)) {
          semantic_ok = false;
          break;
        }
        if (!have_run_record_ || run_fp_hi != rec_fp_hi_ ||
            run_fp_lo != rec_fp_lo_ ||
            static_cast<std::size_t>(run_tasks) != rec_tasks_) {
          // A run record with a new identity owns everything after it.
          committed_.assign(static_cast<std::size_t>(run_tasks), 0);
        }
        have_run_record_ = true;
        rec_fp_hi_ = run_fp_hi;
        rec_fp_lo_ = run_fp_lo;
        rec_tasks_ = static_cast<std::size_t>(run_tasks);
        break;
      case kCommit:
        if (!have_run_record_ || cell_id >= rec_tasks_) {
          semantic_ok = false;
          break;
        }
        if (committed_[static_cast<std::size_t>(cell_id)] == 0) {
          committed_[static_cast<std::size_t>(cell_id)] = 1;
          ++stats_.committed_recovered;
        }
        break;
      case kBegin:
      case kFail:
        if (!have_run_record_ || cell_id >= rec_tasks_) semantic_ok = false;
        break;
      case kEnd:
        if (!have_run_record_) semantic_ok = false;
        break;
    }
    if (!semantic_ok) break;
    ++stats_.entries_recovered;
    const std::size_t consumed = rest.size() - r.in.size();
    valid_end += consumed;
    rest = r.in;
  }

  if (valid_end < bytes.size()) {
    stats_.truncated_bytes += bytes.size() - valid_end;
    if (::ftruncate(fd_, static_cast<off_t>(valid_end)) != 0) {
      raise_errno("ftruncate", options_.path);
    }
  }
  end_offset_ = valid_end;
}

void Journal::reset_file_locked() {
  if (::ftruncate(fd_, 0) != 0) raise_errno("ftruncate", options_.path);
  have_run_record_ = false;
  rec_fp_hi_ = 0;
  rec_fp_lo_ = 0;
  rec_tasks_ = 0;
  committed_.clear();
  stats_.committed_recovered = 0;
  const ssize_t put =
      ::pwrite(fd_, kMagic.data(), kMagic.size(), 0);
  if (put != static_cast<ssize_t>(kMagic.size())) {
    raise_errno("write", options_.path);
  }
  end_offset_ = kMagic.size();
}

void Journal::append_locked(const std::string& body, bool sync) {
  std::string entry = body;
  put_crc_suffix(entry, body);
  const ssize_t put = ::pwrite(fd_, entry.data(), entry.size(),
                               static_cast<off_t>(end_offset_));
  if (put != static_cast<ssize_t>(entry.size())) {
    raise_errno("write", options_.path);
  }
  end_offset_ += entry.size();
  ++stats_.appends;
  if (sync && options_.fsync) {
    if (::fsync(fd_) != 0) raise_errno("fsync", options_.path);
    ++stats_.fsyncs;
  }
}

void Journal::bind(std::uint64_t fp_hi, std::uint64_t fp_lo,
                   std::size_t tasks) {
  if (!options_.enabled) return;
  std::lock_guard<std::mutex> lock(mutex_);
  open_and_recover_locked();
  if (bound_ && fp_hi_ == fp_hi && fp_lo_ == fp_lo && tasks_ == tasks) {
    return;  // Idempotent re-bind within one process.
  }
  const bool match = have_run_record_ && rec_fp_hi_ == fp_hi &&
                     rec_fp_lo_ == fp_lo && rec_tasks_ == tasks;
  if (!match) {
    if (have_run_record_ || stats_.committed_recovered > 0) {
      // The file holds a different sweep's history: resuming it would be
      // silent corruption, so start over.
      reset_file_locked();
    }
    committed_.assign(tasks, 0);
  } else {
    stats_.resumed = stats_.committed_recovered > 0;
    if (stats_.resumed) {
      std::fprintf(
          stderr,
          "resil: journal %s: resuming, %llu/%llu cells already "
          "committed (%llu torn byte(s) dropped)\n",
          options_.path.c_str(),
          static_cast<unsigned long long>(stats_.committed_recovered),
          static_cast<unsigned long long>(tasks),
          static_cast<unsigned long long>(stats_.truncated_bytes));
    }
  }
  bound_ = true;
  fp_hi_ = fp_hi;
  fp_lo_ = fp_lo;
  tasks_ = tasks;
  have_run_record_ = true;
  rec_fp_hi_ = fp_hi;
  rec_fp_lo_ = fp_lo;
  rec_tasks_ = tasks;
  std::string body = "run ";
  put_hex64(body, fp_hi);
  body.push_back(' ');
  put_hex64(body, fp_lo);
  body.push_back(' ');
  put_u64(body, tasks);
  append_locked(body, /*sync=*/true);
}

void Journal::begin_run(std::size_t tasks) {
  if (!options_.enabled) return;
  bool need_bind = false;
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (bound_ && tasks_ == tasks) return;
    // Unbound (no aggregate fingerprint known) or a task-count mismatch:
    // bind with the best identity available. A mismatch against existing
    // history resets the file inside bind().
    need_bind = true;
    hi = bound_ ? fp_hi_ : 0;
    lo = bound_ ? fp_lo_ : 0;
    bound_ = false;
  }
  if (need_bind) bind(hi, lo, tasks);
}

bool Journal::committed(std::size_t id) const {
  if (!options_.enabled) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  return id < committed_.size() && committed_[id] != 0;
}

void Journal::cell_begin(std::size_t id, const std::string& label) {
  if (!options_.enabled) return;
  std::lock_guard<std::mutex> lock(mutex_);
  std::string body = "begin ";
  put_u64(body, id);
  body.push_back(' ');
  put_str(body, std::string_view(label).substr(
                    0, std::min(label.size(), kMaxStringBytes)));
  append_locked(body, /*sync=*/false);
}

void Journal::cell_commit(std::size_t id) {
  if (!options_.enabled) return;
  std::lock_guard<std::mutex> lock(mutex_);
  std::string body = "commit ";
  put_u64(body, id);
  append_locked(body, /*sync=*/true);
  if (id < committed_.size()) committed_[id] = 1;
}

void Journal::cell_fail(std::size_t id, const std::string& message) {
  if (!options_.enabled) return;
  std::lock_guard<std::mutex> lock(mutex_);
  std::string body = "fail ";
  put_u64(body, id);
  body.push_back(' ');
  put_str(body, std::string_view(message).substr(
                    0, std::min(message.size(), kMaxStringBytes)));
  append_locked(body, /*sync=*/false);
}

void Journal::end_run(const exec::RunReport& report) {
  if (!options_.enabled) return;
  std::lock_guard<std::mutex> lock(mutex_);
  std::string body = "end ";
  put_u64(body, report.completed);
  body.push_back(' ');
  put_u64(body, report.failed);
  body.push_back(' ');
  put_u64(body, report.skipped);
  body.push_back(' ');
  put_u64(body, report.resumed);
  append_locked(body, /*sync=*/true);
}

Journal::Stats Journal::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace impact::resil
