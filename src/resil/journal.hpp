// Durable sweep journal: the crash-tolerance half of checkpoint/resume.
//
// resil::Journal is an append-only write-ahead log of sweep lifecycle
// records — run-begin (with the sweep's aggregate fingerprint), per-cell
// begin/commit/fail, run-end — in the same byte-stable text style as the
// store::Record codec (length-prefixed strings, strict readers), with a
// CRC-32 per entry and an fsync on every commit record. Recovery tolerates
// a torn tail — the half-written entry of a process killed mid-append —
// by truncating the file back to the last entry whose CRC verifies; a
// corrupt entry likewise drops itself and everything after it (suffixes of
// an unverifiable entry cannot be trusted either).
//
// Division of labour with the result cache: the journal proves a cell
// *completed*; the store::ResultCache holds the cell's *bytes*. The sweep
// engine (exec::Sweep::run_resumable) treats `committed(id)` as permission
// to trust the cell's cache probe as a resume — the probe still has to
// materialize the result, so losing the cache (or the journal) costs
// re-execution, never correctness. This is why commit records are written
// *after* the cache publish: a crash between the two degrades to a plain
// cache hit on the next run.
//
// A journal file serves exactly one sweep identity (aggregate fingerprint
// + task count, bound via bind()). Binding a different identity resets the
// file — resuming someone else's journal would be silent corruption.
//
// Layering: resil sits above exec and store; the engine reaches the
// journal only through the exec::SweepJournal interface (the same
// inversion CacheHooks uses for the cache).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "exec/sweep.hpp"

namespace impact::resil {

class Journal final : public exec::SweepJournal {
 public:
  struct Options {
    std::string path;     ///< Journal file; created on first use.
    bool enabled = true;  ///< false: every operation is a no-op.
    /// fsync commit/run/end records (begin/fail records are advisory and
    /// never synced). Disable only in tests that don't measure durability.
    bool fsync = true;
  };

  /// Recovery and append accounting, mostly for tests and the stderr
  /// resume summary.
  struct Stats {
    std::uint64_t entries_recovered = 0;  ///< Valid entries found at open.
    std::uint64_t committed_recovered = 0;  ///< Distinct committed cells.
    std::uint64_t truncated_bytes = 0;  ///< Torn/corrupt tail dropped.
    std::uint64_t appends = 0;
    std::uint64_t fsyncs = 0;
    bool resumed = false;  ///< bind() matched existing history.
  };

  explicit Journal(Options options) : options_(std::move(options)) {}
  ~Journal() override;
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Binds the journal to a sweep identity before the run starts:
  /// `fp_hi`/`fp_lo` is the sweep's aggregate fingerprint and `tasks` its
  /// cell count. Matching recovered history makes this a resume (committed
  /// cells replay); any mismatch resets the file — the path belonged to a
  /// different sweep. Opens and recovers the file on first use; throws on
  /// I/O errors (the engine degrades to journal-less execution).
  void bind(std::uint64_t fp_hi, std::uint64_t fp_lo,
            std::size_t tasks) override;

  // exec::SweepJournal --------------------------------------------------
  void begin_run(std::size_t tasks) override;
  [[nodiscard]] bool committed(std::size_t id) const override;
  void cell_begin(std::size_t id, const std::string& label) override;
  void cell_commit(std::size_t id) override;
  void cell_fail(std::size_t id, const std::string& message) override;
  void end_run(const exec::RunReport& report) override;

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] const std::string& path() const { return options_.path; }

  /// IMPACT_JOURNAL=<path> enables a durable journal at <path>; unset or
  /// empty disables (Options{.enabled = false}).
  static Options options_from_env();

 private:
  void open_and_recover_locked();
  void reset_file_locked();
  void append_locked(const std::string& body, bool sync);

  Options options_;
  mutable std::mutex mutex_;
  int fd_ = -1;
  std::uint64_t end_offset_ = 0;  ///< Append position (post-recovery).

  // Bound identity (what the current sweep claims to be).
  bool bound_ = false;
  std::uint64_t fp_hi_ = 0;
  std::uint64_t fp_lo_ = 0;
  std::size_t tasks_ = 0;

  // Recovered identity (what the file's last run record claims).
  bool recovered_ = false;       ///< open_and_recover ran.
  bool have_run_record_ = false;
  std::uint64_t rec_fp_hi_ = 0;
  std::uint64_t rec_fp_lo_ = 0;
  std::size_t rec_tasks_ = 0;
  std::vector<unsigned char> committed_;

  Stats stats_;
};

/// Builds a Journal from IMPACT_JOURNAL, or nullptr when journaling is
/// off — drivers wire the result into store::CellRunner::set_journal.
[[nodiscard]] std::unique_ptr<Journal> journal_from_env();

}  // namespace impact::resil
