// Sweep orchestration: a small dependency-aware task graph over ThreadPool.
//
// A Sweep models one experiment grid (a paper figure, an ablation table):
// tasks are added in construction order, may depend on earlier tasks (e.g.
// per-workload trace construction feeding the per-policy runs that replay
// it), and run either serially (no pool) or across a pool. Because every
// task writes only its own output cell and reads only its dependencies'
// outputs, the results are bit-identical regardless of pool size — the
// property the determinism tests (tests/test_exec.cpp) pin.
//
// Seeding: tasks that need randomness must not share an RNG (the draw
// order would then depend on the schedule). `derive_seed` gives each task
// index its own statistically-independent seed from one base seed,
// deterministically, so a parallel sweep reproduces the serial one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

#include "exec/thread_pool.hpp"

namespace impact::exec {

/// Seed for task `task_index` of a sweep seeded with `base_seed`.
/// Implemented on util::Xoshiro256 (whose splitmix64 reseed provides the
/// avalanche); distinct indices yield decorrelated streams.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t base_seed,
                                        std::uint64_t task_index);

class Sweep {
 public:
  using TaskId = std::size_t;

  /// `pool == nullptr` runs the sweep serially in insertion order.
  explicit Sweep(ThreadPool* pool = nullptr) : pool_(pool) {}

  /// Adds a task; `deps` must name tasks added earlier (insertion order is
  /// therefore always a valid topological order). Returns the task's id.
  TaskId add(std::string label, std::function<void()> fn,
             std::initializer_list<TaskId> deps = {});

  [[nodiscard]] std::size_t size() const { return tasks_.size(); }

  /// Executes the graph. Parallel mode starts every task whose
  /// dependencies completed; serial mode runs insertion order. The first
  /// task exception is rethrown after all started tasks finish; tasks not
  /// yet started when an error surfaces are skipped (their dependents too).
  void run();

 private:
  struct Task {
    std::string label;
    std::function<void()> fn;
    std::vector<TaskId> deps;
  };

  ThreadPool* pool_;
  std::vector<Task> tasks_;
};

/// Maps i -> fn(i) for i in [0, n) into an index-ordered vector, using the
/// pool when it helps. The per-index results must be independent; output
/// order (and content) never depends on the schedule.
template <typename T, typename Fn>
std::vector<T> parallel_map(ThreadPool* pool, std::size_t n, Fn&& fn) {
  std::vector<T> out(n);
  if (pool == nullptr || pool->size() <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) out[i] = fn(i);
  } else {
    pool->for_each_index(n, [&](std::size_t i) { out[i] = fn(i); });
  }
  return out;
}

}  // namespace impact::exec
