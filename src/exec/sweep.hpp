// Sweep orchestration: a small dependency-aware task graph over ThreadPool.
//
// A Sweep models one experiment grid (a paper figure, an ablation table):
// tasks are added in construction order, may depend on earlier tasks (e.g.
// per-workload trace construction feeding the per-policy runs that replay
// it), and run either serially (no pool) or across a pool. Because every
// task writes only its own output cell and reads only its dependencies'
// outputs, the results are bit-identical regardless of pool size — the
// property the determinism tests (tests/test_exec.cpp) pin.
//
// Seeding: tasks that need randomness must not share an RNG (the draw
// order would then depend on the schedule). `derive_seed` gives each task
// index its own statistically-independent seed from one base seed,
// deterministically, so a parallel sweep reproduces the serial one.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <vector>

#include <memory>

#include "exec/arena.hpp"
#include "exec/thread_pool.hpp"
#include "obs/snapshot.hpp"

namespace impact::exec {

/// Thrown by a task to signal a failure worth retrying (an injected fault,
/// a flaky resource). `run_resilient` retries these up to the policy's
/// attempt budget; any other exception type fails the cell on the first
/// throw unless the policy opts into `retry_all`.
class TransientError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Retry behaviour for the guarded runs (`run_resilient` /
/// `run_resumable`). Backoff doubles per retry from `backoff_base` up to
/// `backoff_cap`; the defaults keep tests fast while still exercising the
/// capped-exponential schedule.
///
/// Deadlines are host wall-clock budgets and never touch simulated time:
/// they bound how long the engine is willing to wait for a cell, not what
/// the cell computes, so a run that finishes within budget is bit-identical
/// with deadlines on or off. A retry loop also respects them — a backoff
/// sleep that would overshoot the cell's budget is not taken (the satellite
/// fix for retry schedules that could exceed any wall-clock bound).
struct RetryPolicy {
  std::size_t max_attempts = 3;  ///< Total tries per task (minimum 1).
  std::chrono::microseconds backoff_base{100};
  std::chrono::microseconds backoff_cap{100000};
  bool retry_all = false;  ///< Also retry non-TransientError exceptions.
  /// Per-cell wall-clock budget, measured from the cell's first attempt.
  /// An overdue cell is cancelled cooperatively by the watchdog and
  /// recorded as CellError::kDeadline. Zero disables.
  std::chrono::milliseconds cell_deadline{0};
  /// Whole-run wall-clock budget, measured from run start. Once exceeded,
  /// in-flight cells are cancelled and not-yet-started cells are refused
  /// (all recorded as kDeadline); retired cells keep their results. Zero
  /// disables.
  std::chrono::milliseconds run_deadline{0};
};

/// Cooperative cancellation flag. The guarded runs hand one token to every
/// cell; the watchdog sets it when the cell (or the whole run) goes over
/// budget. Long-running cell functions should poll `current_cancel()` at
/// loop boundaries and bail out with an exception once cancelled —
/// cancellation is advisory, never preemptive, so a cell that ignores it
/// simply runs to completion (and still wins if it succeeds).
class CancelToken {
 public:
  void cancel() noexcept { cancelled_.store(true, std::memory_order_release); }
  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// The cancellation token of the guarded-sweep cell currently executing on
/// this thread, or nullptr outside one. Cells reach their token through
/// this accessor so cell functions keep their plain `void()` signature.
[[nodiscard]] CancelToken* current_cancel() noexcept;

/// One failing (or skipped) cell of a resilient sweep run.
struct CellError {
  /// Why this cell has an error record. `kSkipped` mirrors the legacy
  /// `skipped` flag; `kDeadline` and `kShedded` are failures the engine
  /// imposed (over budget / shed by the admission gate) rather than
  /// failures the cell produced.
  enum Kind {
    kFailed = 0,   ///< The cell ran and exhausted its attempts.
    kSkipped,      ///< A dependency failed upstream; never attempted.
    kDeadline,     ///< Cancelled over budget, or refused after run expiry.
    kShedded,      ///< Shed by the admission gate; never attempted.
  };
  std::size_t task = 0;
  std::string label;
  std::size_t attempts = 0;  ///< 0 when the task was never attempted.
  bool skipped = false;      ///< True: a dependency failed upstream.
  std::string message;       ///< what() of the final failure.
  Kind kind = kFailed;
};

/// Outcome of `Sweep::run_resilient`: every cell is accounted for exactly
/// once as completed, failed, or skipped.
struct RunReport {
  std::size_t tasks = 0;
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::size_t skipped = 0;
  std::size_t retries = 0;  ///< Extra attempts beyond the first, summed.
  /// Cache accounting for tasks added via `add_cached` (all zero when the
  /// sweep has no cached tasks). A hit counts toward `completed` — the
  /// cell's result exists, it just came from the cache — and its cell
  /// function never runs. `cache_stored` counts successful publishes.
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::size_t cache_stored = 0;
  /// Resilience accounting (all zero for plain, journal-less, in-budget
  /// runs — the common case stays bit-identical to the pre-resil engine).
  /// `resumed` counts cache hits validated by a journal replay: cells a
  /// previous interrupted run committed, satisfied without re-running.
  /// `deadline_failed` and `shed` are subsets of `failed`.
  std::size_t resumed = 0;
  std::size_t deadline_failed = 0;
  std::size_t shed = 0;
  std::vector<CellError> errors;  ///< Failed + skipped cells, by task id.
  /// Per-cell obs snapshots, indexed by TaskId — populated only when the
  /// sweep ran with `set_capture(true)` (empty otherwise, and empty per
  /// cell for skipped tasks and cache hits: a hit never executes, so its
  /// slot stays empty-but-valid and mergeable). Merge them for grid-level
  /// totals.
  std::vector<obs::Snapshot> snapshots;

  [[nodiscard]] bool ok() const { return failed == 0 && skipped == 0; }
  [[nodiscard]] std::string summary() const;
};

/// Seed for task `task_index` of a sweep seeded with `base_seed`.
/// Implemented on util::Xoshiro256 (whose splitmix64 reseed provides the
/// avalanche); distinct indices yield decorrelated streams.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t base_seed,
                                        std::uint64_t task_index);

/// Optional cache integration for one task, kept deliberately generic so
/// exec stays below the store layer in the DAG: the sweep engine knows
/// "this cell might already be solved", not how solutions are addressed.
///
/// `probe()` runs before the cell function; returning true means the
/// cell's result is already available elsewhere (the probe is responsible
/// for materializing it into the caller's output slot) and the function is
/// skipped. `publish(snapshot)` runs after the cell function succeeds,
/// receiving the cell's captured obs::Snapshot (empty when the sweep ran
/// without capture). Either hook may be empty. Hooks must never break a
/// sweep: exceptions from `probe` degrade to a miss, exceptions from
/// `publish` are swallowed (the result stands, it just is not cached).
struct CacheHooks {
  std::function<bool()> probe;
  std::function<void(const obs::Snapshot&)> publish;
};

/// Durable run-lifecycle hooks for checkpoint/resume, kept abstract for
/// the same layering reason as CacheHooks: exec stays below the resil and
/// store layers, so the engine reports lifecycle facts and asks exactly
/// one question — "did an earlier run of this journal already commit cell
/// id?" — without knowing how records are persisted. resil::Journal is the
/// durable (write-ahead log) implementation.
///
/// Resume semantics: `committed(id)` alone never satisfies a cell. The
/// engine still requires the cell's cache probe to materialize the result
/// (journal = proof of completion, cache = the bytes); a committed cell
/// whose probe misses simply re-runs. This keeps a lost or truncated cache
/// a performance event, never a correctness event.
///
/// Contract: no call may break a sweep. The engine wraps every call in
/// try/catch; the first throw silences the journal for the rest of the run
/// and execution degrades to plain `run_resilient` behaviour (worst case:
/// completed work is re-done after a crash, never lost). Cell-level calls
/// may arrive concurrently from pool workers — implementations must
/// synchronize internally.
class SweepJournal {
 public:
  virtual ~SweepJournal() = default;
  /// Optional identity binding: callers that can fingerprint the whole
  /// sweep (store::CellRunner's aggregate fingerprint) bind it before the
  /// run so the journal can tell a resume of *this* sweep from a stale
  /// file belonging to another one. The engine never calls this; the
  /// default ignores it.
  virtual void bind(std::uint64_t /*fp_hi*/, std::uint64_t /*fp_lo*/,
                    std::size_t /*tasks*/) {}
  /// A guarded run over `tasks` cells is starting.
  virtual void begin_run(std::size_t tasks) = 0;
  /// True when a previous run of this journal durably committed cell `id`.
  [[nodiscard]] virtual bool committed(std::size_t id) const = 0;
  /// Cell `id` is about to execute (intent record, for diagnostics).
  virtual void cell_begin(std::size_t id, const std::string& label) = 0;
  /// Cell `id` completed and its result was offered to the cache. Ordering
  /// matters: the engine publishes to the cache first, then commits, so a
  /// crash between the two degrades to a plain cache hit on resume.
  virtual void cell_commit(std::size_t id) = 0;
  /// Cell `id` exhausted its attempts; `message` is the final failure.
  virtual void cell_fail(std::size_t id, const std::string& message) = 0;
  /// Every cell retired; `report` is the final accounting.
  virtual void end_run(const RunReport& report) = 0;
};

/// Load-shedding budgets for the guarded runs. Defaults are unlimited, in
/// which case the gate is completely inert. When a budget is exceeded the
/// engine sheds pending (ready, not yet started) cells lowest-priority
/// first — a structured kShedded error per cell, dependents skipped —
/// instead of aborting the whole process.
struct AdmissionPolicy {
  /// Maximum cells admitted at once (pending + in-flight). 0 = unlimited.
  std::size_t max_pending = 0;
  /// Budget over the sweep's own arenas (sum of bytes_allocated() across
  /// workers). Arenas are monotonic for a sweep's lifetime, so once
  /// tripped this sheds every cell not yet started. 0 = unlimited.
  std::size_t memory_budget_bytes = 0;
};

class Sweep {
 public:
  using TaskId = std::size_t;

  /// `pool == nullptr` runs the sweep serially in insertion order.
  explicit Sweep(ThreadPool* pool = nullptr) : pool_(pool) {
    // One arena per pool worker plus a fallback slot for the caller thread
    // (serial mode, or a degenerate inline batch). Tasks always run either
    // on a pool worker (parallel dispatch goes through submit) or on the
    // caller, so local_arena() is race-free without locks.
    const std::size_t slots = (pool_ != nullptr ? pool_->size() : 0) + 1;
    arenas_.reserve(slots);
    for (std::size_t i = 0; i < slots; ++i) {
      arenas_.push_back(std::make_unique<Arena>());
    }
  }

  /// Adds a task; `deps` must name tasks added earlier (insertion order is
  /// therefore always a valid topological order). Returns the task's id.
  TaskId add(std::string label, std::function<void()> fn,
             std::initializer_list<TaskId> deps = {});

  /// Like add(), but with cache hooks: `hooks.probe` may satisfy the cell
  /// without running `fn`, and `hooks.publish` offers the completed cell
  /// for caching. Works under both run() and run_resilient(); hits are
  /// counted in RunReport::cache_hits (and by the exec.sweep.cache_*
  /// counters when an obs registry is current).
  TaskId add_cached(std::string label, std::function<void()> fn,
                    CacheHooks hooks, std::initializer_list<TaskId> deps = {});

  [[nodiscard]] std::size_t size() const { return tasks_.size(); }

  /// Executes the graph. Parallel mode starts every task whose
  /// dependencies completed; serial mode runs insertion order. The first
  /// task exception is rethrown after all started tasks finish; tasks not
  /// yet started when an error surfaces are skipped (their dependents too).
  void run();

  /// Fault-tolerant execution: each task is retried per `policy` (capped
  /// exponential backoff between attempts), a task that exhausts its
  /// budget records a CellError instead of aborting the sweep, and only
  /// its dependents are skipped — every independent cell still completes.
  /// Never throws from task failures; returns the full accounting.
  RunReport run_resilient(const RetryPolicy& policy = {});

  /// `run_resilient` with a durable checkpoint journal: cells committed by
  /// a previous (interrupted) run of the same journal are satisfied from
  /// their cache probe without re-running, and every fresh completion is
  /// journaled so the *next* run can resume. An interrupted-then-resumed
  /// run retires the same cells with the same results as an uninterrupted
  /// one — bit-identical, serial or parallel.
  RunReport run_resumable(SweepJournal& journal,
                          const RetryPolicy& policy = {});

  /// Admission gate for the guarded runs (see AdmissionPolicy). The
  /// default (unlimited) leaves behaviour untouched.
  void set_admission(const AdmissionPolicy& admission) {
    admission_ = admission;
  }

  /// Shed order for the admission gate: higher priority is kept longer;
  /// ties shed the youngest (highest) task id first. Default 0. Priority
  /// also orders dispatch among simultaneously-ready cells, which cannot
  /// change any result (cells are schedule-independent by construction).
  void set_priority(TaskId id, std::int32_t priority);

  /// When enabled, `run_resilient` opens a fresh obs::Scope around every
  /// cell and stores the resulting Snapshot in RunReport::snapshots[id].
  /// Each cell writes only its own preallocated slot, so capture preserves
  /// the sweep's schedule-independence (and its bit-identical results —
  /// instrumentation reads clocks, it never advances them).
  void set_capture(bool capture) { capture_ = capture; }
  [[nodiscard]] bool capture() const { return capture_; }

  /// The calling thread's sweep-scope arena: a private bump allocator for
  /// task-local objects whose lifetime is the whole sweep (inputs built by
  /// one task and read by dependents — the dependency edges provide the
  /// happens-before; the Sweep destructor reclaims everything). Pool
  /// workers get their own arena each; any other thread (serial mode, the
  /// caller) shares the fallback slot.
  [[nodiscard]] Arena& local_arena() {
    const std::size_t w = ThreadPool::current_worker_index();
    if (pool_ != nullptr && w < pool_->size()) return *arenas_[w];
    return *arenas_.back();
  }

 private:
  struct Task {
    std::string label;
    std::function<void()> fn;
    std::vector<TaskId> deps;
    CacheHooks hooks;  ///< Empty functions on tasks added via add().
    std::int32_t priority = 0;  ///< Admission-gate shed/dispatch order.
  };

  /// The shared engine behind run_resilient (journal == nullptr) and
  /// run_resumable: one guarded scheduler covering serial and parallel
  /// execution, journaling, deadlines + watchdog, and admission control.
  RunReport run_guarded(SweepJournal* journal, const RetryPolicy& policy);

  ThreadPool* pool_;
  std::vector<Task> tasks_;
  /// Per-worker arenas + caller fallback (see local_arena). unique_ptr
  /// keeps Arena addresses stable; the vector itself is never resized
  /// after construction.
  std::vector<std::unique_ptr<Arena>> arenas_;
  bool capture_ = false;
  AdmissionPolicy admission_;
};

/// Maps i -> fn(i) for i in [0, n) into an index-ordered vector, using the
/// pool when it helps. The per-index results must be independent; output
/// order (and content) never depends on the schedule.
template <typename T, typename Fn>
std::vector<T> parallel_map(ThreadPool* pool, std::size_t n, Fn&& fn) {
  std::vector<T> out(n);
  if (pool == nullptr || pool->size() <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) out[i] = fn(i);
  } else {
    pool->for_each_index(n, [&](std::size_t i) { out[i] = fn(i); });
  }
  return out;
}

}  // namespace impact::exec
