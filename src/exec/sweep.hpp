// Sweep orchestration: a small dependency-aware task graph over ThreadPool.
//
// A Sweep models one experiment grid (a paper figure, an ablation table):
// tasks are added in construction order, may depend on earlier tasks (e.g.
// per-workload trace construction feeding the per-policy runs that replay
// it), and run either serially (no pool) or across a pool. Because every
// task writes only its own output cell and reads only its dependencies'
// outputs, the results are bit-identical regardless of pool size — the
// property the determinism tests (tests/test_exec.cpp) pin.
//
// Seeding: tasks that need randomness must not share an RNG (the draw
// order would then depend on the schedule). `derive_seed` gives each task
// index its own statistically-independent seed from one base seed,
// deterministically, so a parallel sweep reproduces the serial one.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <vector>

#include <memory>

#include "exec/arena.hpp"
#include "exec/thread_pool.hpp"
#include "obs/snapshot.hpp"

namespace impact::exec {

/// Thrown by a task to signal a failure worth retrying (an injected fault,
/// a flaky resource). `run_resilient` retries these up to the policy's
/// attempt budget; any other exception type fails the cell on the first
/// throw unless the policy opts into `retry_all`.
class TransientError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Retry behaviour for `Sweep::run_resilient`. Backoff doubles per retry
/// from `backoff_base` up to `backoff_cap`; the defaults keep tests fast
/// while still exercising the capped-exponential schedule.
struct RetryPolicy {
  std::size_t max_attempts = 3;  ///< Total tries per task (minimum 1).
  std::chrono::microseconds backoff_base{100};
  std::chrono::microseconds backoff_cap{100000};
  bool retry_all = false;  ///< Also retry non-TransientError exceptions.
};

/// One failing (or skipped) cell of a resilient sweep run.
struct CellError {
  std::size_t task = 0;
  std::string label;
  std::size_t attempts = 0;  ///< 0 when the task was never attempted.
  bool skipped = false;      ///< True: a dependency failed upstream.
  std::string message;       ///< what() of the final failure.
};

/// Outcome of `Sweep::run_resilient`: every cell is accounted for exactly
/// once as completed, failed, or skipped.
struct RunReport {
  std::size_t tasks = 0;
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::size_t skipped = 0;
  std::size_t retries = 0;  ///< Extra attempts beyond the first, summed.
  /// Cache accounting for tasks added via `add_cached` (all zero when the
  /// sweep has no cached tasks). A hit counts toward `completed` — the
  /// cell's result exists, it just came from the cache — and its cell
  /// function never runs. `cache_stored` counts successful publishes.
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::size_t cache_stored = 0;
  std::vector<CellError> errors;  ///< Failed + skipped cells, by task id.
  /// Per-cell obs snapshots, indexed by TaskId — populated only when the
  /// sweep ran with `set_capture(true)` (empty otherwise, and empty per
  /// cell for skipped tasks and cache hits: a hit never executes, so its
  /// slot stays empty-but-valid and mergeable). Merge them for grid-level
  /// totals.
  std::vector<obs::Snapshot> snapshots;

  [[nodiscard]] bool ok() const { return failed == 0 && skipped == 0; }
  [[nodiscard]] std::string summary() const;
};

/// Seed for task `task_index` of a sweep seeded with `base_seed`.
/// Implemented on util::Xoshiro256 (whose splitmix64 reseed provides the
/// avalanche); distinct indices yield decorrelated streams.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t base_seed,
                                        std::uint64_t task_index);

/// Optional cache integration for one task, kept deliberately generic so
/// exec stays below the store layer in the DAG: the sweep engine knows
/// "this cell might already be solved", not how solutions are addressed.
///
/// `probe()` runs before the cell function; returning true means the
/// cell's result is already available elsewhere (the probe is responsible
/// for materializing it into the caller's output slot) and the function is
/// skipped. `publish(snapshot)` runs after the cell function succeeds,
/// receiving the cell's captured obs::Snapshot (empty when the sweep ran
/// without capture). Either hook may be empty. Hooks must never break a
/// sweep: exceptions from `probe` degrade to a miss, exceptions from
/// `publish` are swallowed (the result stands, it just is not cached).
struct CacheHooks {
  std::function<bool()> probe;
  std::function<void(const obs::Snapshot&)> publish;
};

class Sweep {
 public:
  using TaskId = std::size_t;

  /// `pool == nullptr` runs the sweep serially in insertion order.
  explicit Sweep(ThreadPool* pool = nullptr) : pool_(pool) {
    // One arena per pool worker plus a fallback slot for the caller thread
    // (serial mode, or a degenerate inline batch). Tasks always run either
    // on a pool worker (parallel dispatch goes through submit) or on the
    // caller, so local_arena() is race-free without locks.
    const std::size_t slots = (pool_ != nullptr ? pool_->size() : 0) + 1;
    arenas_.reserve(slots);
    for (std::size_t i = 0; i < slots; ++i) {
      arenas_.push_back(std::make_unique<Arena>());
    }
  }

  /// Adds a task; `deps` must name tasks added earlier (insertion order is
  /// therefore always a valid topological order). Returns the task's id.
  TaskId add(std::string label, std::function<void()> fn,
             std::initializer_list<TaskId> deps = {});

  /// Like add(), but with cache hooks: `hooks.probe` may satisfy the cell
  /// without running `fn`, and `hooks.publish` offers the completed cell
  /// for caching. Works under both run() and run_resilient(); hits are
  /// counted in RunReport::cache_hits (and by the exec.sweep.cache_*
  /// counters when an obs registry is current).
  TaskId add_cached(std::string label, std::function<void()> fn,
                    CacheHooks hooks, std::initializer_list<TaskId> deps = {});

  [[nodiscard]] std::size_t size() const { return tasks_.size(); }

  /// Executes the graph. Parallel mode starts every task whose
  /// dependencies completed; serial mode runs insertion order. The first
  /// task exception is rethrown after all started tasks finish; tasks not
  /// yet started when an error surfaces are skipped (their dependents too).
  void run();

  /// Fault-tolerant execution: each task is retried per `policy` (capped
  /// exponential backoff between attempts), a task that exhausts its
  /// budget records a CellError instead of aborting the sweep, and only
  /// its dependents are skipped — every independent cell still completes.
  /// Never throws from task failures; returns the full accounting.
  RunReport run_resilient(const RetryPolicy& policy = {});

  /// When enabled, `run_resilient` opens a fresh obs::Scope around every
  /// cell and stores the resulting Snapshot in RunReport::snapshots[id].
  /// Each cell writes only its own preallocated slot, so capture preserves
  /// the sweep's schedule-independence (and its bit-identical results —
  /// instrumentation reads clocks, it never advances them).
  void set_capture(bool capture) { capture_ = capture; }
  [[nodiscard]] bool capture() const { return capture_; }

  /// The calling thread's sweep-scope arena: a private bump allocator for
  /// task-local objects whose lifetime is the whole sweep (inputs built by
  /// one task and read by dependents — the dependency edges provide the
  /// happens-before; the Sweep destructor reclaims everything). Pool
  /// workers get their own arena each; any other thread (serial mode, the
  /// caller) shares the fallback slot.
  [[nodiscard]] Arena& local_arena() {
    const std::size_t w = ThreadPool::current_worker_index();
    if (pool_ != nullptr && w < pool_->size()) return *arenas_[w];
    return *arenas_.back();
  }

 private:
  struct Task {
    std::string label;
    std::function<void()> fn;
    std::vector<TaskId> deps;
    CacheHooks hooks;  ///< Empty functions on tasks added via add().
  };

  ThreadPool* pool_;
  std::vector<Task> tasks_;
  /// Per-worker arenas + caller fallback (see local_arena). unique_ptr
  /// keeps Arena addresses stable; the vector itself is never resized
  /// after construction.
  std::vector<std::unique_ptr<Arena>> arenas_;
  bool capture_ = false;
};

/// Maps i -> fn(i) for i in [0, n) into an index-ordered vector, using the
/// pool when it helps. The per-index results must be independent; output
/// order (and content) never depends on the schedule.
template <typename T, typename Fn>
std::vector<T> parallel_map(ThreadPool* pool, std::size_t n, Fn&& fn) {
  std::vector<T> out(n);
  if (pool == nullptr || pool->size() <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) out[i] = fn(i);
  } else {
    pool->for_each_index(n, [&](std::size_t i) { out[i] = fn(i); });
  }
  return out;
}

}  // namespace impact::exec
