// Work-stealing thread pool: the execution substrate of the experiment
// engine (src/exec/sweep.hpp).
//
// Every paper figure this repo reproduces is an embarrassingly-parallel
// grid of independent MemorySystem runs; the pool exists to keep all cores
// busy on that grid. Tasks are coarse (whole simulated runs, milliseconds
// to seconds each), so the design optimizes for correctness under TSan and
// deterministic client results, not for nanosecond dispatch: each worker
// owns a mutex-protected deque, pops from its own front and steals from
// the back of a sibling's deque when it runs dry.
//
// Thread-count selection: `ThreadPool()` honours the IMPACT_THREADS
// environment variable, falling back to std::thread::hardware_concurrency.
// Batch results are required to be independent of where a task ran, so a
// single-worker pool (or a batch of one) may execute inline on the caller
// — determinism tests compare results across pool sizes {1, 2, 8}.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace impact::exec {

class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(unsigned threads = default_threads());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// IMPACT_THREADS if set (clamped to [1, 256]), else
  /// hardware_concurrency, else 1.
  [[nodiscard]] static unsigned default_threads();

  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Sentinel returned by current_worker_index() off-pool.
  static constexpr std::size_t kNotWorker = ~std::size_t{0};

  /// Index of the pool worker running the calling thread, or kNotWorker
  /// when the caller is not a pool worker (the main thread, a test).
  /// Workers of *any* pool report the index within their own pool; use it
  /// only to key per-worker state of the pool the work was submitted to
  /// (Sweep::local_arena does exactly that).
  [[nodiscard]] static std::size_t current_worker_index();

  /// Enqueues one task. The future carries the task's exception, if any.
  std::future<void> submit(std::function<void()> task);

  /// Runs fn(0) .. fn(n-1) across the pool and blocks until all complete.
  /// The first exception thrown by any index is rethrown here (after every
  /// started task has finished); remaining unstarted indices still run —
  /// batch members are independent by contract. n == 0 is a no-op.
  void for_each_index(std::size_t n,
                      const std::function<void(std::size_t)>& fn);

 private:
  struct Queue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void worker_loop(std::size_t self);
  /// Pops from own queue front, else steals from a sibling's back.
  bool try_pop(std::size_t self, std::function<void()>& out);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;
  std::mutex wake_mutex_;
  std::condition_variable wake_;
  std::size_t next_queue_ = 0;  ///< Round-robin submit cursor.
  std::size_t pending_ = 0;     ///< Enqueued tasks not yet claimed.
  bool stop_ = false;
};

}  // namespace impact::exec
