// Monotonic per-worker arenas for sweep-scope allocations.
//
// Multi-threaded sweeps used to pay for every WorkloadInput and result
// buffer with global-heap allocations from worker threads — exactly the
// cross-core allocator contention that makes "parallel speedup" numbers
// dishonest on a loaded machine (tools/bench.sh sweep_scaling). An Arena
// is a single-threaded bump allocator: each pool worker gets its own
// (Sweep::local_arena), so task-local objects are carved out of
// thread-private blocks and released wholesale when the sweep is done.
//
// Lifetime contract: objects created with make<T>() live until reset() or
// the arena's destruction — NOT until some scope exit. Sweeps exploit
// this: a build task allocates an input on its worker's arena, dependent
// run tasks on other workers read it (the sweep's dependency edges give
// the necessary happens-before), and the Sweep destructor reclaims
// everything after run() returns.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace impact::exec {

/// Bump allocator with block reuse. Not thread-safe by design — one arena
/// per thread (see file comment).
class Arena {
 public:
  explicit Arena(std::size_t block_bytes = kDefaultBlockBytes)
      : block_bytes_(block_bytes == 0 ? kDefaultBlockBytes : block_bytes) {}
  ~Arena() { reset(); }
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Raw storage of `bytes` aligned to `align` (a power of two).
  void* allocate(std::size_t bytes, std::size_t align) {
    util::check(align != 0 && (align & (align - 1)) == 0,
                "Arena: alignment must be a power of two");
    if (bytes == 0) bytes = 1;
    while (cursor_ < blocks_.size()) {
      if (void* p = bump(blocks_[cursor_], bytes, align)) return p;
      ++cursor_;  // This block is (effectively) full; try the next.
    }
    // `align` extra headroom guarantees the aligned offset fits even when
    // the block base is less aligned than requested.
    const std::size_t size = std::max(block_bytes_, bytes + align);
    blocks_.push_back(Block{std::make_unique<std::byte[]>(size), size, 0});
    cursor_ = blocks_.size() - 1;
    void* p = bump(blocks_.back(), bytes, align);
    util::check(p != nullptr, "Arena: fresh block cannot satisfy request");
    return p;
  }

  /// Constructs a T in arena storage. Non-trivially-destructible objects
  /// are registered and destroyed (in reverse creation order) by reset().
  template <typename T, typename... Args>
  T* make(Args&&... args) {
    void* p = allocate(sizeof(T), alignof(T));
    T* obj = ::new (p) T(std::forward<Args>(args)...);
    if constexpr (!std::is_trivially_destructible_v<T>) {
      finalizers_.push_back(
          Finalizer{obj, [](void* q) { static_cast<T*>(q)->~T(); }});
    }
    return obj;
  }

  /// Destroys every arena object (reverse order) and rewinds the bump
  /// cursor; block storage is retained for reuse.
  void reset() {
    for (auto it = finalizers_.rbegin(); it != finalizers_.rend(); ++it) {
      it->fn(it->obj);
    }
    finalizers_.clear();
    for (Block& b : blocks_) b.used = 0;
    cursor_ = 0;
    bytes_allocated_.store(0, std::memory_order_relaxed);
  }

  /// Total bytes handed out since the last reset(). Safe to read from any
  /// thread (the Sweep admission gate polls every worker's arena while
  /// cells are allocating); only the owning thread ever allocates.
  [[nodiscard]] std::size_t bytes_allocated() const {
    return bytes_allocated_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t blocks() const { return blocks_.size(); }

 private:
  static constexpr std::size_t kDefaultBlockBytes = 64 * 1024;

  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };
  struct Finalizer {
    void* obj;
    void (*fn)(void*);
  };

  /// Carves `bytes` aligned to `align` out of `b`, or returns nullptr if
  /// the block cannot hold it. Alignment is computed on the actual pointer
  /// value, not the offset, so over-aligned types stay correct.
  void* bump(Block& b, std::size_t bytes, std::size_t align) {
    const auto base = reinterpret_cast<std::uintptr_t>(b.data.get());
    const std::uintptr_t at = base + b.used;
    const std::uintptr_t aligned = (at + align - 1) & ~(align - 1);
    const std::size_t offset = static_cast<std::size_t>(aligned - base);
    if (offset + bytes > b.size) return nullptr;
    b.used = offset + bytes;
    bytes_allocated_.fetch_add(bytes, std::memory_order_relaxed);
    return b.data.get() + offset;
  }

  std::size_t block_bytes_;
  std::vector<Block> blocks_;
  std::size_t cursor_ = 0;  ///< First block with possible free space.
  std::vector<Finalizer> finalizers_;
  /// Relaxed atomic: a cross-thread progress gauge, not a synchronizer.
  std::atomic<std::size_t> bytes_allocated_{0};
};

}  // namespace impact::exec
