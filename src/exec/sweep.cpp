#include "exec/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

#include "obs/registry.hpp"
#include "obs/scope.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace impact::exec {

namespace {

/// Probes a task's cache hook; any exception degrades to a miss (the cache
/// is an accelerator, never a correctness dependency).
bool probe_task(const CacheHooks& hooks) {
  if (!hooks.probe) return false;
  try {
    return hooks.probe();
  } catch (...) {
    return false;
  }
}

/// Publishes a completed cell; returns whether the publish took. Failures
/// are swallowed for the same reason probe failures are.
bool publish_task(const CacheHooks& hooks, const obs::Snapshot& snapshot) {
  if (!hooks.publish) return false;
  try {
    hooks.publish(snapshot);
    return true;
  } catch (...) {
    return false;
  }
}

/// Mirrors a run's cache accounting into the caller's obs registry so
/// drivers see hit rates in their snapshots without extra plumbing.
void emit_cache_obs(std::size_t hits, std::size_t misses,
                    std::size_t stored) {
  if (hits + misses + stored == 0) return;
  if (obs::Registry* reg = obs::current_registry()) {
    reg->counter("exec.sweep.cache_hits").add(hits);
    reg->counter("exec.sweep.cache_misses").add(misses);
    reg->counter("exec.sweep.cache_stored").add(stored);
  }
}

}  // namespace

std::string RunReport::summary() const {
  std::string s = std::to_string(completed) + "/" + std::to_string(tasks) +
                  " tasks completed";
  s += ", " + std::to_string(failed) + " failed";
  s += ", " + std::to_string(skipped) + " skipped";
  s += ", " + std::to_string(retries) + " retries";
  if (cache_hits + cache_misses > 0) {
    s += ", " + std::to_string(cache_hits) + " cache hits / " +
         std::to_string(cache_misses) + " misses";
  }
  return s;
}

std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t task_index) {
  // Golden-ratio spacing keeps distinct indices distinct before the
  // splitmix64 avalanche inside Xoshiro256's reseed scrambles them.
  util::Xoshiro256 rng(base_seed ^
                       (0x9E3779B97F4A7C15ull * (task_index + 1)));
  return rng();
}

Sweep::TaskId Sweep::add(std::string label, std::function<void()> fn,
                         std::initializer_list<TaskId> deps) {
  return add_cached(std::move(label), std::move(fn), CacheHooks{}, deps);
}

Sweep::TaskId Sweep::add_cached(std::string label, std::function<void()> fn,
                                CacheHooks hooks,
                                std::initializer_list<TaskId> deps) {
  const TaskId id = tasks_.size();
  for (const TaskId d : deps) {
    util::check(d < id, "Sweep::add: dependency on a not-yet-added task");
  }
  tasks_.push_back(Task{std::move(label), std::move(fn),
                        std::vector<TaskId>(deps), std::move(hooks)});
  return id;
}

void Sweep::run() {
  if (tasks_.empty()) return;

  // Cache accounting for this run (run() has no RunReport to carry it, so
  // it surfaces through the exec.sweep.cache_* counters only). Atomics:
  // the parallel path updates these from worker threads.
  std::atomic<std::size_t> cache_hits{0};
  std::atomic<std::size_t> cache_misses{0};
  std::atomic<std::size_t> cache_stored{0};

  // Runs one cell through its cache hooks: a probe hit satisfies the cell
  // without executing it; a completed miss is offered back via publish
  // (with an empty snapshot — run() has no capture machinery; snapshots
  // travel through run_resilient).
  const auto run_cell = [&](TaskId id) {
    const Task& task = tasks_[id];
    if (task.hooks.probe) {
      if (probe_task(task.hooks)) {
        cache_hits.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      cache_misses.fetch_add(1, std::memory_order_relaxed);
    }
    task.fn();
    if (publish_task(task.hooks, obs::Snapshot{})) {
      cache_stored.fetch_add(1, std::memory_order_relaxed);
    }
  };

  if (pool_ == nullptr || pool_->size() <= 1) {
    // Insertion order is topological by construction.
    std::exception_ptr first;
    std::vector<bool> failed(tasks_.size(), false);
    for (TaskId id = 0; id < tasks_.size(); ++id) {
      bool skip = first != nullptr;
      for (const TaskId d : tasks_[id].deps) skip = skip || failed[d];
      if (skip) {
        failed[id] = true;
        continue;
      }
      try {
        run_cell(id);
      } catch (...) {
        failed[id] = true;
        if (!first) first = std::current_exception();
      }
    }
    emit_cache_obs(cache_hits.load(), cache_misses.load(),
                   cache_stored.load());
    if (first) std::rethrow_exception(first);
    return;
  }

  // Parallel execution: scheduler state shared between the submitting
  // thread and the workers, all guarded by one mutex (tasks are coarse).
  struct State {
    std::mutex mutex;
    std::condition_variable done_cv;
    std::vector<std::size_t> unmet;        // Unfinished dependency count.
    std::vector<std::vector<TaskId>> dependents;
    std::size_t remaining = 0;             // Tasks not yet finished/skipped.
    std::exception_ptr first_error;
  } state;

  state.unmet.assign(tasks_.size(), 0);
  state.dependents.assign(tasks_.size(), {});
  for (TaskId id = 0; id < tasks_.size(); ++id) {
    state.unmet[id] = tasks_[id].deps.size();
    for (const TaskId d : tasks_[id].deps) {
      state.dependents[d].push_back(id);
    }
  }
  state.remaining = tasks_.size();

  // Runs `id`, then retires it and launches newly-ready dependents.
  std::function<void(TaskId)> execute = [&](TaskId id) {
    bool cancelled = false;
    {
      std::lock_guard<std::mutex> lock(state.mutex);
      cancelled = state.first_error != nullptr;
    }
    if (!cancelled) {
      try {
        run_cell(id);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state.mutex);
        if (!state.first_error) state.first_error = std::current_exception();
      }
    }
    std::vector<TaskId> ready;
    {
      std::lock_guard<std::mutex> lock(state.mutex);
      for (const TaskId dep : state.dependents[id]) {
        if (--state.unmet[dep] == 0) ready.push_back(dep);
      }
      if (--state.remaining == 0) state.done_cv.notify_all();
    }
    for (const TaskId r : ready) {
      (void)pool_->submit([&execute, r] { execute(r); });
    }
  };

  for (TaskId id = 0; id < tasks_.size(); ++id) {
    if (tasks_[id].deps.empty()) {
      (void)pool_->submit([&execute, id] { execute(id); });
    }
  }
  {
    std::unique_lock<std::mutex> lock(state.mutex);
    state.done_cv.wait(lock, [&] { return state.remaining == 0; });
  }
  emit_cache_obs(cache_hits.load(), cache_misses.load(),
                 cache_stored.load());
  if (state.first_error) std::rethrow_exception(state.first_error);
}

namespace {

struct Attempt {
  bool ok = false;
  std::size_t attempts = 0;
  std::string message;
};

/// Runs `fn` under the retry policy. TransientError always re-tries while
/// budget remains; other exceptions re-try only under `retry_all`.
Attempt run_with_retries(const std::function<void()>& fn,
                         const RetryPolicy& policy) {
  const std::size_t budget = std::max<std::size_t>(1, policy.max_attempts);
  auto delay = policy.backoff_base;
  Attempt out;
  for (std::size_t attempt = 1; attempt <= budget; ++attempt) {
    out.attempts = attempt;
    try {
      fn();
      out.ok = true;
      return out;
    } catch (const TransientError& e) {
      out.message = e.what();
    } catch (const std::exception& e) {
      out.message = e.what();
      if (!policy.retry_all) return out;
    } catch (...) {
      out.message = "non-standard exception";
      if (!policy.retry_all) return out;
    }
    if (attempt < budget && delay.count() > 0) {
      std::this_thread::sleep_for(delay);
      delay = std::min(policy.backoff_cap, delay * 2);
    }
  }
  return out;
}

}  // namespace

namespace {

/// Full outcome of one resilient cell: the attempt record plus the cache
/// facts the retire step folds into the report under its lock.
struct CellOutcome {
  Attempt attempt;
  bool probed = false;  ///< Task had a probe hook.
  bool hit = false;     ///< Probe satisfied the cell; fn never ran.
  bool stored = false;  ///< Publish hook accepted the completed cell.
};

}  // namespace

RunReport Sweep::run_resilient(const RetryPolicy& policy) {
  RunReport report;
  report.tasks = tasks_.size();
  if (tasks_.empty()) return report;
  // Preallocated before any task starts: concurrent cells then write only
  // their own (distinct) slot, so capture needs no extra locking.
  if (capture_) report.snapshots.resize(tasks_.size());
  // Which cells never executed — satisfied by their cache probe, or
  // skipped because a dependency failed — recorded so the post-run
  // assertion can check their snapshot slots stayed empty. unsigned char
  // (not vector<bool>): concurrent cells write distinct slots.
  std::vector<unsigned char> cache_hit(tasks_.size(), 0);
  std::vector<unsigned char> dep_skipped(tasks_.size(), 0);

  // Runs one cell through probe -> retries -> publish, under a fresh obs
  // scope when capture is on. The scope is per-attempt-sequence (not
  // per-attempt): a retried cell's snapshot accumulates the traffic of
  // every attempt, which is the honest cost. A probe hit never opens a
  // scope — the cell does no work, so its snapshot slot must stay empty.
  // Publish runs after the scope closes (the cell's own telemetry is
  // sealed first) and only for successful cells.
  const auto attempt_cell = [&](TaskId id) {
    const Task& task = tasks_[id];
    CellOutcome out;
    out.probed = static_cast<bool>(task.hooks.probe);
    if (out.probed && probe_task(task.hooks)) {
      out.hit = true;
      out.attempt.ok = true;
      out.attempt.attempts = 1;  // Retire arithmetic: zero retries.
      cache_hit[id] = 1;
      return out;
    }
    if (!capture_) {
      out.attempt = run_with_retries(task.fn, policy);
      if (out.attempt.ok) {
        out.stored = publish_task(task.hooks, obs::Snapshot{});
      }
      return out;
    }
    {
      obs::Scope scope;
      out.attempt = run_with_retries(task.fn, policy);
      report.snapshots[id] = scope.snapshot();
    }
    if (out.attempt.ok) {
      out.stored = publish_task(task.hooks, report.snapshots[id]);
    }
    return out;
  };

  // Folds one retired cell into the report. Caller holds whatever lock
  // protects the report (none in serial mode).
  const auto account = [&report](const CellOutcome& out) {
    report.retries += out.attempt.attempts - 1;
    if (out.hit) {
      ++report.cache_hits;
    } else if (out.probed) {
      ++report.cache_misses;
    }
    if (out.stored) ++report.cache_stored;
    if (out.attempt.ok) ++report.completed;
  };

  // Every cell that never executed (cache hit or dependency skip) must
  // leave its preallocated snapshot slot empty-but-valid: merging the
  // grid's snapshots would otherwise double-count cached work, and the
  // CellRunner relies on "empty slot == no fresh telemetry" to splice
  // cached snapshots back in. Enforced, not assumed. (Cells that ran and
  // failed are excluded on purpose: their snapshots hold the traffic of
  // the failed attempts, which is real.)
  const auto assert_unrun_slots_empty = [&] {
    if (!capture_) return;
    for (TaskId id = 0; id < tasks_.size(); ++id) {
      if (cache_hit[id] != 0 || dep_skipped[id] != 0) {
        IMPACT_ASSERT(report.snapshots[id].empty());
      }
    }
  };

  if (pool_ == nullptr || pool_->size() <= 1) {
    std::vector<bool> failed(tasks_.size(), false);
    for (TaskId id = 0; id < tasks_.size(); ++id) {
      bool dep_failed = false;
      for (const TaskId d : tasks_[id].deps) {
        dep_failed = dep_failed || failed[d];
      }
      if (dep_failed) {
        failed[id] = true;
        dep_skipped[id] = 1;
        ++report.skipped;
        report.errors.push_back(CellError{id, tasks_[id].label, 0, true,
                                          "skipped: dependency failed"});
        continue;
      }
      const CellOutcome out = attempt_cell(id);
      account(out);
      if (!out.attempt.ok) {
        failed[id] = true;
        ++report.failed;
        report.errors.push_back(CellError{id, tasks_[id].label,
                                          out.attempt.attempts, false,
                                          out.attempt.message});
      }
    }
    assert_unrun_slots_empty();
    emit_cache_obs(report.cache_hits, report.cache_misses,
                   report.cache_stored);
    return report;
  }

  // Parallel mode: same scheduler as run(), but a failure poisons only the
  // failing task's transitive dependents — everything else keeps running.
  struct State {
    std::mutex mutex;
    std::condition_variable done_cv;
    std::vector<std::size_t> unmet;
    std::vector<std::vector<TaskId>> dependents;
    std::vector<bool> failed;
    std::size_t remaining = 0;
  } state;

  state.unmet.assign(tasks_.size(), 0);
  state.dependents.assign(tasks_.size(), {});
  state.failed.assign(tasks_.size(), false);
  for (TaskId id = 0; id < tasks_.size(); ++id) {
    state.unmet[id] = tasks_[id].deps.size();
    for (const TaskId d : tasks_[id].deps) {
      state.dependents[d].push_back(id);
    }
  }
  state.remaining = tasks_.size();

  // Per-cell error records are built on the executing worker's sweep arena
  // and published into a preallocated slot: the string construction happens
  // outside the scheduler lock on thread-private storage, and the caller
  // collects the slots (in task order) only after every cell retired — the
  // `remaining` handshake under `state.mutex` provides the happens-before.
  std::vector<CellError*> cell_errors(tasks_.size(), nullptr);

  std::function<void(TaskId)> execute = [&](TaskId id) {
    bool dep_failed = false;
    {
      std::lock_guard<std::mutex> lock(state.mutex);
      for (const TaskId d : tasks_[id].deps) {
        dep_failed = dep_failed || state.failed[d];
      }
    }
    CellOutcome out;
    if (!dep_failed) out = attempt_cell(id);
    if (dep_failed) {
      dep_skipped[id] = 1;
      cell_errors[id] = local_arena().make<CellError>(
          CellError{id, tasks_[id].label, 0, true,
                    "skipped: dependency failed"});
    } else if (!out.attempt.ok) {
      cell_errors[id] = local_arena().make<CellError>(
          CellError{id, tasks_[id].label, out.attempt.attempts, false,
                    std::move(out.attempt.message)});
    }

    std::vector<TaskId> ready;
    {
      std::lock_guard<std::mutex> lock(state.mutex);
      if (dep_failed) {
        state.failed[id] = true;
        ++report.skipped;
      } else {
        account(out);
        if (!out.attempt.ok) {
          state.failed[id] = true;
          ++report.failed;
        }
      }
      for (const TaskId dep : state.dependents[id]) {
        if (--state.unmet[dep] == 0) ready.push_back(dep);
      }
      if (--state.remaining == 0) state.done_cv.notify_all();
    }
    for (const TaskId r : ready) {
      (void)pool_->submit([&execute, r] { execute(r); });
    }
  };

  for (TaskId id = 0; id < tasks_.size(); ++id) {
    if (tasks_[id].deps.empty()) {
      (void)pool_->submit([&execute, id] { execute(id); });
    }
  }
  {
    std::unique_lock<std::mutex> lock(state.mutex);
    state.done_cv.wait(lock, [&] { return state.remaining == 0; });
  }
  // Slot order is task order, so no sort is needed.
  for (CellError* e : cell_errors) {
    if (e != nullptr) report.errors.push_back(std::move(*e));
  }
  assert_unrun_slots_empty();
  emit_cache_obs(report.cache_hits, report.cache_misses,
                 report.cache_stored);
  return report;
}

}  // namespace impact::exec
