#include "exec/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

#include "obs/registry.hpp"
#include "obs/scope.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace impact::exec {

namespace {

/// Probes a task's cache hook; any exception degrades to a miss (the cache
/// is an accelerator, never a correctness dependency).
bool probe_task(const CacheHooks& hooks) {
  if (!hooks.probe) return false;
  try {
    return hooks.probe();
  } catch (...) {
    return false;
  }
}

/// Publishes a completed cell; returns whether the publish took. Failures
/// are swallowed for the same reason probe failures are.
bool publish_task(const CacheHooks& hooks, const obs::Snapshot& snapshot) {
  if (!hooks.publish) return false;
  try {
    hooks.publish(snapshot);
    return true;
  } catch (...) {
    return false;
  }
}

/// Mirrors a run's cache accounting into the caller's obs registry so
/// drivers see hit rates in their snapshots without extra plumbing.
void emit_cache_obs(std::size_t hits, std::size_t misses,
                    std::size_t stored) {
  if (hits + misses + stored == 0) return;
  if (obs::Registry* reg = obs::current_registry()) {
    reg->counter("exec.sweep.cache_hits").add(hits);
    reg->counter("exec.sweep.cache_misses").add(misses);
    reg->counter("exec.sweep.cache_stored").add(stored);
  }
}

}  // namespace

std::string RunReport::summary() const {
  std::string s = std::to_string(completed) + "/" + std::to_string(tasks) +
                  " tasks completed";
  s += ", " + std::to_string(failed) + " failed";
  s += ", " + std::to_string(skipped) + " skipped";
  s += ", " + std::to_string(retries) + " retries";
  if (cache_hits + cache_misses > 0) {
    s += ", " + std::to_string(cache_hits) + " cache hits / " +
         std::to_string(cache_misses) + " misses";
  }
  // Resilience facts only when present, so journal-less in-budget runs
  // keep the exact summary text older tests and logs pin.
  if (resumed > 0) s += ", " + std::to_string(resumed) + " resumed";
  if (deadline_failed > 0) {
    s += ", " + std::to_string(deadline_failed) + " over deadline";
  }
  if (shed > 0) s += ", " + std::to_string(shed) + " shed";
  return s;
}

std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t task_index) {
  // Golden-ratio spacing keeps distinct indices distinct before the
  // splitmix64 avalanche inside Xoshiro256's reseed scrambles them.
  util::Xoshiro256 rng(base_seed ^
                       (0x9E3779B97F4A7C15ull * (task_index + 1)));
  return rng();
}

Sweep::TaskId Sweep::add(std::string label, std::function<void()> fn,
                         std::initializer_list<TaskId> deps) {
  return add_cached(std::move(label), std::move(fn), CacheHooks{}, deps);
}

Sweep::TaskId Sweep::add_cached(std::string label, std::function<void()> fn,
                                CacheHooks hooks,
                                std::initializer_list<TaskId> deps) {
  const TaskId id = tasks_.size();
  for (const TaskId d : deps) {
    util::check(d < id, "Sweep::add: dependency on a not-yet-added task");
  }
  tasks_.push_back(Task{std::move(label), std::move(fn),
                        std::vector<TaskId>(deps), std::move(hooks)});
  return id;
}

void Sweep::run() {
  if (tasks_.empty()) return;

  // Cache accounting for this run (run() has no RunReport to carry it, so
  // it surfaces through the exec.sweep.cache_* counters only). Atomics:
  // the parallel path updates these from worker threads.
  std::atomic<std::size_t> cache_hits{0};
  std::atomic<std::size_t> cache_misses{0};
  std::atomic<std::size_t> cache_stored{0};

  // Runs one cell through its cache hooks: a probe hit satisfies the cell
  // without executing it; a completed miss is offered back via publish
  // (with an empty snapshot — run() has no capture machinery; snapshots
  // travel through run_resilient).
  const auto run_cell = [&](TaskId id) {
    const Task& task = tasks_[id];
    if (task.hooks.probe) {
      if (probe_task(task.hooks)) {
        cache_hits.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      cache_misses.fetch_add(1, std::memory_order_relaxed);
    }
    task.fn();
    if (publish_task(task.hooks, obs::Snapshot{})) {
      cache_stored.fetch_add(1, std::memory_order_relaxed);
    }
  };

  if (pool_ == nullptr || pool_->size() <= 1) {
    // Insertion order is topological by construction.
    std::exception_ptr first;
    std::vector<bool> failed(tasks_.size(), false);
    for (TaskId id = 0; id < tasks_.size(); ++id) {
      bool skip = first != nullptr;
      for (const TaskId d : tasks_[id].deps) skip = skip || failed[d];
      if (skip) {
        failed[id] = true;
        continue;
      }
      try {
        run_cell(id);
      } catch (...) {
        failed[id] = true;
        if (!first) first = std::current_exception();
      }
    }
    emit_cache_obs(cache_hits.load(), cache_misses.load(),
                   cache_stored.load());
    if (first) std::rethrow_exception(first);
    return;
  }

  // Parallel execution: scheduler state shared between the submitting
  // thread and the workers, all guarded by one mutex (tasks are coarse).
  struct State {
    std::mutex mutex;
    std::condition_variable done_cv;
    std::vector<std::size_t> unmet;        // Unfinished dependency count.
    std::vector<std::vector<TaskId>> dependents;
    std::size_t remaining = 0;             // Tasks not yet finished/skipped.
    std::exception_ptr first_error;
  } state;

  state.unmet.assign(tasks_.size(), 0);
  state.dependents.assign(tasks_.size(), {});
  for (TaskId id = 0; id < tasks_.size(); ++id) {
    state.unmet[id] = tasks_[id].deps.size();
    for (const TaskId d : tasks_[id].deps) {
      state.dependents[d].push_back(id);
    }
  }
  state.remaining = tasks_.size();

  // Runs `id`, then retires it and launches newly-ready dependents.
  std::function<void(TaskId)> execute = [&](TaskId id) {
    bool cancelled = false;
    {
      std::lock_guard<std::mutex> lock(state.mutex);
      cancelled = state.first_error != nullptr;
    }
    if (!cancelled) {
      try {
        run_cell(id);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state.mutex);
        if (!state.first_error) state.first_error = std::current_exception();
      }
    }
    std::vector<TaskId> ready;
    {
      std::lock_guard<std::mutex> lock(state.mutex);
      for (const TaskId dep : state.dependents[id]) {
        if (--state.unmet[dep] == 0) ready.push_back(dep);
      }
      if (--state.remaining == 0) state.done_cv.notify_all();
    }
    for (const TaskId r : ready) {
      (void)pool_->submit([&execute, r] { execute(r); });
    }
  };

  for (TaskId id = 0; id < tasks_.size(); ++id) {
    if (tasks_[id].deps.empty()) {
      (void)pool_->submit([&execute, id] { execute(id); });
    }
  }
  {
    std::unique_lock<std::mutex> lock(state.mutex);
    // Bounded by the tasks themselves: every started task retires and run()
    // has no cancellation to wait out.
    // SIMLINT-ALLOW(unbounded-wait)
    state.done_cv.wait(lock, [&] { return state.remaining == 0; });
  }
  emit_cache_obs(cache_hits.load(), cache_misses.load(),
                 cache_stored.load());
  if (state.first_error) std::rethrow_exception(state.first_error);
}

namespace {

/// Host wall-clock for deadlines and retry budgets only. These bound how
/// long the engine is willing to *wait* for a cell; they never feed
/// simulated time or any result byte, so output determinism is unaffected.
// SIMLINT-ALLOW(nondet-chrono-clock)
using HostClock = std::chrono::steady_clock;

/// The token of the guarded-sweep cell currently executing on this thread.
/// Thread-local for the same reason as the pool's worker index: every
/// executing thread needs a private slot, and cells are the only readers.
// SIMLINT-ALLOW(thread-local, global-state)
thread_local CancelToken* tls_cancel = nullptr;

struct Attempt {
  bool ok = false;
  std::size_t attempts = 0;
  std::string message;
  bool cancelled = false;  ///< Cancellation observed by the retry loop.
};

/// Wall-clock bounds on one cell's retry loop.
struct RetryBounds {
  CancelToken* token = nullptr;  ///< Polled between attempts and mid-sleep.
  bool has_deadline = false;
  HostClock::time_point deadline{};
};

/// Runs `fn` under the retry policy. TransientError always re-tries while
/// budget remains; other exceptions re-try only under `retry_all`. The
/// attempt budget is additionally wall-clock bounded: a backoff sleep that
/// would overshoot `bounds.deadline` is not taken (the time is better
/// spent reporting the failure than sleeping past the budget), and a
/// cancelled token stops the loop between attempts and mid-backoff.
Attempt run_with_retries(const std::function<void()>& fn,
                         const RetryPolicy& policy,
                         const RetryBounds& bounds) {
  const std::size_t budget = std::max<std::size_t>(1, policy.max_attempts);
  auto delay = policy.backoff_base;
  Attempt out;
  for (std::size_t attempt = 1; attempt <= budget; ++attempt) {
    if (bounds.token != nullptr && bounds.token->cancelled()) {
      out.cancelled = true;
      if (out.message.empty()) out.message = "cancelled before first attempt";
      return out;
    }
    out.attempts = attempt;
    try {
      fn();
      out.ok = true;
      return out;
    } catch (const TransientError& e) {
      out.message = e.what();
    } catch (const std::exception& e) {
      out.message = e.what();
      if (!policy.retry_all) return out;
    } catch (...) {
      out.message = "non-standard exception";
      if (!policy.retry_all) return out;
    }
    if (attempt < budget && delay.count() > 0) {
      if (bounds.has_deadline &&
          HostClock::now() + delay >= bounds.deadline) {
        out.message += " (retries stopped by deadline)";
        return out;
      }
      // Sliced sleep: a watchdog cancellation cuts the wait short instead
      // of being noticed only after a multi-second backoff expires.
      auto left = delay;
      while (left.count() > 0) {
        if (bounds.token != nullptr && bounds.token->cancelled()) {
          out.cancelled = true;
          out.message += " (cancelled during backoff)";
          return out;
        }
        const auto slice = std::min(left, std::chrono::microseconds(2000));
        std::this_thread::sleep_for(slice);
        left -= slice;
      }
      delay = std::min(policy.backoff_cap, delay * 2);
    }
  }
  return out;
}

/// Full outcome of one guarded cell: the attempt record plus the facts
/// the retire step folds into the report under its lock.
struct CellOutcome {
  Attempt attempt;
  bool probed = false;    ///< Task had a probe hook.
  bool hit = false;       ///< Probe satisfied the cell; fn never ran.
  bool resumed = false;   ///< Hit pre-validated by the journal replay.
  bool stored = false;    ///< Publish hook accepted the completed cell.
  bool deadline = false;  ///< Failure attributable to a deadline.
};

/// Mirrors resilience accounting into the caller's obs registry. Silent
/// when nothing resil-specific happened, so plain runs emit nothing new.
void emit_resil_obs(const RunReport& report, std::size_t watchdog_fired) {
  if (report.resumed + report.deadline_failed + report.shed +
          watchdog_fired ==
      0) {
    return;
  }
  if (obs::Registry* reg = obs::current_registry()) {
    reg->counter("exec.resil.resumed").add(report.resumed);
    reg->counter("exec.resil.deadline_failed").add(report.deadline_failed);
    reg->counter("exec.resil.shed").add(report.shed);
    reg->counter("exec.resil.watchdog_cancels").add(watchdog_fired);
  }
}

}  // namespace

CancelToken* current_cancel() noexcept { return tls_cancel; }

void Sweep::set_priority(TaskId id, std::int32_t priority) {
  util::check(id < tasks_.size(), "Sweep::set_priority: unknown task id");
  tasks_[id].priority = priority;
}

RunReport Sweep::run_resilient(const RetryPolicy& policy) {
  return run_guarded(nullptr, policy);
}

RunReport Sweep::run_resumable(SweepJournal& journal,
                               const RetryPolicy& policy) {
  return run_guarded(&journal, policy);
}

RunReport Sweep::run_guarded(SweepJournal* journal,
                             const RetryPolicy& policy) {
  RunReport report;
  report.tasks = tasks_.size();
  const std::size_t n = tasks_.size();
  if (n == 0) return report;
  // Preallocated before any task starts: concurrent cells then write only
  // their own (distinct) slot, so capture needs no extra locking.
  if (capture_) report.snapshots.resize(n);

  // --- Journal: replay history once, then write-only. --------------------
  // The committed set is snapshotted before anything executes; afterwards
  // the journal is only appended to. The first call that throws silences
  // the journal for the rest of the run and execution degrades to plain
  // run_resilient behaviour (correctness never depends on the journal).
  std::atomic<bool> journal_ok{journal != nullptr};
  std::vector<unsigned char> replay(n, 0);
  if (journal_ok.load(std::memory_order_relaxed)) {
    try {
      journal->begin_run(n);
      for (TaskId id = 0; id < n; ++id) {
        replay[id] = journal->committed(id) ? 1 : 0;
      }
    } catch (...) {
      journal_ok.store(false, std::memory_order_relaxed);
      std::fill(replay.begin(), replay.end(), 0);
    }
  }
  const auto journal_try = [&](auto&& op) {
    if (!journal_ok.load(std::memory_order_relaxed)) return;
    try {
      op();
    } catch (...) {
      journal_ok.store(false, std::memory_order_relaxed);
    }
  };

  // --- Deadlines: per-cell tokens, start stamps, watchdog thread. --------
  const bool cell_dl_on = policy.cell_deadline.count() > 0;
  const bool run_dl_on = policy.run_deadline.count() > 0;
  const bool watchdog_on = cell_dl_on || run_dl_on;
  const auto run_start = HostClock::now();
  const auto since_start_ns = [&run_start] {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               HostClock::now() - run_start)
        .count();
  };
  const auto to_ns = [](std::chrono::milliseconds ms) {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(ms).count();
  };

  std::vector<CancelToken> tokens(watchdog_on ? n : 0);
  // Per-cell start stamp: ns-since-run-start + 1 (0 = not running).
  // Written by the executing thread, scanned by the watchdog.
  std::unique_ptr<std::atomic<std::int64_t>[]> started;
  if (watchdog_on) {
    started.reset(new std::atomic<std::int64_t>[n]);
    for (std::size_t i = 0; i < n; ++i) {
      started[i].store(0, std::memory_order_relaxed);
    }
  }
  std::atomic<bool> run_expired{false};
  std::atomic<std::size_t> watchdog_fired{0};

  struct WatchdogGate {
    std::mutex mutex;
    std::condition_variable cv;
    bool stop = false;
  } wd_gate;
  std::thread watchdog;
  if (watchdog_on) {
    // Tick at 1/8 of the tightest budget, clamped to [1, 50] ms: prompt
    // enough to catch an overdue cell quickly, cheap enough to be
    // invisible. Cancellation is cooperative — the watchdog only flips
    // tokens; cells notice at their next poll or retry boundary.
    std::chrono::milliseconds tick{50};
    if (cell_dl_on) tick = std::min(tick, policy.cell_deadline / 8);
    if (run_dl_on) tick = std::min(tick, policy.run_deadline / 8);
    tick = std::max(tick, std::chrono::milliseconds{1});
    const std::int64_t cell_budget_ns =
        cell_dl_on ? to_ns(policy.cell_deadline) : 0;
    const std::int64_t run_budget_ns =
        run_dl_on ? to_ns(policy.run_deadline) : 0;
    watchdog = std::thread([&, tick, cell_budget_ns, run_budget_ns] {
      std::unique_lock<std::mutex> lock(wd_gate.mutex);
      for (;;) {
        wd_gate.cv.wait_for(lock, tick, [&] { return wd_gate.stop; });
        if (wd_gate.stop) return;
        const std::int64_t now_ns = since_start_ns();
        if (run_dl_on && now_ns >= run_budget_ns &&
            !run_expired.exchange(true)) {
          // Whole run over budget: cancel everything in flight; the
          // scheduler refuses cells that have not started yet.
          for (std::size_t i = 0; i < n; ++i) tokens[i].cancel();
          watchdog_fired.fetch_add(1, std::memory_order_relaxed);
        }
        if (!cell_dl_on) continue;
        for (std::size_t i = 0; i < n; ++i) {
          const std::int64_t s = started[i].load(std::memory_order_acquire);
          if (s == 0 || tokens[i].cancelled()) continue;
          if (now_ns - (s - 1) >= cell_budget_ns) {
            tokens[i].cancel();
            watchdog_fired.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }

  // --- Scheduler state (one mutex — tasks are coarse). -------------------
  struct State {
    std::mutex mutex;
    std::condition_variable done_cv;
    std::vector<std::size_t> unmet;
    std::vector<std::vector<TaskId>> dependents;
    std::vector<bool> failed;
    std::vector<TaskId> ready;    ///< Newly unblocked, not yet triaged.
    std::vector<TaskId> pending;  ///< Admitted candidates, not started.
    std::size_t inflight = 0;
    std::size_t remaining = 0;
  } state;
  state.unmet.assign(n, 0);
  state.dependents.assign(n, {});
  state.failed.assign(n, false);
  for (TaskId id = 0; id < n; ++id) {
    state.unmet[id] = tasks_[id].deps.size();
    for (const TaskId d : tasks_[id].deps) {
      state.dependents[d].push_back(id);
    }
  }
  state.remaining = n;
  for (TaskId id = 0; id < n; ++id) {
    if (state.unmet[id] == 0) state.ready.push_back(id);
  }

  // Which cells never executed — cache hit, dependency skip, shed, or
  // deadline refusal — so the post-run assertion can check their snapshot
  // slots stayed empty. unsigned char, not vector<bool>: concurrent cells
  // write distinct slots.
  std::vector<unsigned char> cache_hit(n, 0);
  std::vector<unsigned char> never_ran(n, 0);
  // Per-cell error records, arena-built by whichever thread retires the
  // cell into a preallocated slot; the caller collects them in task order
  // only after every cell retired (the `remaining` handshake under
  // `state.mutex` provides the happens-before). Slot order is task order,
  // so no sort is needed.
  std::vector<CellError*> cell_errors(n, nullptr);

  // Retires a cell that will never execute. Lock held. Newly-unblocked
  // dependents land in state.ready for pump_locked to triage.
  const auto retire_unrun = [&](TaskId id, CellError::Kind kind,
                                const char* message) {
    state.failed[id] = true;
    never_ran[id] = 1;
    if (kind == CellError::kSkipped) {
      ++report.skipped;
    } else {
      ++report.failed;
      if (kind == CellError::kDeadline) ++report.deadline_failed;
      if (kind == CellError::kShedded) ++report.shed;
    }
    cell_errors[id] = local_arena().make<CellError>(
        CellError{id, tasks_[id].label, 0, kind == CellError::kSkipped,
                  message, kind});
    for (const TaskId dep : state.dependents[id]) {
      if (--state.unmet[dep] == 0) state.ready.push_back(dep);
    }
    --state.remaining;
  };

  const bool admission_on =
      admission_.max_pending > 0 || admission_.memory_budget_bytes > 0;
  const auto arena_bytes = [&] {
    std::size_t total = 0;
    for (const auto& a : arenas_) total += a->bytes_allocated();
    return total;
  };
  const auto over_budget = [&] {
    if (admission_.max_pending > 0 &&
        state.pending.size() + state.inflight > admission_.max_pending) {
      return true;
    }
    if (admission_.memory_budget_bytes > 0 &&
        arena_bytes() > admission_.memory_budget_bytes) {
      return true;
    }
    return false;
  };

  // Triages ready cells (dependency-failed ones retire as skipped, which
  // can cascade), enforces the admission budget by shedding the worst
  // pending cell while over it, then pops up to `max_dispatch` cells to
  // start — best (highest priority, lowest id) first. Lock held.
  const auto pump_locked = [&](std::size_t max_dispatch,
                               std::vector<TaskId>& dispatch) {
    for (;;) {
      while (!state.ready.empty()) {
        const TaskId id = state.ready.back();
        state.ready.pop_back();
        bool dep_failed = false;
        for (const TaskId d : tasks_[id].deps) {
          dep_failed = dep_failed || state.failed[d];
        }
        if (dep_failed) {
          retire_unrun(id, CellError::kSkipped,
                       "skipped: dependency failed");
        } else {
          state.pending.push_back(id);
        }
      }
      if (!admission_on || state.pending.empty() || !over_budget()) break;
      // Shed order: lowest priority first, ties toward the youngest id —
      // the mirror image of dispatch order.
      std::size_t worst = 0;
      for (std::size_t i = 1; i < state.pending.size(); ++i) {
        const Task& a = tasks_[state.pending[i]];
        const Task& b = tasks_[state.pending[worst]];
        if (a.priority < b.priority ||
            (a.priority == b.priority &&
             state.pending[i] > state.pending[worst])) {
          worst = i;
        }
      }
      const TaskId shed_id = state.pending[worst];
      state.pending.erase(state.pending.begin() +
                          static_cast<std::ptrdiff_t>(worst));
      retire_unrun(shed_id, CellError::kShedded,
                   "shed: admission budget exceeded");
      // Loop again: the shed cell's dependents need triage, and the
      // budget may still be exceeded.
    }
    while (!state.pending.empty() && dispatch.size() < max_dispatch) {
      std::size_t best = 0;
      for (std::size_t i = 1; i < state.pending.size(); ++i) {
        const Task& a = tasks_[state.pending[i]];
        const Task& b = tasks_[state.pending[best]];
        if (a.priority > b.priority ||
            (a.priority == b.priority &&
             state.pending[i] < state.pending[best])) {
          best = i;
        }
      }
      dispatch.push_back(state.pending[best]);
      state.pending.erase(state.pending.begin() +
                          static_cast<std::ptrdiff_t>(best));
      ++state.inflight;
    }
  };

  // Runs one cell through probe -> journal -> retries -> publish, under a
  // fresh obs scope when capture is on. The scope is per-attempt-sequence
  // (not per-attempt): a retried cell's snapshot accumulates the traffic
  // of every attempt, which is the honest cost. A probe hit never opens a
  // scope — the cell does no work, so its snapshot slot must stay empty.
  // Publish runs after the scope closes and only for successful cells;
  // the journal commit follows the publish (see SweepJournal contract).
  const auto attempt_cell = [&](TaskId id) {
    const Task& task = tasks_[id];
    CellOutcome out;
    out.probed = static_cast<bool>(task.hooks.probe);
    if (out.probed && probe_task(task.hooks)) {
      out.hit = true;
      out.resumed = replay[id] != 0;
      out.attempt.ok = true;
      out.attempt.attempts = 1;  // Retire arithmetic: zero retries.
      cache_hit[id] = 1;
      // A fresh hit still earns a commit record — the journal's committed
      // set must cover everything retired-complete. A replayed hit is
      // already in the journal.
      if (!out.resumed) {
        journal_try([&] { journal->cell_commit(id); });
      }
      return out;
    }
    journal_try([&] { journal->cell_begin(id, task.label); });
    RetryBounds bounds;
    if (watchdog_on) {
      bounds.token = &tokens[id];
      auto deadline = HostClock::time_point::max();
      if (cell_dl_on) deadline = HostClock::now() + policy.cell_deadline;
      if (run_dl_on) {
        deadline = std::min(deadline, run_start + policy.run_deadline);
      }
      bounds.has_deadline = true;
      bounds.deadline = deadline;
      started[id].store(since_start_ns() + 1, std::memory_order_release);
      tls_cancel = bounds.token;
    }
    if (!capture_) {
      out.attempt = run_with_retries(task.fn, policy, bounds);
    } else {
      obs::Scope scope;
      out.attempt = run_with_retries(task.fn, policy, bounds);
      report.snapshots[id] = scope.snapshot();
    }
    if (watchdog_on) {
      tls_cancel = nullptr;
      started[id].store(0, std::memory_order_release);
      // Success wins even when the token fired late; only a failure under
      // a cancelled token is charged to the deadline.
      out.deadline = !out.attempt.ok &&
                     (out.attempt.cancelled || bounds.token->cancelled());
    }
    if (out.attempt.ok) {
      out.stored = publish_task(
          task.hooks, capture_ ? report.snapshots[id] : obs::Snapshot{});
      journal_try([&] { journal->cell_commit(id); });
    } else {
      journal_try([&] { journal->cell_fail(id, out.attempt.message); });
    }
    return out;
  };

  // Folds one executed cell into the report. Lock held.
  const auto account = [&report](const CellOutcome& out) {
    report.retries += out.attempt.attempts - 1;
    if (out.hit) {
      ++report.cache_hits;
      if (out.resumed) ++report.resumed;
    } else if (out.probed) {
      ++report.cache_misses;
    }
    if (out.stored) ++report.cache_stored;
    if (out.attempt.ok) ++report.completed;
  };

  const bool serial = pool_ == nullptr || pool_->size() <= 1;
  constexpr std::size_t kDispatchAll = static_cast<std::size_t>(-1);

  std::function<void(TaskId)> execute_cell = [&](TaskId id) {
    const bool refused = run_expired.load(std::memory_order_acquire);
    CellOutcome out;
    if (!refused) out = attempt_cell(id);
    std::vector<TaskId> dispatch;
    {
      std::lock_guard<std::mutex> lock(state.mutex);
      --state.inflight;
      if (refused) {
        retire_unrun(id, CellError::kDeadline,
                     "deadline: run budget exhausted before cell start");
      } else {
        account(out);
        if (!out.attempt.ok) {
          state.failed[id] = true;
          ++report.failed;
          CellError::Kind kind = CellError::kFailed;
          if (out.deadline) {
            kind = CellError::kDeadline;
            ++report.deadline_failed;
          }
          cell_errors[id] = local_arena().make<CellError>(
              CellError{id, tasks_[id].label, out.attempt.attempts, false,
                        std::move(out.attempt.message), kind});
        }
        for (const TaskId dep : state.dependents[id]) {
          if (--state.unmet[dep] == 0) state.ready.push_back(dep);
        }
        --state.remaining;
      }
      if (!serial) pump_locked(kDispatchAll, dispatch);
      if (state.remaining == 0) state.done_cv.notify_all();
    }
    for (const TaskId r : dispatch) {
      (void)pool_->submit([&execute_cell, r] { execute_cell(r); });
    }
  };

  if (serial) {
    // Serial dispatch pops the lowest ready id at default priorities,
    // which is exactly the old insertion-order walk: a task's deps have
    // smaller ids, so the minimum unfinished id is always ready.
    for (;;) {
      std::vector<TaskId> dispatch;
      {
        std::lock_guard<std::mutex> lock(state.mutex);
        pump_locked(1, dispatch);
      }
      if (dispatch.empty()) break;
      execute_cell(dispatch[0]);
    }
    IMPACT_ASSERT(state.remaining == 0);
  } else {
    std::vector<TaskId> dispatch;
    {
      std::lock_guard<std::mutex> lock(state.mutex);
      pump_locked(kDispatchAll, dispatch);
    }
    for (const TaskId r : dispatch) {
      (void)pool_->submit([&execute_cell, r] { execute_cell(r); });
    }
    std::unique_lock<std::mutex> lock(state.mutex);
    // Always satisfiable: every admitted cell retires exactly once (the
    // watchdog cancels overdue cells; refusal retires the rest), and
    // shed/skipped cells retire inside pump_locked.
    // SIMLINT-ALLOW(unbounded-wait)
    state.done_cv.wait(lock, [&] { return state.remaining == 0; });
  }

  if (watchdog.joinable()) {
    {
      std::lock_guard<std::mutex> lock(wd_gate.mutex);
      wd_gate.stop = true;
    }
    wd_gate.cv.notify_all();
    // Bounded: the stop flag is set and the watchdog wakes every tick.
    // SIMLINT-ALLOW(unbounded-wait)
    watchdog.join();
  }

  for (CellError* e : cell_errors) {
    if (e != nullptr) report.errors.push_back(std::move(*e));
  }
  // Every cell that never executed (cache hit, dependency skip, shed,
  // deadline refusal) must leave its preallocated snapshot slot
  // empty-but-valid: merging the grid's snapshots would otherwise
  // double-count cached work, and the CellRunner relies on "empty slot ==
  // no fresh telemetry" to splice cached snapshots back in. Enforced, not
  // assumed. (Cells that ran and failed are excluded on purpose: their
  // snapshots hold the traffic of the failed attempts, which is real.)
  if (capture_) {
    for (TaskId id = 0; id < n; ++id) {
      if (cache_hit[id] != 0 || never_ran[id] != 0) {
        IMPACT_ASSERT(report.snapshots[id].empty());
      }
    }
  }
  emit_cache_obs(report.cache_hits, report.cache_misses,
                 report.cache_stored);
  emit_resil_obs(report, watchdog_fired.load(std::memory_order_relaxed));
  journal_try([&] { journal->end_run(report); });
  return report;
}

}  // namespace impact::exec
