#include "exec/sweep.hpp"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

#include "obs/scope.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace impact::exec {

std::string RunReport::summary() const {
  std::string s = std::to_string(completed) + "/" + std::to_string(tasks) +
                  " tasks completed";
  s += ", " + std::to_string(failed) + " failed";
  s += ", " + std::to_string(skipped) + " skipped";
  s += ", " + std::to_string(retries) + " retries";
  return s;
}

std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t task_index) {
  // Golden-ratio spacing keeps distinct indices distinct before the
  // splitmix64 avalanche inside Xoshiro256's reseed scrambles them.
  util::Xoshiro256 rng(base_seed ^
                       (0x9E3779B97F4A7C15ull * (task_index + 1)));
  return rng();
}

Sweep::TaskId Sweep::add(std::string label, std::function<void()> fn,
                         std::initializer_list<TaskId> deps) {
  const TaskId id = tasks_.size();
  for (const TaskId d : deps) {
    util::check(d < id, "Sweep::add: dependency on a not-yet-added task");
  }
  tasks_.push_back(Task{std::move(label), std::move(fn),
                        std::vector<TaskId>(deps)});
  return id;
}

void Sweep::run() {
  if (tasks_.empty()) return;

  if (pool_ == nullptr || pool_->size() <= 1) {
    // Insertion order is topological by construction.
    std::exception_ptr first;
    std::vector<bool> failed(tasks_.size(), false);
    for (TaskId id = 0; id < tasks_.size(); ++id) {
      bool skip = first != nullptr;
      for (const TaskId d : tasks_[id].deps) skip = skip || failed[d];
      if (skip) {
        failed[id] = true;
        continue;
      }
      try {
        tasks_[id].fn();
      } catch (...) {
        failed[id] = true;
        if (!first) first = std::current_exception();
      }
    }
    if (first) std::rethrow_exception(first);
    return;
  }

  // Parallel execution: scheduler state shared between the submitting
  // thread and the workers, all guarded by one mutex (tasks are coarse).
  struct State {
    std::mutex mutex;
    std::condition_variable done_cv;
    std::vector<std::size_t> unmet;        // Unfinished dependency count.
    std::vector<std::vector<TaskId>> dependents;
    std::size_t remaining = 0;             // Tasks not yet finished/skipped.
    std::exception_ptr first_error;
  } state;

  state.unmet.assign(tasks_.size(), 0);
  state.dependents.assign(tasks_.size(), {});
  for (TaskId id = 0; id < tasks_.size(); ++id) {
    state.unmet[id] = tasks_[id].deps.size();
    for (const TaskId d : tasks_[id].deps) {
      state.dependents[d].push_back(id);
    }
  }
  state.remaining = tasks_.size();

  // Runs `id`, then retires it and launches newly-ready dependents.
  std::function<void(TaskId)> execute = [&](TaskId id) {
    bool cancelled = false;
    {
      std::lock_guard<std::mutex> lock(state.mutex);
      cancelled = state.first_error != nullptr;
    }
    if (!cancelled) {
      try {
        tasks_[id].fn();
      } catch (...) {
        std::lock_guard<std::mutex> lock(state.mutex);
        if (!state.first_error) state.first_error = std::current_exception();
      }
    }
    std::vector<TaskId> ready;
    {
      std::lock_guard<std::mutex> lock(state.mutex);
      for (const TaskId dep : state.dependents[id]) {
        if (--state.unmet[dep] == 0) ready.push_back(dep);
      }
      if (--state.remaining == 0) state.done_cv.notify_all();
    }
    for (const TaskId r : ready) {
      (void)pool_->submit([&execute, r] { execute(r); });
    }
  };

  for (TaskId id = 0; id < tasks_.size(); ++id) {
    if (tasks_[id].deps.empty()) {
      (void)pool_->submit([&execute, id] { execute(id); });
    }
  }
  {
    std::unique_lock<std::mutex> lock(state.mutex);
    state.done_cv.wait(lock, [&] { return state.remaining == 0; });
    if (state.first_error) std::rethrow_exception(state.first_error);
  }
}

namespace {

struct Attempt {
  bool ok = false;
  std::size_t attempts = 0;
  std::string message;
};

/// Runs `fn` under the retry policy. TransientError always re-tries while
/// budget remains; other exceptions re-try only under `retry_all`.
Attempt run_with_retries(const std::function<void()>& fn,
                         const RetryPolicy& policy) {
  const std::size_t budget = std::max<std::size_t>(1, policy.max_attempts);
  auto delay = policy.backoff_base;
  Attempt out;
  for (std::size_t attempt = 1; attempt <= budget; ++attempt) {
    out.attempts = attempt;
    try {
      fn();
      out.ok = true;
      return out;
    } catch (const TransientError& e) {
      out.message = e.what();
    } catch (const std::exception& e) {
      out.message = e.what();
      if (!policy.retry_all) return out;
    } catch (...) {
      out.message = "non-standard exception";
      if (!policy.retry_all) return out;
    }
    if (attempt < budget && delay.count() > 0) {
      std::this_thread::sleep_for(delay);
      delay = std::min(policy.backoff_cap, delay * 2);
    }
  }
  return out;
}

}  // namespace

RunReport Sweep::run_resilient(const RetryPolicy& policy) {
  RunReport report;
  report.tasks = tasks_.size();
  if (tasks_.empty()) return report;
  // Preallocated before any task starts: concurrent cells then write only
  // their own (distinct) slot, so capture needs no extra locking.
  if (capture_) report.snapshots.resize(tasks_.size());

  // Runs one cell, under a fresh obs scope when capture is on. The scope
  // is per-attempt-sequence (not per-attempt): a retried cell's snapshot
  // accumulates the traffic of every attempt, which is the honest cost.
  const auto attempt_cell = [&](TaskId id) {
    if (!capture_) return run_with_retries(tasks_[id].fn, policy);
    obs::Scope scope;
    Attempt a = run_with_retries(tasks_[id].fn, policy);
    report.snapshots[id] = scope.snapshot();
    return a;
  };

  if (pool_ == nullptr || pool_->size() <= 1) {
    std::vector<bool> failed(tasks_.size(), false);
    for (TaskId id = 0; id < tasks_.size(); ++id) {
      bool dep_failed = false;
      for (const TaskId d : tasks_[id].deps) {
        dep_failed = dep_failed || failed[d];
      }
      if (dep_failed) {
        failed[id] = true;
        ++report.skipped;
        report.errors.push_back(CellError{id, tasks_[id].label, 0, true,
                                          "skipped: dependency failed"});
        continue;
      }
      const Attempt a = attempt_cell(id);
      report.retries += a.attempts - 1;
      if (a.ok) {
        ++report.completed;
      } else {
        failed[id] = true;
        ++report.failed;
        report.errors.push_back(
            CellError{id, tasks_[id].label, a.attempts, false, a.message});
      }
    }
    return report;
  }

  // Parallel mode: same scheduler as run(), but a failure poisons only the
  // failing task's transitive dependents — everything else keeps running.
  struct State {
    std::mutex mutex;
    std::condition_variable done_cv;
    std::vector<std::size_t> unmet;
    std::vector<std::vector<TaskId>> dependents;
    std::vector<bool> failed;
    std::size_t remaining = 0;
  } state;

  state.unmet.assign(tasks_.size(), 0);
  state.dependents.assign(tasks_.size(), {});
  state.failed.assign(tasks_.size(), false);
  for (TaskId id = 0; id < tasks_.size(); ++id) {
    state.unmet[id] = tasks_[id].deps.size();
    for (const TaskId d : tasks_[id].deps) {
      state.dependents[d].push_back(id);
    }
  }
  state.remaining = tasks_.size();

  // Per-cell error records are built on the executing worker's sweep arena
  // and published into a preallocated slot: the string construction happens
  // outside the scheduler lock on thread-private storage, and the caller
  // collects the slots (in task order) only after every cell retired — the
  // `remaining` handshake under `state.mutex` provides the happens-before.
  std::vector<CellError*> cell_errors(tasks_.size(), nullptr);

  std::function<void(TaskId)> execute = [&](TaskId id) {
    bool dep_failed = false;
    {
      std::lock_guard<std::mutex> lock(state.mutex);
      for (const TaskId d : tasks_[id].deps) {
        dep_failed = dep_failed || state.failed[d];
      }
    }
    Attempt a;
    if (!dep_failed) a = attempt_cell(id);
    if (dep_failed) {
      cell_errors[id] = local_arena().make<CellError>(
          CellError{id, tasks_[id].label, 0, true,
                    "skipped: dependency failed"});
    } else if (!a.ok) {
      cell_errors[id] = local_arena().make<CellError>(
          CellError{id, tasks_[id].label, a.attempts, false,
                    std::move(a.message)});
    }

    std::vector<TaskId> ready;
    {
      std::lock_guard<std::mutex> lock(state.mutex);
      if (dep_failed) {
        state.failed[id] = true;
        ++report.skipped;
      } else {
        report.retries += a.attempts - 1;
        if (a.ok) {
          ++report.completed;
        } else {
          state.failed[id] = true;
          ++report.failed;
        }
      }
      for (const TaskId dep : state.dependents[id]) {
        if (--state.unmet[dep] == 0) ready.push_back(dep);
      }
      if (--state.remaining == 0) state.done_cv.notify_all();
    }
    for (const TaskId r : ready) {
      (void)pool_->submit([&execute, r] { execute(r); });
    }
  };

  for (TaskId id = 0; id < tasks_.size(); ++id) {
    if (tasks_[id].deps.empty()) {
      (void)pool_->submit([&execute, id] { execute(id); });
    }
  }
  {
    std::unique_lock<std::mutex> lock(state.mutex);
    state.done_cv.wait(lock, [&] { return state.remaining == 0; });
  }
  // Slot order is task order, so no sort is needed.
  for (CellError* e : cell_errors) {
    if (e != nullptr) report.errors.push_back(std::move(*e));
  }
  return report;
}

}  // namespace impact::exec
