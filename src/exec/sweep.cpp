#include "exec/sweep.hpp"

#include <condition_variable>
#include <exception>
#include <mutex>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace impact::exec {

std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t task_index) {
  // Golden-ratio spacing keeps distinct indices distinct before the
  // splitmix64 avalanche inside Xoshiro256's reseed scrambles them.
  util::Xoshiro256 rng(base_seed ^
                       (0x9E3779B97F4A7C15ull * (task_index + 1)));
  return rng();
}

Sweep::TaskId Sweep::add(std::string label, std::function<void()> fn,
                         std::initializer_list<TaskId> deps) {
  const TaskId id = tasks_.size();
  for (const TaskId d : deps) {
    util::check(d < id, "Sweep::add: dependency on a not-yet-added task");
  }
  tasks_.push_back(Task{std::move(label), std::move(fn),
                        std::vector<TaskId>(deps)});
  return id;
}

void Sweep::run() {
  if (tasks_.empty()) return;

  if (pool_ == nullptr || pool_->size() <= 1) {
    // Insertion order is topological by construction.
    std::exception_ptr first;
    std::vector<bool> failed(tasks_.size(), false);
    for (TaskId id = 0; id < tasks_.size(); ++id) {
      bool skip = first != nullptr;
      for (const TaskId d : tasks_[id].deps) skip = skip || failed[d];
      if (skip) {
        failed[id] = true;
        continue;
      }
      try {
        tasks_[id].fn();
      } catch (...) {
        failed[id] = true;
        if (!first) first = std::current_exception();
      }
    }
    if (first) std::rethrow_exception(first);
    return;
  }

  // Parallel execution: scheduler state shared between the submitting
  // thread and the workers, all guarded by one mutex (tasks are coarse).
  struct State {
    std::mutex mutex;
    std::condition_variable done_cv;
    std::vector<std::size_t> unmet;        // Unfinished dependency count.
    std::vector<std::vector<TaskId>> dependents;
    std::size_t remaining = 0;             // Tasks not yet finished/skipped.
    std::exception_ptr first_error;
  } state;

  state.unmet.assign(tasks_.size(), 0);
  state.dependents.assign(tasks_.size(), {});
  for (TaskId id = 0; id < tasks_.size(); ++id) {
    state.unmet[id] = tasks_[id].deps.size();
    for (const TaskId d : tasks_[id].deps) {
      state.dependents[d].push_back(id);
    }
  }
  state.remaining = tasks_.size();

  // Runs `id`, then retires it and launches newly-ready dependents.
  std::function<void(TaskId)> execute = [&](TaskId id) {
    bool cancelled = false;
    {
      std::lock_guard<std::mutex> lock(state.mutex);
      cancelled = state.first_error != nullptr;
    }
    if (!cancelled) {
      try {
        tasks_[id].fn();
      } catch (...) {
        std::lock_guard<std::mutex> lock(state.mutex);
        if (!state.first_error) state.first_error = std::current_exception();
      }
    }
    std::vector<TaskId> ready;
    {
      std::lock_guard<std::mutex> lock(state.mutex);
      for (const TaskId dep : state.dependents[id]) {
        if (--state.unmet[dep] == 0) ready.push_back(dep);
      }
      if (--state.remaining == 0) state.done_cv.notify_all();
    }
    for (const TaskId r : ready) {
      (void)pool_->submit([&execute, r] { execute(r); });
    }
  };

  for (TaskId id = 0; id < tasks_.size(); ++id) {
    if (tasks_[id].deps.empty()) {
      (void)pool_->submit([&execute, id] { execute(id); });
    }
  }
  {
    std::unique_lock<std::mutex> lock(state.mutex);
    state.done_cv.wait(lock, [&] { return state.remaining == 0; });
    if (state.first_error) std::rethrow_exception(state.first_error);
  }
}

}  // namespace impact::exec
