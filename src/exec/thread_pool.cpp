#include "exec/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

namespace impact::exec {

namespace {
// Worker identity for per-worker state routing (Sweep::local_arena). This
// is genuinely per-OS-thread bookkeeping, not simulation state: results
// never depend on it, only which scratch arena serves an allocation.
// SIMLINT-ALLOW(thread-local, global-state)
thread_local std::size_t tls_worker_index = ThreadPool::kNotWorker;
}  // namespace

std::size_t ThreadPool::current_worker_index() { return tls_worker_index; }

unsigned ThreadPool::default_threads() {
  if (const char* env = std::getenv("IMPACT_THREADS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1) {
      return static_cast<unsigned>(std::min(v, 256ul));
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned n = std::max(threads, 1u);
  queues_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  auto holder = std::make_shared<std::packaged_task<void()>>(std::move(task));
  std::future<void> fut = holder->get_future();
  std::size_t q = 0;
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    q = next_queue_++ % queues_.size();
    ++pending_;
  }
  {
    std::lock_guard<std::mutex> qlock(queues_[q]->mutex);
    queues_[q]->tasks.emplace_back([holder] { (*holder)(); });
  }
  wake_.notify_one();
  return fut;
}

bool ThreadPool::try_pop(std::size_t self, std::function<void()>& out) {
  {
    Queue& own = *queues_[self];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      out = std::move(own.tasks.front());
      own.tasks.pop_front();
      return true;
    }
  }
  for (std::size_t k = 1; k < queues_.size(); ++k) {
    Queue& victim = *queues_[(self + k) % queues_.size()];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.tasks.empty()) {
      out = std::move(victim.tasks.back());
      victim.tasks.pop_back();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  tls_worker_index = self;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(wake_mutex_);
      wake_.wait(lock, [this] { return stop_ || pending_ > 0; });
      if (pending_ == 0) return;  // stop_ set and queues drained.
      --pending_;
    }
    // The claim above guarantees at least one unclaimed task is (or is
    // about to be) queued; `submit` bumps `pending_` before the push, so
    // spin briefly if we raced the enqueue.
    std::function<void()> task;
    while (!try_pop(self, task)) std::this_thread::yield();
    task();  // packaged_task: exceptions land in the submitter's future.
  }
}

void ThreadPool::for_each_index(std::size_t n,
                                const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (size() == 1 || n == 1) {
    // Degenerate batch: run inline. Results are identical either way (the
    // tasks are independent by contract); this just skips the queue.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  std::exception_ptr first;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace impact::exec
