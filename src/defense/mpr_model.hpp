// Cost model for bank-level memory partitioning (MPR, §6).
//
// The paper lists MPR's three drawbacks qualitatively: it caps the number
// of concurrently running applications, wastes memory through bank-sized
// allocation granularity, and forbids sharing (duplicating shared data).
// This model quantifies all three for a given device and workload mix so
// the defense benches can report them next to CRP/CTD's cycle overheads.
#pragma once

#include <cstdint>
#include <vector>

#include "dram/config.hpp"

namespace impact::defense {

/// One application's memory demand.
struct AppDemand {
  std::uint64_t private_bytes = 0;  ///< Non-shareable footprint.
  std::uint64_t shared_bytes = 0;   ///< Normally shared (library, input).
};

struct MprReport {
  std::uint32_t total_banks = 0;
  std::uint32_t banks_allocated = 0;
  std::uint32_t apps_admitted = 0;   ///< Of the requested mix.
  std::uint32_t apps_rejected = 0;   ///< Did not fit / no banks left.
  std::uint64_t bytes_requested = 0; ///< Σ private + shared-after-copy.
  std::uint64_t bytes_allocated = 0; ///< Bank-granular allocation.
  std::uint64_t duplication_bytes = 0;  ///< Extra copies of shared data.

  /// Fraction of allocated capacity actually holding data.
  [[nodiscard]] double utilization() const {
    return bytes_allocated == 0
               ? 0.0
               : static_cast<double>(bytes_requested) /
                     static_cast<double>(bytes_allocated);
  }
};

/// Simulates MPR admission: each app receives exclusive banks covering its
/// private footprint plus a private copy of its shared data (sharing is
/// disabled under MPR). Apps are admitted in order until banks run out.
[[nodiscard]] MprReport evaluate_mpr(const dram::DramConfig& device,
                                     const std::vector<AppDemand>& apps);

/// The same mix on an unpartitioned device (shared data stored once,
/// page-granular allocation) for comparison.
[[nodiscard]] MprReport evaluate_unpartitioned(
    const dram::DramConfig& device, const std::vector<AppDemand>& apps);

}  // namespace impact::defense
