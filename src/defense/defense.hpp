// The three §6 defenses and security-property checkers.
//
// CRP and CTD are memory-controller row policies (implemented in
// src/dram); MPR is bank-level partitioning (implemented in the
// controller's ownership table). This module provides the configuration
// surface benches and tests use, plus checkers that verify a defense
// actually *neutralizes* the timing channel (receiver decodes at chance
// level) rather than merely slowing it.
#pragma once

#include <cstdint>
#include <string>

#include "channel/attack.hpp"
#include "dram/controller.hpp"
#include "sys/system.hpp"

namespace impact::defense {

enum class DefenseKind : std::uint8_t {
  kNone,
  kMemoryPartitioning,  ///< MPR: one owner per DRAM bank.
  kClosedRow,           ///< CRP: precharge after every access.
  kConstantTime,        ///< CTD: pad every access to worst-case latency.
  kAdaptiveRow,         ///< Extension: history-based open/close policy —
                        ///< cheaper than CRP, but only *degrades* the
                        ///< channel rather than eliminating it.
};

[[nodiscard]] constexpr const char* to_string(DefenseKind d) {
  switch (d) {
    case DefenseKind::kNone:
      return "none";
    case DefenseKind::kMemoryPartitioning:
      return "MPR";
    case DefenseKind::kClosedRow:
      return "CRP";
    case DefenseKind::kConstantTime:
      return "CTD";
    case DefenseKind::kAdaptiveRow:
      return "adaptive";
  }
  return "?";
}

/// Applies a row-policy defense to a running system (CRP / CTD); kNone
/// restores the open-row baseline. MPR must be applied via
/// `partition_banks` because it needs an ownership assignment.
void apply_policy(sys::MemorySystem& system, DefenseKind defense);

/// MPR: splits the device's banks between two principals (even banks to
/// `first`, odd banks to `second`), denying all cross-access.
void partition_banks(sys::MemorySystem& system, dram::ActorId first,
                     dram::ActorId second);

/// Verdict of a neutralization check.
struct NeutralizationReport {
  double error_rate = 0.0;
  std::size_t bits = 0;

  /// A channel is neutralized when the receiver performs at (or near)
  /// chance level: no mutual information survives.
  [[nodiscard]] bool neutralized() const { return error_rate >= 0.35; }
};

/// Transmits random messages over `attack` and reports whether the channel
/// still carries information.
[[nodiscard]] NeutralizationReport check_neutralized(
    channel::CovertAttack& attack, std::size_t bits = 256,
    std::uint64_t seed = 17);

}  // namespace impact::defense
