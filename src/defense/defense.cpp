#include "defense/defense.hpp"

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace impact::defense {

void apply_policy(sys::MemorySystem& system, DefenseKind defense) {
  switch (defense) {
    case DefenseKind::kNone:
      system.controller().set_policy(dram::RowPolicy::kOpenRow);
      break;
    case DefenseKind::kClosedRow:
      system.controller().set_policy(dram::RowPolicy::kClosedRow);
      break;
    case DefenseKind::kConstantTime:
      system.controller().set_policy(dram::RowPolicy::kConstantTime);
      break;
    case DefenseKind::kAdaptiveRow:
      system.controller().set_policy(dram::RowPolicy::kAdaptive);
      break;
    case DefenseKind::kMemoryPartitioning:
      util::check(false,
                  "MPR needs an ownership assignment: use partition_banks");
      break;
  }
}

void partition_banks(sys::MemorySystem& system, dram::ActorId first,
                     dram::ActorId second) {
  auto& controller = system.controller();
  for (dram::BankId b = 0; b < controller.banks(); ++b) {
    controller.set_partition_owner(b, (b % 2 == 0) ? first : second);
  }
}

NeutralizationReport check_neutralized(channel::CovertAttack& attack,
                                       std::size_t bits, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  const auto message = util::BitVec::random(bits, rng);
  const auto result = attack.transmit(message);
  NeutralizationReport report;
  report.bits = result.report.bits_total;
  report.error_rate = result.report.error_rate();
  return report;
}

}  // namespace impact::defense
