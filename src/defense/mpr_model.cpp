#include "defense/mpr_model.hpp"

#include <algorithm>

namespace impact::defense {

MprReport evaluate_mpr(const dram::DramConfig& device,
                       const std::vector<AppDemand>& apps) {
  MprReport report;
  report.total_banks = device.total_banks();
  const std::uint64_t bank_bytes = device.bank_bytes();

  std::uint32_t free_banks = report.total_banks;
  std::uint64_t shared_seen = 0;
  for (const auto& app : apps) {
    // Under MPR every app needs its own copy of "shared" data.
    const std::uint64_t demand = app.private_bytes + app.shared_bytes;
    const std::uint64_t banks_needed =
        std::max<std::uint64_t>(1, (demand + bank_bytes - 1) / bank_bytes);
    if (banks_needed > free_banks) {
      ++report.apps_rejected;
      continue;
    }
    free_banks -= static_cast<std::uint32_t>(banks_needed);
    ++report.apps_admitted;
    report.banks_allocated += static_cast<std::uint32_t>(banks_needed);
    report.bytes_requested += demand;
    report.bytes_allocated += banks_needed * bank_bytes;
    // Everything after the first user's copy is pure duplication.
    report.duplication_bytes +=
        shared_seen > 0 ? std::min(app.shared_bytes, shared_seen) : 0;
    shared_seen = std::max(shared_seen, app.shared_bytes);
  }
  return report;
}

MprReport evaluate_unpartitioned(const dram::DramConfig& device,
                                 const std::vector<AppDemand>& apps) {
  MprReport report;
  report.total_banks = device.total_banks();
  report.banks_allocated = report.total_banks;  // All banks shared.
  std::uint64_t shared_once = 0;
  for (const auto& app : apps) {
    ++report.apps_admitted;
    report.bytes_requested += app.private_bytes;
    shared_once = std::max(shared_once, app.shared_bytes);
  }
  report.bytes_requested += shared_once;  // Shared data stored once.
  // Page-granular allocation: rounding waste is negligible at this scale.
  report.bytes_allocated = report.bytes_requested;
  return report;
}

}  // namespace impact::defense
