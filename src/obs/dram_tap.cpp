#include "obs/dram_tap.hpp"

namespace impact::obs {

DramTap::DramTap(Registry& registry, TraceSession* trace)
    : commands_(registry.counter("dram.commands")),
      hits_(registry.counter("dram.hits")),
      empties_(registry.counter("dram.empties")),
      conflicts_(registry.counter("dram.conflicts")),
      activations_(registry.counter("dram.activations")),
      rowclones_(registry.counter("dram.rowclones")),
      precharges_(registry.counter("dram.precharges")),
      trace_(trace) {}

void DramTap::on_command(const dram::CommandRecord& record) {
  commands_.add();
  switch (record.kind) {
    case dram::CommandKind::kAccess:
      // Mirrors Bank::access: the outcome counter always records the
      // *internal* classification; an activation happens on every
      // constant-time access (unconditional ACT) and on every non-hit
      // otherwise.
      switch (record.outcome) {
        case dram::RowBufferOutcome::kHit:
          hits_.add();
          break;
        case dram::RowBufferOutcome::kEmpty:
          empties_.add();
          break;
        case dram::RowBufferOutcome::kConflict:
          conflicts_.add();
          break;
      }
      if (record.policy == dram::RowPolicy::kConstantTime ||
          record.outcome != dram::RowBufferOutcome::kHit) {
        activations_.add();
      }
      break;
    case dram::CommandKind::kRowClone:
      // Mirrors Bank::rowclone: ACT(src) + ACT(dst).
      rowclones_.add();
      activations_.add(2);
      break;
    case dram::CommandKind::kPrecharge:
      precharges_.add();
      break;
  }
  if (trace_ != nullptr) {
    trace_->span("dram", dram::to_string(record.kind), record.start,
                 record.completion, record.bank);
  }
}

void DramTap::on_stats_reset(dram::BankId bank) {
  commands_.reset();
  hits_.reset();
  empties_.reset();
  conflicts_.reset();
  activations_.reset();
  rowclones_.reset();
  precharges_.reset();
  if (trace_ != nullptr) {
    trace_->instant("dram", "stats-reset", 0, bank);
  }
}

}  // namespace impact::obs
