// The metrics half of the obs:: telemetry spine.
//
// A `Registry` owns named counters, gauges, and histogram-backed
// distributions. Instrumented code resolves a name to a handle ONCE (at
// component construction) and the handle is then a raw pointer into
// deque-backed stable storage, so the hot path costs one null check plus
// one increment — no map lookup, no string hashing, no virtual call.
//
// A default-constructed handle is null: instrumentation sites guard on one
// cached handle (`if (ops_) { ... }`) and the whole block is skipped when
// the component was built outside an `obs::Scope`. Handles are invalidated
// by the Registry's destruction, never by growth (deque storage).
//
// Components whose counters live in their own structs (cache::LevelStats,
// sys::TlbStats) register *providers* instead: a callback sampled at
// snapshot time, costing literally nothing on the access path. A component
// destroyed before the registry must `flush_provider` so the final value
// persists as a plain counter.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/histogram.hpp"

namespace impact::obs {

class Registry;
struct Snapshot;

/// O(1) monotonic counter handle. `add` requires a non-null handle; guard
/// a block of adds with one `if (handle)` on any handle resolved from the
/// same registry (they are all null or all live together).
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t n = 1) { *cell_ += n; }
  /// Mirrors a stats reset in the instrumented component (see DramTap).
  void reset() { *cell_ = 0; }
  [[nodiscard]] std::uint64_t value() const { return *cell_; }
  explicit operator bool() const { return cell_ != nullptr; }

 private:
  friend class Registry;
  explicit Counter(std::uint64_t* cell) : cell_(cell) {}
  std::uint64_t* cell_ = nullptr;
};

/// O(1) last-value gauge handle (cycles, rates, sizes).
class Gauge {
 public:
  Gauge() = default;
  void set(double v) { *cell_ = v; }
  void add(double v) { *cell_ += v; }
  [[nodiscard]] double value() const { return *cell_; }
  explicit operator bool() const { return cell_ != nullptr; }

 private:
  friend class Registry;
  explicit Gauge(double* cell) : cell_(cell) {}
  double* cell_ = nullptr;
};

/// O(1) distribution handle over a util::Histogram owned by the registry.
class Distribution {
 public:
  Distribution() = default;
  void add(double v) { hist_->add(v); }
  [[nodiscard]] const util::Histogram& histogram() const { return *hist_; }
  explicit operator bool() const { return hist_ != nullptr; }

 private:
  friend class Registry;
  explicit Distribution(util::Histogram* hist) : hist_(hist) {}
  util::Histogram* hist_ = nullptr;
};

/// Identifies a registered snapshot-time provider (for flush-on-detach).
using ProviderId = std::uint64_t;

class Registry {
 public:
  Registry() = default;
  // Handles point into this object; moving would not invalidate them, but
  // copying would silently fork the cells. Forbid both.
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Resolves (creating on first use) the counter named `name`.
  Counter counter(std::string_view name);
  /// Resolves (creating on first use) the gauge named `name`.
  Gauge gauge(std::string_view name);
  /// Resolves (creating on first use) a distribution with the given bin
  /// shape. Re-resolving an existing name ignores the shape arguments.
  Distribution distribution(std::string_view name, double lo, double hi,
                            std::size_t bins);

  /// Registers a snapshot-time sampler for counter `name`: the callback is
  /// invoked at `snapshot()` and its value *added* to the counter cell's
  /// own contents. Multiple providers may feed one name (summed).
  ProviderId add_provider(std::string name, std::function<std::uint64_t()> fn);
  /// Samples the provider one final time into its counter cell and removes
  /// it. Components must call this (via their destructor) when they can be
  /// destroyed before the registry snapshots.
  void flush_provider(ProviderId id);
  [[nodiscard]] std::size_t provider_count() const { return providers_.size(); }

  /// Current value helpers (tests / reporting; snapshot() is the bulk API).
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;
  [[nodiscard]] double gauge_value(std::string_view name) const;

  /// Captures every metric (providers sampled) into a detached Snapshot.
  [[nodiscard]] Snapshot snapshot() const;

 private:
  struct Provider {
    ProviderId id = 0;
    std::string name;
    std::function<std::uint64_t()> fn;
  };

  // Deques give the cells stable addresses across growth; the maps only
  // index them by name. Lookups happen at handle-resolution time only.
  std::deque<std::uint64_t> counter_cells_;
  std::deque<double> gauge_cells_;
  std::deque<util::Histogram> dist_cells_;
  std::map<std::string, std::uint64_t*, std::less<>> counters_;
  std::map<std::string, double*, std::less<>> gauges_;
  std::map<std::string, util::Histogram*, std::less<>> dists_;
  std::vector<Provider> providers_;
  ProviderId next_provider_ = 1;
};

}  // namespace impact::obs
