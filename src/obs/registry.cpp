#include "obs/registry.hpp"

#include <algorithm>

#include "obs/snapshot.hpp"

namespace impact::obs {

Counter Registry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counter_cells_.push_back(0);
    it = counters_.emplace(std::string(name), &counter_cells_.back()).first;
  }
  return Counter(it->second);
}

Gauge Registry::gauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauge_cells_.push_back(0.0);
    it = gauges_.emplace(std::string(name), &gauge_cells_.back()).first;
  }
  return Gauge(it->second);
}

Distribution Registry::distribution(std::string_view name, double lo,
                                    double hi, std::size_t bins) {
  auto it = dists_.find(name);
  if (it == dists_.end()) {
    dist_cells_.emplace_back(lo, hi, bins);
    it = dists_.emplace(std::string(name), &dist_cells_.back()).first;
  }
  return Distribution(it->second);
}

ProviderId Registry::add_provider(std::string name,
                                  std::function<std::uint64_t()> fn) {
  const ProviderId id = next_provider_++;
  // Materialize the cell now so the name shows up (as 0) in snapshots even
  // if the provider is never sampled before removal.
  (void)counter(name);
  providers_.push_back(Provider{id, std::move(name), std::move(fn)});
  return id;
}

void Registry::flush_provider(ProviderId id) {
  const auto it =
      std::find_if(providers_.begin(), providers_.end(),
                   [id](const Provider& p) { return p.id == id; });
  if (it == providers_.end()) return;
  counter(it->name).add(it->fn());
  providers_.erase(it);
}

std::uint64_t Registry::counter_value(std::string_view name) const {
  const auto it = counters_.find(name);
  std::uint64_t v = it != counters_.end() ? *it->second : 0;
  for (const Provider& p : providers_) {
    if (p.name == name) v += p.fn();
  }
  return v;
}

double Registry::gauge_value(std::string_view name) const {
  const auto it = gauges_.find(name);
  return it != gauges_.end() ? *it->second : 0.0;
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  for (const auto& [name, cell] : counters_) snap.counters[name] = *cell;
  for (const Provider& p : providers_) snap.counters[p.name] += p.fn();
  for (const auto& [name, cell] : gauges_) snap.gauges[name] = *cell;
  for (const auto& [name, hist] : dists_) snap.dists.emplace(name, *hist);
  return snap;
}

}  // namespace impact::obs
