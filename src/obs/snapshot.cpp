#include "obs/snapshot.hpp"

#include <cstdio>

namespace impact::obs {

std::uint64_t Snapshot::counter(std::string_view name) const {
  const auto it = counters.find(std::string(name));
  return it != counters.end() ? it->second : 0;
}

double Snapshot::gauge(std::string_view name) const {
  const auto it = gauges.find(std::string(name));
  return it != gauges.end() ? it->second : 0.0;
}

const util::Histogram* Snapshot::dist(std::string_view name) const {
  const auto it = dists.find(std::string(name));
  return it != dists.end() ? &it->second : nullptr;
}

void Snapshot::merge(const Snapshot& other) {
  for (const auto& [name, v] : other.counters) counters[name] += v;
  for (const auto& [name, v] : other.gauges) gauges[name] += v;
  for (const auto& [name, hist] : other.dists) {
    const auto it = dists.find(name);
    if (it == dists.end()) {
      dists.emplace(name, hist);
    } else {
      it->second.merge(hist);
    }
  }
}

Snapshot Snapshot::diff(const Snapshot& earlier) const {
  Snapshot out;
  for (const auto& [name, v] : counters) {
    const std::uint64_t before = earlier.counter(name);
    out.counters[name] = v >= before ? v - before : 0;
  }
  for (const auto& [name, v] : gauges) {
    out.gauges[name] = v - earlier.gauge(name);
  }
  out.dists = dists;
  return out;
}

std::string Snapshot::table(std::string_view indent) const {
  std::string out;
  char line[192];
  const std::string pad(indent);
  for (const auto& [name, v] : counters) {
    std::snprintf(line, sizeof line, "%s%-34s %12llu\n", pad.c_str(),
                  name.c_str(), static_cast<unsigned long long>(v));
    out += line;
  }
  for (const auto& [name, v] : gauges) {
    std::snprintf(line, sizeof line, "%s%-34s %12.3f\n", pad.c_str(),
                  name.c_str(), v);
    out += line;
  }
  return out;
}

}  // namespace impact::obs
