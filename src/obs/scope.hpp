// Scoped installation of the current registry/trace, and the compile-time
// kill switch for the whole spine.
//
// Instrumented layers never hold a Registry; they ask `current_registry()`
// at construction and cache the resulting handles. `obs::Scope` installs a
// fresh registry (and optionally a TraceSession) into thread-local slots
// for its lifetime — exec::Sweep opens one per cell, quickstart one per
// run. Nesting restores the previous scope on destruction.
//
// Zero-overhead argument, in two layers:
//  * compiled OUT (-DIMPACT_OBS=OFF): `current_registry()` is a constexpr
//    nullptr, so every `if (auto* reg = obs::current_registry())` block is
//    dead code the optimizer deletes; handles are never resolved and the
//    guarded `if (handle)` blocks fold to nothing.
//  * compiled IN but outside any Scope (every microbench): resolution
//    returns null handles once at construction, and the per-op cost is a
//    single predictable branch on a cached handle.
//
// Components built inside a Scope must not outlive it: handles point into
// the scope's registry. Components that register providers flush them in
// their destructors, so normal inside-the-scope lifetimes are safe.
#pragma once

#include <string_view>

#include "obs/registry.hpp"
#include "obs/snapshot.hpp"
#include "obs/trace.hpp"

#ifndef IMPACT_OBS_ENABLED
#define IMPACT_OBS_ENABLED 1
#endif

namespace impact::obs {

/// True when the spine's instrumentation is compiled into the simulator.
inline constexpr bool kCompiled = IMPACT_OBS_ENABLED != 0;

namespace detail {
[[nodiscard]] Registry*& registry_slot();
[[nodiscard]] TraceSession*& trace_slot();
}  // namespace detail

#if IMPACT_OBS_ENABLED
[[nodiscard]] inline Registry* current_registry() {
  return detail::registry_slot();
}
[[nodiscard]] inline TraceSession* current_trace() {
  return detail::trace_slot();
}
#else
[[nodiscard]] constexpr Registry* current_registry() { return nullptr; }
[[nodiscard]] constexpr TraceSession* current_trace() { return nullptr; }
#endif

/// Null-safe handle resolution against the current scope: returns a null
/// handle (whose guarded use is a no-op) when no scope is active.
[[nodiscard]] inline Counter counter(std::string_view name) {
  Registry* reg = current_registry();
  return reg != nullptr ? reg->counter(name) : Counter{};
}
[[nodiscard]] inline Gauge gauge(std::string_view name) {
  Registry* reg = current_registry();
  return reg != nullptr ? reg->gauge(name) : Gauge{};
}
[[nodiscard]] inline Distribution distribution(std::string_view name,
                                               double lo, double hi,
                                               std::size_t bins) {
  Registry* reg = current_registry();
  return reg != nullptr ? reg->distribution(name, lo, hi, bins)
                        : Distribution{};
}

/// RAII capture scope: owns a Registry, installs it (and the optional
/// trace session) as current for the constructing thread, and restores the
/// previous scope on destruction.
class Scope {
 public:
  explicit Scope(TraceSession* trace = nullptr);
  ~Scope();
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

  [[nodiscard]] Registry& registry() { return registry_; }
  [[nodiscard]] Snapshot snapshot() const { return registry_.snapshot(); }

 private:
  Registry registry_;
  Registry* prev_registry_ = nullptr;
  TraceSession* prev_trace_ = nullptr;
};

}  // namespace impact::obs
