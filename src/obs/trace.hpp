// The tracing half of the obs:: spine: a bounded ring of timestamped
// spans and instant events, exported as Chrome `trace_event` JSON (load in
// chrome://tracing or https://ui.perfetto.dev) or CSV via util::csv.
//
// Timestamps are *simulated* cycles, not host time — a trace visualizes
// what the simulated machine did, and recording must never perturb it, so
// no host clock is ever read. The ring overwrites the oldest events when
// full (`dropped()` counts the casualties): a long run keeps its tail,
// which is what you want when inspecting how a transmission ended.
#pragma once

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "util/units.hpp"

namespace impact::obs {

/// Chrome phase of an event: complete span ("X") or instant ("i").
enum class Phase : std::uint8_t { kSpan, kInstant };

struct TraceEvent {
  std::string cat;    ///< Layer: "dram", "pim", "channel", "fault", ...
  std::string name;   ///< Command/op within the layer.
  util::Cycle start = 0;
  util::Cycle end = 0;      ///< == start for instants.
  std::uint32_t track = 0;  ///< Rendered as tid: bank id, actor id, ...
  Phase phase = Phase::kSpan;
};

class TraceSession {
 public:
  /// `capacity` bounds memory; 0 is clamped to 1.
  explicit TraceSession(std::size_t capacity = 65536);

  void span(std::string_view cat, std::string_view name, util::Cycle start,
            util::Cycle end, std::uint32_t track = 0);
  void instant(std::string_view cat, std::string_view name, util::Cycle at,
               std::uint32_t track = 0);

  [[nodiscard]] std::size_t size() const { return ring_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Events overwritten because the ring was full.
  [[nodiscard]] std::size_t dropped() const { return dropped_; }
  /// i-th retained event, oldest first.
  [[nodiscard]] const TraceEvent& event(std::size_t i) const;
  void clear();

  /// Writes the whole retained window as Chrome trace_event JSON.
  void write_chrome_json(std::ostream& out) const;
  /// Convenience wrapper: writes to `path`; false on I/O failure.
  bool export_chrome_json(const std::string& path) const;
  /// Drops `<dir>/<name>.csv` (cat,name,phase,start,end,track rows).
  void write_csv(const std::string& dir, const std::string& name) const;

 private:
  void push(TraceEvent&& ev);

  std::size_t capacity_;
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;  ///< Index of the oldest event once the ring is full.
  std::size_t dropped_ = 0;
};

}  // namespace impact::obs
