#include "obs/scope.hpp"

namespace impact::obs {

namespace detail {

Registry*& registry_slot() {
  thread_local Registry* current = nullptr;
  return current;
}

TraceSession*& trace_slot() {
  thread_local TraceSession* current = nullptr;
  return current;
}

}  // namespace detail

Scope::Scope(TraceSession* trace) {
  prev_registry_ = detail::registry_slot();
  prev_trace_ = detail::trace_slot();
  detail::registry_slot() = &registry_;
  // A nested scope without its own trace keeps recording into the outer
  // session; metrics always go to the innermost registry.
  if (trace != nullptr) detail::trace_slot() = trace;
}

Scope::~Scope() {
  detail::registry_slot() = prev_registry_;
  detail::trace_slot() = prev_trace_;
}

}  // namespace impact::obs
