// Detached, mergeable capture of a Registry's metrics.
//
// Snapshots are plain data: copyable, comparable by content, and safe to
// move across threads (exec::Sweep attaches one per cell). `merge` folds
// cells together (counters/gauges add, distributions bin-wise merge);
// `diff` isolates an interval between two captures of the same registry.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "util/histogram.hpp"

namespace impact::obs {

struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, util::Histogram> dists;

  [[nodiscard]] bool empty() const {
    return counters.empty() && gauges.empty() && dists.empty();
  }

  /// Value of counter `name`, 0 when absent (so report derivation code
  /// reads naturally whether or not the layer was instrumented).
  [[nodiscard]] std::uint64_t counter(std::string_view name) const;
  /// Value of gauge `name`, 0.0 when absent.
  [[nodiscard]] double gauge(std::string_view name) const;
  /// Distribution `name`, nullptr when absent.
  [[nodiscard]] const util::Histogram* dist(std::string_view name) const;

  /// Folds `other` into this snapshot: counters and gauges add; same-name
  /// distributions merge bin-wise (throws std::invalid_argument on shape
  /// mismatch); names unique to `other` are copied in.
  void merge(const Snapshot& other);

  /// Interval algebra: returns `this - earlier` per counter/gauge
  /// (counters saturate at 0 if `earlier` ran ahead, which only happens
  /// when the snapshots came from different registries). Distributions do
  /// not subtract; the later capture's histograms are kept as-is.
  [[nodiscard]] Snapshot diff(const Snapshot& earlier) const;

  /// Two-column "name value" rendering of counters then gauges, sorted by
  /// name — the shared table body of quickstart and the bench figures.
  [[nodiscard]] std::string table(std::string_view indent = "  ") const;
};

}  // namespace impact::obs
