#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "util/assert.hpp"
#include "util/csv.hpp"

namespace impact::obs {

TraceSession::TraceSession(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {
  ring_.reserve(std::min<std::size_t>(capacity_, 4096));
}

void TraceSession::push(TraceEvent&& ev) {
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(ev));
    return;
  }
  ring_[head_] = std::move(ev);
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

void TraceSession::span(std::string_view cat, std::string_view name,
                        util::Cycle start, util::Cycle end,
                        std::uint32_t track) {
  push(TraceEvent{std::string(cat), std::string(name), start, end, track,
                  Phase::kSpan});
}

void TraceSession::instant(std::string_view cat, std::string_view name,
                           util::Cycle at, std::uint32_t track) {
  push(TraceEvent{std::string(cat), std::string(name), at, at, track,
                  Phase::kInstant});
}

const TraceEvent& TraceSession::event(std::size_t i) const {
  util::check(i < ring_.size(), "TraceSession::event out of range");
  return ring_[(head_ + i) % ring_.size()];
}

void TraceSession::clear() {
  ring_.clear();
  head_ = 0;
  dropped_ = 0;
}

namespace {

/// Minimal JSON string escaping (quotes, backslash, control characters).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void TraceSession::write_chrome_json(std::ostream& out) const {
  // One simulated cycle maps to one "microsecond" of trace time; the
  // viewer's absolute units are meaningless for a simulator, only the
  // relative layout matters.
  out << "{\"traceEvents\":[";
  for (std::size_t i = 0; i < size(); ++i) {
    const TraceEvent& ev = event(i);
    if (i > 0) out << ",";
    out << "\n{\"name\":\"" << json_escape(ev.name) << "\",\"cat\":\""
        << json_escape(ev.cat) << "\",\"pid\":0,\"tid\":" << ev.track
        << ",\"ts\":" << ev.start;
    if (ev.phase == Phase::kSpan) {
      out << ",\"ph\":\"X\",\"dur\":" << (ev.end - ev.start);
    } else {
      out << ",\"ph\":\"i\",\"s\":\"t\"";
    }
    out << "}";
  }
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

bool TraceSession::export_chrome_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_chrome_json(out);
  return static_cast<bool>(out);
}

void TraceSession::write_csv(const std::string& dir,
                             const std::string& name) const {
  util::CsvWriter csv(dir, name,
                      {"cat", "name", "phase", "start", "end", "track"});
  for (std::size_t i = 0; i < size(); ++i) {
    const TraceEvent& ev = event(i);
    csv.add_row({ev.cat, ev.name,
                 ev.phase == Phase::kSpan ? "span" : "instant",
                 std::to_string(ev.start), std::to_string(ev.end),
                 std::to_string(ev.track)});
  }
}

}  // namespace impact::obs
