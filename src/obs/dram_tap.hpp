// Bridges the dram:: observer seam into the obs:: spine.
//
// A DramTap is a CommandObserver that re-derives the BankStats counters
// from the command stream (the same independence argument as the PR 1
// ProtocolChecker: the tap counts what the banks *did*, not what they
// recorded, so tests can reconcile the two) and, when a TraceSession is
// attached, emits one span per bank command on the bank's track.
//
// MemoryController auto-attaches a tap when it is constructed inside an
// active obs::Scope; the multi-observer fan-out keeps it coexisting with
// the auto-attached ProtocolChecker and any user observer.
#pragma once

#include <cstdint>

#include "dram/observer.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace impact::obs {

class DramTap final : public dram::CommandObserver {
 public:
  explicit DramTap(Registry& registry, TraceSession* trace = nullptr);

  void on_command(const dram::CommandRecord& record) override;
  /// BankStats were reset; the registry mirror resets with them so
  /// reconciliation stays meaningful. (Counters are aggregate across
  /// banks, so a reset of any bank — in practice always the controller
  /// resetting all of them — clears the whole mirror.)
  void on_stats_reset(dram::BankId bank) override;

 private:
  Counter commands_;
  Counter hits_;
  Counter empties_;
  Counter conflicts_;
  Counter activations_;
  Counter rowclones_;
  Counter precharges_;
  TraceSession* trace_;
};

}  // namespace impact::obs
