// Hardware prefetchers (Table 2: IP-stride at L1, streamer at L2).
//
// In this simulator, prefetchers are the main source of *noise* for the
// attacks (§5.1: "We simulate hardware prefetchers and page table walkers to
// induce noise"): they pull extra lines into the caches and trigger DRAM
// activations the attacker did not issue.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/cache.hpp"

namespace impact::cache {

/// Common interface: observe one demand access, emit prefetch candidates.
class Prefetcher {
 public:
  virtual ~Prefetcher() = default;

  /// `pc` is the (simulated) instruction address of the load/store.
  /// Appends line addresses to prefetch onto `out` (which is not cleared:
  /// the caller owns the buffer's lifecycle, so hot paths reuse one scratch
  /// vector across millions of accesses instead of allocating per call).
  virtual void observe_into(std::uint64_t pc, LineAddr line,
                            std::vector<LineAddr>& out) = 0;

  /// Convenience (tests, cold paths): allocating wrapper.
  [[nodiscard]] std::vector<LineAddr> observe(std::uint64_t pc,
                                              LineAddr line) {
    std::vector<LineAddr> out;
    observe_into(pc, line, out);
    return out;
  }
};

/// Classic per-PC stride predictor (Fu & Patel, MICRO'92).
class IpStridePrefetcher final : public Prefetcher {
 public:
  explicit IpStridePrefetcher(std::uint32_t entries = 64,
                              std::uint32_t degree = 2);

  void observe_into(std::uint64_t pc, LineAddr line,
                    std::vector<LineAddr>& out) override;
  using Prefetcher::observe;

 private:
  struct Entry {
    bool valid = false;
    std::uint64_t pc = 0;
    LineAddr last_line = 0;
    std::int64_t stride = 0;
    std::uint8_t confidence = 0;
  };

  [[nodiscard]] std::size_t index_of(std::uint64_t pc) const {
    // Mask fast path for the (default) power-of-two table size.
    return pow2_entries_ ? (pc & entry_mask_) : (pc % table_.size());
  }

  std::uint32_t degree_;
  std::uint64_t entry_mask_ = 0;
  bool pow2_entries_ = false;
  std::vector<Entry> table_;
};

/// Next-line stream prefetcher confined to 4 KiB regions (Chen & Baer).
class StreamerPrefetcher final : public Prefetcher {
 public:
  explicit StreamerPrefetcher(std::uint32_t streams = 16,
                              std::uint32_t degree = 2);

  void observe_into(std::uint64_t pc, LineAddr line,
                    std::vector<LineAddr>& out) override;
  using Prefetcher::observe;

 private:
  static constexpr std::uint32_t kRegionShift = 6;  // 64 lines = 4 KiB.
  static constexpr std::uint32_t kNoStream = ~0u;

  std::uint32_t degree_;
  std::uint32_t n_;  ///< Stream count.
  // Flat parallel arrays: the region-match scan — run once per L2 lookup —
  // walks a dense 8-byte-stride run instead of 40-byte array-of-structs
  // entries, and the remaining fields are touched only for the one stream
  // that matched (or the allocation victim).
  //
  // Stream recency is a byte permutation driven by the repl:: LRU free
  // functions rather than the seed's 64-bit access-tick counter: every
  // stream update stamped a fresh, strictly increasing tick, so the
  // leftmost-minimum tick IS the unique least-recently-used stream and a
  // permutation encodes the same order — while victim search and promotion
  // become the same vectorizable byte operations the caches use.
  std::vector<std::uint64_t> region_;  ///< line >> kRegionShift.
  std::vector<std::uint8_t> recency_;  ///< LRU permutation; lower = recent.
  std::vector<LineAddr> last_line_;
  std::vector<std::int8_t> direction_;
  std::vector<std::uint8_t> confidence_;
  std::vector<std::uint8_t> valid_;
  std::uint32_t live_ = 0;  ///< Valid streams; == n_ means no free slot.
};

}  // namespace impact::cache
