// Hardware prefetchers (Table 2: IP-stride at L1, streamer at L2).
//
// In this simulator, prefetchers are the main source of *noise* for the
// attacks (§5.1: "We simulate hardware prefetchers and page table walkers to
// induce noise"): they pull extra lines into the caches and trigger DRAM
// activations the attacker did not issue.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/cache.hpp"

namespace impact::cache {

/// Common interface: observe one demand access, emit prefetch candidates.
class Prefetcher {
 public:
  virtual ~Prefetcher() = default;

  /// `pc` is the (simulated) instruction address of the load/store.
  /// Appends line addresses to prefetch onto `out` (which is not cleared:
  /// the caller owns the buffer's lifecycle, so hot paths reuse one scratch
  /// vector across millions of accesses instead of allocating per call).
  virtual void observe_into(std::uint64_t pc, LineAddr line,
                            std::vector<LineAddr>& out) = 0;

  /// Convenience (tests, cold paths): allocating wrapper.
  [[nodiscard]] std::vector<LineAddr> observe(std::uint64_t pc,
                                              LineAddr line) {
    std::vector<LineAddr> out;
    observe_into(pc, line, out);
    return out;
  }
};

/// Classic per-PC stride predictor (Fu & Patel, MICRO'92).
class IpStridePrefetcher final : public Prefetcher {
 public:
  explicit IpStridePrefetcher(std::uint32_t entries = 64,
                              std::uint32_t degree = 2);

  void observe_into(std::uint64_t pc, LineAddr line,
                    std::vector<LineAddr>& out) override;
  using Prefetcher::observe;

 private:
  struct Entry {
    bool valid = false;
    std::uint64_t pc = 0;
    LineAddr last_line = 0;
    std::int64_t stride = 0;
    std::uint8_t confidence = 0;
  };

  std::uint32_t degree_;
  std::vector<Entry> table_;
};

/// Next-line stream prefetcher confined to 4 KiB regions (Chen & Baer).
class StreamerPrefetcher final : public Prefetcher {
 public:
  explicit StreamerPrefetcher(std::uint32_t streams = 16,
                              std::uint32_t degree = 2);

  void observe_into(std::uint64_t pc, LineAddr line,
                    std::vector<LineAddr>& out) override;
  using Prefetcher::observe;

 private:
  struct Stream {
    bool valid = false;
    std::uint64_t region = 0;  ///< line >> kRegionShift.
    LineAddr last_line = 0;
    std::int8_t direction = 0;
    std::uint8_t confidence = 0;
    std::uint64_t lru = 0;
  };

  static constexpr std::uint32_t kRegionShift = 6;  // 64 lines = 4 KiB.

  std::uint32_t degree_;
  std::vector<Stream> streams_;
  std::uint64_t tick_ = 0;
};

}  // namespace impact::cache
