// Three-level inclusive cache hierarchy in front of the memory controller
// (Table 2: 32 KiB L1D w/ IP-stride, 1 MiB L2 w/ SRRIP + streamer,
// 2 MiB/core 16-way SRRIP LLC).
//
// This is the processor-centric memory path that IMPACT's PiM operations
// bypass. The model is functional at line granularity: tags, replacement,
// inclusive back-invalidation, dirty writebacks, prefetch pollution — so
// that eviction sets, clflush and cache-filtering of memory requests behave
// the way the paper's §3 analysis assumes.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/cache.hpp"
#include "cache/latency_model.hpp"
#include "cache/prefetcher.hpp"
#include "dram/controller.hpp"
#include "obs/registry.hpp"
#include "util/units.hpp"

namespace impact::cache {

enum class HitLevel : std::uint8_t { kL1, kL2, kL3, kMemory };

[[nodiscard]] constexpr const char* to_string(HitLevel l) {
  switch (l) {
    case HitLevel::kL1:
      return "L1";
    case HitLevel::kL2:
      return "L2";
    case HitLevel::kL3:
      return "L3";
    case HitLevel::kMemory:
      return "memory";
  }
  return "?";
}

struct HierarchyConfig {
  CacheConfig l1;
  CacheConfig l2;
  CacheConfig l3;
  bool enable_prefetchers = true;
  /// Outstanding-miss parallelism: how many DRAM fills an eviction burst
  /// overlaps (MSHR-limited). Governs the §3.3 eviction-latency model.
  std::uint32_t mlp = 4;

  /// Table 2 configuration with a parameterizable LLC (for the Fig. 2/3/8
  /// sweeps). LLC lookup latency follows the CACTI-style model.
  [[nodiscard]] static HierarchyConfig table2(
      std::uint64_t llc_bytes = 8ull * 1024 * 1024,
      std::uint32_t llc_ways = 16);

  void validate() const;
};

struct MemAccessResult {
  util::Cycle latency = 0;
  HitLevel level = HitLevel::kL1;
  /// DRAM row-buffer outcome; meaningful only when level == kMemory.
  dram::RowBufferOutcome dram_outcome = dram::RowBufferOutcome::kEmpty;
};

class Hierarchy {
 public:
  /// The hierarchy issues misses/writebacks/prefetch fills to `controller`
  /// on behalf of `actor`. The controller must outlive the hierarchy.
  Hierarchy(HierarchyConfig config, dram::MemoryController& controller,
            dram::ActorId actor = dram::kAnyActor);
  /// Flushes any obs:: snapshot providers registered at construction (the
  /// per-level hit/miss counters stay visible in snapshots taken after the
  /// hierarchy is gone). Registered providers capture `this`, so the
  /// hierarchy is neither copyable nor movable.
  ~Hierarchy();
  Hierarchy(const Hierarchy&) = delete;
  Hierarchy& operator=(const Hierarchy&) = delete;

  [[nodiscard]] const HierarchyConfig& config() const { return config_; }

  /// A demand load/store at `now`. `pc` feeds the prefetchers.
  MemAccessResult access(dram::PhysAddr addr, util::Cycle now,
                         bool is_write = false, std::uint64_t pc = 0);

  /// Batched front end of the access-stream API (docs/performance.md,
  /// "Batched access streams"): resolves `n` independently-issued demand
  /// accesses, filling `results[i]` bit-identically to
  /// `access(addrs[i], issue[i], is_write)` in index order. Hits are
  /// filtered in the flat tag arrays; only misses reach the controller.
  /// Cache state (replacement, prefetchers, inclusive invalidation) chains
  /// through the stream exactly as in the scalar sequence — this is the
  /// stateful front end of the batch path, so requests are processed in
  /// order rather than grouped.
  void access_batch(const dram::PhysAddr* addrs, const util::Cycle* issue,
                    std::size_t n, MemAccessResult* results,
                    bool is_write = false);

  /// x86 `clflush`: probes the LLC, writes back if dirty (write-back latency
  /// lands on the critical path, §3.2), invalidates everywhere. Returns the
  /// instruction latency.
  util::Cycle clflush(dram::PhysAddr addr, util::Cycle now);

  /// Evicts the line holding `addr` from the whole hierarchy by accessing a
  /// conflict set of `l3.ways` lines (the §3.3 "baseline attack" primitive).
  /// Returns the modeled eviction latency: serialized lookups plus
  /// MLP-overlapped DRAM fills. Functionally displaces the target line.
  ///
  /// `avoid_bank`: a careful attacker builds the eviction set from
  /// congruent lines that do NOT map to the signalling DRAM bank (DRAMA
  /// reverse-engineers the address mapping for exactly this reason) —
  /// otherwise the eviction's own fills would trash the row state being
  /// measured. When the mapping makes avoidance impossible (pure
  /// bank-interleaving aliases every congruent line into one bank), the
  /// colliding lines are used anyway and the resulting self-noise is real.
  util::Cycle evict_via_set(dram::PhysAddr addr, util::Cycle now,
                            std::optional<dram::BankId> avoid_bank =
                                std::nullopt);

  /// True if any level holds the line.
  [[nodiscard]] bool cached(dram::PhysAddr addr) const;

  /// Non-temporal store: bypasses fills (writes combine to DRAM) but still
  /// probes the hierarchy to maintain coherence. Returns latency.
  util::Cycle store_nontemporal(dram::PhysAddr addr, util::Cycle now);

  [[nodiscard]] const Cache& l1() const { return l1_; }
  [[nodiscard]] const Cache& l2() const { return l2_; }
  [[nodiscard]] const Cache& l3() const { return l3_; }

  /// Total lookup latency of a full traversal miss (L1+L2+L3), the
  /// cache-lookup overhead PiM operations avoid.
  [[nodiscard]] util::Cycle full_lookup_latency() const;

  void reset_stats();
  /// Drops all cached lines without writebacks (test setup helper).
  void drop_all();

 private:
  [[nodiscard]] LineAddr line_of(dram::PhysAddr addr) const {
    // Shift fast path (line size is a power of two in every configuration;
    // the divide fallback keeps odd sizes correct). A runtime-value udiv
    // here costs ~20 cycles on the single hottest line of the simulator.
    return line_shift_ != 0 ? addr >> line_shift_
                            : addr / config_.l1.line_bytes;
  }
  [[nodiscard]] dram::PhysAddr addr_of(LineAddr line) const {
    return line_shift_ != 0 ? line << line_shift_
                            : line * config_.l1.line_bytes;
  }

  /// Installs a line in L3/L2/L1 handling inclusive back-invalidation and
  /// dirty writebacks. `now` anchors any writeback DRAM traffic.
  void fill_all_levels(LineAddr line, util::Cycle now, bool dirty);
  void handle_l3_eviction(const Eviction& ev, util::Cycle now);
  void issue_prefetches(const std::vector<LineAddr>& candidates,
                        util::Cycle now);

  HierarchyConfig config_;
  dram::MemoryController* controller_;
  dram::ActorId actor_;
  std::uint32_t line_shift_ = 0;  ///< log2(line_bytes); 0 = not pow2.
  Cache l1_;
  Cache l2_;
  Cache l3_;
  IpStridePrefetcher ip_stride_;
  StreamerPrefetcher streamer_;
  std::uint64_t prefetch_fills_ = 0;
  /// Prefetch-candidate scratch, reused across accesses so the (very hot)
  /// miss path does not allocate. `access` is not reentrant, so one buffer
  /// per prefetcher suffices.
  std::vector<LineAddr> l1_pf_scratch_;
  std::vector<LineAddr> l2_pf_scratch_;
  /// Snapshot-time providers over the existing LevelStats counters: the
  /// access fast path is untouched (zero added instructions); the registry
  /// samples the stats structs only when a snapshot is taken. Null/empty
  /// outside an obs::Scope.
  obs::Registry* obs_registry_ = nullptr;
  std::vector<obs::ProviderId> obs_providers_;

 public:
  [[nodiscard]] std::uint64_t prefetch_fills() const {
    return prefetch_fills_;
  }
};

}  // namespace impact::cache
