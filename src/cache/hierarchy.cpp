#include "cache/hierarchy.hpp"

#include <algorithm>
#include <bit>
#include <string>

#include "obs/scope.hpp"
#include "util/assert.hpp"

namespace impact::cache {

HierarchyConfig HierarchyConfig::table2(std::uint64_t llc_bytes,
                                        std::uint32_t llc_ways) {
  const LlcLatencyModel llc_model;
  HierarchyConfig c;
  c.l1 = CacheConfig{"L1D", 32ull * 1024, 8, 64, 4, ReplacementKind::kLru};
  c.l2 = CacheConfig{"L2", 1ull * 1024 * 1024, 16, 64, 12,
                     ReplacementKind::kSrrip};
  c.l3 = CacheConfig{"L3", llc_bytes, llc_ways, 64,
                     llc_model.latency(llc_bytes, llc_ways),
                     ReplacementKind::kSrrip};
  return c;
}

void HierarchyConfig::validate() const {
  l1.validate();
  l2.validate();
  l3.validate();
  util::check(l1.line_bytes == l2.line_bytes && l2.line_bytes == l3.line_bytes,
              "HierarchyConfig: line size must match across levels");
  util::check(mlp > 0, "HierarchyConfig: mlp must be positive");
}

Hierarchy::Hierarchy(HierarchyConfig config,
                     dram::MemoryController& controller, dram::ActorId actor)
    : config_(std::move(config)),
      controller_(&controller),
      actor_(actor),
      l1_(config_.l1),
      l2_(config_.l2),
      l3_(config_.l3) {
  config_.validate();
  const std::uint32_t lb = config_.l1.line_bytes;
  if (lb != 0 && (lb & (lb - 1)) == 0) {
    line_shift_ = static_cast<std::uint32_t>(std::countr_zero(lb));
  }
  // Publish the per-level stats as snapshot-time providers: sampling
  // happens only when a snapshot is taken, so the access fast path (PR 3's
  // flattened layout) is not touched at all. Registration is construction-
  // time-only work gated on an active obs::Scope.
  if (obs::Registry* reg = obs::current_registry()) {
    obs_registry_ = reg;
    const struct {
      const Cache* cache;
      const char* name;
    } levels[] = {{&l1_, "l1"}, {&l2_, "l2"}, {&l3_, "l3"}};
    for (const auto& lvl : levels) {
      const std::string base = std::string("cache.") + lvl.name + ".";
      const Cache* c = lvl.cache;
      obs_providers_.push_back(reg->add_provider(
          base + "hits", [c] { return c->stats().hits; }));
      obs_providers_.push_back(reg->add_provider(
          base + "misses", [c] { return c->stats().misses; }));
      obs_providers_.push_back(reg->add_provider(
          base + "evictions", [c] { return c->stats().evictions; }));
      obs_providers_.push_back(reg->add_provider(
          base + "writebacks", [c] { return c->stats().writebacks; }));
    }
    obs_providers_.push_back(reg->add_provider(
        "cache.prefetch_fills", [this] { return prefetch_fills_; }));
  }
}

Hierarchy::~Hierarchy() {
  if (obs_registry_ != nullptr) {
    for (const obs::ProviderId id : obs_providers_) {
      obs_registry_->flush_provider(id);
    }
  }
}

util::Cycle Hierarchy::full_lookup_latency() const {
  return config_.l1.latency + config_.l2.latency + config_.l3.latency;
}

void Hierarchy::handle_l3_eviction(const Eviction& ev, util::Cycle now) {
  // Inclusive LLC: the victim must leave the upper levels too.
  bool dirty = ev.dirty;
  if (const auto e1 = l1_.invalidate(ev.line)) dirty = dirty || e1->dirty;
  if (const auto e2 = l2_.invalidate(ev.line)) dirty = dirty || e2->dirty;
  if (dirty) {
    // Write the victim back to DRAM (off the demand critical path, but it
    // perturbs row-buffer state — a real noise source for the attacks).
    controller_->access(addr_of(ev.line), now, actor_);
  }
}

void Hierarchy::fill_all_levels(LineAddr line, util::Cycle now, bool dirty) {
  // Each level was just probed and missed in access(), and the L3 victim's
  // back-invalidation only removes lines, so every fill of `line` itself
  // can skip the tag re-probe. The victim write-down fills stay general:
  // an L2/L1 victim is usually still present in the level below.
  if (const auto ev3 = l3_.fill_known_miss(line, dirty)) {
    handle_l3_eviction(*ev3, now);
  }
  if (const auto ev2 = l2_.fill_known_miss(line)) {
    // Non-inclusive upper levels: a dirty L2 victim flows down into L3.
    if (ev2->dirty) l3_.fill(ev2->line, true);
  }
  if (const auto ev1 = l1_.fill_known_miss(line)) {
    if (ev1->dirty) l2_.fill(ev1->line, true);
  }
}

void Hierarchy::issue_prefetches(const std::vector<LineAddr>& candidates,
                                 util::Cycle now) {
  for (LineAddr line : candidates) {
    const dram::PhysAddr addr = addr_of(line);
    if (addr >= controller_->mapping().capacity()) continue;
    if (l2_.contains(line) || l3_.contains(line)) continue;
    ++prefetch_fills_;
    controller_->access(addr, now, actor_);  // DRAM-side pollution.
    // Both levels verified absent just above (back-invalidation of the L3
    // victim cannot re-insert `line`), so the fills skip the re-probe.
    if (const auto ev3 = l3_.fill_known_miss(line, false)) {
      handle_l3_eviction(*ev3, now);
    }
    if (const auto ev2 = l2_.fill_known_miss(line)) {
      if (ev2->dirty) l3_.fill(ev2->line, true);
    }
  }
}

// SIMLINT-HOT-BEGIN: per-access fast path — no allocation, no
// std::string, no by-name registry resolves (docs/static-analysis.md).
MemAccessResult Hierarchy::access(dram::PhysAddr addr, util::Cycle now,
                                  bool is_write, std::uint64_t pc) {
  const LineAddr line = line_of(addr);
  MemAccessResult r;

  // Host-side prefetch of the L2/L3 set metadata: those sets are random
  // from the host's perspective and will be scanned tens of nanoseconds
  // from now (after the L1 probe and the prefetcher updates), so the loads
  // overlap with that work instead of stalling the miss path.
  l2_.prefetch_set(line);
  l3_.prefetch_set(line);

  r.latency += config_.l1.latency;
  if (l1_.access(line, is_write)) {
    r.level = HitLevel::kL1;
    return r;
  }

  std::vector<LineAddr>& l1_prefetches = l1_pf_scratch_;
  l1_prefetches.clear();
  if (config_.enable_prefetchers) {
    ip_stride_.observe_into(pc, line, l1_prefetches);
  }

  r.latency += config_.l2.latency;
  if (l2_.access(line, false)) {
    r.level = HitLevel::kL2;
    // L1 was just probed and missed; skip its tag re-probe on the fill.
    if (const auto ev1 = l1_.fill_known_miss(line, is_write)) {
      if (ev1->dirty) l2_.fill(ev1->line, true);
    }
    if (!l1_prefetches.empty()) {
      issue_prefetches(l1_prefetches, now + r.latency);
    }
    return r;
  }

  std::vector<LineAddr>& l2_prefetches = l2_pf_scratch_;
  l2_prefetches.clear();
  if (config_.enable_prefetchers) {
    streamer_.observe_into(pc, line, l2_prefetches);
  }

  r.latency += config_.l3.latency;
  if (l3_.access(line, false)) {
    r.level = HitLevel::kL3;
    // L1/L2 both missed their probes above; the fills skip the re-probe.
    if (const auto ev2 = l2_.fill_known_miss(line)) {
      if (ev2->dirty) l3_.fill(ev2->line, true);
    }
    if (const auto ev1 = l1_.fill_known_miss(line, is_write)) {
      if (ev1->dirty) l2_.fill(ev1->line, true);
    }
    if (!l1_prefetches.empty()) {
      issue_prefetches(l1_prefetches, now + r.latency);
    }
    if (!l2_prefetches.empty()) {
      issue_prefetches(l2_prefetches, now + r.latency);
    }
    return r;
  }

  // Demand miss all the way to DRAM.
  const auto mem = controller_->access(addr, now + r.latency, actor_);
  r.latency += mem.latency;
  r.level = HitLevel::kMemory;
  r.dram_outcome = mem.outcome;
  fill_all_levels(line, now + r.latency, is_write);
  if (!l1_prefetches.empty()) {
    issue_prefetches(l1_prefetches, now + r.latency);
  }
  if (!l2_prefetches.empty()) {
    issue_prefetches(l2_prefetches, now + r.latency);
  }
  return r;
}

void Hierarchy::access_batch(const dram::PhysAddr* addrs,
                             const util::Cycle* issue, std::size_t n,
                             MemAccessResult* results, bool is_write) {
  // Stateful in-order front end (see header): one tight loop over the
  // scalar body keeps every replacement/prefetcher decision identical.
  for (std::size_t i = 0; i < n; ++i) {
    results[i] = access(addrs[i], issue[i], is_write);
  }
}
// SIMLINT-HOT-END

util::Cycle Hierarchy::clflush(dram::PhysAddr addr, util::Cycle now) {
  const LineAddr line = line_of(addr);
  // §5.1: "clflush only probes the LLC to flush the cache line."
  util::Cycle latency = config_.l3.latency;
  bool dirty = false;
  if (const auto e1 = l1_.invalidate(line)) dirty = dirty || e1->dirty;
  if (const auto e2 = l2_.invalidate(line)) dirty = dirty || e2->dirty;
  if (const auto e3 = l3_.invalidate(line)) dirty = dirty || e3->dirty;
  if (dirty) {
    // §3.2: the write-back to main memory lands on the critical path.
    const auto wb = controller_->access(addr, now + latency, actor_);
    latency += wb.latency;
  }
  return latency;
}

util::Cycle Hierarchy::evict_via_set(dram::PhysAddr addr, util::Cycle now,
                                     std::optional<dram::BankId> avoid_bank) {
  const LineAddr target = line_of(addr);
  const std::uint32_t sets = l3_.config().sets();
  const std::uint64_t capacity_lines =
      controller_->mapping().capacity() / config_.l1.line_bytes;

  // Conflict lines: same L3 set, different tags (stride of `sets` lines).
  util::Cycle lookup_cycles = 0;
  util::Cycle dram_cycles = 0;
  std::uint32_t filled = 0;
  const std::uint64_t max_tries = 16ull * l3_.config().ways;
  for (std::uint64_t k = 1; filled < l3_.config().ways; ++k) {
    const LineAddr line =
        (target + k * static_cast<std::uint64_t>(sets)) % capacity_lines;
    if (line == target) continue;
    if (avoid_bank.has_value() && k <= max_tries &&
        controller_->mapping().decode(addr_of(line)).bank == *avoid_bank) {
      continue;  // Keep the signalling bank's row buffer untouched.
    }
    // Functional path: install the conflicting line. One tag scan decides
    // hit and miss handling (the seed probed up to three times here:
    // contains, then access, then the fill's own re-probe).
    const LineAddr l = line;
    lookup_cycles += full_lookup_latency();
    const std::uint32_t way = l3_.probe(l);
    if (way == Cache::kNoWay) {
      const auto mem =
          controller_->access(addr_of(l), now + lookup_cycles, actor_);
      dram_cycles += mem.latency;
      if (const auto ev3 = l3_.fill_known_miss(l)) {
        handle_l3_eviction(*ev3, now);
      }
    } else {
      // Promote; keeps the set pressure honest. Collapses the seed's
      // hitting access() + present fill() (touch is idempotent, so the
      // double promotion equals one).
      l3_.touch_hit(l, way, false);
    }
    ++filled;
  }
  // Upper levels may still hold the target (they are smaller, so the
  // conflict set usually displaces it, but inclusive back-invalidation on
  // the target's eviction handles the rest). Force-complete the eviction:
  l1_.invalidate(target);
  l2_.invalidate(target);
  l3_.invalidate(target);

  // Latency model (§3.3): cache lookups serialize; the DRAM fills overlap
  // up to the MSHR-limited memory-level parallelism.
  return lookup_cycles + dram_cycles / config_.mlp;
}

bool Hierarchy::cached(dram::PhysAddr addr) const {
  const LineAddr line = line_of(addr);
  return l1_.contains(line) || l2_.contains(line) || l3_.contains(line);
}

util::Cycle Hierarchy::store_nontemporal(dram::PhysAddr addr,
                                         util::Cycle now) {
  const LineAddr line = line_of(addr);
  // Coherence probe of all levels, then a combining-buffer write to DRAM.
  util::Cycle latency = full_lookup_latency();
  l1_.invalidate(line);
  l2_.invalidate(line);
  l3_.invalidate(line);
  const auto wb = controller_->access(addr, now + latency, actor_);
  latency += wb.latency;
  return latency;
}

void Hierarchy::reset_stats() {
  // Counters only: lines, replacement state and prefetcher training all
  // survive deliberately (resetting stats mid-run must not perturb the
  // simulated machine).
  l1_.reset_stats();
  l2_.reset_stats();
  l3_.reset_stats();
  prefetch_fills_ = 0;
}

void Hierarchy::drop_all() {
  // Cache::clear() also resets per-set replacement metadata, so a dropped
  // hierarchy is genuinely cold rather than inheriting the previous
  // workload's victim ordering. Prefetcher training is kept: drop_all is a
  // tag-drop helper, not a machine reset.
  l1_.clear();
  l2_.clear();
  l3_.clear();
}

}  // namespace impact::cache
