#include "cache/replacement.hpp"

#include "util/assert.hpp"

namespace impact::cache::repl {

void reset(ReplacementKind kind, std::span<std::uint8_t> meta) {
  util::check(!meta.empty(), "repl::reset requires at least one way");
  if (kind == ReplacementKind::kLru) {
    for (std::size_t w = 0; w < meta.size(); ++w) {
      meta[w] = static_cast<std::uint8_t>(w);  // Arbitrary initial order.
    }
  } else {
    for (std::uint8_t& m : meta) m = kRrpvMax;  // All distant (empty set).
  }
}

}  // namespace impact::cache::repl
