#include "cache/replacement.hpp"

namespace impact::cache {

ReplacementState::ReplacementState(ReplacementKind kind, std::uint32_t ways)
    : kind_(kind), ways_(ways) {
  util::check(ways > 0, "ReplacementState requires at least one way");
  if (kind_ == ReplacementKind::kLru) {
    meta_.resize(ways);
    for (std::uint32_t w = 0; w < ways; ++w) {
      meta_[w] = static_cast<std::uint8_t>(w);  // Arbitrary initial order.
    }
  } else {
    meta_.assign(ways, kRrpvMax);  // All lines distant (empty set).
  }
}

void ReplacementState::touch(std::uint32_t way) {
  util::check(way < ways_, "ReplacementState::touch: way out of range");
  if (kind_ == ReplacementKind::kLru) {
    const std::uint8_t old = meta_[way];
    for (std::uint32_t w = 0; w < ways_; ++w) {
      if (meta_[w] < old) ++meta_[w];
    }
    meta_[way] = 0;
  } else {
    meta_[way] = 0;  // SRRIP hit promotion: near-immediate re-reference.
  }
}

void ReplacementState::insert(std::uint32_t way) {
  util::check(way < ways_, "ReplacementState::insert: way out of range");
  if (kind_ == ReplacementKind::kLru) {
    touch(way);
  } else {
    meta_[way] = kRrpvInsert;
  }
}

std::uint32_t ReplacementState::victim() {
  if (kind_ == ReplacementKind::kLru) {
    for (std::uint32_t w = 0; w < ways_; ++w) {
      if (meta_[w] == ways_ - 1) return w;
    }
    return ways_ - 1;  // Unreachable for well-formed state.
  }
  // SRRIP: find leftmost RRPV==max, ageing all entries until one appears.
  for (;;) {
    for (std::uint32_t w = 0; w < ways_; ++w) {
      if (meta_[w] == kRrpvMax) return w;
    }
    for (std::uint32_t w = 0; w < ways_; ++w) ++meta_[w];
  }
}

}  // namespace impact::cache
