#include "cache/cache.hpp"

#include <algorithm>
#include <cassert>

#include "util/assert.hpp"

namespace impact::cache {

void CacheConfig::validate() const {
  util::check(size_bytes > 0 && ways > 0 && line_bytes > 0,
              "CacheConfig: sizes must be positive");
  util::check(size_bytes % (static_cast<std::uint64_t>(ways) * line_bytes) ==
                  0,
              "CacheConfig: size must be divisible by ways*line");
  util::check(sets() > 0, "CacheConfig: at least one set required");
}

Cache::Cache(CacheConfig config) : config_(std::move(config)) {
  config_.validate();
  sets_ = config_.sets();
  pow2_sets_ = (sets_ & (sets_ - 1)) == 0;
  set_mask_ = pow2_sets_ ? sets_ - 1 : 0;
  tags_.assign(static_cast<std::size_t>(sets_) * config_.ways, 0);
  meta_.assign(static_cast<std::size_t>(sets_) * config_.ways * 4, 0);
  live_.assign(sets_, 0);
  for (std::uint32_t s = 0; s < sets_; ++s) {
    repl::reset(config_.replacement, repl_slice(meta_base(s)));
  }
}

// SIMLINT-HOT-BEGIN: per-access fast path — no allocation, no
// std::string, no by-name registry resolves (docs/static-analysis.md).
bool Cache::access(LineAddr line, bool is_write) {
  const std::uint32_t set = set_index(line);
  const std::size_t base = static_cast<std::size_t>(set) * config_.ways;
  const std::size_t mbase = meta_base(set);
  const std::uint32_t way = find_way(base, mbase, line);
  if (way != kNoWay) {
    ++stats_.hits;
    repl::touch(config_.replacement, repl_slice(mbase), way);
    if (is_write) dirty_of(mbase)[way] = 1;
    return true;
  }
  ++stats_.misses;
  return false;
}

void Cache::touch_hit(LineAddr line, std::uint32_t way, bool is_write) {
  const std::uint32_t set = set_index(line);
  const std::size_t mbase = meta_base(set);
  assert(way < config_.ways &&
         tags_[static_cast<std::size_t>(set) * config_.ways + way] == line &&
         valid_of(mbase)[way] != 0);
  ++stats_.hits;
  repl::touch(config_.replacement, repl_slice(mbase), way);
  if (is_write) dirty_of(mbase)[way] = 1;
}

std::optional<Eviction> Cache::install(std::uint32_t set, std::size_t base,
                                       LineAddr line, bool dirty) {
  const std::size_t mbase = meta_base(set);
  std::uint8_t* valid = valid_of(mbase);
  std::uint8_t* dirt = dirty_of(mbase);
  // Prefer the first invalid way. The occupancy counter skips the scan in
  // the steady state (set full), where it would always come up empty.
  if (live_[set] < config_.ways) {
    for (std::uint32_t w = 0; w < config_.ways; ++w) {
      if (valid[w] == 0) {
        tags_[base + w] = line;
        valid[w] = 1;
        dirt[w] = dirty ? 1 : 0;
        repl::insert(config_.replacement, repl_slice(mbase), w);
        ++live_[set];
        return std::nullopt;
      }
    }
  }
  const std::uint32_t victim =
      repl::victim(config_.replacement, repl_slice(mbase));
  Eviction ev{tags_[base + victim], dirt[victim] != 0};
  ++stats_.evictions;
  if (ev.dirty) ++stats_.writebacks;
  tags_[base + victim] = line;
  dirt[victim] = dirty ? 1 : 0;
  repl::insert(config_.replacement, repl_slice(mbase), victim);
  return ev;
}

std::optional<Eviction> Cache::fill(LineAddr line, bool dirty) {
  const std::uint32_t set = set_index(line);
  const std::size_t base = static_cast<std::size_t>(set) * config_.ways;
  const std::size_t mbase = meta_base(set);
  // Already present (e.g. racing fills): just update.
  const std::uint32_t way = find_way(base, mbase, line);
  if (way != kNoWay) {
    if (dirty) dirty_of(mbase)[way] = 1;
    repl::touch(config_.replacement, repl_slice(mbase), way);
    return std::nullopt;
  }
  return install(set, base, line, dirty);
}

std::optional<Eviction> Cache::fill_known_miss(LineAddr line, bool dirty) {
  const std::uint32_t set = set_index(line);
  const std::size_t base = static_cast<std::size_t>(set) * config_.ways;
  assert(find_way(base, meta_base(set), line) == kNoWay);
  return install(set, base, line, dirty);
}
// SIMLINT-HOT-END

std::optional<Eviction> Cache::invalidate(LineAddr line) {
  const std::uint32_t set = set_index(line);
  const std::size_t base = static_cast<std::size_t>(set) * config_.ways;
  const std::size_t mbase = meta_base(set);
  const std::uint32_t way = find_way(base, mbase, line);
  if (way == kNoWay) return std::nullopt;
  std::uint8_t* dirt = dirty_of(mbase);
  Eviction ev{tags_[base + way], dirt[way] != 0};
  if (ev.dirty) ++stats_.writebacks;
  valid_of(mbase)[way] = 0;
  dirt[way] = 0;
  --live_[set];
  return ev;
}

void Cache::clear() {
  std::fill(meta_.begin(), meta_.end(), 0);
  std::fill(live_.begin(), live_.end(), 0);
  // Replacement metadata must not survive a clear: a "cold" cache whose
  // victim ordering remembers the previous workload is not cold.
  for (std::uint32_t s = 0; s < sets_; ++s) {
    repl::reset(config_.replacement, repl_slice(meta_base(s)));
  }
}

}  // namespace impact::cache
