#include "cache/cache.hpp"

#include "util/assert.hpp"

namespace impact::cache {

void CacheConfig::validate() const {
  util::check(size_bytes > 0 && ways > 0 && line_bytes > 0,
              "CacheConfig: sizes must be positive");
  util::check(size_bytes % (static_cast<std::uint64_t>(ways) * line_bytes) ==
                  0,
              "CacheConfig: size must be divisible by ways*line");
  util::check(sets() > 0, "CacheConfig: at least one set required");
}

Cache::Cache(CacheConfig config) : config_(std::move(config)) {
  config_.validate();
  sets_ = config_.sets();
  ways_.assign(static_cast<std::size_t>(sets_) * config_.ways, Way{});
  repl_.reserve(sets_);
  for (std::uint32_t s = 0; s < sets_; ++s) {
    repl_.emplace_back(config_.replacement, config_.ways);
  }
}

std::optional<std::uint32_t> Cache::find_way(std::uint32_t set,
                                             LineAddr line) const {
  const std::size_t base = static_cast<std::size_t>(set) * config_.ways;
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    const Way& entry = ways_[base + w];
    if (entry.valid && entry.tag == line) return w;
  }
  return std::nullopt;
}

bool Cache::access(LineAddr line, bool is_write) {
  const std::uint32_t set = set_index(line);
  const auto way = find_way(set, line);
  if (way.has_value()) {
    ++stats_.hits;
    repl_[set].touch(*way);
    if (is_write) {
      ways_[static_cast<std::size_t>(set) * config_.ways + *way].dirty = true;
    }
    return true;
  }
  ++stats_.misses;
  return false;
}

std::optional<Eviction> Cache::fill(LineAddr line, bool dirty) {
  const std::uint32_t set = set_index(line);
  const std::size_t base = static_cast<std::size_t>(set) * config_.ways;

  // Already present (e.g. racing fills): just update.
  if (const auto way = find_way(set, line)) {
    Way& entry = ways_[base + *way];
    entry.dirty = entry.dirty || dirty;
    repl_[set].touch(*way);
    return std::nullopt;
  }

  // Prefer an invalid way.
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    if (!ways_[base + w].valid) {
      ways_[base + w] = Way{true, dirty, line};
      repl_[set].insert(w);
      return std::nullopt;
    }
  }

  const std::uint32_t victim = repl_[set].victim();
  Way& entry = ways_[base + victim];
  Eviction ev{entry.tag, entry.dirty};
  ++stats_.evictions;
  if (entry.dirty) ++stats_.writebacks;
  entry = Way{true, dirty, line};
  repl_[set].insert(victim);
  return ev;
}

std::optional<Eviction> Cache::invalidate(LineAddr line) {
  const std::uint32_t set = set_index(line);
  const auto way = find_way(set, line);
  if (!way.has_value()) return std::nullopt;
  Way& entry = ways_[static_cast<std::size_t>(set) * config_.ways + *way];
  Eviction ev{entry.tag, entry.dirty};
  if (entry.dirty) ++stats_.writebacks;
  entry = Way{};
  return ev;
}

bool Cache::contains(LineAddr line) const {
  return find_way(set_index(line), line).has_value();
}

void Cache::clear() {
  for (auto& w : ways_) w = Way{};
}

}  // namespace impact::cache
