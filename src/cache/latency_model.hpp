// CACTI-style LLC lookup-latency scaling.
//
// §3.3: "To calculate the cache access latency with increasing LLC sizes, we
// followed the same methodology used in prior works [CACTI 6.0]". CACTI's
// H-tree wire + bank access model grows close to the square root of the
// array size; associativity adds a mild linear term for wider tag match and
// way multiplexing. We anchor the curve at Table 2's point: an 8 MiB
// (2 MiB/core x 4 cores), 16-way LLC with a 32-cycle lookup.
#pragma once

#include <cstdint>

#include "util/units.hpp"

namespace impact::cache {

struct LlcLatencyModel {
  /// Anchor configuration (Table 2).
  std::uint64_t anchor_bytes = 8ull * 1024 * 1024;
  std::uint32_t anchor_ways = 16;
  util::Cycle anchor_latency = 32;

  /// Per-way sensitivity of the way-mux / tag-compare path.
  double way_factor = 0.015;

  /// Lookup latency (cycles) of an LLC with the given geometry.
  [[nodiscard]] util::Cycle latency(std::uint64_t size_bytes,
                                    std::uint32_t ways) const;
};

}  // namespace impact::cache
