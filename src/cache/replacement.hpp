// Replacement policies for set-associative structures (caches, TLBs).
//
// Table 2 uses LRU in the L1 and SRRIP (Jaleel et al., ISCA'10) in the L2/L3.
// Policies are modelled per set over way indices; the cache owns the tags.
//
// The policies are free functions over a `std::span<std::uint8_t>` — one
// metadata byte per way, sliced out of a flat `sets x ways` array owned by
// the cache/TLB. The owning structure hands each call the slice for the set
// being updated; nothing here allocates. (The previous per-set
// `ReplacementState` object held its own heap vector: 8192 separate
// allocations for the Table 2 LLC, and a pointer chase on every touch.)
//
// Metadata encoding:
//   LRU   — a permutation of 0..ways-1; lower = more recently used.
//   SRRIP — 2-bit re-reference prediction values (RRPV).
#pragma once

#include <cassert>
#include <cstdint>
#include <span>

namespace impact::cache {

enum class ReplacementKind : std::uint8_t { kLru, kSrrip };

[[nodiscard]] constexpr const char* to_string(ReplacementKind k) {
  switch (k) {
    case ReplacementKind::kLru:
      return "LRU";
    case ReplacementKind::kSrrip:
      return "SRRIP";
  }
  return "?";
}

namespace repl {

inline constexpr std::uint8_t kRrpvMax = 3;     // 2-bit RRPV.
inline constexpr std::uint8_t kRrpvInsert = 2;  // Long re-reference.

/// Initializes one set's metadata to the empty-set state (construction and
/// Cache::clear()). LRU: the arbitrary order 0..ways-1. SRRIP: all distant.
void reset(ReplacementKind kind, std::span<std::uint8_t> meta);

/// Marks `way` as just accessed (hit promotion).
// SIMLINT-HOT-BEGIN: per-access fast path — no allocation, no
// std::string, no by-name registry resolves (docs/static-analysis.md).
inline void touch(ReplacementKind kind, std::span<std::uint8_t> meta,
                  std::uint32_t way) {
  assert(way < meta.size());
  if (kind == ReplacementKind::kLru) {
    // Branchless shift-up of everything more recent than `way`: the
    // compare folds into an add the compiler vectorizes, instead of a
    // data-dependent branch per way.
    const std::uint8_t old = meta[way];
    for (std::uint8_t& m : meta) {
      m = static_cast<std::uint8_t>(m + static_cast<std::uint8_t>(m < old));
    }
    meta[way] = 0;
  } else {
    meta[way] = 0;  // SRRIP hit promotion: near-immediate re-reference.
  }
}

/// Marks `way` as just filled (insertion).
inline void insert(ReplacementKind kind, std::span<std::uint8_t> meta,
                   std::uint32_t way) {
  assert(way < meta.size());
  if (kind == ReplacementKind::kLru) {
    touch(kind, meta, way);
  } else {
    meta[way] = kRrpvInsert;
  }
}

/// Chooses the way to evict. For SRRIP this ages RRPVs as a side effect
/// (the standard search-and-increment, collapsed to one pass: age every
/// entry by the distance of the current maximum from kRrpvMax, then take
/// the leftmost entry at the maximum — state-identical to the iterated
/// search-and-increment loop).
[[nodiscard]] inline std::uint32_t victim(ReplacementKind kind,
                                          std::span<std::uint8_t> meta) {
  const std::uint32_t ways = static_cast<std::uint32_t>(meta.size());
  if (kind == ReplacementKind::kLru) {
    // The metadata is a permutation, so exactly one way holds ways-1; the
    // OR-accumulate finds it without a data-dependent exit branch (the
    // match position is random, so an early-exit scan mispredicts once per
    // search) and vectorizes as byte compares.
    const std::uint8_t lru_rank = static_cast<std::uint8_t>(ways - 1);
    std::uint32_t idx = 0;
    for (std::uint32_t w = 0; w < ways; ++w) {
      idx |= meta[w] == lru_rank ? w : 0u;
    }
    return idx;
  }
  // Leftmost-argmax without a data-dependent branch: RRPVs look random to
  // the branch predictor, so a compare-and-branch per way mispredicts
  // often. Packing (rrpv, ways-1-w) into one word turns the search into a
  // pure max reduction the compiler can tree-vectorize — the leftmost way
  // holding the maximum RRPV wins, matching the scalar scan exactly.
  std::uint32_t best;
  std::uint8_t max;
  if (ways <= 64) {
    std::uint32_t packed = 0;
    for (std::uint32_t w = 0; w < ways; ++w) {
      const std::uint32_t p =
          (static_cast<std::uint32_t>(meta[w]) << 6) | (63 - w);
      packed = p > packed ? p : packed;
    }
    best = 63 - (packed & 63u);
    max = static_cast<std::uint8_t>(packed >> 6);
  } else {
    best = 0;
    max = meta[0];
    for (std::uint32_t w = 1; w < ways; ++w) {
      const bool gt = meta[w] > max;
      max = gt ? meta[w] : max;
      best = gt ? w : best;
    }
  }
  if (max < kRrpvMax) {
    const std::uint8_t delta = static_cast<std::uint8_t>(kRrpvMax - max);
    for (std::uint8_t& m : meta) m = static_cast<std::uint8_t>(m + delta);
  }
  return best;
}
// SIMLINT-HOT-END

}  // namespace repl
}  // namespace impact::cache
