// Replacement policies for set-associative structures (caches, TLBs).
//
// Table 2 uses LRU in the L1 and SRRIP (Jaleel et al., ISCA'10) in the L2/L3.
// Policies are modelled per set over way indices; the cache owns the tags.
#pragma once

#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace impact::cache {

enum class ReplacementKind : std::uint8_t { kLru, kSrrip };

[[nodiscard]] constexpr const char* to_string(ReplacementKind k) {
  switch (k) {
    case ReplacementKind::kLru:
      return "LRU";
    case ReplacementKind::kSrrip:
      return "SRRIP";
  }
  return "?";
}

/// Replacement state for one set. Ways are indexed 0..ways-1.
class ReplacementState {
 public:
  ReplacementState(ReplacementKind kind, std::uint32_t ways);

  /// Marks `way` as just accessed (hit promotion).
  void touch(std::uint32_t way);

  /// Marks `way` as just filled (insertion).
  void insert(std::uint32_t way);

  /// Chooses the way to evict. For SRRIP this ages RRPVs as a side effect
  /// (the standard search-and-increment loop).
  [[nodiscard]] std::uint32_t victim();

 private:
  ReplacementKind kind_;
  std::uint32_t ways_;
  // LRU: lower = more recent. SRRIP: 2-bit re-reference prediction values.
  std::vector<std::uint8_t> meta_;

  static constexpr std::uint8_t kRrpvMax = 3;     // 2-bit RRPV.
  static constexpr std::uint8_t kRrpvInsert = 2;  // Long re-reference.
};

}  // namespace impact::cache
