#include "cache/latency_model.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace impact::cache {

util::Cycle LlcLatencyModel::latency(std::uint64_t size_bytes,
                                     std::uint32_t ways) const {
  util::check(size_bytes > 0 && ways > 0,
              "LlcLatencyModel: geometry must be positive");
  const double size_scale = std::sqrt(static_cast<double>(size_bytes) /
                                      static_cast<double>(anchor_bytes));
  const double way_scale =
      1.0 + way_factor * (static_cast<double>(ways) -
                          static_cast<double>(anchor_ways));
  const double cycles =
      static_cast<double>(anchor_latency) * size_scale * way_scale;
  return static_cast<util::Cycle>(std::llround(std::max(cycles, 4.0)));
}

}  // namespace impact::cache
