// A single level of set-associative cache (tags only; data lives in DRAM's
// DataArray — the cache model answers "hit or miss, and who got evicted").
//
// Storage is flat and cache-friendly: the per-way tag / valid / dirty bits
// and the replacement metadata each live in one contiguous `sets x ways`
// array, so a set's tag run occupies adjacent memory and `find_way` scans
// densely instead of striding over an array-of-structs. Set indexing uses
// shift/mask when the set count is a power of two (every Table 2
// configuration), with a validated modulo fallback otherwise.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cache/replacement.hpp"
#include "util/units.hpp"

namespace impact::cache {

/// Cache-line-granular address (byte address >> line shift).
using LineAddr = std::uint64_t;

struct CacheConfig {
  std::string name = "cache";
  std::uint64_t size_bytes = 0;
  std::uint32_t ways = 0;
  std::uint32_t line_bytes = 64;
  util::Cycle latency = 0;  ///< Lookup (tag+data) latency of this level.
  ReplacementKind replacement = ReplacementKind::kLru;

  [[nodiscard]] std::uint32_t sets() const {
    return static_cast<std::uint32_t>(size_bytes / line_bytes / ways);
  }
  void validate() const;
};

/// A line displaced by a fill.
struct Eviction {
  LineAddr line = 0;
  bool dirty = false;
};

struct LevelStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;

  [[nodiscard]] std::uint64_t accesses() const { return hits + misses; }
  [[nodiscard]] double miss_rate() const {
    const auto n = accesses();
    return n == 0 ? 0.0 : static_cast<double>(misses) / static_cast<double>(n);
  }
};

class Cache {
 public:
  /// Sentinel way index returned by probe() on a miss.
  static constexpr std::uint32_t kNoWay = ~0u;

  explicit Cache(CacheConfig config);

  [[nodiscard]] const CacheConfig& config() const { return config_; }

  /// Tag lookup; promotes on hit, optionally marks dirty. Returns hit/miss.
  bool access(LineAddr line, bool is_write);

  /// Installs `line`, returning the displaced line if a valid one was
  /// evicted. Marks dirty when `dirty`.
  std::optional<Eviction> fill(LineAddr line, bool dirty = false);

  /// `fill` for a line the caller has just observed missing (via a missed
  /// access()/probe()/contains() with no intervening fill of this cache):
  /// skips the redundant tag re-probe, going straight to way selection.
  /// The precondition is asserted in debug builds.
  std::optional<Eviction> fill_known_miss(LineAddr line, bool dirty = false);

  /// Removes `line` if present; returns its eviction record.
  std::optional<Eviction> invalidate(LineAddr line);

  /// Non-destructive presence probe (no replacement-state update).
  [[nodiscard]] bool contains(LineAddr line) const {
    return probe(line) != kNoWay;
  }

  /// Single-scan tag probe: the hitting way, or kNoWay. No stats, no
  /// replacement update — a `contains` that exposes the way so the caller
  /// can follow up without a second scan.
  [[nodiscard]] std::uint32_t probe(LineAddr line) const {
    const std::uint32_t set = set_index(line);
    return find_way(static_cast<std::size_t>(set) * config_.ways,
                    meta_base(set), line);
  }

  /// Registers a demand hit on the way returned by a probe of `line`:
  /// counts the hit, promotes, and optionally marks dirty. Equivalent to a
  /// hitting access(line, is_write) minus the tag scan.
  void touch_hit(LineAddr line, std::uint32_t way, bool is_write);

  /// Host-side locality hint: starts pulling the set's tag/valid/replacement
  /// metadata toward the host caches ahead of an expected probe of `line`.
  /// No effect on simulated state — the hierarchy issues these for the L2/L3
  /// sets at access entry so the (host-)random set metadata arrives by the
  /// time the miss path reaches those levels.
  void prefetch_set(LineAddr line) const {
#if defined(__GNUC__) || defined(__clang__)
    const std::uint32_t set = set_index(line);
    const std::size_t base = static_cast<std::size_t>(set) * config_.ways;
    __builtin_prefetch(tags_.data() + base);
    if (config_.ways > 8) __builtin_prefetch(tags_.data() + base + 8);
    __builtin_prefetch(meta_.data() + meta_base(set));
#else
    (void)line;
#endif
  }

  /// Set index the line maps to (for eviction-set construction).
  [[nodiscard]] std::uint32_t set_index(LineAddr line) const {
    return pow2_sets_ ? (static_cast<std::uint32_t>(line) & set_mask_)
                      : static_cast<std::uint32_t>(line % sets_);
  }

  [[nodiscard]] const LevelStats& stats() const { return stats_; }
  void reset_stats() { stats_ = LevelStats{}; }

  /// Drops all lines and resets replacement metadata to the post-
  /// construction state (no writebacks; tests only). A cleared cache must
  /// not inherit the previous workload's victim ordering.
  void clear();

 private:
  // Per-set metadata block layout inside meta_: the set's valid bytes,
  // dirty bytes and replacement bytes sit back to back (stride 4*ways,
  // so a 16-way set's whole block is one 64-byte host cache line; the
  // fourth quarter is padding). One random line instead of three per
  // probed set.
  [[nodiscard]] std::size_t meta_base(std::uint32_t set) const {
    return static_cast<std::size_t>(set) * config_.ways * 4;
  }
  [[nodiscard]] const std::uint8_t* valid_of(std::size_t mbase) const {
    return meta_.data() + mbase;
  }
  [[nodiscard]] std::uint8_t* valid_of(std::size_t mbase) {
    return meta_.data() + mbase;
  }
  [[nodiscard]] std::uint8_t* dirty_of(std::size_t mbase) {
    return meta_.data() + mbase + config_.ways;
  }
  [[nodiscard]] std::span<std::uint8_t> repl_slice(std::size_t mbase) {
    return {meta_.data() + mbase + 2 * static_cast<std::size_t>(config_.ways),
            config_.ways};
  }

  [[nodiscard]] std::uint32_t find_way(std::size_t base, std::size_t mbase,
                                       LineAddr line) const {
    // First-match scan over the dense tag run. The exit branch is highly
    // predictable: on a miss (the common case for every level under the
    // attack workloads) it is never taken, so the scan retires at several
    // ways per cycle instead of paying a serial compare-accumulate chain.
    const LineAddr* tags = tags_.data() + base;
    const std::uint8_t* valid = valid_of(mbase);
    const std::uint32_t n = config_.ways;
    for (std::uint32_t w = 0; w < n; ++w) {
      if (tags[w] == line && valid[w] != 0) return w;
    }
    return kNoWay;
  }

  /// Way selection + install for a line known to be absent from the set
  /// starting at `base` (= set * ways).
  std::optional<Eviction> install(std::uint32_t set, std::size_t base,
                                  LineAddr line, bool dirty);

  CacheConfig config_;
  std::uint32_t sets_ = 0;
  std::uint32_t set_mask_ = 0;
  bool pow2_sets_ = false;
  // Flat storage, row-major by set: the dense tag run scanned by
  // find_way, plus one packed valid/dirty/replacement byte block per set
  // (see meta_base) so a probe touches one metadata cache line, not three.
  std::vector<LineAddr> tags_;
  std::vector<std::uint8_t> meta_;
  /// Valid ways per set: a full set (the steady state) goes straight to
  /// victim selection without scanning valid_ for a free way.
  std::vector<std::uint16_t> live_;
  LevelStats stats_;
};

}  // namespace impact::cache
