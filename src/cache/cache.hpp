// A single level of set-associative cache (tags only; data lives in DRAM's
// DataArray — the cache model answers "hit or miss, and who got evicted").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cache/replacement.hpp"
#include "util/units.hpp"

namespace impact::cache {

/// Cache-line-granular address (byte address >> line shift).
using LineAddr = std::uint64_t;

struct CacheConfig {
  std::string name = "cache";
  std::uint64_t size_bytes = 0;
  std::uint32_t ways = 0;
  std::uint32_t line_bytes = 64;
  util::Cycle latency = 0;  ///< Lookup (tag+data) latency of this level.
  ReplacementKind replacement = ReplacementKind::kLru;

  [[nodiscard]] std::uint32_t sets() const {
    return static_cast<std::uint32_t>(size_bytes / line_bytes / ways);
  }
  void validate() const;
};

/// A line displaced by a fill.
struct Eviction {
  LineAddr line = 0;
  bool dirty = false;
};

struct LevelStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;

  [[nodiscard]] std::uint64_t accesses() const { return hits + misses; }
  [[nodiscard]] double miss_rate() const {
    const auto n = accesses();
    return n == 0 ? 0.0 : static_cast<double>(misses) / static_cast<double>(n);
  }
};

class Cache {
 public:
  explicit Cache(CacheConfig config);

  [[nodiscard]] const CacheConfig& config() const { return config_; }

  /// Tag lookup; promotes on hit, optionally marks dirty. Returns hit/miss.
  bool access(LineAddr line, bool is_write);

  /// Installs `line`, returning the displaced line if a valid one was
  /// evicted. Marks dirty when `dirty`.
  std::optional<Eviction> fill(LineAddr line, bool dirty = false);

  /// Removes `line` if present; returns its eviction record.
  std::optional<Eviction> invalidate(LineAddr line);

  /// Non-destructive presence probe (no replacement-state update).
  [[nodiscard]] bool contains(LineAddr line) const;

  /// Set index the line maps to (for eviction-set construction).
  [[nodiscard]] std::uint32_t set_index(LineAddr line) const {
    return static_cast<std::uint32_t>(line % sets_);
  }

  [[nodiscard]] const LevelStats& stats() const { return stats_; }
  void reset_stats() { stats_ = LevelStats{}; }

  /// Drops all lines (no writebacks; tests only).
  void clear();

 private:
  struct Way {
    bool valid = false;
    bool dirty = false;
    LineAddr tag = 0;
  };

  [[nodiscard]] std::optional<std::uint32_t> find_way(std::uint32_t set,
                                                      LineAddr line) const;

  CacheConfig config_;
  std::uint32_t sets_;
  std::vector<Way> ways_;                    // sets_ * ways, row-major.
  std::vector<ReplacementState> repl_;       // one per set.
  LevelStats stats_;
};

}  // namespace impact::cache
