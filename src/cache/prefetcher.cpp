#include "cache/prefetcher.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace impact::cache {

IpStridePrefetcher::IpStridePrefetcher(std::uint32_t entries,
                                       std::uint32_t degree)
    : degree_(degree), table_(entries) {
  if (entries != 0 && (entries & (entries - 1)) == 0) {
    pow2_entries_ = true;
    entry_mask_ = entries - 1;
  }
}

void IpStridePrefetcher::observe_into(std::uint64_t pc, LineAddr line,
                                      std::vector<LineAddr>& out) {
  Entry& e = table_[index_of(pc)];
  if (e.valid && e.pc == pc) {
    const std::int64_t stride =
        static_cast<std::int64_t>(line) - static_cast<std::int64_t>(e.last_line);
    if (stride == e.stride && stride != 0) {
      e.confidence = static_cast<std::uint8_t>(std::min<int>(e.confidence + 1,
                                                             3));
    } else {
      e.stride = stride;
      e.confidence = e.confidence > 0 ? static_cast<std::uint8_t>(
                                            e.confidence - 1)
                                      : 0;
    }
    e.last_line = line;
    if (e.confidence >= 2 && e.stride != 0) {
      for (std::uint32_t d = 1; d <= degree_; ++d) {
        const std::int64_t target =
            static_cast<std::int64_t>(line) + e.stride * static_cast<std::int64_t>(d);
        if (target >= 0) out.push_back(static_cast<LineAddr>(target));
      }
    }
  } else {
    e = Entry{true, pc, line, 0, 0};
  }
}

StreamerPrefetcher::StreamerPrefetcher(std::uint32_t streams,
                                       std::uint32_t degree)
    : degree_(degree),
      n_(streams),
      region_(streams, 0),
      recency_(streams, 0),
      last_line_(streams, 0),
      direction_(streams, 0),
      confidence_(streams, 0),
      valid_(streams, 0) {
  util::check(streams <= 256,
              "StreamerPrefetcher: byte recency permutation caps streams at "
              "256");
  repl::reset(ReplacementKind::kLru, recency_);
}

void StreamerPrefetcher::observe_into(std::uint64_t /*pc*/, LineAddr line,
                                      std::vector<LineAddr>& out) {
  const std::uint64_t region = line >> kRegionShift;

  // Find the tracking stream for this region: first valid match in index
  // order over the dense region run. The exit branch is near-perfectly
  // predicted — a random access stream almost never re-hits a tracked
  // region, so the loop runs branch-free to the end.
  std::uint32_t found = kNoStream;
  for (std::uint32_t i = 0; i < n_; ++i) {
    if (region_[i] == region && valid_[i] != 0) {
      found = i;
      break;
    }
  }

  if (found == kNoStream) {
    // Allocate the first free slot, else the least-recently-used stream.
    // Once every slot has been used the table never empties, so the
    // free-slot scan is skipped outright.
    std::uint32_t slot = kNoStream;
    if (live_ < n_) {
      for (std::uint32_t i = 0; i < n_; ++i) {
        if (valid_[i] == 0) {
          slot = i;
          ++live_;
          break;
        }
      }
    }
    if (slot == kNoStream) {
      slot = repl::victim(ReplacementKind::kLru, recency_);
    }
    valid_[slot] = 1;
    region_[slot] = region;
    last_line_[slot] = line;
    direction_[slot] = 0;
    confidence_[slot] = 0;
    repl::touch(ReplacementKind::kLru, recency_, slot);
    return;
  }

  repl::touch(ReplacementKind::kLru, recency_, found);
  const std::int64_t delta = static_cast<std::int64_t>(line) -
                             static_cast<std::int64_t>(last_line_[found]);
  const std::int8_t dir = delta > 0 ? 1 : (delta < 0 ? -1 : 0);
  if (dir != 0 && dir == direction_[found]) {
    confidence_[found] =
        static_cast<std::uint8_t>(std::min<int>(confidence_[found] + 1, 3));
  } else if (dir != 0) {
    direction_[found] = dir;
    confidence_[found] = 1;
  }
  last_line_[found] = line;

  if (confidence_[found] >= 2) {
    for (std::uint32_t d = 1; d <= degree_; ++d) {
      const std::int64_t target = static_cast<std::int64_t>(line) +
                                  static_cast<std::int64_t>(direction_[found]) *
                                      static_cast<std::int64_t>(d);
      // Stay inside the 4 KiB region, as real streamers do.
      if (target >= 0 &&
          (static_cast<std::uint64_t>(target) >> kRegionShift) == region) {
        out.push_back(static_cast<LineAddr>(target));
      }
    }
  }
}

}  // namespace impact::cache
