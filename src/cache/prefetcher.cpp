#include "cache/prefetcher.hpp"

#include <algorithm>

namespace impact::cache {

IpStridePrefetcher::IpStridePrefetcher(std::uint32_t entries,
                                       std::uint32_t degree)
    : degree_(degree), table_(entries) {}

void IpStridePrefetcher::observe_into(std::uint64_t pc, LineAddr line,
                                      std::vector<LineAddr>& out) {
  Entry& e = table_[pc % table_.size()];
  if (e.valid && e.pc == pc) {
    const std::int64_t stride =
        static_cast<std::int64_t>(line) - static_cast<std::int64_t>(e.last_line);
    if (stride == e.stride && stride != 0) {
      e.confidence = static_cast<std::uint8_t>(std::min<int>(e.confidence + 1,
                                                             3));
    } else {
      e.stride = stride;
      e.confidence = e.confidence > 0 ? static_cast<std::uint8_t>(
                                            e.confidence - 1)
                                      : 0;
    }
    e.last_line = line;
    if (e.confidence >= 2 && e.stride != 0) {
      for (std::uint32_t d = 1; d <= degree_; ++d) {
        const std::int64_t target =
            static_cast<std::int64_t>(line) + e.stride * static_cast<std::int64_t>(d);
        if (target >= 0) out.push_back(static_cast<LineAddr>(target));
      }
    }
  } else {
    e = Entry{true, pc, line, 0, 0};
  }
}

StreamerPrefetcher::StreamerPrefetcher(std::uint32_t streams,
                                       std::uint32_t degree)
    : degree_(degree), streams_(streams) {}

void StreamerPrefetcher::observe_into(std::uint64_t /*pc*/, LineAddr line,
                                      std::vector<LineAddr>& out) {
  ++tick_;
  const std::uint64_t region = line >> kRegionShift;

  // Find a tracking stream for this region.
  Stream* found = nullptr;
  for (auto& s : streams_) {
    if (s.valid && s.region == region) {
      found = &s;
      break;
    }
  }
  if (found == nullptr) {
    // Allocate the LRU stream.
    Stream* victim = &streams_[0];
    for (auto& s : streams_) {
      if (!s.valid) {
        victim = &s;
        break;
      }
      if (s.lru < victim->lru) victim = &s;
    }
    *victim = Stream{true, region, line, 0, 0, tick_};
    return;
  }

  found->lru = tick_;
  const std::int64_t delta = static_cast<std::int64_t>(line) -
                             static_cast<std::int64_t>(found->last_line);
  const std::int8_t dir = delta > 0 ? 1 : (delta < 0 ? -1 : 0);
  if (dir != 0 && dir == found->direction) {
    found->confidence =
        static_cast<std::uint8_t>(std::min<int>(found->confidence + 1, 3));
  } else if (dir != 0) {
    found->direction = dir;
    found->confidence = 1;
  }
  found->last_line = line;

  if (found->confidence >= 2) {
    for (std::uint32_t d = 1; d <= degree_; ++d) {
      const std::int64_t target = static_cast<std::int64_t>(line) +
                                  static_cast<std::int64_t>(found->direction) *
                                      static_cast<std::int64_t>(d);
      // Stay inside the 4 KiB region, as real streamers do.
      if (target >= 0 &&
          (static_cast<std::uint64_t>(target) >> kRegionShift) == region) {
        out.push_back(static_cast<LineAddr>(target));
      }
    }
  }
}

}  // namespace impact::cache
