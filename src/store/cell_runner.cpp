#include "store/cell_runner.hpp"

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace impact::store {

namespace {

/// Per-cell scratch the cache hooks write from sweep workers. Each cell
/// owns one distinct slot, so no locking is needed beyond the sweep's own
/// scheduling edges.
struct CellState {
  Fingerprint fp;
  std::string label;
  std::string verify_stash;  ///< Cached bytes awaiting re-simulation.
  unsigned char cached = 0;
};

[[noreturn]] void verify_divergence(const CellState& cell,
                                    const std::string& fresh_bytes) {
  std::fprintf(stderr,
               "IMPACT_STORE_VERIFY: cache divergence on cell '%s'\n"
               "  fingerprint: %s\n"
               "  cached record: %zu bytes, re-simulated record: %zu bytes\n"
               "The store returned a result that re-simulation does not\n"
               "reproduce — either the fingerprint misses a dependency or\n"
               "the simulation is nondeterministic. Aborting.\n",
               cell.label.c_str(), cell.fp.hex().c_str(),
               cell.verify_stash.size(), fresh_bytes.size());
  std::abort();
}

/// Aggregate identity of a whole grid: the name-sorted hash of every cell
/// fingerprint (which already cover configs, seeds, schema version). Two
/// sweeps share a journal history only when they would produce the same
/// cells — the task count is bound separately, covering the input-build
/// tasks that have no fingerprints of their own.
Fingerprint aggregate_fingerprint(std::string_view sweep_kind,
                                  const std::vector<Fingerprint>& fps) {
  Canon c;
  c.field("sweep", sweep_kind);
  c.field("cells", static_cast<std::uint64_t>(fps.size()));
  for (std::size_t i = 0; i < fps.size(); ++i) {
    c.field("cell" + std::to_string(i), fps[i].hex());
  }
  return c.fingerprint();
}

}  // namespace

exec::RunReport CellRunner::run_sweep(exec::Sweep& sweep,
                                      const Fingerprint& agg) {
  if (journal_ != nullptr) {
    try {
      journal_->bind(agg.hi, agg.lo, sweep.size());
    } catch (...) {
      // Journal unusable (unwritable path, I/O error): the grid must
      // still run, just without crash tolerance.
      return sweep.run_resilient(retry_);
    }
    return sweep.run_resumable(*journal_, retry_);
  }
  return sweep.run_resilient(retry_);
}

Fingerprint matrix_cell_fingerprint(const graph::MultiprogConfig& config,
                                    graph::WorkloadKind kind,
                                    dram::RowPolicy policy) {
  Canon c;
  c.field("cell", "graph.multiprog.defense");
  c.object("config", canon_of(config));
  c.field("workload", to_string(kind));
  c.field("policy", to_string(policy));
  return c.fingerprint();
}

CellRunner::MatrixResult CellRunner::defense_matrix(
    const graph::MultiprogConfig& config,
    std::span<const graph::WorkloadKind> kinds,
    std::span<const dram::RowPolicy> policies) {
  const bool verify = cache_.options().verify;
  MatrixResult out;
  out.cells.assign(kinds.size(),
                   std::vector<MatrixCell>(policies.size()));

  std::vector<std::vector<CellState>> states(kinds.size());
  std::vector<std::vector<exec::Sweep::TaskId>> ids(
      kinds.size(), std::vector<exec::Sweep::TaskId>(policies.size()));

  exec::Sweep sweep(pool_);
  sweep.set_capture(true);
  for (std::size_t w = 0; w < kinds.size(); ++w) {
    const graph::WorkloadKind kind = kinds[w];
    states[w].resize(policies.size());
    for (std::size_t p = 0; p < policies.size(); ++p) {
      states[w][p].fp = matrix_cell_fingerprint(config, kind, policies[p]);
      states[w][p].label = "run:" + std::string(to_string(kind)) + ":" +
                           to_string(policies[p]);
    }

    // The input build is itself cache-aware: when every policy cell of
    // this workload already has a record (and we are not auditing), the
    // graph never needs to exist. In verify mode the cells will
    // re-simulate, so the input must be built regardless.
    exec::CacheHooks build_hooks;
    build_hooks.probe = [this, &config, w, &states, verify] {
      if (verify) return false;
      for (const CellState& cell : states[w]) {
        if (!cache_.contains(cell.fp)) return false;
      }
      return true;
    };
    const exec::Sweep::TaskId build = sweep.add_cached(
        "input:" + std::string(to_string(kind)),
        [this, &config, kind] { (void)workloads_.get(config, kind); },
        std::move(build_hooks));

    for (std::size_t p = 0; p < policies.size(); ++p) {
      CellState& cell = states[w][p];
      MatrixCell& slot = out.cells[w][p];
      exec::CacheHooks hooks;
      hooks.probe = [this, verify, &cell, &slot] {
        std::string raw;
        std::optional<Record> rec = cache_.lookup(cell.fp, &raw);
        if (!rec) return false;
        if (verify) {
          cell.verify_stash = std::move(raw);
          return false;  // Force a re-simulation; publish compares.
        }
        const std::optional<graph::RunStats> stats =
            decode_run_stats(rec->payload);
        if (!stats) return false;  // Stale codec: degrade to a miss.
        slot.stats = *stats;
        slot.snapshot = std::move(rec->snapshot);
        slot.cached = true;
        cell.cached = 1;
        return true;
      };
      hooks.publish = [this, &cell, &slot](const obs::Snapshot& snap) {
        const Record rec{cell.fp, cell.label, encode(slot.stats), snap};
        if (!cell.verify_stash.empty()) {
          const std::string fresh = serialize(rec);
          if (fresh != cell.verify_stash) verify_divergence(cell, fresh);
          return;  // Audited identical; the cached copy already exists.
        }
        cache_.store(rec);
      };
      const graph::WorkloadKind cell_kind = kind;
      const dram::RowPolicy policy = policies[p];
      ids[w][p] = sweep.add_cached(
          cell.label,
          // Re-resolving through the WorkloadStore (instead of holding a
          // pointer filled by the build task) keeps the cell correct even
          // when the build was probe-skipped but this cell's record then
          // failed to decode: get() builds on demand, exactly once.
          [this, &config, cell_kind, policy, &slot] {
            const graph::WorkloadInput* input =
                workloads_.get(config, cell_kind);
            slot.stats = graph::run_multiprogrammed(config, *input, policy);
          },
          std::move(hooks), {build});
    }
  }

  {
    std::vector<Fingerprint> fps;
    fps.reserve(kinds.size() * policies.size());
    for (std::size_t w = 0; w < kinds.size(); ++w) {
      for (std::size_t p = 0; p < policies.size(); ++p) {
        fps.push_back(states[w][p].fp);
      }
    }
    out.report = run_sweep(sweep, aggregate_fingerprint("defense_matrix", fps));
  }
  // Splice fresh telemetry into the per-cell results: cached cells carry
  // their record's snapshot already, fresh cells take the sweep capture.
  for (std::size_t w = 0; w < kinds.size(); ++w) {
    for (std::size_t p = 0; p < policies.size(); ++p) {
      if (!out.cells[w][p].cached) {
        out.cells[w][p].snapshot = out.report.snapshots[ids[w][p]];
      }
    }
  }
  return out;
}

CellRunner::RowsResult CellRunner::rows(
    std::string_view sweep_label, std::size_t n,
    const std::function<Fingerprint(std::size_t)>& fingerprint_of,
    const std::function<std::vector<std::string>(std::size_t)>& run) {
  const bool verify = cache_.options().verify;
  RowsResult out;
  out.rows.resize(n);

  std::vector<CellState> states(n);
  exec::Sweep sweep(pool_);
  sweep.set_capture(true);
  for (std::size_t i = 0; i < n; ++i) {
    CellState& cell = states[i];
    cell.fp = fingerprint_of(i);
    cell.label =
        std::string(sweep_label) + "[" + std::to_string(i) + "]";
    std::vector<std::string>& slot = out.rows[i];

    exec::CacheHooks hooks;
    hooks.probe = [this, verify, &cell, &slot] {
      std::string raw;
      std::optional<Record> rec = cache_.lookup(cell.fp, &raw);
      if (!rec) return false;
      if (verify) {
        cell.verify_stash = std::move(raw);
        return false;
      }
      std::optional<std::vector<std::string>> row = decode_row(rec->payload);
      if (!row) return false;
      slot = std::move(*row);
      cell.cached = 1;
      return true;
    };
    hooks.publish = [this, &cell, &slot](const obs::Snapshot& snap) {
      const Record rec{cell.fp, cell.label, encode_row(slot), snap};
      if (!cell.verify_stash.empty()) {
        const std::string fresh = serialize(rec);
        if (fresh != cell.verify_stash) verify_divergence(cell, fresh);
        return;
      }
      cache_.store(rec);
    };
    sweep.add_cached(cell.label, [&run, &slot, i] { slot = run(i); },
                     std::move(hooks));
  }

  {
    std::vector<Fingerprint> fps;
    fps.reserve(n);
    for (const CellState& cell : states) fps.push_back(cell.fp);
    out.report = run_sweep(
        sweep, aggregate_fingerprint("rows:" + std::string(sweep_label), fps));
  }
  return out;
}

}  // namespace impact::store
