#include "store/fingerprint.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "obs/scope.hpp"
#include "util/assert.hpp"

namespace impact::store {

namespace {

// FNV-1a, the repo's established content hash (simlint finding IDs use the
// same constants). The two lanes start from independent offsets so a
// collision must happen in both 64-bit streams at once.
constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;
constexpr std::uint64_t kLane2Offset = kFnvOffset ^ 0x9E3779B97F4A7C15ull;

std::uint64_t fnv1a(std::string_view bytes, std::uint64_t h) {
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

std::string u64_hex(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf, 16);
}

}  // namespace

std::string Fingerprint::hex() const { return u64_hex(hi) + u64_hex(lo); }

bool Fingerprint::from_hex(std::string_view text, Fingerprint* out) {
  if (text.size() != 32) return false;
  std::uint64_t parts[2] = {0, 0};
  for (int half = 0; half < 2; ++half) {
    for (int i = 0; i < 16; ++i) {
      const char c = text[static_cast<std::size_t>(half * 16 + i)];
      std::uint64_t digit = 0;
      if (c >= '0' && c <= '9') {
        digit = static_cast<std::uint64_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<std::uint64_t>(c - 'a') + 10;
      } else {
        return false;
      }
      parts[half] = (parts[half] << 4) | digit;
    }
  }
  out->hi = parts[0];
  out->lo = parts[1];
  return true;
}

Canon::Canon(std::uint32_t schema_salt) {
  field("__schema", static_cast<std::uint64_t>(schema_salt));
  field("__obs", obs::kCompiled);
}

void Canon::add(std::string_view name, char tag, std::string value) {
  fields_.emplace_back(std::string(name),
                       std::string(1, tag) + ":" + std::move(value));
}

void Canon::field(std::string_view name, std::uint64_t value) {
  add(name, 'u', u64_hex(value));
}

void Canon::field(std::string_view name, std::int64_t value) {
  add(name, 'i', u64_hex(static_cast<std::uint64_t>(value)));
}

void Canon::field(std::string_view name, double value) {
  // IEEE-754 bit pattern: byte-stable, no printf rounding ambiguity.
  add(name, 'd', u64_hex(std::bit_cast<std::uint64_t>(value)));
}

void Canon::field(std::string_view name, bool value) {
  add(name, 'b', value ? "1" : "0");
}

void Canon::field(std::string_view name, std::string_view value) {
  add(name, 's', std::string(value));
}

void Canon::object(std::string_view name, const Canon& nested) {
  add(name, 'o', nested.fingerprint().hex());
}

Fingerprint Canon::fingerprint() const {
  std::vector<std::pair<std::string, std::string>> sorted = fields_;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    util::check(sorted[i].first != sorted[i - 1].first,
                "Canon: duplicate field '" + sorted[i].first + "'");
  }
  Fingerprint fp{kFnvOffset, kLane2Offset};
  for (const auto& [name, value] : sorted) {
    for (std::uint64_t* lane : {&fp.hi, &fp.lo}) {
      std::uint64_t h = fnv1a(name, *lane);
      h = fnv1a("\x1f", h);
      h = fnv1a(value, h);
      *lane = fnv1a("\x1e", h);
    }
  }
  return fp;
}

Canon canon_of(const dram::TimingParams& timing) {
  Canon c;
  c.field("trcd_ns", timing.trcd_ns);
  c.field("trp_ns", timing.trp_ns);
  c.field("tras_ns", timing.tras_ns);
  c.field("tcas_ns", timing.tcas_ns);
  c.field("tbl_ns", timing.tbl_ns);
  c.field("row_timeout_ns", timing.row_timeout_ns);
  c.field("rowclone_fpm_ns", timing.rowclone_fpm_ns);
  c.field("timeout_mode",
          static_cast<std::uint64_t>(timing.timeout_mode));
  c.field("trefi_ns", timing.trefi_ns);
  c.field("trfc_ns", timing.trfc_ns);
  return c;
}

Canon canon_of(const dram::DramConfig& config) {
  Canon c;
  c.field("channels", config.channels);
  c.field("ranks", config.ranks);
  c.field("banks_per_rank", config.banks_per_rank);
  c.field("rows_per_bank", config.rows_per_bank);
  c.field("row_bytes", config.row_bytes);
  c.field("subarray_rows", config.subarray_rows);
  c.field("policy", to_string(config.policy));
  c.object("timing", canon_of(config.timing));
  c.field("freq_ghz", config.freq.ghz());
  return c;
}

Canon canon_of(const sys::TlbConfig& config) {
  Canon c;
  const auto level = [](const sys::TlbLevelConfig& l) {
    Canon lc;
    lc.field("entries", l.entries);
    lc.field("ways", l.ways);
    lc.field("latency", static_cast<std::uint64_t>(l.latency));
    return lc;
  };
  c.object("l1", level(config.l1));
  c.object("l1_huge", level(config.l1_huge));
  c.object("l2", level(config.l2));
  c.field("walk_latency", static_cast<std::uint64_t>(config.walk_latency));
  c.field("page_bits", config.page_bits);
  c.field("huge_page_bits", config.huge_page_bits);
  return c;
}

Canon canon_of(const sys::SystemConfig& config) {
  Canon c;
  c.field("freq_ghz", config.freq_ghz);
  c.field("cores", config.cores);
  c.object("dram", canon_of(config.dram));
  c.field("mapping", to_string(config.mapping));
  c.field("llc_bytes", config.llc_bytes);
  c.field("llc_ways", config.llc_ways);
  c.field("cache_scale", config.cache_scale);
  c.field("prefetchers", config.prefetchers);
  c.object("tlb", canon_of(config.tlb));
  c.field("timer.rdtscp_cost",
          static_cast<std::uint64_t>(config.timer.rdtscp_cost));
  c.field("timer.cpuid_cost",
          static_cast<std::uint64_t>(config.timer.cpuid_cost));
  c.field("dma.per_transfer_overhead",
          static_cast<std::uint64_t>(config.dma.per_transfer_overhead));
  c.field("seed", config.seed);
  return c;
}

Canon canon_of(const graph::MultiprogConfig& config) {
  Canon c;
  c.object("system", canon_of(config.system));
  c.field("rmat_scale", config.rmat_scale);
  c.field("edge_count", static_cast<std::uint64_t>(config.edge_count));
  c.field("graph_seed", config.graph_seed);
  return c;
}

Canon canon_of(const fault::FaultConfig& config) {
  Canon c;
  c.field("kind", to_string(config.kind));
  c.field("probability", config.probability);
  c.field("magnitude", static_cast<std::uint64_t>(config.magnitude));
  c.field("window_begin", static_cast<std::uint64_t>(config.window_begin));
  c.field("window_end", static_cast<std::uint64_t>(config.window_end));
  return c;
}

Canon canon_of(std::span<const fault::FaultConfig> faults) {
  Canon c;
  c.field("count", static_cast<std::uint64_t>(faults.size()));
  for (std::size_t i = 0; i < faults.size(); ++i) {
    c.object("fault." + std::to_string(i), canon_of(faults[i]));
  }
  return c;
}

}  // namespace impact::store
