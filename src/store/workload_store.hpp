// Fingerprint-interned pool of immutable graph::WorkloadInputs.
//
// graph::build_input is deterministic in (graph_seed, rmat_scale,
// edge_count, kind) — nothing else in MultiprogConfig reaches the RMAT
// generator or the trace builder — so two cells whose input fingerprints
// match can share one build. The store keys on exactly that fingerprint
// (store::workload_fingerprint), builds at most once per key, and hands
// out const pointers that stay valid for the store's lifetime.
//
// Thread safety: get() may be called concurrently from sweep workers.
// The builder runs outside the lock (builds take seconds; serializing
// them on a mutex would erase the sweep's parallelism), so two workers
// racing on the same key may both build — the first to publish wins and
// the duplicate is dropped. Determinism makes both builds identical, so
// which one wins is unobservable.
#pragma once

#include <map>
#include <memory>
#include <mutex>

#include "graph/multiprog.hpp"
#include "store/fingerprint.hpp"

namespace impact::store {

/// Fingerprint of the workload-input cell: the exact dependency set of
/// graph::build_input, nothing more. Deliberately narrower than
/// canon_of(MultiprogConfig) — system-config changes must NOT invalidate
/// interned inputs, or the store would rebuild identical graphs across a
/// policy sweep.
[[nodiscard]] Fingerprint workload_fingerprint(
    const graph::MultiprogConfig& config, graph::WorkloadKind kind);

class WorkloadStore {
 public:
  WorkloadStore() = default;
  WorkloadStore(const WorkloadStore&) = delete;
  WorkloadStore& operator=(const WorkloadStore&) = delete;

  /// The interned input for (config, kind): built on first use, shared on
  /// every later call with a matching fingerprint. The pointer is valid
  /// until the store is destroyed.
  [[nodiscard]] const graph::WorkloadInput* get(
      const graph::MultiprogConfig& config, graph::WorkloadKind kind);

  /// Number of distinct inputs built so far (duplicate get()s are free).
  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<Fingerprint, std::unique_ptr<graph::WorkloadInput>> inputs_;
};

}  // namespace impact::store
