// Content-addressed fingerprints for experiment cells.
//
// A cell's fingerprint covers everything that determines its output: the
// workload/config structs, seeds, defense policy, fault profile, and a
// compile-time schema salt (`kSchemaVersion`, bumped whenever simulation
// semantics change — tests/test_store.cpp pins a golden fingerprint so a
// canonicalization change without a bump fails loudly). Identical
// fingerprints therefore mean bit-identical results under the repo's
// determinism contract (docs/performance.md), which is what lets
// store::ResultCache return a cached cell without re-simulating.
//
// Canonicalization: fields are (name, type-tagged value) pairs hashed in
// name-sorted order, so the hash is insensitive to the order call sites
// declare fields in and two semantically-identical configs serialize
// equal. Values carry a type tag (u/i/d/b/s/o) so `1u`, `"1"` and `1.0`
// never collide. Doubles hash their IEEE-754 bit pattern — byte-stable,
// no text-formatting ambiguity. The hash itself is the same FNV-1a the
// repo already uses for simlint finding IDs, widened to two independent
// 64-bit lanes.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "dram/config.hpp"
#include "fault/injector.hpp"
#include "graph/multiprog.hpp"
#include "sys/system.hpp"

namespace impact::store {

/// Bumped whenever a change alters simulation semantics (timing model,
/// replay order, defaults folded into results): every fingerprint embeds
/// it, so a bump invalidates all previously cached records at once.
inline constexpr std::uint32_t kSchemaVersion = 1;

struct Fingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
  friend auto operator<=>(const Fingerprint&, const Fingerprint&) = default;

  /// 32 lowercase hex chars (hi then lo) — the on-disk record name.
  [[nodiscard]] std::string hex() const;

  /// Strict inverse of hex(); returns false (and leaves *out untouched)
  /// on malformed input.
  static bool from_hex(std::string_view text, Fingerprint* out);
};

/// Accumulates named fields and hashes them in canonical (name-sorted)
/// order. Field names must be unique within one Canon — a duplicate is a
/// canonicalization bug and throws via util::check.
class Canon {
 public:
  /// `schema_salt` defaults to kSchemaVersion; tests inject other salts to
  /// pin the invalidation behaviour. The salt participates as a hidden
  /// "__schema" field, and "__obs" records whether the telemetry spine is
  /// compiled in (cached records embed obs::Snapshots, whose content
  /// depends on it).
  explicit Canon(std::uint32_t schema_salt = kSchemaVersion);

  void field(std::string_view name, std::uint64_t value);
  void field(std::string_view name, std::int64_t value);
  void field(std::string_view name, std::uint32_t value) {
    field(name, static_cast<std::uint64_t>(value));
  }
  void field(std::string_view name, std::int32_t value) {
    field(name, static_cast<std::int64_t>(value));
  }
  void field(std::string_view name, double value);
  void field(std::string_view name, bool value);
  void field(std::string_view name, std::string_view value);
  void field(std::string_view name, const char* value) {
    field(name, std::string_view(value));
  }
  /// Nested object: the child's fingerprint becomes the value, so nesting
  /// depth never changes the parent's field algebra.
  void object(std::string_view name, const Canon& nested);

  [[nodiscard]] Fingerprint fingerprint() const;

 private:
  void add(std::string_view name, char tag, std::string value);

  std::vector<std::pair<std::string, std::string>> fields_;
};

// Canonical serializations of the config structs that determine cell
// outputs. Every field participates; adding a struct field without adding
// it here silently aliases configs, so each helper carries a static_assert
// -adjacent comment and the golden-fingerprint test pins the full shape.
[[nodiscard]] Canon canon_of(const dram::TimingParams& timing);
[[nodiscard]] Canon canon_of(const dram::DramConfig& config);
[[nodiscard]] Canon canon_of(const sys::TlbConfig& config);
[[nodiscard]] Canon canon_of(const sys::SystemConfig& config);
[[nodiscard]] Canon canon_of(const graph::MultiprogConfig& config);
[[nodiscard]] Canon canon_of(const fault::FaultConfig& config);
/// Fault lists are order-sensitive: the injector consults configs in list
/// order, so the canonical form indexes them rather than sorting them.
[[nodiscard]] Canon canon_of(std::span<const fault::FaultConfig> faults);

}  // namespace impact::store
