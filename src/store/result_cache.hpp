// Content-addressed cache of experiment-cell results.
//
// A cell's Fingerprint covers everything that determines its output
// (configs, seeds, policies, fault profile, schema version, obs build
// flavor — see store/fingerprint.hpp), so a hit can replace the whole
// simulation: two runs with equal fingerprints are bit-identical by
// construction, and the IMPACT_STORE_VERIFY mode re-simulates hits to
// prove it.
//
// The cache is an instance (no process-global state; the simlint
// global-state rule applies to src/store like everywhere else): drivers
// construct one in main() and thread it through a store::CellRunner.
// Lookups and stores are mutex-protected so a parallel exec::Sweep can
// probe and publish from worker threads.
//
// Backends:
//   - in-memory: always on; a map from fingerprint to serialized Record
//     bytes. Records stay serialized so verify-mode byte comparison and
//     disk writes reuse the same canonical bytes.
//   - on-disk (optional): a directory of `<fingerprint-hex>.rec` files.
//     Misses fall through to disk; disk hits are pulled into memory.
//     Writes go through a temp file + fsync + rename + directory fsync so
//     a crashed run never leaves a truncated record behind (parse() would
//     reject one anyway) and a committed record survives power loss — the
//     resil journal counts on this: its commit records promise the cache
//     still holds the bytes after any crash.
//
// Environment:
//   IMPACT_STORE=0        disable the cache entirely (every probe misses,
//                         nothing is stored).
//   IMPACT_STORE_DIR=path enable the on-disk backend rooted at `path`
//                         (created if missing).
//   IMPACT_STORE_VERIFY=1 paranoid mode: hits are re-simulated and the
//                         fresh bytes compared against the cached bytes;
//                         any divergence aborts the process.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "store/record.hpp"

namespace impact::store {

class ResultCache {
 public:
  struct Options {
    bool enabled = true;
    bool verify = false;      ///< Re-simulate hits, abort on divergence.
    std::string disk_dir;     ///< Empty = in-memory only.
  };

  /// Reads IMPACT_STORE / IMPACT_STORE_DIR / IMPACT_STORE_VERIFY.
  [[nodiscard]] static Options options_from_env();

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t stored = 0;
    std::uint64_t disk_hits = 0;    ///< Subset of hits served from disk.
    std::uint64_t rejected = 0;     ///< Malformed records treated as misses.
    std::uint64_t fsyncs = 0;       ///< File + directory syncs on disk writes.
  };

  ResultCache() = default;
  explicit ResultCache(Options options);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  [[nodiscard]] const Options& options() const { return options_; }

  /// Parsed record on hit; nullopt on miss (or when disabled). When
  /// `raw_bytes` is non-null it receives the cached serialized bytes —
  /// the verify mode compares those against a fresh re-simulation.
  [[nodiscard]] std::optional<Record> lookup(const Fingerprint& fp,
                                             std::string* raw_bytes = nullptr);

  /// True if a record for `fp` exists (memory or disk) without counting a
  /// hit or pulling the record into memory. Used by build-stage probes
  /// that only need to know whether dependents are all cached.
  [[nodiscard]] bool contains(const Fingerprint& fp);

  /// Serializes and stores the record under record.fp. Overwrites any
  /// existing entry (last write wins — identical fingerprints imply
  /// identical bytes, so this only matters after a verify-mode abort was
  /// narrowly avoided). Disk-write failures are non-fatal: the in-memory
  /// entry still lands and the cache stays correct, just colder next run.
  void store(const Record& record);

  [[nodiscard]] Stats stats() const;

 private:
  [[nodiscard]] std::string disk_path(const Fingerprint& fp) const;
  [[nodiscard]] std::optional<std::string> disk_read(
      const Fingerprint& fp) const;
  void disk_write(const Fingerprint& fp, const std::string& bytes);

  Options options_;
  mutable std::mutex mu_;
  std::map<Fingerprint, std::string> entries_;  ///< Serialized records.
  Stats stats_;
};

}  // namespace impact::store
