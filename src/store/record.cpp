#include "store/record.hpp"

#include <bit>
#include <cstdio>
#include <vector>

namespace impact::store {

namespace {

// --- Primitive writers (byte-stable by construction) --------------------

void put_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  const int n = std::snprintf(buf, sizeof(buf), "%llu",
                              static_cast<unsigned long long>(v));
  out.append(buf, static_cast<std::size_t>(n));
}

void put_double(std::string& out, double v) {
  // IEEE-754 bit pattern in hex: doubles round-trip exactly.
  char buf[20];
  const int n = std::snprintf(
      buf, sizeof(buf), "%016llx",
      static_cast<unsigned long long>(std::bit_cast<std::uint64_t>(v)));
  out.append(buf, static_cast<std::size_t>(n));
}

void put_str(std::string& out, std::string_view s) {
  put_u64(out, s.size());
  out.push_back(':');
  out.append(s);
}

// --- Primitive readers (strict: any deviation fails the whole parse) ----

struct Reader {
  std::string_view in;
  bool ok = true;

  bool literal(std::string_view expect) {
    if (!ok || in.substr(0, expect.size()) != expect) return fail();
    in.remove_prefix(expect.size());
    return true;
  }

  std::uint64_t u64() {
    if (!ok) return 0;
    std::uint64_t v = 0;
    std::size_t i = 0;
    while (i < in.size() && in[i] >= '0' && in[i] <= '9') {
      v = v * 10 + static_cast<std::uint64_t>(in[i] - '0');
      ++i;
    }
    if (i == 0) {
      fail();
      return 0;
    }
    in.remove_prefix(i);
    return v;
  }

  double f64() {
    if (!ok) return 0.0;
    if (in.size() < 16) {
      fail();
      return 0.0;
    }
    std::uint64_t bits = 0;
    for (int i = 0; i < 16; ++i) {
      const char c = in[static_cast<std::size_t>(i)];
      std::uint64_t digit = 0;
      if (c >= '0' && c <= '9') {
        digit = static_cast<std::uint64_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<std::uint64_t>(c - 'a') + 10;
      } else {
        fail();
        return 0.0;
      }
      bits = (bits << 4) | digit;
    }
    in.remove_prefix(16);
    return std::bit_cast<double>(bits);
  }

  std::string str() {
    const std::uint64_t n = u64();
    if (!literal(":") || in.size() < n) {
      fail();
      return {};
    }
    std::string s(in.substr(0, n));
    in.remove_prefix(n);
    return s;
  }

  bool fail() {
    ok = false;
    return false;
  }
};

constexpr std::string_view kMagic = "impact-store 1\n";

}  // namespace

std::string serialize(const Record& record) {
  std::string out;
  out += kMagic;
  out += "fp ";
  out += record.fp.hex();
  out += "\nlabel ";
  put_str(out, record.label);
  out += "\npayload ";
  put_str(out, record.payload);
  out += "\ncounters ";
  put_u64(out, record.snapshot.counters.size());
  out.push_back('\n');
  for (const auto& [name, value] : record.snapshot.counters) {
    out += "c ";
    put_str(out, name);
    out.push_back(' ');
    put_u64(out, value);
    out.push_back('\n');
  }
  out += "gauges ";
  put_u64(out, record.snapshot.gauges.size());
  out.push_back('\n');
  for (const auto& [name, value] : record.snapshot.gauges) {
    out += "g ";
    put_str(out, name);
    out.push_back(' ');
    put_double(out, value);
    out.push_back('\n');
  }
  out += "dists ";
  put_u64(out, record.snapshot.dists.size());
  out.push_back('\n');
  for (const auto& [name, hist] : record.snapshot.dists) {
    out += "d ";
    put_str(out, name);
    out.push_back(' ');
    put_double(out, hist.lo());
    out.push_back(' ');
    put_double(out, hist.hi());
    out.push_back(' ');
    put_u64(out, hist.bin_count());
    out.push_back(' ');
    put_u64(out, hist.underflow());
    out.push_back(' ');
    put_u64(out, hist.overflow());
    for (std::size_t i = 0; i < hist.bin_count(); ++i) {
      out.push_back(' ');
      put_u64(out, hist.bin(i));
    }
    out.push_back('\n');
  }
  out += "end\n";
  return out;
}

std::optional<Record> parse(std::string_view bytes) {
  Reader r{bytes};
  Record rec;
  if (!r.literal(kMagic) || !r.literal("fp ")) return std::nullopt;
  if (r.in.size() < 32 ||
      !Fingerprint::from_hex(r.in.substr(0, 32), &rec.fp)) {
    return std::nullopt;
  }
  r.in.remove_prefix(32);
  r.literal("\nlabel ");
  rec.label = r.str();
  r.literal("\npayload ");
  rec.payload = r.str();
  r.literal("\ncounters ");
  const std::uint64_t n_counters = r.u64();
  r.literal("\n");
  for (std::uint64_t i = 0; r.ok && i < n_counters; ++i) {
    r.literal("c ");
    std::string name = r.str();
    r.literal(" ");
    const std::uint64_t value = r.u64();
    r.literal("\n");
    if (r.ok) rec.snapshot.counters.emplace(std::move(name), value);
  }
  r.literal("gauges ");
  const std::uint64_t n_gauges = r.u64();
  r.literal("\n");
  for (std::uint64_t i = 0; r.ok && i < n_gauges; ++i) {
    r.literal("g ");
    std::string name = r.str();
    r.literal(" ");
    const double value = r.f64();
    r.literal("\n");
    if (r.ok) rec.snapshot.gauges.emplace(std::move(name), value);
  }
  r.literal("dists ");
  const std::uint64_t n_dists = r.u64();
  r.literal("\n");
  for (std::uint64_t i = 0; r.ok && i < n_dists; ++i) {
    r.literal("d ");
    std::string name = r.str();
    r.literal(" ");
    const double lo = r.f64();
    r.literal(" ");
    const double hi = r.f64();
    r.literal(" ");
    const std::uint64_t bins = r.u64();
    r.literal(" ");
    const std::uint64_t underflow = r.u64();
    r.literal(" ");
    const std::uint64_t overflow = r.u64();
    if (!r.ok || bins == 0 || bins > (1ull << 24) || !(hi > lo)) {
      return std::nullopt;
    }
    std::vector<std::size_t> counts(bins, 0);
    for (std::uint64_t b = 0; r.ok && b < bins; ++b) {
      r.literal(" ");
      counts[b] = r.u64();
    }
    r.literal("\n");
    if (r.ok) {
      rec.snapshot.dists.emplace(
          std::move(name),
          util::Histogram::from_parts(lo, hi, std::move(counts), underflow,
                                      overflow));
    }
  }
  if (!r.literal("end\n") || !r.in.empty()) return std::nullopt;
  return rec;
}

std::string encode(const graph::RunStats& stats) {
  std::string out = "runstats ";
  put_u64(out, stats.cycles);
  out.push_back(' ');
  put_u64(out, stats.instructions);
  out.push_back(' ');
  put_u64(out, stats.accesses);
  out.push_back(' ');
  put_u64(out, stats.llc_misses);
  out.push_back(' ');
  put_double(out, stats.row_hit_rate);
  return out;
}

std::optional<graph::RunStats> decode_run_stats(std::string_view payload) {
  Reader r{payload};
  graph::RunStats stats;
  r.literal("runstats ");
  stats.cycles = r.u64();
  r.literal(" ");
  stats.instructions = r.u64();
  r.literal(" ");
  stats.accesses = r.u64();
  r.literal(" ");
  stats.llc_misses = r.u64();
  r.literal(" ");
  stats.row_hit_rate = r.f64();
  if (!r.ok || !r.in.empty()) return std::nullopt;
  return stats;
}

std::string encode_row(const std::vector<std::string>& row) {
  std::string out = "row ";
  put_u64(out, row.size());
  for (const std::string& cell : row) {
    out.push_back(' ');
    put_str(out, cell);
  }
  return out;
}

std::optional<std::vector<std::string>> decode_row(std::string_view payload) {
  Reader r{payload};
  r.literal("row ");
  const std::uint64_t n = r.u64();
  if (!r.ok || n > (1ull << 20)) return std::nullopt;
  std::vector<std::string> row;
  row.reserve(n);
  for (std::uint64_t i = 0; r.ok && i < n; ++i) {
    r.literal(" ");
    row.push_back(r.str());
  }
  if (!r.ok || !r.in.empty()) return std::nullopt;
  return row;
}

}  // namespace impact::store
