#include "store/workload_store.hpp"

namespace impact::store {

Fingerprint workload_fingerprint(const graph::MultiprogConfig& config,
                                 graph::WorkloadKind kind) {
  Canon c;
  c.field("graph_seed", config.graph_seed);
  c.field("rmat_scale", config.rmat_scale);
  c.field("edge_count", static_cast<std::uint64_t>(config.edge_count));
  c.field("kind", to_string(kind));
  return c.fingerprint();
}

const graph::WorkloadInput* WorkloadStore::get(
    const graph::MultiprogConfig& config, graph::WorkloadKind kind) {
  const Fingerprint fp = workload_fingerprint(config, kind);
  {
    std::scoped_lock lock(mu_);
    if (auto it = inputs_.find(fp); it != inputs_.end()) {
      return it->second.get();
    }
  }
  // Build outside the lock; a racing duplicate build loses the emplace and
  // is dropped (both builds are deterministic, so the results are equal).
  auto built = std::make_unique<graph::WorkloadInput>(
      graph::build_input(config, kind));
  std::scoped_lock lock(mu_);
  auto [it, _] = inputs_.emplace(fp, std::move(built));
  return it->second.get();
}

std::size_t WorkloadStore::size() const {
  std::scoped_lock lock(mu_);
  return inputs_.size();
}

}  // namespace impact::store
