// The cached unit of one experiment cell: a fingerprint-addressed record
// holding the cell's serialized result payload plus its obs::Snapshot.
//
// Serialization is byte-stable: serializing a record, parsing it back, and
// serializing again yields the identical byte string (doubles travel as
// IEEE-754 bit patterns, map iteration order is the maps' own sorted
// order, strings are length-prefixed). Byte stability is what makes the
// IMPACT_STORE_VERIFY mode a one-line comparison — a re-simulated cell
// either reproduces the cached bytes exactly or the cache is wrong — and
// what tests/test_store.cpp pins for the on-disk round trip.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "graph/multiprog.hpp"
#include "obs/snapshot.hpp"
#include "store/fingerprint.hpp"

namespace impact::store {

struct Record {
  Fingerprint fp;
  std::string label;     ///< Human-readable cell label (diagnostics only).
  std::string payload;   ///< Codec output for the cell's typed result.
  obs::Snapshot snapshot;  ///< Per-cell telemetry (empty when not captured).
};

/// Byte-stable text serialization of a record.
[[nodiscard]] std::string serialize(const Record& record);

/// Strict inverse of serialize(); nullopt on any malformed input (wrong
/// magic, truncated section, non-canonical number).
[[nodiscard]] std::optional<Record> parse(std::string_view bytes);

// --- Payload codecs -----------------------------------------------------

/// graph::RunStats — the Fig. 11 defense-matrix cell result.
[[nodiscard]] std::string encode(const graph::RunStats& stats);
[[nodiscard]] std::optional<graph::RunStats> decode_run_stats(
    std::string_view payload);

/// A rendered table row (vector of cells) — the generic result type of the
/// ablation/figure drivers that sweep a parameter into printed rows.
[[nodiscard]] std::string encode_row(const std::vector<std::string>& row);
[[nodiscard]] std::optional<std::vector<std::string>> decode_row(
    std::string_view payload);

}  // namespace impact::store
