#include "store/result_cache.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace impact::store {

namespace {

bool env_flag(const char* name, bool fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return !(value[0] == '0' && value[1] == '\0');
}

}  // namespace

ResultCache::Options ResultCache::options_from_env() {
  Options options;
  options.enabled = env_flag("IMPACT_STORE", true);
  options.verify = env_flag("IMPACT_STORE_VERIFY", false);
  if (const char* dir = std::getenv("IMPACT_STORE_DIR");
      dir != nullptr && *dir != '\0') {
    options.disk_dir = dir;
  }
  return options;
}

ResultCache::ResultCache(Options options) : options_(std::move(options)) {
  if (!options_.disk_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options_.disk_dir, ec);
    if (ec) {
      std::fprintf(stderr,
                   "store: cannot create IMPACT_STORE_DIR '%s' (%s); "
                   "falling back to in-memory cache\n",
                   options_.disk_dir.c_str(), ec.message().c_str());
      options_.disk_dir.clear();
    }
  }
}

std::optional<Record> ResultCache::lookup(const Fingerprint& fp,
                                          std::string* raw_bytes) {
  if (!options_.enabled) return std::nullopt;
  std::scoped_lock lock(mu_);
  auto it = entries_.find(fp);
  bool from_disk = false;
  if (it == entries_.end() && !options_.disk_dir.empty()) {
    if (std::optional<std::string> bytes = disk_read(fp)) {
      it = entries_.emplace(fp, std::move(*bytes)).first;
      from_disk = true;
    }
  }
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  std::optional<Record> record = parse(it->second);
  if (!record || record->fp != fp) {
    // A corrupt record must degrade to a miss, never crash the sweep.
    ++stats_.rejected;
    ++stats_.misses;
    entries_.erase(it);
    return std::nullopt;
  }
  ++stats_.hits;
  if (from_disk) ++stats_.disk_hits;
  if (raw_bytes != nullptr) *raw_bytes = it->second;
  return record;
}

bool ResultCache::contains(const Fingerprint& fp) {
  if (!options_.enabled) return false;
  std::scoped_lock lock(mu_);
  if (entries_.contains(fp)) return true;
  if (options_.disk_dir.empty()) return false;
  std::error_code ec;
  return std::filesystem::exists(disk_path(fp), ec) && !ec;
}

void ResultCache::store(const Record& record) {
  if (!options_.enabled) return;
  std::string bytes = serialize(record);
  std::scoped_lock lock(mu_);
  if (!options_.disk_dir.empty()) disk_write(record.fp, bytes);
  entries_[record.fp] = std::move(bytes);
  ++stats_.stored;
}

ResultCache::Stats ResultCache::stats() const {
  std::scoped_lock lock(mu_);
  return stats_;
}

std::string ResultCache::disk_path(const Fingerprint& fp) const {
  return options_.disk_dir + "/" + fp.hex() + ".rec";
}

std::optional<std::string> ResultCache::disk_read(
    const Fingerprint& fp) const {
  std::ifstream in(disk_path(fp), std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) return std::nullopt;
  return std::move(buffer).str();
}

void ResultCache::disk_write(const Fingerprint& fp,
                             const std::string& bytes) {
  // Temp file + fsync + rename + directory fsync: readers never observe a
  // partial record, and once this returns the record survives power loss
  // — the rename is only durable after its directory entry is synced, and
  // the data only after the file itself is. (The old tmp+rename-without-
  // fsync version could lose a "committed" record entirely: the rename
  // could land while the data pages never did.) Equal fingerprints imply
  // equal bytes, so concurrent writers racing on the same temp name are
  // harmless.
  const std::string final_path = disk_path(fp);
  const std::string tmp_path = final_path + ".tmp";
  {
    const int fd = ::open(tmp_path.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) {
      std::fprintf(stderr, "store: cannot write '%s'\n", tmp_path.c_str());
      return;
    }
    std::size_t put = 0;
    while (put < bytes.size()) {
      const ssize_t got =
          ::write(fd, bytes.data() + put, bytes.size() - put);
      if (got <= 0) {
        std::fprintf(stderr, "store: short write to '%s'\n",
                     tmp_path.c_str());
        ::close(fd);
        return;
      }
      put += static_cast<std::size_t>(got);
    }
    if (::fsync(fd) != 0) {
      std::fprintf(stderr, "store: cannot fsync '%s'\n", tmp_path.c_str());
      ::close(fd);
      return;
    }
    ++stats_.fsyncs;
    ::close(fd);
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec) {
    std::fprintf(stderr, "store: cannot rename '%s' -> '%s' (%s)\n",
                 tmp_path.c_str(), final_path.c_str(), ec.message().c_str());
    return;
  }
  const int dirfd =
      ::open(options_.disk_dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dirfd >= 0) {
    if (::fsync(dirfd) == 0) ++stats_.fsyncs;
    ::close(dirfd);
  }
}

}  // namespace impact::store
