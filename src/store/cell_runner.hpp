// Shared cache-aware driver harness for experiment grids.
//
// Every heavy driver in bench/ and examples/ has the same skeleton: build
// a (parameter x parameter) grid, run one simulation per cell on the
// sweep engine, render rows from the results. CellRunner hoists that
// skeleton once and makes it content-addressed: each cell carries a
// store::Fingerprint over everything that determines its output, the
// ResultCache is probed before a cell simulates, and completed cells are
// published back. A warm re-run of a driver is pure cache lookups.
//
// Two grid shapes cover all current drivers:
//   - defense_matrix: the Fig. 11 (workload x row-policy) grid with
//     shared per-workload inputs interned in a WorkloadStore. Typed
//     results (graph::RunStats + per-cell obs::Snapshot).
//   - rows: a flat N-cell sweep where each cell renders one table row
//     (vector<string>) — the ablation and figure drivers.
//
// Verify mode (IMPACT_STORE_VERIFY=1): a probe that finds a cached record
// stashes the cached bytes and reports a miss, so the cell re-simulates;
// publish then serializes the fresh result and byte-compares it against
// the stash. Any divergence means the cache lied about determinism —
// the process aborts with both fingerprints on stderr. This is the
// paranoid audit the store's correctness claim rests on.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "exec/sweep.hpp"
#include "graph/multiprog.hpp"
#include "store/result_cache.hpp"
#include "store/workload_store.hpp"

namespace impact::store {

/// Fingerprint of one defense-matrix cell (config x workload x policy).
[[nodiscard]] Fingerprint matrix_cell_fingerprint(
    const graph::MultiprogConfig& config, graph::WorkloadKind kind,
    dram::RowPolicy policy);

class CellRunner {
 public:
  /// The runner borrows both stores; they must outlive it. `pool` may be
  /// null for serial execution (results are bit-identical either way).
  CellRunner(ResultCache& cache, WorkloadStore& workloads,
             exec::ThreadPool* pool)
      : cache_(cache), workloads_(workloads), pool_(pool) {}

  struct MatrixCell {
    graph::RunStats stats;
    /// The cell's telemetry: captured fresh when the cell simulated,
    /// spliced from the cached record on a hit (the sweep's own snapshot
    /// slot stays empty for hits — see exec::RunReport::snapshots).
    obs::Snapshot snapshot;
    bool cached = false;
  };

  struct MatrixResult {
    /// cells[workload][policy], indexed like the (kinds, policies) spans.
    std::vector<std::vector<MatrixCell>> cells;
    exec::RunReport report;

    [[nodiscard]] bool ok() const { return report.ok(); }
  };

  /// Runs the (kinds x policies) defense grid. Per-workload inputs come
  /// from the WorkloadStore (built at most once per distinct input
  /// fingerprint); the input-build task of a workload whose policy cells
  /// are all cached is itself skipped, so a fully warm grid builds no
  /// graphs at all.
  [[nodiscard]] MatrixResult defense_matrix(
      const graph::MultiprogConfig& config,
      std::span<const graph::WorkloadKind> kinds,
      std::span<const dram::RowPolicy> policies);

  struct RowsResult {
    /// rows[i] is cell i's rendered row (empty only if the cell failed).
    std::vector<std::vector<std::string>> rows;
    exec::RunReport report;

    [[nodiscard]] bool ok() const { return report.ok(); }
  };

  /// Runs a flat sweep of `n` independent cells. `fingerprint_of(i)` must
  /// cover everything cell i's output depends on (configs, seeds, sweep
  /// parameters); `run(i)` simulates the cell and renders its row. Cells
  /// whose fingerprints hit the cache return the cached row unrun.
  [[nodiscard]] RowsResult rows(
      std::string_view sweep_label, std::size_t n,
      const std::function<Fingerprint(std::size_t)>& fingerprint_of,
      const std::function<std::vector<std::string>(std::size_t)>& run);

  [[nodiscard]] ResultCache& cache() { return cache_; }

  /// Optional crash/resume journal (resil::Journal behind the abstract
  /// exec seam; borrowed, may be null). When set, grids run through
  /// Sweep::run_resumable: the runner binds the sweep's aggregate
  /// fingerprint (over every cell fingerprint) so the journal can tell a
  /// resume of this exact grid from a stale file, and cells committed by
  /// an interrupted run are satisfied from the cache without re-running.
  void set_journal(exec::SweepJournal* journal) { journal_ = journal; }

  /// Retry/deadline policy for the grids (default: the engine's default).
  void set_retry(const exec::RetryPolicy& retry) { retry_ = retry; }

 private:
  /// Runs `sweep` resiliently, through the journal when one is set. `agg`
  /// is the grid's aggregate fingerprint; a journal whose bind throws
  /// (unwritable path, I/O error) degrades to journal-less execution.
  [[nodiscard]] exec::RunReport run_sweep(exec::Sweep& sweep,
                                          const Fingerprint& agg);

  ResultCache& cache_;
  WorkloadStore& workloads_;
  exec::ThreadPool* pool_;
  exec::SweepJournal* journal_ = nullptr;
  exec::RetryPolicy retry_;
};

}  // namespace impact::store
