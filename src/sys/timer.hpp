// User-space timing instrumentation (rdtscp / cpuid emulation).
//
// §5.1: "The receiver has access to cpuid and rdtscp instructions, enabling
// high-precision measurement of memory access latencies." The costs below
// follow published measurements of serialized timestamp reads: the fenced
// read-pair that brackets a memory access adds a fixed overhead to every
// timed operation, which is part of each attack's per-bit budget.
#pragma once

#include "util/units.hpp"

namespace impact::sys {

struct TimerConfig {
  util::Cycle rdtscp_cost = 24;  ///< rdtscp itself.
  util::Cycle cpuid_cost = 28;   ///< Serializing cpuid before the read.
};

/// Emulated timestamp counter bound to an actor's local clock.
class Timestamp {
 public:
  explicit Timestamp(TimerConfig config = {}) : config_(config) {}

  /// Serialized timestamp read (`cpuid; rdtscp`): advances the actor clock
  /// by the instruction cost and returns the cycle value read.
  [[nodiscard]] util::Cycle read(util::Cycle& clock) const {
    clock += config_.cpuid_cost + config_.rdtscp_cost;
    return clock;
  }

  /// Lightweight unserialized read (`rdtscp` only), for the closing
  /// timestamp where the measured operation already ordered execution.
  [[nodiscard]] util::Cycle read_fast(util::Cycle& clock) const {
    clock += config_.rdtscp_cost;
    return clock;
  }

  /// Total overhead a start/stop measurement adds beyond the measured op.
  [[nodiscard]] util::Cycle measurement_overhead() const {
    return config_.cpuid_cost + 2 * config_.rdtscp_cost;
  }

  /// Instruction costs, for batched probe kernels that fold the
  /// read/read_fast bracket into per-op pre/post clock advances.
  [[nodiscard]] const TimerConfig& config() const { return config_; }

 private:
  TimerConfig config_;
};

}  // namespace impact::sys
