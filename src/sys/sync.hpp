// Timestamped synchronization primitives between simulated actors.
//
// Each simulated process owns a local cycle clock. Semaphores and barriers
// coordinate those clocks the way shared-memory POSIX primitives coordinate
// real threads: a waiter's clock is pulled forward to the poster's release
// time, plus the primitive's own cost. This is what lets the IMPACT-PnM
// sender and receiver overlap transmission and probing (§4.1) in the model.
#pragma once

#include <deque>

#include "util/assert.hpp"
#include "util/units.hpp"

namespace impact::sys {

/// Outcome of a bounded semaphore wait.
enum class WaitStatus : std::uint8_t {
  kAcquired,  ///< A post was consumed.
  kTimedOut,  ///< No post arrived by the deadline; nothing was consumed.
};

/// A bounded wait's status plus the waiter's clock after the operation.
struct WaitResult {
  WaitStatus status = WaitStatus::kAcquired;
  util::Cycle now = 0;

  [[nodiscard]] bool acquired() const {
    return status == WaitStatus::kAcquired;
  }
};

/// POSIX-like counting semaphore over simulated time.
class SimSemaphore {
 public:
  /// `op_cost` models the user-space fast path of sem_post/sem_wait
  /// (lock-prefixed RMW + branch).
  explicit SimSemaphore(unsigned initial = 0, util::Cycle op_cost = 30)
      : op_cost_(op_cost) {
    for (unsigned i = 0; i < initial; ++i) posts_.push_back(0);
  }

  /// Releases one unit at time `now`; returns the poster's new clock.
  util::Cycle post(util::Cycle now) {
    posts_.push_back(now + op_cost_);
    return now + op_cost_;
  }

  /// Acquires one unit: returns the waiter's clock after the wait (at least
  /// `now` + cost; later if it must block until the matching post).
  ///
  /// Throws when no post is pending — a missed post would deadlock a real
  /// unbounded sem_wait. Callers that must survive a lost post (the covert
  /// channels under fault injection) use `wait_until` instead.
  util::Cycle wait(util::Cycle now) {
    util::check(!posts_.empty(),
                "SimSemaphore::wait would deadlock: no pending post");
    const util::Cycle available = posts_.front();
    posts_.pop_front();
    return std::max(now, available) + op_cost_;
  }

  /// Bounded wait (sem_timedwait): acquires the front post if it is (or
  /// becomes) available by `deadline`; otherwise the waiter spins until the
  /// deadline and gives up without consuming anything — a post released
  /// after the deadline stays pending for the next wait. `deadline` must
  /// not precede `now`.
  [[nodiscard]] WaitResult wait_until(util::Cycle now, util::Cycle deadline) {
    util::check(deadline >= now,
                "SimSemaphore::wait_until: deadline precedes now");
    if (posts_.empty() || posts_.front() > deadline) {
      return WaitResult{WaitStatus::kTimedOut, deadline + op_cost_};
    }
    const util::Cycle available = posts_.front();
    posts_.pop_front();
    return WaitResult{WaitStatus::kAcquired,
                      std::max(now, available) + op_cost_};
  }

  [[nodiscard]] std::size_t value() const { return posts_.size(); }

 private:
  util::Cycle op_cost_;
  std::deque<util::Cycle> posts_;
};

/// Two-party barrier over simulated time: both clocks advance to the later
/// arrival plus the barrier cost.
class SimBarrier {
 public:
  explicit SimBarrier(util::Cycle op_cost = 60) : op_cost_(op_cost) {}

  /// Synchronizes two actor clocks in place.
  void sync(util::Cycle& a, util::Cycle& b) const {
    const util::Cycle release = std::max(a, b) + op_cost_;
    a = release;
    b = release;
  }

 private:
  util::Cycle op_cost_;
};

}  // namespace impact::sys
