// Per-process virtual memory with attack-relevant allocation policies.
//
// The covert channels need *memory massaging* (§4.1: "one process uses
// memory massaging techniques to place its data in the same bank as the
// other process"): the ability to obtain pages that map to chosen DRAM
// banks/rows. With the default bank-interleaved mapping a 4 KiB page falls
// entirely inside one row-buffer-sized chunk, hence inside one bank, which
// is what makes massaging work. The PuM attack additionally needs two
// virtual ranges whose physical pages span *all* banks at the same row
// index (§5.1), provided by `map_row_span`.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dram/address_mapping.hpp"
#include "dram/controller.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace impact::sys {

using VAddr = std::uint64_t;

/// A contiguous virtual range handed out by the allocator.
struct VSpan {
  VAddr vaddr = 0;
  std::uint64_t bytes = 0;

  [[nodiscard]] VAddr end() const { return vaddr + bytes; }
};

class VirtualMemory {
  struct Process;  // Defined below; forward-declared for TranslationView.

 public:
  /// `mapping` defines how physical frames land in banks; it must outlive
  /// this object. `seed` drives the randomized default allocation order
  /// (real allocators hand out effectively arbitrary frames).
  VirtualMemory(const dram::AddressMapping& mapping, std::uint64_t seed,
                std::uint32_t page_bits = 12);

  [[nodiscard]] std::uint64_t page_bytes() const { return 1ull << page_bits_; }

  /// Maps `n` pages for `proc` from the randomized free list.
  VSpan map_pages(dram::ActorId proc, std::uint64_t n);

  /// Maps one page backed by a frame in `bank` (memory massaging).
  VSpan map_in_bank(dram::ActorId proc, dram::BankId bank);

  /// Maps the pages covering row `row` of `bank` exactly.
  VSpan map_row(dram::ActorId proc, dram::BankId bank, dram::RowId row);

  /// Maps a virtual range whose physical pages cover row `row` in *every*
  /// bank (bank-interleaved mapping required): total_banks * row_bytes
  /// bytes, physically contiguous. With `huge` the range is backed by
  /// 2 MiB pages (it is physically contiguous, so the kernel can), which
  /// lets an attacker sweep thousands of banks without TLB thrash.
  VSpan map_row_span(dram::ActorId proc, dram::RowId row, bool huge = false);

  /// True when the page backing `vaddr` was mapped as a 2 MiB page.
  [[nodiscard]] bool is_huge(dram::ActorId proc, VAddr vaddr) const;

  /// Shared memory: maps the frames backing `span` (owned by `from`) into
  /// `to`'s address space at the same virtual addresses (the two graph
  /// instances of Fig. 11 share their input this way).
  void share(dram::ActorId from, dram::ActorId to, const VSpan& span);

  /// Translates; the page must have been mapped by `proc`.
  [[nodiscard]] dram::PhysAddr translate(dram::ActorId proc,
                                         VAddr vaddr) const;

  /// True if `proc` has a mapping for the page of `vaddr`.
  [[nodiscard]] bool is_mapped(dram::ActorId proc, VAddr vaddr) const;

  /// Cached translation handle for one process, built for hot replay and
  /// PEI loops that translate millions of addresses: the process record is
  /// resolved once (references into `processes_` are stable — only erasure
  /// would invalidate them, and processes are never erased) and repeat
  /// translations of the same page hit a small direct-mapped vpn->pfn memo
  /// instead of the page-table hash. The memo is sound because page tables
  /// are append-only: install() and share() refuse to remap an existing
  /// vpn, so a memoized pfn can never go stale. Results are bit-identical
  /// to VirtualMemory::translate / is_huge for the same process.
  class TranslationView {
   public:
    [[nodiscard]] dram::PhysAddr translate(VAddr vaddr) const {
      const std::uint64_t vpn = vaddr >> page_bits_;
      const std::size_t slot = vpn & (kMemoSlots - 1);
      if (memo_vpn_[slot] != vpn) {
        const auto it = process_->page_table.find(vpn);
        util::check(it != process_->page_table.end(),
                    "VirtualMemory: unmapped virtual address");
        memo_vpn_[slot] = vpn;
        memo_pfn_[slot] = it->second;
      }
      return (memo_pfn_[slot] << page_bits_) | (vaddr & page_mask_);
    }

    [[nodiscard]] bool is_huge(VAddr vaddr) const {
      for (const auto& r : process_->huge_ranges) {
        if (vaddr >= r.vaddr && vaddr < r.end()) return true;
      }
      return false;
    }

   private:
    friend class VirtualMemory;
    TranslationView(const Process* p, std::uint32_t page_bits)
        : process_(p),
          page_bits_(page_bits),
          page_mask_((1ull << page_bits) - 1) {
      memo_vpn_.fill(~std::uint64_t{0});
    }

    static constexpr std::size_t kMemoSlots = 64;
    const Process* process_;
    std::uint32_t page_bits_;
    std::uint64_t page_mask_;
    mutable std::array<std::uint64_t, kMemoSlots> memo_vpn_;
    mutable std::array<std::uint64_t, kMemoSlots> memo_pfn_{};
  };

  /// Builds a TranslationView for `proc`, creating its (empty) process
  /// record if needed. The view stays valid for this VirtualMemory's
  /// lifetime and sees pages mapped after it was built.
  [[nodiscard]] TranslationView view(dram::ActorId proc) {
    return TranslationView(&process(proc), page_bits_);
  }

  [[nodiscard]] std::uint64_t frames_total() const { return frames_total_; }
  [[nodiscard]] std::uint64_t frames_used() const { return frames_used_; }

 private:
  struct Process {
    VAddr next_vaddr = 0x10000000ull;
    std::unordered_map<std::uint64_t, std::uint64_t> page_table;  // vpn->pfn.
    std::vector<VSpan> huge_ranges;  // Ranges backed by 2 MiB pages.
  };

  Process& process(dram::ActorId proc);
  VAddr install(Process& p, const std::vector<std::uint64_t>& frames);
  std::uint64_t take_free_frame();
  /// Claims a specific frame; it must be free.
  void claim_frame(std::uint64_t frame);
  [[nodiscard]] bool frame_free(std::uint64_t frame) const;

  const dram::AddressMapping* mapping_;
  std::uint32_t page_bits_;
  std::uint64_t frames_total_;
  std::uint64_t frames_used_ = 0;
  std::vector<bool> frame_taken_;
  std::vector<std::uint64_t> shuffled_free_;  ///< Randomized handout order.
  std::size_t shuffled_pos_ = 0;
  std::unordered_map<dram::ActorId, Process> processes_;
};

}  // namespace impact::sys
