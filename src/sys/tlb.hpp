// Two-level data TLB with page-table-walk cost (Table 2 MMU).
//
// The TLB sits on every CPU-side access path (loads/stores, clflush target
// translation, eviction-set accesses) and contributes both latency and —
// on walks — DRAM traffic noise. PiM operations still translate (the PEI
// interface uses virtual addresses), so TLB behavior is shared by all
// attacks; what PiM skips is the *cache hierarchy*, not translation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cache/replacement.hpp"
#include "obs/registry.hpp"
#include "util/units.hpp"

namespace impact::sys {

struct TlbLevelConfig {
  std::uint32_t entries = 64;
  std::uint32_t ways = 4;
  util::Cycle latency = 1;
};

struct TlbConfig {
  TlbLevelConfig l1{64, 4, 1};        // L1 DTLB (4 KiB pages).
  TlbLevelConfig l1_huge{32, 4, 1};   // L1 DTLB (2 MiB pages).
  TlbLevelConfig l2{1536, 12, 12};    // Unified L2 TLB.
  util::Cycle walk_latency = 80;      ///< Page-table walk (4 cached levels).
  std::uint32_t page_bits = 12;       ///< 4 KiB pages.
  std::uint32_t huge_page_bits = 21;  ///< 2 MiB pages.
};

struct TlbResult {
  util::Cycle latency = 0;
  bool l1_hit = false;
  bool l2_hit = false;
  bool walked = false;
};

struct TlbStats {
  std::uint64_t accesses = 0;
  std::uint64_t l1_hits = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t walks = 0;
};

class Tlb {
 public:
  explicit Tlb(TlbConfig config = {});
  /// Flushes obs:: snapshot providers (see cache::Hierarchy — same
  /// pattern: the translate fast path is never touched, TlbStats are
  /// sampled at snapshot time). Providers capture `this`: not copyable.
  ~Tlb();
  Tlb(const Tlb&) = delete;
  Tlb& operator=(const Tlb&) = delete;

  /// Translates the page of `vaddr`, updating both levels. `huge` selects
  /// the 2 MiB-page path (separate L1 array, shared L2).
  TlbResult translate(std::uint64_t vaddr, bool huge = false);

  /// Pre-installs the page (warm-up; §5.1 warms all structures).
  void warm(std::uint64_t vaddr, bool huge = false);

  [[nodiscard]] const TlbStats& stats() const { return stats_; }
  void reset_stats() { stats_ = TlbStats{}; }

 private:
  /// One TLB level: flat set-associative tag array with inline LRU
  /// metadata (same contiguous layout as cache::Cache — one tags run and
  /// one metadata byte run, sliced per set). Set indexing is mask-based
  /// when the set count is a power of two (all Table 2 TLB shapes).
  struct Level {
    explicit Level(const TlbLevelConfig& c);
    bool lookup(std::uint64_t page);
    void fill(std::uint64_t page);
    [[nodiscard]] std::uint32_t set_of(std::uint64_t page) const {
      return pow2_sets ? (static_cast<std::uint32_t>(page) & set_mask)
                       : static_cast<std::uint32_t>(page % sets);
    }
    [[nodiscard]] std::span<std::uint8_t> repl_slice(std::size_t base) {
      return {repl_meta.data() + base, ways};
    }

    std::uint32_t sets;
    std::uint32_t ways;
    std::uint32_t set_mask = 0;
    bool pow2_sets = false;
    std::vector<std::uint64_t> tags;       // sets*ways; kInvalid when empty.
    std::vector<std::uint8_t> repl_meta;   // sets*ways LRU bytes.
    static constexpr std::uint64_t kInvalid = ~0ull;
  };

  TlbConfig config_;
  Level l1_;
  Level l1_huge_;
  Level l2_;
  TlbStats stats_;
  obs::Registry* obs_registry_ = nullptr;
  std::vector<obs::ProviderId> obs_providers_;
};

}  // namespace impact::sys
