#include "sys/system.hpp"

#include <cstdio>

#include "check/protocol_checker.hpp"

namespace impact::sys {

std::string SystemConfig::describe() const {
  char buf[1024];
  const auto t = dram.derived_timing();
  std::snprintf(
      buf, sizeof buf,
      "CPU: %u-core OoO x86, %.1f GHz\n"
      "MMU: L1 DTLB %u-entry/%u-way %llu-cyc, L2 TLB %u-entry/%u-way "
      "%llu-cyc, walk %llu-cyc\n"
      "L1D: 32 KB 8-way 4-cyc LRU (IP-stride)\n"
      "L2:  1 MB 16-way 12-cyc SRRIP (streamer)\n"
      "LLC: %llu MB %u-way SRRIP\n"
      "DRAM: %u ch x %u ranks x %u banks (%u banks total), %u B rows, "
      "tRCD/tRP/tCAS = %llu/%llu/%llu cyc, %s policy, row timeout %llu cyc\n",
      cores, freq_ghz, tlb.l1.entries, tlb.l1.ways,
      static_cast<unsigned long long>(tlb.l1.latency), tlb.l2.entries,
      tlb.l2.ways, static_cast<unsigned long long>(tlb.l2.latency),
      static_cast<unsigned long long>(tlb.walk_latency),
      static_cast<unsigned long long>(llc_bytes >> 20), llc_ways,
      dram.channels, dram.ranks, dram.banks_per_rank, dram.total_banks(),
      dram.row_bytes, static_cast<unsigned long long>(t.trcd),
      static_cast<unsigned long long>(t.trp),
      static_cast<unsigned long long>(t.tcas), to_string(dram.policy),
      static_cast<unsigned long long>(t.row_timeout));
  return buf;
}

MemorySystem::CpuContext::CpuContext(const SystemConfig& cfg,
                                     dram::MemoryController& controller,
                                     dram::ActorId actor)
    : tlb(cfg.tlb),
      hierarchy(
          [&] {
            auto h = cache::HierarchyConfig::table2(cfg.llc_bytes,
                                                    cfg.llc_ways);
            if (cfg.cache_scale > 1) {
              const auto scale = [&](cache::CacheConfig& c) {
                const std::uint64_t min_bytes =
                    static_cast<std::uint64_t>(c.ways) * c.line_bytes;
                c.size_bytes = std::max(c.size_bytes / cfg.cache_scale,
                                        min_bytes);
              };
              scale(h.l1);
              scale(h.l2);
              scale(h.l3);
            }
            h.enable_prefetchers = cfg.prefetchers;
            return h;
          }(),
          controller, actor) {}

MemorySystem::MemorySystem(SystemConfig config)
    : config_(config),
      controller_(config.dram, config.mapping, /*with_data=*/true),
      vmem_(controller_.mapping(), config.seed),
      timestamp_(config.timer) {}

MemorySystem::CpuContext& MemorySystem::context(dram::ActorId actor) {
  auto [it, inserted] = contexts_.try_emplace(actor);
  if (inserted) {
    it->second = std::make_unique<CpuContext>(config_, controller_, actor);
  }
  return *it->second;
}

cache::Hierarchy& MemorySystem::hierarchy(dram::ActorId actor) {
  return context(actor).hierarchy;
}

void MemorySystem::reconcile_protocol() {
  check::ProtocolChecker* checker = controller_.checker();
  if (checker == nullptr) return;
  for (dram::BankId b = 0; b < controller_.banks(); ++b) {
    checker->reconcile_stats(b, controller_.bank_stats(b));
  }
}

Tlb& MemorySystem::tlb(dram::ActorId actor) { return context(actor).tlb; }

TlbResult MemorySystem::translate(dram::ActorId actor, VAddr vaddr) {
  return context(actor).tlb.translate(vaddr, vmem_.is_huge(actor, vaddr));
}

PathResult MemorySystem::load(dram::ActorId actor, VAddr vaddr,
                              util::Cycle& clock, std::uint64_t pc) {
  auto& ctx = context(actor);
  const auto tr = translate(actor, vaddr);
  const dram::PhysAddr paddr = vmem_.translate(actor, vaddr);
  const auto mem = ctx.hierarchy.access(paddr, clock + tr.latency,
                                        /*is_write=*/false, pc);
  PathResult r;
  r.latency = tr.latency + mem.latency;
  r.level = mem.level;
  r.outcome = mem.dram_outcome;
  clock += r.latency;
  return r;
}

PathResult MemorySystem::store(dram::ActorId actor, VAddr vaddr,
                               util::Cycle& clock, std::uint64_t pc) {
  auto& ctx = context(actor);
  const auto tr = translate(actor, vaddr);
  const dram::PhysAddr paddr = vmem_.translate(actor, vaddr);
  const auto mem = ctx.hierarchy.access(paddr, clock + tr.latency,
                                        /*is_write=*/true, pc);
  PathResult r;
  r.latency = tr.latency + mem.latency;
  r.level = mem.level;
  r.outcome = mem.dram_outcome;
  clock += r.latency;
  return r;
}

util::Cycle MemorySystem::clflush(dram::ActorId actor, VAddr vaddr,
                                  util::Cycle& clock) {
  auto& ctx = context(actor);
  const auto tr = translate(actor, vaddr);
  const dram::PhysAddr paddr = vmem_.translate(actor, vaddr);
  const util::Cycle latency =
      tr.latency + ctx.hierarchy.clflush(paddr, clock + tr.latency);
  clock += latency;
  return latency;
}

util::Cycle MemorySystem::evict(dram::ActorId actor, VAddr vaddr,
                                util::Cycle& clock) {
  auto& ctx = context(actor);
  const auto tr = translate(actor, vaddr);
  const dram::PhysAddr paddr = vmem_.translate(actor, vaddr);
  const dram::BankId target_bank = controller_.mapping().decode(paddr).bank;
  const util::Cycle latency =
      tr.latency + ctx.hierarchy.evict_via_set(paddr, clock + tr.latency,
                                               target_bank);
  clock += latency;
  return latency;
}

PathResult MemorySystem::direct_access(dram::ActorId actor, VAddr vaddr,
                                       util::Cycle& clock) {
  const auto tr = translate(actor, vaddr);
  const dram::PhysAddr paddr = vmem_.translate(actor, vaddr);
  const auto mem = controller_.access(paddr, clock + tr.latency, actor);
  PathResult r;
  r.latency = tr.latency + mem.latency;
  r.level = cache::HitLevel::kMemory;
  r.outcome = mem.outcome;
  clock += r.latency;
  return r;
}

PathResult MemorySystem::dma_access(dram::ActorId actor, VAddr vaddr,
                                    util::Cycle& clock) {
  // DMA transfers run on physical (IOMMU-mapped) addresses; the translation
  // cost is folded into the per-transfer driver overhead.
  const dram::PhysAddr paddr = vmem_.translate(actor, vaddr);
  const util::Cycle overhead = config_.dma.per_transfer_overhead;
  const auto mem = controller_.access(paddr, clock + overhead, actor);
  PathResult r;
  r.latency = overhead + mem.latency;
  r.level = cache::HitLevel::kMemory;
  r.outcome = mem.outcome;
  clock += r.latency;
  return r;
}

void MemorySystem::charge_walk_traffic(dram::ActorId actor, VAddr vaddr,
                                       bool walked, util::Cycle now) {
  if (!walked) return;
  // Leaf-PTE location: spread page-table pages pseudo-randomly over the
  // device (timing-only access; PTE contents are not modelled).
  std::uint64_t page = vaddr >> 12;
  page ^= page >> 17;
  page *= 0x9E3779B97F4A7C15ull;
  const dram::PhysAddr pte_addr =
      (page % (controller_.mapping().capacity() / 64)) * 64;
  controller_.access(pte_addr, now, actor);
}

void MemorySystem::warm_span(dram::ActorId actor, const VSpan& span) {
  auto& ctx = context(actor);
  const bool huge = vmem_.is_huge(actor, span.vaddr);
  const std::uint64_t step =
      huge ? (1ull << config_.tlb.huge_page_bits) : vmem_.page_bytes();
  for (VAddr v = span.vaddr; v < span.end(); v += step) {
    ctx.tlb.warm(v, huge);
  }
}

}  // namespace impact::sys
