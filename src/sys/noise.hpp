// Background system activity: a noise process for stress-testing attacks.
//
// §5.1 injects noise via prefetchers and page-table walkers; this utility
// additionally models unrelated co-running applications whose DRAM traffic
// perturbs row-buffer state at a configurable rate, so tests and ablations
// can measure channel robustness (and the value of coding) under load.
#pragma once

#include <cstdint>

#include "sys/system.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace impact::sys {

struct NoiseConfig {
  /// Mean DRAM accesses issued per 1000 cycles of simulated time.
  double accesses_per_kilocycle = 0.0;
  /// Fraction of noise accesses that are cached loads (the rest go
  /// straight to DRAM, e.g. DMA or non-temporal traffic).
  double cached_fraction = 0.5;
  std::uint64_t seed = 4242;
};

class BackgroundNoise {
 public:
  BackgroundNoise(NoiseConfig config, MemorySystem& system,
                  dram::ActorId actor);

  /// Issues the noise accesses scheduled in (last_advance, upto]. The
  /// frontier must be monotonically non-decreasing: a rewound `upto`
  /// throws a recoverable std::invalid_argument (the process state is
  /// untouched) instead of silently skipping the interval.
  void advance(util::Cycle upto);

  /// Highest frontier advance() has been driven to so far.
  [[nodiscard]] util::Cycle frontier() const { return frontier_; }

  [[nodiscard]] std::uint64_t accesses_issued() const { return issued_; }

 private:
  NoiseConfig config_;
  MemorySystem* system_;
  dram::ActorId actor_;
  util::Xoshiro256 rng_;
  VSpan span_{};
  util::Cycle next_event_ = 0;
  util::Cycle frontier_ = 0;
  std::uint64_t issued_ = 0;
};

}  // namespace impact::sys
