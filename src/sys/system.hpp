// System-level configuration (Table 2) and the MemorySystem façade.
//
// MemorySystem wires together the per-process CPU-side path
// (TLB -> L1 -> L2 -> LLC -> memory controller) and the direct paths that
// bypass the cache hierarchy (abstract direct access, DMA-engine access).
// PiM paths (PEI, RowClone) live in src/pim and use the same controller.
//
// Modeling note: each simulated process gets a private hierarchy (its
// L1/L2 plus an LLC slice). The attacks under study communicate through
// DRAM row-buffer state, not through shared cache sets, so private LLC
// slices preserve every mechanism the paper measures; the purely
// cache-resident comparison attack (Streamline) is modelled analytically,
// exactly as the paper itself does (§5.1).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "cache/hierarchy.hpp"
#include "dram/controller.hpp"
#include "sys/sync.hpp"
#include "sys/timer.hpp"
#include "sys/tlb.hpp"
#include "sys/vmem.hpp"

namespace impact::fault {
class Injector;
}  // namespace impact::fault

namespace impact::sys {

struct DmaConfig {
  /// Descriptor setup, doorbell, and completion handling for one transfer.
  /// §5.1 assumes a powerful attacker who avoids context-switch and most
  /// OS costs; this is the irreducible user-space driver overhead left.
  util::Cycle per_transfer_overhead = 330;
};

struct SystemConfig {
  double freq_ghz = 2.6;
  std::uint32_t cores = 4;
  dram::DramConfig dram{};
  dram::MappingScheme mapping = dram::MappingScheme::kBankInterleaved;
  std::uint64_t llc_bytes = 8ull * 1024 * 1024;  // 2 MiB/core x 4 cores.
  std::uint32_t llc_ways = 16;
  /// Uniform divisor applied to all cache capacities (power of two). The
  /// Fig. 11 reproduction scales hierarchy and input graph down together
  /// (the paper's inputs are 7-8 GB), preserving working-set-to-cache
  /// ratios and with them the per-workload MPKI regime.
  std::uint32_t cache_scale = 1;
  bool prefetchers = true;
  TlbConfig tlb{};
  TimerConfig timer{};
  DmaConfig dma{};
  std::uint64_t seed = 42;

  [[nodiscard]] util::Frequency frequency() const {
    return util::Frequency{freq_ghz};
  }

  /// Human-readable Table 2-style description for bench headers.
  [[nodiscard]] std::string describe() const;
};

/// Result of one access over any path.
struct PathResult {
  util::Cycle latency = 0;
  cache::HitLevel level = cache::HitLevel::kMemory;
  dram::RowBufferOutcome outcome = dram::RowBufferOutcome::kEmpty;
};

class MemorySystem {
 public:
  explicit MemorySystem(SystemConfig config);

  [[nodiscard]] const SystemConfig& config() const { return config_; }
  [[nodiscard]] dram::MemoryController& controller() { return controller_; }
  [[nodiscard]] VirtualMemory& vmem() { return vmem_; }
  [[nodiscard]] const Timestamp& timestamp() const { return timestamp_; }

  /// Per-process CPU-side structures (created on first use).
  cache::Hierarchy& hierarchy(dram::ActorId actor);
  Tlb& tlb(dram::ActorId actor);

  /// Attaches a fault injector to this system and its controller (nullptr
  /// detaches; non-owning — the injector must outlive the system or be
  /// detached first). DRAM-level faults fire inside the controller; actor-
  /// level faults (semaphore drop/delay, clock drift) are consulted by the
  /// channel drivers via fault_injector().
  void set_fault_injector(fault::Injector* injector) {
    faults_ = injector;
    controller_.set_fault_injector(injector);
  }
  [[nodiscard]] fault::Injector* fault_injector() { return faults_; }

  /// Mid-run protocol audit: reconciles every bank's BankStats against the
  /// command stream observed by the auto-attached protocol checker
  /// (IMPACT_CHECK). No-op when the checker is disabled. In abort mode a
  /// divergence terminates the process with a bank-level trace.
  void reconcile_protocol();

  /// TLB translation that consults the page size of the backing mapping
  /// (4 KiB vs 2 MiB pages). All access paths use this.
  TlbResult translate(dram::ActorId actor, VAddr vaddr);

  // --- CPU-side path (translate + cache hierarchy) --------------------
  PathResult load(dram::ActorId actor, VAddr vaddr, util::Cycle& clock,
                  std::uint64_t pc = 0);
  PathResult store(dram::ActorId actor, VAddr vaddr, util::Cycle& clock,
                   std::uint64_t pc = 0);

  /// Cached per-actor CPU-side path for hot replay loops: resolves the
  /// actor's TLB, hierarchy, and translation view once, so the per-access
  /// path touches no actor hash maps. load/store are bit-identical to
  /// MemorySystem::load/store for the same actor (the underlying TLB,
  /// caches, and banks are the very same objects — a port and the façade
  /// calls may be freely interleaved). Valid for the system's lifetime.
  class AccessPort {
   public:
    PathResult load(VAddr vaddr, util::Cycle& clock, std::uint64_t pc = 0) {
      return access(vaddr, clock, /*is_write=*/false, pc);
    }
    PathResult store(VAddr vaddr, util::Cycle& clock, std::uint64_t pc = 0) {
      return access(vaddr, clock, /*is_write=*/true, pc);
    }

   private:
    friend class MemorySystem;
    AccessPort(Tlb& tlb, cache::Hierarchy& hier,
               VirtualMemory::TranslationView view)
        : tlb_(&tlb), hier_(&hier), view_(view) {}

    PathResult access(VAddr vaddr, util::Cycle& clock, bool is_write,
                      std::uint64_t pc) {
      const auto tr = tlb_->translate(vaddr, view_.is_huge(vaddr));
      const dram::PhysAddr paddr = view_.translate(vaddr);
      const auto mem = hier_->access(paddr, clock + tr.latency, is_write, pc);
      PathResult r;
      r.latency = tr.latency + mem.latency;
      r.level = mem.level;
      r.outcome = mem.dram_outcome;
      clock += r.latency;
      return r;
    }

    Tlb* tlb_;
    cache::Hierarchy* hier_;
    VirtualMemory::TranslationView view_;
  };

  /// Builds an AccessPort for `actor` (creating its context on first use).
  [[nodiscard]] AccessPort port(dram::ActorId actor) {
    auto& ctx = context(actor);
    return AccessPort(ctx.tlb, ctx.hierarchy, vmem_.view(actor));
  }
  /// clflush of the line holding `vaddr` (translate + LLC probe + WB).
  util::Cycle clflush(dram::ActorId actor, VAddr vaddr, util::Cycle& clock);
  /// Eviction-set displacement of the line holding `vaddr` (§3.3 baseline).
  util::Cycle evict(dram::ActorId actor, VAddr vaddr, util::Cycle& clock);

  // --- Cache-bypassing paths ------------------------------------------
  /// Abstract direct main-memory access: one request, no cache lookup
  /// (§3.3's "direct memory access attack" upper bound).
  PathResult direct_access(dram::ActorId actor, VAddr vaddr,
                           util::Cycle& clock);
  /// DMA-engine access: fixed driver overhead + uncached DRAM access.
  PathResult dma_access(dram::ActorId actor, VAddr vaddr,
                        util::Cycle& clock);

  /// Pre-warms translation structures for a span (§5.1 warm-up phase).
  void warm_span(dram::ActorId actor, const VSpan& span);

  /// DRAM traffic of a page-table walk: the walker fetches the leaf PTE
  /// from memory, activating a pseudo-random row. This is one of the §5.1
  /// noise sources — walker traffic perturbs row-buffer state that attacks
  /// rely on. Call with `walked` from a TlbResult.
  void charge_walk_traffic(dram::ActorId actor, VAddr vaddr, bool walked,
                           util::Cycle now);

 private:
  struct CpuContext {
    explicit CpuContext(const SystemConfig& cfg,
                        dram::MemoryController& controller,
                        dram::ActorId actor);
    Tlb tlb;
    cache::Hierarchy hierarchy;
  };

  CpuContext& context(dram::ActorId actor);

  SystemConfig config_;
  dram::MemoryController controller_;
  VirtualMemory vmem_;
  Timestamp timestamp_;
  std::unordered_map<dram::ActorId, std::unique_ptr<CpuContext>> contexts_;
  fault::Injector* faults_ = nullptr;
};

}  // namespace impact::sys
