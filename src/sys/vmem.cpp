#include "sys/vmem.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace impact::sys {

VirtualMemory::VirtualMemory(const dram::AddressMapping& mapping,
                             std::uint64_t seed, std::uint32_t page_bits)
    : mapping_(&mapping), page_bits_(page_bits) {
  util::check(page_bits_ >= 6 && page_bits_ <= 21,
              "VirtualMemory: page size out of the supported range");
  frames_total_ = mapping.capacity() >> page_bits_;
  util::check(frames_total_ > 0, "VirtualMemory: device smaller than a page");
  frame_taken_.assign(frames_total_, false);

  // Randomized handout order models the effectively arbitrary
  // physical-frame placement of a long-running system. The pool draws from
  // the upper half of the device so that row-targeted mappings (map_row /
  // map_row_span, which attacks aim at low row numbers) do not race with
  // random allocations for the same frames. Capped pool size keeps setup
  // cheap for very large devices.
  const std::uint64_t base = frames_total_ / 2;
  const std::uint64_t pool =
      std::min<std::uint64_t>(frames_total_ - base, 1ull << 20);
  shuffled_free_.resize(pool);
  for (std::uint64_t i = 0; i < pool; ++i) shuffled_free_[i] = base + i;
  util::Xoshiro256 rng(seed);
  for (std::uint64_t i = pool; i > 1; --i) {
    std::swap(shuffled_free_[i - 1], shuffled_free_[rng.below(i)]);
  }
}

VirtualMemory::Process& VirtualMemory::process(dram::ActorId proc) {
  auto [it, inserted] = processes_.try_emplace(proc);
  if (inserted) {
    // Separate the virtual ranges of different processes for readability.
    it->second.next_vaddr =
        0x10000000ull + static_cast<std::uint64_t>(proc) * 0x100000000ull;
  }
  return it->second;
}

bool VirtualMemory::frame_free(std::uint64_t frame) const {
  return frame < frames_total_ && !frame_taken_[frame];
}

void VirtualMemory::claim_frame(std::uint64_t frame) {
  util::check(frame_free(frame), "VirtualMemory: frame not free");
  frame_taken_[frame] = true;
  ++frames_used_;
}

std::uint64_t VirtualMemory::take_free_frame() {
  while (shuffled_pos_ < shuffled_free_.size()) {
    const std::uint64_t f = shuffled_free_[shuffled_pos_++];
    if (!frame_taken_[f]) {
      claim_frame(f);
      return f;
    }
  }
  // Shuffle pool exhausted: linear scan of the remainder.
  for (std::uint64_t f = 0; f < frames_total_; ++f) {
    if (!frame_taken_[f]) {
      claim_frame(f);
      return f;
    }
  }
  util::check(false, "VirtualMemory: out of physical frames");
  return 0;
}

VAddr VirtualMemory::install(Process& p,
                             const std::vector<std::uint64_t>& frames) {
  const VAddr base = p.next_vaddr;
  VAddr v = base;
  for (std::uint64_t f : frames) {
    // Page tables are append-only (TranslationView memoizes vpn->pfn on
    // that guarantee): the bump allocator hands out fresh pages, so an
    // existing entry here would be a bookkeeping bug.
    const auto [it, inserted] = p.page_table.emplace(v >> page_bits_, f);
    util::check(inserted, "VirtualMemory: page already mapped");
    v += page_bytes();
  }
  p.next_vaddr = v;
  return base;
}

VSpan VirtualMemory::map_pages(dram::ActorId proc, std::uint64_t n) {
  util::check(n > 0, "VirtualMemory::map_pages: n must be positive");
  Process& p = process(proc);
  std::vector<std::uint64_t> frames;
  frames.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) frames.push_back(take_free_frame());
  return VSpan{install(p, frames), n * page_bytes()};
}

VSpan VirtualMemory::map_in_bank(dram::ActorId proc, dram::BankId bank) {
  Process& p = process(proc);
  // Scan frames for one whose first byte decodes into `bank`. A page never
  // crosses a row-chunk boundary when page <= row size; check both ends to
  // be safe for any geometry.
  for (std::uint64_t f = 0; f < frames_total_; ++f) {
    if (frame_taken_[f]) continue;
    const dram::PhysAddr base = f << page_bits_;
    const auto lo = mapping_->decode(base);
    const auto hi = mapping_->decode(base + page_bytes() - 1);
    if (lo.bank == bank && hi.bank == bank) {
      claim_frame(f);
      return VSpan{install(p, {f}), page_bytes()};
    }
  }
  util::check(false, "VirtualMemory::map_in_bank: no free frame in bank");
  return {};
}

VSpan VirtualMemory::map_row(dram::ActorId proc, dram::BankId bank,
                             dram::RowId row) {
  Process& p = process(proc);
  const std::uint64_t row_bytes = mapping_->row_bytes();
  const dram::PhysAddr row_base = mapping_->row_base(bank, row);
  util::check(row_bytes % page_bytes() == 0 || page_bytes() % row_bytes == 0,
              "VirtualMemory::map_row: page/row sizes incompatible");
  const std::uint64_t pages =
      std::max<std::uint64_t>(1, row_bytes / page_bytes());
  std::vector<std::uint64_t> frames;
  for (std::uint64_t i = 0; i < pages; ++i) {
    const std::uint64_t f = (row_base + i * page_bytes()) >> page_bits_;
    claim_frame(f);
    frames.push_back(f);
  }
  return VSpan{install(p, frames), pages * page_bytes()};
}

VSpan VirtualMemory::map_row_span(dram::ActorId proc, dram::RowId row,
                                  bool huge) {
  util::check(mapping_->scheme() == dram::MappingScheme::kBankInterleaved,
              "map_row_span requires the bank-interleaved mapping");
  Process& p = process(proc);
  const std::uint64_t row_bytes = mapping_->row_bytes();
  const std::uint64_t banks = mapping_->banks();
  const dram::PhysAddr base =
      static_cast<dram::PhysAddr>(row) * banks * row_bytes;
  const std::uint64_t total = banks * row_bytes;
  util::check(total % page_bytes() == 0,
              "map_row_span: span must be page-aligned");
  std::vector<std::uint64_t> frames;
  for (std::uint64_t off = 0; off < total; off += page_bytes()) {
    const std::uint64_t f = (base + off) >> page_bits_;
    claim_frame(f);
    frames.push_back(f);
  }
  const VSpan span{install(p, frames), total};
  if (huge) p.huge_ranges.push_back(span);
  return span;
}

bool VirtualMemory::is_huge(dram::ActorId proc, VAddr vaddr) const {
  const auto pit = processes_.find(proc);
  if (pit == processes_.end()) return false;
  for (const auto& r : pit->second.huge_ranges) {
    if (vaddr >= r.vaddr && vaddr < r.end()) return true;
  }
  return false;
}

void VirtualMemory::share(dram::ActorId from, dram::ActorId to,
                          const VSpan& span) {
  util::check(from != to, "VirtualMemory::share: same process");
  const auto fit = processes_.find(from);
  util::check(fit != processes_.end(), "VirtualMemory::share: unknown owner");
  Process& dst = process(to);
  for (VAddr v = span.vaddr; v < span.end(); v += page_bytes()) {
    const auto it = fit->second.page_table.find(v >> page_bits_);
    util::check(it != fit->second.page_table.end(),
                "VirtualMemory::share: span not fully mapped by owner");
    // Append-only page tables (see install): re-sharing the same span is
    // idempotent, but remapping an existing vpn to a different frame would
    // invalidate TranslationView memos and is refused.
    const auto [dit, inserted] =
        dst.page_table.emplace(v >> page_bits_, it->second);
    util::check(inserted || dit->second == it->second,
                "VirtualMemory::share: vpn already mapped to another frame");
  }
  // Keep the destination's bump allocator clear of the shared range.
  dst.next_vaddr = std::max(dst.next_vaddr, span.end());
}

dram::PhysAddr VirtualMemory::translate(dram::ActorId proc,
                                        VAddr vaddr) const {
  const auto pit = processes_.find(proc);
  util::check(pit != processes_.end(), "VirtualMemory: unknown process");
  const auto it = pit->second.page_table.find(vaddr >> page_bits_);
  util::check(it != pit->second.page_table.end(),
              "VirtualMemory: unmapped virtual address");
  return (it->second << page_bits_) | (vaddr & (page_bytes() - 1));
}

bool VirtualMemory::is_mapped(dram::ActorId proc, VAddr vaddr) const {
  const auto pit = processes_.find(proc);
  if (pit == processes_.end()) return false;
  return pit->second.page_table.contains(vaddr >> page_bits_);
}

}  // namespace impact::sys
