#include "sys/tlb.hpp"

#include "obs/scope.hpp"
#include "util/assert.hpp"

namespace impact::sys {

Tlb::Level::Level(const TlbLevelConfig& c)
    : sets(c.entries / c.ways), ways(c.ways) {
  util::check(c.entries % c.ways == 0,
              "TlbLevelConfig: entries must be divisible by ways");
  util::check(sets > 0, "TlbLevelConfig: at least one set required");
  pow2_sets = (sets & (sets - 1)) == 0;
  set_mask = pow2_sets ? sets - 1 : 0;
  tags.assign(static_cast<std::size_t>(sets) * ways, kInvalid);
  repl_meta.assign(static_cast<std::size_t>(sets) * ways, 0);
  for (std::uint32_t s = 0; s < sets; ++s) {
    cache::repl::reset(cache::ReplacementKind::kLru,
                       repl_slice(static_cast<std::size_t>(s) * ways));
  }
}

// SIMLINT-HOT-BEGIN: per-access fast path — no allocation, no
// std::string, no by-name registry resolves (docs/static-analysis.md).
bool Tlb::Level::lookup(std::uint64_t page) {
  const std::size_t base = static_cast<std::size_t>(set_of(page)) * ways;
  for (std::uint32_t w = 0; w < ways; ++w) {
    if (tags[base + w] == page) {
      cache::repl::touch(cache::ReplacementKind::kLru, repl_slice(base), w);
      return true;
    }
  }
  return false;
}

void Tlb::Level::fill(std::uint64_t page) {
  const std::size_t base = static_cast<std::size_t>(set_of(page)) * ways;
  // One scan finds both the hitting way and the first free way.
  std::uint32_t free_way = ~0u;
  for (std::uint32_t w = 0; w < ways; ++w) {
    if (tags[base + w] == page) {
      cache::repl::touch(cache::ReplacementKind::kLru, repl_slice(base), w);
      return;
    }
    if (free_way == ~0u && tags[base + w] == kInvalid) free_way = w;
  }
  const std::uint32_t way =
      free_way != ~0u
          ? free_way
          : cache::repl::victim(cache::ReplacementKind::kLru,
                                repl_slice(base));
  tags[base + way] = page;
  cache::repl::insert(cache::ReplacementKind::kLru, repl_slice(base), way);
}

Tlb::Tlb(TlbConfig config)
    : config_(config),
      l1_(config.l1),
      l1_huge_(config.l1_huge),
      l2_(config.l2) {
  // Snapshot-time providers over TlbStats (see cache::Hierarchy): zero
  // cost on the translate path, sampled only when a snapshot is taken.
  if (obs::Registry* reg = obs::current_registry()) {
    obs_registry_ = reg;
    obs_providers_.push_back(reg->add_provider(
        "tlb.accesses", [this] { return stats_.accesses; }));
    obs_providers_.push_back(reg->add_provider(
        "tlb.l1_hits", [this] { return stats_.l1_hits; }));
    obs_providers_.push_back(reg->add_provider(
        "tlb.l2_hits", [this] { return stats_.l2_hits; }));
    obs_providers_.push_back(
        reg->add_provider("tlb.walks", [this] { return stats_.walks; }));
  }
}

Tlb::~Tlb() {
  if (obs_registry_ != nullptr) {
    for (const obs::ProviderId id : obs_providers_) {
      obs_registry_->flush_provider(id);
    }
  }
}

TlbResult Tlb::translate(std::uint64_t vaddr, bool huge) {
  const std::uint64_t page =
      vaddr >> (huge ? config_.huge_page_bits : config_.page_bits);
  Level& l1 = huge ? l1_huge_ : l1_;
  ++stats_.accesses;
  TlbResult r;
  r.latency = config_.l1.latency;
  if (l1.lookup(page)) {
    ++stats_.l1_hits;
    r.l1_hit = true;
    return r;
  }
  r.latency += config_.l2.latency;
  if (l2_.lookup(page)) {
    ++stats_.l2_hits;
    r.l2_hit = true;
    l1.fill(page);
    return r;
  }
  ++stats_.walks;
  r.walked = true;
  r.latency += config_.walk_latency;
  l2_.fill(page);
  l1.fill(page);
  return r;
}
// SIMLINT-HOT-END

void Tlb::warm(std::uint64_t vaddr, bool huge) {
  const std::uint64_t page =
      vaddr >> (huge ? config_.huge_page_bits : config_.page_bits);
  l2_.fill(page);
  (huge ? l1_huge_ : l1_).fill(page);
}

}  // namespace impact::sys
