#include "sys/tlb.hpp"

#include "util/assert.hpp"

namespace impact::sys {

Tlb::Level::Level(const TlbLevelConfig& c)
    : sets(c.entries / c.ways), ways(c.ways) {
  util::check(c.entries % c.ways == 0,
              "TlbLevelConfig: entries must be divisible by ways");
  util::check(sets > 0, "TlbLevelConfig: at least one set required");
  tags.assign(static_cast<std::size_t>(sets) * ways, kInvalid);
  repl.reserve(sets);
  for (std::uint32_t s = 0; s < sets; ++s) {
    repl.emplace_back(cache::ReplacementKind::kLru, ways);
  }
}

bool Tlb::Level::lookup(std::uint64_t page) {
  const std::uint32_t set = static_cast<std::uint32_t>(page % sets);
  const std::size_t base = static_cast<std::size_t>(set) * ways;
  for (std::uint32_t w = 0; w < ways; ++w) {
    if (tags[base + w] == page) {
      repl[set].touch(w);
      return true;
    }
  }
  return false;
}

void Tlb::Level::fill(std::uint64_t page) {
  const std::uint32_t set = static_cast<std::uint32_t>(page % sets);
  const std::size_t base = static_cast<std::size_t>(set) * ways;
  for (std::uint32_t w = 0; w < ways; ++w) {
    if (tags[base + w] == page) {
      repl[set].touch(w);
      return;
    }
  }
  for (std::uint32_t w = 0; w < ways; ++w) {
    if (tags[base + w] == kInvalid) {
      tags[base + w] = page;
      repl[set].insert(w);
      return;
    }
  }
  const std::uint32_t victim = repl[set].victim();
  tags[base + victim] = page;
  repl[set].insert(victim);
}

Tlb::Tlb(TlbConfig config)
    : config_(config),
      l1_(config.l1),
      l1_huge_(config.l1_huge),
      l2_(config.l2) {}

TlbResult Tlb::translate(std::uint64_t vaddr, bool huge) {
  const std::uint64_t page =
      vaddr >> (huge ? config_.huge_page_bits : config_.page_bits);
  Level& l1 = huge ? l1_huge_ : l1_;
  ++stats_.accesses;
  TlbResult r;
  r.latency = config_.l1.latency;
  if (l1.lookup(page)) {
    ++stats_.l1_hits;
    r.l1_hit = true;
    return r;
  }
  r.latency += config_.l2.latency;
  if (l2_.lookup(page)) {
    ++stats_.l2_hits;
    r.l2_hit = true;
    l1.fill(page);
    return r;
  }
  ++stats_.walks;
  r.walked = true;
  r.latency += config_.walk_latency;
  l2_.fill(page);
  l1.fill(page);
  return r;
}

void Tlb::warm(std::uint64_t vaddr, bool huge) {
  const std::uint64_t page =
      vaddr >> (huge ? config_.huge_page_bits : config_.page_bits);
  l2_.fill(page);
  (huge ? l1_huge_ : l1_).fill(page);
}

}  // namespace impact::sys
