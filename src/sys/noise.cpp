#include "sys/noise.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace impact::sys {

BackgroundNoise::BackgroundNoise(NoiseConfig config, MemorySystem& system,
                                 dram::ActorId actor)
    : config_(config), system_(&system), actor_(actor), rng_(config.seed) {
  if (config_.accesses_per_kilocycle > 0.0) {
    // A modest working set spread across the device.
    span_ = system_->vmem().map_pages(actor_, 64);
    system_->warm_span(actor_, span_);
  }
}

void BackgroundNoise::advance(util::Cycle upto) {
  util::check(upto >= frontier_,
              "BackgroundNoise::advance: frontier must not rewind");
  frontier_ = upto;
  if (config_.accesses_per_kilocycle <= 0.0) return;
  const double mean_gap = 1000.0 / config_.accesses_per_kilocycle;
  while (next_event_ <= upto) {
    // Exponential inter-arrival times (Poisson traffic).
    const double gap = -mean_gap * std::log(1.0 - rng_.uniform());
    next_event_ += static_cast<util::Cycle>(std::max(1.0, gap));
    if (next_event_ > upto) break;
    const VAddr target =
        span_.vaddr + rng_.below(span_.bytes / 64) * 64;
    util::Cycle clock = next_event_;
    if (rng_.chance(config_.cached_fraction)) {
      (void)system_->load(actor_, target, clock,
                          /*pc=*/0x9000 + rng_.below(4));
    } else {
      (void)system_->direct_access(actor_, target, clock);
    }
    ++issued_;
  }
}

}  // namespace impact::sys
