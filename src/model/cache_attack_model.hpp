// Analytical upper-bound throughput models for cache-mediated attacks.
//
// §5.1: "For a fair comparison against DRAMA and Streamline, we showcase
// the upper bound of the communication throughput achieved by each attack.
// To calculate their throughput, we use our simulation infrastructure to
// extract parameters such as the LLC hit latency, average LLC miss latency,
// cache lookup latency, cache hit/miss ratio, and feed them in an
// analytical model." This header is that analytical model. The paper
// validates the approach against real-system numbers (Streamline: 1.8 Mb/s
// measured vs 2.7 Mb/s modelled for the smallest LLC); our constants are
// anchored the same way.
#pragma once

#include <cstdint>

#include "util/units.hpp"

namespace impact::model {

/// Parameters extracted from the simulated system (per LLC configuration).
struct ExtractedParams {
  util::Cycle l1_latency = 4;
  util::Cycle l2_latency = 12;
  util::Cycle llc_latency = 32;
  util::Cycle dram_hit_latency = 49;       ///< Row-buffer hit, from the MC.
  util::Cycle dram_conflict_latency = 121; ///< Row-buffer conflict.
  util::Cycle measurement_overhead = 76;   ///< cpuid;rdtscp bracket.
  std::uint32_t llc_ways = 16;
  std::uint32_t mlp = 4;                   ///< Overlap of eviction fills.

  [[nodiscard]] util::Cycle full_lookup() const {
    return l1_latency + l2_latency + llc_latency;
  }
  [[nodiscard]] double dram_avg() const {
    return (static_cast<double>(dram_hit_latency) +
            static_cast<double>(dram_conflict_latency)) /
           2.0;
  }
};

/// Latency (cycles) of displacing one line with an eviction set: the
/// conflicting loads' cache lookups serialize while their DRAM fills
/// overlap up to the MSHR-limited MLP; in steady state the eviction set is
/// mostly cache-resident and roughly one fill misses per round (Figs. 2/3).
[[nodiscard]] double eviction_latency(const ExtractedParams& p);

/// Streamline (Saileshwar et al., ASPLOS'21): flushless cache channel over
/// a shared array. Per-bit cost is dominated by LLC-bound loads/stores of
/// the shared-array slot plus the synchronization-free progress overheads;
/// it scales with LLC lookup latency and loses ground as the LLC grows.
[[nodiscard]] double streamline_cycles_per_bit(const ExtractedParams& p);
[[nodiscard]] double streamline_mbps(const ExtractedParams& p,
                                     util::Frequency freq);

/// Binary-symmetric-channel capacity in Mb/s: raw signalling rate degraded
/// by the error rate's information loss (used to sanity-check reported
/// goodput against information-theoretic capacity).
[[nodiscard]] double bsc_capacity_mbps(double raw_mbps, double error_rate);

}  // namespace impact::model
