#include "model/cache_attack_model.hpp"

#include <cmath>

namespace impact::model {

double eviction_latency(const ExtractedParams& p) {
  // `ways` serialized traversals of the hierarchy plus the overlapped DRAM
  // refills. In steady state the eviction set itself stays resident and the
  // round refills ~1/mlp of the conflicting lines it displaced.
  const double lookups = static_cast<double>(p.llc_ways) *
                         static_cast<double>(p.full_lookup());
  const double fills =
      (static_cast<double>(p.llc_ways) / p.mlp) * 0.25 * p.dram_avg() +
      p.dram_avg();
  return lookups + fills;
}

double streamline_cycles_per_bit(const ExtractedParams& p) {
  // Streamline's sender writes and receiver reads a shared-array slot per
  // bit. Both traverse to the LLC; a calibrated fraction of slots miss to
  // DRAM (the shared array is sized beyond the LLC to force visibility),
  // and the asynchronous protocol adds amortized bookkeeping per bit.
  constexpr double kMissFraction = 0.55;   // Shared-array DRAM visibility.
  constexpr double kBookkeeping = 240.0;   // Amortized sync-free protocol.
  const double traversal = 2.0 * static_cast<double>(p.full_lookup());
  const double memory = 2.0 * kMissFraction * p.dram_avg();
  return kBookkeeping + traversal + memory +
         static_cast<double>(p.measurement_overhead);
}

double streamline_mbps(const ExtractedParams& p, util::Frequency freq) {
  return freq.hz() / streamline_cycles_per_bit(p) / 1e6;
}

double bsc_capacity_mbps(double raw_mbps, double error_rate) {
  if (error_rate <= 0.0) return raw_mbps;
  if (error_rate >= 0.5) return 0.0;
  const double h = -error_rate * std::log2(error_rate) -
                   (1.0 - error_rate) * std::log2(1.0 - error_rate);
  return raw_mbps * (1.0 - h);
}

}  // namespace impact::model
