#include "lab/registry.hpp"

#include <stdexcept>
#include <utility>

namespace impact::lab {

const char* kind_name(Kind kind) {
  switch (kind) {
    case Kind::kFigure: return "figure";
    case Kind::kTable: return "table";
    case Kind::kAblation: return "ablation";
    case Kind::kExtension: return "extension";
    case Kind::kExample: return "example";
    case Kind::kPerf: return "perf";
  }
  return "?";
}

void Registry::add(ExperimentSpec spec) {
  if (spec.name.empty()) {
    throw std::invalid_argument("experiment spec has no name");
  }
  if (!spec.run) {
    throw std::invalid_argument("experiment '" + spec.name +
                                "' has no run body");
  }
  if (specs_.count(spec.name) != 0) {
    throw std::invalid_argument("duplicate experiment name '" + spec.name +
                                "'");
  }
  std::string name = spec.name;
  specs_.emplace(std::move(name), std::move(spec));
}

const ExperimentSpec* Registry::find(std::string_view name) const {
  const auto it = specs_.find(name);
  return it == specs_.end() ? nullptr : &it->second;
}

std::vector<const ExperimentSpec*> Registry::all() const {
  std::vector<const ExperimentSpec*> out;
  out.reserve(specs_.size());
  for (const auto& [name, spec] : specs_) out.push_back(&spec);
  return out;
}

}  // namespace impact::lab
