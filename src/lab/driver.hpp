// Driver: the one shared front end for every experiment.
//
// Two entry points, one execution path. run_named() is what each former
// driver binary's main() shrinks to — look the spec up in the built-in
// registry, parse argv against its schema, wire a Context, run it.
// impact_main() is the `impact` multiplexer the future job server will
// speak to: `impact list [--json] [--filter S]`, `impact describe
// <name>`, `impact run <name> [--smoke] [--param k=v] ...` — the whole
// evaluation matrix runnable from a single process.
#pragma once

#include <string_view>

namespace impact::lab {

/// Runs the built-in experiment `name` with the binary's argv. The body
/// of every thin bench_*/examples shim.
int run_named(std::string_view name, int argc, const char* const* argv);

/// The `impact` multiplexer entry point.
int impact_main(int argc, const char* const* argv);

}  // namespace impact::lab
