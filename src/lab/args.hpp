// The shared command-line vocabulary of every experiment driver.
//
// Before the lab layer existed, each bench_*/examples/* binary hand-rolled
// its own argv loop (bench_sweep_scaling and bench_store both carried the
// same strcmp(argv[i], "--smoke") copy; genome_spy atoi'd a positional;
// quickstart scanned for --trace). Args is that loop written once: the
// four common flags every driver understands (--smoke, --json, --filter,
// --threads), declared-parameter overrides (--param k=v or --<name> v for
// any parameter the experiment's spec declares), positional binding, and
// an opt-in passthrough lane for specs that wrap an external harness with
// its own flags (Google Benchmark).
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace impact::lab {

struct ExperimentSpec;

/// Parsed driver arguments. `params` holds only explicit overrides;
/// resolution against the spec's declared defaults happens in
/// lab::Context.
struct Args {
  /// Reduced-scale run (CI-friendly): the flag formerly duplicated
  /// across the bench drivers.
  bool smoke = false;
  /// Machine-readable output where a command offers it (`impact list`).
  bool json = false;
  /// Substring/benchmark filter (`impact list --filter fig`, forwarded
  /// as --benchmark_filter by the microbench spec).
  std::string filter;
  /// Worker-thread override; 0 keeps the IMPACT_THREADS/-hardware
  /// default of exec::ThreadPool.
  unsigned threads = 0;
  /// Declared-parameter overrides, by parameter name.
  std::map<std::string, std::string, std::less<>> params;
  /// Unrecognized arguments, preserved in order — only populated when the
  /// spec sets `accepts_extra_args` (Google Benchmark passthrough).
  std::vector<std::string> extra;
};

/// Parses `argv[1..argc)` against `spec`. Returns false and fills
/// `error` on the first unknown flag, missing value, undeclared
/// parameter, or surplus positional argument. Accepted forms:
///   --smoke --json --filter V|--filter=V --threads N|--threads=N
///   --param k=v|--param=k=v       (k must be declared by the spec)
///   --<name> V|--<name>=V         (any declared parameter name)
///   bare words                    (bound to spec.positional in order)
[[nodiscard]] bool parse_args(const ExperimentSpec& spec, int argc,
                              const char* const* argv, Args& out,
                              std::string& error);

/// The old hand-rolled loop, as a one-liner for code that only needs one
/// flag and has no spec to parse against.
[[nodiscard]] bool has_flag(int argc, const char* const* argv,
                            std::string_view flag);

}  // namespace impact::lab
