// Installs every built-in experiment into a Registry. Registration is
// explicit (no static self-registration): a static-library TU with only a
// global registrar object would be dropped by the linker, and simlint's
// global-state rule forbids the mutable file-scope registry such schemes
// need. The price is this one list; the payoff is that linking any
// register function pulls in exactly the experiments asked for.
#include "lab/experiments.hpp"
#include "lab/registry.hpp"

namespace impact::lab {

void register_builtin(Registry& r) {
  // Paper figures.
  register_fig2(r);
  register_fig3(r);
  register_fig7(r);
  register_fig8(r);
  register_fig9(r);
  register_fig10(r);
  register_fig11(r);
  // Paper table and single-figure studies.
  register_table1(r);
  register_rowbuffer(r);
  register_completion_attack(r);
  register_mpr_utilization(r);
  register_rm_offload(r);
  // Ablations.
  register_ablation_camouflage(r);
  register_ablation_faults(r);
  register_ablation_noise(r);
  register_ablation_sweep(r);
  register_ablation_timeout(r);
  // Harness performance benchmarks.
  register_sweep_scaling(r);
  register_store(r);
  register_simulator_perf(r);
  // Walkthrough examples.
  register_quickstart(r);
  register_covert_channel_comparison(r);
  register_defense_tradeoffs(r);
  register_genome_spy(r);
  register_keystroke_spy(r);
  register_rowclone_bulk_copy(r);
}

}  // namespace impact::lab
