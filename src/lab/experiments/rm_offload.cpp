// Context bench: why read mapping gets offloaded to PiM at all (§4.3
// motivation). Replays the mapper's memory-touch trace through (a) the
// PEI path and (b) the CPU cached path, comparing cycles per read — the
// data-movement reduction that makes PiM-accelerated RM attractive is the
// same direct access the side channel exploits.
#include <cstdio>

#include "genomics/mapper.hpp"
#include "lab/context.hpp"
#include "lab/experiments.hpp"
#include "pim/pei.hpp"
#include "sys/system.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace impact::lab {
namespace {

int run_rm_offload(Context&) {
  std::printf("=== bench_rm_offload: read-mapping seeding, PiM vs CPU "
              "===\n\n");

  // Build the reference + table once (pure algorithm).
  // Seed pinned: EXPERIMENTS.md records 1.22/2.49 us-per-read from this exact stream.
  // SIMLINT-ALLOW(nondet-seed): recorded outputs depend on this stream.
  util::Xoshiro256 rng(77);
  const auto genome = genomics::Genome::synthesize(1 << 20, rng);
  genomics::SeedTableConfig table_config;
  const std::uint32_t banks = 1024;
  genomics::SeedTable table(table_config, banks);
  table.build(genome);
  genomics::ReferenceLayout layout{banks, 32, 8192, 8192 * 4};

  // Record the mapper's touch trace for a read batch.
  std::vector<genomics::MemoryTouch> trace;
  genomics::ReadMapper mapper(
      genome, table, layout, genomics::MapperConfig{},
      [&](const genomics::MemoryTouch& t) { trace.push_back(t); });
  const auto reads =
      genomics::sample_reads(genome, 48, genomics::ReadSimConfig{}, rng);
  std::size_t mapped = 0;
  for (const auto& read : reads) mapped += mapper.map(read).mapped;

  // Replay through a PiM device.
  sys::SystemConfig config;
  config.dram.channels = 1;
  config.dram.ranks = 1;
  config.dram.banks_per_rank = banks;
  config.dram.rows_per_bank = 256;
  config.dram.subarray_rows = 256;
  sys::MemorySystem system(config);
  // The hash table is shared memory: actor 1 maps each row once and the
  // CPU-path actor (2) maps the same frames via shared mappings.
  auto vaddr_of = [&, cache = std::unordered_map<std::uint64_t,
                                                 sys::VAddr>{}](
                      const genomics::TableLocation& loc) mutable {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(loc.bank) << 32) | loc.row;
    auto it = cache.find(key);
    if (it == cache.end()) {
      const auto span = system.vmem().map_row(1, loc.bank, loc.row);
      system.vmem().share(1, 2, span);
      system.warm_span(1, span);
      system.warm_span(2, span);
      it = cache.emplace(key, span.vaddr).first;
    }
    return it->second + loc.col;
  };

  pim::PeiDispatcher pei(pim::PeiConfig{}, system, 1);
  util::Cycle pim_clock = 0;
  for (const auto& t : trace) {
    pim_clock += 40;  // Hashing / bookkeeping between offloads.
    (void)pei.execute(vaddr_of(t.location), pim_clock);
  }

  util::Cycle cpu_clock = 0;
  for (const auto& t : trace) {
    cpu_clock += 40;
    (void)system.load(2, vaddr_of(t.location), cpu_clock,
                      /*pc=*/t.bucket % 7);
  }

  util::Table out({"path", "cycles total", "cycles/read", "us/read"});
  const double n = static_cast<double>(reads.size());
  out.add_row({"PiM (PEI offload)", util::Table::num(pim_clock, 0),
               util::Table::num(pim_clock / n, 0),
               util::Table::num(pim_clock / n / 2600.0, 2)});
  out.add_row({"CPU (cached loads)", util::Table::num(cpu_clock, 0),
               util::Table::num(cpu_clock / n, 0),
               util::Table::num(cpu_clock / n / 2600.0, 2)});
  std::printf("reads mapped: %zu/%zu, DRAM-visible touches: %zu\n\n",
              mapped, reads.size(), trace.size());
  std::printf("%s\n", out.render().c_str());
  std::printf("Seeding's hash-table probes have no reuse, so the cache\n"
              "hierarchy only adds lookup latency and pollution: the PiM\n"
              "path wins — and hands user space the direct DRAM access\n"
              "IMPACT weaponizes.\n");
  return 0;
}

}  // namespace

void register_rm_offload(Registry& r) {
  ExperimentSpec spec;
  spec.name = "rm_offload";
  spec.binary = "bench_rm_offload";
  spec.description =
      "Read-mapping seeding offload comparison: PEI path vs CPU cached "
      "path, cycles per read";
  spec.kind = Kind::kExtension;
  spec.run = run_rm_offload;
  r.add(std::move(spec));
}

}  // namespace impact::lab
