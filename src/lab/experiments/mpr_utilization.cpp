// Quantifying §6's qualitative MPR drawbacks: app-count limits, memory
// underutilization from bank-granular allocation, and duplication of
// shared data (an extension — the paper discusses but does not measure
// these).
#include <cstdio>
#include <vector>

#include "defense/mpr_model.hpp"
#include "lab/context.hpp"
#include "lab/experiments.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace impact::lab {
namespace {

int run_mpr_utilization(Context&) {
  std::printf("=== bench_mpr_utilization: the price of bank partitioning "
              "===\n\n");

  dram::DramConfig device;  // Table 2: 64 banks x 512 MiB.
  std::printf("device: %u banks x %llu MiB per bank\n\n",
              device.total_banks(),
              static_cast<unsigned long long>(device.bank_bytes() >> 20));

  util::Table table({"apps requested", "mean footprint", "admitted (MPR)",
                     "utilization (MPR)", "duplication",
                     "utilization (shared)"});

  // Seed pinned: EXPERIMENTS.md records the 27-of-64 admission table from this stream.
  // SIMLINT-ALLOW(nondet-seed): recorded outputs depend on this stream.
  util::Xoshiro256 rng(71);
  for (const std::uint32_t napps : {8u, 16u, 32u, 64u, 128u}) {
    std::vector<defense::AppDemand> apps;
    std::uint64_t footprint_sum = 0;
    for (std::uint32_t i = 0; i < napps; ++i) {
      defense::AppDemand app;
      // Private footprints from 32 MiB to 1.5 GiB, plus a 256 MiB shared
      // input (the Fig. 11 scenario: instances sharing one graph).
      app.private_bytes = (32ull + rng.below(1504)) << 20;
      app.shared_bytes = 256ull << 20;
      footprint_sum += app.private_bytes + app.shared_bytes;
      apps.push_back(app);
    }
    const auto mpr = defense::evaluate_mpr(device, apps);
    const auto shared = defense::evaluate_unpartitioned(device, apps);
    table.add_row(
        {std::to_string(napps),
         util::Table::num(static_cast<double>(footprint_sum / napps >> 20),
                          0) +
             " MiB",
         std::to_string(mpr.apps_admitted) + "/" + std::to_string(napps),
         util::Table::num(100.0 * mpr.utilization(), 1) + "%",
         util::Table::num(
             static_cast<double>(mpr.duplication_bytes >> 20), 0) +
             " MiB",
         util::Table::num(100.0 * shared.utilization(), 1) + "%"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Bank-granular exclusive allocation rejects applications once banks\n"
      "run out, strands capacity inside partially used banks, and forces\n"
      "per-app copies of shared data — the three §6 drawbacks, measured.\n");
  return 0;
}

}  // namespace

void register_mpr_utilization(Registry& r) {
  ExperimentSpec spec;
  spec.name = "mpr_utilization";
  spec.binary = "bench_mpr_utilization";
  spec.description =
      "MPR bank-partitioning cost model: admission limits, stranded "
      "capacity, shared-data duplication";
  spec.kind = Kind::kExtension;
  spec.run = run_mpr_utilization;
  r.add(std::move(spec));
}

}  // namespace impact::lab
