// Table 1: efficiency and effectiveness of attack primitives.
//
// The paper's qualitative matrix, backed here by measured quantities from
// the simulated system: the per-use latency of each primitive on the path
// to a DRAM row activation, the number of memory requests it issues, and
// the residual timing margin (conflict minus no-conflict latency as seen
// through the primitive).
//
// One cell per primitive, run through the store::CellRunner: each cell
// builds its own MemorySystem and renders its finished table row, so the
// rows replay from the ResultCache when warm — output identical to the
// old serial loop either way.
#include <cstdio>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "lab/context.hpp"
#include "lab/experiments.hpp"
#include "pim/pei.hpp"
#include "sys/system.hpp"
#include "util/table.hpp"

namespace impact::lab {
namespace {

/// Measures (cost, margin) of reaching a DRAM activation through one
/// primitive. `access(v, clock)` must perform ONE primitive use that ends
/// in a memory request for `v` (including any displacement the primitive
/// needs so the request actually reaches DRAM).
template <typename Access>
std::pair<double, double> measure(Access access, sys::VAddr target,
                                  sys::VAddr disturber) {
  util::Cycle clock = 0;
  double hit_total = 0;
  double conflict_total = 0;
  constexpr int kIters = 64;
  access(target, clock);  // Open the target row once.
  for (int i = 0; i < kIters; ++i) {
    // No-interference case: target row still open.
    const util::Cycle c0 = clock;
    access(target, clock);
    hit_total += static_cast<double>(clock - c0);
    // Interference, then the conflicting re-access.
    access(disturber, clock);
    const util::Cycle c1 = clock;
    access(target, clock);
    conflict_total += static_cast<double>(clock - c1);
  }
  return {hit_total / kIters, (conflict_total - hit_total) / kIters};
}

/// Two rows in the same bank: `target` is probed, `disturber` causes the
/// row conflict.
std::pair<sys::VAddr, sys::VAddr> make_rows(sys::MemorySystem& system) {
  const auto a = system.vmem().map_row(1, 2, 10);
  const auto b = system.vmem().map_row(1, 2, 11);
  system.warm_span(1, a);
  system.warm_span(1, b);
  return {a.vaddr, b.vaddr};
}

/// Renders one finished table row from a primitive's verdicts + measures.
std::vector<std::string> render_row(const char* name, const char* no_lookup,
                                    const char* few_accesses,
                                    const char* detectability,
                                    const char* isa_guarantee, double cost,
                                    double margin) {
  return {name,          no_lookup,
          few_accesses,  detectability,
          isa_guarantee, util::Table::num(cost, 0),
          util::Table::num(margin, 0)};
}

constexpr const char* kPrimitives[] = {"clflush", "eviction", "dma",
                                       "nontemporal", "pim"};

int run_table1(Context& ctx) {
  sys::SystemConfig config;
  std::printf("=== bench_table1: attack primitive comparison ===\n%s\n",
              config.describe().c_str());

  constexpr std::size_t kCells = std::size(kPrimitives);

  store::CellRunner& runner = ctx.runner();
  const auto result = runner.rows(
      "table1.primitives", kCells,
      [&](std::size_t i) {
        store::Canon c;
        c.field("cell", "table1.primitive");
        c.field("primitive", kPrimitives[i]);
        c.object("system", store::canon_of(config));
        return c.fingerprint();
      },
      [&](std::size_t i) -> std::vector<std::string> {
        switch (i) {
          case 0: {  // clflush + reload.
            sys::MemorySystem system(config);
            auto [t, d] = make_rows(system);
            auto [cost, margin] = measure(
                [&](sys::VAddr v, util::Cycle& c) {
                  (void)system.clflush(1, v, c);
                  c += 20;  // mfence.
                  (void)system.load(1, v, c);
                },
                t, d);
            return render_row("Specialized instructions (clflush)", "no",
                              "yes", "yes", "yes", cost, margin);
          }
          case 1: {  // Eviction sets.
            sys::SystemConfig evict_cfg = config;
            evict_cfg.mapping = dram::MappingScheme::kXorBankHash;
            sys::MemorySystem system(evict_cfg);
            auto [t, d] = make_rows(system);
            auto [cost, margin] = measure(
                [&](sys::VAddr v, util::Cycle& c) {
                  (void)system.evict(1, v, c);
                  (void)system.load(1, v, c);
                },
                t, d);
            return render_row("Eviction sets", "no", "no", "yes", "no", cost,
                              margin);
          }
          case 2: {  // DMA engine.
            sys::MemorySystem system(config);
            auto [t, d] = make_rows(system);
            auto [cost, margin] = measure(
                [&](sys::VAddr v, util::Cycle& c) {
                  (void)system.dma_access(1, v, c);
                },
                t, d);
            return render_row("DMA / R-DMA", "yes", "yes", "no", "n/a", cost,
                              margin);
          }
          case 3: {  // Non-temporal hints.
            sys::MemorySystem system(config);
            auto [t, d] = make_rows(system);
            auto [cost, margin] = measure(
                [&](sys::VAddr v, util::Cycle& c) {
                  c += system.hierarchy(1).store_nontemporal(
                      system.vmem().translate(1, v), c);
                },
                t, d);
            return render_row("Non-temporal memory hints", "no", "yes",
                              "yes", "no", cost, margin);
          }
          default: {  // PiM operations (PEI).
            sys::MemorySystem system(config);
            auto [t, d] = make_rows(system);
            pim::PeiDispatcher pei(pim::PeiConfig{}, system, 1);
            auto [cost, margin] = measure(
                [&](sys::VAddr v, util::Cycle& c) {
                  const auto col = pei.next_bypass_column(8192, 64);
                  (void)pei.execute(v + col, c);
                },
                t, d);
            return render_row("PiM operations", "yes", "yes", "yes", "yes",
                              cost, margin);
          }
        }
      });
  if (!result.ok()) {
    std::printf("sweep failed: %s\n", result.report.summary().c_str());
    return 1;
  }

  util::Table table({"primitive", "no cache lookup", "no excessive accesses",
                     "detectable margin", "ISA guarantee",
                     "cycles/activation", "margin (cyc)"});
  for (const auto& row : result.rows) table.add_row(row);
  std::printf("%s\n", table.render().c_str());
  std::printf("Paper's Table 1 verdicts are reproduced qualitatively; the\n"
              "two measured columns ground them: PiM reaches a row\n"
              "activation cheapest while preserving the full tRP margin.\n");
  return 0;
}

}  // namespace

void register_table1(Registry& r) {
  ExperimentSpec spec;
  spec.name = "table1";
  spec.binary = "bench_table1";
  spec.description =
      "Attack-primitive comparison: measured cycles/activation and timing "
      "margin per primitive";
  spec.kind = Kind::kTable;
  spec.cell_count = [](const Context&) { return std::size(kPrimitives); };
  spec.run = run_table1;
  r.add(std::move(spec));
}

}  // namespace impact::lab
