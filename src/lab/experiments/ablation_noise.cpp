// Ablation: channel robustness under background system load, and what
// error-correcting codes buy the attacker (extension beyond the paper's
// quiet-system evaluation).
//
// A Poisson background process issues DRAM traffic at increasing rates;
// IMPACT-PnM's raw error rate rises with the load, and the attacker's
// standard countermeasures (repetition / Hamming coding) trade rate for
// residual-error suppression.
#include <cstdio>

#include "attacks/impact_pnm.hpp"
#include "channel/coding.hpp"
#include "lab/context.hpp"
#include "lab/experiments.hpp"
#include "sys/noise.hpp"
#include "sys/system.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace impact::lab {
namespace {

int run_ablation_noise(Context&) {
  std::printf("=== bench_ablation_noise: IMPACT-PnM under background load "
              "===\n\n");

  util::Table table({"noise (acc/kcyc)", "raw error", "uncoded goodput",
                     "rep-3 residual", "rep-3 goodput", "H(7,4) residual",
                     "H(7,4) goodput"});

  for (const double rate : {0.0, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    sys::SystemConfig config;
    sys::MemorySystem system(config);
    sys::NoiseConfig noise_config;
    noise_config.accesses_per_kilocycle = rate;
    sys::BackgroundNoise noise(noise_config, system, /*actor=*/42);
    attacks::ImpactPnm attack(system);
    attack.set_noise(&noise);

    // Seed pinned: stream shared with the ablation_faults experiment; tables recorded in EXPERIMENTS.md.
    // SIMLINT-ALLOW(nondet-seed): recorded outputs depend on this stream.
    util::Xoshiro256 rng(51);
    const auto message = util::BitVec::random(256, rng);

    const auto uncoded = channel::transmit_coded(
        attack, message, channel::CodeKind::kNone, config.frequency());
    const auto rep = channel::transmit_coded(
        attack, message, channel::CodeKind::kRepetition3,
        config.frequency());
    const auto ham = channel::transmit_coded(
        attack, message, channel::CodeKind::kHamming74,
        config.frequency());

    table.add_row(
        {util::Table::num(rate, 1),
         util::Table::num(100.0 * uncoded.raw_error_rate, 2) + "%",
         util::Table::num(uncoded.goodput_mbps) + " Mb/s",
         std::to_string(rep.residual_errors),
         util::Table::num(rep.goodput_mbps) + " Mb/s",
         std::to_string(ham.residual_errors),
         util::Table::num(ham.goodput_mbps) + " Mb/s"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Coding keeps the channel usable under load: repetition-3\n"
              "suppresses residual errors at 1/3 rate; Hamming(7,4) at 4/7\n"
              "rate corrects isolated flips.\n");
  return 0;
}

}  // namespace

void register_ablation_noise(Registry& r) {
  ExperimentSpec spec;
  spec.name = "ablation_noise";
  spec.binary = "bench_ablation_noise";
  spec.description =
      "IMPACT-PnM under Poisson background load: raw error vs "
      "repetition/Hamming coding trade-offs";
  spec.kind = Kind::kAblation;
  spec.run = run_ablation_noise;
  r.add(std::move(spec));
}

}  // namespace impact::lab
