// Ablation: recovery strategies under injected faults (the robustness
// extension's headline table, docs/robustness.md).
//
// A scaled fault profile (DRAM jitter + refresh storms + dropped semaphore
// posts) perturbs IMPACT-PnM on top of a fixed Poisson background load.
// Three attacker strategies compete:
//   * coded only   — Hamming(7,4), no feedback: residual errors survive,
//   * framed only  — CRC-8 frames + ACK/NACK retransmission: zero residual
//                    at the cost of retransmissions,
//   * framed+coded — the inner code absorbs isolated flips so the framed
//                    layer retries less often.
//
// Each fault scale is one independent cell (its own system, injector, and
// RNG), run through the store::CellRunner: cells fingerprint their full
// configuration — including the fault profile — and replay from the
// ResultCache when warm.
#include <cstdio>
#include <string>
#include <vector>

#include "attacks/impact_pnm.hpp"
#include "channel/coding.hpp"
#include "channel/protocol.hpp"
#include "fault/injector.hpp"
#include "lab/context.hpp"
#include "lab/experiments.hpp"
#include "sys/noise.hpp"
#include "sys/system.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace impact::lab {
namespace {

std::vector<fault::FaultConfig> fault_profile(double scale) {
  return {
      {fault::FaultKind::kDramJitter, 0.01 * scale, 400, 0, ~0ull},
      {fault::FaultKind::kRefreshStorm, 0.005 * scale, 0, 0, ~0ull},
      {fault::FaultKind::kSemaphoreDrop, 0.05 * scale, 0, 0, ~0ull},
  };
}

const std::vector<double>& fault_scales() {
  static const std::vector<double> scales = {0.0, 0.5, 1.0, 2.0, 4.0};
  return scales;
}

int run_ablation_faults(Context& ctx) {
  std::printf("=== bench_ablation_faults: recovery strategies under "
              "injected faults ===\n\n");

  const std::vector<double>& scales = fault_scales();

  store::CellRunner& runner = ctx.runner();
  const auto result = runner.rows(
      "ablation.faults", scales.size(),
      [&](std::size_t i) {
        sys::SystemConfig config;
        store::Canon c;
        c.field("cell", "ablation.faults");
        c.object("system", store::canon_of(config));
        c.field("scale", scales[i]);
        c.field("noise_apk", 1.0);
        c.object("faults", store::canon_of(std::span<const fault::FaultConfig>(
                               fault_profile(scales[i]))));
        c.field("injector_seed", std::uint64_t{90210});
        c.field("message_seed", std::uint64_t{51});
        c.field("message_bits", std::uint64_t{256});
        return c.fingerprint();
      },
      [&](std::size_t i) {
        const double scale = scales[i];
        sys::SystemConfig config;
        sys::MemorySystem system(config);
        // Baseline perturbation: a fixed background load, so the fault
        // scale is measured on top of realistic ambient traffic, not a
        // silent box.
        sys::NoiseConfig noise_config;
        noise_config.accesses_per_kilocycle = 1.0;
        sys::BackgroundNoise noise(noise_config, system, /*actor=*/42);
        attacks::ImpactPnm attack(system);
        attack.set_noise(&noise);
        (void)attack.transmit(util::BitVec::alternating(16));  // Calibrate.

        std::vector<fault::FaultConfig> faults = fault_profile(scale);
        fault::Injector injector(90210, faults);
        system.set_fault_injector(&injector);

        // Seed pinned: stream shared with bench_ablation_noise;
        // EXPERIMENTS.md records 4/13 residuals.
        // SIMLINT-ALLOW(nondet-seed): recorded outputs depend on stream.
        util::Xoshiro256 rng(51);
        const auto message = util::BitVec::random(256, rng);

        const auto coded = channel::transmit_coded(
            attack, message, channel::CodeKind::kHamming74,
            config.frequency());

        channel::ProtocolConfig framed_config;
        framed_config.payload_bits = 16;
        framed_config.max_retries = 16;
        channel::FramedProtocol framed(attack, framed_config);
        const auto framed_r = framed.send(message);

        channel::ProtocolConfig both_config = framed_config;
        both_config.code = channel::CodeKind::kHamming74;
        channel::FramedProtocol both(attack, both_config);
        const auto both_r = both.send(message);

        const double residual_ber =
            static_cast<double>(framed_r.residual_errors +
                                both_r.residual_errors) /
            static_cast<double>(2 * message.size());
        return std::vector<std::string>{
            util::Table::num(scale, 1),
            util::Table::num(100.0 * framed_r.raw_error_rate(), 2) + "%",
            std::to_string(coded.residual_errors),
            util::Table::num(framed_r.goodput_mbps(config.frequency())) +
                " Mb/s",
            std::to_string(framed_r.retransmissions),
            util::Table::num(both_r.goodput_mbps(config.frequency())) +
                " Mb/s",
            std::to_string(both_r.retransmissions),
            util::Table::num(100.0 * residual_ber, 3) + "%"};
      });
  if (!result.ok()) {
    std::printf("sweep failed: %s\n", result.report.summary().c_str());
    return 1;
  }
  std::fputs(render_ablation_faults(result.rows).c_str(), stdout);
  return 0;
}

}  // namespace

std::string render_ablation_faults(
    const std::vector<std::vector<std::string>>& rows) {
  util::Table table({"fault scale", "raw error", "H(7,4) residual",
                     "framed goodput", "framed retx", "framed+H74 goodput",
                     "framed+H74 retx", "residual BER"});
  for (const auto& row : rows) table.add_row(row);
  std::string out = table.render();
  out += '\n';
  out +=
      "Coding alone leaves residual errors once faults cluster; framing\n"
      "alone recovers everything but pays a retransmission per corrupted\n"
      "frame; the inner code under the framed layer absorbs isolated flips\n"
      "and keeps the retry budget for the bursts.\n";
  return out;
}

void register_ablation_faults(Registry& r) {
  ExperimentSpec spec;
  spec.name = "ablation_faults";
  spec.binary = "bench_ablation_faults";
  spec.description =
      "Recovery strategies (coded / framed / framed+coded) under scaled "
      "fault injection";
  spec.kind = Kind::kAblation;
  spec.cell_count = [](const Context&) { return fault_scales().size(); };
  spec.run = run_ablation_faults;
  r.add(std::move(spec));
}

}  // namespace impact::lab
