// Ablation: a victim-side camouflage defense for PiM-accelerated read
// mapping (extension, in the spirit of the access-pattern-obfuscation
// defenses the paper's §7 surveys: DAGguise, InvisiMem/ObfusMem).
//
// For every real seed-table probe the victim issues d dummy probes to
// uniformly random banks. The attacker's positive observations stop
// correlating with real lookups while the victim pays a proportional
// slowdown — the privacy/performance frontier, measured.
#include <cstdio>

#include "attacks/side_channel.hpp"
#include "lab/context.hpp"
#include "lab/experiments.hpp"
#include "util/table.hpp"

namespace impact::lab {
namespace {

int run_ablation_camouflage(Context&) {
  std::printf("=== bench_ablation_camouflage: dummy-probe obfuscation vs "
              "the RM side channel ===\n(1024-bank device)\n\n");

  util::Table table({"dummies/probe", "attacker error", "probe tput (Mb/s)",
                     "event capture (Mb/s)", "victim slowdown"});
  for (const std::uint32_t d : {0u, 1u, 2u, 4u, 8u}) {
    attacks::SideChannelConfig config;
    config.banks = 1024;
    config.reads = 32;
    config.dummy_probes_per_touch = d;
    attacks::ReadMappingSpy spy(config);
    const auto r = spy.run();
    table.add_row(
        {std::to_string(d),
         util::Table::num(100.0 * r.probes.error_rate(), 1) + "%",
         util::Table::num(r.probes.throughput_mbps(2.6)),
         util::Table::num(r.capture_throughput_mbps(2.6)),
         util::Table::num(r.victim_slowdown, 2) + "x"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Each dummy probe is indistinguishable from a real lookup, so the\n"
      "attacker's positives stop identifying the sample genome's buckets;\n"
      "the cost is the victim's own slowdown — cheaper than CTD for the\n"
      "rest of the system (only the protected application pays), which is\n"
      "the practical niche the paper's defense discussion leaves open.\n");
  return 0;
}

}  // namespace

void register_ablation_camouflage(Registry& r) {
  ExperimentSpec spec;
  spec.name = "ablation_camouflage";
  spec.binary = "bench_ablation_camouflage";
  spec.description =
      "Victim-side dummy-probe obfuscation vs the read-mapping side "
      "channel: privacy/performance frontier";
  spec.kind = Kind::kAblation;
  spec.run = run_ablation_camouflage;
  r.add(std::move(spec));
}

}  // namespace impact::lab
