// Google-benchmark microbenchmarks of the simulator itself: how fast the
// substrate executes simulated operations (useful when sizing experiments,
// not a paper figure).
//
// The BENCHMARK registrations live in this TU so that linking the
// experiment's register function (referenced by register_builtin) pulls
// them in; run_simulator_perf then plays the role BENCHMARK_MAIN() played
// in the old standalone binary, forwarding any --benchmark_* flags the
// caller passed through (Args::extra).
#include <benchmark/benchmark.h>

#include <cstddef>
#include <string>
#include <vector>

#include "attacks/impact_pnm.hpp"
#include "cache/cache.hpp"
#include "channel/protocol.hpp"
#include "cache/hierarchy.hpp"
#include "dram/access_batch.hpp"
#include "dram/controller.hpp"
#include "exec/sweep.hpp"
#include "graph/multiprog.hpp"
#include "lab/context.hpp"
#include "lab/experiments.hpp"
#include "pim/pei.hpp"
#include "sys/system.hpp"
#include "sys/tlb.hpp"
#include "util/rng.hpp"

namespace impact::lab {
namespace {

// Every RNG stream in this driver derives from one base seed via
// exec::derive_seed (the nondet-seed contract; see
// docs/static-analysis.md, rule nondet-seed). The stream index keeps
// the pre-derive_seed seed constant greppable.
constexpr std::uint64_t kSeedBase = 0x5eed;

void BM_DramAccess(benchmark::State& state) {
  dram::DramConfig config;
  dram::MemoryController mc(config);
  util::Xoshiro256 rng(exec::derive_seed(kSeedBase, 1));
  util::Cycle clock = 0;
  for (auto _ : state) {
    const auto addr = rng.below(config.capacity_bytes());
    benchmark::DoNotOptimize(mc.access(addr, clock));
    clock += 100;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DramAccess);

void BM_HierarchyAccess(benchmark::State& state) {
  dram::DramConfig dram_config;
  dram::MemoryController mc(dram_config);
  cache::Hierarchy hierarchy(cache::HierarchyConfig::table2(), mc);
  util::Xoshiro256 rng(exec::derive_seed(kSeedBase, 2));
  util::Cycle clock = 0;
  const std::uint64_t ws = 64ull << 20;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hierarchy.access(rng.below(ws), clock));
    clock += 20;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HierarchyAccess);

void BM_PeiExecute(benchmark::State& state) {
  sys::SystemConfig config;
  sys::MemorySystem system(config);
  const auto span = system.vmem().map_row(1, 0, 10);
  system.warm_span(1, span);
  pim::PeiDispatcher pei(pim::PeiConfig{}, system, 1);
  util::Cycle clock = 0;
  for (auto _ : state) {
    const auto col = pei.next_bypass_column(8192, 64);
    benchmark::DoNotOptimize(pei.execute(span.vaddr + col, clock));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PeiExecute);

void BM_CovertChannelBit(benchmark::State& state) {
  sys::SystemConfig config;
  sys::MemorySystem system(config);
  attacks::ImpactPnm attack(system);
  util::Xoshiro256 rng(exec::derive_seed(kSeedBase, 3));
  // Pre-generate the messages: the timed loop should measure transmit(),
  // not BitVec construction. A small pool cycled round-robin keeps the
  // content varied without perturbing the measurement.
  std::vector<util::BitVec> messages;
  messages.reserve(64);
  for (int i = 0; i < 64; ++i) {
    messages.push_back(util::BitVec::random(16, rng));
  }
  // Threshold calibration runs lazily inside the first transmit; one
  // warmup send hoists it so the timed region measures steady-state
  // transmission only.
  (void)attack.transmit(messages[0]);
  std::size_t next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(attack.transmit(messages[next]));
    next = (next + 1) % messages.size();
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * 16));
}
BENCHMARK(BM_CovertChannelBit);

void BM_ProtocolTransmit(benchmark::State& state) {
  // The framed layer on a fault-free channel: BM_CovertChannelBit plus
  // framing, CRC verification, and feedback accounting. The gap between
  // the two is the protocol's pure overhead (acceptance bound: <= 10%).
  sys::SystemConfig config;
  sys::MemorySystem system(config);
  attacks::ImpactPnm attack(system);
  channel::ProtocolConfig protocol_config;
  protocol_config.payload_bits = 16;
  channel::FramedProtocol protocol(attack, protocol_config);
  util::Xoshiro256 rng(exec::derive_seed(kSeedBase, 7));
  std::vector<util::BitVec> messages;
  messages.reserve(64);
  for (int i = 0; i < 64; ++i) {
    messages.push_back(util::BitVec::random(16, rng));
  }
  // As in BM_CovertChannelBit: the underlying channel calibrates on its
  // first use — hoist that out of the timed region with one warmup frame.
  (void)protocol.send(messages[0]);
  std::size_t next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(protocol.send(messages[next]));
    next = (next + 1) % messages.size();
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * 16));
}
BENCHMARK(BM_ProtocolTransmit);

void BM_AccessBatch(benchmark::State& state) {
  // The SoA batch kernel over random streams: items are individual DRAM
  // accesses, so items/s is directly comparable to BM_DramAccess — the
  // gap is the amortized per-access dispatch overhead.
  constexpr std::size_t kBatch = 256;
  dram::DramConfig config;
  dram::MemoryController mc(config);
  util::Xoshiro256 rng(exec::derive_seed(kSeedBase, 8));
  dram::AccessBatch batch;
  batch.reserve(kBatch);
  util::Cycle clock = 0;
  for (auto _ : state) {
    batch.clear();
    for (std::size_t i = 0; i < kBatch; ++i) {
      batch.push(rng.below(config.capacity_bytes()), clock);
      clock += 100;
    }
    mc.access_batch(batch);
    benchmark::DoNotOptimize(batch.latency.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kBatch));
}
BENCHMARK(BM_AccessBatch);

void BM_MultiprogReplay(benchmark::State& state) {
  // Fig. 11's inner loop: two co-scheduled instances replaying one shared
  // trace. The input build (RMAT + trace generation) happens once, outside
  // the timed region; items are replayed trace operations, both instances
  // combined.
  graph::MultiprogConfig config;
  config.rmat_scale = 12;
  config.edge_count = 32768;
  config.system.cache_scale = 512;
  const graph::WorkloadInput input =
      graph::build_input(config, graph::WorkloadKind::kBFS);
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    const auto stats = graph::run_multiprogrammed(
        config, input, dram::RowPolicy::kOpenRow);
    instructions = stats.instructions;
    benchmark::DoNotOptimize(instructions);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() * instructions));
}
BENCHMARK(BM_MultiprogReplay);

// --- Per-level microbenchmarks (PR 3): isolate the flat-layout fast
// paths from the full-hierarchy composite above. ---

void BM_CacheHit(benchmark::State& state) {
  // Table 2 LLC shape; a resident footprint cycled round-robin so every
  // access is a tag hit + replacement promotion.
  cache::Cache c(cache::HierarchyConfig::table2().l3);
  const std::uint64_t resident = 4096;
  for (std::uint64_t l = 0; l < resident; ++l) c.fill(l);
  std::uint64_t next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.access(next, false));
    next = (next + 1) % resident;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheHit);

void BM_CacheMissFill(benchmark::State& state) {
  // Random lines over 8x the capacity: mostly misses, each followed by the
  // known-miss install path (victim selection + eviction bookkeeping).
  cache::Cache c(cache::HierarchyConfig::table2().l3);
  const std::uint64_t lines =
      8 * c.config().size_bytes / c.config().line_bytes;
  util::Xoshiro256 rng(exec::derive_seed(kSeedBase, 4));
  for (auto _ : state) {
    const auto l = rng.below(lines);
    if (!c.access(l, false)) {
      benchmark::DoNotOptimize(c.fill_known_miss(l));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheMissFill);

void BM_EvictViaSet(benchmark::State& state) {
  // The §3.3 eviction-set primitive: one call walks `ways` conflict lines
  // through the LLC. Items = evictions, so items/s is directly comparable
  // across layout changes.
  dram::DramConfig dram_config;
  dram::MemoryController mc(dram_config);
  cache::Hierarchy hierarchy(cache::HierarchyConfig::table2(), mc);
  util::Xoshiro256 rng(exec::derive_seed(kSeedBase, 5));
  util::Cycle clock = 0;
  const std::uint64_t ws = 64ull << 20;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hierarchy.evict_via_set(rng.below(ws), clock));
    clock += 1000;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EvictViaSet);

void BM_TlbLookup(benchmark::State& state) {
  // Translations over a warmed 2 MiB footprint (512 pages): L1-DTLB hits
  // with the occasional L2 fill, the common case on every simulated access.
  sys::Tlb tlb;
  const std::uint64_t pages = 512;
  for (std::uint64_t p = 0; p < pages; ++p) tlb.warm(p << 12);
  util::Xoshiro256 rng(exec::derive_seed(kSeedBase, 6));
  for (auto _ : state) {
    const auto vaddr = (rng.below(pages) << 12) | 0x40;
    benchmark::DoNotOptimize(tlb.translate(vaddr));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TlbLookup);

int run_simulator_perf(Context& ctx) {
  // Reassemble an argv for benchmark::Initialize from the passthrough
  // arguments; --filter maps to --benchmark_filter.
  std::vector<std::string> args;
  args.emplace_back("bench_simulator_perf");
  if (!ctx.args().filter.empty()) {
    args.push_back("--benchmark_filter=" + ctx.args().filter);
  }
  for (const std::string& a : ctx.args().extra) args.push_back(a);
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (std::string& a : args) argv.push_back(a.data());
  int argc = static_cast<int>(argv.size());

  benchmark::Initialize(&argc, argv.data());
  if (benchmark::ReportUnrecognizedArguments(argc, argv.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace

void register_simulator_perf(Registry& r) {
  ExperimentSpec spec;
  spec.name = "simulator_perf";
  spec.binary = "bench_simulator_perf";
  spec.description =
      "Google-benchmark microbenchmarks of the simulation substrate "
      "(DRAM, caches, PEI, channels)";
  spec.kind = Kind::kPerf;
  spec.bench_role = "micro";
  spec.accepts_extra_args = true;
  spec.run = run_simulator_perf;
  r.add(std::move(spec));
}

}  // namespace impact::lab
