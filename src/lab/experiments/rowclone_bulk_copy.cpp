// The benign face of the substrate: RowClone as a bulk data-movement
// accelerator (what PuM is actually *for*), demonstrating the functional
// data model and the latency advantage over the CPU copy path.
//
//   $ impact run rowclone_bulk_copy
#include <cstdio>
#include <vector>

#include "exec/sweep.hpp"
#include "lab/context.hpp"
#include "lab/experiments.hpp"
#include "pim/rowclone.hpp"
#include "sys/system.hpp"
#include "util/rng.hpp"

namespace impact::lab {
namespace {

// Every RNG stream in this driver derives from one base seed via
// exec::derive_seed (the nondet-seed contract; see
// docs/static-analysis.md, rule nondet-seed). The stream index keeps
// the pre-derive_seed seed constant greppable.
constexpr std::uint64_t kSeedBase = 0x5eed;

int run_rowclone_bulk_copy(Context&) {
  sys::SystemConfig config;
  sys::MemorySystem system(config);
  const dram::ActorId app = 1;

  // A source and destination "page pool" spanning every bank at rows 8/9.
  const auto src = system.vmem().map_row_span(app, 8);
  const auto dst = system.vmem().map_row_span(app, 9);
  system.warm_span(app, src);
  system.warm_span(app, dst);

  // Fill the source rows with recognizable data.
  auto* data = system.controller().data();
  util::Xoshiro256 rng(exec::derive_seed(kSeedBase, 2024));
  const std::uint32_t banks = system.controller().banks();
  std::vector<std::uint8_t> payload(64);
  for (std::uint32_t b = 0; b < banks; ++b) {
    for (auto& byte : payload) byte = static_cast<std::uint8_t>(rng());
    data->write(dram::DramAddress{b, 8, 0}, payload);
  }

  // Bulk copy all 64 banks' rows (512 KiB) with ONE masked RowClone.
  pim::RowCloneConfig rc_config;
  rc_config.blocking = true;  // Wait for the copy (a benign app would).
  pim::RowCloneUnit unit(rc_config, system, app);
  util::Cycle pim_clock = 0;
  const auto result = unit.execute(
      pim::RowCloneRequest{src.vaddr, dst.vaddr, ~0ull}, pim_clock);
  std::printf("RowClone: copied %u rows (%u KiB) in %llu cycles "
              "(%.1f ns)\n",
              banks, banks * 8192 / 1024,
              static_cast<unsigned long long>(result.latency),
              static_cast<double>(result.latency) / config.freq_ghz);

  // Verify the data actually moved.
  std::size_t verified = 0;
  std::vector<std::uint8_t> check(8192);
  std::vector<std::uint8_t> expect(8192);
  for (std::uint32_t b = 0; b < banks; ++b) {
    data->read(dram::DramAddress{b, 8, 0}, expect);
    data->read(dram::DramAddress{b, 9, 0}, check);
    if (check == expect) ++verified;
  }
  std::printf("verified %zu/%u rows byte-identical\n", verified, banks);

  // CPU copy path for comparison: load + store per cache line through the
  // cache hierarchy.
  util::Cycle cpu_clock = 0;
  for (std::uint64_t off = 0; off < src.bytes; off += 64) {
    (void)system.load(app, src.vaddr + off, cpu_clock, /*pc=*/1);
    (void)system.store(app, dst.vaddr + off, cpu_clock, /*pc=*/2);
  }
  std::printf("CPU copy of the same data: %llu cycles -> RowClone is "
              "%.0fx faster\n",
              static_cast<unsigned long long>(cpu_clock),
              static_cast<double>(cpu_clock) /
                  static_cast<double>(result.latency));
  std::printf("\n(The same parallel single-command reach over all banks is\n"
              "what IMPACT-PuM turns into a 16-bit-per-operation covert\n"
              "channel.)\n");
  return 0;
}

}  // namespace

void register_rowclone_bulk_copy(Registry& r) {
  ExperimentSpec spec;
  spec.name = "rowclone_bulk_copy";
  spec.binary = "rowclone_bulk_copy";
  spec.description =
      "RowClone as a benign bulk-copy accelerator vs the CPU copy path";
  spec.kind = Kind::kExample;
  spec.run = run_rowclone_bulk_copy;
  r.add(std::move(spec));
}

}  // namespace impact::lab
