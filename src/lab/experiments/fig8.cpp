// Fig. 8: covert-channel throughput of all seven comparison attacks across
// LLC sizes (2 - 64 MB).
//
// Headline numbers being reproduced: IMPACT-PnM 12.87 Mb/s and IMPACT-PuM
// 14.16 Mb/s flat across sizes (up to 4.91x / 5.41x over DRAMA-clflush);
// DMA ~5.27 Mb/s flat; PnM-OffChip 12.64 -> 10.64 Mb/s as the LLC grows;
// DRAMA and Streamline falling with LLC size.
#include <cstdio>
#include <vector>

#include <memory>

#include "attacks/registry.hpp"
#include "cache/latency_model.hpp"
#include "lab/context.hpp"
#include "lab/experiments.hpp"
#include "model/cache_attack_model.hpp"
#include "sys/system.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace impact::lab {
namespace {

int run_fig8(Context&) {
  std::printf("=== bench_fig8: attack throughput across LLC sizes ===\n\n");

  const std::vector<std::uint64_t> sizes_mb = {2, 4, 8, 16, 32, 64};
  std::vector<std::string> headers = {"attack"};
  for (auto mb : sizes_mb) headers.push_back(std::to_string(mb) + " MB");
  util::Table table(headers);
  std::unique_ptr<util::CsvWriter> csv;
  if (const auto dir = util::CsvWriter::results_dir_from_env()) {
    csv = std::make_unique<util::CsvWriter>(
        *dir, "fig8",
        std::vector<std::string>{"attack", "llc_mb", "throughput_mbps",
                                 "error_rate"});
  }

  double pnm_best = 0.0;
  double pum_best = 0.0;
  double clflush_worst = 1e9;

  for (const auto kind : attacks::kFig8Attacks) {
    std::vector<std::string> row = {attacks::to_string(kind)};
    for (const auto mb : sizes_mb) {
      sys::SystemConfig cfg;
      cfg.llc_bytes = mb << 20;
      cfg.mapping = attacks::recommended_mapping(kind);
      sys::MemorySystem system(cfg);
      auto attack = attacks::make_attack(kind, system);
      const auto report = attack->measure(64, 12, 21);
      const double mbps = report.throughput_mbps(cfg.frequency());
      row.push_back(util::Table::num(mbps));
      if (csv) {
        csv->add_row({attacks::to_string(kind), std::to_string(mb),
                      util::Table::num(mbps, 4),
                      util::Table::num(report.error_rate(), 5)});
      }
      if (kind == attacks::AttackKind::kImpactPnm) {
        pnm_best = std::max(pnm_best, mbps);
      }
      if (kind == attacks::AttackKind::kImpactPum) {
        pum_best = std::max(pum_best, mbps);
      }
      if (kind == attacks::AttackKind::kDramaClflush) {
        clflush_worst = std::min(clflush_worst, mbps);
      }
    }
    table.add_row(row);
  }

  // Streamline: analytical upper bound, per the paper's own methodology.
  {
    const cache::LlcLatencyModel llc_model;
    std::vector<std::string> row = {"Streamline (model)"};
    for (const auto mb : sizes_mb) {
      model::ExtractedParams p;
      p.llc_latency = llc_model.latency(mb << 20, 16);
      row.push_back(util::Table::num(
          model::streamline_mbps(p, util::kDefaultFrequency)));
    }
    table.add_row(row);
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("IMPACT-PnM peak: %.2f Mb/s (paper 12.87)\n", pnm_best);
  std::printf("IMPACT-PuM peak: %.2f Mb/s (paper 14.16)\n", pum_best);
  std::printf("IMPACT-PnM / DRAMA-clflush (worst case): %.2fx "
              "(paper: up to 4.91x)\n",
              pnm_best / clflush_worst);
  std::printf("IMPACT-PuM / DRAMA-clflush (worst case): %.2fx "
              "(paper: up to 5.41x)\n",
              pum_best / clflush_worst);
  return 0;
}

}  // namespace

void register_fig8(Registry& r) {
  ExperimentSpec spec;
  spec.name = "fig8";
  spec.binary = "bench_fig8";
  spec.description =
      "Throughput of all seven comparison attacks across LLC sizes "
      "(2-64 MB), plus the Streamline model bound";
  spec.kind = Kind::kFigure;
  spec.run = run_fig8;
  r.add(std::move(spec));
}

}  // namespace impact::lab
