// Wall-clock scaling of the sweep engine on the Fig. 11 defense matrix:
// the same grid evaluated serially and through a ThreadPool, with the
// per-cell results checked bit-for-bit against the serial reference.
//
//   $ impact run sweep_scaling             # full Fig. 11 scale
//   $ impact run sweep_scaling --smoke     # reduced scale (CI-friendly)
//   $ IMPACT_THREADS=8 impact run sweep_scaling
//
// Prints a human-readable summary to stderr and one JSON object to stdout
// (consumed by tools/bench.sh when assembling BENCH_simulator.json).
//
// This experiment measures the harness itself, so it legitimately reads
// host clocks — the SIMLINT-ALLOW suppressions below are the documented
// exception to the nondet-wallclock/nondet-chrono-clock rules: wall and
// CPU seconds are reported, never fed back into simulated behavior.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "exec/sweep.hpp"
#include "graph/multiprog.hpp"
#include "lab/context.hpp"
#include "lab/experiments.hpp"

namespace impact::lab {
namespace {

// SIMLINT-ALLOW(nondet-chrono-clock): benchmark harness timing.
double seconds_since(std::chrono::steady_clock::time_point t0) {
  // SIMLINT-ALLOW(nondet-chrono-clock): benchmark harness timing.
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Process CPU seconds (all threads). The wall-vs-cpu ratio is the honesty
/// check on any claimed speedup: a parallel run that is truly using N
/// cores burns ~N CPU seconds per wall second, whereas on a 1-CPU
/// container the same code shows cpu ~= wall and the "speedup" is just
/// scheduling noise.
double cpu_seconds() {
  // SIMLINT-ALLOW(nondet-wallclock): benchmark harness timing.
  return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

// SIMLINT-ALLOW(nondet-chrono-clock): benchmark harness timing.
std::chrono::steady_clock::time_point now() {
  // SIMLINT-ALLOW(nondet-chrono-clock): benchmark harness timing.
  return std::chrono::steady_clock::now();
}

int run_sweep_scaling(Context& ctx) {
  const bool smoke = ctx.smoke();

  graph::MultiprogConfig config;
  if (smoke) {
    // Same shape, 8x smaller input (and hierarchy, to stay in the
    // conflict-bound regime) — seconds instead of tens of seconds.
    config.rmat_scale = 12;
    config.edge_count = 32768;
    config.system.cache_scale = 512;
  }

  exec::ThreadPool& pool = ctx.pool();
  std::fprintf(stderr,
               "bench_sweep_scaling: Fig. 11 matrix (%zu workloads x 3 "
               "policies), %s scale, pool=%u thread(s), hw=%u core(s)\n",
               std::size(graph::kAllWorkloads), smoke ? "smoke" : "full",
               pool.size(), std::thread::hardware_concurrency());

  const auto t_serial = now();
  const double c_serial = cpu_seconds();
  const auto serial =
      graph::evaluate_defense_matrix(config, graph::kAllWorkloads, nullptr);
  const double serial_s = seconds_since(t_serial);
  const double serial_cpu_s = cpu_seconds() - c_serial;

  const auto t_parallel = now();
  const double c_parallel = cpu_seconds();
  const auto parallel =
      graph::evaluate_defense_matrix(config, graph::kAllWorkloads, &pool);
  const double parallel_s = seconds_since(t_parallel);
  const double parallel_cpu_s = cpu_seconds() - c_parallel;

  const bool identical = serial == parallel;
  const double speedup = parallel_s > 0.0 ? serial_s / parallel_s : 0.0;

  // A wall-clock speedup is only a meaningful scaling claim when more than
  // one CPU was actually available to the process; on a 1-CPU container
  // the serial and parallel runs share one core and the ratio measures
  // scheduler noise. tools/bench.sh refuses to headline an invalid number.
  const unsigned hw = std::thread::hardware_concurrency();
  const bool scaling_valid = hw > 1 && pool.size() > 1;
  const char* threads_env = std::getenv("IMPACT_THREADS");

  std::fprintf(stderr,
               "serial %.2fs (cpu %.2fs)  parallel %.2fs (cpu %.2fs)  "
               "speedup %.2fx%s  cells %s\n",
               serial_s, serial_cpu_s, parallel_s, parallel_cpu_s, speedup,
               scaling_valid ? "" : " [INVALID: single CPU]",
               identical ? "bit-identical" : "MISMATCH");

  std::printf(
      "{\"bench\":\"sweep_scaling\",\"smoke\":%s,\"threads\":%u,"
      "\"impact_threads_env\":\"%s\",\"hardware_concurrency\":%u,"
      "\"serial_seconds\":%.4f,\"serial_cpu_seconds\":%.4f,"
      "\"parallel_seconds\":%.4f,\"parallel_cpu_seconds\":%.4f,"
      "\"speedup\":%.4f,\"scaling_valid\":%s,"
      "\"cells_identical\":%s}\n",
      smoke ? "true" : "false", pool.size(),
      threads_env != nullptr ? threads_env : "", hw, serial_s, serial_cpu_s,
      parallel_s, parallel_cpu_s, speedup, scaling_valid ? "true" : "false",
      identical ? "true" : "false");

  return identical ? 0 : 1;
}

}  // namespace

void register_sweep_scaling(Registry& r) {
  ExperimentSpec spec;
  spec.name = "sweep_scaling";
  spec.binary = "bench_sweep_scaling";
  spec.description =
      "Sweep-engine wall-clock scaling on the Fig. 11 matrix: serial vs "
      "thread pool, results checked bit-identical";
  spec.kind = Kind::kPerf;
  spec.bench_role = "sweep_scaling";
  spec.cell_count = [](const Context&) {
    return std::size(graph::kAllWorkloads) * 3;
  };
  spec.run = run_sweep_scaling;
  r.add(std::move(spec));
}

}  // namespace impact::lab
