// Ablations over IMPACT's design parameters (not in the paper's figures,
// but grounding its design choices, §4.1/§4.2):
//   (1) PnM batch size — synchronization amortization vs pipeline overlap;
//   (2) signalling bank count — message parallelism for both variants;
//   (3) DRAM address-mapping scheme — the channels work under any mapping
//       the attacker can reverse-engineer.
//
// Every sweep point builds its own MemorySystem, so the points are
// independent and fan out over the sweep engine's thread pool through the
// content-addressed store::CellRunner: each point carries a fingerprint
// over its full configuration, already-solved points replay from the
// ResultCache (set IMPACT_STORE_DIR to persist across invocations), and
// rows are collected in parameter order — output identical to the old
// serial loops.
#include <cstdio>
#include <string>
#include <vector>

#include "attacks/impact_async.hpp"
#include "attacks/impact_pnm.hpp"
#include "attacks/impact_pum.hpp"
#include "lab/context.hpp"
#include "lab/experiments.hpp"
#include "sys/system.hpp"
#include "util/table.hpp"

namespace impact::lab {
namespace {

using Row = std::vector<std::string>;

// Cell counts of the five sub-sweeps, in order: batch_bits, banks,
// mapping, threads, slots.
constexpr std::size_t kSubSweepCells[] = {5, 5, 3, 7, 6};

int run_ablation_sweep(Context& ctx) {
  exec::ThreadPool& pool = ctx.pool();
  std::printf("=== bench_ablation_sweep: IMPACT design-space ablations "
              "(%u worker thread(s)) ===\n\n",
              pool.size());

  store::CellRunner& runner = ctx.runner();

  // Shared fingerprint base: the stock SystemConfig every point starts
  // from, plus the sweep's identity. Each sub-sweep adds its parameter
  // and the measure() arguments that shape the result.
  const auto base_canon = [](const char* sweep) {
    sys::SystemConfig config;
    store::Canon c;
    c.field("cell", "ablation");
    c.field("sweep", sweep);
    c.object("system", store::canon_of(config));
    return c;
  };

  {
    std::printf("--- (1) IMPACT-PnM batch size (M bits per semaphore "
                "turn) ---\n");
    util::Table table({"batch bits", "throughput (Mb/s)", "error rate"});
    const std::vector<std::uint32_t> batches = {1, 2, 4, 8, 16};
    const auto result = runner.rows(
        "ablation.batch_bits", batches.size(),
        [&](std::size_t i) {
          store::Canon c = base_canon("batch_bits");
          c.field("batch_bits", batches[i]);
          c.field("measure", "64x8@41");
          return c.fingerprint();
        },
        [&](std::size_t i) {
          sys::SystemConfig config;
          sys::MemorySystem system(config);
          attacks::ImpactPnmConfig attack_config;
          attack_config.channel.batch_bits = batches[i];
          attacks::ImpactPnm attack(system, attack_config);
          const auto r = attack.measure(64, 8, 41);
          return Row{std::to_string(batches[i]),
                     util::Table::num(r.throughput_mbps(config.frequency())),
                     util::Table::num(100.0 * r.error_rate(), 1) + "%"};
        });
    if (!result.ok()) return 1;
    for (const auto& row : result.rows) table.add_row(row);
    std::printf("%s\n", table.render().c_str());
  }

  {
    std::printf("--- (2) signalling bank count ---\n");
    util::Table table(
        {"banks", "PnM (Mb/s)", "PuM (Mb/s)", "PuM sender (cyc/msg)"});
    const std::vector<std::uint32_t> bank_counts = {4, 8, 16, 32, 64};
    const auto result = runner.rows(
        "ablation.banks", bank_counts.size(),
        [&](std::size_t i) {
          store::Canon c = base_canon("banks");
          c.field("banks", bank_counts[i]);
          c.field("measure", "64x8@42");
          return c.fingerprint();
        },
        [&](std::size_t i) {
          const std::uint32_t banks = bank_counts[i];
          sys::SystemConfig config;
          double pnm_mbps = 0.0;
          {
            sys::MemorySystem system(config);
            attacks::ImpactPnmConfig attack_config;
            attack_config.channel.banks = banks;
            attacks::ImpactPnm attack(system, attack_config);
            pnm_mbps = attack.measure(64, 8, 42).throughput_mbps(
                config.frequency());
          }
          double pum_mbps = 0.0;
          double pum_sender = 0.0;
          {
            sys::MemorySystem system(config);
            attacks::ImpactPumConfig attack_config;
            attack_config.banks = banks;
            attacks::ImpactPum attack(system, attack_config);
            const auto r = attack.measure(64, 8, 42);
            pum_mbps = r.throughput_mbps(config.frequency());
            pum_sender = static_cast<double>(r.sender_cycles) / 8.0;
          }
          return Row{std::to_string(banks), util::Table::num(pnm_mbps),
                     util::Table::num(pum_mbps),
                     util::Table::num(pum_sender, 0)};
        });
    if (!result.ok()) return 1;
    for (const auto& row : result.rows) table.add_row(row);
    std::printf("%s\n", table.render().c_str());
  }

  {
    std::printf("--- (3) DRAM address-mapping scheme (IMPACT-PnM) ---\n");
    util::Table table({"mapping", "throughput (Mb/s)", "error rate"});
    const std::vector<dram::MappingScheme> schemes = {
        dram::MappingScheme::kBankInterleaved,
        dram::MappingScheme::kRowBankCol,
        dram::MappingScheme::kXorBankHash};
    const auto result = runner.rows(
        "ablation.mapping", schemes.size(),
        [&](std::size_t i) {
          store::Canon c = base_canon("mapping");
          c.field("mapping", to_string(schemes[i]));
          c.field("measure", "64x8@43");
          return c.fingerprint();
        },
        [&](std::size_t i) {
          sys::SystemConfig config;
          config.mapping = schemes[i];
          sys::MemorySystem system(config);
          attacks::ImpactPnm attack(system);
          const auto r = attack.measure(64, 8, 43);
          return Row{to_string(schemes[i]),
                     util::Table::num(r.throughput_mbps(config.frequency())),
                     util::Table::num(100.0 * r.error_rate(), 1) + "%"};
        });
    if (!result.ok()) return 1;
    for (const auto& row : result.rows) table.add_row(row);
    std::printf("%s\n", table.render().c_str());
    std::printf("The row-buffer channel is mapping-agnostic once the\n"
                "attacker can co-locate rows (memory massaging handles\n"
                "any bijective mapping).\n\n");
  }

  {
    std::printf("--- (4) PnM sender threads vs PuM's single RowClone "
                "(16-bit message) ---\n");
    util::Table table({"configuration", "sender busy (cyc/msg)",
                       "throughput (Mb/s)"});
    const auto msg = util::BitVec(16, true);
    // One flat point list covering the three sub-sweeps: sender-thread
    // scaling, the PuM reference point, and receiver-thread scaling.
    struct Point {
      bool pum = false;
      std::uint32_t sender_threads = 1;
      std::uint32_t receiver_threads = 1;
      const char* label = "";
    };
    const std::vector<Point> points = {
        {false, 1, 1, "PnM, 1 thread(s)"},
        {false, 2, 1, "PnM, 2 thread(s)"},
        {false, 4, 1, "PnM, 4 thread(s)"},
        {false, 8, 1, "PnM, 8 thread(s)"},
        {true, 1, 1, "PuM, 1 thread (1 RowClone)"},
        {false, 1, 2, "PnM, 2 receiver threads"},
        {false, 1, 4, "PnM, 4 receiver threads"},
    };
    const auto result = runner.rows(
        "ablation.threads", points.size(),
        [&](std::size_t i) {
          store::Canon c = base_canon("threads");
          c.field("pum", points[i].pum);
          c.field("sender_threads", points[i].sender_threads);
          c.field("receiver_threads", points[i].receiver_threads);
          c.field("message_bits", std::uint64_t{16});
          return c.fingerprint();
        },
        [&](std::size_t i) {
          const Point& pt = points[i];
          sys::SystemConfig config;
          sys::MemorySystem system(config);
          channel::ChannelReport report;
          if (pt.pum) {
            attacks::ImpactPum attack(system);
            (void)attack.transmit(msg);
            report = attack.transmit(msg).report;
          } else {
            attacks::ImpactPnmConfig attack_config;
            attack_config.channel.batch_bits = 16;
            attack_config.channel.sender_threads = pt.sender_threads;
            attack_config.channel.receiver_threads = pt.receiver_threads;
            attacks::ImpactPnm attack(system, attack_config);
            (void)attack.transmit(msg);
            report = attack.transmit(msg).report;
          }
          return Row{pt.label, util::Table::num(report.sender_cycles, 0),
                     util::Table::num(report.throughput_mbps(
                         config.frequency()))};
        });
    if (!result.ok()) return 1;
    for (const auto& row : result.rows) table.add_row(row);
    std::printf("%s\n", table.render().c_str());
    std::printf("A PnM sender needs several cores' worth of parallel PEI\n"
                "issue to approach what PuM gets from one masked RowClone\n"
                "(§4.2's \"less computational resources\" observation).\n\n");
  }

  {
    std::printf("--- (5) synchronization-free slotted variant "
                "(IMPACT-Async) ---\n");
    util::Table table({"slot (cyc)", "throughput (Mb/s)", "error rate",
                       "receiver overruns"});
    const std::vector<util::Cycle> slots = {140, 180, 220, 260, 320, 400};
    const auto result = runner.rows(
        "ablation.slots", slots.size(),
        [&](std::size_t i) {
          store::Canon c = base_canon("slots");
          c.field("slot_cycles", static_cast<std::uint64_t>(slots[i]));
          c.field("measure", "128x6@44");
          return c.fingerprint();
        },
        [&](std::size_t i) {
          sys::SystemConfig config;
          sys::MemorySystem system(config);
          attacks::ImpactAsyncConfig attack_config;
          attack_config.slot_cycles = slots[i];
          attacks::ImpactAsync attack(system, attack_config);
          const auto r = attack.measure(128, 6, 44);
          return Row{std::to_string(slots[i]),
                     util::Table::num(r.throughput_mbps(config.frequency())),
                     util::Table::num(100.0 * r.error_rate(), 1) + "%",
                     util::Table::num(100.0 * attack.overrun_rate(), 1) + "%"};
        });
    if (!result.ok()) return 1;
    for (const auto& row : result.rows) table.add_row(row);
    std::printf("%s\n", table.render().c_str());
    std::printf("Dropping the semaphore handshake buys rate until the slot\n"
                "undercuts the probe path and the receiver overruns — the\n"
                "asynchronous-collusion trade-off Streamline exemplifies.\n");
  }
  return 0;
}

}  // namespace

void register_ablation_sweep(Registry& r) {
  ExperimentSpec spec;
  spec.name = "ablation_sweep";
  spec.binary = "bench_ablation_sweep";
  spec.description =
      "IMPACT design-space ablations: PnM batch size, signalling banks, "
      "mapping scheme, sender threads, async slots";
  spec.kind = Kind::kAblation;
  spec.cell_count = [](const Context&) {
    std::size_t total = 0;
    for (const std::size_t n : kSubSweepCells) total += n;
    return total;
  };
  spec.run = run_ablation_sweep;
  r.add(std::move(spec));
}

}  // namespace impact::lab
