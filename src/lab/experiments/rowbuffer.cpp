// §3.1 microbenchmark: the row-buffer timing channel.
//
// Reproduces the observation that "a row buffer conflict takes 74 CPU
// cycles more than a hit, which is large enough to detect": measures
// hit / empty / conflict latencies at the memory controller and as seen by
// a user-space attacker through rdtscp brackets, and prints the latency
// histogram of a mixed access pattern.
#include <cstdio>

#include "dram/controller.hpp"
#include "exec/sweep.hpp"
#include "lab/context.hpp"
#include "lab/experiments.hpp"
#include "sys/system.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace impact::lab {
namespace {

// Every RNG stream in this experiment derives from one base seed via
// exec::derive_seed (the nondet-seed contract; see
// docs/static-analysis.md, rule nondet-seed). The stream index keeps
// the pre-derive_seed seed constant greppable.
constexpr std::uint64_t kSeedBase = 0x5eed;

int run_rowbuffer(Context&) {
  sys::SystemConfig config;
  std::printf("=== bench_rowbuffer (§3.1) ===\n%s\n",
              config.describe().c_str());

  sys::MemorySystem system(config);
  auto& mc = system.controller();
  util::Cycle clock = 1000;

  // Controller-level latencies.
  const auto empty = mc.access_row(0, 100, clock);
  clock = empty.completion + 500;
  const auto hit = mc.access_row(0, 100, clock);
  clock = hit.completion + 500;
  const auto conflict = mc.access_row(0, 200, clock);
  clock = conflict.completion + 500;

  util::Table t({"access", "latency (cycles)", "outcome"});
  t.add_row({"activation (empty bank)", util::Table::num(empty.latency, 0),
             to_string(empty.outcome)});
  t.add_row({"row-buffer hit", util::Table::num(hit.latency, 0),
             to_string(hit.outcome)});
  t.add_row({"row-buffer conflict", util::Table::num(conflict.latency, 0),
             to_string(conflict.outcome)});
  std::printf("%s\n", t.render().c_str());
  std::printf("conflict - hit gap: %llu cycles (paper: 74)\n\n",
              static_cast<unsigned long long>(conflict.latency -
                                              hit.latency));

  // User-space view: timed loads alternating between hit and conflict
  // patterns, as an attacker would measure them.
  const auto row_a = system.vmem().map_row(1, 3, 10);
  const auto row_b = system.vmem().map_row(1, 3, 11);
  system.warm_span(1, row_a);
  system.warm_span(1, row_b);
  util::Histogram histogram(0, 400, 40);
  util::Xoshiro256 rng(exec::derive_seed(kSeedBase, 3));
  const auto& ts = system.timestamp();
  for (int i = 0; i < 4000; ++i) {
    // Prime: open row A.
    (void)system.direct_access(1, row_a.vaddr, clock);
    // Optionally disturb: open row B so the measured access conflicts.
    const bool conflict_access = rng.chance(0.5);
    if (conflict_access) (void)system.direct_access(1, row_b.vaddr, clock);
    // Measure an access to row A.
    const util::Cycle t0 = ts.read(clock);
    (void)system.direct_access(1, row_a.vaddr, clock);
    const util::Cycle t1 = ts.read_fast(clock);
    histogram.add(static_cast<double>(t1 - t0));
    clock += 50;
  }
  std::printf("user-space measured latency histogram "
              "(hit cluster vs conflict cluster):\n%s\n",
              histogram.render().c_str());
  return 0;
}

}  // namespace

void register_rowbuffer(Registry& r) {
  ExperimentSpec spec;
  spec.name = "rowbuffer";
  spec.binary = "bench_rowbuffer";
  spec.description =
      "Row-buffer timing channel microbenchmark: hit/empty/conflict "
      "latencies and user-space histogram";
  spec.kind = Kind::kFigure;
  spec.run = run_rowbuffer;
  r.add(std::move(spec));
}

}  // namespace impact::lab
