// Defense evaluation demo (§6, Fig. 11): overhead of the closed-row and
// constant-time policies versus the baseline open-row policy on
// multiprogrammed graph workloads.
//
// The (workload, policy) grid is embarrassingly parallel; the
// store::CellRunner fans it out over IMPACT_THREADS workers (default:
// hardware concurrency) with bit-identical results to a serial run, and
// probes the content-addressed ResultCache per cell — point
// IMPACT_STORE_DIR at a directory and a second invocation replays from
// disk instead of simulating.
//
//   $ impact run defense_tradeoffs
//   $ IMPACT_THREADS=4 impact run defense_tradeoffs
//   $ IMPACT_STORE_DIR=/tmp/impact-store impact run defense_tradeoffs  # twice
#include <cstdio>
#include <iterator>
#include <vector>

#include "graph/multiprog.hpp"
#include "lab/context.hpp"
#include "lab/experiments.hpp"
#include "util/table.hpp"

namespace impact::lab {
namespace {

constexpr dram::RowPolicy kTradeoffPolicies[] = {
    dram::RowPolicy::kOpenRow, dram::RowPolicy::kClosedRow,
    dram::RowPolicy::kConstantTime};

int run_defense_tradeoffs(Context& ctx) {
  graph::MultiprogConfig config;  // Scaled Fig. 11 configuration.

  const auto grid = ctx.runner().defense_matrix(config, graph::kAllWorkloads,
                                                kTradeoffPolicies);
  if (!grid.ok()) {
    std::printf("sweep failed: %s\n", grid.report.summary().c_str());
    return 1;
  }

  util::Table table({"workload", "MPKI", "row-hit-rate", "CRP overhead",
                     "CTD overhead"});
  std::vector<double> crp;
  std::vector<double> ctd;
  for (std::size_t w = 0; w < std::size(graph::kAllWorkloads); ++w) {
    const graph::RunStats& open_row = grid.cells[w][0].stats;
    const auto overhead = [&](std::size_t p) {
      return open_row.cycles == 0
                 ? 0.0
                 : static_cast<double>(grid.cells[w][p].stats.cycles) /
                           static_cast<double>(open_row.cycles) -
                       1.0;
    };
    crp.push_back(overhead(1));
    ctd.push_back(overhead(2));
    table.add_row({to_string(graph::kAllWorkloads[w]),
                   util::Table::num(open_row.mpki()),
                   util::Table::num(open_row.row_hit_rate),
                   util::Table::num(100.0 * overhead(1), 1) + "%",
                   util::Table::num(100.0 * overhead(2), 1) + "%"});
  }
  std::printf("%s", table.render().c_str());
  double crp_avg = 0.0;
  double ctd_avg = 0.0;
  for (double v : crp) crp_avg += v / crp.size();
  for (double v : ctd) ctd_avg += v / ctd.size();
  std::printf("\naverage overhead: CRP %.1f%%  CTD %.1f%%  "
              "(paper: 15%% and 26%%)\n",
              100.0 * crp_avg, 100.0 * ctd_avg);
  return 0;
}

}  // namespace

void register_defense_tradeoffs(Registry& r) {
  ExperimentSpec spec;
  spec.name = "defense_tradeoffs";
  spec.binary = "defense_tradeoffs";
  spec.description =
      "Fig. 11 methodology demo: CRP/CTD overhead vs open-row on the "
      "graph workloads";
  spec.kind = Kind::kExample;
  spec.cell_count = [](const Context&) {
    return std::size(graph::kAllWorkloads) * std::size(kTradeoffPolicies);
  };
  spec.run = run_defense_tradeoffs;
  r.add(std::move(spec));
}

}  // namespace impact::lab
