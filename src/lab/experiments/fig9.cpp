// Fig. 9: breakdown of a 16-bit transmission — cycles the sender spends
// sending vs cycles the receiver spends reading, for IMPACT-PnM and
// IMPACT-PuM.
//
// The reproduced shape: the PuM sender transmits the whole message with
// ONE masked RowClone and is an order of magnitude (paper: 14x) faster
// than the PnM sender's 16 sequential PEIs, yet end-to-end PuM is only
// ~10% faster because the PnM sender/receiver pipeline already overlaps
// most of the sender's latency.
#include <cstdio>

#include "attacks/impact_pnm.hpp"
#include "attacks/impact_pum.hpp"
#include "lab/context.hpp"
#include "lab/experiments.hpp"
#include "sys/system.hpp"
#include "util/bitvec.hpp"
#include "util/table.hpp"

namespace impact::lab {
namespace {

int run_fig9(Context&) {
  sys::SystemConfig config;
  std::printf("=== bench_fig9: sender/receiver breakdown (16 bits) ===\n\n");

  // All-ones stresses the sender maximally (every bit needs interference).
  const auto message = util::BitVec::from_string("1111111111111111");

  channel::ChannelReport pnm;
  channel::ChannelReport pum;
  {
    sys::MemorySystem system(config);
    attacks::ImpactPnm attack(system);
    (void)attack.transmit(message);  // Warm + calibrated by first call.
    pnm = attack.transmit(message).report;
  }
  {
    sys::MemorySystem system(config);
    attacks::ImpactPum attack(system);
    (void)attack.transmit(message);
    pum = attack.transmit(message).report;
  }

  util::Table table({"variant", "sender (cyc)", "receiver (cyc)",
                     "elapsed (cyc)", "throughput (Mb/s)"});
  for (const auto& [name, rep] :
       {std::pair{"IMPACT-PnM", pnm}, std::pair{"IMPACT-PuM", pum}}) {
    table.add_row({name, util::Table::num(rep.sender_cycles, 0),
                   util::Table::num(rep.receiver_cycles, 0),
                   util::Table::num(rep.elapsed_cycles, 0),
                   util::Table::num(rep.throughput_mbps(config.frequency()))});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("PuM sender speedup over PnM sender: %.1fx (paper: 14x)\n",
              static_cast<double>(pnm.sender_cycles) /
                  static_cast<double>(pum.sender_cycles));
  std::printf("PuM end-to-end advantage: %.1f%% (paper: ~10%%)\n",
              100.0 * (static_cast<double>(pnm.elapsed_cycles) /
                           static_cast<double>(pum.elapsed_cycles) -
                       1.0));
  return 0;
}

}  // namespace

void register_fig9(Registry& r) {
  ExperimentSpec spec;
  spec.name = "fig9";
  spec.binary = "bench_fig9";
  spec.description =
      "Sender/receiver cycle breakdown of a 16-bit transmission for "
      "IMPACT-PnM and IMPACT-PuM";
  spec.kind = Kind::kFigure;
  spec.run = run_fig9;
  r.add(std::move(spec));
}

}  // namespace impact::lab
