// Fig. 11: performance overhead of the closed-row (CRP) and constant-time
// (CTD) defenses versus the open-row baseline, on five multiprogrammed
// graph workloads sharing their input graph (2-core system).
//
// Paper: CTD costs 26% on average, CRP 15%, with CRP cheap on the
// workloads that do not benefit from the open-row policy.
//
// The grid runs through the content-addressed store::CellRunner: every
// cell gets its own obs scope, is probed against the ResultCache before
// simulating (a warm run is pure lookups — see the `store` experiment),
// and the table below is rebuilt from the per-cell snapshots (graph.*
// counters) rather than the tasks' own RunStats — the spine's accounting
// is the figure. With the spine compiled out (-DIMPACT_OBS=OFF) the table
// falls back to the RunStats cells, which are identical.
#include <cstdio>
#include <iterator>
#include <string>
#include <vector>

#include "graph/multiprog.hpp"
#include "lab/context.hpp"
#include "lab/experiments.hpp"
#include "obs/scope.hpp"
#include "obs/snapshot.hpp"
#include "util/table.hpp"

namespace impact::lab {
namespace {

constexpr dram::RowPolicy kFig11Policies[] = {
    dram::RowPolicy::kOpenRow, dram::RowPolicy::kClosedRow,
    dram::RowPolicy::kConstantTime, dram::RowPolicy::kAdaptive};

int run_fig11(Context& ctx) {
  exec::ThreadPool& pool = ctx.pool();
  std::printf("=== bench_fig11: defense overheads (CRP / CTD vs open row) "
              "===\n");
  std::printf("2 cores, shared RMAT input, hierarchy+input scaled 256x, "
              "%u worker thread(s)\n\n",
              pool.size());

  graph::MultiprogConfig config;
  store::CellRunner& runner = ctx.runner();
  const store::CellRunner::MatrixResult grid =
      runner.defense_matrix(config, graph::kAllWorkloads, kFig11Policies);
  if (!grid.ok()) {
    std::printf("sweep failed: %s\n", grid.report.summary().c_str());
    return 1;
  }

  std::fputs(render_fig11(grid).c_str(), stdout);

  const store::ResultCache::Stats cs = ctx.cache().stats();
  std::fprintf(stderr,
               "store: %llu hits (%llu from disk), %llu misses, %llu "
               "stored\n",
               static_cast<unsigned long long>(cs.hits),
               static_cast<unsigned long long>(cs.disk_hits),
               static_cast<unsigned long long>(cs.misses),
               static_cast<unsigned long long>(cs.stored));
  return 0;
}

}  // namespace

std::string render_fig11(const store::CellRunner::MatrixResult& grid) {
  const std::size_t workloads = std::size(graph::kAllWorkloads);

  // One row value: from the cell's snapshot when the spine is compiled in
  // and the cell carries one, from the cell's RunStats otherwise.
  // Bit-identical either way — and bit-identical whether the cell
  // simulated or came from the cache.
  const auto cell_stats = [&](std::size_t w, std::size_t p) {
    const store::CellRunner::MatrixCell& cell = grid.cells[w][p];
    if (!obs::kCompiled || cell.snapshot.empty()) return cell.stats;
    graph::RunStats r;
    r.cycles = cell.snapshot.counter("graph.cycles");
    r.instructions = cell.snapshot.counter("graph.instructions");
    r.accesses = cell.snapshot.counter("graph.accesses");
    r.llc_misses = cell.snapshot.counter("graph.llc_misses");
    r.row_hit_rate = cell.snapshot.gauge("graph.row_hit_rate");
    return r;
  };

  util::Table table({"workload", "MPKI", "row-hit rate", "open-row (cyc)",
                     "CRP overhead", "CTD overhead",
                     "adaptive overhead (ext.)"});
  double crp_sum = 0.0;
  double ctd_sum = 0.0;
  double adp_sum = 0.0;
  int n = 0;
  obs::Snapshot totals;
  for (std::size_t w = 0; w < workloads; ++w) {
    const graph::RunStats open_row = cell_stats(w, 0);
    const auto overhead = [&](std::size_t p) {
      return static_cast<double>(cell_stats(w, p).cycles) /
                 static_cast<double>(open_row.cycles) -
             1.0;
    };
    crp_sum += overhead(1);
    ctd_sum += overhead(2);
    adp_sum += overhead(3);
    ++n;
    for (std::size_t p = 0; p < std::size(kFig11Policies); ++p) {
      totals.merge(grid.cells[w][p].snapshot);
    }
    table.add_row({to_string(graph::kAllWorkloads[w]),
                   util::Table::num(open_row.mpki()),
                   util::Table::num(open_row.row_hit_rate),
                   util::Table::num(open_row.cycles, 0),
                   util::Table::num(100.0 * overhead(1), 1) + "%",
                   util::Table::num(100.0 * overhead(2), 1) + "%",
                   util::Table::num(100.0 * overhead(3), 1) + "%"});
  }

  std::string out = table.render();
  out += '\n';
  char buf[640];
  std::snprintf(
      buf, sizeof buf,
      "average: CRP %.1f%% (paper 15%%), CTD %.1f%% (paper 26%%), "
      "adaptive %.1f%% (extension)\n"
      "The adaptive open-page policy costs about as much as CRP on these\n"
      "conflict-heavy workloads and pushes the naive covert channel to\n"
      "near-chance error (test_defense AdaptivePolicy tests) — but unlike\n"
      "CRP it keeps benign streaming hits, and unlike CRP its guarantee is\n"
      "heuristic: an attacker who re-trains the predictor with hit bursts\n"
      "can partially reopen the channel.\n",
      100.0 * crp_sum / n, 100.0 * ctd_sum / n, 100.0 * adp_sum / n);
  out += buf;
  if (obs::kCompiled && !totals.empty()) {
    out += "\ngrid totals (merged per-cell obs snapshots):\n";
    out += totals.table("  ");
  }
  return out;
}

void register_fig11(Registry& r) {
  ExperimentSpec spec;
  spec.name = "fig11";
  spec.binary = "bench_fig11";
  spec.description =
      "Defense overheads: CRP / CTD / adaptive vs open-row baseline on "
      "five multiprogrammed graph workloads";
  spec.kind = Kind::kFigure;
  spec.cell_count = [](const Context&) {
    return std::size(graph::kAllWorkloads) * std::size(kFig11Policies);
  };
  spec.run = run_fig11;
  r.add(std::move(spec));
}

}  // namespace impact::lab
