// One-line-per-attack comparison of every Fig. 8 covert channel plus the
// analytical Streamline model — the quickest way to see all the channels
// side by side.
#include <cstdio>

#include "attacks/registry.hpp"
#include "lab/context.hpp"
#include "lab/experiments.hpp"
#include "model/cache_attack_model.hpp"

namespace impact::lab {
namespace {

int run_covert_channel_comparison(Context&) {
  for (auto kind : attacks::kFig8Attacks) {
    sys::SystemConfig cfg;
    cfg.mapping = attacks::recommended_mapping(kind);
    sys::MemorySystem system(cfg);
    auto attack = attacks::make_attack(kind, system);
    auto report = attack->measure(64, 8, 5);
    std::printf("%-16s %7.2f Mb/s  err %.2f%%  cyc/bit %.0f\n",
                attack->name().c_str(),
                report.throughput_mbps(cfg.frequency()),
                100.0 * report.error_rate(), report.cycles_per_bit());
  }
  model::ExtractedParams p;
  std::printf("%-16s %7.2f Mb/s (analytical)\n", "Streamline",
              model::streamline_mbps(p, util::kDefaultFrequency));
  return 0;
}

}  // namespace

void register_covert_channel_comparison(Registry& r) {
  ExperimentSpec spec;
  spec.name = "covert_channel_comparison";
  spec.binary = "covert_channel_comparison";
  spec.description =
      "Every Fig. 8 covert channel side by side, plus the analytical "
      "Streamline model";
  spec.kind = Kind::kExample;
  spec.run = run_covert_channel_comparison;
  r.add(std::move(spec));
}

}  // namespace impact::lab
