// The §4.3/§5.4 payoff, end to end: from timed PEI probes to inferred
// genome loci (the architectural half of the cited "completion attack").
//
// The attacker segments its positive observations into per-read episodes,
// expands each observed bank into its candidate hash-table buckets using
// the shared seed table, and votes over reference regions; the true read
// locus should surface among the top-k supported regions. More banks =
// fewer buckets per bank = sharper votes — the §5.4 precision claim,
// carried through to actual genome coordinates.
#include <cstdio>

#include "attacks/genome_inference.hpp"
#include "attacks/side_channel.hpp"
#include "lab/context.hpp"
#include "lab/experiments.hpp"
#include "util/table.hpp"

namespace impact::lab {
namespace {

int run_completion_attack(Context&) {
  std::printf("=== bench_completion_attack: observations -> genome loci "
              "===\n(victim without read-level pipelining; top-5 regions "
              "per episode)\n\n");

  util::Table table({"banks", "episodes", "top-5 hit rate",
                     "candidates/episode", "reduction vs reference"});
  for (const std::uint32_t banks : {1024u, 2048u, 4096u, 8192u}) {
    attacks::SideChannelConfig config;
    config.banks = banks;
    config.reads = 48;
    // A sporadic victim (reads arrive from the sequencer with gaps of a
    // couple of sweep periods): each read's evidence lands within one or
    // two sweeps, then the banks go quiet — the gap the attacker's
    // episode segmentation keys on.
    config.victim_alignment_compute = banks * 600ull;
    attacks::ReadMappingSpy spy(config);
    const auto run = spy.run();

    attacks::GenomeInference inference(
        spy.table(), spy.reference_bases(),
        attacks::InferenceConfig{/*episode_gap=*/banks * 280ull,
                                 /*bin_bases=*/256, /*top_k=*/5,
                                 /*min_banks=*/3,
                                 /*max_bucket_positions=*/24});
    const auto report =
        inference.evaluate(run.positives, run.episode_truths);

    table.add_row(
        {std::to_string(banks), std::to_string(report.scored),
         util::Table::num(100.0 * report.topk_hit_rate(), 1) + "%",
         util::Table::num(report.mean_candidate_positions, 0),
         util::Table::num(
             static_cast<double>(spy.reference_bases()) /
                 std::max(1.0, report.mean_candidate_positions),
             0) +
             "x"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "The attack works end to end: the attacker recovers the true read\n"
      "locus in its top-5 regions for 41-64%% of episodes while shrinking\n"
      "the candidate space by >200x. A nuance the paper's §5.4 does not\n"
      "reach: per-OBSERVATION precision does improve with bank count (2\n"
      "candidate buckets at 8192 banks vs 16 at 1024), but per-EPISODE\n"
      "inference degrades, because a sweep over more banks accumulates\n"
      "more false-positive observations per episode (Fig. 10's error\n"
      "trend), and each false bank injects decoy candidates into the\n"
      "vote. The two effects pull in opposite directions; in this setup\n"
      "the noise wins.\n");
  return 0;
}

}  // namespace

void register_completion_attack(Registry& r) {
  ExperimentSpec spec;
  spec.name = "completion_attack";
  spec.binary = "bench_completion_attack";
  spec.description =
      "End-to-end completion attack: timed PEI observations voted into "
      "genome loci across bank counts";
  spec.kind = Kind::kExtension;
  spec.run = run_completion_attack;
  r.add(std::move(spec));
}

}  // namespace impact::lab
