// Fig. 2: impact of LLC *size* on covert-channel throughput and eviction
// latency (16-way LLC, 2 MB - 64 MB).
//
// Two §3.3 attacks: the baseline (cache-eviction-based) channel, whose
// throughput falls as the LLC grows, and the direct-memory-access channel,
// whose throughput is flat. Baseline throughput and eviction latency use
// the paper's own methodology: parameters extracted from the simulated
// system fed into the analytical model, cross-checked against the fully
// simulated DRAMA-eviction attack.
#include <cstdio>

#include "attacks/registry.hpp"
#include "cache/latency_model.hpp"
#include "channel/report.hpp"
#include "lab/context.hpp"
#include "lab/experiments.hpp"
#include "model/cache_attack_model.hpp"
#include "obs/scope.hpp"
#include "sys/system.hpp"
#include "util/table.hpp"

namespace impact::lab {
namespace {

int run_fig2(Context&) {
  std::printf("=== bench_fig2: LLC size sweep (16-way) ===\n\n");

  const cache::LlcLatencyModel llc_model;
  util::Table table({"LLC size", "LLC lookup (cyc)", "eviction lat (cyc)",
                     "baseline (Mb/s)", "simulated eviction (Mb/s)",
                     "direct (Mb/s)"});

  for (const std::uint64_t mb : {2, 4, 8, 16, 32, 64}) {
    const std::uint64_t llc_bytes = mb << 20;
    model::ExtractedParams p;
    p.llc_latency = llc_model.latency(llc_bytes, 16);
    p.llc_ways = 16;

    // Analytical baseline: one eviction plus one timed row access per bit.
    const double evict = model::eviction_latency(p);
    const double t_bit = evict + p.dram_avg() + p.full_lookup() +
                         p.measurement_overhead;
    const double baseline_mbps = util::kDefaultFrequency.hz() / t_bit / 1e6;

    // Fully simulated attacks. Each runs under its own obs scope; the
    // table's report is re-derived from the scope's snapshot, pinning the
    // spine's accounting to the figure the paper comparison rests on
    // (measure()'s aggregate is the obs-disabled fallback and is identical
    // to the snapshot when the spine is compiled in).
    obs::Scope evict_scope;
    sys::SystemConfig cfg;
    cfg.llc_bytes = llc_bytes;
    cfg.mapping =
        attacks::recommended_mapping(attacks::AttackKind::kDramaEviction);
    sys::MemorySystem evict_system(cfg);
    auto evict_attack = attacks::make_attack(
        attacks::AttackKind::kDramaEviction, evict_system);
    const auto evict_measured = evict_attack->measure(64, 6, 11);
    const auto evict_report =
        obs::kCompiled
            ? channel::report_from_snapshot(evict_scope.snapshot())
            : evict_measured;

    obs::Scope direct_scope;
    sys::SystemConfig direct_cfg;
    direct_cfg.llc_bytes = llc_bytes;
    sys::MemorySystem direct_system(direct_cfg);
    auto direct_attack = attacks::make_attack(
        attacks::AttackKind::kDirectAccess, direct_system);
    const auto direct_measured = direct_attack->measure(64, 6, 11);
    const auto direct_report =
        obs::kCompiled
            ? channel::report_from_snapshot(direct_scope.snapshot())
            : direct_measured;

    table.add_row(
        {std::to_string(mb) + " MB", util::Table::num(p.llc_latency, 0),
         util::Table::num(evict, 0), util::Table::num(baseline_mbps),
         util::Table::num(evict_report.throughput_mbps(cfg.frequency())),
         util::Table::num(
             direct_report.throughput_mbps(direct_cfg.frequency()))});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Paper: baseline <= 2.29 Mb/s and falling with LLC size; direct\n"
      "~11.27 Mb/s flat across all sizes; eviction latency rising.\n");
  return 0;
}

}  // namespace

void register_fig2(Registry& r) {
  ExperimentSpec spec;
  spec.name = "fig2";
  spec.binary = "bench_fig2";
  spec.description =
      "LLC size sweep: covert-channel throughput and eviction latency "
      "(16-way, 2-64 MB)";
  spec.kind = Kind::kFigure;
  spec.run = run_fig2;
  r.add(std::move(spec));
}

}  // namespace impact::lab
