// Fig. 3: impact of LLC *associativity* on covert-channel throughput and
// eviction latency (16 MB LLC, 2 - 128 ways).
//
// An eviction set needs one congruent load per way, so the baseline
// attack's cost grows with associativity while the direct attack stays
// flat.
#include <cstdio>

#include "attacks/registry.hpp"
#include "cache/latency_model.hpp"
#include "lab/context.hpp"
#include "lab/experiments.hpp"
#include "model/cache_attack_model.hpp"
#include "sys/system.hpp"
#include "util/table.hpp"

namespace impact::lab {
namespace {

int run_fig3(Context&) {
  std::printf("=== bench_fig3: LLC associativity sweep (16 MB) ===\n\n");

  const cache::LlcLatencyModel llc_model;
  constexpr std::uint64_t kLlcBytes = 16ull << 20;
  util::Table table({"LLC ways", "LLC lookup (cyc)", "eviction lat (cyc)",
                     "baseline (Mb/s)", "simulated eviction (Mb/s)",
                     "direct (Mb/s)"});

  for (const std::uint32_t ways : {2, 4, 8, 16, 32, 64, 128}) {
    model::ExtractedParams p;
    p.llc_latency = llc_model.latency(kLlcBytes, ways);
    p.llc_ways = ways;

    const double evict = model::eviction_latency(p);
    const double t_bit = evict + p.dram_avg() + p.full_lookup() +
                         p.measurement_overhead;
    const double baseline_mbps = util::kDefaultFrequency.hz() / t_bit / 1e6;

    sys::SystemConfig cfg;
    cfg.llc_bytes = kLlcBytes;
    cfg.llc_ways = ways;
    cfg.mapping =
        attacks::recommended_mapping(attacks::AttackKind::kDramaEviction);
    sys::MemorySystem evict_system(cfg);
    auto evict_attack = attacks::make_attack(
        attacks::AttackKind::kDramaEviction, evict_system);
    const auto evict_report = evict_attack->measure(64, 4, 12);

    sys::SystemConfig direct_cfg;
    direct_cfg.llc_bytes = kLlcBytes;
    direct_cfg.llc_ways = ways;
    sys::MemorySystem direct_system(direct_cfg);
    auto direct_attack = attacks::make_attack(
        attacks::AttackKind::kDirectAccess, direct_system);
    const auto direct_report = direct_attack->measure(64, 4, 12);

    table.add_row(
        {std::to_string(ways), util::Table::num(p.llc_latency, 0),
         util::Table::num(evict, 0), util::Table::num(baseline_mbps),
         util::Table::num(evict_report.throughput_mbps(cfg.frequency())),
         util::Table::num(
             direct_report.throughput_mbps(direct_cfg.frequency()))});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Paper: baseline throughput falls sharply with the way count\n"
              "(eviction latency grows ~linearly); direct access is flat.\n");
  return 0;
}

}  // namespace

void register_fig3(Registry& r) {
  ExperimentSpec spec;
  spec.name = "fig3";
  spec.binary = "bench_fig3";
  spec.description =
      "LLC associativity sweep: covert-channel throughput and eviction "
      "latency (16 MB, 2-128 ways)";
  spec.kind = Kind::kFigure;
  spec.run = run_fig3;
  r.add(std::move(spec));
}

}  // namespace impact::lab
