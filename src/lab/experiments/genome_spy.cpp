// Side-channel demo: leak a victim's read-mapping access pattern through
// PiM probes (§4.3).
//
//   $ impact run genome_spy [banks]
//
// Runs a read-mapping victim on a PiM device with the given bank count
// (default 1024) while an attacker sweeps the banks, and reports the
// probe-decision accuracy, leakage throughput, and per-observation
// precision of the leaked bucket information.
#include <cstdio>

#include "attacks/side_channel.hpp"
#include "lab/context.hpp"
#include "lab/experiments.hpp"

namespace impact::lab {
namespace {

int run_genome_spy(Context& ctx) {
  attacks::SideChannelConfig config;
  config.banks = ctx.u32("banks");
  config.reads = 32;

  std::printf("PiM device: %u banks, shared seed table: %u buckets "
              "(%u entries per bank)\n",
              config.banks, config.table.buckets,
              config.table.buckets / config.banks);

  attacks::ReadMappingSpy spy(config);
  const auto result = spy.run();

  std::printf("victim mapping accuracy : %.1f%%\n",
              100.0 * result.victim_accuracy);
  std::printf("attacker threshold      : %.0f cycles\n", result.threshold);
  std::printf("probe observations      : %zu (error %.2f%%)\n",
              result.probes.observations,
              100.0 * result.probes.error_rate());
  std::printf("leak throughput         : %.2f Mb/s\n",
              result.probes.throughput_mbps(2.6));
  std::printf("victim seed events      : %zu (captured %.1f%%, "
              "%.2f Mb/s event capture)\n",
              result.victim_seed_events, 100.0 * result.capture_rate(),
              result.capture_throughput_mbps(2.6));
  std::printf("precision               : %u candidate buckets/hit "
              "(%.1f bits/observation)\n",
              result.precision.entries_per_bank,
              result.precision.bits_per_observation);
  return 0;
}

}  // namespace

void register_genome_spy(Registry& r) {
  ExperimentSpec spec;
  spec.name = "genome_spy";
  spec.binary = "genome_spy";
  spec.description =
      "Read-mapping side channel (Fig. 10 setting): bank-sweep probes "
      "against a genomics victim";
  spec.kind = Kind::kExample;
  spec.params = {{"banks", "PiM device bank count (Fig. 10 x-axis)",
                  "1024"}};
  spec.positional = {"banks"};
  spec.run = run_genome_spy;
  r.add(std::move(spec));
}

}  // namespace impact::lab
