// Fig. 10: side-channel attack on PiM-accelerated read mapping — leakage
// throughput and error rate across DRAM bank counts (1024 - 8192).
//
// Reproduced shape: throughput falls and the error rate rises as the
// attacker must sweep more banks (paper: 7.57 Mb/s, <5% error at 1024
// banks -> 2.56 Mb/s, <15% at 8192), while each observation becomes more
// precise (fewer hash-table entries per bank, §5.4).
//
// One cell per bank count, run through the store::CellRunner: a cell
// renders both its table row and its CSV row (split on output), so a warm
// run reproduces both byte-identically without simulating.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "attacks/side_channel.hpp"
#include "lab/context.hpp"
#include "lab/experiments.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace impact::lab {
namespace {

const std::vector<std::uint32_t>& fig10_bank_counts() {
  static const std::vector<std::uint32_t> counts = {1024, 2048, 4096, 8192};
  return counts;
}

int run_fig10(Context& ctx) {
  std::printf("=== bench_fig10: read-mapping side channel vs bank count "
              "===\n\n");

  util::Table table({"banks", "probe throughput (Mb/s)", "error rate",
                     "event capture (Mb/s)", "capture rate",
                     "buckets/hit", "bits/observation"});

  std::unique_ptr<util::CsvWriter> csv;
  if (const auto dir = util::CsvWriter::results_dir_from_env()) {
    csv = std::make_unique<util::CsvWriter>(
        *dir, "fig10",
        std::vector<std::string>{"banks", "probe_mbps", "error_rate",
                                 "capture_mbps", "capture_rate",
                                 "bits_per_observation"});
  }

  const std::vector<std::uint32_t>& bank_counts = fig10_bank_counts();
  constexpr std::size_t kTableCols = 7;  // Cells 0-6: table; 7-12: CSV.

  store::CellRunner& runner = ctx.runner();
  const auto result = runner.rows(
      "fig10.banks", bank_counts.size(),
      [&](std::size_t i) {
        store::Canon c;
        c.field("cell", "fig10.read_mapping");
        c.field("banks", bank_counts[i]);
        return c.fingerprint();
      },
      [&](std::size_t i) {
        const std::uint32_t banks = bank_counts[i];
        attacks::SideChannelConfig config;
        config.banks = banks;
        attacks::ReadMappingSpy spy(config);
        const auto r = spy.run();
        // Table columns first, CSV columns after — one flat row so the
        // cache record carries both renderings.
        return std::vector<std::string>{
            std::to_string(banks),
            util::Table::num(r.probes.throughput_mbps(2.6)),
            util::Table::num(100.0 * r.probes.error_rate(), 2) + "%",
            util::Table::num(r.capture_throughput_mbps(2.6)),
            util::Table::num(100.0 * r.capture_rate(), 1) + "%",
            std::to_string(r.precision.entries_per_bank),
            util::Table::num(r.precision.bits_per_observation, 1),
            std::to_string(banks),
            util::Table::num(r.probes.throughput_mbps(2.6), 4),
            util::Table::num(r.probes.error_rate(), 5),
            util::Table::num(r.capture_throughput_mbps(2.6), 4),
            util::Table::num(r.capture_rate(), 5),
            util::Table::num(r.precision.bits_per_observation, 2)};
      });
  if (!result.ok()) {
    std::printf("sweep failed: %s\n", result.report.summary().c_str());
    return 1;
  }
  for (const auto& row : result.rows) {
    table.add_row(
        std::vector<std::string>(row.begin(), row.begin() + kTableCols));
    if (csv) {
      csv->add_row(
          std::vector<std::string>(row.begin() + kTableCols, row.end()));
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Paper: 7.57 Mb/s @ <5%% error (1024 banks) degrading to 2.56 Mb/s @\n"
      "<15%% error (8192 banks); precision per observation improves with\n"
      "bank count. Probe-decision metrics reproduce the error trend; the\n"
      "event-capture metric reproduces the throughput decline (the\n"
      "attacker's sweep resolution collapses multiple victim accesses per\n"
      "bank window into one observation).\n");
  return 0;
}

}  // namespace

void register_fig10(Registry& r) {
  ExperimentSpec spec;
  spec.name = "fig10";
  spec.binary = "bench_fig10";
  spec.description =
      "Read-mapping side channel vs DRAM bank count (1024-8192): leakage "
      "throughput and error rate";
  spec.kind = Kind::kFigure;
  spec.cell_count = [](const Context&) { return fig10_bank_counts().size(); };
  spec.run = run_fig10;
  r.add(std::move(spec));
}

}  // namespace impact::lab
