// Ablation: the open-row idle timeout vs the covert channel.
//
// Table 2 lists a 100 ns "row timeout". Under the common scheduler
// semantics (the timeout closes a row early only to serve waiting
// requests; an idle bank keeps its row open) the attacks work exactly as
// the paper reports — that is our default. This ablation enables the
// strict *idle-precharge* interpretation at several timeout values and
// shows that the row-buffer covert channel collapses once the timeout is
// shorter than the sender->probe gap: an aggressive idle precharge is
// itself a (costly) defense the paper does not evaluate.
#include <cstdio>

#include "attacks/impact_pnm.hpp"
#include "graph/multiprog.hpp"
#include "lab/context.hpp"
#include "lab/experiments.hpp"
#include "sys/system.hpp"
#include "util/table.hpp"

namespace impact::lab {
namespace {

int run_ablation_timeout(Context&) {
  std::printf("=== bench_ablation_timeout: idle-precharge row timeout vs "
              "IMPACT-PnM ===\n\n");

  util::Table table({"timeout mode", "timeout (ns)", "throughput (Mb/s)",
                     "error rate"});

  auto run = [&](dram::RowTimeoutMode mode, double ns) {
    sys::SystemConfig config;
    config.dram.timing.timeout_mode = mode;
    config.dram.timing.row_timeout_ns = ns;
    sys::MemorySystem system(config);
    attacks::ImpactPnm attack(system);
    const auto report = attack.measure(64, 10, 33);
    const char* mode_name = mode == dram::RowTimeoutMode::kContention
                                ? "contention (default)"
                                : "idle-precharge";
    table.add_row({mode_name, util::Table::num(ns, 0),
                   util::Table::num(report.throughput_mbps(
                       config.frequency())),
                   util::Table::num(100.0 * report.error_rate(), 1) + "%"});
  };

  run(dram::RowTimeoutMode::kContention, 100);
  for (const double ns : {2000.0, 1000.0, 500.0, 200.0, 100.0, 50.0}) {
    run(dram::RowTimeoutMode::kIdlePrecharge, ns);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("With strict idle precharge at the Table 2 value (100 ns) the\n"
              "sender's interference evaporates before the receiver can\n"
              "probe and the error rate approaches chance — evidence that\n"
              "the paper's working attacks imply the contention-triggered\n"
              "timeout semantics modeled by our default.\n\n");

  // The price of that accidental defense: idle-precharge timeouts cost
  // performance like a milder CRP. Same Fig. 11 methodology, smaller
  // input for speed.
  std::printf("--- performance cost of idle-precharge timeouts (BFS + PR, "
              "Fig. 11 setup) ---\n");
  util::Table cost({"timeout (ns)", "BFS overhead", "PR overhead"});
  graph::MultiprogConfig base;
  base.rmat_scale = 13;
  base.edge_count = 1u << 16;
  const auto bfs_open = graph::run_multiprogrammed(
      base, graph::WorkloadKind::kBFS, dram::RowPolicy::kOpenRow);
  const auto pr_open = graph::run_multiprogrammed(
      base, graph::WorkloadKind::kPR, dram::RowPolicy::kOpenRow);
  for (const double ns : {1000.0, 200.0, 100.0}) {
    graph::MultiprogConfig config = base;
    config.system.dram.timing.timeout_mode =
        dram::RowTimeoutMode::kIdlePrecharge;
    config.system.dram.timing.row_timeout_ns = ns;
    const auto bfs = graph::run_multiprogrammed(
        config, graph::WorkloadKind::kBFS, dram::RowPolicy::kOpenRow);
    const auto pr = graph::run_multiprogrammed(
        config, graph::WorkloadKind::kPR, dram::RowPolicy::kOpenRow);
    cost.add_row(
        {util::Table::num(ns, 0),
         util::Table::num(100.0 * (static_cast<double>(bfs.cycles) /
                                       bfs_open.cycles -
                                   1.0),
                          1) +
             "%",
         util::Table::num(100.0 * (static_cast<double>(pr.cycles) /
                                       pr_open.cycles -
                                   1.0),
                          1) +
             "%"});
  }
  std::printf("%s\n", cost.render().c_str());
  return 0;
}

}  // namespace

void register_ablation_timeout(Registry& r) {
  ExperimentSpec spec;
  spec.name = "ablation_timeout";
  spec.binary = "bench_ablation_timeout";
  spec.description =
      "Idle-precharge row-timeout ablation: covert-channel collapse and "
      "its performance price";
  spec.kind = Kind::kAblation;
  spec.run = run_ablation_timeout;
  r.add(std::move(spec));
}

}  // namespace impact::lab
