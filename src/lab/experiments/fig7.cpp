// Fig. 7: proof-of-concept validation — the latency the receiver measures
// per bank when decoding a 16-bit message, for (a) IMPACT-PnM (one PEI per
// bank) and (b) IMPACT-PuM (one RowClone per bank).
//
// The paper's receivers decode with a fixed 150-cycle threshold; ours
// calibrate the equivalent threshold from the measured clusters (the
// absolute scale differs with the modeled instrument overheads, the
// bimodal separation is the reproduced property).
#include <cstdio>

#include "attacks/impact_pnm.hpp"
#include "attacks/impact_pum.hpp"
#include "lab/context.hpp"
#include "lab/experiments.hpp"
#include "sys/system.hpp"
#include "util/bitvec.hpp"
#include "util/table.hpp"

namespace impact::lab {
namespace {

template <typename Attack>
void run_poc(const char* label, Attack& attack,
             const impact::util::BitVec& message) {
  const auto result = attack.transmit(message);
  impact::util::Table table(
      {"bank", "bit sent", "receiver latency (cyc)", "decoded"});
  for (std::size_t i = 0; i < message.size(); ++i) {
    table.add_row({std::to_string(i), message.get(i) ? "1" : "0",
                   impact::util::Table::num(attack.last_latencies()[i], 0),
                   result.decoded.get(i) ? "1" : "0"});
  }
  std::printf("--- %s (threshold %.0f cycles) ---\n%s"
              "errors: %zu / %zu\n\n",
              label, attack.threshold(), table.render().c_str(),
              result.report.bit_errors(), result.report.bits_total);
}

int run_fig7(Context&) {
  sys::SystemConfig config;
  std::printf("=== bench_fig7: PoC receiver latencies (16-bit message) ===\n"
              "%s\n",
              config.describe().c_str());

  const auto message = util::BitVec::from_string("0110100111000101");

  {
    sys::MemorySystem system(config);
    attacks::ImpactPnm attack(system);
    run_poc("(a) IMPACT-PnM: PEI per bank", attack, message);
  }
  {
    sys::MemorySystem system(config);
    attacks::ImpactPum attack(system);
    run_poc("(b) IMPACT-PuM: RowClone per bank", attack, message);
  }
  std::printf("Paper: hits cluster below / conflicts above a 150-cycle\n"
              "threshold in both variants; the complete message decodes\n"
              "without error.\n");
  return 0;
}

}  // namespace

void register_fig7(Registry& r) {
  ExperimentSpec spec;
  spec.name = "fig7";
  spec.binary = "bench_fig7";
  spec.description =
      "PoC receiver-latency validation: IMPACT-PnM and IMPACT-PuM decode a "
      "16-bit message";
  spec.kind = Kind::kFigure;
  spec.run = run_fig7;
  r.add(std::move(spec));
}

}  // namespace impact::lab
