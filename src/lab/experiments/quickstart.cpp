// Quickstart: establish both IMPACT covert channels on the Table 2 system
// and transmit a message across each.
//
//   $ impact run quickstart                   # transmit + per-attack obs
//   $ impact run quickstart --trace run.json  # also export a Chrome trace
//
// Demonstrates the core public API: configure a simulated PiM-enabled
// system, construct an attack under an obs::Scope, transmit, and inspect
// the run — metrics from the scope's Snapshot, the timeline as Chrome
// trace_event JSON (open in chrome://tracing or https://ui.perfetto.dev)
// with spans from the dram, pim, and channel layers.
#include <cstdio>
#include <string>

#include "attacks/impact_pnm.hpp"
#include "attacks/impact_pum.hpp"
#include "lab/context.hpp"
#include "lab/experiments.hpp"
#include "obs/scope.hpp"
#include "obs/trace.hpp"
#include "sys/system.hpp"
#include "util/bitvec.hpp"

namespace impact::lab {
namespace {

template <typename Attack>
void run_attack(const sys::SystemConfig& config,
                const util::BitVec& message, obs::TraceSession* trace) {
  // The scope collects everything constructed inside it: the system's DRAM
  // controller taps command traffic, the PiM units their op counts, the
  // attack its per-transmit accounting.
  obs::Scope scope(trace);
  sys::MemorySystem system(config);
  Attack attack(system);
  auto result = attack.transmit(message);
  std::printf("[%s] sent    %s\n", attack.name().c_str(),
              result.sent.to_string().c_str());
  std::printf("[%s] decoded %s\n", attack.name().c_str(),
              result.decoded.to_string().c_str());
  std::printf("[%s] threshold=%.0f cyc  errors=%zu/%zu  "
              "throughput=%.2f Mb/s\n",
              attack.name().c_str(), attack.threshold(),
              result.report.bit_errors(), result.report.bits_total,
              result.report.throughput_mbps(config.frequency()));
  if (obs::kCompiled) {
    std::printf("[%s] obs snapshot:\n%s", attack.name().c_str(),
                scope.snapshot().table("  ").c_str());
  }
  std::printf("\n");
}

int run_quickstart(Context& ctx) {
  const std::string trace_path = ctx.str("trace");

  sys::SystemConfig config;  // Table 2 defaults.
  std::printf("=== Simulated system ===\n%s\n",
              config.describe().c_str());

  const std::string secret = "1011001110001011";
  const auto message = util::BitVec::from_string(secret);

  obs::TraceSession trace;
  obs::TraceSession* tracer = trace_path.empty() ? nullptr : &trace;
  run_attack<attacks::ImpactPnm>(config, message, tracer);
  run_attack<attacks::ImpactPum>(config, message, tracer);

  if (tracer != nullptr) {
    if (!obs::kCompiled) {
      std::printf("--trace: obs spine compiled out (IMPACT_OBS=OFF); "
                  "no events recorded\n");
    }
    if (trace.export_chrome_json(trace_path)) {
      std::printf("trace: %zu events -> %s\n", trace.size(),
                  trace_path.c_str());
    } else {
      std::fprintf(stderr, "trace: failed to write %s\n",
                   trace_path.c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace

void register_quickstart(Registry& r) {
  ExperimentSpec spec;
  spec.name = "quickstart";
  spec.binary = "quickstart";
  spec.description =
      "Both IMPACT covert channels on the Table 2 system: transmit, obs "
      "snapshot, optional Chrome trace";
  spec.kind = Kind::kExample;
  spec.params = {{"trace", "export a Chrome trace_event JSON to this path",
                  ""}};
  spec.run = run_quickstart;
  r.add(std::move(spec));
}

}  // namespace impact::lab
