// Experiment-cache effectiveness on the Fig. 11 defense grid: the same
// (workload x policy) matrix evaluated cold (every cell simulates) and
// warm (every cell replays from the store::ResultCache), with the warm
// results checked bit-for-bit against the cold reference — serially and
// across thread pools.
//
//   $ impact run store             # full Fig. 11 scale
//   $ impact run store --smoke     # reduced scale (CI-friendly)
//   $ IMPACT_STORE_VERIFY=1 impact run store  # warm runs re-simulate + audit
//
// The cache here is deliberately in-memory and private to this process
// (IMPACT_STORE_DIR is ignored): the benchmark times lookup-vs-simulate,
// and a pre-warmed disk directory would corrupt the cold baseline. The
// disk backend is exercised by tools/check.sh's store stage and
// tests/test_store.cpp instead. For the same reason this experiment
// builds its own caches/runners rather than using Context::runner().
//
// Prints a human-readable summary to stderr and one JSON object to stdout
// (consumed by tools/bench.sh when assembling BENCH_simulator.json).
// Harness-timing exception: reads host clocks (SIMLINT-ALLOW below);
// the measured seconds are reported, never fed into simulated state.
#include <chrono>
#include <cstdio>
#include <iterator>
#include <string>
#include <vector>

#include "graph/multiprog.hpp"
#include "lab/context.hpp"
#include "lab/experiments.hpp"

namespace impact::lab {
namespace {

// SIMLINT-ALLOW(nondet-chrono-clock): benchmark harness timing.
double seconds_since(std::chrono::steady_clock::time_point t0) {
  // SIMLINT-ALLOW(nondet-chrono-clock): benchmark harness timing.
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// SIMLINT-ALLOW(nondet-chrono-clock): benchmark harness timing.
std::chrono::steady_clock::time_point bench_now() {
  // SIMLINT-ALLOW(nondet-chrono-clock): benchmark harness timing.
  return std::chrono::steady_clock::now();
}

constexpr dram::RowPolicy kStorePolicies[] = {
    dram::RowPolicy::kOpenRow, dram::RowPolicy::kClosedRow,
    dram::RowPolicy::kConstantTime, dram::RowPolicy::kAdaptive};

/// Canonical byte string of a whole grid result: every cell's record
/// (fingerprint, typed payload, telemetry snapshot) serialized in grid
/// order. Two grid evaluations are bit-identical iff these bytes match —
/// this is the same byte-stability the verify mode leans on.
std::string grid_bytes(const graph::MultiprogConfig& config,
                       const store::CellRunner::MatrixResult& grid) {
  std::string all;
  for (std::size_t w = 0; w < std::size(graph::kAllWorkloads); ++w) {
    for (std::size_t p = 0; p < std::size(kStorePolicies); ++p) {
      const store::Record rec{
          store::matrix_cell_fingerprint(config, graph::kAllWorkloads[w],
                                         kStorePolicies[p]),
          "cell", store::encode(grid.cells[w][p].stats),
          grid.cells[w][p].snapshot};
      all += store::serialize(rec);
    }
  }
  return all;
}

int run_store(Context& ctx) {
  const bool smoke = ctx.smoke();

  graph::MultiprogConfig config;
  if (smoke) {
    // Same shape, 8x smaller input (and hierarchy, to stay in the
    // conflict-bound regime) — seconds instead of tens of seconds.
    config.rmat_scale = 12;
    config.edge_count = 32768;
    config.system.cache_scale = 512;
  }

  // Private in-memory cache (see header comment); verify still honours
  // the environment so the paranoid mode can be smoke-tested.
  store::ResultCache::Options options;
  options.verify = store::ResultCache::options_from_env().verify;
  store::ResultCache cache(options);
  store::WorkloadStore workloads;

  const std::size_t cells =
      std::size(graph::kAllWorkloads) * std::size(kStorePolicies);
  std::fprintf(stderr,
               "bench_store: Fig. 11 matrix (%zu workloads x %zu policies = "
               "%zu cells), %s scale%s\n",
               std::size(graph::kAllWorkloads), std::size(kStorePolicies),
               cells, smoke ? "smoke" : "full",
               options.verify ? ", VERIFY mode (warm runs re-simulate)" : "");

  // Phase 1: cold — every cell simulates, results are published.
  store::CellRunner cold_runner(cache, workloads, nullptr);
  const auto t_cold = bench_now();
  const auto cold =
      cold_runner.defense_matrix(config, graph::kAllWorkloads, kStorePolicies);
  const double cold_s = seconds_since(t_cold);
  if (!cold.ok()) {
    std::fprintf(stderr, "cold sweep failed: %s\n",
                 cold.report.summary().c_str());
    return 1;
  }
  const std::string reference = grid_bytes(config, cold);

  // Phase 2: warm serial — the same grid again; with the store enabled
  // and verify off, every cell is a lookup.
  store::CellRunner warm_runner(cache, workloads, nullptr);
  const auto t_warm = bench_now();
  const auto warm =
      warm_runner.defense_matrix(config, graph::kAllWorkloads, kStorePolicies);
  const double warm_s = seconds_since(t_warm);
  bool identical = warm.ok() && grid_bytes(config, warm) == reference;
  const std::size_t warm_hits = warm.report.cache_hits;

  // Phase 3: warm parallel — cache probes and publishes race from worker
  // threads; results must not care.
  std::vector<double> pool_seconds;
  for (const unsigned threads : {2u, 8u}) {
    exec::ThreadPool pool(threads);
    store::CellRunner pool_runner(cache, workloads, &pool);
    const auto t0 = bench_now();
    const auto result = pool_runner.defense_matrix(
        config, graph::kAllWorkloads, kStorePolicies);
    pool_seconds.push_back(seconds_since(t0));
    identical =
        identical && result.ok() && grid_bytes(config, result) == reference;
  }

  // Hits over all cache-aware tasks: the policy cells plus the per-workload
  // input builds (a fully-warm grid probe-skips those too).
  const double hit_rate = static_cast<double>(warm_hits) /
                          static_cast<double>(warm.report.tasks);
  const double speedup = warm_s > 0.0 ? cold_s / warm_s : 0.0;

  std::fprintf(stderr,
               "cold %.3fs  warm %.4fs (hit rate %.0f%%)  warm pool2 %.4fs  "
               "warm pool8 %.4fs  speedup %.1fx  cells %s\n",
               cold_s, warm_s, 100.0 * hit_rate, pool_seconds[0],
               pool_seconds[1], speedup,
               identical ? "bit-identical" : "MISMATCH");

  std::printf(
      "{\"bench\":\"store\",\"smoke\":%s,\"cells\":%zu,"
      "\"cold_seconds\":%.4f,\"warm_seconds\":%.4f,"
      "\"warm_pool2_seconds\":%.4f,\"warm_pool8_seconds\":%.4f,"
      "\"speedup\":%.4f,\"hit_rate\":%.4f,"
      "\"verify\":%s,\"cells_identical\":%s}\n",
      smoke ? "true" : "false", cells, cold_s, warm_s, pool_seconds[0],
      pool_seconds[1], speedup, hit_rate, options.verify ? "true" : "false",
      identical ? "true" : "false");

  return identical ? 0 : 1;
}

}  // namespace

void register_store(Registry& r) {
  ExperimentSpec spec;
  spec.name = "store";
  spec.binary = "bench_store";
  spec.description =
      "Result-cache effectiveness on the Fig. 11 grid: cold vs warm, "
      "serial and across thread pools";
  spec.kind = Kind::kPerf;
  // The role doubles as this experiment's key in BENCH_simulator.json
  // (tools/bench.sh discovers it from `impact list --json`).
  spec.bench_role = "bench_store";
  spec.cell_count = [](const Context&) {
    return std::size(graph::kAllWorkloads) * std::size(kStorePolicies);
  };
  spec.run = run_store;
  r.add(std::move(spec));
}

}  // namespace impact::lab
