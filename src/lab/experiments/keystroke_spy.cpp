// DRAMA's classic keystroke side channel (§2.3, [68]) rebuilt on PiM
// probes: a victim's keystroke handler touches a fixed buffer row; the
// attacker polls that bank with timed PEIs and recovers the keystroke
// *timing* — the basis for inter-keystroke-interval password inference.
//
//   $ impact run keystroke_spy
#include <cstdio>
#include <vector>

#include "exec/sweep.hpp"
#include "lab/context.hpp"
#include "lab/experiments.hpp"
#include "pim/pei.hpp"
#include "sys/system.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace impact::lab {
namespace {

// Every RNG stream in this driver derives from one base seed via
// exec::derive_seed (the nondet-seed contract; see
// docs/static-analysis.md, rule nondet-seed). The stream index keeps
// the pre-derive_seed seed constant greppable.
constexpr std::uint64_t kSeedBase = 0x5eed;

int run_keystroke_spy(Context&) {
  sys::SystemConfig config;
  sys::MemorySystem system(config);
  const dram::ActorId victim = 1;
  const dram::ActorId attacker = 2;
  const dram::BankId target_bank = 9;

  // Victim: keyboard ISR buffer in row 40 of bank 9. Attacker massages a
  // probe row into the same bank (co-location via mapping knowledge; see
  // attacks/mapping_recon for how that knowledge is obtained).
  const auto victim_buf = system.vmem().map_row(victim, target_bank, 40);
  const auto probe_row = system.vmem().map_row(attacker, target_bank, 41);
  system.warm_span(victim, victim_buf);
  system.warm_span(attacker, probe_row);

  pim::PeiDispatcher victim_pei(pim::PeiConfig{}, system, victim);
  pim::PeiDispatcher attacker_pei(pim::PeiConfig{}, system, attacker);

  // Generate keystrokes: human-ish inter-key intervals of 80-200 ms scaled
  // down 1000x to keep the demo fast (80-200 us of simulated time).
  util::Xoshiro256 rng(exec::derive_seed(kSeedBase, 2025));
  std::vector<util::Cycle> true_times;
  util::Cycle t = 50'000;
  for (int k = 0; k < 12; ++k) {
    t += static_cast<util::Cycle>(2.6e3 * rng.range(80, 200));
    true_times.push_back(t);
  }

  // Co-simulate: the attacker polls; the victim fires at its timestamps.
  std::vector<util::Cycle> detections;
  util::Cycle attacker_clock = 0;
  std::size_t next_key = 0;
  const auto& ts = system.timestamp();
  double threshold = 0.0;
  {  // Calibrate: probe twice (hit), disturb (conflict), probe.
    util::Cycle c = 0;
    auto probe = [&] {
      const auto col = attacker_pei.next_bypass_column(8192, 64);
      const util::Cycle t0 = ts.read(c);
      (void)attacker_pei.execute(probe_row.vaddr + col, c);
      return static_cast<double>(ts.read_fast(c) - t0);
    };
    (void)probe();
    const double hit = probe();
    util::Cycle vc = c;
    (void)victim_pei.execute(victim_buf.vaddr, vc);
    c = vc;
    const double conflict = probe();
    threshold = (hit + conflict) / 2.0;
    attacker_clock = c;
  }

  while (next_key < true_times.size()) {
    // Victim keystroke handler fires when its time comes. It appends to a
    // ring buffer, so each keystroke touches the next 64 B slot — which
    // also keeps the PMU from promoting the handler's PEI host-side (a
    // single hot slot would be served from the cache and become invisible
    // to the attacker; see pim/locality_monitor.hpp).
    if (true_times[next_key] <= attacker_clock) {
      util::Cycle vc = true_times[next_key];
      (void)victim_pei.execute(victim_buf.vaddr + (next_key % 128) * 64,
                               vc);
      ++next_key;
      continue;
    }
    // Attacker probe.
    const auto col = attacker_pei.next_bypass_column(8192, 64);
    const util::Cycle t0 = ts.read(attacker_clock);
    (void)attacker_pei.execute(probe_row.vaddr + col, attacker_clock);
    const util::Cycle t1 = ts.read_fast(attacker_clock);
    if (static_cast<double>(t1 - t0) > threshold) {
      detections.push_back(attacker_clock);
    }
    attacker_clock += 400;  // Polling interval.
  }
  // Drain: catch the final keystroke's evidence.
  for (int i = 0; i < 3; ++i) {
    const auto col = attacker_pei.next_bypass_column(8192, 64);
    const util::Cycle t0 = ts.read(attacker_clock);
    (void)attacker_pei.execute(probe_row.vaddr + col, attacker_clock);
    const util::Cycle t1 = ts.read_fast(attacker_clock);
    if (static_cast<double>(t1 - t0) > threshold) {
      detections.push_back(attacker_clock);
    }
    attacker_clock += 400;
  }

  std::printf("true keystrokes : %zu\n", true_times.size());
  std::printf("detections      : %zu\n", detections.size());
  util::OnlineStats delay;
  std::size_t matched = 0;
  for (std::size_t k = 0; k < true_times.size() && k < detections.size();
       ++k) {
    const auto d = static_cast<double>(detections[k]) -
                   static_cast<double>(true_times[k]);
    if (d >= 0 && d < 3000) {
      ++matched;
      delay.add(d / 2.6);  // ns
    }
  }
  std::printf("matched within one polling interval: %zu "
              "(mean detection delay %.0f ns)\n",
              matched, delay.mean());
  std::printf("\nRecovered inter-keystroke intervals (us, attacker vs "
              "truth):\n");
  for (std::size_t k = 1; k < detections.size() && k < true_times.size();
       ++k) {
    std::printf("  #%zu: %7.1f vs %7.1f\n", k,
                static_cast<double>(detections[k] - detections[k - 1]) /
                    2600.0,
                static_cast<double>(true_times[k] - true_times[k - 1]) /
                    2600.0);
  }
  return 0;
}

}  // namespace

void register_keystroke_spy(Registry& r) {
  ExperimentSpec spec;
  spec.name = "keystroke_spy";
  spec.binary = "keystroke_spy";
  spec.description =
      "DRAMA-style keystroke timing side channel rebuilt on timed PEI "
      "probes";
  spec.kind = Kind::kExample;
  spec.run = run_keystroke_spy;
  r.add(std::move(spec));
}

}  // namespace impact::lab
