#include "lab/args.hpp"

#include <cstdlib>
#include <string>

#include "lab/experiment.hpp"

namespace impact::lab {

namespace {

bool declares_param(const ExperimentSpec& spec, std::string_view name) {
  for (const ParamSpec& p : spec.params) {
    if (p.name == name) return true;
  }
  return false;
}

/// Splits "--flag=value" in place; returns true when an '=' was present.
bool split_eq(std::string_view arg, std::string_view& flag,
              std::string_view& value) {
  const std::size_t eq = arg.find('=');
  if (eq == std::string_view::npos) {
    flag = arg;
    return false;
  }
  flag = arg.substr(0, eq);
  value = arg.substr(eq + 1);
  return true;
}

}  // namespace

bool parse_args(const ExperimentSpec& spec, int argc, const char* const* argv,
                Args& out, std::string& error) {
  std::size_t next_positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.size() < 2 || arg.substr(0, 2) != "--") {
      // Bare word: bind to the next declared positional parameter.
      if (next_positional < spec.positional.size()) {
        out.params[spec.positional[next_positional++]] = std::string(arg);
        continue;
      }
      if (spec.accepts_extra_args) {
        out.extra.emplace_back(arg);
        continue;
      }
      error = "unexpected argument '" + std::string(arg) + "'";
      return false;
    }

    std::string_view flag;
    std::string_view inline_value;
    const bool has_inline = split_eq(arg, flag, inline_value);
    // Fetches the flag's value: the "=..." part if present, else the
    // next argv entry.
    const auto take_value = [&](std::string_view& value) {
      if (has_inline) {
        value = inline_value;
        return true;
      }
      if (i + 1 < argc) {
        value = argv[++i];
        return true;
      }
      error = "flag '" + std::string(flag) + "' expects a value";
      return false;
    };

    if (flag == "--smoke" && !has_inline) {
      out.smoke = true;
    } else if (flag == "--json" && !has_inline) {
      out.json = true;
    } else if (flag == "--filter") {
      std::string_view value;
      if (!take_value(value)) return false;
      out.filter = std::string(value);
    } else if (flag == "--threads") {
      std::string_view value;
      if (!take_value(value)) return false;
      char* end = nullptr;
      const std::string text(value);
      const unsigned long v = std::strtoul(text.c_str(), &end, 10);
      if (end == text.c_str() || *end != '\0' || v == 0 || v > 256) {
        error = "--threads expects an integer in [1, 256], got '" + text + "'";
        return false;
      }
      out.threads = static_cast<unsigned>(v);
    } else if (flag == "--param") {
      std::string_view value;
      if (!take_value(value)) return false;
      const std::size_t eq = value.find('=');
      if (eq == std::string_view::npos || eq == 0) {
        error = "--param expects name=value, got '" + std::string(value) + "'";
        return false;
      }
      const std::string_view name = value.substr(0, eq);
      if (!declares_param(spec, name)) {
        error = "experiment '" + spec.name + "' declares no parameter '" +
                std::string(name) + "'";
        return false;
      }
      out.params[std::string(name)] = std::string(value.substr(eq + 1));
    } else if (flag.size() > 2 && declares_param(spec, flag.substr(2))) {
      std::string_view value;
      if (!take_value(value)) return false;
      out.params[std::string(flag.substr(2))] = std::string(value);
    } else if (spec.accepts_extra_args) {
      out.extra.emplace_back(arg);
    } else {
      error = "unknown flag '" + std::string(arg) + "' for experiment '" +
              spec.name + "'";
      return false;
    }
  }
  return true;
}

bool has_flag(int argc, const char* const* argv, std::string_view flag) {
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

}  // namespace impact::lab
