#include "lab/driver.hpp"

#include <cstdio>
#include <exception>
#include <string>
#include <string_view>

#include "lab/args.hpp"
#include "lab/context.hpp"
#include "lab/registry.hpp"

namespace impact::lab {

namespace {

/// JSON string escaping for the `impact list --json` payload.
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

int run_spec(const ExperimentSpec& spec, int argc, const char* const* argv) {
  Args args;
  std::string error;
  if (!parse_args(spec, argc, argv, args, error)) {
    std::fprintf(stderr, "%s: %s\n", spec.name.c_str(), error.c_str());
    return 2;
  }
  try {
    Context ctx(spec, std::move(args));
    return spec.run(ctx);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", spec.name.c_str(), e.what());
    return 1;
  }
}

int cmd_list(const Registry& registry, int argc, const char* const* argv) {
  bool json = false;
  std::string filter;
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--filter" && i + 1 < argc) {
      filter = argv[++i];
    } else {
      std::fprintf(stderr, "impact list: unknown argument '%s'\n", argv[i]);
      return 2;
    }
  }
  bool first = true;
  if (json) std::printf("{\"experiments\":[");
  for (const ExperimentSpec* spec : registry.all()) {
    if (!filter.empty() && spec->name.find(filter) == std::string::npos) {
      continue;
    }
    if (json) {
      std::printf("%s{\"name\":\"%s\",\"kind\":\"%s\",\"binary\":\"%s\","
                  "\"bench_role\":\"%s\",\"description\":\"%s\"}",
                  first ? "" : ",", json_escape(spec->name).c_str(),
                  kind_name(spec->kind), json_escape(spec->binary).c_str(),
                  json_escape(spec->bench_role).c_str(),
                  json_escape(spec->description).c_str());
    } else {
      std::printf("%-26s %-9s %s\n", spec->name.c_str(),
                  kind_name(spec->kind), spec->description.c_str());
    }
    first = false;
  }
  if (json) std::printf("]}\n");
  return 0;
}

int cmd_describe(const Registry& registry, const ExperimentSpec& spec) {
  (void)registry;
  std::printf("name:        %s\n", spec.name.c_str());
  std::printf("kind:        %s\n", kind_name(spec.kind));
  std::printf("binary:      %s (pre-registry)\n", spec.binary.c_str());
  std::printf("description: %s\n", spec.description.c_str());
  if (spec.cell_count) {
    Context full(spec, Args{});
    Args smoke_args;
    smoke_args.smoke = true;
    Context smoke(spec, smoke_args);
    std::printf("cells:       %zu (%zu in --smoke)\n", spec.cell_count(full),
                spec.cell_count(smoke));
  }
  if (!spec.params.empty()) {
    std::printf("parameters:\n");
    for (const ParamSpec& p : spec.params) {
      std::printf("  --%s <v>   default %s — %s\n", p.name.c_str(),
                  p.default_value.c_str(), p.description.c_str());
    }
  }
  std::printf("run:         impact run %s [--smoke] [--threads N] "
              "[--param k=v]\n",
              spec.name.c_str());
  return 0;
}

void print_usage() {
  std::fprintf(stderr,
               "usage: impact list [--json] [--filter S]\n"
               "       impact describe <name>\n"
               "       impact run <name> [--smoke] [--threads N] "
               "[--param k=v] [args...]\n");
}

}  // namespace

int run_named(std::string_view name, int argc, const char* const* argv) {
  Registry registry;
  register_builtin(registry);
  const ExperimentSpec* spec = registry.find(name);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown experiment '%.*s'\n",
                 static_cast<int>(name.size()), name.data());
    return 2;
  }
  return run_spec(*spec, argc, argv);
}

int impact_main(int argc, const char* const* argv) {
  Registry registry;
  register_builtin(registry);
  if (argc < 2) {
    print_usage();
    return 2;
  }
  const std::string_view cmd = argv[1];
  if (cmd == "list") {
    return cmd_list(registry, argc - 2, argv + 2);
  }
  if (cmd == "describe" || cmd == "run") {
    if (argc < 3) {
      std::fprintf(stderr, "impact %.*s: experiment name required\n",
                   static_cast<int>(cmd.size()), cmd.data());
      print_usage();
      return 2;
    }
    const ExperimentSpec* spec = registry.find(argv[2]);
    if (spec == nullptr) {
      std::fprintf(stderr,
                   "unknown experiment '%s' (see `impact list`)\n", argv[2]);
      return 2;
    }
    if (cmd == "describe") return cmd_describe(registry, *spec);
    // `impact run <name> args...` — hand the spec argv[3..] as its own
    // argv tail (run_spec parses from index 1, so point one before).
    return run_spec(*spec, argc - 2, argv + 2);
  }
  std::fprintf(stderr, "impact: unknown command '%s'\n", argv[1]);
  print_usage();
  return 2;
}

}  // namespace impact::lab
