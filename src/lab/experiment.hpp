// ExperimentSpec: a figure/table/ablation/example as a declarative value.
//
// The source paper's evaluation is a matrix of named artifacts — Fig. 2
// through Fig. 11, Table 1, the ablations, the walkthrough examples.
// Pre-refactor, each artifact was a standalone binary whose identity
// lived in CMake and whose parameters lived in hardcoded locals. A spec
// lifts that identity into data: the name, the parameter schema with
// defaults, how many sweep cells a run enumerates, and the run body
// itself. The registry (registry.hpp) maps names to specs; the driver
// (driver.hpp) is the single front end that executes any of them.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace impact::lab {

class Context;

/// Which shelf of the evaluation the experiment sits on. Used for
/// grouping in `impact list` and for bench.sh discovery.
enum class Kind {
  kFigure,     ///< reproduces a numbered paper figure
  kTable,      ///< reproduces a numbered paper table
  kAblation,   ///< sensitivity study beyond the paper's figures
  kExtension,  ///< post-paper extension experiment
  kExample,    ///< narrative walkthrough (former examples/ binary)
  kPerf,       ///< harness performance benchmark, not a paper artifact
};

/// Human-readable kind label ("figure", "table", ...).
const char* kind_name(Kind kind);

/// One declared parameter: overridable via `--param name=v` or
/// `--<name> v`. The default is stored as text and converted at the
/// access site (Context::u32 etc.) so the schema stays printable.
struct ParamSpec {
  std::string name;
  std::string description;
  std::string default_value;
};

/// The declarative description of one experiment.
struct ExperimentSpec {
  /// Registry key, e.g. "fig11" or "quickstart".
  std::string name;
  /// The pre-refactor binary this spec replaces, e.g. "bench_fig11".
  /// Kept so `impact list` and EXPERIMENTS.md can map old names.
  std::string binary;
  /// One-line summary shown by `impact list`.
  std::string description;
  Kind kind = Kind::kFigure;
  /// Declared parameters, in display order.
  std::vector<ParamSpec> params;
  /// Names of parameters that may also be given as bare positional
  /// arguments, in order (genome_spy's `[banks]`).
  std::vector<std::string> positional;
  /// Role in tools/bench.sh output assembly: "" for experiments that
  /// do not feed BENCH_simulator.json, "micro" for the Google Benchmark
  /// harness, otherwise the JSON key the run's stdout lands under.
  std::string bench_role;
  /// True for specs wrapping an external harness with its own flags
  /// (Google Benchmark): unknown argv entries pass through in
  /// Args::extra instead of erroring.
  bool accepts_extra_args = false;
  /// Number of sweep cells a run at these settings enumerates (smoke
  /// flag comes from the Context). Used by `impact describe` and the
  /// cell-count pins in test_lab. Zero means "not cell-structured".
  std::function<std::size_t(const Context&)> cell_count;
  /// The experiment body. Receives the fully wired Context (pool,
  /// cache, journal, parameter resolution) and returns a process exit
  /// code. Must write the same bytes to stdout the old binary wrote.
  std::function<int(Context&)> run;
};

}  // namespace impact::lab
