// Context: the wired-up environment an experiment body runs in.
//
// Pre-refactor every heavy driver repeated the same main() prologue:
// construct an exec::ThreadPool (IMPACT_THREADS), a store::ResultCache
// from env, a store::WorkloadStore, a store::CellRunner over the three,
// and bind resil::journal_from_env() when IMPACT_JOURNAL is set. Context
// owns that prologue once, lazily — an example that never touches the
// runner never constructs a cache — and layers parameter resolution on
// top: explicit --param overrides win over the spec's declared defaults,
// and asking for an undeclared parameter throws (the schema is the
// contract, not a suggestion).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "lab/args.hpp"
#include "lab/experiment.hpp"

namespace impact::exec {
class ThreadPool;
}
namespace impact::resil {
class Journal;
}
namespace impact::store {
class CellRunner;
class ResultCache;
class WorkloadStore;
}  // namespace impact::store

namespace impact::lab {

class Context {
 public:
  /// Borrows the spec; it must outlive the context (registry entries do).
  Context(const ExperimentSpec& spec, Args args);
  ~Context();

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  [[nodiscard]] const ExperimentSpec& spec() const { return spec_; }
  [[nodiscard]] const Args& args() const { return args_; }
  [[nodiscard]] bool smoke() const { return args_.smoke; }

  /// Resolved parameter value: the --param override if given, else the
  /// spec default. Throws std::invalid_argument for names the spec does
  /// not declare, and for values the numeric accessors cannot parse.
  [[nodiscard]] std::string str(std::string_view name) const;
  [[nodiscard]] std::uint32_t u32(std::string_view name) const;
  [[nodiscard]] std::uint64_t u64(std::string_view name) const;
  [[nodiscard]] double f64(std::string_view name) const;

  /// Shared worker pool, created on first use. --threads N overrides the
  /// IMPACT_THREADS/-hardware default.
  [[nodiscard]] exec::ThreadPool& pool();

  /// Result cache built from IMPACT_STORE* env, created on first use.
  [[nodiscard]] store::ResultCache& cache();

  /// Shared workload input store, created on first use.
  [[nodiscard]] store::WorkloadStore& workloads();

  /// CellRunner over pool()/cache()/workloads(), with the IMPACT_JOURNAL
  /// crash journal bound when the env asks for one. Created on first use.
  [[nodiscard]] store::CellRunner& runner();

 private:
  const ExperimentSpec& spec_;
  Args args_;
  std::unique_ptr<exec::ThreadPool> pool_;
  std::unique_ptr<store::ResultCache> cache_;
  std::unique_ptr<store::WorkloadStore> workloads_;
  std::unique_ptr<resil::Journal> journal_;
  std::unique_ptr<store::CellRunner> runner_;
};

}  // namespace impact::lab
