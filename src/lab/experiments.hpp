// The built-in experiment catalogue: one register function per former
// driver binary (20 bench_* + 6 examples/*), each installing its spec
// into a lab::Registry. register_builtin() (registry.hpp) calls all of
// them. The pure renderers the golden byte-identity tests pin are also
// declared here — they take already-computed grid results, so a test can
// feed a synthetic grid and compare bytes without simulating.
#pragma once

#include <string>
#include <vector>

#include "lab/registry.hpp"
#include "store/cell_runner.hpp"

namespace impact::lab {

// Paper figures.
void register_fig2(Registry& r);
void register_fig3(Registry& r);
void register_fig7(Registry& r);
void register_fig8(Registry& r);
void register_fig9(Registry& r);
void register_fig10(Registry& r);
void register_fig11(Registry& r);

// Paper table and single-figure studies.
void register_table1(Registry& r);
void register_rowbuffer(Registry& r);
void register_completion_attack(Registry& r);
void register_mpr_utilization(Registry& r);
void register_rm_offload(Registry& r);

// Ablations.
void register_ablation_camouflage(Registry& r);
void register_ablation_faults(Registry& r);
void register_ablation_noise(Registry& r);
void register_ablation_sweep(Registry& r);
void register_ablation_timeout(Registry& r);

// Harness performance benchmarks.
void register_sweep_scaling(Registry& r);
void register_store(Registry& r);
void register_simulator_perf(Registry& r);

// Walkthrough examples.
void register_quickstart(Registry& r);
void register_covert_channel_comparison(Registry& r);
void register_defense_tradeoffs(Registry& r);
void register_genome_spy(Registry& r);
void register_keystroke_spy(Registry& r);
void register_rowclone_bulk_copy(Registry& r);

/// Fig. 11 body below the header line: defense-overhead table, averages
/// paragraph, and (obs builds) the merged grid totals. Pure function of
/// the grid so test_lab can pin its bytes against a synthetic grid.
[[nodiscard]] std::string render_fig11(
    const store::CellRunner::MatrixResult& grid);

/// Ablation-faults body below the header: the rendered fault-scale table
/// plus the closing interpretation paragraph. Pure function of the
/// CellRunner rows.
[[nodiscard]] std::string render_ablation_faults(
    const std::vector<std::vector<std::string>>& rows);

}  // namespace impact::lab
