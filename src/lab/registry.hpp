// Registry: the named catalogue of every experiment the repo can run.
//
// One entry per former driver binary — every paper figure/table, every
// ablation, every walkthrough example. The registry is an instance (no
// static self-registration: the simlint global-state rule bans dynamic
// initializers, and a static library would drop unreferenced
// registration objects anyway); register_builtin() explicitly installs
// the full built-in catalogue and is the single place a new experiment
// gets added.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "lab/experiment.hpp"

namespace impact::lab {

class Registry {
 public:
  /// Installs a spec. Throws std::invalid_argument on an empty name, a
  /// missing run body, or a name already registered — a duplicate means
  /// two experiments claim the same `impact run` identity, which is
  /// always a programming error.
  void add(ExperimentSpec spec);

  /// Spec by name, or nullptr.
  [[nodiscard]] const ExperimentSpec* find(std::string_view name) const;

  /// All specs in name order.
  [[nodiscard]] std::vector<const ExperimentSpec*> all() const;

  [[nodiscard]] std::size_t size() const { return specs_.size(); }

 private:
  std::map<std::string, ExperimentSpec, std::less<>> specs_;
};

/// Installs every built-in experiment (the 26 former driver binaries).
void register_builtin(Registry& registry);

}  // namespace impact::lab
