#include "lab/context.hpp"

#include <stdexcept>

#include "exec/thread_pool.hpp"
#include "resil/journal.hpp"
#include "store/cell_runner.hpp"
#include "store/result_cache.hpp"
#include "store/workload_store.hpp"

namespace impact::lab {

Context::Context(const ExperimentSpec& spec, Args args)
    : spec_(spec), args_(std::move(args)) {}

Context::~Context() = default;

std::string Context::str(std::string_view name) const {
  const auto over = args_.params.find(name);
  if (over != args_.params.end()) return over->second;
  for (const ParamSpec& p : spec_.params) {
    if (p.name == name) return p.default_value;
  }
  throw std::invalid_argument("experiment '" + spec_.name +
                              "' declares no parameter '" +
                              std::string(name) + "'");
}

namespace {

[[noreturn]] void bad_value(const ExperimentSpec& spec, std::string_view name,
                            const std::string& value, const char* want) {
  throw std::invalid_argument("parameter '" + std::string(name) + "' of '" +
                              spec.name + "': '" + value + "' is not " + want);
}

}  // namespace

std::uint32_t Context::u32(std::string_view name) const {
  const std::uint64_t v = u64(name);
  if (v > 0xffffffffULL) bad_value(spec_, name, str(name), "a 32-bit value");
  return static_cast<std::uint32_t>(v);
}

std::uint64_t Context::u64(std::string_view name) const {
  const std::string value = str(name);
  try {
    std::size_t used = 0;
    const std::uint64_t v = std::stoull(value, &used);
    if (used != value.size()) bad_value(spec_, name, value, "an integer");
    return v;
  } catch (const std::invalid_argument&) {
    bad_value(spec_, name, value, "an integer");
  } catch (const std::out_of_range&) {
    bad_value(spec_, name, value, "an integer in range");
  }
}

double Context::f64(std::string_view name) const {
  const std::string value = str(name);
  try {
    std::size_t used = 0;
    const double v = std::stod(value, &used);
    if (used != value.size()) bad_value(spec_, name, value, "a number");
    return v;
  } catch (const std::invalid_argument&) {
    bad_value(spec_, name, value, "a number");
  } catch (const std::out_of_range&) {
    bad_value(spec_, name, value, "a number in range");
  }
}

exec::ThreadPool& Context::pool() {
  if (!pool_) {
    pool_ = args_.threads > 0 ? std::make_unique<exec::ThreadPool>(args_.threads)
                              : std::make_unique<exec::ThreadPool>();
  }
  return *pool_;
}

store::ResultCache& Context::cache() {
  if (!cache_) {
    cache_ = std::make_unique<store::ResultCache>(
        store::ResultCache::options_from_env());
  }
  return *cache_;
}

store::WorkloadStore& Context::workloads() {
  if (!workloads_) workloads_ = std::make_unique<store::WorkloadStore>();
  return *workloads_;
}

store::CellRunner& Context::runner() {
  if (!runner_) {
    runner_ =
        std::make_unique<store::CellRunner>(cache(), workloads(), &pool());
    journal_ = resil::journal_from_env();
    if (journal_) runner_->set_journal(journal_.get());
  }
  return *runner_;
}

}  // namespace impact::lab
