#include "pim/rowclone.hpp"

#include "obs/scope.hpp"
#include "util/assert.hpp"

namespace impact::pim {

RowCloneUnit::RowCloneUnit(RowCloneConfig config, sys::MemorySystem& system,
                           dram::ActorId actor)
    : config_(config), system_(&system), actor_(actor) {
  if (obs::Registry* reg = obs::current_registry()) {
    obs_ops_ = reg->counter("pim.rowclone.ops");
    obs_legs_ = reg->counter("pim.rowclone.legs");
    // Masked-bank occupancy: how many banks each clone touched (1..64).
    obs_occupancy_ = reg->distribution("pim.rowclone.mask_banks", 0.0, 65.0,
                                       65);
    obs_trace_ = obs::current_trace();
  }
}

// SIMLINT-HOT-BEGIN: per-access fast path — no allocation, no
// std::string, no by-name registry resolves (docs/static-analysis.md).
void RowCloneUnit::execute_into(const RowCloneRequest& request,
                                util::Cycle& clock, bool atomic,
                                dram::RowCloneResult& out) {
  util::check(request.mask != 0, "RowCloneUnit: empty bank mask");
  auto& vmem = system_->vmem();
  const auto& mapping = system_->controller().mapping();
  const std::uint64_t row_bytes = mapping.row_bytes();

  std::vector<dram::RowCloneLeg>& legs = legs_scratch_;
  legs.clear();
  for (std::uint32_t k = 0; k < 64; ++k) {
    if (((request.mask >> k) & 1ull) == 0) continue;
    const sys::VAddr src_chunk = request.src + k * row_bytes;
    const sys::VAddr dst_chunk = request.dst + k * row_bytes;
    const auto src_loc =
        mapping.decode(vmem.translate(actor_, src_chunk));
    const auto dst_loc =
        mapping.decode(vmem.translate(actor_, dst_chunk));
    util::check(src_loc.bank == dst_loc.bank,
                "RowCloneUnit: chunk k of src and dst map to different banks");
    util::check(src_loc.col == 0 && dst_loc.col == 0,
                "RowCloneUnit: ranges must be row-aligned");
    legs.push_back(dram::RowCloneLeg{src_loc.bank, src_loc.row, dst_loc.row});
  }
  util::check(!legs.empty(), "RowCloneUnit: mask selects no mapped chunk");

  system_->controller().rowclone_into(legs, clock + config_.issue_latency,
                                      atomic, actor_, out);
  const util::Cycle core_wait =
      config_.blocking ? out.latency : out.ack_latency;
  // `latency` reports what the issuing core observed (and what a timing
  // attacker can measure); `completion` still records when the copy is done.
  out.latency = core_wait + config_.issue_latency + config_.response_latency;
  clock += out.latency;
  if (obs_ops_) {
    obs_ops_.add();
    obs_legs_.add(legs.size());
    obs_occupancy_.add(static_cast<double>(legs.size()));
  }
  if (obs_trace_ != nullptr) {
    obs_trace_->span("pim", "rowclone", clock - out.latency, clock, actor_);
  }
}
// SIMLINT-HOT-END

}  // namespace impact::pim
