#include "pim/offchip_predictor.hpp"

#include <algorithm>
#include <array>

namespace impact::pim {

namespace {

std::size_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 33;
  return static_cast<std::size_t>(x);
}

}  // namespace

OffChipPredictor::OffChipPredictor(OffChipPredictorConfig config)
    : config_(config),
      w_block_(config.table_size, 0),
      w_page_(config.table_size, 0),
      w_region_(config.table_size, 0),
      bias_(config.initial_bias) {}

std::array<std::size_t, 3> OffChipPredictor::features(
    std::uint64_t block) const {
  return {mix(block) % config_.table_size,
          mix(block >> 6) % config_.table_size,      // 4 KiB page.
          mix(block >> 12) % config_.table_size};    // 256 KiB region.
}

std::int32_t OffChipPredictor::sum(std::uint64_t block) const {
  const auto f = features(block);
  return bias_ + w_block_[f[0]] + w_page_[f[1]] + w_region_[f[2]];
}

bool OffChipPredictor::predict_offchip(std::uint64_t block) const {
  ++stats_.predictions;
  const bool offchip = sum(block) >= config_.threshold;
  if (offchip) ++stats_.predicted_offchip;
  return offchip;
}

void OffChipPredictor::train(std::uint64_t block, bool was_offchip) {
  const std::int32_t dir = was_offchip ? 1 : -1;
  const auto f = features(block);
  auto bump = [&](std::int32_t& w) {
    w = std::clamp(w + dir, config_.weight_min, config_.weight_max);
  };
  bump(w_block_[f[0]]);
  bump(w_page_[f[1]]);
  bump(w_region_[f[2]]);
}

bool OffChipPredictor::predict_and_train(std::uint64_t block,
                                         bool was_offchip) {
  const bool prediction = predict_offchip(block);
  if (prediction == was_offchip) ++stats_.correct;
  train(block, was_offchip);
  return prediction;
}

}  // namespace impact::pim
