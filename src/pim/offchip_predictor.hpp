// Perceptron-based off-chip load predictor (Hermes, Bera et al. MICRO'22),
// used by the PnM-OffChip comparison point (§5.1, attack (v)).
//
// In the PnM-OffChip architecture the predictor replaces the simple PMU
// locality monitor: a PEI whose target is predicted to be on-chip (cached /
// high locality) executes on the host CPU, where it enjoys the cache
// hierarchy but does *not* touch a DRAM row — which is precisely why the
// attack loses throughput when the predictor routes its operations
// host-side. The predictor trains online on the true outcome (was the line
// actually resident?).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace impact::pim {

struct OffChipPredictorConfig {
  std::uint32_t table_size = 1024;   ///< Weights per feature table.
  std::int32_t threshold = 0;        ///< Decision threshold on the sum.
  std::int32_t weight_min = -32;
  std::int32_t weight_max = 31;
  /// Initial bias: loads start out predicted off-chip (an empty cache).
  std::int32_t initial_bias = 4;
};

struct OffChipPredictorStats {
  std::uint64_t predictions = 0;
  std::uint64_t predicted_offchip = 0;
  std::uint64_t correct = 0;

  [[nodiscard]] double accuracy() const {
    return predictions == 0
               ? 0.0
               : static_cast<double>(correct) /
                     static_cast<double>(predictions);
  }
};

class OffChipPredictor {
 public:
  explicit OffChipPredictor(OffChipPredictorConfig config = {});

  /// True = predicted off-chip (execute memory-side).
  [[nodiscard]] bool predict_offchip(std::uint64_t block) const;

  /// Online training with the observed truth for `block`.
  void train(std::uint64_t block, bool was_offchip);

  /// Convenience: predict, then train against the truth, returning the
  /// prediction that was acted upon.
  bool predict_and_train(std::uint64_t block, bool was_offchip);

  [[nodiscard]] const OffChipPredictorStats& stats() const { return stats_; }

 private:
  /// Feature hashes: block address, 4 KiB page, 64-block region.
  [[nodiscard]] std::array<std::size_t, 3> features(
      std::uint64_t block) const;
  [[nodiscard]] std::int32_t sum(std::uint64_t block) const;

  OffChipPredictorConfig config_;
  // One weight table per feature.
  std::vector<std::int32_t> w_block_;
  std::vector<std::int32_t> w_page_;
  std::vector<std::int32_t> w_region_;
  std::int32_t bias_;
  mutable OffChipPredictorStats stats_;
};

}  // namespace impact::pim
