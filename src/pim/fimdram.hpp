// A FIMDRAM-flavoured PnM interface (Kwon et al., ISSCC'21).
//
// §4.1: "our attack can be generalized for other PnM architectures with
// similar design components (e.g., FIMDRAM)". FIMDRAM places a SIMD
// programmable compute unit (PCU) per bank pair and is driven by the host
// through memory-mapped command registers; it executes either single-bank
// operations or *all-bank* operations where every bank performs the same
// row-indexed op in lockstep. There is no PEI-style locality monitor: PIM
// commands always reach the banks directly — which makes the attack
// simpler (no ignore-flag bypass needed), trading away the PMU's benign
// locality benefits.
#pragma once

#include <cstdint>
#include <vector>

#include "dram/controller.hpp"
#include "util/units.hpp"

namespace impact::pim {

struct FimConfig {
  /// Uncached MMIO write that lodges one command register value.
  util::Cycle mmio_write_cost = 12;
  /// The per-bank execution unit's compute time per op.
  util::Cycle unit_compute = 2;
  /// Completion/status readback.
  util::Cycle status_read_cost = 6;
};

struct FimResult {
  util::Cycle latency = 0;
  dram::RowBufferOutcome outcome = dram::RowBufferOutcome::kEmpty;
  /// Per-bank outcomes for all-bank operations.
  std::vector<dram::RowBufferOutcome> bank_outcomes;
};

/// Host-side driver handle for the FIMDRAM-like device.
class FimDispatcher {
 public:
  FimDispatcher(FimConfig config, dram::MemoryController& controller,
                dram::ActorId actor)
      : config_(config), controller_(&controller), actor_(actor) {}

  /// Single-bank PIM op on (bank, row): one command register write, one
  /// bank access, unit compute, status readback. The attacker's timed
  /// probe primitive.
  FimResult execute_bank(dram::BankId bank, dram::RowId row,
                         util::Cycle& clock);

  /// All-bank PIM op: every bank activates `row` and computes in lockstep
  /// off a single command (the device's hallmark mode; one MMIO write
  /// initializes the whole device's row buffers).
  FimResult execute_all_bank(dram::RowId row, util::Cycle& clock);

  [[nodiscard]] const FimConfig& config() const { return config_; }

 private:
  FimConfig config_;
  dram::MemoryController* controller_;
  dram::ActorId actor_;
};

}  // namespace impact::pim
