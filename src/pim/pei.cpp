#include "pim/pei.hpp"

#include "obs/scope.hpp"

namespace impact::pim {

PeiDispatcher::PeiDispatcher(PeiConfig config, sys::MemorySystem& system,
                             dram::ActorId actor)
    : config_(config), system_(&system), actor_(actor), pmu_(config.pmu) {
  if (obs::Registry* reg = obs::current_registry()) {
    obs_ops_ = reg->counter("pim.pei.ops");
    obs_memory_side_ = reg->counter("pim.pei.memory_side");
    obs_host_side_ = reg->counter("pim.pei.host_side");
    obs_trace_ = obs::current_trace();
  }
}

// SIMLINT-HOT-BEGIN: per-access fast path — no allocation, no
// std::string, no by-name registry resolves (docs/static-analysis.md).
PeiResult PeiDispatcher::execute(sys::VAddr vaddr, util::Cycle& clock,
                                 PeiKind /*kind*/) {
  PeiResult r;
  // PEIs carry virtual addresses; translation happens on the host side
  // before dispatch (as in the PEI architecture).
  const auto tr = system_->translate(actor_, vaddr);
  system_->charge_walk_traffic(actor_, vaddr, tr.walked, clock);
  const dram::PhysAddr paddr = system_->vmem().translate(actor_, vaddr);
  util::Cycle latency = tr.latency + config_.pmu.lookup_latency;

  const std::uint64_t block = paddr / 64;
  r.placement = pmu_.decide(block);

  if (r.placement == PeiPlacement::kHost) {
    // Host-side PCU: a normal cached load plus the compute. No DRAM row is
    // touched when the line hits in the cache hierarchy.
    const auto mem = system_->hierarchy(actor_).access(paddr, clock + latency);
    latency += mem.latency + config_.pcu_compute_latency;
    r.outcome = mem.dram_outcome;
    r.bank = system_->controller().mapping().decode(paddr).bank;
    if (mem.level != cache::HitLevel::kMemory) {
      // Mark that no bank state changed: callers treat a non-memory
      // outcome of a host-placed PEI as "no interference generated".
      r.outcome = dram::RowBufferOutcome::kHit;
    }
  } else {
    // Memory-side PCU: uncacheable request straight to the bank.
    latency += config_.offchip_issue_latency;
    const auto mem =
        system_->controller().access(paddr, clock + latency, actor_);
    latency += mem.latency + config_.pcu_compute_latency +
               config_.response_latency;
    r.outcome = mem.outcome;
    r.bank = mem.bank;
  }
  r.latency = latency;
  clock += latency;
  if (obs_ops_) {
    obs_ops_.add();
    (r.placement == PeiPlacement::kHost ? obs_host_side_ : obs_memory_side_)
        .add();
  }
  if (obs_trace_ != nullptr) {
    obs_trace_->span("pim",
                     r.placement == PeiPlacement::kHost ? "pei-host"
                                                        : "pei-memory",
                     clock - latency, clock, actor_);
  }
  return r;
}
// SIMLINT-HOT-END

std::uint32_t PeiDispatcher::next_bypass_column(std::uint32_t row_bytes,
                                                std::uint32_t line_bytes) {
  const std::uint32_t blocks = row_bytes / line_bytes;
  const std::uint32_t col = (bypass_cursor_ % blocks) * line_bytes;
  ++bypass_cursor_;
  return col;
}

}  // namespace impact::pim
