#include "pim/pei.hpp"

#include "obs/scope.hpp"

namespace impact::pim {

PeiDispatcher::PeiDispatcher(PeiConfig config, sys::MemorySystem& system,
                             dram::ActorId actor)
    : config_(config),
      system_(&system),
      actor_(actor),
      pmu_(config.pmu),
      // Resolve the per-actor structures once. Eager context creation is
      // timing-invisible: contexts carry no clock state and are
      // independent of each other.
      tlb_(&system.tlb(actor)),
      hier_(&system.hierarchy(actor)),
      mc_(&system.controller()),
      view_(system.vmem().view(actor)) {
  if (obs::Registry* reg = obs::current_registry()) {
    obs_ops_ = reg->counter("pim.pei.ops");
    obs_memory_side_ = reg->counter("pim.pei.memory_side");
    obs_host_side_ = reg->counter("pim.pei.host_side");
    obs_trace_ = obs::current_trace();
  }
}

// SIMLINT-HOT-BEGIN: per-access fast path — no allocation, no
// std::string, no by-name registry resolves (docs/static-analysis.md).
PeiResult PeiDispatcher::execute_one(sys::VAddr vaddr, util::Cycle& clock) {
  PeiResult r;
  // PEIs carry virtual addresses; translation happens on the host side
  // before dispatch (as in the PEI architecture).
  const auto tr = tlb_->translate(vaddr, view_.is_huge(vaddr));
  if (tr.walked) {
    system_->charge_walk_traffic(actor_, vaddr, /*walked=*/true, clock);
  }
  const dram::PhysAddr paddr = view_.translate(vaddr);
  util::Cycle latency = tr.latency + config_.pmu.lookup_latency;

  const std::uint64_t block = paddr / 64;
  r.placement = pmu_.decide(block);

  if (r.placement == PeiPlacement::kHost) {
    // Host-side PCU: a normal cached load plus the compute. No DRAM row is
    // touched when the line hits in the cache hierarchy.
    const auto mem = hier_->access(paddr, clock + latency);
    latency += mem.latency + config_.pcu_compute_latency;
    r.outcome = mem.dram_outcome;
    r.bank = mc_->mapping().decode(paddr).bank;
    if (mem.level != cache::HitLevel::kMemory) {
      // Mark that no bank state changed: callers treat a non-memory
      // outcome of a host-placed PEI as "no interference generated".
      r.outcome = dram::RowBufferOutcome::kHit;
    }
  } else {
    // Memory-side PCU: uncacheable request straight to the bank.
    latency += config_.offchip_issue_latency;
    const auto mem = mc_->access(paddr, clock + latency, actor_);
    latency += mem.latency + config_.pcu_compute_latency +
               config_.response_latency;
    r.outcome = mem.outcome;
    r.bank = mem.bank;
  }
  r.latency = latency;
  clock += latency;
  return r;
}

PeiResult PeiDispatcher::execute(sys::VAddr vaddr, util::Cycle& clock,
                                 PeiKind /*kind*/) {
  const PeiResult r = execute_one(vaddr, clock);
  if (obs_ops_) {
    obs_ops_.add();
    (r.placement == PeiPlacement::kHost ? obs_host_side_ : obs_memory_side_)
        .add();
  }
  if (obs_trace_ != nullptr) {
    obs_trace_->span("pim",
                     r.placement == PeiPlacement::kHost ? "pei-host"
                                                        : "pei-memory",
                     clock - r.latency, clock, actor_);
  }
  return r;
}

void PeiDispatcher::execute_batch(const sys::VAddr* vaddrs, std::size_t n,
                                  util::Cycle& clock, util::Cycle pre_cost,
                                  util::Cycle post_cost, PeiResult* results) {
  std::uint64_t host_side = 0;
  for (std::size_t i = 0; i < n; ++i) {
    clock += pre_cost;
    results[i] = execute_one(vaddrs[i], clock);
    if (obs_trace_ != nullptr) {
      // Per-op spans are part of the trace contract; only the null guard
      // and the counter updates are hoisted out of the loop.
      obs_trace_->span("pim",
                       results[i].placement == PeiPlacement::kHost
                           ? "pei-host"
                           : "pei-memory",
                       clock - results[i].latency, clock, actor_);
    }
    host_side +=
        static_cast<std::uint64_t>(results[i].placement == PeiPlacement::kHost);
    clock += post_cost;
  }
  if (obs_ops_ && n > 0) {
    obs_ops_.add(n);
    obs_host_side_.add(host_side);
    obs_memory_side_.add(n - host_side);
  }
}
// SIMLINT-HOT-END

std::uint32_t PeiDispatcher::next_bypass_column(std::uint32_t row_bytes,
                                                std::uint32_t line_bytes) {
  const std::uint32_t blocks = row_bytes / line_bytes;
  const std::uint32_t col = (bypass_cursor_ % blocks) * line_bytes;
  ++bypass_cursor_;
  return col;
}

}  // namespace impact::pim
