#include "pim/fimdram.hpp"

#include <algorithm>

namespace impact::pim {

FimResult FimDispatcher::execute_bank(dram::BankId bank, dram::RowId row,
                                      util::Cycle& clock) {
  FimResult r;
  util::Cycle latency = config_.mmio_write_cost;
  const auto mem =
      controller_->access_row(bank, row, clock + latency, actor_);
  latency += mem.latency + config_.unit_compute + config_.status_read_cost;
  r.latency = latency;
  r.outcome = mem.outcome;
  clock += latency;
  return r;
}

FimResult FimDispatcher::execute_all_bank(dram::RowId row,
                                          util::Cycle& clock) {
  FimResult r;
  const util::Cycle issue = clock + config_.mmio_write_cost;
  util::Cycle max_completion = issue;
  r.bank_outcomes.reserve(controller_->banks());
  for (dram::BankId b = 0; b < controller_->banks(); ++b) {
    const auto mem = controller_->access_row(b, row, issue, actor_);
    r.bank_outcomes.push_back(mem.outcome);
    max_completion = std::max(max_completion, mem.completion);
  }
  r.outcome = r.bank_outcomes.empty() ? dram::RowBufferOutcome::kEmpty
                                      : r.bank_outcomes.front();
  r.latency = (max_completion - clock) + config_.unit_compute +
              config_.status_read_cost;
  clock += r.latency;
  return r;
}

}  // namespace impact::pim
