// The PEI Management Unit's locality monitor (Ahn et al., ISCA'15).
//
// The PMU decides, per PEI, whether to execute it on a host-side PCU
// (benefiting from caches when the target data has locality) or on the
// PCU near the target DRAM bank. It tracks recently targeted cache blocks
// in a small tag store; a block judged "hot" runs host-side.
//
// The detail IMPACT-PnM exploits (§4.1): each entry carries an *ignore
// flag* so the first hit after allocation does not count as locality —
// treating an operation as hot on its very first re-reference is too
// aggressive. An attacker touching each block at most twice therefore
// never triggers host-side placement, even with a small address range.
#pragma once

#include <cstdint>
#include <vector>

#include "util/units.hpp"

namespace impact::pim {

/// Where the PMU routed a PEI.
enum class PeiPlacement : std::uint8_t { kMemory, kHost };

[[nodiscard]] constexpr const char* to_string(PeiPlacement p) {
  return p == PeiPlacement::kMemory ? "memory" : "host";
}

struct LocalityMonitorConfig {
  std::uint32_t entries = 64;
  std::uint32_t ways = 4;
  /// Counted (non-ignored) hits needed before a block is judged hot.
  std::uint32_t hot_threshold = 2;
  util::Cycle lookup_latency = 2;
};

struct LocalityMonitorStats {
  std::uint64_t lookups = 0;
  std::uint64_t allocations = 0;
  std::uint64_t ignored_first_hits = 0;
  std::uint64_t host_decisions = 0;
  std::uint64_t memory_decisions = 0;
};

class LocalityMonitor {
 public:
  explicit LocalityMonitor(LocalityMonitorConfig config = {});

  [[nodiscard]] const LocalityMonitorConfig& config() const {
    return config_;
  }

  /// Looks up the cache block (line address) targeted by a PEI and decides
  /// its placement, updating the tag store.
  PeiPlacement decide(std::uint64_t block);

  [[nodiscard]] const LocalityMonitorStats& stats() const { return stats_; }
  void reset_stats() { stats_ = LocalityMonitorStats{}; }

 private:
  struct Entry {
    bool valid = false;
    std::uint64_t tag = 0;
    std::uint32_t hits = 0;
    bool ignore = false;
    std::uint64_t lru = 0;
  };

  LocalityMonitorConfig config_;
  std::uint32_t sets_;
  std::vector<Entry> entries_;
  std::uint64_t tick_ = 0;
  LocalityMonitorStats stats_;
};

}  // namespace impact::pim
