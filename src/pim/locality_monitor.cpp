#include "pim/locality_monitor.hpp"

#include "util/assert.hpp"

namespace impact::pim {

LocalityMonitor::LocalityMonitor(LocalityMonitorConfig config)
    : config_(config) {
  util::check(config_.entries % config_.ways == 0,
              "LocalityMonitor: entries must be divisible by ways");
  sets_ = config_.entries / config_.ways;
  util::check(sets_ > 0, "LocalityMonitor: needs at least one set");
  entries_.assign(config_.entries, Entry{});
}

PeiPlacement LocalityMonitor::decide(std::uint64_t block) {
  ++stats_.lookups;
  ++tick_;
  const std::uint32_t set = static_cast<std::uint32_t>(block % sets_);
  const std::size_t base = static_cast<std::size_t>(set) * config_.ways;

  Entry* found = nullptr;
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    Entry& e = entries_[base + w];
    if (e.valid && e.tag == block) {
      found = &e;
      break;
    }
  }

  if (found == nullptr) {
    // Allocate (LRU victim) with the ignore flag set: the next hit will
    // not count towards locality.
    Entry* victim = &entries_[base];
    for (std::uint32_t w = 0; w < config_.ways; ++w) {
      Entry& e = entries_[base + w];
      if (!e.valid) {
        victim = &e;
        break;
      }
      if (e.lru < victim->lru) victim = &e;
    }
    *victim = Entry{true, block, 0, true, tick_};
    ++stats_.allocations;
    ++stats_.memory_decisions;
    return PeiPlacement::kMemory;
  }

  found->lru = tick_;
  if (found->ignore) {
    found->ignore = false;
    ++stats_.ignored_first_hits;
    ++stats_.memory_decisions;
    return PeiPlacement::kMemory;
  }
  ++found->hits;
  if (found->hits >= config_.hot_threshold) {
    ++stats_.host_decisions;
    return PeiPlacement::kHost;
  }
  ++stats_.memory_decisions;
  return PeiPlacement::kMemory;
}

}  // namespace impact::pim
