// PIM-Enabled Instructions: the PnM execution path.
//
// A PEI (e.g. `pim_add`) names a virtual address; after translation the PMU
// locality monitor routes it either to the PCU near the target DRAM bank
// (bypassing the whole cache hierarchy) or to the host-side PCU (a normal
// cached access plus the compute). Memory-side execution is the direct,
// fast, ISA-guaranteed main-memory access IMPACT-PnM builds on (§4.1).
#pragma once

#include <cstdint>

#include "cache/hierarchy.hpp"
#include "dram/controller.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "pim/locality_monitor.hpp"
#include "sys/system.hpp"
#include "util/units.hpp"

namespace impact::pim {

enum class PeiKind : std::uint8_t { kAdd, kMin, kBitwise, kCopy };

struct PeiConfig {
  /// Getting the PEI packet from the core to the memory controller /
  /// memory-side PCU command queue (uncacheable request path).
  util::Cycle offchip_issue_latency = 6;
  /// The near-bank PCU's compute time (§5.1: "~3 cycles to execute").
  util::Cycle pcu_compute_latency = 3;
  /// Returning the (small) PEI result/ack to the core.
  util::Cycle response_latency = 4;
  LocalityMonitorConfig pmu{};
};

struct PeiResult {
  util::Cycle latency = 0;
  PeiPlacement placement = PeiPlacement::kMemory;
  dram::RowBufferOutcome outcome = dram::RowBufferOutcome::kEmpty;
  dram::BankId bank = 0;
};

/// Per-process PEI front end: owns the PMU, issues memory-side PEIs to the
/// controller and host-side PEIs through the process's cache hierarchy.
class PeiDispatcher {
 public:
  PeiDispatcher(PeiConfig config, sys::MemorySystem& system,
                dram::ActorId actor);

  /// Executes one PEI targeting `vaddr`, advancing the actor clock.
  PeiResult execute(sys::VAddr vaddr, util::Cycle& clock,
                    PeiKind kind = PeiKind::kAdd);

  [[nodiscard]] const LocalityMonitor& pmu() const { return pmu_; }
  [[nodiscard]] const PeiConfig& config() const { return config_; }

  /// Rotating-block helper used by attacks: returns a column offset within
  /// a row such that consecutive calls target fresh cache blocks, keeping
  /// the PMU's ignore-flag path active (§4.1 bypass).
  [[nodiscard]] std::uint32_t next_bypass_column(std::uint32_t row_bytes,
                                                 std::uint32_t line_bytes);

 private:
  PeiConfig config_;
  sys::MemorySystem* system_;
  dram::ActorId actor_;
  LocalityMonitor pmu_;
  std::uint32_t bypass_cursor_ = 0;
  // obs:: handles resolved once at construction; null (one predictable
  // branch per PEI) outside an obs::Scope.
  obs::Counter obs_ops_;
  obs::Counter obs_memory_side_;
  obs::Counter obs_host_side_;
  obs::TraceSession* obs_trace_ = nullptr;
};

}  // namespace impact::pim
