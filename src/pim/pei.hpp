// PIM-Enabled Instructions: the PnM execution path.
//
// A PEI (e.g. `pim_add`) names a virtual address; after translation the PMU
// locality monitor routes it either to the PCU near the target DRAM bank
// (bypassing the whole cache hierarchy) or to the host-side PCU (a normal
// cached access plus the compute). Memory-side execution is the direct,
// fast, ISA-guaranteed main-memory access IMPACT-PnM builds on (§4.1).
#pragma once

#include <cstdint>

#include "cache/hierarchy.hpp"
#include "dram/controller.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "pim/locality_monitor.hpp"
#include "sys/system.hpp"
#include "util/units.hpp"

namespace impact::pim {

enum class PeiKind : std::uint8_t { kAdd, kMin, kBitwise, kCopy };

struct PeiConfig {
  /// Getting the PEI packet from the core to the memory controller /
  /// memory-side PCU command queue (uncacheable request path).
  util::Cycle offchip_issue_latency = 6;
  /// The near-bank PCU's compute time (§5.1: "~3 cycles to execute").
  util::Cycle pcu_compute_latency = 3;
  /// Returning the (small) PEI result/ack to the core.
  util::Cycle response_latency = 4;
  LocalityMonitorConfig pmu{};
};

struct PeiResult {
  util::Cycle latency = 0;
  PeiPlacement placement = PeiPlacement::kMemory;
  dram::RowBufferOutcome outcome = dram::RowBufferOutcome::kEmpty;
  dram::BankId bank = 0;
};

/// Per-process PEI front end: owns the PMU, issues memory-side PEIs to the
/// controller and host-side PEIs through the process's cache hierarchy.
///
/// The constructor resolves every per-actor structure once — TLB, cache
/// hierarchy, controller, and a VirtualMemory::TranslationView — so the
/// per-PEI path touches no actor hash maps (the covert channels execute
/// millions of PEIs through one dispatcher).
class PeiDispatcher {
 public:
  PeiDispatcher(PeiConfig config, sys::MemorySystem& system,
                dram::ActorId actor);

  /// Executes one PEI targeting `vaddr`, advancing the actor clock.
  PeiResult execute(sys::VAddr vaddr, util::Cycle& clock,
                    PeiKind kind = PeiKind::kAdd);

  /// Executes `n` PEIs as one chained run: op i+1 issues at the clock left
  /// by op i (`clock += pre_cost; <execute>; clock += post_cost` per op,
  /// so a measured probe loop — timestamp read before, fast read after —
  /// batches without changing a single cycle). Each result is
  /// bit-identical to the equivalent scalar sequence; the obs seam is
  /// hoisted to one guarded counter update per batch (totals match the
  /// scalar path; per-op trace spans are still emitted when a trace
  /// session is attached).
  void execute_batch(const sys::VAddr* vaddrs, std::size_t n,
                     util::Cycle& clock, util::Cycle pre_cost,
                     util::Cycle post_cost, PeiResult* results);

  [[nodiscard]] const LocalityMonitor& pmu() const { return pmu_; }
  [[nodiscard]] const PeiConfig& config() const { return config_; }

  /// Rotating-block helper used by attacks: returns a column offset within
  /// a row such that consecutive calls target fresh cache blocks, keeping
  /// the PMU's ignore-flag path active (§4.1 bypass).
  [[nodiscard]] std::uint32_t next_bypass_column(std::uint32_t row_bytes,
                                                 std::uint32_t line_bytes);

 private:
  /// The per-PEI work shared by execute and execute_batch: translate,
  /// place, access, advance `clock`. No obs traffic.
  PeiResult execute_one(sys::VAddr vaddr, util::Cycle& clock);

  PeiConfig config_;
  sys::MemorySystem* system_;
  dram::ActorId actor_;
  LocalityMonitor pmu_;
  std::uint32_t bypass_cursor_ = 0;
  // Hot-path handles resolved once at construction (stable: contexts are
  // never erased and the controller is owned by the system).
  sys::Tlb* tlb_;
  cache::Hierarchy* hier_;
  dram::MemoryController* mc_;
  sys::VirtualMemory::TranslationView view_;
  // obs:: handles resolved once at construction; null (one predictable
  // branch per PEI) outside an obs::Scope.
  obs::Counter obs_ops_;
  obs::Counter obs_memory_side_;
  obs::Counter obs_host_side_;
  obs::TraceSession* obs_trace_ = nullptr;
};

}  // namespace impact::pim
