// User-level RowClone interface: the PuM execution path.
//
// A RowClone request names a source virtual range, a destination virtual
// range and a bank mask (§4.2). The memory controller breaks it into one
// in-subarray Fast-Parallel-Mode copy per set mask bit; all legs proceed in
// their banks concurrently, and (per the §5.1 threat model) the operation is
// atomic: no other DRAM command starts until every leg completes.
#pragma once

#include <cstdint>
#include <vector>

#include "dram/controller.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "sys/system.hpp"
#include "util/units.hpp"

namespace impact::pim {

struct RowCloneRequest {
  sys::VAddr src = 0;   ///< Base of the source range (row 0 of bank 0).
  sys::VAddr dst = 0;   ///< Base of the destination range.
  std::uint64_t mask = 0;  ///< Bit k set => copy the chunk in bank k.
};

struct RowCloneConfig {
  /// One command from core to controller, carrying ranges and mask.
  util::Cycle issue_latency = 8;
  /// Completion notification back to the core.
  util::Cycle response_latency = 4;
  /// When false (default), the instruction retires at the controller's
  /// acknowledgement (both activations issued); the analog copy finishes in
  /// the background while the bank stays busy. When true, the issuer blocks
  /// until every leg's copy completes.
  bool blocking = false;
};

class RowCloneUnit {
 public:
  RowCloneUnit(RowCloneConfig config, sys::MemorySystem& system,
               dram::ActorId actor);

  /// Executes the masked clone, advancing the actor clock to completion.
  /// The source/destination ranges are interpreted in row-buffer-sized
  /// chunks: chunk k of each range must translate to the same bank (which
  /// `VirtualMemory::map_row_span` guarantees).
  dram::RowCloneResult execute(const RowCloneRequest& request,
                               util::Cycle& clock, bool atomic = true) {
    dram::RowCloneResult out;
    execute_into(request, clock, atomic, out);
    return out;
  }

  /// Allocation-free variant: refills `out` (reusing its legs capacity).
  /// The PuM covert channel issues one clone per probe, so its inner loop
  /// keeps one result object alive across the whole message.
  void execute_into(const RowCloneRequest& request, util::Cycle& clock,
                    bool atomic, dram::RowCloneResult& out);

  /// Bulk initialization: clones a source row over the destination in every
  /// bank of `mask` (RowClone-based memset, §4.2 Step 1).
  dram::RowCloneResult initialize(const RowCloneRequest& request,
                                  util::Cycle& clock) {
    return execute(request, clock);
  }

 private:
  RowCloneConfig config_;
  sys::MemorySystem* system_;
  dram::ActorId actor_;
  std::vector<dram::RowCloneLeg> legs_scratch_;  ///< Reused across calls.
  // obs:: handles resolved once at construction; null outside a Scope.
  obs::Counter obs_ops_;
  obs::Counter obs_legs_;
  obs::Distribution obs_occupancy_;  ///< Banks addressed per masked clone.
  obs::TraceSession* obs_trace_ = nullptr;
};

}  // namespace impact::pim
