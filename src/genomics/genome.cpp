#include "genomics/genome.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace impact::genomics {

char base_to_char(Base b) {
  constexpr char kMap[4] = {'A', 'C', 'G', 'T'};
  util::check(b < 4, "base_to_char: invalid base");
  return kMap[b];
}

Base char_to_base(char c) {
  switch (c) {
    case 'A':
    case 'a':
      return 0;
    case 'C':
    case 'c':
      return 1;
    case 'G':
    case 'g':
      return 2;
    case 'T':
    case 't':
      return 3;
    default:
      util::check(false, "char_to_base: invalid character");
      return 0;
  }
}

Genome Genome::from_string(const std::string& s) {
  std::vector<Base> bases;
  bases.reserve(s.size());
  for (char c : s) bases.push_back(char_to_base(c));
  return Genome(std::move(bases));
}

Genome Genome::synthesize(std::size_t length, util::Xoshiro256& rng,
                          double repeat_fraction) {
  util::check(repeat_fraction >= 0.0 && repeat_fraction < 1.0,
              "Genome::synthesize: repeat_fraction in [0,1)");
  // Build a small library of repeat elements.
  constexpr std::size_t kRepeatCount = 8;
  constexpr std::size_t kRepeatLen = 300;
  std::vector<std::vector<Base>> repeats(kRepeatCount);
  for (auto& rep : repeats) {
    rep.resize(kRepeatLen);
    for (auto& b : rep) b = static_cast<Base>(rng.below(4));
  }

  std::vector<Base> bases;
  bases.reserve(length);
  while (bases.size() < length) {
    if (rng.uniform() < repeat_fraction) {
      const auto& rep = repeats[rng.below(kRepeatCount)];
      for (Base b : rep) {
        if (bases.size() >= length) break;
        // Slightly diverged copies, as in real repeat families.
        bases.push_back(rng.chance(0.02) ? static_cast<Base>(rng.below(4))
                                         : b);
      }
    } else {
      const std::size_t run = 100 + rng.below(200);
      for (std::size_t i = 0; i < run && bases.size() < length; ++i) {
        bases.push_back(static_cast<Base>(rng.below(4)));
      }
    }
  }
  return Genome(std::move(bases));
}

std::vector<Base> Genome::slice(std::size_t pos, std::size_t len) const {
  util::check(pos + len <= bases_.size(), "Genome::slice out of range");
  return {bases_.begin() + static_cast<std::ptrdiff_t>(pos),
          bases_.begin() + static_cast<std::ptrdiff_t>(pos + len)};
}

std::string Genome::to_string() const {
  std::string s;
  s.reserve(bases_.size());
  for (Base b : bases_) s.push_back(base_to_char(b));
  return s;
}

std::vector<Read> sample_reads(const Genome& reference, std::size_t count,
                               const ReadSimConfig& config,
                               util::Xoshiro256& rng) {
  util::check(reference.size() >= config.read_length,
              "sample_reads: reference shorter than read length");
  std::vector<Read> reads;
  reads.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Read r;
    r.true_position = rng.below(reference.size() - config.read_length + 1);
    r.bases = reference.slice(r.true_position, config.read_length);
    for (auto& b : r.bases) {
      if (rng.chance(config.substitution_rate)) {
        b = static_cast<Base>(rng.below(4));
      }
    }
    reads.push_back(std::move(r));
  }
  return reads;
}

}  // namespace impact::genomics
