// Anchor chaining: selecting the collinear set of seed matches that best
// explains a read's placement (the step between seeding and alignment).
#pragma once

#include <cstdint>
#include <vector>

namespace impact::genomics {

/// One exact seed match: read offset `query_pos` matches reference offset
/// `target_pos` (for `length` bases).
struct Anchor {
  std::uint32_t query_pos = 0;
  std::uint32_t target_pos = 0;
  std::uint32_t length = 15;

  bool operator==(const Anchor&) const = default;
};

struct ChainConfig {
  std::uint32_t max_gap = 500;     ///< Max ref/read gap between anchors.
  std::uint32_t max_skip = 25;     ///< DP lookback (minimap2-style bound).
  double gap_penalty = 0.01;       ///< Per-base gap cost.
};

struct Chain {
  std::vector<Anchor> anchors;     ///< In query order.
  double score = 0.0;

  /// Predicted reference start of the read under this chain.
  [[nodiscard]] std::int64_t predicted_start() const {
    if (anchors.empty()) return -1;
    return static_cast<std::int64_t>(anchors.front().target_pos) -
           static_cast<std::int64_t>(anchors.front().query_pos);
  }
};

/// Finds the best-scoring collinear chain among `anchors` via the standard
/// O(n * max_skip) dynamic program over anchors sorted by target position.
[[nodiscard]] Chain chain_anchors(std::vector<Anchor> anchors,
                                  const ChainConfig& config = {});

}  // namespace impact::genomics
