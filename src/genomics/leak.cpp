#include "genomics/leak.hpp"

#include <cmath>

namespace impact::genomics {

LeakPrecision LeakPrecision::of(const SeedTable& table) {
  LeakPrecision p;
  p.banks = table.banks();
  p.entries_per_bank = table.entries_per_bank();
  p.bits_per_observation =
      std::log2(static_cast<double>(table.config().buckets) /
                static_cast<double>(p.entries_per_bank));
  return p;
}

}  // namespace impact::genomics
