#include "genomics/kmer.hpp"

#include <deque>

#include "util/assert.hpp"

namespace impact::genomics {

std::uint64_t hash64(std::uint64_t key) {
  // minimap2's invertible hash (Thomas Wang mix).
  key = (~key + (key << 21));
  key = key ^ (key >> 24);
  key = ((key + (key << 3)) + (key << 8));
  key = key ^ (key >> 14);
  key = ((key + (key << 2)) + (key << 4));
  key = key ^ (key >> 28);
  key = (key + (key << 31));
  return key;
}

Kmer pack_kmer(const std::vector<Base>& seq, std::size_t pos,
               std::uint32_t k) {
  util::check(k >= 1 && k <= 31, "pack_kmer: k must be in [1,31]");
  util::check(pos + k <= seq.size(), "pack_kmer: out of range");
  Kmer kmer = 0;
  for (std::uint32_t i = 0; i < k; ++i) {
    kmer = (kmer << 2) | seq[pos + i];
  }
  return kmer;
}

Kmer revcomp_kmer(Kmer kmer, std::uint32_t k) {
  Kmer rc = 0;
  for (std::uint32_t i = 0; i < k; ++i) {
    rc = (rc << 2) | (3ull - (kmer & 3ull));  // Complement (A<->T, C<->G).
    kmer >>= 2;
  }
  return rc;
}

Kmer canonical_kmer(Kmer kmer, std::uint32_t k) {
  const Kmer rc = revcomp_kmer(kmer, k);
  return kmer < rc ? kmer : rc;
}

std::vector<Minimizer> extract_minimizers(const std::vector<Base>& seq,
                                          const MinimizerConfig& config) {
  const std::uint32_t k = config.k;
  const std::uint32_t w = config.w;
  util::check(w >= 1, "extract_minimizers: w must be >= 1");
  std::vector<Minimizer> out;
  if (seq.size() < k) return out;
  const std::size_t n_kmers = seq.size() - k + 1;

  // Monotone deque of (hash, position) for the sliding window minimum.
  std::deque<Minimizer> window;
  Kmer rolling = 0;
  const Kmer mask = (k == 31) ? ~0ull >> 2 : ((1ull << (2 * k)) - 1);
  for (std::size_t i = 0; i < k - 1; ++i) {
    rolling = ((rolling << 2) | seq[i]) & mask;
  }
  for (std::size_t i = 0; i < n_kmers; ++i) {
    rolling = ((rolling << 2) | seq[i + k - 1]) & mask;
    const std::uint64_t h = hash64(canonical_kmer(rolling, k));
    while (!window.empty() && window.back().hash >= h) window.pop_back();
    window.push_back({h, static_cast<std::uint32_t>(i)});
    if (window.front().position + w <= i) window.pop_front();
    if (i + 1 >= w) {
      const Minimizer& m = window.front();
      if (out.empty() || !(out.back() == m)) out.push_back(m);
    }
  }
  return out;
}

}  // namespace impact::genomics
