// The bank-striped seed hash table shared by all read-mapping users.
//
// §4.3: "The read mapping tool constructs a hash table that contains
// information about the seed locations in the reference genome ... We
// assume the hash table is distributed across multiple DRAM banks"
// (interleaved bank mapping). §5.4 fixes the geometry we reproduce: with B
// banks, each bank holds one hash-table row with (total_buckets / B)
// entries — 16 entries/row at 1024 banks, 8 at 2048, and so on — so
// identifying the touched bank narrows the victim's bucket to
// total_buckets / B candidates.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dram/types.hpp"
#include "genomics/genome.hpp"
#include "genomics/kmer.hpp"

namespace impact::genomics {

/// Where a table structure lives in DRAM.
struct TableLocation {
  dram::BankId bank = 0;
  dram::RowId row = 0;
  std::uint32_t col = 0;

  bool operator==(const TableLocation&) const = default;
};

struct SeedTableConfig {
  std::uint32_t buckets = 16384;      ///< Total buckets (fixed geometry).
  std::uint32_t entry_bytes = 512;    ///< One bucket's in-row footprint.
  std::uint32_t row_bytes = 8192;
  dram::RowId table_row = 20;         ///< The hash-table row in each bank.
  std::uint32_t max_positions = 64;   ///< Occupancy cap per bucket.
  MinimizerConfig minimizer{};
};

class SeedTable {
 public:
  /// `banks` is the DRAM bank count of the PiM device the table is striped
  /// over; buckets must fit the per-bank row (buckets/banks * entry_bytes
  /// <= row_bytes).
  SeedTable(SeedTableConfig config, std::uint32_t banks);

  /// Indexes the reference: every reference minimizer lands in its bucket.
  void build(const Genome& reference);

  [[nodiscard]] std::uint32_t bucket_of(std::uint64_t minimizer_hash) const {
    return static_cast<std::uint32_t>(minimizer_hash % config_.buckets);
  }

  /// DRAM location of a bucket (the row a PiM-offloaded probe activates).
  [[nodiscard]] TableLocation locate(std::uint32_t bucket) const;

  /// Reference positions stored in the bucket of `minimizer_hash`.
  [[nodiscard]] std::span<const std::uint32_t> query(
      std::uint64_t minimizer_hash) const;

  /// Reference positions of a bucket by index (the attacker-side view:
  /// the table is a shared artifact, so candidate expansion from a leaked
  /// bank/bucket id is free).
  [[nodiscard]] std::span<const std::uint32_t> query_bucket(
      std::uint32_t bucket) const;

  [[nodiscard]] const SeedTableConfig& config() const { return config_; }
  [[nodiscard]] std::uint32_t banks() const { return banks_; }
  [[nodiscard]] std::uint32_t entries_per_bank() const {
    return config_.buckets / banks_;
  }
  [[nodiscard]] std::size_t total_positions() const;
  [[nodiscard]] double occupancy() const;  ///< Non-empty bucket fraction.

 private:
  SeedTableConfig config_;
  std::uint32_t banks_;
  std::vector<std::vector<std::uint32_t>> positions_;  // Per bucket.
};

/// Layout of the packed reference itself (used by the alignment stage's
/// candidate-region fetches): consecutive row-sized chunks interleave
/// across banks starting at `base_row`.
struct ReferenceLayout {
  std::uint32_t banks = 0;
  dram::RowId base_row = 32;
  std::uint32_t row_bytes = 8192;
  std::uint32_t bases_per_row = 8192 * 4;  ///< 2-bit packed.

  [[nodiscard]] TableLocation locate(std::size_t ref_position) const {
    const std::size_t chunk = ref_position / bases_per_row;
    TableLocation loc;
    loc.bank = static_cast<dram::BankId>(chunk % banks);
    loc.row = base_row + static_cast<dram::RowId>(chunk / banks);
    loc.col = static_cast<std::uint32_t>((ref_position % bases_per_row) / 4);
    return loc;
  }
};

}  // namespace impact::genomics
