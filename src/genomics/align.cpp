#include "genomics/align.hpp"

#include <algorithm>
#include <cctype>
#include <limits>

namespace impact::genomics {

namespace {

void append_cigar_op(std::string& cigar, char op, std::uint32_t run) {
  if (run == 0) return;
  cigar += std::to_string(run);
  cigar += op;
}

}  // namespace

Alignment banded_align(const std::vector<Base>& query,
                       const std::vector<Base>& target,
                       const AlignConfig& config) {
  // Full (banded) matrix with traceback. The band keeps memory at
  // O(n * band); out-of-band cells are unreachable.
  const std::int64_t n = static_cast<std::int64_t>(query.size());
  const std::int64_t m = static_cast<std::int64_t>(target.size());
  const std::int64_t band = config.band;
  constexpr std::uint32_t kInf =
      std::numeric_limits<std::uint32_t>::max() / 2;

  Alignment result;
  if (n - m > band || m - n > band) result.within_band = false;

  const std::int64_t width = 2 * band + 1;
  // dp[i][w] for w = j - i + band.
  std::vector<std::vector<std::uint32_t>> dp(
      static_cast<std::size_t>(n + 1),
      std::vector<std::uint32_t>(static_cast<std::size_t>(width), kInf));
  auto at = [&](std::int64_t i, std::int64_t j) -> std::uint32_t& {
    return dp[static_cast<std::size_t>(i)]
             [static_cast<std::size_t>(j - i + band)];
  };
  auto in_band = [&](std::int64_t i, std::int64_t j) {
    return j >= 0 && j <= m && (j - i) >= -band && (j - i) <= band;
  };

  for (std::int64_t j = 0; j <= std::min(band, m); ++j) {
    at(0, j) = static_cast<std::uint32_t>(j);
  }
  for (std::int64_t i = 1; i <= n; ++i) {
    const std::int64_t j_lo = std::max<std::int64_t>(0, i - band);
    const std::int64_t j_hi = std::min(m, i + band);
    for (std::int64_t j = j_lo; j <= j_hi; ++j) {
      std::uint32_t best = kInf;
      if (j == 0) {
        best = static_cast<std::uint32_t>(i);
      } else {
        if (in_band(i - 1, j - 1) && at(i - 1, j - 1) != kInf) {
          const bool match = query[static_cast<std::size_t>(i - 1)] ==
                             target[static_cast<std::size_t>(j - 1)];
          best = std::min(best, at(i - 1, j - 1) + (match ? 0u : 1u));
        }
        if (in_band(i, j - 1) && at(i, j - 1) != kInf) {
          best = std::min(best, at(i, j - 1) + 1);  // Insertion (target).
        }
        if (in_band(i - 1, j) && at(i - 1, j) != kInf) {
          best = std::min(best, at(i - 1, j) + 1);  // Deletion (query).
        }
      }
      at(i, j) = best;
    }
  }

  if (!in_band(n, m) || at(n, m) >= kInf) {
    result.within_band = false;
    result.edit_distance =
        static_cast<std::uint32_t>(std::max(n, m));
    return result;
  }
  result.edit_distance = at(n, m);

  // Traceback, collecting ops back-to-front.
  std::string rev_ops;
  std::int64_t i = n;
  std::int64_t j = m;
  while (i > 0 || j > 0) {
    const std::uint32_t here = at(i, j);
    if (i > 0 && j > 0 && in_band(i - 1, j - 1) &&
        at(i - 1, j - 1) != kInf) {
      const bool match = query[static_cast<std::size_t>(i - 1)] ==
                         target[static_cast<std::size_t>(j - 1)];
      if (at(i - 1, j - 1) + (match ? 0u : 1u) == here) {
        rev_ops += 'M';
        --i;
        --j;
        continue;
      }
    }
    if (j > 0 && in_band(i, j - 1) && at(i, j - 1) != kInf &&
        at(i, j - 1) + 1 == here) {
      rev_ops += 'I';
      --j;
      continue;
    }
    rev_ops += 'D';
    --i;
  }

  // Run-length encode.
  std::uint32_t run = 0;
  char op = 0;
  for (auto it = rev_ops.rbegin(); it != rev_ops.rend(); ++it) {
    if (*it == op) {
      ++run;
    } else {
      append_cigar_op(result.cigar, op, run);
      op = *it;
      run = 1;
    }
  }
  append_cigar_op(result.cigar, op, run);
  return result;
}

bool cigar_consistent(const std::string& cigar, std::size_t query_len,
                      std::size_t target_len) {
  std::size_t q = 0;
  std::size_t t = 0;
  std::size_t run = 0;
  for (char c : cigar) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      run = run * 10 + static_cast<std::size_t>(c - '0');
      continue;
    }
    if (run == 0) return false;
    switch (c) {
      case 'M':
        q += run;
        t += run;
        break;
      case 'I':
        t += run;
        break;
      case 'D':
        q += run;
        break;
      default:
        return false;
    }
    run = 0;
  }
  return run == 0 && q == query_len && t == target_len;
}

AlignResult banded_edit_distance(const std::vector<Base>& query,
                                 const std::vector<Base>& target,
                                 const AlignConfig& config) {
  const std::size_t n = query.size();
  const std::size_t m = target.size();
  const std::int64_t band = config.band;
  constexpr std::uint32_t kInf =
      std::numeric_limits<std::uint32_t>::max() / 2;

  AlignResult result;
  if (static_cast<std::int64_t>(n) - static_cast<std::int64_t>(m) > band ||
      static_cast<std::int64_t>(m) - static_cast<std::int64_t>(n) > band) {
    result.within_band = false;
  }

  // Row-wise DP restricted to |i - j| <= band. Store the band as a window
  // of width 2*band+1 around the diagonal.
  const std::size_t width = 2 * static_cast<std::size_t>(band) + 1;
  std::vector<std::uint32_t> prev(width, kInf);
  std::vector<std::uint32_t> cur(width, kInf);

  auto idx = [&](std::int64_t i, std::int64_t j) -> std::int64_t {
    return j - i + band;  // Offset within the band window.
  };

  // Row 0: distance is j (all insertions) for j <= band.
  for (std::int64_t j = 0; j <= band && j <= static_cast<std::int64_t>(m);
       ++j) {
    prev[static_cast<std::size_t>(idx(0, j))] =
        static_cast<std::uint32_t>(j);
  }

  for (std::int64_t i = 1; i <= static_cast<std::int64_t>(n); ++i) {
    std::fill(cur.begin(), cur.end(), kInf);
    const std::int64_t j_lo = std::max<std::int64_t>(0, i - band);
    const std::int64_t j_hi =
        std::min<std::int64_t>(static_cast<std::int64_t>(m), i + band);
    for (std::int64_t j = j_lo; j <= j_hi; ++j) {
      const std::int64_t w = idx(i, j);
      std::uint32_t best = kInf;
      if (j == 0) {
        best = static_cast<std::uint32_t>(i);
      } else {
        // Substitution / match (diagonal stays at the same window offset).
        const std::uint32_t diag = prev[static_cast<std::size_t>(w)];
        if (diag != kInf) {
          const bool match = query[static_cast<std::size_t>(i - 1)] ==
                             target[static_cast<std::size_t>(j - 1)];
          best = std::min(best, diag + (match ? 0u : 1u));
        }
        // Insertion into target (left neighbour in this row).
        if (w - 1 >= 0) {
          const std::uint32_t left = cur[static_cast<std::size_t>(w - 1)];
          if (left != kInf) best = std::min(best, left + 1);
        }
        // Deletion from target (upper neighbour in the previous row).
        if (w + 1 < static_cast<std::int64_t>(width)) {
          const std::uint32_t up = prev[static_cast<std::size_t>(w + 1)];
          if (up != kInf) best = std::min(best, up + 1);
        }
      }
      cur[static_cast<std::size_t>(w)] = best;
    }
    std::swap(prev, cur);
  }

  const std::int64_t w_final =
      idx(static_cast<std::int64_t>(n), static_cast<std::int64_t>(m));
  if (w_final < 0 || w_final >= static_cast<std::int64_t>(width) ||
      prev[static_cast<std::size_t>(w_final)] >= kInf) {
    result.within_band = false;
    result.edit_distance = static_cast<std::uint32_t>(std::max(n, m));
    return result;
  }
  result.edit_distance = prev[static_cast<std::size_t>(w_final)];
  return result;
}

}  // namespace impact::genomics
