// Quantifying what a bank-granular observation leaks about the sample
// genome (§5.4's precision discussion and the completion-attack framing).
#pragma once

#include <cstdint>
#include <cstddef>

#include "genomics/seed_table.hpp"

namespace impact::genomics {

/// Information content of the side channel at a given table geometry.
struct LeakPrecision {
  std::uint32_t banks = 0;
  std::uint32_t entries_per_bank = 0;  ///< Candidate buckets per hit.
  double bits_per_observation = 0.0;   ///< log2(buckets / candidates).

  /// §5.4: more banks -> fewer hash-table entries per bank -> each correct
  /// bank identification pins the victim's bucket (and hence the read's
  /// candidate reference locations) more precisely.
  [[nodiscard]] static LeakPrecision of(const SeedTable& table);
};

/// Aggregate outcome of a side-channel observation session.
struct LeakReport {
  std::size_t observations = 0;      ///< Attacker probe decisions.
  std::size_t correct = 0;           ///< Matching the victim's ground truth.
  std::uint64_t elapsed_cycles = 0;

  [[nodiscard]] double error_rate() const {
    return observations == 0
               ? 0.0
               : 1.0 - static_cast<double>(correct) /
                           static_cast<double>(observations);
  }
  [[nodiscard]] double throughput_mbps(double ghz) const {
    if (elapsed_cycles == 0) return 0.0;
    const double seconds =
        static_cast<double>(elapsed_cycles) / (ghz * 1e9);
    return static_cast<double>(correct) / seconds / 1e6;
  }
};

}  // namespace impact::genomics
