#include "genomics/chain.hpp"

#include <algorithm>
#include <cmath>

namespace impact::genomics {

Chain chain_anchors(std::vector<Anchor> anchors, const ChainConfig& config) {
  Chain best;
  if (anchors.empty()) return best;

  std::sort(anchors.begin(), anchors.end(), [](const Anchor& a,
                                               const Anchor& b) {
    if (a.target_pos != b.target_pos) return a.target_pos < b.target_pos;
    return a.query_pos < b.query_pos;
  });

  const std::size_t n = anchors.size();
  std::vector<double> score(n);
  std::vector<std::int64_t> parent(n, -1);
  for (std::size_t i = 0; i < n; ++i) {
    score[i] = anchors[i].length;
    const std::size_t lookback = std::min<std::size_t>(i, config.max_skip);
    for (std::size_t back = 1; back <= lookback; ++back) {
      const std::size_t j = i - back;
      const auto& prev = anchors[j];
      const auto& cur = anchors[i];
      if (prev.query_pos >= cur.query_pos) continue;      // Collinearity.
      if (prev.target_pos >= cur.target_pos) continue;
      const std::int64_t dq = static_cast<std::int64_t>(cur.query_pos) -
                              prev.query_pos;
      const std::int64_t dt = static_cast<std::int64_t>(cur.target_pos) -
                              prev.target_pos;
      const std::int64_t gap = std::llabs(dt - dq);
      if (dt > config.max_gap || dq > config.max_gap) continue;
      const double candidate =
          score[j] + cur.length -
          config.gap_penalty * static_cast<double>(gap);
      if (candidate > score[i]) {
        score[i] = candidate;
        parent[i] = static_cast<std::int64_t>(j);
      }
    }
  }

  std::size_t best_end = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (score[i] > score[best_end]) best_end = i;
  }
  best.score = score[best_end];
  // Backtrack into query order.
  std::vector<Anchor> rev;
  for (std::int64_t at = static_cast<std::int64_t>(best_end); at >= 0;
       at = parent[static_cast<std::size_t>(at)]) {
    rev.push_back(anchors[static_cast<std::size_t>(at)]);
  }
  best.anchors.assign(rev.rbegin(), rev.rend());
  return best;
}

}  // namespace impact::genomics
