#include "genomics/mapper.hpp"

#include <algorithm>
#include <cstdlib>

namespace impact::genomics {

ReadMapper::ReadMapper(const Genome& reference, const SeedTable& table,
                       ReferenceLayout layout, MapperConfig config,
                       TouchSink sink)
    : reference_(&reference),
      table_(&table),
      layout_(layout),
      config_(config),
      sink_(std::move(sink)) {}

MappingResult ReadMapper::map(const Read& read) {
  MappingResult result;

  // --- Seeding: probe the shared hash table for every read minimizer. ---
  const auto minimizers =
      extract_minimizers(read.bases, table_->config().minimizer);
  std::vector<Anchor> anchors;
  for (const auto& m : minimizers) {
    const std::uint32_t bucket = table_->bucket_of(m.hash);
    if (sink_) {
      sink_(MemoryTouch{MemoryTouch::Kind::kSeedProbe,
                        table_->locate(bucket), bucket});
    }
    ++result.seed_probes;
    for (std::uint32_t ref_pos : table_->query(m.hash)) {
      anchors.push_back(Anchor{m.position, ref_pos,
                               table_->config().minimizer.k});
    }
  }
  if (anchors.empty()) return result;

  // --- Chaining. -------------------------------------------------------
  const Chain chain = chain_anchors(std::move(anchors), config_.chain);
  if (chain.anchors.size() < config_.min_chain_anchors) return result;
  const std::int64_t predicted = chain.predicted_start();
  if (predicted < 0) return result;
  result.chain_score = chain.score;

  // --- Alignment of the candidate region. ------------------------------
  const std::size_t flank = config_.candidate_flank;
  const std::size_t start =
      static_cast<std::size_t>(predicted) >= flank
          ? static_cast<std::size_t>(predicted) - flank
          : 0;
  const std::size_t want = read.bases.size() + 2 * flank;
  const std::size_t len = std::min(want, reference_->size() - start);
  if (sink_) {
    // The alignment engine streams the candidate region from DRAM; touch
    // every row-sized chunk it covers.
    const std::size_t chunk_bases = layout_.bases_per_row;
    for (std::size_t pos = start; pos < start + len;
         pos += chunk_bases - (pos % chunk_bases)) {
      sink_(MemoryTouch{MemoryTouch::Kind::kRefFetch, layout_.locate(pos),
                        0});
    }
  }
  const auto target = reference_->slice(start, len);
  const auto aligned =
      banded_edit_distance(read.bases, target,
                           AlignConfig{static_cast<std::uint32_t>(
                               config_.align.band + flank)});

  result.mapped = true;
  result.position = static_cast<std::size_t>(predicted);
  result.edit_distance = aligned.edit_distance;
  return result;
}

double mapping_accuracy(ReadMapper& mapper, const std::vector<Read>& reads,
                        std::size_t tolerance) {
  if (reads.empty()) return 0.0;
  std::size_t correct = 0;
  for (const auto& read : reads) {
    const auto r = mapper.map(read);
    if (!r.mapped) continue;
    const auto delta =
        static_cast<std::int64_t>(r.position) -
        static_cast<std::int64_t>(read.true_position);
    if (static_cast<std::size_t>(std::llabs(delta)) <= tolerance) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(reads.size());
}

}  // namespace impact::genomics
