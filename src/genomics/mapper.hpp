// The minimap2-flavoured read mapper whose seeding and alignment steps are
// offloaded to the PiM-enabled system (§4.3's victim application).
//
// The mapper itself is a pure algorithm; every DRAM-visible step (seed
// table probe, candidate-region fetch) is reported through a TouchSink so
// the side-channel harness can charge the access to the simulated PiM
// system and record the ground truth the attacker tries to recover.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "genomics/align.hpp"
#include "genomics/chain.hpp"
#include "genomics/genome.hpp"
#include "genomics/kmer.hpp"
#include "genomics/seed_table.hpp"

namespace impact::genomics {

/// One DRAM-visible access performed by the mapper's PiM offload.
struct MemoryTouch {
  enum class Kind : std::uint8_t { kSeedProbe, kRefFetch };
  Kind kind = Kind::kSeedProbe;
  TableLocation location{};
  std::uint32_t bucket = 0;  ///< Valid for kSeedProbe.
};

using TouchSink = std::function<void(const MemoryTouch&)>;

struct MapperConfig {
  ChainConfig chain{};
  AlignConfig align{};
  std::uint32_t candidate_flank = 24;  ///< Extra reference bases aligned.
  std::uint32_t min_chain_anchors = 2; ///< Below this, the read is unmapped.
};

struct MappingResult {
  bool mapped = false;
  std::size_t position = 0;
  std::uint32_t edit_distance = 0;
  double chain_score = 0.0;
  std::size_t seed_probes = 0;
};

class ReadMapper {
 public:
  /// All references must outlive the mapper. `sink` may be empty.
  ReadMapper(const Genome& reference, const SeedTable& table,
             ReferenceLayout layout, MapperConfig config = {},
             TouchSink sink = {});

  /// Maps one read: seeding (hash-table probes) -> chaining -> banded
  /// alignment of the best candidate region.
  MappingResult map(const Read& read);

 private:
  const Genome* reference_;
  const SeedTable* table_;
  ReferenceLayout layout_;
  MapperConfig config_;
  TouchSink sink_;
};

/// Fraction of reads mapped within `tolerance` bases of their true origin.
[[nodiscard]] double mapping_accuracy(
    ReadMapper& mapper, const std::vector<Read>& reads,
    std::size_t tolerance = 5);

}  // namespace impact::genomics
