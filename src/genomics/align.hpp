// Banded global alignment (edit distance) for the read-mapping alignment
// step.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "genomics/genome.hpp"

namespace impact::genomics {

struct AlignConfig {
  std::uint32_t band = 16;  ///< Half-width of the DP band.
};

struct AlignResult {
  std::uint32_t edit_distance = 0;
  bool within_band = true;  ///< False if the alignment left the band.
};

/// Banded edit distance between `query` and `target`. Positions farther
/// than `band` off the main diagonal are treated as unreachable; if the
/// optimum path would need them, `within_band` is false and the returned
/// distance is an upper bound.
[[nodiscard]] AlignResult banded_edit_distance(
    const std::vector<Base>& query, const std::vector<Base>& target,
    const AlignConfig& config = {});

/// Full alignment with traceback.
struct Alignment {
  std::uint32_t edit_distance = 0;
  bool within_band = true;
  /// CIGAR string, SAM-style run-length ops: M (match/mismatch),
  /// I (insertion in target relative to query), D (deletion from target).
  std::string cigar;
};

/// Banded global alignment of `query` against `target` with CIGAR
/// traceback (same band semantics as banded_edit_distance).
[[nodiscard]] Alignment banded_align(const std::vector<Base>& query,
                                     const std::vector<Base>& target,
                                     const AlignConfig& config = {});

/// Validates a CIGAR against sequence lengths: M+D runs must sum to the
/// query length and M+I runs to the target length.
[[nodiscard]] bool cigar_consistent(const std::string& cigar,
                                    std::size_t query_len,
                                    std::size_t target_len);

}  // namespace impact::genomics
