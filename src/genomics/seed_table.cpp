#include "genomics/seed_table.hpp"

#include "util/assert.hpp"

namespace impact::genomics {

SeedTable::SeedTable(SeedTableConfig config, std::uint32_t banks)
    : config_(config), banks_(banks) {
  util::check(banks_ > 0, "SeedTable: needs at least one bank");
  util::check(config_.buckets % banks_ == 0,
              "SeedTable: buckets must be divisible by the bank count");
  util::check(entries_per_bank() * config_.entry_bytes <= config_.row_bytes,
              "SeedTable: per-bank buckets must fit one row");
  positions_.resize(config_.buckets);
}

void SeedTable::build(const Genome& reference) {
  const auto minimizers =
      extract_minimizers(reference.bases(), config_.minimizer);
  for (const auto& m : minimizers) {
    auto& bucket = positions_[bucket_of(m.hash)];
    if (bucket.size() < config_.max_positions) {
      bucket.push_back(m.position);
    }
  }
}

TableLocation SeedTable::locate(std::uint32_t bucket) const {
  util::check(bucket < config_.buckets, "SeedTable::locate: bad bucket");
  TableLocation loc;
  loc.bank = static_cast<dram::BankId>(bucket % banks_);
  loc.row = config_.table_row;
  loc.col = (bucket / banks_) * config_.entry_bytes;
  return loc;
}

std::span<const std::uint32_t> SeedTable::query(
    std::uint64_t minimizer_hash) const {
  return positions_[bucket_of(minimizer_hash)];
}

std::span<const std::uint32_t> SeedTable::query_bucket(
    std::uint32_t bucket) const {
  util::check(bucket < config_.buckets, "query_bucket: bad bucket");
  return positions_[bucket];
}

std::size_t SeedTable::total_positions() const {
  std::size_t n = 0;
  for (const auto& b : positions_) n += b.size();
  return n;
}

double SeedTable::occupancy() const {
  std::size_t non_empty = 0;
  for (const auto& b : positions_) non_empty += b.empty() ? 0 : 1;
  return static_cast<double>(non_empty) /
         static_cast<double>(positions_.size());
}

}  // namespace impact::genomics
