// Synthetic genomes and read sampling.
//
// Substitution note (DESIGN.md §4): the paper uses the human reference
// genome and synthetic sample genomes. The side channel leaks *which
// seed-table bucket a lookup touches*, so any reference with realistic
// repeat structure exercises the identical access pattern. We synthesize a
// reference with tandem/interspersed repeats (so that some minimizers are
// frequent, as in real genomes) and sample reads from it with a
// configurable sequencing-error model.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace impact::genomics {

/// Bases are encoded 2-bit: A=0, C=1, G=2, T=3.
using Base = std::uint8_t;

[[nodiscard]] char base_to_char(Base b);
[[nodiscard]] Base char_to_base(char c);

class Genome {
 public:
  Genome() = default;
  explicit Genome(std::vector<Base> bases) : bases_(std::move(bases)) {}

  /// Parses an ACGT string (test convenience).
  static Genome from_string(const std::string& s);

  /// Synthesizes a reference of `length` bases: random background plus
  /// interspersed repeats (repeat_fraction of the sequence consists of
  /// copies of a small repeat library, mimicking genomic repeat content).
  static Genome synthesize(std::size_t length, util::Xoshiro256& rng,
                           double repeat_fraction = 0.3);

  [[nodiscard]] std::size_t size() const { return bases_.size(); }
  [[nodiscard]] Base at(std::size_t i) const { return bases_.at(i); }
  [[nodiscard]] const std::vector<Base>& bases() const { return bases_; }

  /// Substring [pos, pos+len).
  [[nodiscard]] std::vector<Base> slice(std::size_t pos,
                                        std::size_t len) const;

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<Base> bases_;
};

/// A sequencing read with its ground-truth origin.
struct Read {
  std::vector<Base> bases;
  std::size_t true_position = 0;  ///< Where it was sampled from.
};

struct ReadSimConfig {
  std::size_t read_length = 150;
  double substitution_rate = 0.005;  ///< Per-base sequencing errors.
};

/// Samples `count` reads uniformly from `reference`.
[[nodiscard]] std::vector<Read> sample_reads(const Genome& reference,
                                             std::size_t count,
                                             const ReadSimConfig& config,
                                             util::Xoshiro256& rng);

}  // namespace impact::genomics
