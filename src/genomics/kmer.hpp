// k-mer encoding and (w,k)-minimizer extraction (minimap2-style seeding).
#pragma once

#include <cstdint>
#include <vector>

#include "genomics/genome.hpp"

namespace impact::genomics {

/// A k-mer packed 2 bits per base, most recent base in the low bits.
using Kmer = std::uint64_t;

/// Invertible 64-bit mixer used by minimap2 to order k-mers for minimizer
/// selection (avoids poly-A minimizers that a lexicographic order picks).
[[nodiscard]] std::uint64_t hash64(std::uint64_t key);

/// Packs `k` bases starting at `pos`. Requires pos+k <= seq.size(), k <= 31.
[[nodiscard]] Kmer pack_kmer(const std::vector<Base>& seq, std::size_t pos,
                             std::uint32_t k);

/// Reverse complement of a packed k-mer.
[[nodiscard]] Kmer revcomp_kmer(Kmer kmer, std::uint32_t k);

/// Canonical form: min(kmer, revcomp) so both strands seed identically.
[[nodiscard]] Kmer canonical_kmer(Kmer kmer, std::uint32_t k);

/// One selected minimizer: the k-mer's hash and its position.
struct Minimizer {
  std::uint64_t hash = 0;
  std::uint32_t position = 0;

  bool operator==(const Minimizer&) const = default;
};

struct MinimizerConfig {
  std::uint32_t k = 15;  ///< Seed length.
  std::uint32_t w = 10;  ///< Window: one minimizer per w consecutive k-mers.
};

/// Extracts the (w,k)-minimizers of `seq`: for every window of w k-mers the
/// one with the smallest hash64(canonical) value is selected (deduplicated
/// across overlapping windows).
[[nodiscard]] std::vector<Minimizer> extract_minimizers(
    const std::vector<Base>& seq, const MinimizerConfig& config);

}  // namespace impact::genomics
