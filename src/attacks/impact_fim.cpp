#include "attacks/impact_fim.hpp"

namespace impact::attacks {

ImpactFim::ImpactFim(sys::MemorySystem& system, ImpactFimConfig config)
    : RowBufferChannelBase(system, config.channel),
      config_(config),
      sender_fim_(config.fim, system.controller(), kSender),
      receiver_fim_(config.fim, system.controller(), kReceiver) {}

void ImpactFim::setup() {
  RowBufferChannelBase::setup();
  // Step 1 in one command: an all-bank op on the receiver row initializes
  // every bank's row buffer simultaneously.
  util::Cycle init_clock = 0;
  (void)receiver_fim_.execute_all_bank(config_.channel.receiver_row,
                                       init_clock);
}

void ImpactFim::send_bit(std::uint32_t bank, bool bit, util::Cycle& clock) {
  if (!bit) {
    clock += config().sender_nop_cost;
    return;
  }
  (void)sender_fim_.execute_bank(bank, config_.channel.sender_row, clock);
}

double ImpactFim::probe(std::uint32_t bank, util::Cycle& clock) {
  const auto& ts = system().timestamp();
  const util::Cycle t0 = ts.read(clock);
  (void)receiver_fim_.execute_bank(bank, config_.channel.receiver_row,
                                   clock);
  const util::Cycle t1 = ts.read_fast(clock);
  return static_cast<double>(t1 - t0);
}

}  // namespace impact::attacks
