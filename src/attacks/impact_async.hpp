// IMPACT-Async: a synchronization-free PnM covert channel (extension).
//
// The paper's Streamline comparison point owes its speed to *asynchronous
// collusion* — no per-batch handshake. The same idea applies to the PiM
// channel: sender and receiver agree (offline) on a slot length and derive
// slot boundaries from their timestamp counters; the sender transmits bit
// k during slot k and the receiver probes mid-slot. No semaphores, no
// fences — the slot length is the only rate limit, but slots shorter than
// the probe path overrun and the channel degrades, which is the trade-off
// bench_ablation_sweep measures.
#pragma once

#include <vector>

#include "channel/attack.hpp"
#include "channel/threshold.hpp"
#include "pim/pei.hpp"
#include "sys/system.hpp"

namespace impact::attacks {

struct ImpactAsyncConfig {
  std::uint32_t banks = 16;
  util::Cycle slot_cycles = 240;  ///< Agreed slot length.
  dram::RowId receiver_row = 64;
  dram::RowId sender_row = 96;
  std::size_t calibration_bits = 64;
  pim::PeiConfig pei{};
};

class ImpactAsync final : public channel::CovertAttack {
 public:
  explicit ImpactAsync(sys::MemorySystem& system,
                       ImpactAsyncConfig config = {});

  [[nodiscard]] std::string name() const override { return "IMPACT-Async"; }

  [[nodiscard]] double threshold() const { return threshold_; }
  /// Fraction of receiver probes that overran their slot in the last
  /// transmission (the failure mode of too-aggressive slot lengths).
  [[nodiscard]] double overrun_rate() const { return overrun_rate_; }

 protected:
  channel::TransmissionResult do_transmit(const util::BitVec& message)
      override;

 private:
  void ensure_ready();
  void calibrate();

  sys::MemorySystem* system_;
  ImpactAsyncConfig config_;
  bool ready_ = false;
  double threshold_ = 0.0;
  double overrun_rate_ = 0.0;
  std::vector<sys::VSpan> receiver_spans_;
  std::vector<sys::VSpan> sender_spans_;
  std::vector<double> last_latencies_;
  pim::PeiDispatcher sender_pei_;
  pim::PeiDispatcher receiver_pei_;
  util::Cycle epoch_ = 0;  ///< Slot-grid origin, advanced per message.
};

}  // namespace impact::attacks
