#include "attacks/impact_async.hpp"

#include <algorithm>

#include "attacks/common.hpp"
#include "util/assert.hpp"

namespace impact::attacks {

ImpactAsync::ImpactAsync(sys::MemorySystem& system, ImpactAsyncConfig config)
    : system_(&system),
      config_(config),
      sender_pei_(config.pei, system, kSender),
      receiver_pei_(config.pei, system, kReceiver) {
  util::check(config_.banks > 0 &&
                  config_.banks <= system.controller().banks(),
              "ImpactAsyncConfig: bad bank count");
  // Below ~120 cycles the sender's activation would not even land in the
  // bank before the mid-slot probe; the simulator's program-order state
  // application is only faithful above this bound.
  util::check(config_.slot_cycles >= 120,
              "ImpactAsyncConfig: slot too short to issue anything");
}

void ImpactAsync::ensure_ready() {
  if (ready_) return;
  ready_ = true;
  for (std::uint32_t b = 0; b < config_.banks; ++b) {
    receiver_spans_.push_back(
        system_->vmem().map_row(kReceiver, b, config_.receiver_row));
    sender_spans_.push_back(
        system_->vmem().map_row(kSender, b, config_.sender_row));
    system_->warm_span(kReceiver, receiver_spans_.back());
    system_->warm_span(kSender, sender_spans_.back());
  }
  // Initialize the receiver rows.
  util::Cycle init = 0;
  for (std::uint32_t b = 0; b < config_.banks; ++b) {
    const auto col = receiver_pei_.next_bypass_column(8192, 64);
    (void)receiver_pei_.execute(receiver_spans_[b].vaddr + col, init);
  }
  epoch_ = init + config_.slot_cycles;
  calibrate();
}

void ImpactAsync::calibrate() {
  const auto pattern = util::BitVec::alternating(config_.calibration_bits);
  threshold_ = 0.0;
  (void)do_transmit(pattern);
  channel::ThresholdCalibrator cal;
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    if (pattern.get(i)) {
      cal.add_high(last_latencies_[i]);
    } else {
      cal.add_low(last_latencies_[i]);
    }
  }
  threshold_ = cal.threshold();
}

channel::TransmissionResult ImpactAsync::do_transmit(
    const util::BitVec& message) {
  ensure_ready();
  util::check(!message.empty(), "ImpactAsync::transmit: empty message");

  channel::TransmissionResult result;
  result.sent = message;
  result.decoded = util::BitVec(message.size());
  last_latencies_.assign(message.size(), 0.0);

  const util::Cycle slot = config_.slot_cycles;
  const util::Cycle start = epoch_;
  util::Cycle sender_clock = epoch_;
  util::Cycle receiver_clock = epoch_;
  std::size_t overruns = 0;
  const auto& ts = system_->timestamp();

  // The two actors free-run against the slot grid with no handshake, so
  // their operations must be applied to the shared banks in *timestamp*
  // order — that is what makes receiver lag really hurt: a probe that has
  // drifted a full bank-recycle behind reads the next message round's
  // state.
  const std::size_t n = message.size();
  std::size_t ks = 0;
  std::size_t kr = 0;
  while (kr < n) {
    const util::Cycle sender_next =
        ks < n ? std::max(sender_clock, start + ks * slot)
               : ~util::Cycle{0};
    const util::Cycle receiver_next =
        std::max(receiver_clock, start + kr * slot + slot / 2);
    if (sender_next <= receiver_next && ks < n) {
      // Sender: spin to its slot boundary, transmit if 1. If its previous
      // operation overran, it simply starts late (no resync exists).
      sender_clock = sender_next;
      if (message.get(ks)) {
        const auto col = sender_pei_.next_bypass_column(8192, 64);
        const std::uint32_t bank =
            static_cast<std::uint32_t>(ks % config_.banks);
        (void)sender_pei_.execute(sender_spans_[bank].vaddr + col,
                                  sender_clock);
      }
      ++ks;
      continue;
    }
    // Receiver: probe mid-slot (late if lagging).
    const util::Cycle probe_at = start + kr * slot + slot / 2;
    if (receiver_clock > probe_at) ++overruns;  // Slot deadline missed.
    receiver_clock = std::max(receiver_clock, probe_at);
    const std::uint32_t bank =
        static_cast<std::uint32_t>(kr % config_.banks);
    const auto col = receiver_pei_.next_bypass_column(8192, 64);
    const util::Cycle t0 = ts.read(receiver_clock);
    (void)receiver_pei_.execute(receiver_spans_[bank].vaddr + col,
                                receiver_clock);
    const util::Cycle t1 = ts.read_fast(receiver_clock);
    const double latency = static_cast<double>(t1 - t0);
    last_latencies_[kr] = latency;
    if (threshold_ > 0.0) {
      result.decoded.set(kr, channel::decode_bit(latency, threshold_));
    }
    ++kr;
  }

  overrun_rate_ = static_cast<double>(overruns) /
                  static_cast<double>(message.size());
  const util::Cycle end = std::max(sender_clock, receiver_clock);
  result.report.elapsed_cycles = end - start;
  result.report.sender_cycles = sender_clock - start;
  result.report.receiver_cycles = receiver_clock - start;
  channel::score(result);
  epoch_ = end + slot;
  return result;
}

}  // namespace impact::attacks
