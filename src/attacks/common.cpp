#include "attacks/common.hpp"

#include <algorithm>

#include "fault/injector.hpp"
#include "sys/sync.hpp"
#include "util/assert.hpp"

namespace impact::attacks {

RowBufferChannelBase::RowBufferChannelBase(sys::MemorySystem& system,
                                           RowChannelConfig config)
    : system_(&system), config_(config) {
  util::check(config_.banks > 0, "RowChannelConfig: need at least one bank");
  util::check(config_.banks <= system.controller().banks(),
              "RowChannelConfig: more signalling banks than DRAM banks");
  util::check(config_.batch_bits > 0,
              "RowChannelConfig: batch must hold at least one bit");
  util::check(config_.receiver_row != config_.sender_row,
              "RowChannelConfig: sender and receiver rows must differ");
}

util::Cycle RowBufferChannelBase::measurement_overhead() const {
  return system_->timestamp().measurement_overhead();
}

void RowBufferChannelBase::setup() {
  receiver_spans_.reserve(config_.banks);
  sender_spans_.reserve(config_.banks);
  for (std::uint32_t b = 0; b < config_.banks; ++b) {
    receiver_spans_.push_back(
        system_->vmem().map_row(kReceiver, b, config_.receiver_row));
    sender_spans_.push_back(
        system_->vmem().map_row(kSender, b, config_.sender_row));
    system_->warm_span(kReceiver, receiver_spans_.back());
    system_->warm_span(kSender, sender_spans_.back());
  }
}

void RowBufferChannelBase::ensure_ready() {
  if (ready_) return;
  ready_ = true;  // Set first: calibrate() reuses transmit().
  setup();
  // Step 1 of the protocol: the receiver initializes every signalling bank
  // by activating its predetermined row (the probe primitive does exactly
  // that). Probes are self-healing — each one re-activates the receiver's
  // row — so this runs once per channel, not per message.
  for (std::uint32_t b = 0; b < config_.banks; ++b) {
    (void)probe(b, receiver_clock_);
  }
  calibrate();
}

void RowBufferChannelBase::calibrate() {
  // Transmit a known alternating pattern and cluster the probe latencies by
  // ground truth; the decision threshold is the cluster midpoint. This is
  // the attacker-visible analogue of the paper's 150-cycle threshold.
  const auto pattern = util::BitVec::alternating(config_.calibration_bits);
  threshold_ = 0.0;  // Sentinel: decoding is skipped during calibration.
  auto result = do_transmit(pattern);
  channel::ThresholdCalibrator cal;
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    if (pattern.get(i)) {
      cal.add_high(last_latencies_[i]);
    } else {
      cal.add_low(last_latencies_[i]);
    }
  }
  threshold_ = cal.threshold();
}

util::Cycle RowBufferChannelBase::recalibrate() {
  const util::Cycle before = std::max(sender_clock_, receiver_clock_);
  if (!ready_) {
    ensure_ready();  // First use: the lazy path already calibrates.
  } else {
    calibrate();
  }
  return std::max(sender_clock_, receiver_clock_) - before;
}

channel::TransmissionResult RowBufferChannelBase::do_transmit(
    const util::BitVec& message) {
  ensure_ready();
  util::check(!message.empty(), "transmit: empty message");

  channel::TransmissionResult result;
  result.sent = message;
  result.decoded = util::BitVec(message.size());
  last_latencies_.assign(message.size(), 0.0);
  last_sync_timeouts_ = 0;
  fault::Injector* faults = system_->fault_injector();

  sys::SimBarrier barrier;
  sys::SimSemaphore batches_ready;

  // Synchronize the two actors' local clocks at the start of the turn.
  barrier.sync(sender_clock_, receiver_clock_);
  const util::Cycle start = sender_clock_;
  const util::Cycle sender_start = sender_clock_;
  const util::Cycle receiver_start = receiver_clock_;

  const std::size_t n = message.size();
  const std::uint32_t m = config_.batch_bits;
  std::size_t next_receive = 0;
  const std::uint32_t threads = std::max(1u, config_.sender_threads);
  const std::uint32_t rthreads = std::max(1u, config_.receiver_threads);
  worker_clocks_.assign(threads, sender_clock_);
  // Per-batch bank/bit staging for the batched hooks (capacity persists
  // across batches and transmissions).
  batch_banks_.resize(m);
  batch_bits_.resize(m);

  // The driver alternates sender and receiver batches in program order;
  // simulated time still overlaps them, because the receiver's clock only
  // advances past a semaphore post when it actually has to wait (§4.1
  // sender/receiver latency overlap).
  for (std::size_t base = 0; base < n; base += m) {
    const std::size_t batch_end = std::min(n, base + m);
    const std::size_t count = batch_end - base;
    for (std::size_t i = base; i < batch_end; ++i) {
      batch_banks_[i - base] = static_cast<std::uint32_t>(i % config_.banks);
      batch_bits_[i - base] = static_cast<std::uint8_t>(message.get(i));
    }
    // --- Sender: transmit this batch (round-robin over threads). ------
    if (threads == 1) {
      // Single-core sender: the lone worker clock always equals
      // sender_clock_ at batch start (it is synced to it and never runs
      // ahead past the fence), so the batch runs directly on
      // sender_clock_ through one batched-hook call — bit-identical to
      // the per-thread path, without the staging vector and join scan.
      send_run(batch_banks_.data(), batch_bits_.data(), count, sender_clock_);
    } else {
      for (auto& c : worker_clocks_) c = std::max(c, sender_clock_);
      for (std::size_t i = base; i < batch_end; ++i) {
        util::Cycle& clock = worker_clocks_[(i - base) % threads];
        send_bit(batch_banks_[i - base], batch_bits_[i - base] != 0, clock);
      }
      // Join: the batch is transmitted when the slowest worker finishes.
      sender_clock_ =
          *std::max_element(worker_clocks_.begin(), worker_clocks_.end());
      sender_clock_ += config_.join_cost;
    }
    sender_clock_ += config_.fence_cost;  // mfence before signalling.
    if (faults == nullptr) {
      batches_ready.post(sender_clock_);
    } else if (!faults->drop_post(sender_clock_)) {
      // A delayed post models the poster being descheduled between the
      // store and the futex wake: delivery slips, the sender's own clock
      // does not.
      batches_ready.post(sender_clock_ + faults->post_delay(sender_clock_));
    }
    if (noise_ != nullptr) noise_->advance(sender_clock_);

    // --- Receiver: probe the batch the sender just signalled. ---------
    // Bounded wait: a dropped post must not deadlock (or abort) the
    // receiver. On timeout it resynchronizes by probing anyway — in
    // program order the sender has already written this batch's bank
    // state, so the bits are usually still recoverable; what the fault
    // costs is the timeout itself plus any overlap mistiming, which the
    // framed protocol layer detects per frame via CRC.
    const auto wait = batches_ready.wait_until(
        receiver_clock_, receiver_clock_ + config_.wait_timeout);
    receiver_clock_ = wait.now;
    if (!wait.acquired()) ++last_sync_timeouts_;
    if (faults != nullptr) {
      // Receiver-side clock drift (DVFS, SMIs, timer skew): the probe
      // schedule slides relative to the sender's batches.
      receiver_clock_ += faults->clock_drift(receiver_clock_);
    }
    if (rthreads == 1) {
      // Single-core receiver: one batched-hook call on receiver_clock_
      // (each fresh probe-clock vector would start at receiver_clock_ and
      // its max over one element is itself).
      probe_run(batch_banks_.data(), count, receiver_clock_,
                last_latencies_.data() + next_receive);
    } else {
      probe_clocks_.assign(rthreads, receiver_clock_);
      for (std::size_t i = next_receive; i < batch_end; ++i) {
        util::Cycle& clock = probe_clocks_[(i - next_receive) % rthreads];
        last_latencies_[i] = probe(batch_banks_[i - next_receive], clock);
      }
      receiver_clock_ =
          *std::max_element(probe_clocks_.begin(), probe_clocks_.end());
      receiver_clock_ += config_.join_cost;
    }
    if (threshold_ > 0.0) {
      for (std::size_t i = next_receive; i < batch_end; ++i) {
        result.decoded.set(i,
                           channel::decode_bit(last_latencies_[i], threshold_));
      }
    }
    next_receive = batch_end;
  }

  result.report.elapsed_cycles =
      std::max(sender_clock_, receiver_clock_) - start;
  result.report.sender_cycles = sender_clock_ - sender_start;
  result.report.receiver_cycles = receiver_clock_ - receiver_start;
  channel::score(result);
  return result;
}

}  // namespace impact::attacks
