#include "attacks/genome_inference.hpp"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "util/assert.hpp"

namespace impact::attacks {

GenomeInference::GenomeInference(const genomics::SeedTable& table,
                                 std::size_t reference_bases,
                                 InferenceConfig config)
    : table_(&table), reference_bases_(reference_bases), config_(config) {
  util::check(reference_bases_ > 0, "GenomeInference: empty reference");
  util::check(config_.bin_bases > 0, "GenomeInference: bin_bases > 0");
}

EpisodeInference GenomeInference::score_episode(
    const std::vector<BankObservation>& episode) const {
  EpisodeInference out;
  out.begin = episode.front().time;
  out.end = episode.back().time;

  // Distinct banks only: repeated positives on one bank carry no new
  // bucket information within an episode.
  std::set<dram::BankId> banks;
  for (const auto& obs : episode) banks.insert(obs.bank);
  if (banks.size() < config_.min_banks) return out;

  // Vote: each bank's candidate buckets contribute their stored reference
  // positions (deduplicated per bank per bin — one bank, one vote per
  // region). High-frequency (repeat) buckets are masked, as mappers mask
  // repeat minimizers.
  const std::uint32_t total_banks = table_->banks();
  const std::uint32_t buckets = table_->config().buckets;
  std::unordered_map<std::size_t, std::uint32_t> bin_votes;
  std::size_t candidates = 0;
  for (const dram::BankId bank : banks) {
    std::set<std::size_t> bins_for_bank;
    for (std::uint32_t bucket = bank; bucket < buckets;
         bucket += total_banks) {
      const auto positions = table_->query_bucket(bucket);
      if (positions.size() > config_.max_bucket_positions) continue;
      candidates += positions.size();
      for (const std::uint32_t pos : positions) {
        bins_for_bank.insert(pos / config_.bin_bases);
      }
    }
    for (const std::size_t bin : bins_for_bank) ++bin_votes[bin];
  }
  out.candidate_positions = candidates;

  // Top-k bins by support (ties broken by position for determinism).
  std::vector<InferredRegion> regions;
  regions.reserve(bin_votes.size());
  for (const auto& [bin, votes] : bin_votes) {
    regions.push_back(
        InferredRegion{bin * config_.bin_bases, votes});
  }
  std::sort(regions.begin(), regions.end(),
            [](const InferredRegion& a, const InferredRegion& b) {
              if (a.support != b.support) return a.support > b.support;
              return a.position < b.position;
            });
  if (regions.size() > config_.top_k) regions.resize(config_.top_k);
  out.regions = std::move(regions);
  return out;
}

std::vector<EpisodeInference> GenomeInference::infer(
    const std::vector<BankObservation>& observations) const {
  std::vector<EpisodeInference> out;
  std::vector<BankObservation> episode;
  for (const auto& obs : observations) {
    if (!episode.empty() &&
        obs.time > episode.back().time + config_.episode_gap) {
      out.push_back(score_episode(episode));
      episode.clear();
    }
    episode.push_back(obs);
  }
  if (!episode.empty()) out.push_back(score_episode(episode));
  return out;
}

InferenceReport GenomeInference::evaluate(
    const std::vector<BankObservation>& observations,
    const std::vector<EpisodeTruth>& truths) const {
  const auto episodes = infer(observations);
  InferenceReport report;
  report.episodes = episodes.size();

  double candidate_fraction_sum = 0.0;
  double candidate_positions_sum = 0.0;
  std::size_t scored = 0;
  for (const auto& e : episodes) {
    if (e.regions.empty()) continue;
    ++scored;
    candidate_fraction_sum +=
        static_cast<double>(e.regions.size()) * config_.bin_bases /
        static_cast<double>(reference_bases_);
    candidate_positions_sum += static_cast<double>(e.candidate_positions);
  }
  report.scored = scored;
  report.mean_candidate_fraction =
      scored == 0 ? 0.0 : candidate_fraction_sum / static_cast<double>(scored);
  report.mean_candidate_positions =
      scored == 0 ? 0.0
                  : candidate_positions_sum / static_cast<double>(scored);

  // Match each truth to overlapping episodes; a hit is a top-k region
  // within one bin width of the true locus.
  for (const auto& truth : truths) {
    bool evaluated = false;
    bool matched = false;
    for (const auto& e : episodes) {
      if (e.regions.empty()) continue;
      if (e.end < truth.begin || e.begin > truth.end) continue;
      evaluated = true;
      for (const auto& region : e.regions) {
        const auto lo = region.position >= config_.bin_bases
                            ? region.position - config_.bin_bases
                            : 0;
        const auto hi = region.position + 2ull * config_.bin_bases;
        if (truth.true_position >= lo && truth.true_position < hi) {
          matched = true;
          break;
        }
      }
      if (matched) break;
    }
    if (evaluated) {
      ++report.evaluated_truths;
      report.matched_truths += matched ? 1 : 0;
    }
  }
  return report;
}

}  // namespace impact::attacks
