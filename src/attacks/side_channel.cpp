#include "attacks/side_channel.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "attacks/common.hpp"
#include "channel/threshold.hpp"
#include "util/assert.hpp"

namespace impact::attacks {

namespace {

/// Victim touches recorded per bank between two attacker probes.
struct Window {
  std::uint32_t seed_touches = 0;
  bool any_disturbance = false;
};

}  // namespace

ReadMappingSpy::ReadMappingSpy(SideChannelConfig config)
    : config_(config), rng_(config.seed) {
  util::check(config_.banks >= 16, "SideChannelConfig: needs >= 16 banks");

  system_config_.dram.channels = 1;
  system_config_.dram.ranks = 1;
  system_config_.dram.banks_per_rank = config_.banks;
  system_config_.dram.rows_per_bank = config_.rows_per_bank;
  system_config_.dram.subarray_rows =
      std::min(system_config_.dram.subarray_rows, config_.rows_per_bank);
  system_config_.seed = config_.seed;
  system_ = std::make_unique<sys::MemorySystem>(system_config_);

  // Build the shared reference + bank-striped seed table.
  util::Xoshiro256 genome_rng(config_.seed ^ 0x9E3779B97F4A7C15ull);
  reference_ = std::make_unique<genomics::Genome>(
      genomics::Genome::synthesize(config_.genome_length, genome_rng));
  config_.table.row_bytes = system_config_.dram.row_bytes;
  table_ = std::make_unique<genomics::SeedTable>(config_.table,
                                                 config_.banks);
  table_->build(*reference_);

  victim_pei_ =
      std::make_unique<pim::PeiDispatcher>(config_.pei, *system_, kVictim);
  attacker_pei_ =
      std::make_unique<pim::PeiDispatcher>(config_.pei, *system_, kReceiver);
}

sys::VAddr ReadMappingSpy::victim_vaddr(const genomics::TableLocation& loc) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(loc.bank) << 32) | loc.row;
  auto it = victim_rows_.find(key);
  if (it == victim_rows_.end()) {
    const auto span = system_->vmem().map_row(kVictim, loc.bank, loc.row);
    system_->warm_span(kVictim, span);
    it = victim_rows_.emplace(key, span.vaddr).first;
  }
  return it->second + loc.col;
}

void ReadMappingSpy::victim_step(std::size_t touch_index) {
  const auto& touch = victim_trace_[touch_index];
  victim_clock_ += config_.victim_compute_per_touch;
  (void)victim_pei_->execute(victim_vaddr(touch.location), victim_clock_);
}

double ReadMappingSpy::measure_probe(std::uint32_t bank) {
  const auto& ts = system_->timestamp();
  // Rotate the targeted block within the row (the §4.1 ignore-flag bypass)
  // so the PMU keeps the probe memory-side.
  const std::uint32_t col = attacker_pei_->next_bypass_column(
      system_config_.dram.row_bytes, 64);
  const util::Cycle t0 = ts.read(attacker_clock_);
  (void)attacker_pei_->execute(attacker_rows_[bank] + col, attacker_clock_);
  const util::Cycle t1 = ts.read_fast(attacker_clock_);
  double latency = static_cast<double>(t1 - t0);
  // §5.1 noise sources: measurement jitter plus occasional latency spikes
  // (interrupts, refresh collisions); both scale with the sweep footprint
  // (see SideChannelConfig::jitter_stddev).
  latency += rng_.normal(0.0, config_.jitter_stddev * jitter_scale_);
  if (rng_.chance(config_.spike_probability * jitter_scale_)) {
    latency += std::abs(rng_.normal(config_.spike_mean,
                                    config_.spike_mean / 2.0));
  }
  return latency;
}

void ReadMappingSpy::calibrate() {
  // The attacker self-calibrates in bank 0 with a scratch disturber row.
  const auto disturber =
      system_->vmem().map_row(kReceiver, 0, config_.attacker_row + 1);
  system_->warm_span(kReceiver, disturber);
  channel::ThresholdCalibrator cal;
  for (int i = 0; i < 48; ++i) {
    const std::uint32_t col = attacker_pei_->next_bypass_column(
        system_config_.dram.row_bytes, 64);
    (void)attacker_pei_->execute(attacker_rows_[0] + col, attacker_clock_);
    cal.add_low(measure_probe(0));  // Own row still open: the 0 cluster.
    (void)attacker_pei_->execute(disturber.vaddr + col, attacker_clock_);
    cal.add_high(measure_probe(0));  // Displaced row: the 1 cluster.
  }
  threshold_ = cal.threshold();
}

bool ReadMappingSpy::attacker_probe(std::uint32_t bank) {
  const double latency = measure_probe(bank);
  attacker_clock_ += config_.attacker_loop_cost;
  // Update this bank's bookkeeping record (timestamp + decision history)
  // through the attacker's own cache hierarchy: at small bank counts the
  // record array stays L1/L2-resident; a device-wide sweep pushes it into
  // the LLC and the per-probe cost grows accordingly.
  const sys::VAddr record =
      bookkeeping_span_.vaddr +
      static_cast<std::uint64_t>(bank) * config_.bookkeeping_bytes_per_bank;
  (void)system_->load(kReceiver, record, attacker_clock_);
  (void)system_->store(kReceiver, record + 64, attacker_clock_);
  return channel::decode_bit(latency, threshold_);
}

SideChannelResult ReadMappingSpy::run() {
  SideChannelResult result;

  // --- Record the victim's offload trace (pure algorithm). -------------
  victim_trace_.clear();
  touch_read_.clear();
  read_positions_.clear();
  genomics::ReferenceLayout layout{config_.banks, /*base_row=*/32,
                                   system_config_.dram.row_bytes,
                                   system_config_.dram.row_bytes * 4};
  std::uint32_t current_read = 0;
  genomics::ReadMapper mapper(
      *reference_, *table_, layout, config_.mapper,
      [this, &current_read](const genomics::MemoryTouch& t) {
        victim_trace_.push_back(t);
        touch_read_.push_back(current_read);
      });
  util::Xoshiro256 read_rng(config_.seed ^ 0xABCDEF12345678ull);
  const auto reads =
      genomics::sample_reads(*reference_, config_.reads, config_.readsim,
                             read_rng);
  std::size_t mapped_ok = 0;
  for (const auto& read : reads) {
    current_read = static_cast<std::uint32_t>(read_positions_.size());
    read_positions_.push_back(read.true_position);
    const auto m = mapper.map(read);
    const auto delta = static_cast<std::int64_t>(m.position) -
                       static_cast<std::int64_t>(read.true_position);
    if (m.mapped && std::llabs(delta) <= 5) ++mapped_ok;
  }
  result.victim_accuracy =
      static_cast<double>(mapped_ok) / static_cast<double>(reads.size());

  // --- Attacker setup + calibration. -----------------------------------
  // The probe array is one huge-page-backed row span covering row
  // `attacker_row` of every bank: thousands of banks fit in a handful of
  // 2 MiB TLB entries, so sweeps do not thrash the attacker's own TLB.
  const auto probe_span = system_->vmem().map_row_span(
      kReceiver, config_.attacker_row, /*huge=*/true);
  system_->warm_span(kReceiver, probe_span);
  attacker_rows_.resize(config_.banks);
  for (std::uint32_t b = 0; b < config_.banks; ++b) {
    attacker_rows_[b] =
        probe_span.vaddr + static_cast<std::uint64_t>(b) *
                               system_config_.dram.row_bytes;
  }
  const std::uint64_t book_bytes = static_cast<std::uint64_t>(config_.banks) *
                                   config_.bookkeeping_bytes_per_bank;
  bookkeeping_span_ = system_->vmem().map_pages(
      kReceiver, (book_bytes + 4095) / 4096);
  system_->warm_span(kReceiver, bookkeeping_span_);
  jitter_scale_ = std::sqrt(static_cast<double>(config_.banks) / 1024.0);
  calibrate();
  result.threshold = threshold_;

  // Initialization sweep: open the attacker's row in every bank.
  for (std::uint32_t b = 0; b < config_.banks; ++b) {
    (void)attacker_pei_->execute(attacker_rows_[b], attacker_clock_);
    attacker_clock_ += config_.attacker_loop_cost;
  }

  // --- Co-simulation: victim replays its trace, attacker sweeps. -------
  std::vector<Window> windows(config_.banks);
  std::size_t tv = 0;
  std::uint32_t pb = 0;
  victim_clock_ = attacker_clock_;  // Both start now.
  const util::Cycle start = attacker_clock_;

  auto note_victim_touch = [&](const genomics::MemoryTouch& t) {
    auto& w = windows[t.location.bank];
    w.any_disturbance = true;
    if (t.kind == genomics::MemoryTouch::Kind::kSeedProbe) {
      ++w.seed_touches;
      ++result.victim_seed_events;
    }
  };

  auto do_probe = [&](std::uint32_t bank) {
    const bool decision = attacker_probe(bank);
    auto& w = windows[bank];
    const bool truth = w.seed_touches > 0;
    ++result.probes.observations;
    if (decision == truth) ++result.probes.correct;
    if (decision && truth) ++result.captured_events;
    if (decision) {
      result.positives.push_back(BankObservation{bank, attacker_clock_});
    }
    w = Window{};
  };

  // Ground-truth read episodes (evaluation only): opened/closed as the
  // victim's trace replay crosses read boundaries.
  std::uint32_t truth_read = touch_read_.empty() ? 0 : touch_read_[0];
  util::Cycle truth_begin = victim_clock_;
  auto close_episode = [&](util::Cycle end) {
    result.episode_truths.push_back(EpisodeTruth{
        read_positions_[truth_read], truth_begin, end});
  };

  // Run to steady state: the victim replays its mapping workload
  // continuously (a long sequencing batch) until the attacker has swept
  // the whole device several times.
  const std::size_t target_probes = 6ull * config_.banks;
  util::Cycle victim_dummy_cycles = 0;
  util::Cycle victim_total_cycles = 0;
  while (result.probes.observations < target_probes) {
    if (victim_clock_ <= attacker_clock_) {
      if (touch_read_[tv] != truth_read) {
        close_episode(victim_clock_);
        // Unpipelined per-read tail work (see victim_alignment_compute).
        victim_clock_ += config_.victim_alignment_compute;
        truth_read = touch_read_[tv];
        truth_begin = victim_clock_;
      }
      const util::Cycle before = victim_clock_;
      note_victim_touch(victim_trace_[tv]);
      victim_step(tv);
      // Camouflage defense: bury the real probe in dummy probes to
      // uniformly random banks (same table row, random entry offset —
      // indistinguishable from real lookups to the attacker).
      const util::Cycle dummies_from = victim_clock_;
      for (std::uint32_t d = 0; d < config_.dummy_probes_per_touch; ++d) {
        genomics::TableLocation loc;
        loc.bank = static_cast<dram::BankId>(rng_.below(config_.banks));
        loc.row = config_.table.table_row;
        loc.col = static_cast<std::uint32_t>(
            rng_.below(table_->entries_per_bank()) *
            config_.table.entry_bytes);
        windows[loc.bank].any_disturbance = true;
        (void)victim_pei_->execute(victim_vaddr(loc), victim_clock_);
      }
      victim_dummy_cycles += victim_clock_ - dummies_from;
      victim_total_cycles += victim_clock_ - before;
      tv = (tv + 1) % victim_trace_.size();
    } else {
      do_probe(pb);
      pb = (pb + 1) % config_.banks;
    }
  }
  close_episode(victim_clock_);
  if (victim_total_cycles > victim_dummy_cycles) {
    result.victim_slowdown =
        static_cast<double>(victim_total_cycles) /
        static_cast<double>(victim_total_cycles - victim_dummy_cycles);
  }

  result.probes.elapsed_cycles = attacker_clock_ - start;
  result.precision = genomics::LeakPrecision::of(*table_);
  return result;
}

}  // namespace impact::attacks
