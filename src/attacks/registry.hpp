// Uniform construction of all covert-channel comparison points (§5.1's
// seven attacks) for the bench sweeps.
#pragma once

#include <memory>
#include <string>

#include "channel/attack.hpp"
#include "dram/address_mapping.hpp"
#include "sys/system.hpp"

namespace impact::attacks {

enum class AttackKind : std::uint8_t {
  kDramaClflush,
  kDramaEviction,
  kDmaEngine,
  kPnmOffChip,
  kImpactPnm,
  kImpactPum,
  kDirectAccess,  ///< §3.3's idealized direct attack (Figs. 2/3).
  kImpactFim,     ///< Extension: §4.1's FIMDRAM generalization.
};

[[nodiscard]] const char* to_string(AttackKind kind);

/// Fig. 8's comparison set, in the paper's presentation order. Streamline
/// is the analytical model (model/cache_attack_model.hpp) and is added by
/// the bench directly.
inline constexpr AttackKind kFig8Attacks[] = {
    AttackKind::kDramaClflush, AttackKind::kDramaEviction,
    AttackKind::kDmaEngine,    AttackKind::kPnmOffChip,
    AttackKind::kImpactPnm,    AttackKind::kImpactPum,
};

/// The address-mapping scheme an attacker of this kind engineers its
/// allocations around (eviction sets need a mapping whose congruent lines
/// spread over banks).
[[nodiscard]] dram::MappingScheme recommended_mapping(AttackKind kind);

/// Constructs the attack against `system`. The system must use
/// `recommended_mapping(kind)` and outlive the attack.
[[nodiscard]] std::unique_ptr<channel::CovertAttack> make_attack(
    AttackKind kind, sys::MemorySystem& system);

}  // namespace impact::attacks
