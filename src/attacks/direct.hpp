// Abstract cache-bypassing attacks: the §3.3 "direct memory access attack"
// upper bound and the DMA-engine attack (§5.1 attack (iv)).
#pragma once

#include "attacks/common.hpp"

namespace impact::attacks {

/// One memory request per bit, no cache lookup, no eviction: the idealized
/// direct-access covert channel whose throughput is independent of the
/// cache configuration (Figs. 2 and 3).
class DirectAccess final : public RowBufferChannelBase {
 public:
  explicit DirectAccess(sys::MemorySystem& system, RowChannelConfig cfg = {})
      : RowBufferChannelBase(system, cfg) {}

  [[nodiscard]] std::string name() const override { return "Direct-access"; }

 protected:
  void send_bit(std::uint32_t bank, bool bit, util::Cycle& clock) override {
    if (!bit) {
      clock += config().sender_nop_cost;
      return;
    }
    (void)system().direct_access(kSender, sender_addr(bank), clock);
  }

  double probe(std::uint32_t bank, util::Cycle& clock) override {
    const auto& ts = system().timestamp();
    const util::Cycle t0 = ts.read(clock);
    (void)system().direct_access(kReceiver, receiver_addr(bank), clock);
    const util::Cycle t1 = ts.read_fast(clock);
    return static_cast<double>(t1 - t0);
  }
};

/// Row-buffer channel over the DMA engine: cache-coherent direct memory
/// requests, but each transfer pays the user-space driver overhead
/// (descriptor setup, doorbell, completion). §5.1 assumes a powerful
/// attacker who avoids context switches; the residual overhead still makes
/// this ~2.4x slower than IMPACT-PnM (Fig. 8).
class DmaEngine final : public RowBufferChannelBase {
 public:
  explicit DmaEngine(sys::MemorySystem& system, RowChannelConfig cfg = {})
      : RowBufferChannelBase(system, cfg) {}

  [[nodiscard]] std::string name() const override { return "DMA-engine"; }

 protected:
  void send_bit(std::uint32_t bank, bool bit, util::Cycle& clock) override {
    if (!bit) {
      clock += config().sender_nop_cost;
      return;
    }
    (void)system().dma_access(kSender, sender_addr(bank), clock);
  }

  double probe(std::uint32_t bank, util::Cycle& clock) override {
    const auto& ts = system().timestamp();
    const util::Cycle t0 = ts.read(clock);
    (void)system().dma_access(kReceiver, receiver_addr(bank), clock);
    const util::Cycle t1 = ts.read_fast(clock);
    return static_cast<double>(t1 - t0);
  }
};

}  // namespace impact::attacks
