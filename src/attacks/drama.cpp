#include "attacks/drama.hpp"

#include <algorithm>

namespace impact::attacks {

namespace {

RowChannelConfig adjust(RowChannelConfig channel, DramaPrimitive primitive) {
  if (primitive == DramaPrimitive::kEviction) {
    // Eviction sets generate DRAM fills in many banks; running the channel
    // through a single bank (the original DRAMA arrangement) keeps that
    // traffic from trampling pending bits in other signalling banks. Bits
    // are serial in this protocol anyway, so the per-bit cost is unchanged.
    channel.banks = 1;
    channel.batch_bits = 1;
  }
  return channel;
}

}  // namespace

Drama::Drama(sys::MemorySystem& system, DramaConfig config)
    : RowBufferChannelBase(system, adjust(config.channel, config.primitive)),
      primitive_(config.primitive),
      samples_per_bit_(std::max(1u, config.samples_per_bit)) {}

void Drama::displace(dram::ActorId actor, sys::VAddr vaddr,
                     util::Cycle& clock) {
  if (primitive_ == DramaPrimitive::kClflush) {
    (void)system().clflush(actor, vaddr, clock);
    clock += config().fence_cost;  // mfence: flush must complete first.
  } else {
    (void)system().evict(actor, vaddr, clock);
  }
}

void Drama::send_bit(std::uint32_t bank, bool bit, util::Cycle& clock) {
  if (!bit) {
    clock += config().sender_nop_cost;
    return;
  }
  // The sender's line is cached from the previous use of this bank; it must
  // be displaced so the access below reaches DRAM and opens the row. Each
  // bit window is held with `samples_per_bit` rounds.
  for (std::uint32_t s = 0; s < samples_per_bit_; ++s) {
    displace(kSender, sender_addr(bank), clock);
    (void)system().load(kSender, sender_addr(bank), clock);
  }
}

double Drama::probe(std::uint32_t bank, util::Cycle& clock) {
  // Displace first (unmeasured, but on the per-bit budget), then time the
  // reload: its latency reveals the row-buffer state. The bit's value is
  // the worst (slowest) of the redundant samples: interference in any
  // sample round means the sender was active in this window.
  const auto& ts = system().timestamp();
  double worst = 0.0;
  for (std::uint32_t s = 0; s < samples_per_bit_; ++s) {
    displace(kReceiver, receiver_addr(bank), clock);
    const util::Cycle t0 = ts.read(clock);
    (void)system().load(kReceiver, receiver_addr(bank), clock);
    const util::Cycle t1 = ts.read_fast(clock);
    worst = std::max(worst, static_cast<double>(t1 - t0));
  }
  return worst;
}

}  // namespace impact::attacks
