// IMPACT-PnM generalized to a FIMDRAM-style architecture (§4.1's claim
// that the attack carries over to other PnM designs).
//
// Differences from the PEI variant: commands reach the banks through
// memory-mapped registers with no locality monitor in the path (no
// ignore-flag bypass needed, no host-placement risk), and the receiver's
// Step-1 initialization is a single all-bank operation instead of one PEI
// per bank.
#pragma once

#include "attacks/common.hpp"
#include "pim/fimdram.hpp"

namespace impact::attacks {

struct ImpactFimConfig {
  RowChannelConfig channel{};
  pim::FimConfig fim{};
};

class ImpactFim final : public RowBufferChannelBase {
 public:
  explicit ImpactFim(sys::MemorySystem& system, ImpactFimConfig config = {});

  [[nodiscard]] std::string name() const override { return "IMPACT-FIM"; }

 protected:
  void setup() override;
  void send_bit(std::uint32_t bank, bool bit, util::Cycle& clock) override;
  double probe(std::uint32_t bank, util::Cycle& clock) override;

 private:
  ImpactFimConfig config_;
  pim::FimDispatcher sender_fim_;
  pim::FimDispatcher receiver_fim_;
};

}  // namespace impact::attacks
