// The side channel's payoff stage (§4.3 step 4): from bank-granular
// observations to inferred genome loci.
//
// The paper stops at "the attacker can use the leaked information in a
// completion attack to infer properties about some regions of the private
// sample genome" and cites imputation work; this module implements the
// first, architectural half of that pipeline. The attacker uses the SAME
// public artifacts the victim does — the reference genome's seed table —
// plus its timed bank observations:
//
//   1. Positive probes cluster in time: one read's seeding burst touches
//      ~a dozen banks within a short window. Gap-based segmentation
//      recovers per-read *episodes*.
//   2. Each episode bank narrows the victim's bucket to buckets/banks
//      candidates; querying the (shared) table expands those buckets into
//      candidate reference positions.
//   3. A read's many seeds land in ONE reference region, so the true
//      locus shows up as the region supported by the most distinct banks
//      of the episode — a voting/chaining step over coarse reference bins.
//
// The bench reports the top-k hit rate (episodes whose true read locus is
// among the k best-supported regions) and the search-space reduction
// relative to the whole reference.
#pragma once

#include <cstdint>
#include <vector>

// The genomics victim model is this attack's input surface (§6 leakage
// target); genomics never includes attacks, so the DAG stays acyclic.
// SIMLINT-ALLOW(layering): genomics victim model feeds this attack.
#include "genomics/seed_table.hpp"
#include "util/units.hpp"

namespace impact::attacks {

/// One positive probe: the attacker saw interference in `bank` at `time`.
struct BankObservation {
  dram::BankId bank = 0;
  util::Cycle time = 0;
};

/// Ground truth for evaluation: one victim read's true locus and the time
/// span its seeding burst occupied.
struct EpisodeTruth {
  std::size_t true_position = 0;
  util::Cycle begin = 0;
  util::Cycle end = 0;
};

struct InferenceConfig {
  /// Gap (cycles) separating two read episodes in the observation stream.
  util::Cycle episode_gap = 20000;
  /// Reference-position bin width for region voting.
  std::uint32_t bin_bases = 256;
  /// Candidate regions reported per episode.
  std::uint32_t top_k = 5;
  /// Minimum distinct banks for an episode to be scored at all.
  std::uint32_t min_banks = 3;
  /// Buckets holding more positions than this are ignored in the vote —
  /// the attacker-side analogue of read mappers masking high-frequency
  /// (repeat) minimizers, which otherwise flood every region with decoy
  /// support.
  std::uint32_t max_bucket_positions = 24;
};

/// One inferred locus: a reference region and its support.
struct InferredRegion {
  std::size_t position = 0;  ///< Bin start, in reference bases.
  std::uint32_t support = 0; ///< Distinct episode banks voting for it.
};

struct EpisodeInference {
  util::Cycle begin = 0;
  util::Cycle end = 0;
  std::vector<InferredRegion> regions;  ///< Best-first, <= top_k.
  std::size_t candidate_positions = 0;  ///< Pre-vote candidate count.
};

struct InferenceReport {
  std::size_t episodes = 0;
  std::size_t scored = 0;        ///< Episodes with >= min_banks.
  std::size_t matched_truths = 0;///< Truths hit by a top-k region.
  std::size_t evaluated_truths = 0;
  double mean_candidate_fraction = 0.0;  ///< Search space left, of 1.0.
  /// Mean candidate reference positions an episode's banks expand into
  /// before voting (the §5.4 precision quantity: fewer buckets per bank
  /// means fewer candidates).
  double mean_candidate_positions = 0.0;

  [[nodiscard]] double topk_hit_rate() const {
    return evaluated_truths == 0
               ? 0.0
               : static_cast<double>(matched_truths) /
                     static_cast<double>(evaluated_truths);
  }
  /// How much of the reference the attacker still has to consider.
  [[nodiscard]] double search_space_reduction() const {
    return mean_candidate_fraction == 0.0
               ? 0.0
               : 1.0 / mean_candidate_fraction;
  }
};

class GenomeInference {
 public:
  /// `table` is the shared seed table (public artifact); `reference_bases`
  /// is the reference length (public).
  GenomeInference(const genomics::SeedTable& table,
                  std::size_t reference_bases, InferenceConfig config = {});

  /// Splits observations (time-ordered) into episodes and infers loci.
  [[nodiscard]] std::vector<EpisodeInference> infer(
      const std::vector<BankObservation>& observations) const;

  /// Full evaluation against ground truth (episode spans may interleave
  /// with probes arbitrarily; matching is by time overlap).
  [[nodiscard]] InferenceReport evaluate(
      const std::vector<BankObservation>& observations,
      const std::vector<EpisodeTruth>& truths) const;

 private:
  [[nodiscard]] EpisodeInference score_episode(
      const std::vector<BankObservation>& episode) const;

  const genomics::SeedTable* table_;
  std::size_t reference_bases_;
  InferenceConfig config_;
};

}  // namespace impact::attacks
