// Timing-based DRAM address-mapping reverse engineering (DRAMA, §2.3/§4.1).
//
// Both IMPACT covert channels assume sender and receiver co-locate rows in
// chosen banks ("memory massaging"), which in practice requires knowing the
// physical-address -> bank function. DRAMA recovers it from timing alone:
// two addresses in the *same* bank (different rows) conflict on every
// alternating access, while addresses in different banks keep their own
// rows open. This module implements that primitive over the simulator's
// direct-access path and clusters sampled addresses into bank-equivalence
// classes, verified against the ground-truth mapping in tests.
#pragma once

#include <cstdint>
#include <vector>

#include "sys/system.hpp"
#include "util/rng.hpp"

namespace impact::attacks {

struct ReconConfig {
  std::size_t sample_addresses = 64;
  /// Alternating accesses per pair test (more = sharper statistics).
  std::uint32_t rounds_per_pair = 6;
  std::uint64_t seed = 911;
};

struct ReconResult {
  std::uint32_t classes_found = 0;      ///< Distinct banks among samples.
  std::uint32_t classes_expected = 0;   ///< Ground truth for the samples.
  std::size_t pair_tests = 0;
  std::size_t pair_errors = 0;          ///< Same-bank verdicts vs truth.

  [[nodiscard]] double pairwise_accuracy() const {
    return pair_tests == 0
               ? 0.0
               : 1.0 - static_cast<double>(pair_errors) /
                           static_cast<double>(pair_tests);
  }
};

class MappingRecon {
 public:
  MappingRecon(sys::MemorySystem& system, dram::ActorId actor,
               ReconConfig config = {});

  /// The DRAMA timing primitive: do `a` and `b` share a bank? Decided by
  /// the mean latency of alternating direct accesses against a calibrated
  /// threshold.
  [[nodiscard]] bool same_bank(sys::VAddr a, sys::VAddr b);

  /// Samples addresses, runs all pair tests, unions same-bank verdicts
  /// into classes and scores them against the ground-truth mapping.
  ReconResult run();

 private:
  double pair_latency(sys::VAddr a, sys::VAddr b);
  void calibrate();

  sys::MemorySystem* system_;
  dram::ActorId actor_;
  ReconConfig config_;
  util::Xoshiro256 rng_;
  double threshold_ = 0.0;
  util::Cycle clock_ = 0;
};

}  // namespace impact::attacks
