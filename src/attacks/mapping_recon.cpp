#include "attacks/mapping_recon.hpp"

#include <numeric>
#include <set>

#include "util/assert.hpp"

namespace impact::attacks {

MappingRecon::MappingRecon(sys::MemorySystem& system, dram::ActorId actor,
                           ReconConfig config)
    : system_(&system), actor_(actor), config_(config), rng_(config.seed) {
  util::check(config_.sample_addresses >= 2,
              "ReconConfig: need at least two samples");
  util::check(config_.rounds_per_pair >= 2,
              "ReconConfig: need at least two rounds");
}

double MappingRecon::pair_latency(sys::VAddr a, sys::VAddr b) {
  // Alternate a,b,a,b,...: same-bank pairs conflict on every access.
  double total = 0.0;
  std::uint32_t measured = 0;
  for (std::uint32_t round = 0; round < config_.rounds_per_pair; ++round) {
    const auto ra = system_->direct_access(actor_, a, clock_);
    const auto rb = system_->direct_access(actor_, b, clock_);
    if (round == 0) continue;  // Warm-up round primes both rows.
    total += static_cast<double>(ra.latency + rb.latency) / 2.0;
    ++measured;
  }
  clock_ += 200;  // Loop overhead between pairs.
  return total / measured;
}

void MappingRecon::calibrate() {
  // Self-calibration with pages whose bank relation the attacker controls
  // by construction: two rows it massaged into one bank (slow reference)
  // and two in different banks (fast reference).
  auto& vmem = system_->vmem();
  const auto same_a = vmem.map_row(actor_, 0, 200);
  const auto same_b = vmem.map_row(actor_, 0, 201);
  const auto diff_b = vmem.map_row(actor_, 1, 202);
  system_->warm_span(actor_, same_a);
  system_->warm_span(actor_, same_b);
  system_->warm_span(actor_, diff_b);
  const double slow = pair_latency(same_a.vaddr, same_b.vaddr);
  const double fast = pair_latency(same_a.vaddr, diff_b.vaddr);
  util::check(slow > fast, "MappingRecon: calibration references inverted");
  threshold_ = (slow + fast) / 2.0;
}

bool MappingRecon::same_bank(sys::VAddr a, sys::VAddr b) {
  if (threshold_ == 0.0) calibrate();
  return pair_latency(a, b) > threshold_;
}

ReconResult MappingRecon::run() {
  auto& vmem = system_->vmem();
  const auto& mapping = system_->controller().mapping();

  // Sample random pages of the attacker's own allocation.
  std::vector<sys::VAddr> samples;
  std::vector<dram::BankId> truth;
  const auto span = vmem.map_pages(actor_, config_.sample_addresses);
  system_->warm_span(actor_, span);
  for (std::size_t i = 0; i < config_.sample_addresses; ++i) {
    const sys::VAddr v = span.vaddr + i * vmem.page_bytes();
    samples.push_back(v);
    truth.push_back(mapping.decode(vmem.translate(actor_, v)).bank);
  }

  ReconResult result;
  result.classes_expected = static_cast<std::uint32_t>(
      std::set<dram::BankId>(truth.begin(), truth.end()).size());

  // Union-find over same-bank verdicts.
  std::vector<std::size_t> parent(samples.size());
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };

  for (std::size_t i = 0; i < samples.size(); ++i) {
    for (std::size_t j = i + 1; j < samples.size(); ++j) {
      if (find(i) == find(j)) continue;  // Already known equivalent.
      const bool verdict = same_bank(samples[i], samples[j]);
      ++result.pair_tests;
      if (verdict != (truth[i] == truth[j])) ++result.pair_errors;
      if (verdict) parent[find(i)] = find(j);
    }
  }

  std::set<std::size_t> roots;
  for (std::size_t i = 0; i < samples.size(); ++i) roots.insert(find(i));
  result.classes_found = static_cast<std::uint32_t>(roots.size());
  return result;
}

}  // namespace impact::attacks
