#include "attacks/pnm_offchip.hpp"

#include <algorithm>

namespace impact::attacks {

PnmOffChip::PnmOffChip(sys::MemorySystem& system, PnmOffChipConfig cfg)
    : RowBufferChannelBase(system, cfg.channel),
      cfg_(cfg),
      sender_pei_(cfg.pei, system, kSender),
      receiver_pei_(cfg.pei, system, kReceiver),
      rng_(cfg.seed) {
  const double resident =
      std::min(1.0, static_cast<double>(system.config().llc_bytes) /
                        static_cast<double>(cfg_.background_ws_bytes));
  host_rate_ = std::min(1.0, cfg_.host_rate_base +
                                 cfg_.host_rate_slope * resident);
}

bool PnmOffChip::placed_on_host() { return rng_.chance(host_rate_); }

void PnmOffChip::execute_host(dram::ActorId actor, sys::VAddr vaddr,
                              util::Cycle& clock) {
  // Host-side PCU: ordinary cached load plus a ~3-cycle compute. The
  // attacker's rows are typically resident after earlier host placements,
  // so this usually never reaches DRAM — which is exactly the problem for
  // the attack.
  (void)system().load(actor, vaddr, clock);
  clock += 3;
}

void PnmOffChip::send_bit(std::uint32_t bank, bool bit, util::Cycle& clock) {
  if (!bit) {
    clock += config().sender_nop_cost;
    return;
  }
  const auto row_bytes = system().controller().config().row_bytes;
  const std::uint32_t col = sender_pei_.next_bypass_column(row_bytes, 64);
  if (placed_on_host()) {
    execute_host(kSender, sender_addr(bank) + col, clock);  // Bit lost.
    return;
  }
  (void)sender_pei_.execute(sender_addr(bank) + col, clock);
}

double PnmOffChip::probe(std::uint32_t bank, util::Cycle& clock) {
  const auto row_bytes = system().controller().config().row_bytes;
  const std::uint32_t col = receiver_pei_.next_bypass_column(row_bytes, 64);
  const auto& ts = system().timestamp();
  const util::Cycle t0 = ts.read(clock);
  if (placed_on_host()) {
    // Mis-routed probe: measures the cache path, not the DRAM row state.
    execute_host(kReceiver, receiver_addr(bank) + col, clock);
  } else {
    (void)receiver_pei_.execute(receiver_addr(bank) + col, clock);
  }
  const util::Cycle t1 = ts.read_fast(clock);
  return static_cast<double>(t1 - t0);
}

}  // namespace impact::attacks
