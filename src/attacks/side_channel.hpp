// The IMPACT side-channel attack on PiM-accelerated read mapping (§4.3).
//
// A victim process maps reads against a shared reference whose seed hash
// table is striped across all DRAM banks of the PiM device; its seeding
// and alignment steps are offloaded as PEI operations, activating the
// hash-table (or reference) row of the touched bank. The attacker holds
// one row in every bank and sweeps the device with timed PEI probes: a
// probe that finds the attacker's own row still open means nobody touched
// the bank since the last sweep (0); a row conflict means the victim did
// (1). Each correct decision narrows the victim's hash-table bucket to
// buckets/banks candidates (§5.4).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "attacks/genome_inference.hpp"
// The side channel leaks the genomics victim's hash-bucket accesses;
// genomics never includes attacks, so the DAG stays acyclic.
// SIMLINT-ALLOW(layering): genomics victim model feeds this attack.
#include "genomics/genome.hpp"
// SIMLINT-ALLOW(layering): see above.
#include "genomics/leak.hpp"
// SIMLINT-ALLOW(layering): see above.
#include "genomics/mapper.hpp"
// SIMLINT-ALLOW(layering): see above.
#include "genomics/seed_table.hpp"
#include "pim/pei.hpp"
#include "sys/system.hpp"
#include "util/rng.hpp"

namespace impact::attacks {

struct SideChannelConfig {
  std::uint32_t banks = 1024;      ///< PiM device bank count (Fig. 10 x-axis).
  std::uint32_t rows_per_bank = 256;
  std::size_t genome_length = 1ull << 21;  ///< Synthetic reference bases.
  std::size_t reads = 64;                  ///< Victim workload size.
  genomics::SeedTableConfig table{};
  genomics::ReadSimConfig readsim{};
  genomics::MapperConfig mapper{};
  pim::PeiConfig pei{};
  dram::RowId attacker_row = 4;
  /// CPU work the victim does between consecutive PiM offloads (hashing,
  /// chaining arithmetic).
  util::Cycle victim_compute_per_touch = 220;
  /// Host-side work at each read boundary (chaining + DP bookkeeping that
  /// is NOT overlapped with the next read's seeding). 0 models a fully
  /// pipelined victim (the Fig. 10 default); a non-zero value creates the
  /// inter-read gaps the inference stage's episode segmentation keys on.
  util::Cycle victim_alignment_compute = 0;
  /// Attacker's loop/bookkeeping cost per probe.
  util::Cycle attacker_loop_cost = 8;
  /// Stddev of system measurement jitter (§5.1 noise sources) in cycles.
  /// Scaled by sqrt(banks/1024): a sweep with a larger footprint keeps
  /// less of the attacker's own microarchitectural state (branch targets,
  /// TLB, cache) warm, so each measurement is noisier — the paper's
  /// "probing more banks makes the attack more prone to noise".
  double jitter_stddev = 6.0;
  /// Probability and magnitude of occasional latency spikes (interrupts,
  /// refresh collisions); probability scales like the jitter.
  double spike_probability = 0.022;
  double spike_mean = 60.0;
  /// Per-bank bookkeeping record the attacker maintains (timestamps,
  /// decision history) — streamed through its own cache hierarchy, so a
  /// big sweep pays LLC-class latencies per probe where a small one stays
  /// L1/L2-resident.
  std::uint32_t bookkeeping_bytes_per_bank = 256;
  /// Victim-side camouflage defense (extension, in the spirit of the
  /// obfuscation defenses §7 surveys): for every real seed probe the
  /// victim issues this many dummy PEIs to uniformly random banks, burying
  /// its true access pattern in cover traffic at a proportional
  /// performance cost. 0 disables the defense.
  std::uint32_t dummy_probes_per_touch = 0;
  std::uint64_t seed = 1234;
};

struct SideChannelResult {
  /// Probe-decision accounting (Fig. 10's throughput / error definition).
  genomics::LeakReport probes;
  /// Victim-event capture: how many of the victim's seed accesses the
  /// attacker's sweep resolution actually attributed (multi-touch events
  /// inside one probe window collapse into one observation — the organic
  /// reason more banks leak *less* per second).
  std::size_t victim_seed_events = 0;
  std::size_t captured_events = 0;
  genomics::LeakPrecision precision{};
  double victim_accuracy = 0.0;  ///< Victim's mapping quality (sanity).
  double threshold = 0.0;
  /// Victim slowdown from camouflage dummy probes (1.0 = no defense).
  double victim_slowdown = 1.0;
  /// Raw material for the §4.3 completion attack (genome_inference.hpp):
  /// the attacker's positive observations and — for evaluation only — the
  /// ground-truth read episodes they overlap.
  std::vector<BankObservation> positives;
  std::vector<EpisodeTruth> episode_truths;

  [[nodiscard]] double capture_rate() const {
    return victim_seed_events == 0
               ? 0.0
               : static_cast<double>(captured_events) /
                     static_cast<double>(victim_seed_events);
  }

  /// Leakage measured in correctly captured victim events per second: the
  /// complementary Fig. 10 metric (each captured event pins one hash-table
  /// access to a bucket group).
  [[nodiscard]] double capture_throughput_mbps(double ghz) const {
    if (probes.elapsed_cycles == 0) return 0.0;
    const double seconds =
        static_cast<double>(probes.elapsed_cycles) / (ghz * 1e9);
    return static_cast<double>(captured_events) / seconds / 1e6;
  }
};

class ReadMappingSpy {
 public:
  explicit ReadMappingSpy(SideChannelConfig config = {});

  /// Runs the full co-simulation: victim maps its reads while the attacker
  /// sweeps all banks; returns throughput/error/precision accounting.
  SideChannelResult run();

  [[nodiscard]] const sys::SystemConfig& system_config() const {
    return system_config_;
  }

  /// The shared seed table (for the inference stage and for tests).
  [[nodiscard]] const genomics::SeedTable& table() const { return *table_; }
  [[nodiscard]] std::size_t reference_bases() const {
    return reference_->size();
  }

 private:
  /// One victim PiM offload (seed probe or reference fetch).
  void victim_step(std::size_t touch_index);
  /// One attacker probe of `bank`; returns the decision (true = touched).
  bool attacker_probe(std::uint32_t bank);
  void calibrate();
  double measure_probe(std::uint32_t bank);
  sys::VAddr victim_vaddr(const genomics::TableLocation& loc);

  SideChannelConfig config_;
  sys::SystemConfig system_config_;
  std::unique_ptr<sys::MemorySystem> system_;
  std::unique_ptr<genomics::Genome> reference_;
  std::unique_ptr<genomics::SeedTable> table_;
  std::vector<genomics::MemoryTouch> victim_trace_;
  std::vector<std::uint32_t> touch_read_;  ///< Read index per trace touch.
  std::vector<std::size_t> read_positions_;  ///< True locus per read.

  std::unique_ptr<pim::PeiDispatcher> victim_pei_;
  std::unique_ptr<pim::PeiDispatcher> attacker_pei_;
  std::vector<sys::VAddr> attacker_rows_;
  sys::VSpan bookkeeping_span_{};
  double jitter_scale_ = 1.0;
  std::unordered_map<std::uint64_t, sys::VAddr> victim_rows_;
  util::Xoshiro256 rng_;
  double threshold_ = 0.0;

  util::Cycle victim_clock_ = 0;
  util::Cycle attacker_clock_ = 0;
};

}  // namespace impact::attacks
