// PnM-OffChip: a PEI covert channel on an architecture whose placement
// decision comes from a Hermes-style perceptron off-chip predictor instead
// of the ignore-flag locality monitor (§5.1 attack (v)).
//
// When the predictor judges a PEI's data to be on-chip / high-locality, the
// operation executes on the host CPU: the access is served by the cache
// hierarchy and no DRAM row is activated, so a sender-side host placement
// loses the bit and a receiver-side host placement mis-measures the probe.
// The fraction of host placements grows with the LLC size — a larger LLC
// keeps more of the attacker process's ordinary working set resident, which
// (through the predictor's finite feature tables) drags aliased PEI blocks
// toward on-chip predictions. We model that aliasing pressure with a
// calibrated host-placement probability p_host(LLC) anchored to the paper's
// endpoints (12.64 Mb/s at 2 MiB -> 10.64 Mb/s at 64 MiB); the perceptron
// itself is implemented and exercised in pim/offchip_predictor.
#pragma once

#include "attacks/common.hpp"
#include "pim/pei.hpp"
#include "util/rng.hpp"

namespace impact::attacks {

struct PnmOffChipConfig {
  RowChannelConfig channel{};
  pim::PeiConfig pei{};
  /// Baseline host-placement probability (feature aliasing floor).
  double host_rate_base = 0.015;
  /// Additional host placement as the attacker's background working set
  /// becomes LLC-resident.
  double host_rate_slope = 0.17;
  /// Background (non-PEI) working set of the attacker process.
  std::uint64_t background_ws_bytes = 96ull * 1024 * 1024;
  std::uint64_t seed = 7;
};

class PnmOffChip final : public RowBufferChannelBase {
 public:
  explicit PnmOffChip(sys::MemorySystem& system, PnmOffChipConfig cfg = {});

  [[nodiscard]] std::string name() const override { return "PnM-OffChip"; }

  /// Effective probability that the predictor places a PEI host-side.
  [[nodiscard]] double host_rate() const { return host_rate_; }

 protected:
  void send_bit(std::uint32_t bank, bool bit, util::Cycle& clock) override;
  double probe(std::uint32_t bank, util::Cycle& clock) override;

 private:
  /// One placement decision (true = host).
  bool placed_on_host();
  /// Host-side execution: cached load + compute, no row activation.
  void execute_host(dram::ActorId actor, sys::VAddr vaddr,
                    util::Cycle& clock);

  PnmOffChipConfig cfg_;
  pim::PeiDispatcher sender_pei_;
  pim::PeiDispatcher receiver_pei_;
  util::Xoshiro256 rng_;
  double host_rate_ = 0.0;
};

}  // namespace impact::attacks
