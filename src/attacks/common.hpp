// Shared machinery for row-buffer covert-channel attacks.
//
// All single-bank-per-bit attacks (IMPACT-PnM, DRAMA-clflush,
// DRAMA-eviction, DMA-engine, direct-access, PnM-OffChip) follow the same
// protocol skeleton (§4.1): sender and receiver co-locate one row each in
// every signalling bank; bits are sent in batches, 1 = activate the sender
// row (row-buffer interference), 0 = do nothing; a semaphore overlaps the
// sender's batch k+1 with the receiver's probing of batch k. The subclasses
// only differ in *how* the sender activates a row and how the receiver
// probes — i.e. in the attack primitive of Table 1.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "channel/attack.hpp"
#include "channel/report.hpp"
#include "channel/threshold.hpp"
#include "sys/noise.hpp"
#include "sys/system.hpp"
#include "util/bitvec.hpp"

namespace impact::attacks {

/// Actor ids used by all attacks.
inline constexpr dram::ActorId kSender = 1;
inline constexpr dram::ActorId kReceiver = 2;
inline constexpr dram::ActorId kVictim = 3;

struct RowChannelConfig {
  std::uint32_t banks = 16;       ///< Signalling banks (message width unit).
  std::uint32_t batch_bits = 4;   ///< M, bits per synchronization batch.
  dram::RowId receiver_row = 64;  ///< Receiver's probe row per bank.
  dram::RowId sender_row = 96;    ///< Sender's interference row per bank.
  std::size_t calibration_bits = 64;
  util::Cycle sender_nop_cost = 1;
  util::Cycle fence_cost = 20;    ///< Sender's post-batch memory fence.
  /// Sender threads: a batch's bits are distributed round-robin over this
  /// many cores, joining before the semaphore post. One PuM sender gets
  /// the same bank-parallelism from a single masked RowClone that a PnM
  /// sender needs this many threads (and PEIs) to approximate — the §4.2
  /// "less computational resources" contrast, measurable in
  /// bench_ablation_sweep.
  std::uint32_t sender_threads = 1;
  /// Receiver threads: batch probes distributed the same way (each thread
  /// owns its own timer; decode happens after the join). The receiver is
  /// the throughput bottleneck of every row-buffer channel, so this is
  /// the knob that actually multiplies rate — at a proportional compute
  /// cost (future-work territory for the paper).
  std::uint32_t receiver_threads = 1;
  /// Fork/join cost per batch when a side uses multiple threads.
  util::Cycle join_cost = 20;
  /// Receiver-side bound on one batch wait (sem_timedwait deadline). When
  /// a post never arrives — only possible under injected semaphore-drop
  /// faults — the receiver gives up after this many cycles and probes the
  /// batch anyway (bank state is already written by then), instead of the
  /// process aborting on a missed post. Fault-free runs always find the
  /// post pending, so the value never changes their timing.
  util::Cycle wait_timeout = 20000;
};

class RowBufferChannelBase : public channel::CovertAttack {
 public:
  RowBufferChannelBase(sys::MemorySystem& system, RowChannelConfig config);

  /// Calibrated decision threshold (cycles). Calibration runs lazily on
  /// the first transmit.
  [[nodiscard]] double threshold() const { return threshold_; }

  /// Receiver-measured latency of each bit of the last transmission
  /// (Fig. 7 uses this for a 16-bit message).
  [[nodiscard]] const std::vector<double>& last_latencies() const {
    return last_latencies_;
  }

  /// Attaches a background-noise process: it is advanced alongside the
  /// actors so its DRAM traffic interleaves with the channel's. The noise
  /// object must outlive the attack. Pass nullptr to detach.
  void set_noise(sys::BackgroundNoise* noise) { noise_ = noise; }

  /// Re-runs threshold calibration against the channel's current state —
  /// the recovery action when the framed protocol's drift detector trips.
  util::Cycle recalibrate() override;

  /// Batch waits that timed out (receiver resynchronized itself) during
  /// the last transmit(). Nonzero only under semaphore-drop faults.
  [[nodiscard]] std::size_t last_sync_timeouts() const {
    return last_sync_timeouts_;
  }

 protected:
  /// The shared row-buffer channel loop (batching, semaphore sync, noise
  /// interleaving); called through CovertAttack::transmit, and directly by
  /// calibrate() so calibration traffic is not counted as payload.
  channel::TransmissionResult do_transmit(const util::BitVec& message) final;

  /// One-time setup: map per-bank rows, warm structures.
  virtual void setup();

  /// Sender-side action for one bit. Must advance `clock` by the cost of
  /// transmitting `bit` into `bank` (a NOP for 0 unless the primitive
  /// requires work for both values).
  virtual void send_bit(std::uint32_t bank, bool bit, util::Cycle& clock) = 0;

  /// Receiver-side probe of `bank`: performs the timed operation and
  /// returns the latency the attacker's timer would show. Must advance
  /// `clock` by everything the probe costs (including measurement).
  virtual double probe(std::uint32_t bank, util::Cycle& clock) = 0;

  // --- Batched hooks (tentpole perf path) -----------------------------
  // do_transmit drives a whole batch through one virtual call when a side
  // runs single-threaded; primitives with a batch kernel (IMPACT-PnM via
  // PeiDispatcher::execute_batch) override these. The defaults fall back
  // to the scalar hooks, so every subclass stays correct unmodified. An
  // override MUST advance `clock` and produce latencies bit-identically
  // to the equivalent scalar loop — tests/test_access_batch.cpp pins this.

  /// Sender-side run: transmits bits[k] into banks[k] for k in [0, count).
  virtual void send_run(const std::uint32_t* banks, const std::uint8_t* bits,
                        std::size_t count, util::Cycle& clock) {
    for (std::size_t k = 0; k < count; ++k) {
      send_bit(banks[k], bits[k] != 0, clock);
    }
  }

  /// Receiver-side run: probes banks[k], writing latencies[k].
  virtual void probe_run(const std::uint32_t* banks, std::size_t count,
                         util::Cycle& clock, double* latencies) {
    for (std::size_t k = 0; k < count; ++k) {
      latencies[k] = probe(banks[k], clock);
    }
  }

  /// Access to per-bank spans mapped in setup().
  [[nodiscard]] sys::VAddr receiver_addr(std::uint32_t bank) const {
    return receiver_spans_[bank].vaddr;
  }
  [[nodiscard]] sys::VAddr sender_addr(std::uint32_t bank) const {
    return sender_spans_[bank].vaddr;
  }

  sys::MemorySystem& system() { return *system_; }
  [[nodiscard]] const RowChannelConfig& config() const { return config_; }

  /// Measurement bracket cost helper (cpuid;rdtscp ... rdtscp).
  [[nodiscard]] util::Cycle measurement_overhead() const;

 private:
  void ensure_ready();
  void calibrate();

  sys::MemorySystem* system_;
  RowChannelConfig config_;
  bool ready_ = false;
  double threshold_ = 0.0;
  std::vector<sys::VSpan> receiver_spans_;
  std::vector<sys::VSpan> sender_spans_;
  std::vector<double> last_latencies_;
  sys::BackgroundNoise* noise_ = nullptr;
  util::Cycle sender_clock_ = 0;
  util::Cycle receiver_clock_ = 0;
  std::size_t last_sync_timeouts_ = 0;
  // Reusable per-batch scratch (do_transmit is not reentrant; the one
  // nested call — calibration inside ensure_ready() — completes before
  // the outer transmit touches these).
  std::vector<std::uint32_t> batch_banks_;
  std::vector<std::uint8_t> batch_bits_;
  std::vector<util::Cycle> worker_clocks_;
  std::vector<util::Cycle> probe_clocks_;
};

}  // namespace impact::attacks
