#include "attacks/registry.hpp"

#include "attacks/direct.hpp"
#include "attacks/drama.hpp"
#include "attacks/impact_fim.hpp"
#include "attacks/impact_pnm.hpp"
#include "attacks/impact_pum.hpp"
#include "attacks/pnm_offchip.hpp"
#include "util/assert.hpp"

namespace impact::attacks {

const char* to_string(AttackKind kind) {
  switch (kind) {
    case AttackKind::kDramaClflush:
      return "DRAMA-clflush";
    case AttackKind::kDramaEviction:
      return "DRAMA-eviction";
    case AttackKind::kDmaEngine:
      return "DMA-engine";
    case AttackKind::kPnmOffChip:
      return "PnM-OffChip";
    case AttackKind::kImpactPnm:
      return "IMPACT-PnM";
    case AttackKind::kImpactPum:
      return "IMPACT-PuM";
    case AttackKind::kDirectAccess:
      return "Direct-access";
    case AttackKind::kImpactFim:
      return "IMPACT-FIM";
  }
  return "?";
}

dram::MappingScheme recommended_mapping(AttackKind kind) {
  // Eviction sets must avoid the signalling bank: under pure power-of-two
  // bank interleaving every LLC-set-congruent line aliases into the same
  // bank, so the eviction attacker targets systems with XOR-hashed bank
  // bits (which is also what DRAMA reverse-engineers in practice).
  if (kind == AttackKind::kDramaEviction) {
    return dram::MappingScheme::kXorBankHash;
  }
  return dram::MappingScheme::kBankInterleaved;
}

std::unique_ptr<channel::CovertAttack> make_attack(AttackKind kind,
                                                   sys::MemorySystem& system) {
  switch (kind) {
    case AttackKind::kDramaClflush:
      return std::make_unique<Drama>(
          system, DramaConfig{{}, DramaPrimitive::kClflush});
    case AttackKind::kDramaEviction:
      // One sample per bit: a single eviction round already spans the
      // whole bit window.
      return std::make_unique<Drama>(
          system, DramaConfig{{}, DramaPrimitive::kEviction, 1});
    case AttackKind::kDmaEngine:
      return std::make_unique<DmaEngine>(system);
    case AttackKind::kPnmOffChip:
      return std::make_unique<PnmOffChip>(system);
    case AttackKind::kImpactPnm:
      return std::make_unique<ImpactPnm>(system);
    case AttackKind::kImpactPum:
      return std::make_unique<ImpactPum>(system);
    case AttackKind::kDirectAccess:
      return std::make_unique<DirectAccess>(system);
    case AttackKind::kImpactFim:
      return std::make_unique<ImpactFim>(system);
  }
  util::check(false, "make_attack: unknown kind");
  return nullptr;
}

}  // namespace impact::attacks
