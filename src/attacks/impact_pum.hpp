// IMPACT-PuM: the RowClone-based covert channel (§4.2).
//
// The sender transmits an N-bit message with ONE masked RowClone whose legs
// run in all selected banks in parallel: bank k's row buffer is disturbed
// iff message bit k is 1. The receiver probes each bank with a "self-clone"
// of its initialized row (src == dst == the row it opened in Step 1): if
// its row is still latched the clone takes the fast hit path; if the sender
// displaced it the probe pays the precharge + full copy, which the receiver
// detects through the controller's acknowledgement latency.
#pragma once

#include <vector>

#include "channel/attack.hpp"
#include "channel/threshold.hpp"
#include "pim/rowclone.hpp"
#include "sys/system.hpp"

namespace impact::attacks {

struct ImpactPumConfig {
  std::uint32_t banks = 16;            ///< Message bits per RowClone (<=64).
  dram::RowId receiver_init_src = 8;   ///< Source row for Step-1 init.
  dram::RowId receiver_row = 9;        ///< Initialized / probed row.
  dram::RowId sender_src_row = 12;
  dram::RowId sender_dst_row = 13;
  std::size_t calibration_bits = 64;
  util::Cycle mask_setup_cost = 10;    ///< Receiver's per-probe mask work.
  /// Both sides issue non-blocking RowClones (the instruction retires at
  /// the controller's acknowledgement; the in-bank copy continues in the
  /// background and the atomic gate keeps other commands out until it
  /// finishes). This is what makes the PuM sender an order of magnitude
  /// faster than the PnM sender's 16 sequential PEIs (Fig. 9).
  pim::RowCloneConfig sender_rowclone{8, 4, /*blocking=*/false};
  pim::RowCloneConfig receiver_rowclone{8, 4, /*blocking=*/false};
};

class ImpactPum final : public channel::CovertAttack {
 public:
  explicit ImpactPum(sys::MemorySystem& system, ImpactPumConfig config = {});

  [[nodiscard]] std::string name() const override { return "IMPACT-PuM"; }

  /// Re-runs threshold calibration (framed-protocol drift recovery).
  util::Cycle recalibrate() override;

  [[nodiscard]] double threshold() const { return threshold_; }
  [[nodiscard]] const std::vector<double>& last_latencies() const {
    return last_latencies_;
  }

 protected:
  channel::TransmissionResult do_transmit(const util::BitVec& message)
      override;

 private:
  void ensure_ready();
  void calibrate();

  sys::MemorySystem* system_;
  ImpactPumConfig config_;
  bool ready_ = false;
  double threshold_ = 0.0;
  sys::VSpan receiver_init_src_span_;
  sys::VSpan receiver_span_;
  sys::VSpan sender_src_span_;
  sys::VSpan sender_dst_span_;
  pim::RowCloneUnit sender_unit_;
  pim::RowCloneUnit receiver_unit_;
  std::vector<double> last_latencies_;
  util::Cycle sender_clock_ = 0;
  util::Cycle receiver_clock_ = 0;
};

}  // namespace impact::attacks
