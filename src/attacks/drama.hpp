// DRAMA-style processor-centric row-buffer covert channels (Pessl et al.,
// USENIX Sec'16) — the state-of-the-art main-memory attacks IMPACT is
// compared against (§5.1 attacks (i) and (ii)).
//
// Both variants communicate through the same row-buffer interference as
// IMPACT, but every memory request must cross the cache hierarchy, and the
// target line must be displaced from the caches before each use:
//   * DRAMA-clflush  — displacement via the clflush instruction (probes the
//     LLC; any dirty write-back lands on the critical path).
//   * DRAMA-eviction — displacement via an eviction set of LLC-way
//     conflicting loads (the §3.3 "baseline attack"), whose cost grows with
//     LLC size and associativity.
#pragma once

#include "attacks/common.hpp"

namespace impact::attacks {

enum class DramaPrimitive : std::uint8_t { kClflush, kEviction };

struct DramaConfig {
  RowChannelConfig channel{};
  DramaPrimitive primitive = DramaPrimitive::kClflush;
  /// Redundant displace+access rounds per bit. The real DRAMA channel
  /// samples each bit window repeatedly to survive scheduling skew and
  /// row-buffer churn on actual hardware; the paper's throughput numbers
  /// for [68] embed that redundancy.
  std::uint32_t samples_per_bit = 2;
};

class Drama final : public RowBufferChannelBase {
 public:
  explicit Drama(sys::MemorySystem& system, DramaConfig config = {});

  [[nodiscard]] std::string name() const override {
    return primitive_ == DramaPrimitive::kClflush ? "DRAMA-clflush"
                                                  : "DRAMA-eviction";
  }

 protected:
  void send_bit(std::uint32_t bank, bool bit, util::Cycle& clock) override;
  double probe(std::uint32_t bank, util::Cycle& clock) override;

 private:
  /// Displaces the line at `vaddr` from `actor`'s caches.
  void displace(dram::ActorId actor, sys::VAddr vaddr, util::Cycle& clock);

  DramaPrimitive primitive_;
  std::uint32_t samples_per_bit_;
};

}  // namespace impact::attacks
