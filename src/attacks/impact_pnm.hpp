// IMPACT-PnM: the PEI-based covert channel (§4.1).
//
// Sender and receiver each hold a PEI dispatcher. The sender transmits a 1
// by issuing a `pim_add` PEI against its row in the target bank (the PMU's
// ignore flag, exercised by rotating the targeted cache block within the
// row, keeps the operation memory-side); a 0 is a NOP. The receiver probes
// by timing a PEI against its own initialized row: a fast completion means
// the row was still open (0), a slow one means the sender displaced it (1).
#pragma once

#include "attacks/common.hpp"
#include "pim/pei.hpp"

namespace impact::attacks {

struct ImpactPnmConfig {
  RowChannelConfig channel{};
  pim::PeiConfig pei{};
};

class ImpactPnm final : public RowBufferChannelBase {
 public:
  explicit ImpactPnm(sys::MemorySystem& system, ImpactPnmConfig config = {});

  [[nodiscard]] std::string name() const override { return "IMPACT-PnM"; }

  [[nodiscard]] const pim::PeiDispatcher& sender_pei() const {
    return sender_pei_;
  }
  [[nodiscard]] const pim::PeiDispatcher& receiver_pei() const {
    return receiver_pei_;
  }

 protected:
  void send_bit(std::uint32_t bank, bool bit, util::Cycle& clock) override;
  double probe(std::uint32_t bank, util::Cycle& clock) override;

  // Batched kernels over PeiDispatcher::execute_batch; bit-identical to
  // the scalar hooks (pinned by tests/test_access_batch.cpp).
  void send_run(const std::uint32_t* banks, const std::uint8_t* bits,
                std::size_t count, util::Cycle& clock) override;
  void probe_run(const std::uint32_t* banks, std::size_t count,
                 util::Cycle& clock, double* latencies) override;

 private:
  /// Grows the run staging arrays to hold `count` ops (amortized; no
  /// allocation in steady state, where batch sizes repeat).
  void reserve_run(std::size_t count) {
    if (vaddr_scratch_.size() < count) {
      vaddr_scratch_.resize(count);
      pei_scratch_.resize(count);
    }
  }

  pim::PeiDispatcher sender_pei_;
  pim::PeiDispatcher receiver_pei_;
  std::vector<sys::VAddr> vaddr_scratch_;
  std::vector<pim::PeiResult> pei_scratch_;
};

}  // namespace impact::attacks
