#include "attacks/impact_pnm.hpp"

namespace impact::attacks {

ImpactPnm::ImpactPnm(sys::MemorySystem& system, ImpactPnmConfig config)
    : RowBufferChannelBase(system, config.channel),
      sender_pei_(config.pei, system, kSender),
      receiver_pei_(config.pei, system, kReceiver) {}

void ImpactPnm::send_bit(std::uint32_t bank, bool bit, util::Cycle& clock) {
  if (!bit) {
    clock += config().sender_nop_cost;
    return;
  }
  // Rotate the targeted cache block within the row so the PMU keeps taking
  // the allocate/ignore path and the PEI stays memory-side (§4.1 bypass).
  const auto& mc = system().controller();
  const std::uint32_t col = sender_pei_.next_bypass_column(
      mc.config().row_bytes, 64);
  (void)sender_pei_.execute(sender_addr(bank) + col, clock);
}

double ImpactPnm::probe(std::uint32_t bank, util::Cycle& clock) {
  const auto& mc = system().controller();
  const std::uint32_t col = receiver_pei_.next_bypass_column(
      mc.config().row_bytes, 64);
  const auto& ts = system().timestamp();
  const util::Cycle t0 = ts.read(clock);
  (void)receiver_pei_.execute(receiver_addr(bank) + col, clock);
  const util::Cycle t1 = ts.read_fast(clock);
  return static_cast<double>(t1 - t0);
}

// SIMLINT-HOT-BEGIN: per-batch fast path — no allocation, no
// std::string, no by-name registry resolves (docs/static-analysis.md).
void ImpactPnm::send_run(const std::uint32_t* banks, const std::uint8_t* bits,
                         std::size_t count, util::Cycle& clock) {
  reserve_run(count);
  const std::uint32_t row_bytes = system().controller().config().row_bytes;
  // Gather maximal runs of 1-bits into one execute_batch each; 0-bits are
  // pure clock advances. The bypass-column cursor sees exactly the scalar
  // call sequence (one draw per 1-bit, in bit order).
  std::size_t k = 0;
  while (k < count) {
    if (bits[k] == 0) {
      clock += config().sender_nop_cost;
      ++k;
      continue;
    }
    std::size_t run = 0;
    while (k + run < count && bits[k + run] != 0) {
      vaddr_scratch_[run] =
          sender_addr(banks[k + run]) +
          sender_pei_.next_bypass_column(row_bytes, 64);
      ++run;
    }
    sender_pei_.execute_batch(vaddr_scratch_.data(), run, clock,
                              /*pre_cost=*/0, /*post_cost=*/0,
                              pei_scratch_.data());
    k += run;
  }
}

void ImpactPnm::probe_run(const std::uint32_t* banks, std::size_t count,
                          util::Cycle& clock, double* latencies) {
  reserve_run(count);
  const std::uint32_t row_bytes = system().controller().config().row_bytes;
  for (std::size_t k = 0; k < count; ++k) {
    vaddr_scratch_[k] =
        receiver_addr(banks[k]) +
        receiver_pei_.next_bypass_column(row_bytes, 64);
  }
  // Fold the scalar probe's timer bracket (serialized read before, fast
  // read after) into per-op pre/post costs: t1 - t0 reduces to the PEI
  // latency plus the closing rdtscp.
  const sys::TimerConfig& tc = system().timestamp().config();
  receiver_pei_.execute_batch(vaddr_scratch_.data(), count, clock,
                              /*pre_cost=*/tc.cpuid_cost + tc.rdtscp_cost,
                              /*post_cost=*/tc.rdtscp_cost,
                              pei_scratch_.data());
  for (std::size_t k = 0; k < count; ++k) {
    latencies[k] =
        static_cast<double>(pei_scratch_[k].latency + tc.rdtscp_cost);
  }
}
// SIMLINT-HOT-END

}  // namespace impact::attacks
