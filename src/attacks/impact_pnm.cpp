#include "attacks/impact_pnm.hpp"

namespace impact::attacks {

ImpactPnm::ImpactPnm(sys::MemorySystem& system, ImpactPnmConfig config)
    : RowBufferChannelBase(system, config.channel),
      sender_pei_(config.pei, system, kSender),
      receiver_pei_(config.pei, system, kReceiver) {}

void ImpactPnm::send_bit(std::uint32_t bank, bool bit, util::Cycle& clock) {
  if (!bit) {
    clock += config().sender_nop_cost;
    return;
  }
  // Rotate the targeted cache block within the row so the PMU keeps taking
  // the allocate/ignore path and the PEI stays memory-side (§4.1 bypass).
  const auto& mc = system().controller();
  const std::uint32_t col = sender_pei_.next_bypass_column(
      mc.config().row_bytes, 64);
  (void)sender_pei_.execute(sender_addr(bank) + col, clock);
}

double ImpactPnm::probe(std::uint32_t bank, util::Cycle& clock) {
  const auto& mc = system().controller();
  const std::uint32_t col = receiver_pei_.next_bypass_column(
      mc.config().row_bytes, 64);
  const auto& ts = system().timestamp();
  const util::Cycle t0 = ts.read(clock);
  (void)receiver_pei_.execute(receiver_addr(bank) + col, clock);
  const util::Cycle t1 = ts.read_fast(clock);
  return static_cast<double>(t1 - t0);
}

}  // namespace impact::attacks
