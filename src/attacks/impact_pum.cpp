#include "attacks/impact_pum.hpp"

#include <algorithm>

#include "attacks/common.hpp"
#include "sys/sync.hpp"
#include "util/assert.hpp"

namespace impact::attacks {

ImpactPum::ImpactPum(sys::MemorySystem& system, ImpactPumConfig config)
    : system_(&system),
      config_(config),
      sender_unit_(config.sender_rowclone, system, kSender),
      receiver_unit_(config.receiver_rowclone, system, kReceiver) {
  util::check(config_.banks > 0 && config_.banks <= 64,
              "ImpactPumConfig: banks must be in [1,64]");
  util::check(config_.banks <= system.controller().banks(),
              "ImpactPumConfig: more signalling banks than DRAM banks");
  const auto subarray = system.controller().config().subarray_rows;
  util::check(config_.receiver_init_src / subarray ==
                      config_.receiver_row / subarray &&
                  config_.sender_src_row / subarray ==
                      config_.sender_dst_row / subarray,
              "ImpactPumConfig: clone rows must share a subarray");
}

void ImpactPum::ensure_ready() {
  if (ready_) return;
  ready_ = true;
  auto& vmem = system_->vmem();
  receiver_init_src_span_ =
      vmem.map_row_span(kReceiver, config_.receiver_init_src);
  receiver_span_ = vmem.map_row_span(kReceiver, config_.receiver_row);
  sender_src_span_ = vmem.map_row_span(kSender, config_.sender_src_row);
  sender_dst_span_ = vmem.map_row_span(kSender, config_.sender_dst_row);
  system_->warm_span(kReceiver, receiver_init_src_span_);
  system_->warm_span(kReceiver, receiver_span_);
  system_->warm_span(kSender, sender_src_span_);
  system_->warm_span(kSender, sender_dst_span_);

  // Step 1: initialize all signalling banks with a single masked RowClone,
  // leaving `receiver_row` latched in every bank's row buffer.
  const std::uint64_t full_mask =
      config_.banks == 64 ? ~0ull : ((1ull << config_.banks) - 1);
  (void)receiver_unit_.initialize(
      pim::RowCloneRequest{receiver_init_src_span_.vaddr,
                           receiver_span_.vaddr, full_mask},
      receiver_clock_);

  calibrate();
}

void ImpactPum::calibrate() {
  const auto pattern = util::BitVec::alternating(config_.calibration_bits);
  threshold_ = 0.0;
  (void)do_transmit(pattern);
  channel::ThresholdCalibrator cal;
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    if (pattern.get(i)) {
      cal.add_high(last_latencies_[i]);
    } else {
      cal.add_low(last_latencies_[i]);
    }
  }
  threshold_ = cal.threshold();
}

util::Cycle ImpactPum::recalibrate() {
  const util::Cycle before = std::max(sender_clock_, receiver_clock_);
  if (!ready_) {
    ensure_ready();
  } else {
    calibrate();
  }
  return std::max(sender_clock_, receiver_clock_) - before;
}

channel::TransmissionResult ImpactPum::do_transmit(
    const util::BitVec& message) {
  ensure_ready();
  util::check(!message.empty(), "ImpactPum::transmit: empty message");

  channel::TransmissionResult result;
  result.sent = message;
  result.decoded = util::BitVec(message.size());
  last_latencies_.assign(message.size(), 0.0);

  sys::SimBarrier barrier;
  barrier.sync(sender_clock_, receiver_clock_);
  const util::Cycle start = sender_clock_;
  const util::Cycle sender_start = sender_clock_;
  const util::Cycle receiver_start = receiver_clock_;
  const auto& ts = system_->timestamp();
  // One result object for every clone in the message: execute_into reuses
  // its legs buffer, keeping the per-bit probe loop allocation-free.
  dram::RowCloneResult clone_scratch;

  // Each turn moves up to `banks` bits with one masked RowClone.
  for (std::size_t base = 0; base < message.size();
       base += config_.banks) {
    const std::size_t end =
        std::min(message.size(), base + config_.banks);

    // barrier_1: start of the communication turn.
    barrier.sync(sender_clock_, receiver_clock_);

    // Sender: encode this chunk into the RowClone mask.
    std::uint64_t mask = 0;
    for (std::size_t i = base; i < end; ++i) {
      if (message.get(i)) mask |= 1ull << (i - base);
    }
    sender_clock_ += config_.mask_setup_cost;
    util::Cycle clone_done = sender_clock_;
    if (mask != 0) {
      sender_unit_.execute_into(
          pim::RowCloneRequest{sender_src_span_.vaddr,
                               sender_dst_span_.vaddr, mask},
          sender_clock_, /*atomic=*/true, clone_scratch);
      clone_done = clone_scratch.completion;
    }

    // barrier_2: releases at the sender's (non-blocking) retirement; the
    // receiver additionally spins until the atomic RowClone gate clears —
    // otherwise its first probes would queue behind the in-flight copy and
    // read as spurious interference.
    barrier.sync(sender_clock_, receiver_clock_);
    receiver_clock_ = std::max(receiver_clock_, clone_done);

    // Receiver: one self-clone probe per bank.
    for (std::size_t i = base; i < end; ++i) {
      const std::uint32_t bank = static_cast<std::uint32_t>(i - base);
      receiver_clock_ += config_.mask_setup_cost;
      const util::Cycle t0 = ts.read(receiver_clock_);
      receiver_unit_.execute_into(
          pim::RowCloneRequest{receiver_span_.vaddr, receiver_span_.vaddr,
                               1ull << bank},
          receiver_clock_, /*atomic=*/false, clone_scratch);
      const util::Cycle t1 = ts.read_fast(receiver_clock_);
      const double latency = static_cast<double>(t1 - t0);
      last_latencies_[i] = latency;
      if (threshold_ > 0.0) {
        result.decoded.set(i, channel::decode_bit(latency, threshold_));
      }
    }
  }

  result.report.elapsed_cycles =
      std::max(sender_clock_, receiver_clock_) - start;
  result.report.sender_cycles = sender_clock_ - sender_start;
  result.report.receiver_cycles = receiver_clock_ - receiver_start;
  channel::score(result);
  return result;
}

}  // namespace impact::attacks
