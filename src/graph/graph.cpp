#include "graph/graph.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace impact::graph {

CsrGraph::CsrGraph(NodeId nodes, std::vector<std::uint32_t> offsets,
                   std::vector<NodeId> edges)
    : nodes_(nodes), offsets_(std::move(offsets)), edges_(std::move(edges)) {
  util::check(offsets_.size() == static_cast<std::size_t>(nodes) + 1,
              "CsrGraph: offsets size must be nodes+1");
  util::check(offsets_.back() == edges_.size(),
              "CsrGraph: last offset must equal edge count");
}

CsrGraph CsrGraph::from_pairs(NodeId nodes,
                              std::vector<std::pair<NodeId, NodeId>> pairs) {
  std::sort(pairs.begin(), pairs.end());
  std::vector<std::uint32_t> offsets(nodes + 1, 0);
  for (const auto& [u, v] : pairs) {
    util::check(u < nodes && v < nodes, "CsrGraph: edge endpoint OOB");
    ++offsets[u + 1];
  }
  for (NodeId u = 0; u < nodes; ++u) offsets[u + 1] += offsets[u];
  std::vector<NodeId> edges;
  edges.reserve(pairs.size());
  for (const auto& [u, v] : pairs) edges.push_back(v);
  return CsrGraph(nodes, std::move(offsets), std::move(edges));
}

CsrGraph CsrGraph::uniform(NodeId nodes, std::size_t edges,
                           util::Xoshiro256& rng) {
  util::check(nodes > 1, "CsrGraph::uniform: need >= 2 nodes");
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(edges);
  for (std::size_t i = 0; i < edges; ++i) {
    const auto u = static_cast<NodeId>(rng.below(nodes));
    auto v = static_cast<NodeId>(rng.below(nodes));
    if (v == u) v = (v + 1) % nodes;
    pairs.emplace_back(u, v);
  }
  return from_pairs(nodes, std::move(pairs));
}

CsrGraph CsrGraph::rmat(std::uint32_t scale, std::size_t edges,
                        util::Xoshiro256& rng) {
  util::check(scale >= 1 && scale <= 30, "CsrGraph::rmat: scale in [1,30]");
  const NodeId nodes = 1u << scale;
  constexpr double kA = 0.57;
  constexpr double kB = 0.19;
  constexpr double kC = 0.19;
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(edges);
  for (std::size_t i = 0; i < edges; ++i) {
    NodeId u = 0;
    NodeId v = 0;
    for (std::uint32_t bit = 0; bit < scale; ++bit) {
      const double r = rng.uniform();
      if (r < kA) {
        // Top-left quadrant: no bits set.
      } else if (r < kA + kB) {
        v |= 1u << bit;
      } else if (r < kA + kB + kC) {
        u |= 1u << bit;
      } else {
        u |= 1u << bit;
        v |= 1u << bit;
      }
    }
    if (u == v) v = (v + 1) % nodes;
    pairs.emplace_back(u, v);
  }
  return from_pairs(nodes, std::move(pairs));
}

}  // namespace impact::graph
