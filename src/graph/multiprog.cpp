#include "graph/multiprog.hpp"

#include <algorithm>
#include <memory>

#include "obs/registry.hpp"
#include "obs/scope.hpp"
#include "util/assert.hpp"

namespace impact::graph {

namespace {

constexpr dram::ActorId kInstanceA = 10;
constexpr dram::ActorId kInstanceB = 11;

/// Virtual bases of the replayed arrays for one instance.
struct ArrayMap {
  sys::VAddr base[kArrayRefCount] = {};
};

/// Maps the shared input (owned by instance A, shared into B) and the
/// private arrays of one instance.
ArrayMap map_arrays(sys::MemorySystem& system, const CsrGraph& graph,
                    const WorkloadTrace& trace, dram::ActorId actor,
                    const ArrayMap* shared_from) {
  auto& vmem = system.vmem();
  ArrayMap m;
  const auto pages = [&](std::uint64_t bytes) {
    return (bytes + vmem.page_bytes() - 1) / vmem.page_bytes();
  };

  if (shared_from == nullptr) {
    const auto off_span = vmem.map_pages(
        actor, pages((graph.nodes() + 1) * sizeof(std::uint32_t)));
    const auto edge_span =
        vmem.map_pages(actor, pages(graph.edges() * sizeof(NodeId)));
    m.base[0] = off_span.vaddr;
    m.base[1] = edge_span.vaddr;
  } else {
    // Share instance A's graph frames (same vaddrs, same banks).
    m.base[0] = shared_from->base[0];
    m.base[1] = shared_from->base[1];
    const sys::VSpan off_span{
        shared_from->base[0],
        pages((graph.nodes() + 1) * sizeof(std::uint32_t)) *
            vmem.page_bytes()};
    const sys::VSpan edge_span{
        shared_from->base[1],
        pages(graph.edges() * sizeof(NodeId)) * vmem.page_bytes()};
    vmem.share(kInstanceA, actor, off_span);
    vmem.share(kInstanceA, actor, edge_span);
  }
  for (int p = 0; p < 3; ++p) {
    if (trace.private_elems[p] == 0) continue;
    const auto span = vmem.map_pages(
        actor, pages(trace.private_elems[p] * 4ull));
    m.base[2 + p] = span.vaddr;
  }
  return m;
}

/// Replays one op for an instance through its cached access port,
/// advancing its clock.
void replay_op(sys::MemorySystem::AccessPort& port, const ArrayMap& map,
               const TraceOp& op, util::Cycle& clock,
               std::uint64_t& instructions) {
  clock += op.compute;
  // Rough instruction accounting: the access itself plus the surrounding
  // arithmetic (~1 instruction per modeled compute cycle on this core).
  instructions += 1 + op.compute;
  const sys::VAddr addr =
      map.base[static_cast<std::size_t>(op.array)] + op.index * 4ull;
  if (op.write) {
    (void)port.store(addr, clock, op.pc);
  } else {
    (void)port.load(addr, clock, op.pc);
  }
}

}  // namespace

WorkloadInput build_input(const MultiprogConfig& config, WorkloadKind kind) {
  util::Xoshiro256 rng(config.graph_seed);
  WorkloadInput input;
  input.graph = CsrGraph::rmat(config.rmat_scale, config.edge_count, rng);
  input.trace = build_trace(kind, input.graph);
  util::check(!input.trace.ops.empty(), "build_input: empty trace");
  return input;
}

RunStats run_multiprogrammed(const MultiprogConfig& config,
                             const WorkloadInput& input,
                             dram::RowPolicy policy) {
  // Fresh system per run: Fig. 11 is a 2-core configuration. Constructing
  // it here (not sharing across cells) is what makes concurrent cells of a
  // sweep independent — and therefore schedule-invariant.
  sys::SystemConfig sys_config = config.system;
  sys_config.cores = 2;
  sys_config.dram.policy = policy;
  sys::MemorySystem system(sys_config);

  const CsrGraph& graph = input.graph;
  const WorkloadTrace& trace = input.trace;
  util::check(!trace.ops.empty(), "run_multiprogrammed: empty trace");

  const ArrayMap map_a =
      map_arrays(system, graph, trace, kInstanceA, nullptr);
  const ArrayMap map_b =
      map_arrays(system, graph, trace, kInstanceB, &map_a);

  RunStats stats;
  util::Cycle clock_a = 0;
  util::Cycle clock_b = 0;
  std::size_t ia = 0;
  std::size_t ib = 0;
  const std::size_t n = trace.ops.size();
  // Cached per-instance CPU paths: the replay loop below is the hottest
  // consumer of MemorySystem::load/store in the repo (Fig. 11 sweeps
  // replay millions of ops per cell).
  sys::MemorySystem::AccessPort port_a = system.port(kInstanceA);
  sys::MemorySystem::AccessPort port_b = system.port(kInstanceB);
  // Interleave the two instances by simulated time so their DRAM traffic
  // contends realistically on the shared banks. Each turn replays a *run*
  // of ops — the instance keeps going while it stays behind the other's
  // clock (or the other is done) — which picks exactly the op sequence the
  // per-op formulation would, with one turn decision per run instead of
  // per op.
  while (ia < n || ib < n) {
    const bool a_turn = ib >= n || (ia < n && clock_a <= clock_b);
    if (a_turn) {
      do {
        replay_op(port_a, map_a, trace.ops[ia], clock_a, stats.instructions);
        ++ia;
      } while (ia < n && (ib >= n || clock_a <= clock_b));
    } else {
      do {
        replay_op(port_b, map_b, trace.ops[ib], clock_b, stats.instructions);
        ++ib;
      } while (ib < n && (ia >= n || clock_b < clock_a));
    }
  }

  stats.cycles = std::max(clock_a, clock_b);
  stats.accesses = 2 * trace.ops.size();
  stats.llc_misses = system.hierarchy(kInstanceA).l3().stats().misses +
                     system.hierarchy(kInstanceB).l3().stats().misses;
  const auto dram = system.controller().total_stats();
  stats.row_hit_rate = dram.hit_rate();
  if (obs::Registry* reg = obs::current_registry()) {
    reg->counter("graph.instructions").add(stats.instructions);
    reg->counter("graph.accesses").add(stats.accesses);
    reg->counter("graph.llc_misses").add(stats.llc_misses);
    reg->counter("graph.cycles").add(stats.cycles);
    reg->gauge("graph.row_hit_rate").set(stats.row_hit_rate);
    reg->gauge("graph.mpki").set(stats.mpki());
  }
  return stats;
}

RunStats run_multiprogrammed(const MultiprogConfig& config,
                             WorkloadKind kind, dram::RowPolicy policy) {
  return run_multiprogrammed(config, build_input(config, kind), policy);
}

DefenseOverheads evaluate_defenses(const MultiprogConfig& config,
                                   WorkloadKind kind,
                                   exec::ThreadPool* pool) {
  const WorkloadInput input = build_input(config, kind);
  DefenseOverheads out;
  out.kind = kind;

  constexpr dram::RowPolicy kPolicies[] = {dram::RowPolicy::kOpenRow,
                                           dram::RowPolicy::kClosedRow,
                                           dram::RowPolicy::kConstantTime};
  RunStats DefenseOverheads::* const kSlots[] = {
      &DefenseOverheads::open_row, &DefenseOverheads::closed_row,
      &DefenseOverheads::constant_time};
  const std::vector<RunStats> cells = exec::parallel_map<RunStats>(
      pool, 3, [&](std::size_t i) {
        return run_multiprogrammed(config, input, kPolicies[i]);
      });
  for (std::size_t i = 0; i < 3; ++i) out.*kSlots[i] = cells[i];
  return out;
}

std::vector<DefenseOverheads> evaluate_defense_matrix(
    const MultiprogConfig& config, std::span<const WorkloadKind> kinds,
    exec::ThreadPool* pool) {
  std::vector<DefenseOverheads> out(kinds.size());
  // Inputs live on the building worker's sweep arena rather than being
  // default-constructed up front and assigned across threads: each input is
  // created whole by its build task, dependents read it through the sweep's
  // build->run edges (which give the necessary happens-before), and the
  // Sweep destructor reclaims the storage after run() returns.
  std::vector<WorkloadInput*> inputs(kinds.size(), nullptr);

  constexpr dram::RowPolicy kPolicies[] = {dram::RowPolicy::kOpenRow,
                                           dram::RowPolicy::kClosedRow,
                                           dram::RowPolicy::kConstantTime};
  RunStats DefenseOverheads::* const kSlots[] = {
      &DefenseOverheads::open_row, &DefenseOverheads::closed_row,
      &DefenseOverheads::constant_time};

  // Task graph: each workload's input build feeds its three policy cells,
  // so cheap cells of one workload overlap the build of the next.
  exec::Sweep sweep(pool);
  for (std::size_t w = 0; w < kinds.size(); ++w) {
    out[w].kind = kinds[w];
    const exec::Sweep::TaskId build = sweep.add(
        "input:" + std::string(to_string(kinds[w])),
        // Sweep::run() returns before the enclosing scope unwinds, so
        // reference captures of the local grids are safe.
        [&, w] {
          inputs[w] =
              sweep.local_arena().make<WorkloadInput>(build_input(config,
                                                                  kinds[w]));
        });
    for (std::size_t p = 0; p < 3; ++p) {
      sweep.add("run:" + std::string(to_string(kinds[w])) + ":" +
                    to_string(kPolicies[p]),
                [&, w, p] {
                  out[w].*kSlots[p] =
                      run_multiprogrammed(config, *inputs[w], kPolicies[p]);
                },
                {build});
    }
  }
  sweep.run();
  return out;
}

}  // namespace impact::graph
