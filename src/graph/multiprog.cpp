#include "graph/multiprog.hpp"

#include <algorithm>
#include <memory>

#include "util/assert.hpp"

namespace impact::graph {

namespace {

constexpr dram::ActorId kInstanceA = 10;
constexpr dram::ActorId kInstanceB = 11;

/// Virtual bases of the replayed arrays for one instance.
struct ArrayMap {
  sys::VAddr base[kArrayRefCount] = {};
};

/// Maps the shared input (owned by instance A, shared into B) and the
/// private arrays of one instance.
ArrayMap map_arrays(sys::MemorySystem& system, const CsrGraph& graph,
                    const WorkloadTrace& trace, dram::ActorId actor,
                    const ArrayMap* shared_from) {
  auto& vmem = system.vmem();
  ArrayMap m;
  const auto pages = [&](std::uint64_t bytes) {
    return (bytes + vmem.page_bytes() - 1) / vmem.page_bytes();
  };

  if (shared_from == nullptr) {
    const auto off_span = vmem.map_pages(
        actor, pages((graph.nodes() + 1) * sizeof(std::uint32_t)));
    const auto edge_span =
        vmem.map_pages(actor, pages(graph.edges() * sizeof(NodeId)));
    m.base[0] = off_span.vaddr;
    m.base[1] = edge_span.vaddr;
  } else {
    // Share instance A's graph frames (same vaddrs, same banks).
    m.base[0] = shared_from->base[0];
    m.base[1] = shared_from->base[1];
    const sys::VSpan off_span{
        shared_from->base[0],
        pages((graph.nodes() + 1) * sizeof(std::uint32_t)) *
            vmem.page_bytes()};
    const sys::VSpan edge_span{
        shared_from->base[1],
        pages(graph.edges() * sizeof(NodeId)) * vmem.page_bytes()};
    vmem.share(kInstanceA, actor, off_span);
    vmem.share(kInstanceA, actor, edge_span);
  }
  for (int p = 0; p < 3; ++p) {
    if (trace.private_elems[p] == 0) continue;
    const auto span = vmem.map_pages(
        actor, pages(trace.private_elems[p] * 4ull));
    m.base[2 + p] = span.vaddr;
  }
  return m;
}

/// Replays one op for an instance, advancing its clock.
void replay_op(sys::MemorySystem& system, dram::ActorId actor,
               const ArrayMap& map, const TraceOp& op, util::Cycle& clock,
               std::uint64_t& instructions) {
  clock += op.compute;
  // Rough instruction accounting: the access itself plus the surrounding
  // arithmetic (~1 instruction per modeled compute cycle on this core).
  instructions += 1 + op.compute;
  const sys::VAddr addr =
      map.base[static_cast<std::size_t>(op.array)] + op.index * 4ull;
  if (op.write) {
    (void)system.store(actor, addr, clock, op.pc);
  } else {
    (void)system.load(actor, addr, clock, op.pc);
  }
}

}  // namespace

RunStats run_multiprogrammed(const MultiprogConfig& config,
                             WorkloadKind kind, dram::RowPolicy policy) {
  // Fresh system per run: Fig. 11 is a 2-core configuration.
  sys::SystemConfig sys_config = config.system;
  sys_config.cores = 2;
  sys_config.dram.policy = policy;
  sys::MemorySystem system(sys_config);

  util::Xoshiro256 rng(config.graph_seed);
  const CsrGraph graph =
      CsrGraph::rmat(config.rmat_scale, config.edge_count, rng);
  const WorkloadTrace trace = build_trace(kind, graph);
  util::check(!trace.ops.empty(), "run_multiprogrammed: empty trace");

  const ArrayMap map_a =
      map_arrays(system, graph, trace, kInstanceA, nullptr);
  const ArrayMap map_b =
      map_arrays(system, graph, trace, kInstanceB, &map_a);

  RunStats stats;
  util::Cycle clock_a = 0;
  util::Cycle clock_b = 0;
  std::size_t ia = 0;
  std::size_t ib = 0;
  // Interleave the two instances by simulated time so their DRAM traffic
  // contends realistically on the shared banks.
  while (ia < trace.ops.size() || ib < trace.ops.size()) {
    const bool a_turn =
        ib >= trace.ops.size() ||
        (ia < trace.ops.size() && clock_a <= clock_b);
    if (a_turn) {
      replay_op(system, kInstanceA, map_a, trace.ops[ia], clock_a,
                stats.instructions);
      ++ia;
    } else {
      replay_op(system, kInstanceB, map_b, trace.ops[ib], clock_b,
                stats.instructions);
      ++ib;
    }
  }

  stats.cycles = std::max(clock_a, clock_b);
  stats.accesses = 2 * trace.ops.size();
  stats.llc_misses = system.hierarchy(kInstanceA).l3().stats().misses +
                     system.hierarchy(kInstanceB).l3().stats().misses;
  const auto dram = system.controller().total_stats();
  stats.row_hit_rate = dram.hit_rate();
  return stats;
}

DefenseOverheads evaluate_defenses(const MultiprogConfig& config,
                                   WorkloadKind kind) {
  DefenseOverheads out;
  out.kind = kind;
  out.open_row = run_multiprogrammed(config, kind, dram::RowPolicy::kOpenRow);
  out.closed_row =
      run_multiprogrammed(config, kind, dram::RowPolicy::kClosedRow);
  out.constant_time =
      run_multiprogrammed(config, kind, dram::RowPolicy::kConstantTime);
  return out;
}

}  // namespace impact::graph
