// Compressed-sparse-row graphs and synthetic generators for the GraphBIG
// workload substitution (Fig. 11).
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace impact::graph {

using NodeId = std::uint32_t;

class CsrGraph {
 public:
  CsrGraph() = default;
  CsrGraph(NodeId nodes, std::vector<std::uint32_t> offsets,
           std::vector<NodeId> edges);

  /// Uniform random (Erdős–Rényi-ish) multigraph with `edges` directed
  /// edges over `nodes` vertices.
  static CsrGraph uniform(NodeId nodes, std::size_t edges,
                          util::Xoshiro256& rng);

  /// RMAT generator (a=0.57,b=0.19,c=0.19): skewed degree distribution as
  /// in real-world graphs. `scale` => 2^scale vertices.
  static CsrGraph rmat(std::uint32_t scale, std::size_t edges,
                       util::Xoshiro256& rng);

  [[nodiscard]] NodeId nodes() const { return nodes_; }
  [[nodiscard]] std::size_t edges() const { return edges_.size(); }
  [[nodiscard]] std::uint32_t degree(NodeId u) const {
    return offsets_[u + 1] - offsets_[u];
  }
  [[nodiscard]] std::uint32_t offset(NodeId u) const { return offsets_[u]; }
  [[nodiscard]] NodeId edge(std::size_t i) const { return edges_[i]; }

  [[nodiscard]] const std::vector<std::uint32_t>& offsets() const {
    return offsets_;
  }
  [[nodiscard]] const std::vector<NodeId>& edge_list() const {
    return edges_;
  }

 private:
  static CsrGraph from_pairs(NodeId nodes,
                             std::vector<std::pair<NodeId, NodeId>> pairs);

  NodeId nodes_ = 0;
  std::vector<std::uint32_t> offsets_;  // nodes+1 entries.
  std::vector<NodeId> edges_;
};

}  // namespace impact::graph
