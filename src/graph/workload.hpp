// Graph workload kernels (GraphBIG substitution) expressed as symbolic
// memory traces.
//
// Each kernel runs its real algorithm over the CSR graph while emitting the
// sequence of data-structure accesses it performs; the multiprogrammed
// runner (multiprog.hpp) replays those traces through the simulated memory
// system under each row policy. Per-op `compute` weights model the
// arithmetic between accesses and shape each workload's MPKI the way the
// paper characterizes them (BC 0.57, BFS 38.6, CC 45.2, TC 5.1, PR 1.9).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace impact::graph {

enum class WorkloadKind : std::uint8_t { kBC, kBFS, kCC, kTC, kPR, kSSSP };

[[nodiscard]] constexpr const char* to_string(WorkloadKind k) {
  switch (k) {
    case WorkloadKind::kBC:
      return "BC";
    case WorkloadKind::kBFS:
      return "BFS";
    case WorkloadKind::kCC:
      return "CC";
    case WorkloadKind::kTC:
      return "TC";
    case WorkloadKind::kPR:
      return "PR";
    case WorkloadKind::kSSSP:
      return "SSSP";
  }
  return "?";
}

/// The paper's Fig. 11 mix.
constexpr WorkloadKind kAllWorkloads[] = {
    WorkloadKind::kBC, WorkloadKind::kBFS, WorkloadKind::kCC,
    WorkloadKind::kTC, WorkloadKind::kPR};

/// Extension: the mix plus single-source shortest paths.
constexpr WorkloadKind kExtendedWorkloads[] = {
    WorkloadKind::kBC, WorkloadKind::kBFS,  WorkloadKind::kCC,
    WorkloadKind::kTC, WorkloadKind::kPR,   WorkloadKind::kSSSP};

/// Which logical array an access touches. Offsets/edges are the *shared*
/// input; private arrays are per-instance state.
enum class ArrayRef : std::uint8_t {
  kOffsets,
  kEdges,
  kPrivate0,
  kPrivate1,
  kPrivate2,
};
inline constexpr std::size_t kArrayRefCount = 5;

struct TraceOp {
  ArrayRef array = ArrayRef::kOffsets;
  std::uint32_t index = 0;    ///< Element index (4-byte elements).
  bool write = false;
  std::uint16_t compute = 0;  ///< CPU cycles before this access.
  std::uint16_t pc = 0;       ///< Synthetic instruction address (prefetchers).
};

struct WorkloadTrace {
  WorkloadKind kind = WorkloadKind::kBFS;
  std::vector<TraceOp> ops;
  /// Elements needed in each private array (0 if unused).
  std::uint32_t private_elems[3] = {0, 0, 0};
  /// Algorithm-level result checksum (validates the kernels in tests).
  std::uint64_t checksum = 0;
};

/// Generates the access trace of one instance of `kind` over `graph`.
[[nodiscard]] WorkloadTrace build_trace(WorkloadKind kind,
                                        const CsrGraph& graph);

}  // namespace impact::graph
