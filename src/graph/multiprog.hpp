// Multiprogrammed graph execution over the simulated memory system.
//
// Fig. 11's setup: a 2-core system where both cores run an instance of the
// same workload on the *same shared input graph* (the CSR arrays' physical
// pages are mapped into both processes, so both hit the same DRAM banks),
// each with private algorithm state. We replay both instances' traces
// interleaved by simulated time and measure total cycles per row policy.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dram/config.hpp"
// Graph drivers consume the sweep engine as a library; exec never
// includes graph, so the DAG stays acyclic.
// SIMLINT-ALLOW(layering): sweep engine consumed as a library.
#include "exec/sweep.hpp"
#include "graph/graph.hpp"
#include "graph/workload.hpp"
#include "sys/system.hpp"

namespace impact::graph {

struct MultiprogConfig {
  sys::SystemConfig system = scaled_system();
  std::uint32_t rmat_scale = 15;      ///< 32k vertices.
  std::size_t edge_count = 262144;    ///< Directed edges.
  std::uint64_t graph_seed = 99;

  /// Fig. 11 default: hierarchy scaled down 256x together with the input
  /// graph (paper inputs are 7-8 GB; see SystemConfig::cache_scale), which
  /// keeps the working-set-to-cache ratios, and with them the paper's
  /// MPKI regime, while staying replayable in seconds.
  [[nodiscard]] static sys::SystemConfig scaled_system() {
    sys::SystemConfig s;
    s.cache_scale = 256;
    return s;
  }
};

struct RunStats {
  util::Cycle cycles = 0;          ///< Makespan of the two instances.
  std::uint64_t instructions = 0;  ///< Both instances combined.
  std::uint64_t accesses = 0;
  std::uint64_t llc_misses = 0;
  double row_hit_rate = 0.0;       ///< Of the DRAM accesses performed.

  [[nodiscard]] double mpki() const {
    return instructions == 0 ? 0.0
                             : 1000.0 * static_cast<double>(llc_misses) /
                                   static_cast<double>(instructions);
  }

  /// Exact (bitwise for row_hit_rate) equality: the determinism tests pin
  /// parallel sweeps to the serial results with no tolerance.
  friend bool operator==(const RunStats&, const RunStats&) = default;
};

/// One Fig. 11 bar group: a workload's overheads relative to open-row.
struct DefenseOverheads {
  WorkloadKind kind = WorkloadKind::kBFS;
  RunStats open_row;
  RunStats closed_row;
  RunStats constant_time;

  /// Baseline-relative overheads; 0 when the baseline has not run (or ran
  /// an empty trace), so a partially-filled matrix cell never divides by
  /// zero.
  [[nodiscard]] double crp_overhead() const {
    return open_row.cycles == 0
               ? 0.0
               : static_cast<double>(closed_row.cycles) /
                         static_cast<double>(open_row.cycles) -
                     1.0;
  }
  [[nodiscard]] double ctd_overhead() const {
    return open_row.cycles == 0
               ? 0.0
               : static_cast<double>(constant_time.cycles) /
                         static_cast<double>(open_row.cycles) -
                     1.0;
  }

  friend bool operator==(const DefenseOverheads&,
                         const DefenseOverheads&) = default;
};

/// The shared input of one Fig. 11 bar group: the RMAT graph and the
/// workload trace both co-scheduled instances replay. Building it is a
/// significant fraction of a run, so the sweep engine builds it once per
/// workload and shares it (read-only) across the per-policy cells.
struct WorkloadInput {
  CsrGraph graph;
  WorkloadTrace trace;
};

/// Deterministically builds the shared input for `kind` (config seed).
[[nodiscard]] WorkloadInput build_input(const MultiprogConfig& config,
                                        WorkloadKind kind);

/// Runs two co-scheduled instances replaying `input` under `policy`.
[[nodiscard]] RunStats run_multiprogrammed(const MultiprogConfig& config,
                                           const WorkloadInput& input,
                                           dram::RowPolicy policy);

/// Convenience: builds the input, then runs. Bit-identical to the
/// two-step form (the input build is deterministic in the config seed).
[[nodiscard]] RunStats run_multiprogrammed(const MultiprogConfig& config,
                                           WorkloadKind kind,
                                           dram::RowPolicy policy);

/// Runs the full Fig. 11 matrix for one workload (all three policies),
/// fanning the per-policy cells out over `pool` when provided. Results are
/// bit-identical to the serial path for any pool size.
[[nodiscard]] DefenseOverheads evaluate_defenses(
    const MultiprogConfig& config, WorkloadKind kind,
    exec::ThreadPool* pool = nullptr);

/// The whole Fig. 11 grid: one input-build task per workload feeding three
/// per-policy run tasks, scheduled as a Sweep task graph over `pool`
/// (serial in insertion order when `pool` is null). Output order follows
/// `kinds`; cell values are schedule-independent.
[[nodiscard]] std::vector<DefenseOverheads> evaluate_defense_matrix(
    const MultiprogConfig& config, std::span<const WorkloadKind> kinds,
    exec::ThreadPool* pool = nullptr);

}  // namespace impact::graph
