// Multiprogrammed graph execution over the simulated memory system.
//
// Fig. 11's setup: a 2-core system where both cores run an instance of the
// same workload on the *same shared input graph* (the CSR arrays' physical
// pages are mapped into both processes, so both hit the same DRAM banks),
// each with private algorithm state. We replay both instances' traces
// interleaved by simulated time and measure total cycles per row policy.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dram/config.hpp"
#include "graph/graph.hpp"
#include "graph/workload.hpp"
#include "sys/system.hpp"

namespace impact::graph {

struct MultiprogConfig {
  sys::SystemConfig system = scaled_system();
  std::uint32_t rmat_scale = 15;      ///< 32k vertices.
  std::size_t edge_count = 262144;    ///< Directed edges.
  std::uint64_t graph_seed = 99;

  /// Fig. 11 default: hierarchy scaled down 256x together with the input
  /// graph (paper inputs are 7-8 GB; see SystemConfig::cache_scale), which
  /// keeps the working-set-to-cache ratios, and with them the paper's
  /// MPKI regime, while staying replayable in seconds.
  [[nodiscard]] static sys::SystemConfig scaled_system() {
    sys::SystemConfig s;
    s.cache_scale = 256;
    return s;
  }
};

struct RunStats {
  util::Cycle cycles = 0;          ///< Makespan of the two instances.
  std::uint64_t instructions = 0;  ///< Both instances combined.
  std::uint64_t accesses = 0;
  std::uint64_t llc_misses = 0;
  double row_hit_rate = 0.0;       ///< Of the DRAM accesses performed.

  [[nodiscard]] double mpki() const {
    return instructions == 0 ? 0.0
                             : 1000.0 * static_cast<double>(llc_misses) /
                                   static_cast<double>(instructions);
  }
};

/// One Fig. 11 bar group: a workload's overheads relative to open-row.
struct DefenseOverheads {
  WorkloadKind kind = WorkloadKind::kBFS;
  RunStats open_row;
  RunStats closed_row;
  RunStats constant_time;

  [[nodiscard]] double crp_overhead() const {
    return static_cast<double>(closed_row.cycles) /
               static_cast<double>(open_row.cycles) -
           1.0;
  }
  [[nodiscard]] double ctd_overhead() const {
    return static_cast<double>(constant_time.cycles) /
               static_cast<double>(open_row.cycles) -
           1.0;
  }
};

/// Runs two co-scheduled instances of `kind` under `policy`.
[[nodiscard]] RunStats run_multiprogrammed(const MultiprogConfig& config,
                                           WorkloadKind kind,
                                           dram::RowPolicy policy);

/// Runs the full Fig. 11 matrix for one workload (all three policies).
[[nodiscard]] DefenseOverheads evaluate_defenses(
    const MultiprogConfig& config, WorkloadKind kind);

}  // namespace impact::graph
